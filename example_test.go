package osumac_test

import (
	"fmt"

	osumac "github.com/osu-netlab/osumac"
)

// ExampleRun shows the one-call scenario API.
func ExampleRun() {
	scn := osumac.NewScenario()
	scn.Seed = 42
	scn.GPSUsers = 8
	scn.DataUsers = 10
	scn.Load = 0.5
	scn.Cycles = 100
	scn.WarmupCycles = 10

	res, err := osumac.Run(scn)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("GPS deadline violations: %d\n", res.GPSDeadlineViolations)
	fmt.Printf("registered subscribers: %d\n", res.Metrics.RegistrationsApproved.Value())
	// Output:
	// GPS deadline violations: 0
	// registered subscribers: 18
}

// ExampleNewNetwork shows the lower-level API with a custom channel
// model and explicit subscriber control.
func ExampleNewNetwork() {
	cfg := osumac.NewConfig()
	cfg.Seed = 7
	cfg.NewReverseModel = func() osumac.ErrorModel {
		return osumac.TwoRegime{PLoss: 0.1, MaxCorrectable: 8}
	}

	n, err := osumac.NewNetwork(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sub, err := n.AddSubscriber(1234, false, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := n.Run(10); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("state: %v\n", sub.State())
	// Output:
	// state: active
}

// ExampleNewLayout shows the notification-cycle timing API (paper
// Table 2).
func ExampleNewLayout() {
	l := osumac.NewLayout(osumac.Format1)
	fmt.Printf("GPS slot 1 access time: %v\n", l.GPS[0].Start)
	fmt.Printf("data slot 1 access time: %v\n", l.ReverseData[0].Start)
	fmt.Printf("data slots: %d\n", len(l.ReverseData))
	// Output:
	// GPS slot 1 access time: 301.25ms
	// data slot 1 access time: 1.00125s
	// data slots: 8
}
