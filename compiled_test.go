package osumac

// Differential tests of the compiled-cycle executor: for every fallback
// trigger (lossy channel, planned contention, CF2 amendment, reverse
// format switch) the compiled engine must deactivate its fast path —
// counted on the matching reason counter — and still produce a trace
// stream and metric snapshot identical to the event-driven kernel. The
// compiled run is additionally verified by the protocol-invariant
// checker.

import (
	"testing"
	"time"
)

// twinRun executes the same scenario through both engines and fails the
// test on any observable divergence. It returns the compiled run's
// metrics for the caller's fallback-counter assertions.
func twinRun(t *testing.T, scn Scenario) *Metrics {
	t.Helper()

	compiledBuf := &TraceBuffer{Cap: 1 << 20}
	eventBuf := &TraceBuffer{Cap: 1 << 20}

	compiledScn := scn
	compiledScn.Tracer = compiledBuf
	eventScn := scn
	eventScn.Tracer = eventBuf
	eventScn.DisableCompiledCycle = true

	nc, chk, err := BuildChecked(compiledScn)
	if err != nil {
		t.Fatal(err)
	}
	if err := nc.Run(scn.WarmupCycles + scn.Cycles); err != nil {
		t.Fatal(err)
	}
	if rep := chk.Finish(); !rep.OK() {
		t.Fatalf("compiled run breaches protocol invariants: %v", rep.Violations)
	}

	ne, err := Build(eventScn)
	if err != nil {
		t.Fatal(err)
	}
	if err := ne.Run(scn.WarmupCycles + scn.Cycles); err != nil {
		t.Fatal(err)
	}

	if compiledBuf.Dropped() > 0 || eventBuf.Dropped() > 0 {
		t.Fatalf("trace buffers overflowed (compiled dropped %d, event %d): raise Cap",
			compiledBuf.Dropped(), eventBuf.Dropped())
	}
	ce, ee := compiledBuf.Events(), eventBuf.Events()
	if len(ce) != len(ee) {
		t.Fatalf("trace length diverges: compiled %d events, event kernel %d", len(ce), len(ee))
	}
	for i := range ce {
		if ce[i] != ee[i] {
			t.Fatalf("trace diverges at event %d:\n  compiled: %v\n  event:    %v", i, ce[i], ee[i])
		}
	}

	cs, es := nc.Metrics().Snapshot(), ne.Metrics().Snapshot()
	if cs != es {
		t.Fatalf("metric snapshots diverge:\n  compiled: %+v\n  event:    %+v", cs, es)
	}
	if cf, ef := nc.Sim().EventsFired(), ne.Sim().EventsFired(); cf != ef {
		t.Fatalf("kernel actions diverge: compiled fired %d, event kernel %d", cf, ef)
	}
	return nc.Metrics()
}

func TestCompiledFallbackTriggers(t *testing.T) {
	cases := []struct {
		name string
		scn  Scenario
		// counter extracts the case's expected fallback-reason count.
		counter func(*Metrics) uint64
		// midCycle marks reasons detected after a fast activation (at
		// CF1/CF2 delivery), which therefore imply a mid-cycle
		// deactivation rather than an activation-time one.
		midCycle bool
	}{
		{
			// A lossy reverse channel is known at activation: every
			// cycle runs slow from the start.
			name: "loss",
			scn: Scenario{
				Seed: 3, GPSUsers: 2, DataUsers: 6, Load: 0.6,
				VariableSizes: true, Cycles: 25, WarmupCycles: 5,
				ReverseLoss: 0.08,
			},
			counter: func(m *Metrics) uint64 { return m.CompiledFallbackLoss.Value() },
		},
		{
			// Registration rides contention slots: cycles where a plan
			// includes a contention transmission fall back at
			// control-field delivery.
			name: "contention",
			scn: Scenario{
				Seed: 1, GPSUsers: 0, DataUsers: 8, Load: 0.5,
				VariableSizes: true, Cycles: 20, WarmupCycles: 0,
			},
			counter:  func(m *Metrics) uint64 { return m.CompiledFallbackContention.Value() },
			midCycle: true,
		},
		{
			// GPS users admitted after a cycle's CF1 get their slot
			// granted by CF2 amendment; the amendment is only detected
			// when CF2 is built, mid-cycle.
			name: "amendment",
			scn: Scenario{
				Seed: 5, GPSUsers: 8, DataUsers: 8, Load: 0.8,
				VariableSizes: true, Cycles: 30, WarmupCycles: 0,
			},
			counter:  func(m *Metrics) uint64 { return m.CompiledFallbackAmendment.Value() },
			midCycle: true,
		},
		{
			// Staggered GPS registrations cross the >3 active-user
			// boundary, switching format 2 → 1; the switch cycle runs
			// slow and recompiles against the other template.
			name: "format-switch",
			scn: Scenario{
				Seed: 5, GPSUsers: 6, DataUsers: 4, Load: 0.4,
				VariableSizes: true, Cycles: 20, WarmupCycles: 0,
			},
			counter: func(m *Metrics) uint64 { return m.CompiledFallbackFormat.Value() },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := twinRun(t, tc.scn)
			if m.CompiledCycles.Value() == 0 {
				t.Fatal("compiled executor never activated")
			}
			if got := tc.counter(m); got == 0 {
				t.Fatalf("fallback reason %q never triggered (compiled cycles %d, total fallbacks %d)",
					tc.name, m.CompiledCycles.Value(), m.CompiledFallbacks.Value())
			}
			if m.CompiledFallbacks.Value() == 0 {
				t.Fatal("reason counted but no cycle deactivated")
			}
			if tc.midCycle && m.CompiledFallbacks.Value() == m.CompiledCycles.Value() &&
				m.CompiledFallbackLoss.Value() == 0 && m.CompiledFallbackFormat.Value() == 0 {
				// Mid-cycle reasons must leave at least one cycle fully
				// fast once the trigger subsides; a permanently slow run
				// means the trigger never actually cleared.
				t.Fatalf("every cycle fell back (%d of %d): mid-cycle trigger never subsided",
					m.CompiledFallbacks.Value(), m.CompiledCycles.Value())
			}
		})
	}
}

// TestCompiledFormatSwitchRecompiles pins the cache-invalidation
// contract: a reverse-format switch recompiles (reuses the other
// cached template) and runs the switch cycle slow.
func TestCompiledFormatSwitchRecompiles(t *testing.T) {
	m := twinRun(t, Scenario{
		Seed: 5, GPSUsers: 6, DataUsers: 4, Load: 0.4,
		VariableSizes: true, Cycles: 20, WarmupCycles: 0,
	})
	if m.CompiledRecompiles.Value() == 0 {
		t.Fatal("format switch did not recompile")
	}
	if m.CompiledRecompiles.Value() != m.CompiledFallbackFormat.Value() {
		t.Fatalf("recompiles (%d) != format fallbacks (%d): every switch cycle must run slow",
			m.CompiledRecompiles.Value(), m.CompiledFallbackFormat.Value())
	}
}

// FuzzCompiledCycle is the differential fuzz target: the fuzzer
// explores scenario configurations and for every one the compiled and
// event-driven engines must emit byte-identical trace streams, equal
// metric snapshots, and equal kernel action counts, with the compiled
// run passing the protocol-invariant checker.
func FuzzCompiledCycle(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(4), uint8(5), uint8(0))
	f.Add(uint64(5), uint8(8), uint8(8), uint8(8), uint8(0))
	f.Add(uint64(3), uint8(2), uint8(6), uint8(6), uint8(1))
	f.Add(uint64(42), uint8(0), uint8(1), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, gpsRaw, dataRaw, loadRaw, lossRaw uint8) {
		scn := Scenario{
			Seed:          seed,
			GPSUsers:      int(gpsRaw % 9),          // 0..8
			DataUsers:     int(dataRaw%12) + 1,      // 1..12
			Load:          float64(loadRaw%13) / 10, // 0.0..1.2
			VariableSizes: seed%2 == 0,
			Cycles:        8,
			WarmupCycles:  2,
			ReverseLoss:   float64(lossRaw%3) * 0.08, // 0, 0.08, 0.16
		}
		twinRun(t, scn)
	})
}

// TestCompiledCycleZeroAlloc pins the tentpole's steady-state
// allocation contract: an idle cell (active data users, no queued
// traffic, no GPS) runs entire compiled cycles without a single heap
// allocation. Templates compile lazily and registration rides
// contention, so the cell warms up first.
func TestCompiledCycleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cfg := NewConfig()
	cfg.Seed = 1
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := n.AddSubscriber(EIN(2000+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Settle registration and warm the template cache and kernel heap.
	if err := n.Run(5); err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	sim := n.Sim()
	start := sim.Now()
	// Pre-schedule every measured cycle in one shot; the per-cycle
	// begin events are the only allocating part of an idle steady state
	// and they amortize across any scheduling horizon.
	if err := n.ScheduleCycles(rounds+2, start); err != nil {
		t.Fatal(err)
	}
	step := 0
	allocs := testing.AllocsPerRun(rounds, func() {
		step++
		if err := sim.Run(start + time.Duration(step)*CycleLength); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("idle compiled cycle: %v allocs/op, want 0", allocs)
	}
	m := n.Metrics()
	if m.CompiledCycles.Value() == 0 {
		t.Fatal("compiled executor never activated")
	}
	if fb, cc := m.CompiledFallbacks.Value(), m.CompiledCycles.Value(); fb >= cc {
		t.Fatalf("idle steady state fell back (%d of %d cycles)", fb, cc)
	}
}

// TestCompiledDisabledRunsEventKernel verifies the escape hatch: with
// the toggle set, no compiled cycle ever activates.
func TestCompiledDisabledRunsEventKernel(t *testing.T) {
	scn := NewScenario()
	scn.Cycles, scn.WarmupCycles = 10, 0
	scn.DisableCompiledCycle = true
	n, err := Build(scn)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := n.Metrics().CompiledCycles.Value(); got != 0 {
		t.Fatalf("DisableCompiledCycle: %d compiled cycles, want 0", got)
	}
}
