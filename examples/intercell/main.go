// Inter-cell messaging: the paper's system model connects base stations
// with a wired point-to-point backbone that forwards subscriber packets
// to their destinations (§2.2). Here two cells run on one virtual
// clock: a message climbs cell 0's 4.8 kbps reverse channel, crosses
// the wire, and descends cell 1's 6.4 kbps forward channel — every leg
// under the full MAC (reservation, RS coding, half-duplex scheduling).
package main

import (
	"fmt"
	"log"
	"time"

	osumac "github.com/osu-netlab/osumac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := osumac.NewConfig()
	cfg.Seed = 12

	in, err := osumac.NewInternet(cfg, 2, 25*time.Millisecond)
	if err != nil {
		return err
	}

	// Three subscribers per cell.
	var east, west []osumac.Address
	for i := 0; i < 3; i++ {
		a := osumac.Address(100 + i)
		b := osumac.Address(200 + i)
		if _, err := in.AddSubscriber(a, 0, false, 0); err != nil {
			return err
		}
		if _, err := in.AddSubscriber(b, 1, false, time.Duration(i)*time.Second); err != nil {
			return err
		}
		east = append(east, a)
		west = append(west, b)
	}

	// Registration settles, then cross-cell e-mails flow both ways.
	if err := in.Run(5); err != nil {
		return err
	}
	sizes := []int{80, 250, 500}
	for i := range east {
		if err := in.Send(east[i], west[i], sizes[i]); err != nil {
			return err
		}
		if err := in.Send(west[i], east[i], sizes[(i+1)%3]); err != nil {
			return err
		}
	}
	if err := in.Run(30); err != nil {
		return err
	}

	fmt.Println("two OSU-MAC cells over a wired backbone")
	fmt.Printf("  inter-cell messages forwarded  %d\n", in.Forwarded.Value())
	fmt.Printf("  delivered to destination base  %d\n", in.Delivered.Value())
	fmt.Printf("  uplink leg latency             mean %.1fs (%.1f cycles)\n",
		in.EndToEndLat.Mean(), in.EndToEndLat.Mean()/osumac.CycleLength.Seconds())
	for i := 0; i < in.Cells(); i++ {
		m := in.Cell(i).Metrics()
		fmt.Printf("  cell %d: uplink msgs %d, downlink pkts %d/%d\n",
			i, m.MessagesDelivered.Value(),
			m.ForwardPktsDelivered.Value(), m.ForwardPktsSent.Value())
	}
	if in.Delivered.Value() != 6 {
		return fmt.Errorf("expected 6 inter-cell deliveries, got %d", in.Delivered.Value())
	}
	fmt.Println("\nall six cross-cell e-mails arrived ✓")
	return nil
}
