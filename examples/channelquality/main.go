// Channel quality: sweep the link SNR through a physically calibrated
// AWGN/QPSK channel and watch the coded system's waterfall — below the
// cliff the RS(64,48) decoder loses most packets and the MAC's
// retransmissions can't keep up; above it the link is essentially
// clean. This is the error-control behaviour the paper's §2.2 field
// tests describe: packets arrive intact or not at all.
package main

import (
	"fmt"
	"log"

	osumac "github.com/osu-netlab/osumac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("OSU-MAC over an AWGN channel: Eb/N0 sweep (QPSK + RS(64,48))")
	fmt.Printf("%8s %12s %12s %14s %12s %14s\n",
		"Eb/N0", "byte-err", "cw-loss", "msgs delivered", "frag loss", "GPS delivered")

	for _, snr := range []float64{4, 5, 6, 7, 8, 10} {
		model := osumac.NewAWGN(snr)

		cfg := osumac.NewConfig()
		cfg.Seed = 5
		cfg.NewReverseModel = func() osumac.ErrorModel { return osumac.NewAWGN(snr) }
		cfg.NewForwardModel = func() osumac.ErrorModel { return osumac.NewAWGN(snr + 3) } // base transmits stronger
		cfg.MeanInterarrival = osumac.InterarrivalForLoad(0.5, 6, 2, true)

		n, err := osumac.NewNetwork(cfg)
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if _, err := n.AddSubscriber(osumac.EIN(1000+i), true, 0); err != nil {
				return err
			}
		}
		for i := 0; i < 6; i++ {
			if _, err := n.AddSubscriber(osumac.EIN(2000+i), false, 0); err != nil {
				return err
			}
		}
		if err := n.Run(150); err != nil {
			return err
		}
		m := n.Metrics()

		sent := m.FragmentsSent.Value()
		lost := m.FragmentsLost.Value()
		fragLoss := 0.0
		if sent > 0 {
			fragLoss = float64(lost) / float64(sent)
		}
		gpsRate := 0.0
		if g := m.GPSGenerated.Value(); g > 0 {
			gpsRate = float64(m.GPSDelivered.Value()) / float64(g)
		}
		fmt.Printf("%6.1fdB %12.2e %12.2e %7d/%-6d %11.1f%% %13.1f%%\n",
			snr, model.ByteErrorRate(), model.CodewordLossProbability(64, 8),
			m.MessagesDelivered.Value(), m.MessagesGenerated.Value(),
			100*fragLoss, 100*gpsRate)
	}

	fmt.Println("\nthe waterfall sits near 5-6 dB: one dB of SNR turns an unusable")
	fmt.Println("link into a clean one — the bimodal behaviour the paper's field")
	fmt.Println("tests reported (packets are delivered error-free or lost).")
	return nil
}
