// Registration under a noisy channel: mobile subscribers enter the cell
// over time and register through contention slots, persisting through
// collisions (registrants have priority: data and reservation senders
// back off, registrants do not). A Gilbert–Elliott burst channel plus
// the real RS(64,48) decoder corrupts both the uplink requests and the
// downlink control fields, so some attempts are lost to the radio — the
// §2.1 design targets (80 % within 2 cycles, 99 % within 10) must still
// hold.
package main

import (
	"fmt"
	"log"
	"time"

	osumac "github.com/osu-netlab/osumac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := osumac.NewConfig()
	cfg.Seed = 2001
	// Burst channel: rare transitions into a severely errored state —
	// the RS decoder either corrects everything or fails the packet,
	// reproducing the testbed's bimodal field observations.
	cfg.NewReverseModel = func() osumac.ErrorModel {
		return osumac.NewGilbertElliott(0.004, 0.12, 0.0005, 0.6)
	}
	cfg.NewForwardModel = func() osumac.ErrorModel {
		return osumac.NewGilbertElliott(0.002, 0.15, 0.0002, 0.6)
	}

	n, err := osumac.NewNetwork(cfg)
	if err != nil {
		return err
	}

	// 24 subscribers trickle into the cell over ~90 seconds.
	const subscribers = 24
	for i := 0; i < subscribers; i++ {
		joinAt := time.Duration(i) * 3800 * time.Millisecond
		if _, err := n.AddSubscriber(osumac.EIN(500+i), i%6 == 0, joinAt); err != nil {
			return err
		}
	}

	if err := n.Run(60); err != nil {
		return err
	}

	m := n.Metrics()
	active := 0
	for _, sub := range n.Subscribers() {
		if sub.State() == osumac.StateActive {
			active++
		}
	}

	fmt.Println("registration over a bursty narrow-band channel")
	fmt.Printf("  subscribers entered        %d (every 3.8 s)\n", subscribers)
	fmt.Printf("  registered                 %d\n", active)
	fmt.Printf("  control-field decode fails %d (bursts hit the schedule broadcast)\n",
		m.CFDecodeFailures.Value())
	fmt.Printf("  contention collisions      %d\n", m.ContentionCollisions.Value())
	fmt.Printf("  registration latency       mean %.2f cycles, max %.0f\n",
		m.RegistrationLatency.Mean(), m.RegistrationLatency.Max())
	fmt.Printf("  within 2 cycles            %.1f %% (target ≥ 80 %%)\n", 100*m.RegistrationWithin(2))
	fmt.Printf("  within 10 cycles           %.1f %% (target ≥ 99 %%)\n", 100*m.RegistrationWithin(10))

	if active != subscribers {
		return fmt.Errorf("%d subscribers failed to register", subscribers-active)
	}
	if m.RegistrationWithin(10) < 0.99 {
		return fmt.Errorf("10-cycle target missed")
	}
	fmt.Println("\nall subscribers registered despite channel bursts ✓")
	return nil
}
