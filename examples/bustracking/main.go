// Bus tracking: the paper's motivating real-time application. Eight
// buses carry GPS units that report their position every 4 seconds;
// the MAC must deliver every report within a 4-second access delay even
// while data users load the reverse channel, and must keep the bound
// through bus churn (sign-offs trigger the dynamic GPS slot adjustment
// rules R1–R3 and the format-2 conversion).
package main

import (
	"fmt"
	"log"
	"time"

	osumac "github.com/osu-netlab/osumac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn := osumac.NewScenario()
	scn.Seed = 99
	scn.GPSUsers = 8 // full bus fleet
	scn.DataUsers = 10
	scn.Load = 0.9
	scn.Cycles = 200
	scn.WarmupCycles = 0

	n, err := osumac.Build(scn)
	if err != nil {
		return err
	}

	// Phase 1: all eight buses in service.
	if err := n.Run(100); err != nil {
		return err
	}
	report(n, "phase 1: 8 buses in service")
	if n.Base().Layout().Format != osumac.Format1 {
		return fmt.Errorf("expected format 1 with 8 buses, got %v", n.Base().Layout().Format)
	}

	// Phase 2: five buses end their routes. The GPS slot table
	// consolidates (rules R1–R3) and the cell converts the idle GPS
	// slots into a ninth data slot (format 2) — all without ever
	// stretching a surviving bus's access interval past 4 s.
	table := n.Base().GPSTable()
	retired := 0
	for _, sub := range n.Subscribers() {
		if retired >= 5 || !sub.IsGPS || sub.State() != osumac.StateActive {
			continue
		}
		if err := n.Deregister(sub); err != nil {
			return err
		}
		retired++
	}
	fmt.Printf("\nretired %d buses; GPS table consolidated=%v, active=%d\n",
		retired, table.Consolidated(), table.Active())

	if err := n.Run(100); err != nil {
		return err
	}
	report(n, "phase 2: 3 buses remain (format 2, 9 data slots)")
	if n.Base().Layout().Format != osumac.Format2 {
		return fmt.Errorf("expected format 2 with 3 buses, got %v", n.Base().Layout().Format)
	}

	m := n.Metrics()
	if m.GPSDeadlineViolations.Value() > 0 {
		return fmt.Errorf("real-time bound violated %d times", m.GPSDeadlineViolations.Value())
	}
	fmt.Println("\nall GPS reports met the 4-second bound through the format switch ✓")
	return nil
}

func report(n *osumac.Network, phase string) {
	m := n.Metrics()
	fmt.Printf("\n-- %s --\n", phase)
	fmt.Printf("  cycle format           %v (%d data slots)\n",
		n.Base().Layout().Format, len(n.Base().Layout().ReverseData))
	fmt.Printf("  GPS reports delivered  %d / %d generated\n",
		m.GPSDelivered.Value(), m.GPSGenerated.Value())
	fmt.Printf("  GPS access delay       mean %.2fs  max %.3fs  (bound 4s)\n",
		m.GPSAccessDelay.Mean(), m.GPSAccessDelay.Max())
	fmt.Printf("  data slots used/cycle  %.2f\n", m.MeanDataSlotsUsed())
	_ = time.Second
}
