// Quickstart: run one OSU-MAC cell at moderate load and print the
// headline metrics the paper evaluates.
package main

import (
	"fmt"
	"log"

	osumac "github.com/osu-netlab/osumac"
)

func main() {
	scn := osumac.NewScenario()
	scn.Seed = 7
	scn.GPSUsers = 4   // four buses reporting position every 4 s
	scn.DataUsers = 10 // ten e-mail subscribers
	scn.Load = 0.8     // 80 % of reverse-channel slot capacity
	scn.Cycles = 300
	scn.WarmupCycles = 20

	res, err := osumac.Run(scn)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("OSU-MAC quickstart — one cell, ~21 minutes of air time")
	fmt.Printf("  notification cycle length  %v\n", osumac.CycleLength)
	fmt.Printf("  reverse-link utilization   %.1f %%\n", 100*res.Utilization)
	fmt.Printf("  mean message delay         %.1f cycles\n", res.MeanDelayCycles)
	fmt.Printf("  contention collision prob  %.3f\n", res.CollisionProbability)
	fmt.Printf("  Jain fairness index        %.4f\n", res.Fairness)
	fmt.Printf("  2nd-control-field gain     %.1f %% of data packets\n", 100*res.SecondCFGain)
	fmt.Printf("  GPS max access delay       %.3f s (bound: 4 s)\n", res.GPSMaxAccessDelay)
	fmt.Printf("  GPS deadline violations    %d\n", res.GPSDeadlineViolations)
	fmt.Printf("  messages delivered         %d (dropped %d)\n",
		res.Metrics.MessagesDelivered.Value(), res.Metrics.MessagesDropped.Value())
}
