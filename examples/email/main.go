// E-mail delivery: the paper's non-real-time application. Subscribers
// exchange short e-mails in both directions — uplink through reservation
// and contention on the 4.8 kbps reverse channel, downlink through
// base-scheduled forward slots on the 6.4 kbps forward channel — while
// the half-duplex constraint forbids any mobile from transmitting within
// 20 ms of receiving.
package main

import (
	"fmt"
	"log"
	"time"

	osumac "github.com/osu-netlab/osumac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scn := osumac.NewScenario()
	scn.Seed = 11
	scn.GPSUsers = 2
	scn.DataUsers = 8
	scn.Load = 0.6 // uplink e-mail load
	scn.Cycles = 200
	scn.WarmupCycles = 0

	n, err := osumac.Build(scn)
	if err != nil {
		return err
	}

	// Let everyone register first.
	if err := n.Run(10); err != nil {
		return err
	}

	// Queue inbound e-mails (base → subscriber) of assorted sizes; the
	// base station fragments each into 41-byte MAC payloads and fits
	// them around the half-duplex constraints of each recipient's
	// uplink schedule.
	inbound := []int{95, 250, 480, 1200, 64}
	sent := 0
	for i, sub := range n.Subscribers() {
		if sub.IsGPS || sub.State() != osumac.StateActive {
			continue
		}
		if sent >= len(inbound) {
			break
		}
		if err := n.SendToSubscriber(sub, inbound[sent]); err != nil {
			return fmt.Errorf("inbound to subscriber %d: %w", i, err)
		}
		sent++
	}
	fmt.Printf("queued %d inbound e-mails for delivery\n", sent)

	if err := n.Run(190); err != nil {
		return err
	}

	m := n.Metrics()
	fmt.Println("\ne-mail workload summary (~13 minutes of air time)")
	fmt.Printf("  uplink messages    %d delivered / %d generated (%.1f %% dropped)\n",
		m.MessagesDelivered.Value(), m.MessagesGenerated.Value(),
		100*float64(m.MessagesDropped.Value())/float64(m.MessagesGenerated.Value()+m.MessagesDropped.Value()))
	fmt.Printf("  uplink delay       mean %.1f cycles, p95 %.1f cycles\n",
		m.MeanDelayCycles(osumac.CycleLength),
		m.MessageDelay.Percentile(95)/osumac.CycleLength.Seconds())
	fmt.Printf("  uplink utilization %.1f %% of reverse data slots\n", 100*m.Utilization())
	fmt.Printf("  downlink packets   %d delivered / %d sent\n",
		m.ForwardPktsDelivered.Value(), m.ForwardPktsSent.Value())
	fmt.Printf("  reservation signalling: %d explicit packets, %d piggybacked requests\n",
		m.ReservationPackets.Value(), m.PiggybackRequests.Value())

	if m.ForwardPktsDelivered.Value() != m.ForwardPktsSent.Value() {
		return fmt.Errorf("downlink lost packets on an ideal channel")
	}
	fmt.Println("\nall inbound e-mails delivered around the half-duplex schedule ✓")
	_ = time.Second
	return nil
}
