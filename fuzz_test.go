package osumac

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyScenarioInvariants runs randomized scenarios and checks
// the invariants that must hold for ANY configuration:
//
//   - no panics, no errors;
//   - utilization and fairness in [0, 1];
//   - conservation: delivered ≤ generated (messages and bytes);
//   - on an ideal channel, zero GPS deadline violations and no fragment
//     losses;
//   - registration never over-admits the population.
func TestPropertyScenarioInvariants(t *testing.T) {
	f := func(seed uint64, gpsRaw, dataRaw, loadRaw, lossRaw uint8) bool {
		scn := Scenario{
			Seed:          seed,
			GPSUsers:      int(gpsRaw % 9),          // 0..8
			DataUsers:     int(dataRaw%12) + 1,      // 1..12
			Load:          float64(loadRaw%13) / 10, // 0.0..1.2
			VariableSizes: seed%2 == 0,
			Cycles:        40,
			WarmupCycles:  5,
			ReverseLoss:   float64(lossRaw%3) * 0.08, // 0, 0.08, 0.16
		}
		res, err := Run(scn)
		if err != nil {
			t.Logf("scenario error: %v (%+v)", err, scn)
			return false
		}
		m := res.Metrics
		if res.Utilization < 0 || res.Utilization > 1 {
			t.Logf("utilization %v out of range", res.Utilization)
			return false
		}
		if res.Fairness < 0 || res.Fairness > 1.0000001 {
			t.Logf("fairness %v out of range", res.Fairness)
			return false
		}
		if m.MessagesDelivered.Value() > m.MessagesGenerated.Value() {
			t.Log("delivered more messages than generated")
			return false
		}
		if m.BytesDelivered.Value() > m.BytesGenerated.Value() {
			t.Log("delivered more bytes than generated")
			return false
		}
		if m.GPSDelivered.Value() > m.GPSGenerated.Value() {
			t.Log("delivered more GPS reports than generated")
			return false
		}
		if scn.ReverseLoss == 0 {
			if m.GPSDeadlineViolations.Value() != 0 {
				t.Logf("GPS violations on ideal channel (%+v)", scn)
				return false
			}
			if m.FragmentsLost.Value() != 0 {
				t.Log("fragment losses on ideal channel")
				return false
			}
		}
		if got := int(m.RegistrationsApproved.Value()); got > scn.GPSUsers+scn.DataUsers {
			t.Logf("over-admitted: %d registrations for %d subscribers", got, scn.GPSUsers+scn.DataUsers)
			return false
		}
		return true
	}
	// Pinned RNG: quick.Check's default time seed makes the drawn
	// scenarios differ per run, so CI would fail only when it happens
	// to draw a latent edge case. One such draw used to exist
	// (Seed=8188083318138684029, 7 GPS users, load 1.0 → 2 GPS
	// deadline violations on an ideal channel, fixed by the
	// deadline-aware grant policy and pinned in
	// gps_deadline_regression_test.go). FuzzScenario keeps exploring
	// randomly; this test stays reproducible like everything else in
	// the repo.
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// FuzzScenario is the native-fuzzing twin of the property test above:
// the fuzzer explores scenario configurations and every one must run
// without error while preserving the conservation invariants. Cycle
// counts are kept short so each execution stays cheap. Seed corpus:
// testdata/fuzz/FuzzScenario.
func FuzzScenario(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(4), uint8(5), uint8(0))
	f.Add(uint64(7), uint8(8), uint8(11), uint8(12), uint8(2))
	f.Add(uint64(42), uint8(0), uint8(1), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, gpsRaw, dataRaw, loadRaw, lossRaw uint8) {
		scn := Scenario{
			Seed:          seed,
			GPSUsers:      int(gpsRaw % 9),          // 0..8
			DataUsers:     int(dataRaw%12) + 1,      // 1..12
			Load:          float64(loadRaw%13) / 10, // 0.0..1.2
			VariableSizes: seed%2 == 0,
			Cycles:        8,
			WarmupCycles:  2,
			ReverseLoss:   float64(lossRaw%3) * 0.08, // 0, 0.08, 0.16
		}
		res, err := Run(scn)
		if err != nil {
			t.Fatalf("scenario error: %v (%+v)", err, scn)
		}
		m := res.Metrics
		if res.Utilization < 0 || res.Utilization > 1 {
			t.Fatalf("utilization %v out of range (%+v)", res.Utilization, scn)
		}
		if res.Fairness < 0 || res.Fairness > 1.0000001 {
			t.Fatalf("fairness %v out of range (%+v)", res.Fairness, scn)
		}
		if m.MessagesDelivered.Value() > m.MessagesGenerated.Value() {
			t.Fatalf("delivered more messages than generated (%+v)", scn)
		}
		if m.BytesDelivered.Value() > m.BytesGenerated.Value() {
			t.Fatalf("delivered more bytes than generated (%+v)", scn)
		}
		if m.GPSDelivered.Value() > m.GPSGenerated.Value() {
			t.Fatalf("delivered more GPS reports than generated (%+v)", scn)
		}
		if got := int(m.RegistrationsApproved.Value()); got > scn.GPSUsers+scn.DataUsers {
			t.Fatalf("over-admitted: %d registrations for %d subscribers (%+v)",
				got, scn.GPSUsers+scn.DataUsers, scn)
		}
	})
}

// TestPropertySeedSensitivity verifies different seeds actually change
// outcomes (the RNG plumbing reaches the protocol) while the same seed
// never does.
func TestPropertySeedSensitivity(t *testing.T) {
	base := NewScenario()
	base.Cycles = 60
	base.WarmupCycles = 5
	run := func(seed uint64) uint64 {
		scn := base
		scn.Seed = seed
		res, err := Run(scn)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.MessagesGenerated.Value()*1000003 +
			res.Metrics.ContentionCollisions.Value()*1009 +
			res.Metrics.MessagesDelivered.Value()
	}
	a, b := run(1), run(1)
	if a != b {
		t.Fatal("same seed diverged")
	}
	diff := 0
	for s := uint64(2); s < 8; s++ {
		if run(s) != a {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("six different seeds all produced identical runs")
	}
}
