package osumac_test

// ReplicatedSweep benchmarks live in an external test package because
// internal/experiments imports the root package (in-package tests would
// create an import cycle). They size the experiment engine itself:
// serial vs parallel at 2 replications over 2 load points.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/osu-netlab/osumac/internal/experiments"
)

func sweepBenchOptions(workers int) experiments.SweepOptions {
	return experiments.SweepOptions{
		Seed:      42,
		GPSUsers:  4,
		DataUsers: 10,
		Cycles:    60,
		Warmup:    5,
		Variable:  true,
		Loads:     []float64{0.5, 0.9},
		Workers:   workers,
	}
}

// BenchmarkReplicatedSweep measures the full replicated load sweep (2
// replications × 2 loads) through the parallel experiment engine.
func BenchmarkReplicatedSweep(b *testing.B) {
	variants := []struct {
		name    string
		workers int
	}{{"serial", 1}}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		// On a single-CPU machine the parallel variant is the serial one
		// with scheduling overhead; benchmark it only when it can win.
		variants = append(variants, struct {
			name    string
			workers int
		}{fmt.Sprintf("parallel-%d", n), n})
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				pts, err := experiments.ReplicatedSweep(sweepBenchOptions(v.workers), 2)
				if err != nil {
					b.Fatal(err)
				}
				util = pts[len(pts)-1].UtilizationMean
			}
			b.ReportMetric(util, "util-mean")
		})
	}
}
