package core

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// auditCycle validates every protocol invariant of one announced
// schedule:
//
//   - no user appears in both a reverse slot and an overlapping (or
//     switch-guard-violating) forward slot (half-duplex, paper §3.5);
//   - the CF2 listener is not assigned forward slot 0 nor any reverse
//     slot starting before CF2 ends plus the switch guard;
//   - every scheduled user can hear its control fields: its reverse
//     transmissions never overlap the CF set it listens to;
//   - GPS slots only carry GPS-class users and data slots never carry a
//     user twice... (slot vectors are one-user-per-slot by construction,
//     but a user's slots must respect the half-duplex plan as a whole).
func auditCycle(t *testing.T, n *Network) {
	t.Helper()
	b := n.Base()
	layout := b.Layout()
	cf := b.ControlFields()
	cf2User := b.CF2User()

	type radio struct {
		plan phy.HalfDuplexPlan
		used bool
	}
	plans := map[frame.UserID]*radio{}
	get := func(u frame.UserID) *radio {
		r, ok := plans[u]
		if !ok {
			r = &radio{}
			plans[u] = r
		}
		r.used = true
		return r
	}

	// Reverse transmissions.
	for i, u := range cf.GPSSchedule {
		if u == frame.NoUser || i >= len(layout.GPS) {
			continue
		}
		if err := get(u).plan.AddTransmit(layout.GPS[i]); err != nil {
			t.Fatalf("cycle %d: GPS slot %d for %v: %v", n.Cycle(), i, u, err)
		}
	}
	for i, u := range cf.ReverseSchedule {
		if u == frame.NoUser || i >= len(layout.ReverseData) {
			continue
		}
		if err := get(u).plan.AddTransmit(layout.ReverseData[i]); err != nil {
			t.Fatalf("cycle %d: reverse slot %d for %v: %v", n.Cycle(), i, u, err)
		}
	}

	// Control-field listening: everyone scheduled must be able to hear
	// its CF set. The CF2 listener (last-slot user of the previous
	// cycle) listens to CF2; everyone else to CF1.
	for u, r := range plans {
		listen := layout.CF1
		if u == cf2User {
			listen = layout.CF2
		}
		if err := r.plan.AddReceive(listen); err != nil {
			t.Fatalf("cycle %d: user %v cannot hear its control fields: %v", n.Cycle(), u, err)
		}
	}

	// Forward receptions.
	for i, u := range cf.ForwardSchedule {
		if u == frame.NoUser {
			continue
		}
		if i == 0 && u == cf2User {
			t.Fatalf("cycle %d: CF2 listener %v assigned forward slot 0", n.Cycle(), u)
		}
		if err := get(u).plan.AddReceive(layout.ForwardData[i]); err != nil {
			t.Fatalf("cycle %d: forward slot %d for %v violates half-duplex: %v",
				n.Cycle(), i, u, err)
		}
	}

	// CF2 listener must not transmit before it has heard CF2.
	if cf2User != frame.NoUser {
		minStart := layout.CF2.End + phy.HalfDuplexSwitch
		for i, u := range cf.ReverseSchedule {
			if u == cf2User && i < len(layout.ReverseData) && layout.ReverseData[i].Start < minStart {
				t.Fatalf("cycle %d: CF2 listener %v scheduled at %v before CF2+switch %v",
					n.Cycle(), u, layout.ReverseData[i].Start, minStart)
			}
		}
	}

	// Schedulable sanity: a GPS-class user never holds a data slot and
	// vice versa (the base books demand only for data users, GPS slots
	// only from the GPS table).
	for i, u := range cf.GPSSchedule {
		if u == frame.NoUser {
			continue
		}
		for j, v := range cf.ReverseSchedule {
			if v == u {
				t.Fatalf("cycle %d: user %v holds GPS slot %d and data slot %d", n.Cycle(), u, i, j)
			}
		}
	}
}

// TestScheduleInvariantsUnderLoad audits every cycle of a heavily loaded
// mixed cell, with bidirectional traffic forcing forward assignments
// around reverse schedules.
func TestScheduleInvariantsUnderLoad(t *testing.T) {
	cfg := NewConfig()
	cfg.Seed = 31
	cfg.MeanInterarrival = traffic.InterarrivalForSlots(
		1.0, 8, traffic.PaperVariable, frame.MaxPayload, phy.CycleLength, 8)
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dataSubs []*Subscriber
	for i := 0; i < 4; i++ {
		if _, err := n.AddSubscriber(frame.EIN(1000+i), true, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		s, err := n.AddSubscriber(frame.EIN(2000+i), false, time.Duration(i)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		dataSubs = append(dataSubs, s)
	}
	for cycle := 0; cycle < 120; cycle++ {
		if err := n.Run(1); err != nil {
			t.Fatal(err)
		}
		auditCycle(t, n)
		// Keep the forward queues busy so forward assignment happens
		// around the reverse schedule.
		if cycle%5 == 0 {
			for _, s := range dataSubs {
				if s.State() == StateActive {
					if err := n.SendToSubscriber(s, 120); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		}
	}
}

// TestScheduleInvariantsFormat2 audits the tighter format-2 layout
// (its first data slot starts before CF2 ends, exercising the CF2
// listener swap logic).
func TestScheduleInvariantsFormat2(t *testing.T) {
	cfg := NewConfig()
	cfg.Seed = 77
	cfg.MeanInterarrival = traffic.InterarrivalForSlots(
		1.1, 6, traffic.PaperVariable, frame.MaxPayload, phy.CycleLength, 9)
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSubscriber(1000, true, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := n.AddSubscriber(frame.EIN(2000+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	sawCF2User := false
	for cycle := 0; cycle < 150; cycle++ {
		if err := n.Run(1); err != nil {
			t.Fatal(err)
		}
		auditCycle(t, n)
		if n.Base().CF2User() != frame.NoUser {
			sawCF2User = true
		}
	}
	if n.Base().Layout().Format != Format2 {
		t.Fatal("expected format 2")
	}
	if !sawCF2User {
		t.Fatal("last slot never used: CF2 swap logic untested")
	}
}
