package core

import (
	"testing"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/sim"
)

func newTestBase(t *testing.T, mutate func(*Config)) (*BaseStation, *Metrics) {
	t.Helper()
	cfg := NewConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	return NewBaseStation(&cfg, m, sim.NewRNG(1)), m
}

func regPayload(t *testing.T, ein frame.EIN, gps bool) []byte {
	t.Helper()
	b, err := (&frame.RegistrationRequest{EIN: ein, WantGPS: gps}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func resPayload(t *testing.T, user frame.UserID, slots uint8) []byte {
	t.Helper()
	b, err := (&frame.ReservationRequest{User: user, Slots: slots}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func dataPayload(t *testing.T, user frame.UserID, more uint8, msgID uint16, frag, total uint8, n int) []byte {
	t.Helper()
	b, err := (&frame.DataPacket{
		Header:  frame.DataHeader{User: user, MoreSlots: more, MsgID: msgID, Frag: frag, FragTotal: total},
		Payload: make([]byte, n),
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func register(t *testing.T, b *BaseStation, ein frame.EIN, gps bool) frame.UserID {
	t.Helper()
	out := b.RecordReverse(0, false, false, [][]byte{regPayload(t, ein, gps)}, true)
	if !out.NewRegistration {
		t.Fatalf("registration of %d failed", ein)
	}
	return out.AssignedID
}

func TestBaseRegistrationAssignsSequentialIDs(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	u1 := register(t, b, 100, false)
	u2 := register(t, b, 101, true)
	if u1 == u2 {
		t.Fatal("duplicate ID assignment")
	}
	if m.RegistrationsApproved.Value() != 2 {
		t.Fatalf("approved = %d", m.RegistrationsApproved.Value())
	}
	if b.ActiveUsers() != 2 {
		t.Fatalf("active = %d", b.ActiveUsers())
	}
	// GPS registrant got a GPS slot.
	if b.GPSTable().SlotOf(u2) != 0 {
		t.Fatal("GPS registrant has no slot")
	}
	if b.GPSTable().SlotOf(u1) != -1 {
		t.Fatal("data registrant has a GPS slot")
	}
}

func TestBaseReregistrationIsIdempotent(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	u1 := register(t, b, 100, false)
	u2 := register(t, b, 100, false)
	if u1 != u2 {
		t.Fatalf("re-registration changed ID: %v → %v", u1, u2)
	}
	if b.ActiveUsers() != 1 {
		t.Fatal("re-registration duplicated the subscriber")
	}
}

func TestBaseGPSCapacity(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	for i := 0; i < 8; i++ {
		register(t, b, frame.EIN(200+i), true)
	}
	out := b.RecordReverse(0, false, false, [][]byte{regPayload(t, 300, true)}, true)
	if out.NewRegistration {
		t.Fatal("9th GPS user admitted")
	}
	if m.RegistrationsFailed.Value() != 1 {
		t.Fatalf("failed = %d", m.RegistrationsFailed.Value())
	}
}

func TestBaseCollisionDetection(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	out := b.RecordReverse(0, false, false, [][]byte{
		regPayload(t, 100, false),
		regPayload(t, 101, false),
	}, true)
	if !out.Collision {
		t.Fatal("two transmissions did not collide")
	}
	if out.Received != nil {
		t.Fatal("collision produced a reception")
	}
	if m.ContentionCollisions.Value() != 1 {
		t.Fatal("collision not counted")
	}
	if b.ActiveUsers() != 0 {
		t.Fatal("collision admitted users")
	}
}

func TestBaseReservationBooksDemand(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, false)
	b.RecordReverse(0, false, false, [][]byte{resPayload(t, u, 5)}, true)
	b.BeginCycle()
	// The reverse schedule must grant the user slots.
	granted := 0
	for _, x := range b.ControlFields().ReverseSchedule {
		if x == u {
			granted++
		}
	}
	if granted != 5 {
		t.Fatalf("granted %d slots, want 5", granted)
	}
}

func TestBaseReservationFromUnknownUserIgnored(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	b.RecordReverse(0, false, false, [][]byte{resPayload(t, 7, 3)}, true)
	if m.ReservationPackets.Value() != 0 {
		t.Fatal("reservation from unknown user counted")
	}
	b.BeginCycle()
	for _, x := range b.ControlFields().ReverseSchedule {
		if x == 7 {
			t.Fatal("unknown user scheduled")
		}
	}
}

func TestBasePiggybackExtendsDemand(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, false)
	b.RecordReverse(1, false, false, [][]byte{dataPayload(t, u, 4, 1, 0, 10, 20)}, true)
	if m.PiggybackRequests.Value() != 1 {
		t.Fatal("piggyback not counted")
	}
	b.BeginCycle()
	granted := 0
	for _, x := range b.ControlFields().ReverseSchedule {
		if x == u {
			granted++
		}
	}
	if granted != 4 {
		t.Fatalf("granted %d, want 4", granted)
	}
}

func TestBaseACKWindows(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, false)

	// Next cycle's CF1 must ack contention slot 0.
	b.BeginCycle()
	cf1 := b.ControlFields()
	if cf1.ReverseACKs[0].EIN != 100 || cf1.ReverseACKs[0].User != u {
		t.Fatalf("CF1 ack[0] = %+v", cf1.ReverseACKs[0])
	}
}

func TestBaseCF2CarriesLastSlotACK(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, false)
	last := b.Layout().LastDataSlot()
	// User transmits data in the last slot of this cycle; the reception
	// lands after the next BeginCycle (intoPrev = true).
	b.BeginCycle()
	b.RecordReverse(last, true, true, [][]byte{dataPayload(t, u, 0, 1, 0, 1, 10)}, true)
	cf1 := b.ControlFields()
	if cf1.ReverseACKs[last].User == u {
		t.Fatal("CF1 must NOT ack the last slot (CF2's job)")
	}
	cf2 := b.BuildCF2()
	if cf2.ReverseACKs[last].User != u {
		t.Fatalf("CF2 ack[last] = %+v, want user %v", cf2.ReverseACKs[last], u)
	}
	// Everything else is identical between the two sets.
	if cf2.ReverseSchedule != cf1.ReverseSchedule || cf2.ForwardSchedule != cf1.ForwardSchedule {
		t.Fatal("CF2 changed the schedules")
	}
}

func TestBaseRSDecodeFailureIsLoss(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	out := b.RecordReverse(2, false, false, [][]byte{nil}, false)
	if out.Received != nil || out.Collision {
		t.Fatal("nil payload should be a plain loss")
	}
	if m.FragmentsLost.Value() != 1 {
		t.Fatal("loss not counted")
	}
}

func TestBaseGarbagePayloadIgnored(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	garbage := make([]byte, 48) // type nibble 0: malformed
	out := b.RecordReverse(0, false, false, [][]byte{garbage}, true)
	if out.Received != nil {
		t.Fatal("garbage parsed as a packet")
	}
}

func TestBaseDeregister(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, true)
	if err := b.Deregister(u); err != nil {
		t.Fatal(err)
	}
	if b.ActiveUsers() != 0 {
		t.Fatal("user still active")
	}
	if b.GPSTable().Active() != 0 {
		t.Fatal("GPS slot not released")
	}
	if err := b.Deregister(u); err == nil {
		t.Fatal("double deregister allowed")
	}
}

func TestBaseStaleDataFromDeregisteredUser(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, false)
	if err := b.Deregister(u); err != nil {
		t.Fatal(err)
	}
	b.RecordReverse(1, false, false, [][]byte{dataPayload(t, u, 0, 1, 0, 1, 5)}, false)
	if m.ReverseDataPkts.Value() != 0 {
		t.Fatal("stale packet counted as data")
	}
}

func TestBaseContentionSlotsAlwaysFirst(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, false)
	b.RecordReverse(0, false, false, [][]byte{resPayload(t, u, 9)}, true)
	b.BeginCycle()
	cf := b.ControlFields()
	// Slot 0 must remain a contention slot even under full demand.
	if cf.ReverseSchedule[0] != frame.NoUser {
		t.Fatalf("slot 0 assigned: %v", cf.ReverseSchedule[0])
	}
}

func TestBaseSecondCFDisabledSkipsLastSlot(t *testing.T) {
	b, _ := newTestBase(t, func(c *Config) { c.SecondControlField = false })
	b.BeginCycle()
	u := register(t, b, 100, false)
	b.RecordReverse(0, false, false, [][]byte{resPayload(t, u, 15)}, true)
	b.BeginCycle()
	cf := b.ControlFields()
	last := b.Layout().LastDataSlot()
	if cf.ReverseSchedule[last] != frame.NoUser {
		t.Fatal("last slot assigned with CF2 disabled")
	}
}

func TestBaseFragmentationSizes(t *testing.T) {
	cases := []struct {
		size int
		want []int
	}{
		{0, []int{0}},
		{-1, []int{0}},
		{41, []int{41}},
		{42, []int{41, 1}},
		{120, []int{41, 41, 38}},
	}
	for _, c := range cases {
		got := fragmentSizes(c.size)
		if len(got) != len(c.want) {
			t.Fatalf("fragmentSizes(%d) = %v, want %v", c.size, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("fragmentSizes(%d) = %v, want %v", c.size, got, c.want)
			}
		}
	}
}

func TestBaseForwardQueueing(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, false)
	if err := b.EnqueueForward(u, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := b.EnqueueForward(frame.UserID(50), 1, 100); err == nil {
		t.Fatal("enqueue for unknown user allowed")
	}
	b.BeginCycle()
	// Forward schedule must carry the user.
	assigned := 0
	for _, x := range b.ControlFields().ForwardSchedule {
		if x == u {
			assigned++
		}
	}
	if assigned != 3 { // 100 bytes = 3 fragments
		t.Fatalf("forward slots = %d, want 3", assigned)
	}
	for i := 0; i < 3; i++ {
		if pkt := b.PopForward(u); pkt == nil {
			t.Fatalf("forward packet %d missing", i)
		}
	}
	if b.PopForward(u) != nil {
		t.Fatal("queue should be empty")
	}
}

func TestBaseGPSReception(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, true)
	body, err := (&frame.GPSReport{User: u, Sequence: 1}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.RecordGPS(body); !ok {
		t.Fatal("valid GPS report rejected")
	}
	if m.GPSDelivered.Value() != 1 {
		t.Fatal("delivery not counted")
	}
	// Corrupted body is a loss.
	body[0] ^= 0xFF
	if _, ok := b.RecordGPS(body); ok {
		t.Fatal("corrupted report accepted")
	}
	if m.GPSLost.Value() != 1 {
		t.Fatal("loss not counted")
	}
	// Report from a non-holder is dropped.
	body2, err := (&frame.GPSReport{User: 62, Sequence: 1}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.RecordGPS(body2); ok {
		t.Fatal("report from non-holder accepted")
	}
	if rep, ok := b.RecordGPS(nil); rep != nil || ok {
		t.Fatal("nil body should return (nil, false)")
	}
}

func TestBaseDuplicateFragmentNotDoubleCounted(t *testing.T) {
	b, m := newTestBase(t, nil)
	b.BeginCycle()
	u := register(t, b, 100, false)
	pkt := dataPayload(t, u, 0, 7, 0, 2, 30)
	b.RecordReverse(1, false, false, [][]byte{pkt}, false)
	b.RecordReverse(2, false, false, [][]byte{pkt}, false) // retransmission
	if m.BytesDelivered.Value() != 30 {
		t.Fatalf("bytes = %d, duplicate double-counted", m.BytesDelivered.Value())
	}
	// Completing fragment arrives once.
	out := b.RecordReverse(3, false, false, [][]byte{dataPayload(t, u, 0, 7, 1, 2, 10)}, false)
	if !out.MessageComplete || out.Bytes != 40 {
		t.Fatalf("completion = %+v", out)
	}
}

func TestBasePagingQueue(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.Page(5)
	b.Page(9)
	b.BeginCycle()
	cf := b.ControlFields()
	if cf.Paging[0] != 5 || cf.Paging[1] != 9 {
		t.Fatalf("paging = %v %v", cf.Paging[0], cf.Paging[1])
	}
	b.BeginCycle()
	if b.ControlFields().Paging[0] != frame.NoUser {
		t.Fatal("pages should drain after one cycle")
	}
}

func TestBaseMaxDataUsers(t *testing.T) {
	b, _ := newTestBase(t, nil)
	b.BeginCycle()
	admitted := 0
	for i := 0; i < 70; i++ {
		out := b.RecordReverse(0, false, false, [][]byte{regPayload(t, frame.EIN(1000+i), false)}, true)
		if out.NewRegistration {
			admitted++
		}
	}
	if admitted >= 64 {
		t.Fatalf("admitted %d users; 6-bit ID space with NoUser sentinel caps below 64", admitted)
	}
	if admitted < 60 {
		t.Fatalf("admitted only %d users", admitted)
	}
}
