package core

import (
	"testing"
	"testing/quick"

	"github.com/osu-netlab/osumac/internal/frame"
)

func TestGPSAdmitInOrder(t *testing.T) {
	tb := NewGPSSlotTable(true)
	for i := 0; i < 8; i++ {
		slot, err := tb.Admit(frame.UserID(i))
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Fatalf("user %d got slot %d (R2 violated)", i, slot)
		}
	}
	if _, err := tb.Admit(frame.UserID(9)); err == nil {
		t.Fatal("9th GPS user admitted")
	}
}

func TestGPSAdmitRejectsDuplicatesAndInvalid(t *testing.T) {
	tb := NewGPSSlotTable(true)
	if _, err := tb.Admit(5); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Admit(5); err == nil {
		t.Fatal("duplicate admission allowed")
	}
	if _, err := tb.Admit(frame.NoUser); err == nil {
		t.Fatal("NoUser admitted")
	}
}

// TestGPSLeaveShiftDown reproduces the paper's example: users 1–8
// registered in order; users 2, 3, 5, 6, 7 leave. Dynamic adjustment
// consolidates the remaining three users into slots 0–2 so the cell can
// switch to format 2.
func TestGPSLeaveShiftDown(t *testing.T) {
	tb := NewGPSSlotTable(true)
	for i := 1; i <= 8; i++ {
		if _, err := tb.Admit(frame.UserID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range []frame.UserID{2, 3, 5, 6, 7} {
		if err := tb.Leave(u); err != nil {
			t.Fatal(err)
		}
	}
	if !tb.Consolidated() {
		t.Fatal("dynamic table left holes")
	}
	if tb.Active() != 3 {
		t.Fatalf("Active = %d, want 3", tb.Active())
	}
	if tb.Format() != Format2 {
		t.Fatalf("Format = %v, want Format2", tb.Format())
	}
	// Survivors 1, 4, 8 sit in slots 0, 1, 2 in their original order.
	want := []frame.UserID{1, 4, 8}
	for i, u := range want {
		if tb.Holder(i) != u {
			t.Fatalf("slot %d = %v, want %v", i, tb.Holder(i), u)
		}
	}
}

// TestGPSStaticLeavesHoles demonstrates the naive approach the paper
// argues against: holes prevent the format-2 conversion.
func TestGPSStaticLeavesHoles(t *testing.T) {
	tb := NewGPSSlotTable(false)
	for i := 1; i <= 8; i++ {
		if _, err := tb.Admit(frame.UserID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range []frame.UserID{2, 3, 5, 6, 7} {
		if err := tb.Leave(u); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Consolidated() {
		t.Fatal("static table should have holes")
	}
	if tb.Active() != 3 {
		t.Fatalf("Active = %d, want 3", tb.Active())
	}
	// User 8 still holds slot 7, forcing format 1 despite only 3 users.
	if tb.Format() != Format1 {
		t.Fatalf("Format = %v, want Format1 (hole at high slot)", tb.Format())
	}
}

func TestGPSLeaveUnknown(t *testing.T) {
	tb := NewGPSSlotTable(true)
	if err := tb.Leave(3); err == nil {
		t.Fatal("leave of unknown user allowed")
	}
}

// TestGPSShiftDownOnlyMovesEarlier verifies the R3 safety argument:
// re-assignment never moves a user to a later slot, so the 4-second
// access bound survives every transition.
func TestGPSShiftDownOnlyMovesEarlier(t *testing.T) {
	tb := NewGPSSlotTable(true)
	users := []frame.UserID{10, 11, 12, 13, 14, 15}
	for _, u := range users {
		if _, err := tb.Admit(u); err != nil {
			t.Fatal(err)
		}
	}
	before := map[frame.UserID]int{}
	for _, u := range users {
		before[u] = tb.SlotOf(u)
	}
	if err := tb.Leave(11); err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if u == 11 {
			continue
		}
		if after := tb.SlotOf(u); after > before[u] {
			t.Fatalf("user %v moved later: %d → %d", u, before[u], after)
		}
	}
}

func TestGPSReadmitAfterLeave(t *testing.T) {
	tb := NewGPSSlotTable(true)
	for i := 0; i < 8; i++ {
		if _, err := tb.Admit(frame.UserID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Leave(0); err != nil {
		t.Fatal(err)
	}
	slot, err := tb.Admit(20)
	if err != nil {
		t.Fatal(err)
	}
	if slot != 7 {
		t.Fatalf("re-admission got slot %d, want first free slot 7", slot)
	}
}

func TestGPSSnapshot(t *testing.T) {
	tb := NewGPSSlotTable(true)
	if _, err := tb.Admit(42); err != nil {
		t.Fatal(err)
	}
	snap := tb.Snapshot()
	if snap[0] != 42 {
		t.Fatal("snapshot missing holder")
	}
	for i := 1; i < len(snap); i++ {
		if snap[i] != frame.NoUser {
			t.Fatal("snapshot shows phantom holders")
		}
	}
	if tb.Holder(-1) != frame.NoUser || tb.Holder(99) != frame.NoUser {
		t.Fatal("out-of-range Holder should be NoUser")
	}
}

// Property: under any admit/leave sequence, a dynamic table stays
// consolidated, reassignments only move users earlier, and Format
// matches the active count.
func TestPropertyGPSTableInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		tb := NewGPSSlotTable(true)
		members := map[frame.UserID]bool{}
		for _, op := range ops {
			u := frame.UserID(op % 32)
			if members[u] {
				pre := map[frame.UserID]int{}
				for m := range members {
					pre[m] = tb.SlotOf(m)
				}
				if err := tb.Leave(u); err != nil {
					return false
				}
				delete(members, u)
				for m := range members {
					if tb.SlotOf(m) > pre[m] {
						return false // moved later: R3 safety broken
					}
				}
			} else if len(members) < 8 {
				slot, err := tb.Admit(u)
				if err != nil {
					return false
				}
				if slot != len(members) {
					return false // R2: not the first unused slot
				}
				members[u] = true
			}
			if !tb.Consolidated() {
				return false
			}
			if tb.Active() != len(members) {
				return false
			}
			wantFormat := FormatFor(len(members))
			if tb.Format() != wantFormat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
