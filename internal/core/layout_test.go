package core

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/phy"
)

func ms(f float64) time.Duration {
	return time.Duration(f * float64(time.Second))
}

// TestTable2AccessTimesFormat1 pins the format-1 column of paper
// Table 2.
func TestTable2AccessTimesFormat1(t *testing.T) {
	l := NewLayout(Format1)
	gps, data := l.Table2AccessTimes()

	wantGPS := []float64{0.30125, 0.38875, 0.47625, 0.56375, 0.65125, 0.73875, 0.82625, 0.91375}
	if len(gps) != len(wantGPS) {
		t.Fatalf("format 1 GPS slots = %d, want %d", len(gps), len(wantGPS))
	}
	for i, w := range wantGPS {
		if gps[i] != ms(w) {
			t.Errorf("GPS slot %d = %v, want %v", i+1, gps[i], ms(w))
		}
	}

	wantData := []float64{1.00125, 1.405, 1.80875, 2.2125, 2.61625, 3.02, 3.42375, 3.8275}
	if len(data) != len(wantData) {
		t.Fatalf("format 1 data slots = %d, want %d", len(data), len(wantData))
	}
	for i, w := range wantData {
		if data[i] != ms(w) {
			t.Errorf("data slot %d = %v, want %v", i+1, data[i], ms(w))
		}
	}
}

// TestTable2AccessTimesFormat2 pins the format-2 column. The paper's
// printed table repeats 2.98625 for data slot 8 (a typesetting error);
// the arithmetically consistent progression 0.56375 + k·0.40375 is used
// here.
func TestTable2AccessTimesFormat2(t *testing.T) {
	l := NewLayout(Format2)
	gps, data := l.Table2AccessTimes()

	wantGPS := []float64{0.30125, 0.38875, 0.47625}
	if len(gps) != len(wantGPS) {
		t.Fatalf("format 2 GPS slots = %d, want %d", len(gps), len(wantGPS))
	}
	for i, w := range wantGPS {
		if gps[i] != ms(w) {
			t.Errorf("GPS slot %d = %v, want %v", i+1, gps[i], ms(w))
		}
	}

	if len(data) != 9 {
		t.Fatalf("format 2 data slots = %d, want 9", len(data))
	}
	for i := range data {
		want := ms(0.56375) + time.Duration(i)*phy.ReverseDataSlotTime
		if data[i] != want {
			t.Errorf("data slot %d = %v, want %v", i+1, data[i], want)
		}
	}
	// Cross-check the values Table 2 prints correctly.
	if data[1] != ms(0.9675) {
		t.Errorf("data slot 2 = %v, want 0.9675s", data[1])
	}
	if data[4] != ms(2.17875) {
		t.Errorf("data slot 5 = %v, want 2.17875s", data[4])
	}
}

func TestFormatSelection(t *testing.T) {
	cases := []struct {
		gps  int
		want ReverseFormat
	}{
		{0, Format2}, {1, Format2}, {3, Format2}, {4, Format1}, {8, Format1},
	}
	for _, c := range cases {
		if got := FormatFor(c.gps); got != c.want {
			t.Errorf("FormatFor(%d) = %v, want %v", c.gps, got, c.want)
		}
	}
}

func TestFormatSlotCounts(t *testing.T) {
	if Format1.GPSSlots() != 8 || Format1.DataSlots() != 8 {
		t.Fatal("format 1 slot counts wrong")
	}
	if Format2.GPSSlots() != 3 || Format2.DataSlots() != 9 {
		t.Fatal("format 2 slot counts wrong")
	}
}

func TestForwardLayout(t *testing.T) {
	l := NewLayout(Format1)
	// CF1 starts after the 300-symbol preamble (93.75 ms).
	if l.CF1.Start != ms(0.09375) {
		t.Fatalf("CF1 start = %v", l.CF1.Start)
	}
	if l.CF1.End != ms(0.28125) {
		t.Fatalf("CF1 end = %v", l.CF1.End)
	}
	// Forward slot 0 sits between the control-field sets.
	if l.ForwardData[0].Start != l.CF1.End {
		t.Fatal("forward slot 0 should start right after CF1")
	}
	// CF2 runs 0.421875–0.609375.
	if l.CF2.Start != ms(0.421875) || l.CF2.End != ms(0.609375) {
		t.Fatalf("CF2 = %v", l.CF2)
	}
	if len(l.ForwardData) != phy.ForwardDataSlots {
		t.Fatalf("forward slots = %d, want %d", len(l.ForwardData), phy.ForwardDataSlots)
	}
	// The final forward slot ends exactly at the cycle boundary.
	if got := l.ForwardData[len(l.ForwardData)-1].End; got != phy.CycleLength {
		t.Fatalf("last forward slot ends at %v, want %v", got, phy.CycleLength)
	}
}

func TestForwardLayoutIdenticalAcrossFormats(t *testing.T) {
	l1, l2 := NewLayout(Format1), NewLayout(Format2)
	if l1.CF1 != l2.CF1 || l1.CF2 != l2.CF2 {
		t.Fatal("forward control-field timing should not depend on reverse format")
	}
	for i := range l1.ForwardData {
		if l1.ForwardData[i] != l2.ForwardData[i] {
			t.Fatal("forward slots should not depend on reverse format")
		}
	}
}

// TestLastSlotOverlapsNextCF1 verifies the structural motivation for the
// two-control-field design in both formats.
func TestLastSlotOverlapsNextCF1(t *testing.T) {
	for _, f := range []ReverseFormat{Format1, Format2} {
		l := NewLayout(f)
		if !l.LastSlotOverlapsNextCF1() {
			t.Errorf("%v: last-slot/CF1 overlap property violated", f)
		}
	}
}

// TestGPSSlotAfterCF1PlusSwitch confirms the δ design: the first GPS
// slot begins exactly one switch time after CF1 ends (the "extra 0.02
// seconds" of paper §3.4).
func TestGPSSlotAfterCF1PlusSwitch(t *testing.T) {
	l := NewLayout(Format1)
	if got := l.GPS[0].Start - l.CF1.End; got != phy.HalfDuplexSwitch {
		t.Fatalf("GPS slot 1 starts %v after CF1, want exactly %v", got, phy.HalfDuplexSwitch)
	}
}

// TestReverseCycleDuration confirms both formats occupy 3.93 s of air
// time before the alignment guard.
func TestReverseCycleDuration(t *testing.T) {
	for _, f := range []ReverseFormat{Format1, Format2} {
		l := NewLayout(f)
		last := l.ReverseData[len(l.ReverseData)-1].End
		body := last - phy.ReverseShift
		var wantBody time.Duration
		if f == Format1 {
			wantBody = ms(3.93)
		} else {
			// Format 2 adds an explicit 0.03375 s tail guard to reach
			// 3.93 s.
			wantBody = ms(3.93) - phy.SymbolDuration(phy.Format2TailGuardSymbols, phy.ReverseSymbolRate)
		}
		if body != wantBody {
			t.Errorf("%v: body = %v, want %v", f, body, wantBody)
		}
	}
}

func TestSlotAt(t *testing.T) {
	l := NewLayout(Format1)
	isGPS, slot, ok := l.SlotAt(ms(0.30125))
	if !ok || !isGPS || slot != 0 {
		t.Fatalf("SlotAt(GPS slot 1 start) = (%v,%d,%v)", isGPS, slot, ok)
	}
	isGPS, slot, ok = l.SlotAt(ms(1.5))
	if !ok || isGPS || slot != 1 {
		t.Fatalf("SlotAt(in data slot 2) = (%v,%d,%v)", isGPS, slot, ok)
	}
	if _, _, ok := l.SlotAt(ms(0.1)); ok {
		t.Fatal("SlotAt before reverse cycle should miss")
	}
}

func TestReverseFormatString(t *testing.T) {
	if Format1.String() != "format1" || Format2.String() != "format2" {
		t.Fatal("format strings wrong")
	}
	if ReverseFormat(0).String() != "format?" {
		t.Fatal("unknown format should render placeholder")
	}
}

// TestNoReverseSlotOverlapsOwnCF1 verifies that no reverse slot of
// cycle k overlaps cycle k's first control fields: every mobile that
// listens to CF1 can hear its schedule before any of its slots begin.
// (GPS slots do overlap CF2 on the other channel, which is fine — GPS
// users listen to CF1.)
func TestNoReverseSlotOverlapsOwnCF1(t *testing.T) {
	for _, f := range []ReverseFormat{Format1, Format2} {
		l := NewLayout(f)
		for i, iv := range append(append([]phy.Interval{}, l.GPS...), l.ReverseData...) {
			if iv.Overlaps(l.CF1) {
				t.Errorf("%v: reverse slot %d overlaps own CF1", f, i)
			}
		}
	}
}
