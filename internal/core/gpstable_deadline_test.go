package core

import (
	"fmt"
	"testing"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
)

// admitN fills the table with users 1..n in order.
func admitN(t *testing.T, tbl *GPSSlotTable, n int) []frame.UserID {
	t.Helper()
	users := make([]frame.UserID, 0, n)
	for i := 0; i < n; i++ {
		u := frame.UserID(i + 1)
		if _, err := tbl.Admit(u); err != nil {
			t.Fatal(err)
		}
		users = append(users, u)
	}
	return users
}

// grantedSet collects the non-empty entries of a grant schedule.
func grantedSet(s [frame.GPSScheduleEntries]frame.UserID) map[frame.UserID]int {
	out := make(map[frame.UserID]int)
	for i, u := range s {
		if u != frame.NoUser {
			out[u] = i
		}
	}
	return out
}

// TestGrantScheduleServesEveryUserEveryCycle is the starvation-freedom
// table: for every (format, population) pair the protocol can reach,
// every registered user is granted exactly one slot in every cycle, in
// the first population-many entries.
func TestGrantScheduleServesEveryUserEveryCycle(t *testing.T) {
	cases := []struct {
		onAir int
		pops  []int
	}{
		{onAir: phy.MaxGPSUsers, pops: []int{1, 2, 3, 4, 5, 6, 7, 8}}, // format 1
		{onAir: phy.Format2GPSSlots, pops: []int{1, 2, 3}},            // format 2
	}
	for _, tc := range cases {
		for _, pop := range tc.pops {
			t.Run(fmt.Sprintf("onAir=%d/pop=%d", tc.onAir, pop), func(t *testing.T) {
				tbl := NewGPSSlotTable(true)
				users := admitN(t, tbl, pop)
				for cycle := 0; cycle < 6; cycle++ {
					s := tbl.GrantSchedule(tc.onAir)
					got := grantedSet(s)
					if len(got) != pop {
						t.Fatalf("cycle %d: %d users granted, want %d: %v", cycle, len(got), pop, s)
					}
					for _, u := range users {
						slot, ok := got[u]
						if !ok {
							t.Fatalf("cycle %d: user %v starved: %v", cycle, u, s)
						}
						if slot >= pop {
							t.Fatalf("cycle %d: user %v granted slot %d beyond the first %d: %v",
								cycle, u, slot, pop, s)
						}
					}
				}
			})
		}
	}
}

// TestGrantScheduleDeadlineOrder asserts the earliest-report-deadline-
// first property: grants are issued in ascending order of each user's
// last transmission opportunity — admission order at first, then the
// stable per-cycle rotation, with amendments (Granted) re-ranking a
// user behind everyone already served this cycle.
func TestGrantScheduleDeadlineOrder(t *testing.T) {
	tbl := NewGPSSlotTable(true)
	users := admitN(t, tbl, 4)

	// First cycle: admission order is deadline order.
	s := tbl.GrantSchedule(phy.MaxGPSUsers)
	for i, u := range users {
		if s[i] != u {
			t.Fatalf("first cycle grant order %v, want admission order %v", s, users)
		}
	}
	// The rotation is stable: the same order every cycle while
	// membership is unchanged — no user's slot index ever increases,
	// which is what keeps consecutive grants inside the 4 s deadline.
	for cycle := 0; cycle < 5; cycle++ {
		next := tbl.GrantSchedule(phy.MaxGPSUsers)
		if next != s {
			t.Fatalf("cycle %d reordered a stable population: %v → %v", cycle, s, next)
		}
	}

	// A new admission has the youngest opportunity clock (its first
	// report cannot be pending before it was admitted): it ranks last.
	if _, err := tbl.Admit(9); err != nil {
		t.Fatal(err)
	}
	s = tbl.GrantSchedule(phy.MaxGPSUsers)
	if s[4] != 9 {
		t.Fatalf("new admission not ranked last: %v", s)
	}
	for i, u := range users {
		if s[i] != u {
			t.Fatalf("admission disturbed the established order: %v", s)
		}
	}

	// An out-of-band grant (a CF2 amendment) counts as an opportunity:
	// the amended user re-ranks behind users granted earlier in the
	// same cycle — the order is unchanged here because user 9 was
	// already last.
	tbl.Granted(9)
	if next := tbl.GrantSchedule(phy.MaxGPSUsers); next != s {
		t.Fatalf("amendment reordered the rotation: %v → %v", s, next)
	}
}

// TestGrantScheduleDepartureOnlyAdvances asserts rule R3's deadline
// safety: when a user leaves, every remaining user keeps its rank or
// moves earlier — never later — so the 4 s cadence cannot stretch.
func TestGrantScheduleDepartureOnlyAdvances(t *testing.T) {
	tbl := NewGPSSlotTable(true)
	admitN(t, tbl, 6)
	before := tbl.GrantSchedule(phy.MaxGPSUsers)
	rankBefore := grantedSet(before)
	if err := tbl.Leave(3); err != nil {
		t.Fatal(err)
	}
	after := tbl.GrantSchedule(phy.MaxGPSUsers)
	rankAfter := grantedSet(after)
	if len(rankAfter) != 5 {
		t.Fatalf("population after departure = %d, want 5: %v", len(rankAfter), after)
	}
	for u, r := range rankAfter {
		if r > rankBefore[u] {
			t.Fatalf("user %v moved later after a departure: slot %d → %d", u, rankBefore[u], r)
		}
	}
}

// TestGrantScheduleFormat2Coalescing covers the dynamic-adjustment
// corner the paper motivates: a departure that consolidates the table
// under 3 users switches the cell to format 2 (five GPS slots coalesce
// into an extra data slot) and the 3-slot schedule still serves every
// remaining user every cycle.
func TestGrantScheduleFormat2Coalescing(t *testing.T) {
	tbl := NewGPSSlotTable(true)
	admitN(t, tbl, 4)
	if tbl.Format() != Format1 {
		t.Fatalf("4 users should need format 1, got %v", tbl.Format())
	}
	if err := tbl.Leave(2); err != nil {
		t.Fatal(err)
	}
	if tbl.Format() != Format2 {
		t.Fatalf("3 consolidated users should permit format 2, got %v", tbl.Format())
	}
	if !tbl.Consolidated() {
		t.Fatal("table not consolidated after departure")
	}
	for cycle := 0; cycle < 4; cycle++ {
		s := tbl.GrantSchedule(phy.Format2GPSSlots)
		got := grantedSet(s)
		for _, u := range []frame.UserID{1, 3, 4} {
			if slot, ok := got[u]; !ok || slot >= phy.Format2GPSSlots {
				t.Fatalf("cycle %d: user %v not served within format 2's slots: %v", cycle, u, s)
			}
		}
	}
}

// TestGrantScheduleOverCapacityRotates documents the defensive bound:
// should the population ever exceed the on-air slot count (unreachable
// with consolidation, but the policy must not assume it), the ungranted
// tail keeps its older clocks and is served first next cycle, so every
// user is granted within ceil(pop/onAir) cycles.
func TestGrantScheduleOverCapacityRotates(t *testing.T) {
	const pop, onAir = 5, 3
	tbl := NewGPSSlotTable(true)
	users := admitN(t, tbl, pop)
	lastGranted := make(map[frame.UserID]int)
	for _, u := range users {
		lastGranted[u] = -1
	}
	for cycle := 0; cycle < 10; cycle++ {
		s := tbl.GrantSchedule(onAir)
		got := grantedSet(s)
		if len(got) != onAir {
			t.Fatalf("cycle %d: %d grants, want %d: %v", cycle, len(got), onAir, s)
		}
		for u := range got {
			lastGranted[u] = cycle
		}
		for _, u := range users {
			if cycle-lastGranted[u] >= 2 {
				t.Fatalf("cycle %d: user %v waited more than 2 cycles (last granted %d)",
					cycle, u, lastGranted[u])
			}
		}
	}
}

// TestBaseCF2AmendsLateGPSAdmission drives the base station through the
// exact shape of the ROADMAP grant-starvation bug: a GPS registration
// processed after BeginCycle froze the CF1 schedule. The CF2 build must
// amend the schedule with the earliest announced-free slot the new user
// can still hear about (start ≥ CF2 end + half-duplex switch) — and
// only under the deadline-aware policy.
func TestBaseCF2AmendsLateGPSAdmission(t *testing.T) {
	minStart := func(b *BaseStation) int {
		// First on-air slot index whose start clears CF2 + switch.
		lay := b.Layout()
		for s := range lay.GPS {
			if lay.GPS[s].Start >= lay.CF2.End+phy.HalfDuplexSwitch {
				return s
			}
		}
		return -1
	}

	t.Run("format1 amendment", func(t *testing.T) {
		b, _ := newTestBase(t, nil)
		b.BeginCycle()
		for i := 0; i < 5; i++ {
			register(t, b, frame.EIN(200+i), true)
		}
		b.BeginCycle() // announces the 5 established users in slots 0–4
		late := register(t, b, 300, true)
		cf2 := b.BuildCF2()
		amends := b.CF2Amendments()
		if len(amends) != 1 || amends[0].User != late {
			t.Fatalf("amendments = %+v, want one for %v", amends, late)
		}
		// Slots 0–4 are taken; slot 5 is the earliest free slot at or
		// past the CF2-hearable threshold (which slot 4 already clears).
		if want := 5; amends[0].Slot != want {
			t.Fatalf("amended slot = %d, want %d (threshold slot %d)", amends[0].Slot, want, minStart(b))
		}
		if cf2.GPSSchedule[amends[0].Slot] != late {
			t.Fatalf("CF2 schedule does not carry the amendment: %v", cf2.GPSSchedule)
		}
		// Next cycle the amended user joins the stable rotation last.
		b.BeginCycle()
		s := b.ControlFields().GPSSchedule
		if s[5] != late {
			t.Fatalf("amended user not ranked after the established five next cycle: %v", s)
		}
	})

	t.Run("earliest eligible slot", func(t *testing.T) {
		b, _ := newTestBase(t, nil)
		b.BeginCycle()
		for i := 0; i < 4; i++ {
			register(t, b, frame.EIN(200+i), true)
		}
		b.BeginCycle() // format 1, slots 0–3 held
		late := register(t, b, 300, true)
		b.BuildCF2()
		amends := b.CF2Amendments()
		// Slot 4 (the first free slot) starts after the CF2-hearable
		// threshold in format 1, so it is the amendment target.
		if len(amends) != 1 || amends[0].Slot != minStart(b) {
			t.Fatalf("amendments = %+v, want slot %d", amends, minStart(b))
		}
		_ = late
	})

	t.Run("format2 has no hearable slot", func(t *testing.T) {
		b, _ := newTestBase(t, nil)
		b.BeginCycle() // empty table → format 2
		late := register(t, b, 300, true)
		cf2 := b.BuildCF2()
		if amends := b.CF2Amendments(); len(amends) != 0 {
			t.Fatalf("format 2 amendment should be infeasible (all GPS slots precede CF2): %+v", amends)
		}
		for _, u := range cf2.GPSSchedule {
			if u == late {
				t.Fatalf("late admission leaked into the CF2 schedule: %v", cf2.GPSSchedule)
			}
		}
		// The user's first grant then comes next cycle at slot 0 — an
		// early slot, safely inside the deadline.
		b.BeginCycle()
		if s := b.ControlFields().GPSSchedule; s[0] != late {
			t.Fatalf("late admission not served first next cycle: %v", s)
		}
	})

	t.Run("legacy policy never amends", func(t *testing.T) {
		b, _ := newTestBase(t, func(c *Config) { c.GPSGrantPolicy = GPSGrantFixed })
		b.BeginCycle()
		for i := 0; i < 5; i++ {
			register(t, b, frame.EIN(200+i), true)
		}
		b.BeginCycle()
		register(t, b, 300, true)
		b.BuildCF2()
		if amends := b.CF2Amendments(); len(amends) != 0 {
			t.Fatalf("legacy policy amended the CF2 schedule: %+v", amends)
		}
	})

	t.Run("established users are never amended", func(t *testing.T) {
		b, _ := newTestBase(t, nil)
		b.BeginCycle()
		for i := 0; i < 3; i++ {
			register(t, b, frame.EIN(200+i), true)
		}
		b.BeginCycle()
		b.BuildCF2()
		if amends := b.CF2Amendments(); len(amends) != 0 {
			t.Fatalf("amendment fired without a late admission: %+v", amends)
		}
	})
}
