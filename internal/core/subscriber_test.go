package core

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/sim"
)

func newTestSub(t *testing.T, isGPS bool, mutate func(*Config)) *Subscriber {
	t.Helper()
	cfg := NewConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewSubscriber(500, isGPS, &cfg, sim.NewRNG(3))
}

// cfWith builds control fields with the given reverse schedule entries.
func cfWith(rev map[int]frame.UserID) *frame.ControlFields {
	cf := frame.NewControlFields()
	for i, u := range rev {
		cf.ReverseSchedule[i] = u
	}
	return cf
}

func TestSubscriberLifecycle(t *testing.T) {
	s := newTestSub(t, false, nil)
	if s.State() != StateIdle {
		t.Fatal("fresh subscriber not idle")
	}
	s.Enter(0)
	if s.State() != StateRegistering {
		t.Fatal("Enter did not start registration")
	}
	s.Enter(5) // no-op while registering
	if s.State() != StateRegistering {
		t.Fatal("double Enter changed state")
	}

	// First CF: plans a registration attempt in a contention slot.
	layout := NewLayout(Format2)
	plan := s.OnControlFields(frame.NewControlFields(), layout, 0)
	if plan.ContentionSlot < 0 || plan.ContentionKind != frame.TypeRegistration {
		t.Fatalf("plan = %+v", plan)
	}

	// Base approves: ACK carries (EIN, assigned ID) at the used slot.
	cf := frame.NewControlFields()
	cf.ReverseACKs[plan.ContentionSlot] = frame.ReverseACK{User: 9, EIN: 500}
	s.OnControlFields(cf, layout, 0)
	if s.State() != StateActive || s.ID() != 9 {
		t.Fatalf("state %v id %v after approval", s.State(), s.ID())
	}
}

func TestSubscriberRegistrationPersists(t *testing.T) {
	s := newTestSub(t, false, nil)
	s.Enter(0)
	layout := NewLayout(Format2)
	for i := 0; i < 5; i++ {
		plan := s.OnControlFields(frame.NewControlFields(), layout, 0)
		if plan.ContentionSlot < 0 {
			t.Fatalf("attempt %d: registrant did not contend (no backoff allowed)", i)
		}
	}
	if s.State() != StateRegistering {
		t.Fatal("registrant gave up early")
	}
}

func TestSubscriberRegistrationGivesUp(t *testing.T) {
	s := newTestSub(t, false, func(c *Config) { c.MaxRegistrationAttempts = 3 })
	s.Enter(0)
	layout := NewLayout(Format2)
	for i := 0; i < 5; i++ {
		s.OnControlFields(frame.NewControlFields(), layout, 0)
	}
	if !s.GaveUp() {
		t.Fatal("registrant never gave up")
	}
	if s.State() != StateIdle {
		t.Fatal("failed registrant not idle")
	}
}

// activate walks a subscriber to the Active state with a known ID.
func activate(t *testing.T, s *Subscriber, id frame.UserID) {
	t.Helper()
	s.Enter(0)
	layout := NewLayout(Format2)
	plan := s.OnControlFields(frame.NewControlFields(), layout, 0)
	cf := frame.NewControlFields()
	cf.ReverseACKs[plan.ContentionSlot] = frame.ReverseACK{User: id, EIN: s.EIN}
	s.OnControlFields(cf, layout, 0)
	if s.State() != StateActive || s.ID() != id {
		t.Fatalf("activation failed: %v %v", s.State(), s.ID())
	}
}

func TestSubscriberQueueAndFragmentation(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	if !s.AddMessage(100, 0) { // 3 fragments
		t.Fatal("message rejected")
	}
	if s.QueueLen() != 3 {
		t.Fatalf("queue = %d, want 3", s.QueueLen())
	}
}

func TestSubscriberQueueOverflow(t *testing.T) {
	s := newTestSub(t, false, func(c *Config) { c.QueueCapFragments = 4 })
	activate(t, s, 4)
	if !s.AddMessage(100, 0) { // 3 frags: fits
		t.Fatal("first message rejected")
	}
	if s.AddMessage(100, 0) { // 3 more would exceed 4
		t.Fatal("overflow message accepted")
	}
	if s.QueueLen() != 3 {
		t.Fatal("partial message enqueued on overflow")
	}
}

func TestSubscriberTransmitsInGrantedSlots(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	s.AddMessage(80, 0) // 2 fragments
	layout := NewLayout(Format2)
	plan := s.OnControlFields(cfWith(map[int]frame.UserID{2: 4, 3: 4}), layout, 0)
	if len(plan.DataSlots) != 2 || plan.DataSlots[0] != 2 || plan.DataSlots[1] != 3 {
		t.Fatalf("data slots = %v", plan.DataSlots)
	}
	p1 := s.MakeDataPacket(2)
	p2 := s.MakeDataPacket(3)
	if p1 == nil || p2 == nil {
		t.Fatal("packets not produced")
	}
	if s.MakeDataPacket(4) != nil {
		t.Fatal("empty queue produced a packet")
	}
	if p1.Header.MsgID != p2.Header.MsgID || p1.Header.Frag == p2.Header.Frag {
		t.Fatal("fragment headers wrong")
	}
}

func TestSubscriberACKedFragmentsNotRetransmitted(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	s.AddMessage(41, 0) // 1 fragment
	layout := NewLayout(Format2)
	s.OnControlFields(cfWith(map[int]frame.UserID{2: 4}), layout, 0)
	if s.MakeDataPacket(2) == nil {
		t.Fatal("no packet")
	}
	// ACK arrives next cycle.
	cf := frame.NewControlFields()
	cf.ReverseACKs[2] = frame.ReverseACK{User: 4}
	s.OnControlFields(cf, layout, 0)
	if s.QueueLen() != 0 {
		t.Fatal("acked fragment requeued")
	}
}

func TestSubscriberNACKedFragmentRequeued(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	s.AddMessage(41, 0)
	layout := NewLayout(Format2)
	s.OnControlFields(cfWith(map[int]frame.UserID{2: 4}), layout, 0)
	if s.MakeDataPacket(2) == nil {
		t.Fatal("no packet")
	}
	if s.QueueLen() != 0 {
		t.Fatal("fragment still queued while in flight")
	}
	// Next CF carries no ACK → the fragment is requeued; under the
	// default data-in-contention policy it is immediately re-sent in a
	// contention slot.
	plan := s.OnControlFields(frame.NewControlFields(), layout, 0)
	if plan.ContentionSlot < 0 || plan.ContentionKind != frame.TypeData {
		t.Fatalf("lost fragment not rescheduled: plan %+v queue %d", plan, s.QueueLen())
	}
}

func TestSubscriberCFLossRequeuesInFlight(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	s.AddMessage(41, 0)
	layout := NewLayout(Format2)
	s.OnControlFields(cfWith(map[int]frame.UserID{2: 4}), layout, 0)
	s.MakeDataPacket(2)
	plan := s.OnCycleNoSchedule()
	if plan.ContentionSlot != -1 || plan.GPSSlot != -1 || len(plan.DataSlots) != 0 {
		t.Fatal("no-schedule plan should be empty")
	}
	if s.QueueLen() != 1 {
		t.Fatal("in-flight fragment lost with the control fields")
	}
}

func TestSubscriberContentionAndBackoff(t *testing.T) {
	s := newTestSub(t, false, func(c *Config) { c.Policy = ReserveExplicit })
	activate(t, s, 4)
	s.AddMessage(120, 0)
	layout := NewLayout(Format2)

	// No grants → explicit reservation in a contention slot.
	plan := s.OnControlFields(frame.NewControlFields(), layout, 0)
	if plan.ContentionSlot < 0 || plan.ContentionKind != frame.TypeReservation {
		t.Fatalf("plan = %+v", plan)
	}
	payload, err := s.MakeContentionPacket()
	if err != nil || payload == nil {
		t.Fatalf("contention packet: %v", err)
	}
	pkt, err := frame.UnmarshalPacket(payload)
	if err != nil || pkt.Type != frame.TypeReservation || pkt.Reservation.Slots != 3 {
		t.Fatalf("reservation packet = %+v (err %v)", pkt, err)
	}

	// No ACK → collision assumed → backoff: no contention next cycle.
	plan = s.OnControlFields(frame.NewControlFields(), layout, 0)
	if plan.ContentionSlot >= 0 {
		t.Fatal("contended during backoff")
	}
}

func TestSubscriberDataInContentionPolicy(t *testing.T) {
	s := newTestSub(t, false, nil) // default: ReserveWithData
	activate(t, s, 4)
	s.AddMessage(120, 0) // 3 fragments
	layout := NewLayout(Format2)
	plan := s.OnControlFields(frame.NewControlFields(), layout, 0)
	if plan.ContentionKind != frame.TypeData {
		t.Fatalf("kind = %v, want data", plan.ContentionKind)
	}
	payload, err := s.MakeContentionPacket()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := frame.UnmarshalPacket(payload)
	if err != nil || pkt.Type != frame.TypeData {
		t.Fatal("not a data packet")
	}
	// Piggybacks the remaining 2 fragments.
	if pkt.Data.Header.MoreSlots != 2 {
		t.Fatalf("MoreSlots = %d, want 2", pkt.Data.Header.MoreSlots)
	}
}

func TestSubscriberNoContentionWhenGranted(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	s.AddMessage(500, 0)
	layout := NewLayout(Format2)
	plan := s.OnControlFields(cfWith(map[int]frame.UserID{3: 4}), layout, 0)
	if plan.ContentionSlot >= 0 {
		t.Fatal("contended despite having granted slots (piggyback suffices)")
	}
}

func TestSubscriberListensCF2AfterLastSlot(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	s.AddMessage(500, 0)
	layout := NewLayout(Format2)
	last := layout.LastDataSlot()
	s.OnControlFields(cfWith(map[int]frame.UserID{last: 4}), layout, 0)
	if !s.ListensCF2() {
		t.Fatal("last-slot user must listen to CF2")
	}
	// After processing the next CF, the flag resets.
	s.OnControlFields(frame.NewControlFields(), layout, 0)
	if s.ListensCF2() {
		t.Fatal("CF2 flag should reset")
	}
}

func TestSubscriberCF2ListenerAvoidsEarlyContention(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	s.AddMessage(2000, 0)
	layout := NewLayout(Format2)
	last := layout.LastDataSlot()
	// Cycle k: assigned the last slot → listens CF2 in k+1.
	s.OnControlFields(cfWith(map[int]frame.UserID{last: 4}), layout, 0)
	s.MakeDataPacket(last)
	// Cycle k+1 via CF2: ack received; no grants; contends — but only in
	// slots starting after CF2 + switch.
	cf := frame.NewControlFields()
	cf.ReverseACKs[last] = frame.ReverseACK{User: 4}
	plan := s.OnControlFields(cf, layout, 0)
	if plan.ContentionSlot == 0 {
		t.Fatal("CF2 listener contended in a slot it cannot reach in time")
	}
}

func TestSubscriberGPSReportFlow(t *testing.T) {
	s := newTestSub(t, true, nil)
	activate(t, s, 2)
	if _, _, ok := s.MakeGPSReport(); ok {
		t.Fatal("report produced without arrival")
	}
	if !s.AddGPSReport(10 * time.Second) {
		t.Fatal("first report rejected")
	}
	if s.AddGPSReport(14 * time.Second) {
		t.Fatal("replacement not flagged")
	}
	rep, arrival, ok := s.MakeGPSReport()
	if !ok || rep == nil {
		t.Fatal("no report")
	}
	if arrival != 14*time.Second {
		t.Fatalf("arrival = %v (replacement should win)", arrival)
	}
	if rep.User != 2 {
		t.Fatal("report user wrong")
	}
}

func TestSubscriberGPSPlansItsSlot(t *testing.T) {
	s := newTestSub(t, true, nil)
	activate(t, s, 2)
	layout := NewLayout(Format1)
	cf := frame.NewControlFields()
	cf.GPSSchedule[5] = 2
	plan := s.OnControlFields(cf, layout, 0)
	if plan.GPSSlot != 5 {
		t.Fatalf("GPS slot = %d, want 5", plan.GPSSlot)
	}
	if len(plan.DataSlots) != 0 || plan.ContentionSlot != -1 {
		t.Fatal("GPS user planned data activity")
	}
}

func TestSubscriberForwardReassembly(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	mk := func(frag uint8) *frame.DataPacket {
		return &frame.DataPacket{
			Header:  frame.DataHeader{User: 4, MsgID: 3, Frag: frag, FragTotal: 2},
			Payload: make([]byte, 20),
		}
	}
	if done, _, _ := s.ReceiveForward(mk(0)); done {
		t.Fatal("half a message reported complete")
	}
	if done, _, _ := s.ReceiveForward(mk(0)); done {
		t.Fatal("duplicate advanced reassembly")
	}
	done, id, bytes := s.ReceiveForward(mk(1))
	if !done || id != 3 || bytes != 40 {
		t.Fatalf("completion = (%v,%d,%d)", done, id, bytes)
	}
}

func TestSubscriberDeactivateResets(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	s.AddMessage(100, 0)
	s.Deactivate()
	if s.State() != StateIdle || s.ID() != frame.NoUser || s.QueueLen() != 0 {
		t.Fatal("deactivate did not reset")
	}
}

func TestSubscriberPagingObserved(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	cf := frame.NewControlFields()
	cf.Paging[0] = 4
	cf.Paging[1] = 9 // someone else
	s.ObservePaging(cf)
	if s.PagesSeen != 1 {
		t.Fatalf("PagesSeen = %d", s.PagesSeen)
	}
}

func TestSubscriberNeedTracking(t *testing.T) {
	s := newTestSub(t, false, nil)
	activate(t, s, 4)
	if _, has := s.NeedSince(); has {
		t.Fatal("need flagged without demand")
	}
	s.AddMessage(41, 7*time.Second)
	since, has := s.NeedSince()
	if !has || since != 7*time.Second {
		t.Fatalf("need = (%v,%v)", since, has)
	}
	s.ClearNeed()
	if _, has := s.NeedSince(); has {
		t.Fatal("need not cleared")
	}
}

func TestSubscriberStateString(t *testing.T) {
	if StateIdle.String() != "idle" || StateRegistering.String() != "registering" ||
		StateActive.String() != "active" || SubscriberState(0).String() != "state?" {
		t.Fatal("state strings wrong")
	}
}

func TestReservationPolicyString(t *testing.T) {
	if ReserveExplicit.String() != "explicit" || ReserveWithData.String() != "data-in-contention" {
		t.Fatal("policy strings wrong")
	}
	if ReservationPolicy(9).String() == "" {
		t.Fatal("unknown policy should render")
	}
}
