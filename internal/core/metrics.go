package core

import (
	"slices"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/stats"
)

// Metrics aggregates everything the paper's evaluation section measures
// plus the internal counters the tests assert on. One Metrics instance
// belongs to one Network run.
type Metrics struct {
	// Cycles is the number of completed notification cycles.
	Cycles int

	// Data-plane accounting (reverse channel).
	MessagesGenerated stats.Counter
	MessagesDelivered stats.Counter
	MessagesDropped   stats.Counter // queue overflow
	BytesGenerated    stats.Counter
	BytesDelivered    stats.Counter // application payload bytes
	FragmentsSent     stats.Counter // data packets on scheduled slots
	FragmentsLost     stats.Counter // RS decode failures on data slots

	// MessageDelay is end-to-end delay (arrival → last fragment
	// received), in seconds.
	MessageDelay stats.Sample

	// Control-overhead accounting (paper Fig. 9/10).
	ReservationPackets    stats.Counter // explicit reservation packets received
	ContentionSignals     stats.Counter // contention receptions signalling demand
	PiggybackRequests     stats.Counter // implicit requests via data headers
	ContentionTx          stats.Counter // transmissions attempted in contention slots
	ContentionCollisions  stats.Counter // contention slots with ≥2 transmissions
	ContentionSlotsOpen   stats.Counter // contention slots offered
	ContentionSlotsUsed   stats.Counter // contention slots with ≥1 transmission
	ReservationLatency    stats.Sample  // seconds from demand to base receipt
	RegistrationLatency   stats.Sample  // cycles from first attempt to base receipt
	RegistrationsApproved stats.Counter
	RegistrationsFailed   stats.Counter
	PageResponses         stats.Counter // zero-slot reservations answering pages

	// Reverse-channel slot usage (paper Fig. 8a, 12a, 12b).
	DataSlotsOffered  stats.Counter // schedulable reverse data slots across cycles
	DataSlotsAssigned stats.Counter
	DataSlotsUsed     stats.Counter // carried a successfully decoded data packet
	LastSlotDataPkts  stats.Counter // data packets in the CF2-covered last slot
	ReverseDataPkts   stats.Counter // all data packets received on data slots

	// GPS service (paper §2.1 requirements).
	GPSGenerated          stats.Counter
	GPSDelivered          stats.Counter
	GPSLost               stats.Counter
	GPSAccessDelay        stats.Sample // seconds from report arrival to slot
	GPSDeadlineViolations stats.Counter

	// Control-field robustness.
	CFDecodeFailures stats.Counter
	CF2Listens       stats.Counter

	// PerUserBytes and PerUserGenerated drive Jain's fairness index
	// (paper Fig. 11).
	PerUserBytes     map[frame.UserID]uint64
	PerUserGenerated map[frame.UserID]uint64

	// ForwardPktsSent / Delivered cover the forward data path.
	ForwardPktsSent      stats.Counter
	ForwardPktsDelivered stats.Counter

	// Compiled-cycle executor accounting (see compiled.go). These count
	// which execution engine drove each cycle and why the fast path
	// deactivated; they are deliberately NOT part of Snapshot, because
	// the compiled path must be observationally identical to the event
	// kernel and exported run artifacts must not differ between engines.
	CompiledCycles             stats.Counter // cycles driven by the compiled source
	CompiledFallbacks          stats.Counter // cycles whose fast path deactivated
	CompiledFallbackLoss       stats.Counter // lossy channel model present
	CompiledFallbackContention stats.Counter // a contention transmission was planned
	CompiledFallbackAmendment  stats.Counter // CF2 amended the GPS schedule
	CompiledFallbackFormat     stats.Counter // reverse format switched this cycle
	CompiledRecompiles         stats.Counter // template re-selections on format switch

	// Series holds per-cycle points when Config.CollectSeries is set.
	Series []CyclePoint
}

// CyclePoint is one notification cycle's slice of the run, recorded
// when Config.CollectSeries is enabled.
type CyclePoint struct {
	// Cycle is the notification-cycle index.
	Cycle int `json:"cycle"`
	// SlotsOffered and SlotsUsed cover the reverse data slots.
	SlotsOffered int `json:"slotsOffered"`
	SlotsUsed    int `json:"slotsUsed"`
	// MessagesDelivered completed this cycle.
	MessagesDelivered int `json:"messagesDelivered"`
	// Collisions in contention slots this cycle.
	Collisions int `json:"collisions"`
	// QueueDepth is the total pending fragments across subscribers at
	// the cycle boundary.
	QueueDepth int `json:"queueDepth"`
}

// NewMetrics returns an empty metrics bundle.
func NewMetrics() *Metrics {
	return &Metrics{
		PerUserBytes:     make(map[frame.UserID]uint64),
		PerUserGenerated: make(map[frame.UserID]uint64),
	}
}

// Utilization returns the fraction of reverse data slots that carried
// data — the paper's "percentage of the available bandwidth used to
// carry data" (Fig. 8a).
func (m *Metrics) Utilization() float64 {
	return stats.Ratio(float64(m.DataSlotsUsed.Value()), float64(m.DataSlotsOffered.Value()))
}

// PayloadUtilization returns delivered application bytes over offered
// payload capacity — a stricter goodput measure that excludes headers
// and retransmitted duplicates.
func (m *Metrics) PayloadUtilization() float64 {
	capacity := float64(m.DataSlotsOffered.Value()) * float64(frame.MaxPayload)
	return stats.Ratio(float64(m.BytesDelivered.Value()), capacity)
}

// ControlOverhead returns contention-slot demand signals (explicit
// reservation packets plus data-in-contention transmissions) per data
// packet (paper Fig. 9/10 control-overhead index).
func (m *Metrics) ControlOverhead() float64 {
	return stats.Ratio(float64(m.ContentionSignals.Value()), float64(m.ReverseDataPkts.Value()))
}

// CollisionProbability returns the fraction of used contention slots
// that suffered a collision.
func (m *Metrics) CollisionProbability() float64 {
	return stats.Ratio(float64(m.ContentionCollisions.Value()), float64(m.ContentionSlotsUsed.Value()))
}

// SecondCFGain returns the fraction of reverse data packets carried by
// the last data slot — the bandwidth the second control-field set saves
// (paper Fig. 12a).
func (m *Metrics) SecondCFGain() float64 {
	return stats.Ratio(float64(m.LastSlotDataPkts.Value()), float64(m.ReverseDataPkts.Value()))
}

// MeanDataSlotsUsed returns the average data slots carrying traffic per
// cycle (paper Fig. 12b).
func (m *Metrics) MeanDataSlotsUsed() float64 {
	return stats.Ratio(float64(m.DataSlotsUsed.Value()), float64(m.Cycles))
}

// Fairness returns Jain's fairness index over per-user service ratios
// (delivered bytes / generated bytes), the bandwidth share each user
// acquires relative to its demand (paper Fig. 11). Users with no demand
// are excluded.
func (m *Metrics) Fairness() float64 {
	xs := make([]float64, 0, len(m.PerUserGenerated))
	for _, u := range sortedUsers(m.PerUserGenerated) {
		gen := m.PerUserGenerated[u]
		if gen == 0 {
			continue
		}
		xs = append(xs, float64(m.PerUserBytes[u])/float64(gen))
	}
	return stats.JainFairness(xs)
}

// FairnessBytes returns Jain's index over raw per-user delivered bytes,
// an alternative reading of Fig. 11 that also reflects demand imbalance.
func (m *Metrics) FairnessBytes() float64 {
	xs := make([]float64, 0, len(m.PerUserBytes))
	for _, u := range sortedUsers(m.PerUserBytes) {
		xs = append(xs, float64(m.PerUserBytes[u]))
	}
	return stats.JainFairness(xs)
}

// sortedUsers returns the map's keys in ascending order. Jain's index
// is a float sum, so the iteration order must not depend on Go's
// randomized map order or two runs of the same seed could differ in the
// low bits.
func sortedUsers(m map[frame.UserID]uint64) []frame.UserID {
	users := make([]frame.UserID, 0, len(m))
	for u := range m {
		users = append(users, u)
	}
	slices.Sort(users)
	return users
}

// MeanDelayCycles returns the mean message delay expressed in
// notification cycles (paper Fig. 8b's unit).
func (m *Metrics) MeanDelayCycles(cycle time.Duration) float64 {
	if cycle <= 0 {
		return 0
	}
	return m.MessageDelay.Mean() / cycle.Seconds()
}

// RegistrationWithin returns the fraction of received registrations that
// completed within n cycles (design targets: 80 % in 2, 99 % in 10).
func (m *Metrics) RegistrationWithin(n int) float64 {
	return m.RegistrationLatency.FractionAtMost(float64(n))
}
