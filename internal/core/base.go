package core

import (
	"fmt"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sched"
	"github.com/osu-netlab/osumac/internal/sim"
)

// BaseStation owns resource arbitration, channel access and
// registration for one cell (paper §3.1). It builds the two
// control-field sets each notification cycle, schedules both channels,
// acknowledges reverse traffic, and runs the dynamic contention-slot
// controller.
type BaseStation struct {
	cfg     *Config
	metrics *Metrics
	rng     *sim.RNG

	// Registration state.
	registry map[frame.EIN]frame.UserID
	einOf    map[frame.UserID]frame.EIN
	isGPS    map[frame.UserID]bool
	gps      *GPSSlotTable

	// Reverse-channel demand bookkeeping.
	demand       map[frame.UserID]int
	arrivalSeq   int
	arrivalOrder map[frame.UserID]int

	// Dynamic contention-slot controller.
	contentionSlots     int
	collisionsThisCyc   int
	collisionsPrevCyc   int
	idleContentionCycs  int
	contentionUsedThisC bool
	contOfferedThisCyc  int
	contUsedThisCyc     int

	// Per-cycle state.
	layout     Layout
	layouts    [2]Layout            // precomputed per-format slot timings
	cf         *frame.ControlFields // announced schedule for the current cycle
	prevAcks   [frame.ReverseACKEntries]frame.ReverseACK
	curAcks    [frame.ReverseACKEntries]frame.ReverseACK
	prevLast   int          // last data-slot index of the previous cycle
	cf2User    frame.UserID // listener of this cycle's CF2 (prev last-slot user)
	curLastTx  frame.UserID // user who actually transmitted in this cycle's last slot
	lastAssign frame.UserID // user assigned this cycle's last data slot
	cf2Amends  []GPSAmendment
	pagesQueue []frame.UserID

	// cfBufs double-buffers the announced control fields so BeginCycle
	// allocates nothing: cycle k's set stays readable until its last
	// overlapping reverse slot resolves early in cycle k+1, so reuse at
	// k+2 is safe. cf2Scratch backs BuildCF2 the same way (valid until
	// the next BuildCF2 call).
	cfBufs     [2]frame.ControlFields
	cfFlip     int
	cfBlank    frame.ControlFields // all-unassigned template the buffers reset from
	cf2Scratch frame.ControlFields

	// Forward data queues.
	fwdQueue map[frame.UserID][]*frame.DataPacket

	// Uplink message reassembly: (user, msgID) → received fragment set.
	asm map[uint32]*asmState
}

type asmState struct {
	total    int
	received map[int]bool
	bytes    int
}

// NewBaseStation builds the cell controller.
func NewBaseStation(cfg *Config, metrics *Metrics, rng *sim.RNG) *BaseStation {
	return &BaseStation{
		layouts:         [2]Layout{NewLayout(Format1), NewLayout(Format2)},
		cfBlank:         *frame.NewControlFields(),
		cfg:             cfg,
		metrics:         metrics,
		rng:             rng,
		registry:        make(map[frame.EIN]frame.UserID),
		einOf:           make(map[frame.UserID]frame.EIN),
		isGPS:           make(map[frame.UserID]bool),
		gps:             NewGPSSlotTable(cfg.DynamicSlotAdjustment),
		demand:          make(map[frame.UserID]int),
		arrivalOrder:    make(map[frame.UserID]int),
		contentionSlots: cfg.MinContentionSlots,
		prevLast:        -1,
		cf2User:         frame.NoUser,
		curLastTx:       frame.NoUser,
		lastAssign:      frame.NoUser,
		fwdQueue:        make(map[frame.UserID][]*frame.DataPacket),
		asm:             make(map[uint32]*asmState),
		cf:              frame.NewControlFields(),
	}
}

// Registered returns the user ID for an EIN, if admitted.
func (b *BaseStation) Registered(ein frame.EIN) (frame.UserID, bool) {
	u, ok := b.registry[ein]
	return u, ok
}

// ActiveUsers returns the number of admitted subscribers.
func (b *BaseStation) ActiveUsers() int { return len(b.registry) }

// Layout returns the current cycle's slot layout.
func (b *BaseStation) Layout() Layout { return b.layout }

// ControlFields returns the schedule announced this cycle (CF1 content).
func (b *BaseStation) ControlFields() *frame.ControlFields { return b.cf }

// CF2User returns who must listen to the second control fields this
// cycle.
func (b *BaseStation) CF2User() frame.UserID { return b.cf2User }

// Page queues a page for an inactive subscriber; it appears in the next
// cycle's paging field.
func (b *BaseStation) Page(user frame.UserID) {
	b.pagesQueue = append(b.pagesQueue, user)
}

// EnqueueForward queues an application message of the given size for
// downlink delivery to user; it is fragmented into data packets.
func (b *BaseStation) EnqueueForward(user frame.UserID, msgID uint16, size int) error {
	if _, ok := b.einOf[user]; !ok {
		return fmt.Errorf("core: forward enqueue for unknown user %v", user)
	}
	frags := fragmentSizes(size)
	for i, fs := range frags {
		b.fwdQueue[user] = append(b.fwdQueue[user], &frame.DataPacket{
			Header: frame.DataHeader{
				User:      user,
				MsgID:     msgID,
				Frag:      uint8(i),
				FragTotal: uint8(len(frags)),
			},
			Payload: make([]byte, fs),
		})
	}
	return nil
}

// fragmentSizes splits an application message into MAC payload sizes.
func fragmentSizes(size int) []int {
	if size <= 0 {
		return []int{0}
	}
	var out []int
	for size > 0 {
		n := size
		if n > frame.MaxPayload {
			n = frame.MaxPayload
		}
		out = append(out, n)
		size -= n
	}
	return out
}

// BeginCycle computes the schedule for cycle k and the CF1 contents.
// It must run at the forward cycle start, before CF1 transmission.
func (b *BaseStation) BeginCycle() {
	// Roll the ACK window: acks collected during the previous cycle are
	// announced now; the previous cycle's last slot is still in flight
	// and its ack lands in RecordReverse before CF2 is built.
	b.prevAcks = b.curAcks
	b.curAcks = emptyAcks()
	b.prevLast = b.layout.LastDataSlot()
	// The CF2 listener is whoever was ASSIGNED the previous cycle's last
	// data slot (the paper's rule is assignment-based, so it holds even
	// if the owner had nothing to send); when the slot was open, it is
	// whoever the base heard contending there.
	b.cf2User = b.lastAssign
	if b.cf2User == frame.NoUser {
		b.cf2User = b.curLastTx
	}
	b.curLastTx = frame.NoUser
	b.lastAssign = frame.NoUser

	// Contention-slot controller (paper §3.5): widen on collisions,
	// narrow after idle cycles.
	if !b.contentionUsedThisC {
		b.idleContentionCycs++
	} else {
		b.idleContentionCycs = 0
	}
	b.contentionUsedThisC = false
	// Widen only on repeated collisions ("multiple times in a
	// notification cycle or across multiple notification cycles");
	// narrow as soon as contention capacity goes unused (paper §3.1).
	repeated := b.collisionsThisCyc >= 2 ||
		(b.collisionsThisCyc >= 1 && b.collisionsPrevCyc >= 1)
	unused := b.contOfferedThisCyc - b.contUsedThisCyc
	switch {
	case repeated && b.contentionSlots < b.cfg.MaxContentionSlots:
		b.contentionSlots++
	case b.collisionsThisCyc == 0 && unused >= 1 && b.contOfferedThisCyc > 0 &&
		b.contentionSlots > b.cfg.MinContentionSlots:
		b.contentionSlots--
	}
	b.collisionsPrevCyc = b.collisionsThisCyc
	b.collisionsThisCyc = 0
	b.contOfferedThisCyc = 0
	b.contUsedThisCyc = 0

	// Format selection and layout.
	format := Format1
	if b.cfg.DynamicSlotAdjustment {
		format = b.gps.Format()
	}
	b.layout = b.layouts[int(format)-1]
	d := format.DataSlots()

	// Flip the control-field double buffer (see the field comment for why
	// two generations suffice) and reset it to all-unassigned.
	cf := &b.cfBufs[b.cfFlip]
	b.cfFlip ^= 1
	*cf = b.cfBlank
	if b.cfg.DynamicSlotAdjustment && b.cfg.GPSGrantPolicy == GPSGrantDeadline {
		// Deadline-aware grants: every registered GPS user gets a slot
		// this cycle (population never exceeds the on-air count with the
		// table consolidated), earliest report deadline first.
		cf.GPSSchedule = b.gps.GrantSchedule(format.GPSSlots())
	} else {
		cf.GPSSchedule = b.gps.Snapshot()
		if format == Format2 {
			// Only the first 3 GPS slots exist on air in format 2.
			for i := phy.Format2GPSSlots; i < len(cf.GPSSchedule); i++ {
				cf.GPSSchedule[i] = frame.NoUser
			}
		}
	}

	// Reverse data slots: first contentionSlots slots stay open, the
	// rest go to the scheduler. Without the second control fields the
	// last slot is never assigned (its owner could not hear any
	// schedule) — the paper's rejected single-CF alternative.
	cSlots := b.contentionSlots
	if cSlots > d-1 {
		cSlots = d - 1
	}
	lastAssignable := d
	if !b.cfg.SecondControlField {
		lastAssignable = d - 1
	}
	avail := lastAssignable - cSlots
	if avail < 0 {
		avail = 0
	}
	reqs := b.pendingRequests()
	var assignment []frame.UserID
	if len(reqs) > 0 {
		assignment = b.cfg.Scheduler.Schedule(reqs, avail)
	}
	for i, u := range assignment {
		cf.ReverseSchedule[cSlots+i] = u
	}
	b.fixCF2UserEarlySlots(cf, d)
	// Deduct granted slots from demand.
	for i := 0; i < d; i++ {
		u := cf.ReverseSchedule[i]
		if u != frame.NoUser && b.demand[u] > 0 {
			b.demand[u]--
			if b.demand[u] == 0 {
				delete(b.demand, u)
				delete(b.arrivalOrder, u)
			}
		}
	}

	// Forward slots, constrained by half-duplex against the reverse
	// schedule just built and the CF2 rule.
	cf.ForwardSchedule = b.assignForward(cf, d)

	// ACKs for the previous cycle, minus its last slot (CF2's job).
	cf.ReverseACKs = b.prevAcks
	if b.prevLast >= 0 && b.prevLast < len(cf.ReverseACKs) {
		cf.ReverseACKs[b.prevLast] = frame.ReverseACK{User: frame.NoUser}
	}

	// Paging.
	for i := 0; i < len(cf.Paging) && len(b.pagesQueue) > 0; i++ {
		cf.Paging[i] = b.pagesQueue[0]
		b.pagesQueue = b.pagesQueue[1:]
	}

	b.cf = cf
	if last := d - 1; last >= 0 {
		b.lastAssign = cf.ReverseSchedule[last]
	}

	// Bookkeeping for Fig. 8a / 12b: slots that could carry data.
	b.metrics.DataSlotsOffered.Addn(uint64(d))
	assigned := 0
	for i := 0; i < d; i++ {
		if cf.ReverseSchedule[i] != frame.NoUser {
			assigned++
		}
	}
	b.metrics.DataSlotsAssigned.Addn(uint64(assigned))
	b.metrics.ContentionSlotsOpen.Addn(uint64(cf.ContentionSlotCount()))
	b.contOfferedThisCyc = cf.ContentionSlotCount()
}

// fixCF2UserEarlySlots enforces that this cycle's CF2 listener is not
// scheduled to transmit before it has heard CF2 (plus switch time). In
// format 2 the first data slot starts before CF2 ends.
func (b *BaseStation) fixCF2UserEarlySlots(cf *frame.ControlFields, d int) {
	if b.cf2User == frame.NoUser {
		return
	}
	minStart := b.layout.CF2.End + phy.HalfDuplexSwitch
	for i := 0; i < d; i++ {
		if cf.ReverseSchedule[i] != b.cf2User {
			continue
		}
		if b.layout.ReverseData[i].Start >= minStart {
			continue
		}
		// Swap with the latest slot held by a different user.
		swapped := false
		for j := d - 1; j > i; j-- {
			u := cf.ReverseSchedule[j]
			if u != b.cf2User && u != frame.NoUser && b.layout.ReverseData[j].Start >= minStart {
				cf.ReverseSchedule[i], cf.ReverseSchedule[j] = cf.ReverseSchedule[j], cf.ReverseSchedule[i]
				swapped = true
				break
			}
		}
		if !swapped {
			// No feasible swap: return the slot to the pool unassigned
			// and restore the user's demand.
			cf.ReverseSchedule[i] = frame.NoUser
			b.addDemand(b.cf2User, 1)
		}
	}
}

// assignForward builds the forward schedule for this cycle.
func (b *BaseStation) assignForward(cf *frame.ControlFields, d int) [frame.ForwardScheduleEntries]frame.UserID {
	var out [frame.ForwardScheduleEntries]frame.UserID
	for i := range out {
		out[i] = frame.NoUser
	}
	var demands []sched.Request
	for u, q := range b.fwdQueue {
		if len(q) > 0 {
			demands = append(demands, sched.Request{User: u, Slots: len(q), Arrival: b.arrivalOrder[u]})
		}
	}
	if len(demands) == 0 {
		return out
	}
	tx := make(map[frame.UserID][]phy.Interval)
	for i := 0; i < d; i++ {
		u := cf.ReverseSchedule[i]
		if u != frame.NoUser {
			tx[u] = append(tx[u], b.layout.ReverseData[i])
		}
	}
	for i, iv := range b.layout.GPS {
		u := cf.GPSSchedule[i]
		if u != frame.NoUser {
			tx[u] = append(tx[u], iv)
		}
	}
	cf2 := frame.NoUser
	if b.cfg.SecondControlField {
		cf2 = b.cf2User
	}
	assigned := sched.AssignForward(demands, sched.ForwardConstraints{
		SlotIntervals: b.layout.ForwardData,
		TxIntervals:   tx,
		CF2User:       cf2,
	})
	copy(out[:], assigned)
	return out
}

// GPSAmendment records a GPS grant added in the second control fields
// for a user admitted after this cycle's CF1 announcement.
type GPSAmendment struct {
	User frame.UserID
	Slot int
}

// BuildCF2 returns the second control-field set: identical to CF1
// except it acknowledges the previous cycle's last-slot activity
// (paper §3.4 problem 3) and, under the deadline-aware grant policy,
// amends the GPS schedule with slots for users admitted since CF1.
func (b *BaseStation) BuildCF2() *frame.ControlFields {
	b.amendCF2GPS()
	b.cf2Scratch = *b.cf
	if b.prevLast >= 0 && b.prevLast < len(b.cf2Scratch.ReverseACKs) {
		b.cf2Scratch.ReverseACKs[b.prevLast] = b.prevAcks[b.prevLast]
	}
	return &b.cf2Scratch
}

// CF2Amendments lists the GPS grants added by this cycle's CF2, for the
// harness's trace hooks. The slice is reused across cycles.
func (b *BaseStation) CF2Amendments() []GPSAmendment { return b.cf2Amends }

// amendCF2GPS grants each GPS user admitted after this cycle's CF1 the
// earliest announced-free on-air GPS slot it can still use — one whose
// start clears the CF2 listen window plus the half-duplex switch. A
// registration arriving in the previous cycle's overlapping last data
// slot is processed just after BeginCycle froze the schedule; without
// this repair the user's first grant comes a full cycle later at a
// fixed high slot index, whose start can fall past the first pending
// report's replacement deadline (the ROADMAP grant-starvation bug).
// The registrant activates on this same CF2 (its ack rides here too)
// and reads its slot from the amended schedule. Established users are
// untouched: amendments only fill slots announced empty.
func (b *BaseStation) amendCF2GPS() {
	b.cf2Amends = b.cf2Amends[:0]
	if !b.cfg.SecondControlField || !b.cfg.DynamicSlotAdjustment ||
		b.cfg.GPSGrantPolicy != GPSGrantDeadline {
		return
	}
	onAir := len(b.layout.GPS)
	if onAir > len(b.cf.GPSSchedule) {
		onAir = len(b.cf.GPSSchedule)
	}
	minStart := b.layout.CF2.End + phy.HalfDuplexSwitch
	for i := 0; i < phy.MaxGPSUsers; i++ {
		u := b.gps.Holder(i)
		if u == frame.NoUser || scheduleHas(b.cf.GPSSchedule, u) {
			continue
		}
		for s := 0; s < onAir; s++ {
			if b.cf.GPSSchedule[s] != frame.NoUser || b.layout.GPS[s].Start < minStart {
				continue
			}
			b.cf.GPSSchedule[s] = u
			b.gps.Granted(u)
			b.cf2Amends = append(b.cf2Amends, GPSAmendment{User: u, Slot: s})
			break
		}
	}
}

// scheduleHas reports whether user appears in a GPS schedule.
func scheduleHas(sched [frame.GPSScheduleEntries]frame.UserID, user frame.UserID) bool {
	for _, u := range sched {
		if u == user {
			return true
		}
	}
	return false
}

// pendingRequests converts the demand book into scheduler requests.
func (b *BaseStation) pendingRequests() []sched.Request {
	var out []sched.Request
	for u, n := range b.demand {
		out = append(out, sched.Request{User: u, Slots: n, Arrival: b.arrivalOrder[u]})
	}
	return out
}

// addDemand books n reverse slots owed to user.
func (b *BaseStation) addDemand(user frame.UserID, n int) {
	if n <= 0 || !user.Valid() {
		return
	}
	if _, ok := b.demand[user]; !ok {
		b.arrivalOrder[user] = b.arrivalSeq
		b.arrivalSeq++
	}
	b.demand[user] += n
}

// ReverseOutcome summarizes what the base received in one reverse data
// slot, for the network harness's metric hooks.
type ReverseOutcome struct {
	// Collision is true when ≥2 stations transmitted.
	Collision bool
	// Received is the successfully decoded packet, nil on loss/idle.
	Received *frame.Packet
	// MessageComplete is set when a data fragment completed an uplink
	// message reassembly; Bytes is its total payload size.
	MessageComplete bool
	User            frame.UserID
	MsgID           uint16
	Bytes           int
	// NewRegistration is set when a registration was approved this slot.
	NewRegistration bool
	AssignedID      frame.UserID
}

// RecordReverse processes the transmissions received in reverse data
// slot `slot` of the cycle whose ACK window `intoPrev` selects: false
// for the running cycle, true when the slot belongs to the previous
// cycle (only its last slot can arrive that late). raw holds the
// RS-decoded 48-byte payloads of each non-colliding transmission; the
// harness passes nil payloads for transmissions whose decode failed.
func (b *BaseStation) RecordReverse(slot int, intoPrev bool, isLastSlot bool, payloads [][]byte, contention bool) ReverseOutcome {
	if contention && len(payloads) > 0 {
		b.metrics.ContentionSlotsUsed.Inc()
		b.metrics.ContentionTx.Addn(uint64(len(payloads)))
		b.contentionUsedThisC = true
		b.contUsedThisCyc++
	}
	if len(payloads) == 0 {
		return ReverseOutcome{}
	}
	if len(payloads) > 1 {
		// Collision: everything in the slot is lost.
		b.metrics.ContentionCollisions.Inc()
		b.collisionsThisCyc++
		return ReverseOutcome{Collision: true}
	}
	payload := payloads[0]
	if payload == nil {
		// RS decode failure: counted as loss (no ACK).
		if !contention {
			b.metrics.FragmentsLost.Inc()
		}
		return ReverseOutcome{}
	}
	pkt, err := frame.UnmarshalPacket(payload)
	if err != nil {
		if !contention {
			b.metrics.FragmentsLost.Inc()
		}
		return ReverseOutcome{}
	}
	return b.recordPacket(slot, intoPrev, isLastSlot, pkt, contention)
}

// recordPacket applies a successfully decoded reverse-slot packet: the
// wire-independent back half of RecordReverse. The compiled executor
// calls it directly with a protocol-built packet, skipping the marshal →
// RS encode → RS decode → unmarshal round-trip an ideal channel cannot
// change.
func (b *BaseStation) recordPacket(slot int, intoPrev bool, isLastSlot bool, pkt *frame.Packet, contention bool) ReverseOutcome {
	var out ReverseOutcome
	acks := &b.curAcks
	if intoPrev {
		acks = &b.prevAcks
	}
	out.Received = pkt

	switch pkt.Type {
	case frame.TypeData:
		h := pkt.Data.Header
		if _, known := b.einOf[h.User]; !known {
			return out // stale packet from a deregistered user
		}
		if contention {
			b.metrics.ContentionSignals.Inc()
		}
		acks[slot] = frame.ReverseACK{User: h.User}
		if isLastSlot && !intoPrev {
			b.curLastTx = h.User
		}
		if h.MoreSlots > 0 {
			b.addDemand(h.User, int(h.MoreSlots))
			b.metrics.PiggybackRequests.Inc()
		}
		b.metrics.ReverseDataPkts.Inc()
		if isLastSlot {
			b.metrics.LastSlotDataPkts.Inc()
		}
		b.metrics.DataSlotsUsed.Inc()
		dup, done, total := b.reassemble(h, len(pkt.Data.Payload))
		if !dup {
			b.metrics.BytesDelivered.Addn(uint64(len(pkt.Data.Payload)))
			b.metrics.PerUserBytes[h.User] += uint64(len(pkt.Data.Payload))
		}
		if done {
			out.MessageComplete = true
			out.User = h.User
			out.MsgID = h.MsgID
			out.Bytes = total
		}
	case frame.TypeReservation:
		r := pkt.Reservation
		if _, known := b.einOf[r.User]; !known {
			return out
		}
		acks[slot] = frame.ReverseACK{User: r.User}
		if isLastSlot && !intoPrev {
			b.curLastTx = r.User
		}
		if r.Slots == 0 {
			// A zero-slot reservation is a page response: the subscriber
			// is alive and reachable.
			b.metrics.PageResponses.Inc()
		} else {
			b.addDemand(r.User, int(r.Slots))
			b.metrics.ReservationPackets.Inc()
			b.metrics.ContentionSignals.Inc()
		}
	case frame.TypeRegistration:
		req := pkt.Register
		user, ok := b.admit(req)
		if !ok {
			b.metrics.RegistrationsFailed.Inc()
			return out
		}
		acks[slot] = frame.ReverseACK{User: user, EIN: req.EIN}
		if isLastSlot && !intoPrev {
			b.curLastTx = user
		}
		out.NewRegistration = true
		out.AssignedID = user
		b.metrics.RegistrationsApproved.Inc()
	}
	return out
}

// admit approves a registration request, assigning a user ID (and a GPS
// slot for GPS subscribers). Re-registration of a known EIN returns the
// existing assignment.
func (b *BaseStation) admit(req *frame.RegistrationRequest) (frame.UserID, bool) {
	if u, ok := b.registry[req.EIN]; ok {
		return u, true
	}
	if len(b.registry) >= phy.MaxDataUsers-1 {
		return frame.NoUser, false
	}
	var user frame.UserID = frame.NoUser
	for id := frame.UserID(0); id <= frame.MaxUserID; id++ {
		if _, taken := b.einOf[id]; !taken {
			user = id
			break
		}
	}
	if user == frame.NoUser {
		return frame.NoUser, false
	}
	if req.WantGPS {
		if _, err := b.gps.Admit(user); err != nil {
			return frame.NoUser, false
		}
	}
	b.registry[req.EIN] = user
	b.einOf[user] = req.EIN
	b.isGPS[user] = req.WantGPS
	return user, true
}

// Deregister administratively removes a subscriber (sign-off). GPS slot
// holders release their slot via the dynamic adjustment rules.
func (b *BaseStation) Deregister(user frame.UserID) error {
	ein, ok := b.einOf[user]
	if !ok {
		return fmt.Errorf("core: deregister unknown user %v", user)
	}
	if b.isGPS[user] {
		if err := b.gps.Leave(user); err != nil {
			return err
		}
	}
	delete(b.registry, ein)
	delete(b.einOf, user)
	delete(b.isGPS, user)
	delete(b.demand, user)
	delete(b.arrivalOrder, user)
	delete(b.fwdQueue, user)
	return nil
}

// RecordGPS processes a GPS slot reception. body is the received
// 32-byte packet body, nil if the slot was idle.
func (b *BaseStation) RecordGPS(body []byte) (*frame.GPSReport, bool) {
	if body == nil {
		return nil, false
	}
	rep, err := frame.UnmarshalGPSReport(body)
	if err != nil {
		b.metrics.GPSLost.Inc()
		return nil, false
	}
	if !b.RecordGPSDirect(rep) {
		return nil, false
	}
	return rep, true
}

// RecordGPSDirect applies an already-decoded GPS report: the
// wire-independent back half of RecordGPS, used by the compiled
// executor (an ideal channel cannot corrupt the 32-byte body, so the
// unmarshal of a protocol-built report cannot fail).
func (b *BaseStation) RecordGPSDirect(rep *frame.GPSReport) bool {
	if b.gps.SlotOf(rep.User) < 0 {
		// Report from a user that no longer holds a slot.
		b.metrics.GPSLost.Inc()
		return false
	}
	b.metrics.GPSDelivered.Inc()
	return true
}

// PopForward removes and returns the next queued forward packet for
// user, or nil.
func (b *BaseStation) PopForward(user frame.UserID) *frame.DataPacket {
	q := b.fwdQueue[user]
	if len(q) == 0 {
		return nil
	}
	pkt := q[0]
	b.fwdQueue[user] = q[1:]
	return pkt
}

// ContentionSlotCount exposes the controller state for tests.
func (b *BaseStation) ContentionSlotCount() int { return b.contentionSlots }

// GPSTable exposes the slot table for tests and the harness.
func (b *BaseStation) GPSTable() *GPSSlotTable { return b.gps }

// reassemble tracks uplink fragments; it reports whether the fragment
// was a duplicate retransmission, whether it completed a message, and
// the completed message's total payload size.
func (b *BaseStation) reassemble(h frame.DataHeader, payloadLen int) (dup, done bool, total int) {
	if h.FragTotal == 0 {
		return false, false, 0
	}
	key := uint32(h.User)<<16 | uint32(h.MsgID)
	st, ok := b.asm[key]
	if !ok {
		//lint:ignore hotpathalloc one amortized allocation per uplink message, paid identically by both engines; the idle steady state never reaches it
		st = &asmState{total: int(h.FragTotal), received: make(map[int]bool)}
		b.asm[key] = st
	}
	if st.received[int(h.Frag)] {
		return true, false, 0
	}
	st.received[int(h.Frag)] = true
	st.bytes += payloadLen
	if len(st.received) == st.total {
		delete(b.asm, key)
		return false, true, st.bytes
	}
	return false, false, 0
}

// emptyAcks returns an all-empty ACK vector.
func emptyAcks() [frame.ReverseACKEntries]frame.ReverseACK {
	var out [frame.ReverseACKEntries]frame.ReverseACK
	for i := range out {
		out[i] = frame.ReverseACK{User: frame.NoUser}
	}
	return out
}
