// Package core implements the OSU-MAC protocol: the base station with
// its registration handling, GPS slot table, contention controller and
// cycle scheduler; the mobile-subscriber state machine; and the network
// harness that runs them over the simulated physical layer.
package core

import (
	"time"

	"github.com/osu-netlab/osumac/internal/phy"
)

// ReverseFormat selects the reverse-channel cycle structure
// (paper §3.3, Fig. 3).
type ReverseFormat int

// Format1 (8 GPS + 8 data slots) is used with more than three active
// GPS users; Format2 (3 GPS + 9 data slots) otherwise.
const (
	Format1 ReverseFormat = iota + 1
	Format2
)

// String implements fmt.Stringer.
func (f ReverseFormat) String() string {
	switch f {
	case Format1:
		return "format1"
	case Format2:
		return "format2"
	default:
		return "format?"
	}
}

// FormatFor returns the reverse format for the given number of active
// GPS users. The choice is announced implicitly: mobiles count the
// assigned GPS slots in the control fields.
func FormatFor(gpsUsers int) ReverseFormat {
	if gpsUsers > phy.Format2GPSSlots {
		return Format1
	}
	return Format2
}

// GPSSlots returns the GPS slots in this format.
func (f ReverseFormat) GPSSlots() int {
	if f == Format1 {
		return phy.Format1GPSSlots
	}
	return phy.Format2GPSSlots
}

// DataSlots returns the regular data slots in this format.
func (f ReverseFormat) DataSlots() int {
	if f == Format1 {
		return phy.Format1DataSlots
	}
	return phy.Format2DataSlots
}

// Layout holds the slot timing of one notification cycle. All intervals
// are offsets from the forward cycle start; the reverse cycle begins
// ReverseShift later and its last data slot runs into the next forward
// cycle, overlapping that cycle's first control fields — which is why
// the second control-field set exists.
type Layout struct {
	// Format is the reverse-channel structure this layout describes.
	Format ReverseFormat

	// CF1 and CF2 are the control-field transmission intervals on the
	// forward channel.
	CF1, CF2 phy.Interval
	// ForwardData are the N=37 forward data slots.
	ForwardData []phy.Interval

	// GPS are the reverse-channel GPS slots (8 or 3).
	GPS []phy.Interval
	// ReverseData are the reverse data slots (8 or 9).
	ReverseData []phy.Interval
}

// NewLayout computes the slot timing for a reverse format. The times
// reproduce paper Table 2 exactly (see TestTable2AccessTimes).
func NewLayout(format ReverseFormat) Layout {
	l := Layout{Format: format}

	// Forward channel: preamble(300) CF1(600) slot0(300) preamble(150)
	// CF2(600) slots 1..36 (300 each).
	fw := func(sym int) time.Duration { return phy.SymbolDuration(sym, phy.ForwardSymbolRate) }
	at := fw(phy.CyclePreamble1Symbols)
	l.CF1 = phy.Interval{Start: at, End: at + phy.ControlFieldTime}
	at = l.CF1.End
	l.ForwardData = make([]phy.Interval, 0, phy.ForwardDataSlots)
	l.ForwardData = append(l.ForwardData, phy.Interval{Start: at, End: at + phy.ForwardPacketTime})
	at += phy.ForwardPacketTime
	at += fw(phy.CyclePreamble2Symbols)
	l.CF2 = phy.Interval{Start: at, End: at + phy.ControlFieldTime}
	at = l.CF2.End
	for i := 1; i < phy.ForwardDataSlots; i++ {
		l.ForwardData = append(l.ForwardData, phy.Interval{Start: at, End: at + phy.ForwardPacketTime})
		at += phy.ForwardPacketTime
	}

	// Reverse channel: δ shift, then GPS slots, then data slots.
	at = phy.ReverseShift
	l.GPS = make([]phy.Interval, 0, format.GPSSlots())
	for i := 0; i < format.GPSSlots(); i++ {
		l.GPS = append(l.GPS, phy.Interval{Start: at, End: at + phy.GPSSlotTime})
		at += phy.GPSSlotTime
	}
	l.ReverseData = make([]phy.Interval, 0, format.DataSlots())
	for i := 0; i < format.DataSlots(); i++ {
		l.ReverseData = append(l.ReverseData, phy.Interval{Start: at, End: at + phy.ReverseDataSlotTime})
		at += phy.ReverseDataSlotTime
	}
	return l
}

// LastDataSlot returns the index of the last reverse data slot, whose
// transmission overlaps the next cycle's CF1.
func (l Layout) LastDataSlot() int { return len(l.ReverseData) - 1 }

// LastSlotOverlapsNextCF1 verifies the structural property that drives
// the two-control-field design: the final reverse data slot overlaps
// the next forward cycle's first control fields, and no other reverse
// slot does.
func (l Layout) LastSlotOverlapsNextCF1() bool {
	nextCF1 := phy.Interval{
		Start: phy.CycleLength + l.CF1.Start,
		End:   phy.CycleLength + l.CF1.End,
	}
	for i, iv := range l.ReverseData {
		overlaps := iv.Overlaps(nextCF1)
		if i == l.LastDataSlot() && !overlaps {
			return false
		}
		if i != l.LastDataSlot() && overlaps {
			return false
		}
	}
	for _, iv := range l.GPS {
		if iv.Overlaps(nextCF1) {
			return false
		}
	}
	return true
}

// ReverseTxInterval returns the on-air interval of a transmission in
// reverse data slot i, offset to the forward cycle start.
func (l Layout) ReverseTxInterval(slot int) phy.Interval { return l.ReverseData[slot] }

// CF2User returns which reverse data slot's owner must listen to CF2:
// always the last slot (paper §3.4 problem 2).
func (l Layout) CF2Slot() int { return l.LastDataSlot() }

// Table2AccessTimes returns the reverse-channel access times of this
// format as (GPS slot starts, data slot starts), reproducing paper
// Table 2.
func (l Layout) Table2AccessTimes() (gps, data []time.Duration) {
	for _, iv := range l.GPS {
		gps = append(gps, iv.Start)
	}
	for _, iv := range l.ReverseData {
		data = append(data, iv.Start)
	}
	return gps, data
}

// SlotAt maps a reverse-channel time offset to (isGPS, slotIndex); ok is
// false if the offset falls in no slot.
func (l Layout) SlotAt(offset time.Duration) (isGPS bool, slot int, ok bool) {
	for i, s := range l.GPS {
		if offset >= s.Start && offset < s.End {
			return true, i, true
		}
	}
	for i, s := range l.ReverseData {
		if offset >= s.Start && offset < s.End {
			return false, i, true
		}
	}
	return false, 0, false
}
