package core

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
)

// TestSeriesReconcilesWithAggregates asserts that, with the end-of-run
// flush, the per-cycle series deltas sum exactly to the aggregate
// counters over a deterministic multi-cycle run.
func TestSeriesReconcilesWithAggregates(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.CollectSeries = true
		c.MeanInterarrival = 4 * time.Second
	})
	for i := 0; i < 6; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.AddSubscriber(300, true, 0); err != nil {
		t.Fatal(err)
	}
	const cycles = 60
	if err := n.Run(cycles); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	series := m.Series
	if len(series) != cycles {
		t.Fatalf("series has %d points, want %d (one per cycle incl. the flushed final)", len(series), cycles)
	}
	var used, offered, delivered, collisions int
	for i, p := range series {
		if p.Cycle != i {
			t.Fatalf("series cycle %d at index %d", p.Cycle, i)
		}
		if p.SlotsUsed < 0 || p.Collisions < 0 || p.QueueDepth < 0 {
			t.Fatalf("negative delta in point %+v", p)
		}
		used += p.SlotsUsed
		offered += p.SlotsOffered
		delivered += p.MessagesDelivered
		collisions += p.Collisions
	}
	if uint64(used) != m.DataSlotsUsed.Value() {
		t.Errorf("series slots used %d != aggregate %d", used, m.DataSlotsUsed.Value())
	}
	if uint64(offered) != m.DataSlotsOffered.Value() {
		t.Errorf("series slots offered %d != aggregate %d", offered, m.DataSlotsOffered.Value())
	}
	if uint64(delivered) != m.MessagesDelivered.Value() {
		t.Errorf("series deliveries %d != aggregate %d", delivered, m.MessagesDelivered.Value())
	}
	if uint64(collisions) != m.ContentionCollisions.Value() {
		t.Errorf("series collisions %d != aggregate %d", collisions, m.ContentionCollisions.Value())
	}
	// The flushed final point's queue depth reflects the run-end state.
	depth := 0
	for _, s := range n.Subscribers() {
		depth += s.QueueLen()
	}
	if got := series[len(series)-1].QueueDepth; got != depth {
		t.Errorf("final series queue depth %d, run-end depth %d", got, depth)
	}
}

// TestFlushSeriesIdempotent covers the guard that keeps FlushSeries and
// the next beginCycle from double-recording one cycle.
func TestFlushSeriesIdempotent(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.CollectSeries = true
		c.MeanInterarrival = 4 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(5); err != nil {
		t.Fatal(err)
	}
	n.FlushSeries()
	n.FlushSeries()
	if got := len(n.Metrics().Series); got != 5 {
		t.Fatalf("series has %d points after repeated flushes, want 5", got)
	}
	// A follow-up run continues the sequence without duplicates.
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	series := n.Metrics().Series
	for i, p := range series {
		if p.Cycle != i {
			t.Fatalf("series cycle %d at index %d after resumed run", p.Cycle, i)
		}
	}
}
