package core

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
)

func TestConfigDefaults(t *testing.T) {
	cfg := NewConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Scheduler == nil || cfg.NewForwardModel == nil || cfg.NewReverseModel == nil {
		t.Fatal("defaults not filled")
	}
	if !cfg.DynamicSlotAdjustment || !cfg.SecondControlField {
		t.Fatal("paper features should default on")
	}
	if cfg.Policy != ReserveWithData {
		t.Fatal("default policy should be data-in-contention")
	}
	if cfg.GPSPeriod != phy.GPSAccessDeadline {
		t.Fatal("GPS period should default to 4s")
	}
}

func TestConfigZeroValueValidates(t *testing.T) {
	var cfg Config
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.MinContentionSlots != 1 || cfg.QueueCapFragments <= 0 {
		t.Fatal("zero-value defaults wrong")
	}
	if cfg.Policy != ReserveExplicit {
		t.Fatal("zero policy should default to explicit")
	}
}

func TestConfigRejectsBadValues(t *testing.T) {
	cfg := NewConfig()
	cfg.MaxContentionSlots = phy.Format1DataSlots
	if err := cfg.Validate(); err == nil {
		t.Fatal("contention slots swallowing all data slots accepted")
	}
	cfg = NewConfig()
	cfg.Policy = ReservationPolicy(99)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
	cfg = NewConfig()
	cfg.MeanInterarrival = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative interarrival accepted")
	}
}

func TestConfigMaxBelowMinClamped(t *testing.T) {
	cfg := NewConfig()
	cfg.MinContentionSlots = 3
	cfg.MaxContentionSlots = 1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxContentionSlots != 3 {
		t.Fatalf("max = %d, want clamped to min", cfg.MaxContentionSlots)
	}
}

func TestMetricsDerived(t *testing.T) {
	m := NewMetrics()
	m.Cycles = 10
	m.DataSlotsOffered.Addn(80)
	m.DataSlotsUsed.Addn(60)
	if got := m.Utilization(); got != 0.75 {
		t.Fatalf("Utilization = %v", got)
	}
	m.BytesDelivered.Addn(uint64(40 * frame.MaxPayload))
	if got := m.PayloadUtilization(); got != 0.5 {
		t.Fatalf("PayloadUtilization = %v", got)
	}
	m.ReverseDataPkts.Addn(50)
	m.ContentionSignals.Addn(5)
	if got := m.ControlOverhead(); got != 0.1 {
		t.Fatalf("ControlOverhead = %v", got)
	}
	m.ContentionSlotsUsed.Addn(20)
	m.ContentionCollisions.Addn(4)
	if got := m.CollisionProbability(); got != 0.2 {
		t.Fatalf("CollisionProbability = %v", got)
	}
	m.LastSlotDataPkts.Addn(5)
	if got := m.SecondCFGain(); got != 0.1 {
		t.Fatalf("SecondCFGain = %v", got)
	}
	if got := m.MeanDataSlotsUsed(); got != 6 {
		t.Fatalf("MeanDataSlotsUsed = %v", got)
	}
}

func TestMetricsFairnessDefinitions(t *testing.T) {
	m := NewMetrics()
	// Equal service ratios → perfect fairness even with unequal demand.
	m.PerUserGenerated[1] = 1000
	m.PerUserBytes[1] = 500
	m.PerUserGenerated[2] = 100
	m.PerUserBytes[2] = 50
	if got := m.Fairness(); got < 0.999 {
		t.Fatalf("service-ratio fairness = %v, want ~1", got)
	}
	// Raw-byte fairness sees the demand imbalance.
	if got := m.FairnessBytes(); got > 0.99 {
		t.Fatalf("byte fairness = %v, should reflect imbalance", got)
	}
	// Users with no demand are excluded.
	m.PerUserGenerated[3] = 0
	if got := m.Fairness(); got < 0.999 {
		t.Fatalf("zero-demand user polluted fairness: %v", got)
	}
	// Empty metrics are trivially fair.
	if NewMetrics().Fairness() != 1 {
		t.Fatal("empty fairness should be 1")
	}
}

func TestMetricsDelayAndRegistration(t *testing.T) {
	m := NewMetrics()
	m.MessageDelay.AddDuration(phy.CycleLength * 3)
	m.MessageDelay.AddDuration(phy.CycleLength * 5)
	if got := m.MeanDelayCycles(phy.CycleLength); got != 4 {
		t.Fatalf("MeanDelayCycles = %v", got)
	}
	if m.MeanDelayCycles(0) != 0 {
		t.Fatal("zero cycle length should yield 0")
	}
	m.RegistrationLatency.Add(1)
	m.RegistrationLatency.Add(2)
	m.RegistrationLatency.Add(7)
	if got := m.RegistrationWithin(2); got < 0.66 || got > 0.67 {
		t.Fatalf("RegistrationWithin(2) = %v", got)
	}
	if got := m.RegistrationWithin(10); got != 1 {
		t.Fatalf("RegistrationWithin(10) = %v", got)
	}
}

func TestMetricsSnapshotJSON(t *testing.T) {
	m := NewMetrics()
	m.Cycles = 5
	m.MessagesDelivered.Addn(3)
	m.DataSlotsOffered.Addn(40)
	m.DataSlotsUsed.Addn(20)
	snap := m.Snapshot()
	if snap.Cycles != 5 || snap.MessagesDelivered != 3 || snap.Utilization != 0.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	b, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != snap {
		t.Fatal("JSON round-trip mismatch")
	}
}
