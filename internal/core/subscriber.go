package core

import (
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
)

// SubscriberState is the lifecycle of a mobile subscriber.
type SubscriberState int

// A subscriber is Idle before it enters the cell, Registering while it
// persists with registration attempts, and Active once admitted.
const (
	StateIdle SubscriberState = iota + 1
	StateRegistering
	StateActive
)

// String implements fmt.Stringer.
func (s SubscriberState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRegistering:
		return "registering"
	case StateActive:
		return "active"
	default:
		return "state?"
	}
}

// fragment is one queued MAC payload of an application message.
type fragment struct {
	msgID     uint16
	index     int
	total     int
	size      int
	createdAt time.Duration
}

// contentionRecord remembers a contention-slot transmission awaiting its
// ACK.
type contentionRecord struct {
	slot     int
	kind     frame.PacketType
	frag     *fragment // for data-in-contention
	more     int       // piggybacked request
	reqSlots int       // explicit reservation size
}

// slotRecord remembers a scheduled data-slot transmission awaiting ACK.
type slotRecord struct {
	frag *fragment
	more int
}

// Subscriber is one mobile unit's MAC state machine. All methods run in
// the simulation event loop; the type is not safe for concurrent use.
type Subscriber struct {
	// EIN is the unit's permanent equipment number.
	EIN frame.EIN
	// IsGPS selects the real-time service class.
	IsGPS bool

	cfg *Config
	rng *sim.RNG

	state SubscriberState
	id    frame.UserID

	// Registration progress.
	regAttempts   int
	regFirstCycle int
	regGaveUp     bool

	// Data queue.
	pending   []*fragment
	nextMsgID uint16

	// Reservation bookkeeping.
	requestedOutstanding int
	backoffCycles        int
	contFailures         int
	needSince            time.Duration
	hasNeed              bool

	// Listening rule (paper §3.4 problem 2).
	listenCF2 bool

	// In-flight transmissions awaiting next cycle's ACKs.
	sentSlots   map[int]slotRecord
	sentContend *contentionRecord

	// GPS report pending transmission.
	gpsArrival time.Duration
	gpsSeq     uint16
	gpsHave    bool

	// Downlink reassembly.
	asm map[uint16]*asmState

	// Pages observed (paper's paging field).
	PagesSeen int

	pageResponseDue bool

	// planSlots and contSlots are per-cycle scratch so planning
	// allocates nothing: a CyclePlan's DataSlots alias planSlots and
	// stay valid until the next OnControlFields call replaces the plan.
	planSlots [frame.ReverseScheduleEntries]int
	contSlots [frame.ReverseScheduleEntries]int
}

// NewSubscriber builds a subscriber in the Idle state.
func NewSubscriber(ein frame.EIN, isGPS bool, cfg *Config, rng *sim.RNG) *Subscriber {
	return &Subscriber{
		EIN:       ein,
		IsGPS:     isGPS,
		cfg:       cfg,
		rng:       rng,
		state:     StateIdle,
		id:        frame.NoUser,
		sentSlots: make(map[int]slotRecord),
		asm:       make(map[uint16]*asmState),
	}
}

// State returns the lifecycle state.
func (s *Subscriber) State() SubscriberState { return s.state }

// ID returns the assigned user ID (frame.NoUser before registration).
func (s *Subscriber) ID() frame.UserID { return s.id }

// QueueLen returns the number of fragments awaiting transmission.
func (s *Subscriber) QueueLen() int { return len(s.pending) }

// NextMsgID returns the message ID the next AddMessage call will use.
func (s *Subscriber) NextMsgID() uint16 { return s.nextMsgID }

// ListensCF2 reports whether the subscriber will read the second
// control-field set next cycle.
func (s *Subscriber) ListensCF2() bool { return s.listenCF2 }

// GaveUp reports whether registration exhausted its attempts.
func (s *Subscriber) GaveUp() bool { return s.regGaveUp }

// Enter moves an Idle subscriber to Registering; cycle is the current
// notification cycle index (for registration-latency accounting).
func (s *Subscriber) Enter(cycle int) {
	if s.state != StateIdle {
		return
	}
	s.state = StateRegistering
	s.regAttempts = 0
	s.regFirstCycle = cycle
	s.regGaveUp = false
}

// Deactivate administratively signs the subscriber off (the harness
// deregisters it at the base in the same step).
func (s *Subscriber) Deactivate() {
	s.state = StateIdle
	s.id = frame.NoUser
	s.pending = nil
	s.requestedOutstanding = 0
	s.sentSlots = make(map[int]slotRecord)
	s.sentContend = nil
	s.listenCF2 = false
	s.gpsHave = false
	s.hasNeed = false
}

// AddMessage enqueues an application message, fragmenting it. It
// reports false when the queue cap drops the message (buffer overflow).
func (s *Subscriber) AddMessage(size int, now time.Duration) bool {
	sizes := fragmentSizes(size)
	if len(s.pending)+len(sizes) > s.cfg.QueueCapFragments {
		return false
	}
	id := s.nextMsgID
	s.nextMsgID++
	for i, fs := range sizes {
		s.pending = append(s.pending, &fragment{
			msgID:     id,
			index:     i,
			total:     len(sizes),
			size:      fs,
			createdAt: now,
		})
	}
	if !s.hasNeed && s.unrequested() > 0 {
		s.hasNeed = true
		s.needSince = now
	}
	return true
}

// AddGPSReport records the periodic location report arrival. It reports
// false when a previous report was still pending (it is replaced —
// GPS packets are never retransmitted or queued).
func (s *Subscriber) AddGPSReport(now time.Duration) bool {
	had := s.gpsHave
	s.gpsArrival = now
	s.gpsHave = true
	return !had
}

// unrequested returns the demand not yet signalled to the base station.
func (s *Subscriber) unrequested() int {
	n := len(s.pending) - s.requestedOutstanding
	if n < 0 {
		return 0
	}
	return n
}

// NeedSince exposes the start of the current unsatisfied-demand period,
// for reservation-latency measurement. ok is false when no demand is
// waiting.
func (s *Subscriber) NeedSince() (time.Duration, bool) {
	return s.needSince, s.hasNeed
}

// ClearNeed marks the pending demand as known to the base station.
func (s *Subscriber) ClearNeed() { s.hasNeed = false }

// CyclePlan is what a subscriber intends to transmit this cycle, derived
// from the control fields it decoded.
type CyclePlan struct {
	// GPSSlot is the reverse GPS slot to transmit in, or -1.
	GPSSlot int
	// DataSlots are the reverse data slots assigned to this subscriber.
	DataSlots []int
	// ContentionSlot is the chosen contention slot, or -1.
	ContentionSlot int
	// ContentionKind is what will be sent there.
	ContentionKind frame.PacketType
}

// OnCycleNoSchedule is invoked when the subscriber failed to decode its
// control fields (or was not listening): it transmits nothing this
// cycle. In-flight ACK state is resolved pessimistically: unacked
// fragments are requeued (the base deduplicates).
func (s *Subscriber) OnCycleNoSchedule() CyclePlan {
	s.resolveAcks(nil)
	s.listenCF2 = false
	return CyclePlan{GPSSlot: -1, ContentionSlot: -1}
}

// OnControlFields processes a decoded control-field set and plans the
// cycle's transmissions.
func (s *Subscriber) OnControlFields(cf *frame.ControlFields, layout Layout, now time.Duration) CyclePlan {
	plan := CyclePlan{GPSSlot: -1, ContentionSlot: -1}
	wasCF2 := s.listenCF2
	s.listenCF2 = false

	s.resolveAcks(cf)

	switch s.state {
	case StateIdle:
		return plan
	case StateRegistering:
		// resolveAcks may have just activated us; otherwise persist
		// (paper §3.2: registrants retry every cycle, no backoff).
		if s.regAttempts >= s.cfg.MaxRegistrationAttempts {
			s.regGaveUp = true
			s.state = StateIdle
			return plan
		}
		slot := s.pickContentionSlot(cf, layout, wasCF2)
		if slot >= 0 {
			s.regAttempts++
			plan.ContentionSlot = slot
			plan.ContentionKind = frame.TypeRegistration
			s.sentContend = &contentionRecord{slot: slot, kind: frame.TypeRegistration}
			if slot == layout.LastDataSlot() && s.cfg.SecondControlField {
				s.listenCF2 = true
			}
		}
		return plan
	}

	// Active: GPS service class.
	if s.IsGPS {
		for i, u := range cf.GPSSchedule {
			if u == s.id && i < len(layout.GPS) {
				plan.GPSSlot = i
				break
			}
		}
		return plan
	}

	// Active data user: collect granted slots (into the scratch array;
	// an empty plan keeps DataSlots nil).
	ds := s.planSlots[:0]
	for i, u := range cf.ReverseSchedule {
		if u == s.id && i < len(layout.ReverseData) {
			ds = append(ds, i)
		}
	}
	if len(ds) > 0 {
		plan.DataSlots = ds
	}
	if n := len(plan.DataSlots); n > 0 && s.requestedOutstanding > 0 {
		s.requestedOutstanding -= n
		if s.requestedOutstanding < 0 {
			s.requestedOutstanding = 0
		}
	}
	if len(plan.DataSlots) > 0 && s.cfg.SecondControlField {
		if last := layout.LastDataSlot(); plan.DataSlots[len(plan.DataSlots)-1] == last {
			s.listenCF2 = true
		}
	}

	// Contention: only when demand cannot be piggybacked.
	if s.backoffCycles > 0 {
		s.backoffCycles--
		return plan
	}
	if len(plan.DataSlots) == 0 && s.unrequested() > 0 && s.sentContend == nil {
		slot := s.pickContentionSlot(cf, layout, wasCF2)
		if slot >= 0 {
			plan.ContentionSlot = slot
			rec := &contentionRecord{slot: slot}
			switch s.cfg.Policy {
			case ReserveWithData:
				if f := s.popFragment(); f != nil {
					rec.kind = frame.TypeData
					rec.frag = f
					rec.more = s.clampMore(s.unrequested())
					plan.ContentionKind = frame.TypeData
				} else {
					rec.kind = frame.TypeReservation
					rec.reqSlots = s.clampMore(s.unrequested())
					plan.ContentionKind = frame.TypeReservation
				}
			default:
				rec.kind = frame.TypeReservation
				rec.reqSlots = s.clampMore(s.unrequested())
				plan.ContentionKind = frame.TypeReservation
			}
			s.sentContend = rec
			if slot == layout.LastDataSlot() && s.cfg.SecondControlField {
				s.listenCF2 = true
			}
		}
	}
	// Page response: an otherwise silent subscriber answers its page
	// with a zero-slot reservation in a contention slot.
	if s.pageResponseDue && plan.ContentionSlot < 0 && len(plan.DataSlots) == 0 && s.backoffCycles == 0 {
		if slot := s.pickContentionSlot(cf, layout, wasCF2); slot >= 0 {
			plan.ContentionSlot = slot
			plan.ContentionKind = frame.TypeReservation
			s.sentContend = &contentionRecord{slot: slot, kind: frame.TypeReservation, reqSlots: 0}
			if slot == layout.LastDataSlot() && s.cfg.SecondControlField {
				s.listenCF2 = true
			}
		}
	}
	if s.pageResponseDue && (len(plan.DataSlots) > 0 || plan.ContentionSlot >= 0) {
		// Any uplink transmission this cycle answers the page.
		s.pageResponseDue = false
	}
	// Restart the reservation-latency clock if demand is still waiting
	// after a lost request.
	if !s.hasNeed && s.unrequested() > 0 && len(plan.DataSlots) == 0 {
		s.hasNeed = true
		s.needSince = now
	}
	return plan
}

// resolveAcks settles last cycle's in-flight transmissions against the
// received ACK vector (nil = control fields lost: assume failure).
func (s *Subscriber) resolveAcks(cf *frame.ControlFields) {
	// Scheduled data slots, in ascending slot order: requeue order must
	// be deterministic (map iteration order would randomize which lost
	// fragment retransmits first when a cycle loses several slots).
	for slot := 0; slot < frame.ReverseScheduleEntries; slot++ {
		rec, ok := s.sentSlots[slot]
		if !ok {
			continue
		}
		acked := cf != nil && slot < len(cf.ReverseACKs) && cf.ReverseACKs[slot].User == s.id
		if acked {
			s.requestedOutstanding += rec.more
		} else {
			// Lost: requeue the fragment for retransmission.
			s.requeue(rec.frag)
		}
		delete(s.sentSlots, slot)
	}

	// Contention transmission.
	if rec := s.sentContend; rec != nil {
		s.sentContend = nil
		var ack frame.ReverseACK
		ok := cf != nil && rec.slot < len(cf.ReverseACKs)
		if ok {
			ack = cf.ReverseACKs[rec.slot]
		}
		switch rec.kind {
		case frame.TypeRegistration:
			if ok && ack.EIN == s.EIN && ack.User.Valid() {
				s.id = ack.User
				s.state = StateActive
			}
			// Registrants persist without backoff (paper §3.2).
		case frame.TypeReservation:
			if ok && ack.User == s.id {
				s.requestedOutstanding += rec.reqSlots
				s.contFailures = 0
			} else {
				s.contFailures++
				s.backoffCycles = s.rng.UniformInt(1, s.spread(s.cfg.ReservationBackoffCycles))
			}
		case frame.TypeData:
			if ok && ack.User == s.id {
				s.requestedOutstanding += rec.more
				s.contFailures = 0
			} else {
				s.requeue(rec.frag)
				// Data senders back off longer (paper §3.1).
				s.contFailures++
				s.backoffCycles = s.rng.UniformInt(1, s.spread(2*s.cfg.ReservationBackoffCycles))
			}
		}
	}
}

// pickContentionSlot chooses uniformly among usable contention slots.
// A CF2 listener cannot transmit before CF2 ends plus the switch guard.
func (s *Subscriber) pickContentionSlot(cf *frame.ControlFields, layout Layout, wasCF2 bool) int {
	usable := s.contSlots[:0]
	for slot, u := range cf.ReverseSchedule {
		if u != frame.NoUser || slot >= len(layout.ReverseData) {
			continue
		}
		if !s.cfg.SecondControlField && slot == layout.LastDataSlot() {
			// Without CF2, a last-slot contender could never learn the
			// outcome (the paper's rejected single-CF alternative).
			continue
		}
		if wasCF2 {
			minStart := layout.CF2.End + s.cfg.switchGuard()
			if layout.ReverseData[slot].Start < minStart {
				continue
			}
		}
		usable = append(usable, slot)
	}
	if len(usable) == 0 {
		return -1
	}
	return usable[s.rng.Intn(len(usable))]
}

// MakeDataPacket pops the next fragment for transmission in a scheduled
// data slot, piggybacking outstanding demand. It returns nil when the
// queue is empty (the slot goes idle).
func (s *Subscriber) MakeDataPacket(slot int) *frame.DataPacket {
	pkt := &frame.DataPacket{}
	if !s.MakeDataPacketInto(slot, pkt, make([]byte, frame.MaxPayload)) {
		return nil
	}
	return pkt
}

// MakeDataPacketInto is the allocation-free form of MakeDataPacket: it
// fills a caller-owned packet, slicing the payload out of a caller-owned
// zeroed buffer of at least frame.MaxPayload bytes. It reports false
// when the queue is empty.
func (s *Subscriber) MakeDataPacketInto(slot int, pkt *frame.DataPacket, payload []byte) bool {
	f := s.popFragment()
	if f == nil {
		return false
	}
	more := s.clampMore(s.unrequested())
	s.sentSlots[slot] = slotRecord{frag: f, more: more}
	pkt.Header = frame.DataHeader{
		User:      s.id,
		MoreSlots: uint8(more),
		MsgID:     f.msgID,
		Frag:      uint8(f.index),
		FragTotal: uint8(f.total),
	}
	pkt.Payload = payload[:f.size]
	return true
}

// MakeContentionPacket builds the packet for the planned contention
// transmission.
func (s *Subscriber) MakeContentionPacket() ([]byte, error) {
	rec := s.sentContend
	if rec == nil {
		return nil, nil
	}
	switch rec.kind {
	case frame.TypeRegistration:
		return (&frame.RegistrationRequest{EIN: s.EIN, WantGPS: s.IsGPS}).Marshal()
	case frame.TypeReservation:
		return (&frame.ReservationRequest{User: s.id, Slots: uint8(rec.reqSlots)}).Marshal()
	case frame.TypeData:
		f := rec.frag
		return (&frame.DataPacket{
			Header: frame.DataHeader{
				User:      s.id,
				MoreSlots: uint8(rec.more),
				MsgID:     f.msgID,
				Frag:      uint8(f.index),
				FragTotal: uint8(f.total),
			},
			Payload: make([]byte, f.size),
		}).Marshal()
	default:
		return nil, nil
	}
}

// GPSPendingSince reports whether a location report is waiting and when
// it arrived.
func (s *Subscriber) GPSPendingSince() (time.Duration, bool) {
	return s.gpsArrival, s.gpsHave
}

// MakeGPSReport builds the pending location report, returning its
// arrival time for access-delay accounting; ok is false when none is
// pending.
func (s *Subscriber) MakeGPSReport() (rep *frame.GPSReport, arrival time.Duration, ok bool) {
	rep = &frame.GPSReport{}
	arrival, ok = s.MakeGPSReportInto(rep)
	if !ok {
		return nil, 0, false
	}
	return rep, arrival, true
}

// MakeGPSReportInto is the allocation-free form of MakeGPSReport: it
// fills a caller-owned report struct.
func (s *Subscriber) MakeGPSReportInto(rep *frame.GPSReport) (arrival time.Duration, ok bool) {
	if !s.gpsHave {
		return 0, false
	}
	s.gpsHave = false
	seq := s.gpsSeq
	s.gpsSeq++
	rep.User = s.id
	rep.Sequence = seq
	rep.Latitude = uint32(seq*37) % (1 << 24)
	rep.Longitude = uint32(seq*91) % (1 << 24)
	return s.gpsArrival, true
}

// ReceiveForward processes a downlink data packet addressed to this
// subscriber; it returns (complete, msgID, totalBytes) when a message
// reassembly finishes.
func (s *Subscriber) ReceiveForward(p *frame.DataPacket) (bool, uint16, int) {
	h := p.Header
	if h.FragTotal == 0 {
		return false, 0, 0
	}
	st, ok := s.asm[h.MsgID]
	if !ok {
		//lint:ignore hotpathalloc one amortized allocation per downlink message, paid identically by both engines; the idle steady state never reaches it
		st = &asmState{total: int(h.FragTotal), received: make(map[int]bool)}
		s.asm[h.MsgID] = st
	}
	if st.received[int(h.Frag)] {
		return false, 0, 0
	}
	st.received[int(h.Frag)] = true
	st.bytes += len(p.Payload)
	if len(st.received) == st.total {
		delete(s.asm, h.MsgID)
		return true, h.MsgID, st.bytes
	}
	return false, 0, 0
}

// ObservePaging counts pages addressed to this subscriber and arms a
// page response: an idle-but-registered subscriber answers the base
// station through a contention slot so it can be located (paper §3.1).
func (s *Subscriber) ObservePaging(cf *frame.ControlFields) {
	for _, u := range cf.Paging {
		if u != frame.NoUser && u == s.id {
			s.PagesSeen++
			s.pageResponseDue = true
		}
	}
}

// RegistrationCycles returns how many cycles registration has been
// running, counted from the first attempt to the given cycle inclusive.
func (s *Subscriber) RegistrationCycles(cycle int) int {
	return cycle - s.regFirstCycle + 1
}

func (s *Subscriber) popFragment() *fragment {
	if len(s.pending) == 0 {
		return nil
	}
	f := s.pending[0]
	s.pending = s.pending[1:]
	return f
}

func (s *Subscriber) requeue(f *fragment) {
	if f == nil {
		return
	}
	s.pending = append([]*fragment{f}, s.pending...)
}

// spread widens the backoff window exponentially with consecutive
// contention failures, de-synchronizing repeat colliders.
func (s *Subscriber) spread(base int) int {
	shift := s.contFailures - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 3 {
		shift = 3
	}
	return base << uint(shift)
}

func (s *Subscriber) clampMore(n int) int {
	if n < 0 {
		return 0
	}
	if n > frame.MaxMoreSlots {
		return frame.MaxMoreSlots
	}
	return n
}

// switchGuard returns the radio turnaround time.
func (c *Config) switchGuard() time.Duration {
	return phy.HalfDuplexSwitch
}
