package core

import (
	"fmt"
	"strconv"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
)

// EventKind classifies protocol trace events. The narrow underlying
// type keeps TraceEvent small: the struct is copied by value through
// every Tracer in the chain on the simulation hot path, so its size is
// part of the tracing overhead budget (see BenchmarkFlightRecorderOverhead).
type EventKind int32

// Trace event kinds, roughly in a cycle's chronological order.
const (
	EventCycleStart EventKind = iota + 1
	EventCFDecodeFailed
	EventRegistrationRx
	EventRegistered
	EventReservationRx
	EventPiggybackRx
	EventCollision
	EventDataRx
	EventDataLost
	EventMessageComplete
	EventGPSRx
	EventGPSLost
	EventForwardTx
	EventPageResponse
	EventFormatSwitch
	EventGPSQueued
	EventGPSDeadlineViolation
	EventGPSSlotGrant
	EventDataSlotGrant
	EventMessageQueued
	EventMessageDropped
	EventContentionTx
	EventCF2Listener
	EventForwardSlotGrant
	EventGPSAdmitted
	EventGPSLeft
	// EventFrameStart marks a baseline-protocol frame boundary (the
	// frame-level analogue of EventCycleStart): At is the frame start,
	// Slot carries the frame's data-slot count so span stitching can
	// reconstruct slot intervals, and Detail names the protocol
	// ("prma", "d-tdma", "rama", "drma", "fama").
	EventFrameStart
	// EventReservationGrant records the base station booking demand for
	// a user — a PRMA slot capture, a D-TDMA/RAMA booking, a DRMA
	// piggybacked reservation, or a FAMA floor acquisition. It is the
	// baseline-side counterpart of EventReservationRx: span stitching
	// treats it as the instant the base learned the user's demand.
	EventReservationGrant
)

// eventKindCount is one past the highest defined EventKind.
const eventKindCount = int(EventReservationGrant) + 1

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCycleStart:
		return "cycle-start"
	case EventCFDecodeFailed:
		return "cf-decode-failed"
	case EventRegistrationRx:
		return "registration-rx"
	case EventRegistered:
		return "registered"
	case EventReservationRx:
		return "reservation-rx"
	case EventPiggybackRx:
		return "piggyback-rx"
	case EventCollision:
		return "collision"
	case EventDataRx:
		return "data-rx"
	case EventDataLost:
		return "data-lost"
	case EventMessageComplete:
		return "message-complete"
	case EventGPSRx:
		return "gps-rx"
	case EventGPSLost:
		return "gps-lost"
	case EventForwardTx:
		return "forward-tx"
	case EventPageResponse:
		return "page-response"
	case EventFormatSwitch:
		return "format-switch"
	case EventGPSQueued:
		return "gps-queued"
	case EventGPSDeadlineViolation:
		return "gps-deadline-violation"
	case EventGPSSlotGrant:
		return "gps-slot-grant"
	case EventDataSlotGrant:
		return "data-slot-grant"
	case EventMessageQueued:
		return "message-queued"
	case EventMessageDropped:
		return "message-dropped"
	case EventContentionTx:
		return "contention-tx"
	case EventCF2Listener:
		return "cf2-listener"
	case EventForwardSlotGrant:
		return "forward-slot-grant"
	case EventGPSAdmitted:
		return "gps-admitted"
	case EventGPSLeft:
		return "gps-left"
	case EventFrameStart:
		return "frame-start"
	case EventReservationGrant:
		return "reservation-grant"
	default:
		//lint:ignore hotpathalloc default branch is unreachable for defined kinds; only malformed traces pay for it
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// MarshalText implements encoding.TextMarshaler using the canonical
// String form, so event kinds serialize as stable names rather than
// bare integers.
func (k EventKind) MarshalText() ([]byte, error) {
	if int(k) <= 0 || int(k) >= eventKindCount {
		return nil, fmt.Errorf("core: cannot marshal undefined EventKind(%d)", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, inverting
// MarshalText via ParseEventKind.
func (k *EventKind) UnmarshalText(text []byte) error {
	parsed, ok := ParseEventKind(string(text))
	if !ok {
		return fmt.Errorf("core: unknown EventKind name %q", string(text))
	}
	*k = parsed
	return nil
}

// AllEventKinds returns every defined event kind in declaration order.
func AllEventKinds() []EventKind {
	out := make([]EventKind, 0, eventKindCount-1)
	for k := EventCycleStart; int(k) < eventKindCount; k++ {
		out = append(out, k)
	}
	return out
}

// ParseEventKind resolves the String() form of an event kind (e.g.
// "gps-rx") back to its value; ok is false for unknown names.
func ParseEventKind(s string) (k EventKind, ok bool) {
	for k := EventCycleStart; int(k) < eventKindCount; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// DetailKind selects a lazy renderer for TraceEvent.Detail. Hot trace
// sites used to build their human-readable annotation eagerly with
// fmt.Sprintf, which made even a no-op tracer cost ~34 allocs and ~20 %
// of a simulation cycle. Instead they now record the integer operands
// (Arg0..Arg2) plus a DetailKind, and the string is rendered by
// DetailText only when an event is materialized — at dump, stitch, or
// export time. DetailVerbatim (the zero value) means Detail already
// carries the final string; constant annotations ("cf2-amend", "channel
// burst") stay verbatim because string constants are free to record.
type DetailKind uint8

// Detail renderers, one per legacy fmt.Sprintf template. The rendered
// strings are byte-identical to the historical eager forms, so span
// stitching, the autopsy, and JSONL round-trips see no difference.
const (
	// DetailVerbatim: Detail is final (possibly empty).
	DetailVerbatim DetailKind = iota
	// DetailMsgBytes: "msg=<Arg0> bytes=<Arg1>".
	DetailMsgBytes
	// DetailQueueFull: "bytes=<Arg0> queue full".
	DetailQueueFull
	// DetailFormatSwitch: "<Arg0>→<Arg1>" with ReverseFormat names.
	DetailFormatSwitch
	// DetailGPSLate: "late: access delay <Arg0> exceeds the <Arg1>
	// deadline" with both args as time.Duration.
	DetailGPSLate
	// DetailGPSDelay: "delay=<Arg0>" with Arg0 as time.Duration.
	DetailGPSDelay
	// DetailCollision: "<Arg0> stations".
	DetailCollision
	// DetailDataFrag: "msg=<Arg0> frag=<Arg1>/<Arg2>" (Arg1 1-based).
	DetailDataFrag
	// DetailPiggyback: "+<Arg0> slots".
	DetailPiggyback
	// DetailMsgComplete: "msg=<Arg0> <Arg1>B in <Arg2>" with Arg2 as
	// time.Duration.
	DetailMsgComplete
	// DetailSlots: "<Arg0> slots".
	DetailSlots
	// DetailEIN: "ein=<Arg0>".
	DetailEIN
	// DetailForwardFrag: "msg=<Arg0> frag=<Arg1>" (Arg1 0-based).
	DetailForwardFrag
)

// TraceEvent is one protocol occurrence.
type TraceEvent struct {
	// At is the virtual time of the event.
	At time.Duration
	// Seq is a per-network monotone sequence number (first event is 1).
	// Many events share one virtual instant (a cycle start announces the
	// whole schedule at t0); Seq gives span stitching a stable total
	// order. Synthetic events may leave it 0.
	Seq uint64
	// Cycle is the notification cycle index.
	Cycle int
	// Kind classifies the event.
	Kind EventKind
	// User is the subscriber involved (frame.NoUser when none).
	User frame.UserID
	// DK selects the lazy Detail renderer (DetailVerbatim: none). It
	// sits next to User so the two single-byte fields share Kind's
	// padding — TraceEvent is copied per tracer on the hot path, so
	// layout is part of the overhead budget.
	DK DetailKind
	// Slot is the slot index involved (reverse for reverse-channel
	// events, forward for EventForwardTx), or -1.
	Slot int
	// Detail carries a short human-readable annotation. When DK is not
	// DetailVerbatim the final string is produced lazily by DetailText
	// from Arg0..Arg2; events leaving the hot path (TraceBuffer.Events,
	// flight-recorder dumps, JSONL encoding) are materialized so every
	// downstream consumer still reads a plain string.
	Detail string
	// Arg0, Arg1, Arg2 are DK's integer operands (durations in ns).
	Arg0, Arg1, Arg2 int64
}

// String implements fmt.Stringer.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("%12v c%04d %-18s", e.At, e.Cycle, e.Kind)
	if e.User != frame.NoUser {
		s += fmt.Sprintf(" %v", e.User)
	}
	if e.Slot >= 0 {
		s += fmt.Sprintf(" slot=%d", e.Slot)
	}
	if d := e.DetailText(); d != "" {
		s += " " + d
	}
	return s
}

// DetailText renders the event's Detail annotation, applying the lazy
// DK renderer when one is set. The output is byte-identical to the
// historical eager fmt.Sprintf forms.
func (e TraceEvent) DetailText() string {
	if e.DK == DetailVerbatim {
		return e.Detail
	}
	//lint:ignore hotpathalloc detail rendering is lazy by design — record paths store operands and never call this; only materialization (dump, stitch, export) pays
	buf := make([]byte, 0, 64)
	switch e.DK {
	case DetailMsgBytes:
		buf = append(buf, "msg="...)
		buf = strconv.AppendInt(buf, e.Arg0, 10)
		buf = append(buf, " bytes="...)
		buf = strconv.AppendInt(buf, e.Arg1, 10)
	case DetailQueueFull:
		buf = append(buf, "bytes="...)
		buf = strconv.AppendInt(buf, e.Arg0, 10)
		buf = append(buf, " queue full"...)
	case DetailFormatSwitch:
		buf = append(buf, ReverseFormat(e.Arg0).String()...)
		buf = append(buf, "→"...)
		buf = append(buf, ReverseFormat(e.Arg1).String()...)
	case DetailGPSLate:
		buf = append(buf, "late: access delay "...)
		buf = append(buf, time.Duration(e.Arg0).String()...)
		buf = append(buf, " exceeds the "...)
		buf = append(buf, time.Duration(e.Arg1).String()...)
		buf = append(buf, " deadline"...)
	case DetailGPSDelay:
		buf = append(buf, "delay="...)
		buf = append(buf, time.Duration(e.Arg0).String()...)
	case DetailCollision:
		buf = strconv.AppendInt(buf, e.Arg0, 10)
		buf = append(buf, " stations"...)
	case DetailDataFrag:
		buf = append(buf, "msg="...)
		buf = strconv.AppendInt(buf, e.Arg0, 10)
		buf = append(buf, " frag="...)
		buf = strconv.AppendInt(buf, e.Arg1, 10)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, e.Arg2, 10)
	case DetailPiggyback:
		buf = append(buf, '+')
		buf = strconv.AppendInt(buf, e.Arg0, 10)
		buf = append(buf, " slots"...)
	case DetailMsgComplete:
		buf = append(buf, "msg="...)
		buf = strconv.AppendInt(buf, e.Arg0, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, e.Arg1, 10)
		buf = append(buf, "B in "...)
		buf = append(buf, time.Duration(e.Arg2).String()...)
	case DetailSlots:
		buf = strconv.AppendInt(buf, e.Arg0, 10)
		buf = append(buf, " slots"...)
	case DetailEIN:
		buf = append(buf, "ein="...)
		buf = strconv.AppendInt(buf, e.Arg0, 10)
	case DetailForwardFrag:
		buf = append(buf, "msg="...)
		buf = strconv.AppendInt(buf, e.Arg0, 10)
		buf = append(buf, " frag="...)
		buf = strconv.AppendInt(buf, e.Arg1, 10)
	}
	//lint:ignore hotpathalloc see above — materialization is off the record path
	return string(buf)
}

// Materialized returns the event with its Detail string rendered and
// the lazy fields cleared, so the result compares and serializes like a
// historical eagerly-rendered event.
func (e TraceEvent) Materialized() TraceEvent {
	if e.DK != DetailVerbatim {
		e.Detail = e.DetailText()
		e.DK, e.Arg0, e.Arg1, e.Arg2 = DetailVerbatim, 0, 0, 0
	}
	return e
}

// Tracer receives protocol events. Implementations must be cheap: the
// hook sits on the hot path (use a nil tracer to disable tracing).
type Tracer interface {
	Trace(TraceEvent)
}

// TraceBuffer is a bounded in-memory Tracer: it keeps the most recent
// Cap events (default 4096).
type TraceBuffer struct {
	// Cap bounds the buffer; 0 means 4096.
	Cap int

	events  []TraceEvent
	dropped int
}

var _ Tracer = (*TraceBuffer)(nil)

// Trace implements Tracer.
func (b *TraceBuffer) Trace(e TraceEvent) {
	capacity := b.Cap
	if capacity <= 0 {
		capacity = 4096
	}
	if len(b.events) >= capacity {
		// Drop the oldest half to amortize copies.
		half := len(b.events) / 2
		copy(b.events, b.events[half:])
		b.events = b.events[:len(b.events)-half]
		b.dropped += half
	}
	b.events = append(b.events, e)
}

// Events returns the retained events in order, materialized (lazy
// detail operands rendered into Detail).
func (b *TraceBuffer) Events() []TraceEvent {
	out := make([]TraceEvent, len(b.events))
	for i, e := range b.events {
		out[i] = e.Materialized()
	}
	return out
}

// Dropped returns how many old events were evicted.
func (b *TraceBuffer) Dropped() int { return b.dropped }

// Filter returns the retained events of one kind, materialized.
func (b *TraceBuffer) Filter(kind EventKind) []TraceEvent {
	var out []TraceEvent
	for _, e := range b.events {
		if e.Kind == kind {
			out = append(out, e.Materialized())
		}
	}
	return out
}

// FuncTracer adapts a closure into a Tracer.
type FuncTracer func(TraceEvent)

var _ Tracer = FuncTracer(nil)

// Trace implements Tracer.
func (f FuncTracer) Trace(e TraceEvent) { f(e) }

// tracing reports whether a tracer is attached. Call sites that build a
// detail string (fmt.Sprintf allocates) must check it first so the
// disabled path stays allocation-free.
func (n *Network) tracing() bool { return n.cfg.Tracer != nil }

// trace emits an event with a verbatim (constant or empty) detail
// string if tracing is enabled.
func (n *Network) trace(kind EventKind, user frame.UserID, slot int, detail string) {
	n.emitTrace(kind, user, slot, detail, DetailVerbatim, 0, 0, 0)
}

// traceD emits an event whose detail renders lazily from dk and the
// integer operands — the zero-allocation form the hot call sites use
// instead of an eager fmt.Sprintf.
func (n *Network) traceD(kind EventKind, user frame.UserID, slot int, dk DetailKind, a0, a1, a2 int64) {
	n.emitTrace(kind, user, slot, "", dk, a0, a1, a2)
}

func (n *Network) emitTrace(kind EventKind, user frame.UserID, slot int, detail string, dk DetailKind, a0, a1, a2 int64) {
	if n.cfg.Tracer == nil {
		return
	}
	cycle := n.cycle - 1
	if cycle < 0 {
		// Events fired before the first notification cycle begins (e.g.
		// traffic arriving during the join stagger) belong to cycle 0,
		// not a nonsensical cycle -1.
		cycle = 0
	}
	if slot < 0 {
		// -1 is the single "no slot" sentinel. Call sites that compute a
		// slot index defensively (e.g. pre-registration events) must not
		// leak other negative values into the stream: span stitching and
		// the JSONL schema promise Slot >= -1.
		slot = -1
	}
	n.traceSeq++
	if r := n.inlineRing; r != nil {
		// Inline fast path: the flight recorder claimed the store, so
		// the event is written straight into its ring slot — no
		// interface call, no intermediate copy. Only trigger-relevant
		// kinds still go through the Tracer interface (and the claimer
		// must not ring-store them again).
		p := &r.slots[r.head&r.mask]
		r.head++
		// Field stores rather than a composite literal: the literal
		// form builds a stack temp and copies it through the write
		// barrier wholesale; stored field-by-field only the Detail
		// string crosses the barrier.
		p.At = n.sim.Now()
		p.Seq = n.traceSeq
		p.Cycle = cycle
		p.Kind = kind
		p.User = user
		p.DK = dk
		p.Slot = slot
		p.Detail = detail
		p.Arg0 = a0
		p.Arg1 = a1
		p.Arg2 = a2
		if n.inlineFwd&(1<<uint(kind)) != 0 {
			n.cfg.Tracer.Trace(*p)
		}
		return
	}
	n.cfg.Tracer.Trace(TraceEvent{
		At:     n.sim.Now(),
		Seq:    n.traceSeq,
		Cycle:  cycle,
		Kind:   kind,
		User:   user,
		Slot:   slot,
		Detail: detail,
		DK:     dk,
		Arg0:   a0,
		Arg1:   a1,
		Arg2:   a2,
	})
}
