package core

import (
	"fmt"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
)

// EventKind classifies protocol trace events.
type EventKind int

// Trace event kinds, roughly in a cycle's chronological order.
const (
	EventCycleStart EventKind = iota + 1
	EventCFDecodeFailed
	EventRegistrationRx
	EventRegistered
	EventReservationRx
	EventPiggybackRx
	EventCollision
	EventDataRx
	EventDataLost
	EventMessageComplete
	EventGPSRx
	EventGPSLost
	EventForwardTx
	EventPageResponse
	EventFormatSwitch
	EventGPSQueued
	EventGPSDeadlineViolation
	EventGPSSlotGrant
	EventDataSlotGrant
	EventMessageQueued
	EventMessageDropped
	EventContentionTx
	EventCF2Listener
	EventForwardSlotGrant
	EventGPSAdmitted
	EventGPSLeft
)

// eventKindCount is one past the highest defined EventKind.
const eventKindCount = int(EventGPSLeft) + 1

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCycleStart:
		return "cycle-start"
	case EventCFDecodeFailed:
		return "cf-decode-failed"
	case EventRegistrationRx:
		return "registration-rx"
	case EventRegistered:
		return "registered"
	case EventReservationRx:
		return "reservation-rx"
	case EventPiggybackRx:
		return "piggyback-rx"
	case EventCollision:
		return "collision"
	case EventDataRx:
		return "data-rx"
	case EventDataLost:
		return "data-lost"
	case EventMessageComplete:
		return "message-complete"
	case EventGPSRx:
		return "gps-rx"
	case EventGPSLost:
		return "gps-lost"
	case EventForwardTx:
		return "forward-tx"
	case EventPageResponse:
		return "page-response"
	case EventFormatSwitch:
		return "format-switch"
	case EventGPSQueued:
		return "gps-queued"
	case EventGPSDeadlineViolation:
		return "gps-deadline-violation"
	case EventGPSSlotGrant:
		return "gps-slot-grant"
	case EventDataSlotGrant:
		return "data-slot-grant"
	case EventMessageQueued:
		return "message-queued"
	case EventMessageDropped:
		return "message-dropped"
	case EventContentionTx:
		return "contention-tx"
	case EventCF2Listener:
		return "cf2-listener"
	case EventForwardSlotGrant:
		return "forward-slot-grant"
	case EventGPSAdmitted:
		return "gps-admitted"
	case EventGPSLeft:
		return "gps-left"
	default:
		//lint:ignore hotpathalloc default branch is unreachable for defined kinds; only malformed traces pay for it
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// MarshalText implements encoding.TextMarshaler using the canonical
// String form, so event kinds serialize as stable names rather than
// bare integers.
func (k EventKind) MarshalText() ([]byte, error) {
	if int(k) <= 0 || int(k) >= eventKindCount {
		return nil, fmt.Errorf("core: cannot marshal undefined EventKind(%d)", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, inverting
// MarshalText via ParseEventKind.
func (k *EventKind) UnmarshalText(text []byte) error {
	parsed, ok := ParseEventKind(string(text))
	if !ok {
		return fmt.Errorf("core: unknown EventKind name %q", string(text))
	}
	*k = parsed
	return nil
}

// AllEventKinds returns every defined event kind in declaration order.
func AllEventKinds() []EventKind {
	out := make([]EventKind, 0, eventKindCount-1)
	for k := EventCycleStart; int(k) < eventKindCount; k++ {
		out = append(out, k)
	}
	return out
}

// ParseEventKind resolves the String() form of an event kind (e.g.
// "gps-rx") back to its value; ok is false for unknown names.
func ParseEventKind(s string) (k EventKind, ok bool) {
	for k := EventCycleStart; int(k) < eventKindCount; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// TraceEvent is one protocol occurrence.
type TraceEvent struct {
	// At is the virtual time of the event.
	At time.Duration
	// Seq is a per-network monotone sequence number (first event is 1).
	// Many events share one virtual instant (a cycle start announces the
	// whole schedule at t0); Seq gives span stitching a stable total
	// order. Synthetic events may leave it 0.
	Seq uint64
	// Cycle is the notification cycle index.
	Cycle int
	// Kind classifies the event.
	Kind EventKind
	// User is the subscriber involved (frame.NoUser when none).
	User frame.UserID
	// Slot is the slot index involved (reverse for reverse-channel
	// events, forward for EventForwardTx), or -1.
	Slot int
	// Detail carries a short human-readable annotation.
	Detail string
}

// String implements fmt.Stringer.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("%12v c%04d %-18s", e.At, e.Cycle, e.Kind)
	if e.User != frame.NoUser {
		s += fmt.Sprintf(" %v", e.User)
	}
	if e.Slot >= 0 {
		s += fmt.Sprintf(" slot=%d", e.Slot)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer receives protocol events. Implementations must be cheap: the
// hook sits on the hot path (use a nil tracer to disable tracing).
type Tracer interface {
	Trace(TraceEvent)
}

// TraceBuffer is a bounded in-memory Tracer: it keeps the most recent
// Cap events (default 4096).
type TraceBuffer struct {
	// Cap bounds the buffer; 0 means 4096.
	Cap int

	events  []TraceEvent
	dropped int
}

var _ Tracer = (*TraceBuffer)(nil)

// Trace implements Tracer.
func (b *TraceBuffer) Trace(e TraceEvent) {
	capacity := b.Cap
	if capacity <= 0 {
		capacity = 4096
	}
	if len(b.events) >= capacity {
		// Drop the oldest half to amortize copies.
		half := len(b.events) / 2
		copy(b.events, b.events[half:])
		b.events = b.events[:len(b.events)-half]
		b.dropped += half
	}
	b.events = append(b.events, e)
}

// Events returns the retained events in order.
func (b *TraceBuffer) Events() []TraceEvent {
	out := make([]TraceEvent, len(b.events))
	copy(out, b.events)
	return out
}

// Dropped returns how many old events were evicted.
func (b *TraceBuffer) Dropped() int { return b.dropped }

// Filter returns the retained events of one kind.
func (b *TraceBuffer) Filter(kind EventKind) []TraceEvent {
	var out []TraceEvent
	for _, e := range b.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// FuncTracer adapts a closure into a Tracer.
type FuncTracer func(TraceEvent)

var _ Tracer = FuncTracer(nil)

// Trace implements Tracer.
func (f FuncTracer) Trace(e TraceEvent) { f(e) }

// tracing reports whether a tracer is attached. Call sites that build a
// detail string (fmt.Sprintf allocates) must check it first so the
// disabled path stays allocation-free.
func (n *Network) tracing() bool { return n.cfg.Tracer != nil }

// trace emits an event if tracing is enabled.
func (n *Network) trace(kind EventKind, user frame.UserID, slot int, detail string) {
	if n.cfg.Tracer == nil {
		return
	}
	cycle := n.cycle - 1
	if cycle < 0 {
		// Events fired before the first notification cycle begins (e.g.
		// traffic arriving during the join stagger) belong to cycle 0,
		// not a nonsensical cycle -1.
		cycle = 0
	}
	if slot < 0 {
		// -1 is the single "no slot" sentinel. Call sites that compute a
		// slot index defensively (e.g. pre-registration events) must not
		// leak other negative values into the stream: span stitching and
		// the JSONL schema promise Slot >= -1.
		slot = -1
	}
	n.traceSeq++
	n.cfg.Tracer.Trace(TraceEvent{
		At:     n.sim.Now(),
		Seq:    n.traceSeq,
		Cycle:  cycle,
		Kind:   kind,
		User:   user,
		Slot:   slot,
		Detail: detail,
	})
}
