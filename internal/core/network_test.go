package core

import (
	"errors"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/traffic"
)

func newTestNetwork(t *testing.T, mutate func(*Config)) *Network {
	t.Helper()
	cfg := NewConfig()
	cfg.Seed = 7
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSingleSubscriberRegisters(t *testing.T) {
	n := newTestNetwork(t, nil)
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(5); err != nil {
		t.Fatal(err)
	}
	if sub.State() != StateActive {
		t.Fatalf("subscriber state = %v after 5 cycles", sub.State())
	}
	if !sub.ID().Valid() {
		t.Fatal("no user ID assigned")
	}
	if got, ok := n.Base().Registered(100); !ok || got != sub.ID() {
		t.Fatal("base registry does not match subscriber")
	}
	if n.Metrics().RegistrationsApproved.Value() != 1 {
		t.Fatalf("approvals = %d", n.Metrics().RegistrationsApproved.Value())
	}
	// Alone in the cell, registration should land in the first cycle or
	// two.
	if lat := n.Metrics().RegistrationLatency.Max(); lat > 2 {
		t.Fatalf("registration latency = %v cycles", lat)
	}
}

func TestMessageDeliveredEndToEnd(t *testing.T) {
	n := newTestNetwork(t, nil)
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Register first.
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	if sub.State() != StateActive {
		t.Fatalf("not active: %v", sub.State())
	}
	// Inject one 100-byte message (3 fragments) and run.
	if !sub.AddMessage(100, n.Sim().Now()) {
		t.Fatal("message rejected")
	}
	n.TrackMessage(sub.ID(), 0, 100, n.Sim().Now())
	if err := n.Run(8); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.MessagesDelivered.Value() != 1 {
		t.Fatalf("delivered = %d, want 1 (fragments sent %d, lost %d)",
			m.MessagesDelivered.Value(), m.FragmentsSent.Value(), m.FragmentsLost.Value())
	}
	if m.BytesDelivered.Value() != 100 {
		t.Fatalf("bytes delivered = %d, want 100", m.BytesDelivered.Value())
	}
	if sub.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", sub.QueueLen())
	}
}

func TestPoissonTrafficConservation(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.MeanInterarrival = 15 * time.Second
		c.SizeDist = traffic.Fixed{Bytes: 120}
	})
	var subs []*Subscriber
	for i := 0; i < 5; i++ {
		s, err := n.AddSubscriber(frame.EIN(100+i), false, time.Duration(i)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if err := n.Run(150); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.MessagesGenerated.Value() == 0 {
		t.Fatal("no traffic generated")
	}
	// Conservation: everything generated is delivered or still queued
	// (ideal channel, moderate load → no losses).
	queued := 0
	for _, s := range subs {
		queued += s.QueueLen()
	}
	inFlight := len(n.msgMeta)
	delivered := int(m.MessagesDelivered.Value())
	if delivered+inFlight != int(m.MessagesGenerated.Value()) {
		t.Fatalf("conservation: generated %d != delivered %d + in-flight %d (queued frags %d)",
			m.MessagesGenerated.Value(), delivered, inFlight, queued)
	}
	// Under light load, the vast majority should be delivered.
	if float64(delivered) < 0.8*float64(m.MessagesGenerated.Value()) {
		t.Fatalf("only %d/%d delivered under light load", delivered, m.MessagesGenerated.Value())
	}
}

func TestEightGPSUsersMeetDeadline(t *testing.T) {
	n := newTestNetwork(t, nil)
	for i := 0; i < 8; i++ {
		if _, err := n.AddSubscriber(frame.EIN(200+i), true, time.Duration(i)*500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(60); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.GPSDelivered.Value() == 0 {
		t.Fatal("no GPS reports delivered")
	}
	if m.GPSDeadlineViolations.Value() != 0 {
		t.Fatalf("%d GPS deadline violations on an ideal channel", m.GPSDeadlineViolations.Value())
	}
	if max := m.GPSAccessDelay.Max(); max > phy.GPSAccessDeadline.Seconds() {
		t.Fatalf("max GPS access delay %.3fs exceeds 4s", max)
	}
	// 8 GPS users force format 1.
	if n.Base().Layout().Format != Format1 {
		t.Fatalf("format = %v, want Format1", n.Base().Layout().Format)
	}
	if n.Base().GPSTable().Active() != 8 {
		t.Fatalf("active GPS users = %d", n.Base().GPSTable().Active())
	}
}

func TestFewGPSUsersUseFormat2(t *testing.T) {
	n := newTestNetwork(t, nil)
	if _, err := n.AddSubscriber(200, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if n.Base().Layout().Format != Format2 {
		t.Fatalf("format = %v, want Format2 with 1 GPS user", n.Base().Layout().Format)
	}
	if got := len(n.Base().Layout().ReverseData); got != 9 {
		t.Fatalf("data slots = %d, want 9", got)
	}
}

func TestStaticAdjustmentForcesFormat1(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) { c.DynamicSlotAdjustment = false })
	if _, err := n.AddSubscriber(200, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if n.Base().Layout().Format != Format1 {
		t.Fatalf("static adjustment should pin format 1, got %v", n.Base().Layout().Format)
	}
}

func TestManySimultaneousRegistrants(t *testing.T) {
	n := newTestNetwork(t, nil)
	var subs []*Subscriber
	for i := 0; i < 10; i++ {
		s, err := n.AddSubscriber(frame.EIN(300+i), false, 0)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if err := n.Run(40); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		if s.State() != StateActive {
			t.Fatalf("subscriber %d still %v after 40 cycles", i, s.State())
		}
	}
	m := n.Metrics()
	if m.ContentionCollisions.Value() == 0 {
		t.Fatal("10 simultaneous registrants should collide at least once")
	}
	if m.RegistrationsApproved.Value() != 10 {
		t.Fatalf("approved = %d, want 10", m.RegistrationsApproved.Value())
	}
}

func TestContentionControllerWidens(t *testing.T) {
	n := newTestNetwork(t, nil)
	for i := 0; i < 12; i++ {
		if _, err := n.AddSubscriber(frame.EIN(300+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	base := n.Base()
	if base.ContentionSlotCount() != 1 {
		t.Fatalf("initial contention slots = %d", base.ContentionSlotCount())
	}
	widened := false
	for k := 0; k < 10; k++ {
		if err := n.Run(1); err != nil {
			t.Fatal(err)
		}
		if base.ContentionSlotCount() > 1 {
			widened = true
			break
		}
	}
	if !widened {
		t.Fatal("collision storm did not widen contention slots")
	}
}

func TestReliableDeliveryOverLossyChannel(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.NewReverseModel = func() phy.ErrorModel {
			return phy.TwoRegime{PLoss: 0.2, MaxCorrectable: 8}
		}
	})
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(8); err != nil {
		t.Fatal(err)
	}
	if sub.State() != StateActive {
		t.Fatalf("not active over lossy channel: %v", sub.State())
	}
	if !sub.AddMessage(1500, n.Sim().Now()) { // 37 fragments
		t.Fatal("message rejected")
	}
	n.TrackMessage(sub.ID(), 0, 1500, n.Sim().Now())
	if err := n.Run(60); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.MessagesDelivered.Value() != 1 {
		t.Fatalf("message not delivered over lossy channel (frag lost %d, sent %d)",
			m.FragmentsLost.Value(), m.FragmentsSent.Value())
	}
	if m.BytesDelivered.Value() != 1500 {
		t.Fatalf("bytes delivered = %d, want exactly 1500 (no duplicates, no corruption)", m.BytesDelivered.Value())
	}
	if m.FragmentsLost.Value() == 0 {
		t.Fatal("lossy channel lost nothing; model not exercised")
	}
}

func TestCFDecodeFailureRecovery(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.NewForwardModel = func() phy.ErrorModel {
			return phy.TwoRegime{PLoss: 0.3, MaxCorrectable: 4}
		}
	})
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(40); err != nil {
		t.Fatal(err)
	}
	if sub.State() != StateActive {
		t.Fatalf("never registered despite 40 cycles: %v", sub.State())
	}
	if n.Metrics().CFDecodeFailures.Value() == 0 {
		t.Fatal("no CF decode failures injected")
	}
}

func TestSecondControlFieldDisabledNeverUsesLastSlot(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.SecondControlField = false
		c.MeanInterarrival = 5 * time.Second
		c.SizeDist = traffic.Fixed{Bytes: 400}
	})
	for i := 0; i < 6; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.LastSlotDataPkts.Value() != 0 {
		t.Fatalf("last slot carried %d packets with CF2 disabled", m.LastSlotDataPkts.Value())
	}
	if m.CF2Listens.Value() != 0 {
		t.Fatalf("CF2 listened to %d times while disabled", m.CF2Listens.Value())
	}
	if m.ReverseDataPkts.Value() == 0 {
		t.Fatal("no data flowed at all")
	}
}

func TestSecondControlFieldEnabledUsesLastSlot(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.MeanInterarrival = 5 * time.Second
		c.SizeDist = traffic.Fixed{Bytes: 400}
	})
	for i := 0; i < 6; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.LastSlotDataPkts.Value() == 0 {
		t.Fatal("busy cell never used the last data slot despite CF2")
	}
	if m.CF2Listens.Value() == 0 {
		t.Fatal("nobody ever listened to CF2")
	}
}

func TestForwardDelivery(t *testing.T) {
	n := newTestNetwork(t, nil)
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	if sub.State() != StateActive {
		t.Fatal("not active")
	}
	if err := n.SendToSubscriber(sub, 300); err != nil { // 8 fragments
		t.Fatal(err)
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.ForwardPktsSent.Value() != 8 {
		t.Fatalf("forward packets sent = %d, want 8", m.ForwardPktsSent.Value())
	}
	if m.ForwardPktsDelivered.Value() != 8 {
		t.Fatalf("forward packets delivered = %d, want 8", m.ForwardPktsDelivered.Value())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		n := newTestNetwork(t, func(c *Config) {
			c.MeanInterarrival = 8 * time.Second
			c.NewReverseModel = func() phy.ErrorModel {
				return phy.TwoRegime{PLoss: 0.1, MaxCorrectable: 8}
			}
		})
		for i := 0; i < 6; i++ {
			if _, err := n.AddSubscriber(frame.EIN(100+i), i < 2, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Run(50); err != nil {
			t.Fatal(err)
		}
		m := n.Metrics()
		return m.MessagesDelivered.Value(), m.ContentionCollisions.Value(), m.MessageDelay.Mean()
	}
	d1, c1, l1 := run()
	d2, c2, l2 := run()
	if d1 != d2 || c1 != c2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", d1, c1, l1, d2, c2, l2)
	}
}

func TestGPSUserChurnSwitchesFormat(t *testing.T) {
	n := newTestNetwork(t, nil)
	var gps []*Subscriber
	for i := 0; i < 5; i++ {
		s, err := n.AddSubscriber(frame.EIN(200+i), true, 0)
		if err != nil {
			t.Fatal(err)
		}
		gps = append(gps, s)
	}
	if err := n.Run(25); err != nil {
		t.Fatal(err)
	}
	if n.Base().Layout().Format != Format1 {
		t.Fatalf("5 GPS users should use format 1, got %v", n.Base().Layout().Format)
	}
	// Two users sign off → 3 remain → next cycles use format 2.
	for _, s := range gps[:2] {
		if s.State() != StateActive {
			t.Fatal("GPS user failed to register")
		}
		if err := n.Deregister(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	if n.Base().Layout().Format != Format2 {
		t.Fatalf("after churn, format = %v, want Format2", n.Base().Layout().Format)
	}
	if n.Metrics().GPSDeadlineViolations.Value() != 0 {
		t.Fatal("format switch violated the GPS deadline")
	}
}

func TestDeregisterUnknown(t *testing.T) {
	n := newTestNetwork(t, nil)
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Never ran: subscriber is Idle; deregister is a no-op reset.
	if err := n.Deregister(sub); err != nil {
		t.Fatal(err)
	}
}

func TestPaging(t *testing.T) {
	n := newTestNetwork(t, nil)
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	n.Base().Page(sub.ID())
	if err := n.Run(2); err != nil {
		t.Fatal(err)
	}
	if sub.PagesSeen == 0 {
		t.Fatal("page never observed")
	}
}

func TestRunRejectsNonPositiveCycles(t *testing.T) {
	n := newTestNetwork(t, nil)
	if err := n.Run(0); err == nil {
		t.Fatal("Run(0) accepted")
	}
}

func TestDuplicateEINRejected(t *testing.T) {
	n := newTestNetwork(t, nil)
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSubscriber(100, true, 0); err == nil {
		t.Fatal("duplicate EIN accepted")
	}
}

func TestPagingResponse(t *testing.T) {
	n := newTestNetwork(t, nil)
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	if sub.State() != StateActive {
		t.Fatal("not active")
	}
	// Page the now-idle subscriber: it must answer through a contention
	// slot within a couple of cycles.
	n.Base().Page(sub.ID())
	if err := n.Run(4); err != nil {
		t.Fatal(err)
	}
	if sub.PagesSeen == 0 {
		t.Fatal("page not observed")
	}
	if n.Metrics().PageResponses.Value() == 0 {
		t.Fatal("page never answered")
	}
}

func TestPagingAnsweredByDataWhenBusy(t *testing.T) {
	n := newTestNetwork(t, nil)
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	// Give the subscriber data so its page is answered implicitly by
	// uplink traffic rather than a zero-slot reservation.
	sub.AddMessage(500, n.Sim().Now())
	n.Base().Page(sub.ID())
	if err := n.Run(5); err != nil {
		t.Fatal(err)
	}
	if sub.PagesSeen == 0 {
		t.Fatal("page not observed")
	}
	if n.Metrics().ReverseDataPkts.Value() == 0 {
		t.Fatal("no uplink data flowed")
	}
}

func TestCycleSeries(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.CollectSeries = true
		c.MeanInterarrival = 10 * time.Second
	})
	for i := 0; i < 5; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(50); err != nil {
		t.Fatal(err)
	}
	series := n.Metrics().Series
	if len(series) < 45 {
		t.Fatalf("series has %d points", len(series))
	}
	var used, offered int
	for i, p := range series {
		if p.Cycle != i {
			t.Fatalf("series cycle %d at index %d", p.Cycle, i)
		}
		if p.SlotsOffered < 8 || p.SlotsOffered > 9 {
			t.Fatalf("cycle %d offered %d slots", p.Cycle, p.SlotsOffered)
		}
		if p.SlotsUsed < 0 || p.SlotsUsed > p.SlotsOffered+1 {
			t.Fatalf("cycle %d used %d of %d", p.Cycle, p.SlotsUsed, p.SlotsOffered)
		}
		used += p.SlotsUsed
		offered += p.SlotsOffered
	}
	if used == 0 {
		t.Fatal("series recorded no slot usage")
	}
	// Series totals reconcile with the aggregate counters (minus the
	// final cycle, which has no closing boundary).
	if uint64(offered) > n.Metrics().DataSlotsOffered.Value() {
		t.Fatal("series over-counts offered slots")
	}
}

func TestForwardDeliveryToIdleLastSlotOwner(t *testing.T) {
	// Regression: a subscriber ASSIGNED the last reverse data slot
	// listens to CF2 next cycle even if it had nothing to send there.
	// The base must know that from the assignment (not from a received
	// transmission) and keep forward slot 0 away from it — otherwise
	// ideal-channel forward packets vanish.
	n := newTestNetwork(t, func(c *Config) {
		c.MeanInterarrival = 6 * time.Second
	})
	var subs []*Subscriber
	for i := 0; i < 4; i++ {
		s, err := n.AddSubscriber(frame.EIN(100+i), false, 0)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if err := n.Run(5); err != nil {
		t.Fatal(err)
	}
	// Sustained bidirectional traffic over many cycles: every forward
	// packet sent on the ideal channel must be delivered.
	for cycle := 0; cycle < 60; cycle++ {
		if cycle%3 == 0 {
			for _, s := range subs {
				if s.State() == StateActive {
					if err := n.SendToSubscriber(s, 100); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := n.Run(1); err != nil {
			t.Fatal(err)
		}
	}
	m := n.Metrics()
	if m.ForwardPktsSent.Value() == 0 {
		t.Fatal("no forward traffic")
	}
	if m.ForwardPktsDelivered.Value() != m.ForwardPktsSent.Value() {
		t.Fatalf("forward loss on ideal channel: %d/%d",
			m.ForwardPktsDelivered.Value(), m.ForwardPktsSent.Value())
	}
}

func TestExplicitReservationPolicyEndToEnd(t *testing.T) {
	n := newTestNetwork(t, func(c *Config) {
		c.Policy = ReserveExplicit
		c.MeanInterarrival = 12 * time.Second
	})
	for i := 0; i < 5; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(120); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.ReservationPackets.Value() == 0 {
		t.Fatal("explicit policy sent no reservation packets")
	}
	if m.MessagesDelivered.Value() == 0 {
		t.Fatal("nothing delivered under explicit policy")
	}
	// Conservation still holds.
	if m.MessagesDelivered.Value() > m.MessagesGenerated.Value() {
		t.Fatal("conservation violated")
	}
}

func TestSubscriberAccessors(t *testing.T) {
	n := newTestNetwork(t, nil)
	sub, err := n.AddSubscriber(100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Subscribers(); len(got) != 1 || got[0] != sub {
		t.Fatal("Subscribers() wrong")
	}
	if n.SubscriberByID(3) != nil {
		t.Fatal("unknown ID resolved")
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	if n.SubscriberByID(sub.ID()) != sub {
		t.Fatal("active subscriber not resolvable by ID")
	}
	if n.SubscriberByID(frame.NoUser) != nil {
		t.Fatal("NoUser resolved")
	}
}

func TestInternalErrorAbortsRun(t *testing.T) {
	n := newTestNetwork(t, nil)
	cause := frame.ErrBadPacket
	n.fail("control field encode", cause)
	var ie *InternalError
	err := n.Run(1)
	if !errors.As(err, &ie) {
		t.Fatalf("Run error = %v, want *InternalError", err)
	}
	if ie.Op != "control field encode" || !errors.Is(err, cause) {
		t.Fatalf("InternalError = %+v, want op and wrapped cause preserved", ie)
	}
	if n.Err() == nil {
		t.Fatal("Err() = nil after internal failure")
	}
	// The first failure wins; later ones are ignored.
	n.fail("other", errors.New("second"))
	if got := n.Err().(*InternalError).Op; got != "control field encode" {
		t.Fatalf("Err().Op = %q, want first failure kept", got)
	}
}
