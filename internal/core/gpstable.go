package core

import (
	"fmt"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
)

// GPSSlotTable manages the assignment of reverse-channel GPS slots with
// the paper's dynamic slot adjustment rules (§3.3):
//
//	(R1) GPS slots in a cycle are allocated in order;
//	(R2) an admitted GPS user takes the first unused slot;
//	(R3) when the user of slot i leaves, a user holding a slot j > i is
//	     re-assigned slot i (implemented as shift-down, which keeps the
//	     allocation consolidated and only ever moves users to *earlier*
//	     slots, so the 4-second access interval is never stretched).
//
// With dynamic adjustment enabled, the table consolidating to ≤3 users
// lets the cell switch to format 2, converting five idle GPS slots into
// an extra data slot.
type GPSSlotTable struct {
	slots   []frame.UserID // slots[i] = holder of GPS slot i
	dynamic bool
}

// NewGPSSlotTable returns a table with the cell's 8 GPS slots free.
// When dynamic is false, departures leave holes (the naive static
// allocation the paper argues against); rules R1–R3 apply when true.
func NewGPSSlotTable(dynamic bool) *GPSSlotTable {
	t := &GPSSlotTable{
		slots:   make([]frame.UserID, phy.MaxGPSUsers),
		dynamic: dynamic,
	}
	for i := range t.slots {
		t.slots[i] = frame.NoUser
	}
	return t
}

// Admit assigns the first unused GPS slot to user (R2). It fails when
// all 8 slots are held.
func (t *GPSSlotTable) Admit(user frame.UserID) (slot int, err error) {
	if !user.Valid() {
		return 0, fmt.Errorf("core: admit invalid user %v", user)
	}
	for i, u := range t.slots {
		if u == user {
			return 0, fmt.Errorf("core: user %v already holds GPS slot %d", user, i)
		}
	}
	for i, u := range t.slots {
		if u == frame.NoUser {
			t.slots[i] = user
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: all %d GPS slots in use", len(t.slots))
}

// Leave releases user's slot. With dynamic adjustment, later holders
// shift down one slot each (repeated application of R3), keeping the
// allocation consolidated at the head of the cycle. Without it the slot
// simply becomes a hole.
func (t *GPSSlotTable) Leave(user frame.UserID) error {
	idx := -1
	for i, u := range t.slots {
		if u == user {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: user %v holds no GPS slot", user)
	}
	if !t.dynamic {
		t.slots[idx] = frame.NoUser
		return nil
	}
	// Shift-down: every later holder moves one slot earlier. Each such
	// move is an (R3) re-assignment to a smaller index, so the holder's
	// next access comes sooner than its previous cadence — the 4 s bound
	// holds through the transition.
	copy(t.slots[idx:], t.slots[idx+1:])
	t.slots[len(t.slots)-1] = frame.NoUser
	return nil
}

// SlotOf returns the slot held by user, or -1.
func (t *GPSSlotTable) SlotOf(user frame.UserID) int {
	for i, u := range t.slots {
		if u == user {
			return i
		}
	}
	return -1
}

// Holder returns the user holding slot i, or frame.NoUser.
func (t *GPSSlotTable) Holder(i int) frame.UserID {
	if i < 0 || i >= len(t.slots) {
		return frame.NoUser
	}
	return t.slots[i]
}

// Active returns the number of held slots.
func (t *GPSSlotTable) Active() int {
	n := 0
	for _, u := range t.slots {
		if u != frame.NoUser {
			n++
		}
	}
	return n
}

// HighestUsed returns the largest held slot index, or -1 when empty.
// Format selection depends on consolidation: with holes (static mode) a
// cell with 2 users may still need format 1 because a user sits in slot
// 5.
func (t *GPSSlotTable) HighestUsed() int {
	for i := len(t.slots) - 1; i >= 0; i-- {
		if t.slots[i] != frame.NoUser {
			return i
		}
	}
	return -1
}

// Format returns the reverse format the current allocation permits:
// format 2 requires every held slot to be within the first 3.
func (t *GPSSlotTable) Format() ReverseFormat {
	if t.HighestUsed() < phy.Format2GPSSlots {
		return Format2
	}
	return Format1
}

// Consolidated reports whether held slots form a prefix (no holes) —
// an invariant of dynamic mode.
func (t *GPSSlotTable) Consolidated() bool {
	seenFree := false
	for _, u := range t.slots {
		if u == frame.NoUser {
			seenFree = true
		} else if seenFree {
			return false
		}
	}
	return true
}

// Snapshot copies the slot assignments into a control-field GPS
// schedule.
func (t *GPSSlotTable) Snapshot() [frame.GPSScheduleEntries]frame.UserID {
	var out [frame.GPSScheduleEntries]frame.UserID
	for i := range out {
		out[i] = t.Holder(i)
	}
	return out
}
