package core

import (
	"fmt"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
)

// GPSSlotTable manages the assignment of reverse-channel GPS slots with
// the paper's dynamic slot adjustment rules (§3.3):
//
//	(R1) GPS slots in a cycle are allocated in order;
//	(R2) an admitted GPS user takes the first unused slot;
//	(R3) when the user of slot i leaves, a user holding a slot j > i is
//	     re-assigned slot i (implemented as shift-down, which keeps the
//	     allocation consolidated and only ever moves users to *earlier*
//	     slots, so the 4-second access interval is never stretched).
//
// With dynamic adjustment enabled, the table consolidating to ≤3 users
// lets the cell switch to format 2, converting five idle GPS slots into
// an extra data slot.
type GPSSlotTable struct {
	slots   []frame.UserID // slots[i] = holder of GPS slot i
	dynamic bool

	// lastSeq[i] is the logical time (a monotone counter) of slot i's
	// holder's last transmission opportunity: its admission, or the last
	// slot GrantSchedule issued to it. The kernel processes events in
	// virtual-time order, so counter order is virtual-time order. A
	// user's earliest possible pending-report deadline is one access
	// deadline after its last opportunity, so ascending lastSeq is
	// earliest-report-deadline-first order.
	lastSeq []uint64
	seq     uint64
}

// NewGPSSlotTable returns a table with the cell's 8 GPS slots free.
// When dynamic is false, departures leave holes (the naive static
// allocation the paper argues against); rules R1–R3 apply when true.
func NewGPSSlotTable(dynamic bool) *GPSSlotTable {
	t := &GPSSlotTable{
		slots:   make([]frame.UserID, phy.MaxGPSUsers),
		lastSeq: make([]uint64, phy.MaxGPSUsers),
		dynamic: dynamic,
	}
	for i := range t.slots {
		t.slots[i] = frame.NoUser
	}
	return t
}

// Admit assigns the first unused GPS slot to user (R2). It fails when
// all 8 slots are held.
func (t *GPSSlotTable) Admit(user frame.UserID) (slot int, err error) {
	if !user.Valid() {
		return 0, fmt.Errorf("core: admit invalid user %v", user)
	}
	for i, u := range t.slots {
		if u == user {
			return 0, fmt.Errorf("core: user %v already holds GPS slot %d", user, i)
		}
	}
	for i, u := range t.slots {
		if u == frame.NoUser {
			t.slots[i] = user
			t.seq++
			t.lastSeq[i] = t.seq
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: all %d GPS slots in use", len(t.slots))
}

// Leave releases user's slot. With dynamic adjustment, later holders
// shift down one slot each (repeated application of R3), keeping the
// allocation consolidated at the head of the cycle. Without it the slot
// simply becomes a hole.
func (t *GPSSlotTable) Leave(user frame.UserID) error {
	idx := -1
	for i, u := range t.slots {
		if u == user {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: user %v holds no GPS slot", user)
	}
	if !t.dynamic {
		t.slots[idx] = frame.NoUser
		return nil
	}
	// Shift-down: every later holder moves one slot earlier. Each such
	// move is an (R3) re-assignment to a smaller index, so the holder's
	// next access comes sooner than its previous cadence — the 4 s bound
	// holds through the transition. The deadline clocks move with their
	// holders.
	copy(t.slots[idx:], t.slots[idx+1:])
	t.slots[len(t.slots)-1] = frame.NoUser
	copy(t.lastSeq[idx:], t.lastSeq[idx+1:])
	t.lastSeq[len(t.lastSeq)-1] = 0
	return nil
}

// SlotOf returns the slot held by user, or -1.
func (t *GPSSlotTable) SlotOf(user frame.UserID) int {
	for i, u := range t.slots {
		if u == user {
			return i
		}
	}
	return -1
}

// Holder returns the user holding slot i, or frame.NoUser.
func (t *GPSSlotTable) Holder(i int) frame.UserID {
	if i < 0 || i >= len(t.slots) {
		return frame.NoUser
	}
	return t.slots[i]
}

// Active returns the number of held slots.
func (t *GPSSlotTable) Active() int {
	n := 0
	for _, u := range t.slots {
		if u != frame.NoUser {
			n++
		}
	}
	return n
}

// HighestUsed returns the largest held slot index, or -1 when empty.
// Format selection depends on consolidation: with holes (static mode) a
// cell with 2 users may still need format 1 because a user sits in slot
// 5.
func (t *GPSSlotTable) HighestUsed() int {
	for i := len(t.slots) - 1; i >= 0; i-- {
		if t.slots[i] != frame.NoUser {
			return i
		}
	}
	return -1
}

// Format returns the reverse format the current allocation permits:
// format 2 requires every held slot to be within the first 3.
func (t *GPSSlotTable) Format() ReverseFormat {
	if t.HighestUsed() < phy.Format2GPSSlots {
		return Format2
	}
	return Format1
}

// Consolidated reports whether held slots form a prefix (no holes) —
// an invariant of dynamic mode.
func (t *GPSSlotTable) Consolidated() bool {
	seenFree := false
	for _, u := range t.slots {
		if u == frame.NoUser {
			seenFree = true
		} else if seenFree {
			return false
		}
	}
	return true
}

// Snapshot copies the slot assignments into a control-field GPS
// schedule.
func (t *GPSSlotTable) Snapshot() [frame.GPSScheduleEntries]frame.UserID {
	var out [frame.GPSScheduleEntries]frame.UserID
	for i := range out {
		out[i] = t.Holder(i)
	}
	return out
}

// GrantSchedule issues a deadline-aware per-cycle grant order: every
// held slot's user appears at most once in the first onAir entries,
// ordered by ascending deadline clock (earliest report deadline first),
// so the user whose last opportunity — grant or admission — is oldest
// transmits in the cycle's earliest GPS slot. onAir caps the usable
// slot count (3 in format 2); with the table consolidated, population
// never exceeds it, so every registered user is granted every cycle.
// Issuing a grant advances the holder's deadline clock, which makes the
// rotation stable: a user's rank — hence its slot's start time — never
// increases while it stays registered, departures only pull later users
// earlier, and consecutive grants therefore stay one cycle length
// (3.984 s) apart, inside the 4 s replacement deadline. Should
// population ever exceed onAir, the ungranted tail keeps its old
// clocks and ranks first next cycle, so no user starves.
//
// Compare Snapshot, which pins each user to its table slot and carries
// no opportunity clock: the announced order is the same (admission
// order), but nothing records that a late-cycle admission missed the
// announcement, which is what lets the base repair it in the second
// control field (the ROADMAP grant-starvation bug).
func (t *GPSSlotTable) GrantSchedule(onAir int) [frame.GPSScheduleEntries]frame.UserID {
	var out [frame.GPSScheduleEntries]frame.UserID
	for i := range out {
		out[i] = frame.NoUser
	}
	if onAir > len(out) {
		onAir = len(out)
	}
	// Insertion sort over ≤8 (user, lastSeq) pairs, ascending by lastSeq
	// (table order breaks the tie, though clocks are never duplicated).
	// Fixed-size scratch keeps the cycle hot path allocation-free.
	var order [phy.MaxGPSUsers]int
	n := 0
	for i, u := range t.slots {
		if u == frame.NoUser {
			continue
		}
		j := n
		for j > 0 && t.lastSeq[order[j-1]] > t.lastSeq[i] {
			order[j] = order[j-1]
			j--
		}
		order[j] = i
		n++
	}
	if n > onAir {
		n = onAir
	}
	for k := 0; k < n; k++ {
		out[k] = t.slots[order[k]]
		t.seq++
		t.lastSeq[order[k]] = t.seq
	}
	return out
}

// Granted advances user's deadline clock for a grant issued outside
// GrantSchedule — a second-control-field amendment. The next cycle's
// schedule then ranks the user after everyone granted earlier this
// cycle, preserving the stable rotation.
func (t *GPSSlotTable) Granted(user frame.UserID) {
	for i, u := range t.slots {
		if u == user {
			t.seq++
			t.lastSeq[i] = t.seq
			return
		}
	}
}
