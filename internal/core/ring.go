package core

// Ring is a fixed-capacity power-of-two ring buffer implementing
// Tracer. Trace overwrites the oldest event once full; the record path
// allocates nothing. It is the storage half of the flight recorder
// (internal/flight); it lives in core so the trace emitter can store
// events into the ring inline — no interface call, no extra struct
// copy — when a ring-fronted tracer is the terminal consumer (see
// Network.emitTrace and the inlineRecorder interface).
type Ring struct {
	slots []TraceEvent
	mask  uint64
	head  uint64 // events recorded ever; next write lands at head&mask
}

var _ Tracer = (*Ring)(nil)

// NewRing builds a ring with at least capacity slots, rounded up to a
// power of two. capacity <= 0 selects the default 4096.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring{slots: make([]TraceEvent, size), mask: uint64(size - 1)}
}

// Trace implements Tracer: one slot store, zero allocations.
func (r *Ring) Trace(e TraceEvent) {
	r.slots[r.head&r.mask] = e
	r.head++
}

// Cap returns the ring capacity in events (a power of two).
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns how many events the ring currently retains.
func (r *Ring) Len() int {
	if r.head < uint64(len(r.slots)) {
		return int(r.head)
	}
	return len(r.slots)
}

// Recorded returns the total number of events ever recorded.
func (r *Ring) Recorded() uint64 { return r.head }

// Overwritten returns how many events have been overwritten (lost to
// the fixed capacity). A reader can detect the same truncation from a
// dump alone via the sequence-number gap before the first event.
func (r *Ring) Overwritten() uint64 {
	if r.head <= uint64(len(r.slots)) {
		return 0
	}
	return r.head - uint64(len(r.slots))
}

// Snapshot copies the retained events oldest-to-newest, materialized
// (lazy detail operands rendered into Detail), ready for span
// stitching, the autopsy, or a JSONL dump.
func (r *Ring) Snapshot() []TraceEvent {
	n := r.Len()
	//lint:ignore hotpathalloc snapshotting is the dump path, which fires on anomalies only; the per-event record path (Trace) stays allocation-free
	out := make([]TraceEvent, n)
	start := r.head - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = r.slots[(start+uint64(i))&r.mask].Materialized()
	}
	return out
}

// Reset empties the ring without releasing its slots.
func (r *Ring) Reset() { r.head = 0 }

// inlineRecorder is implemented by tracers that front a Ring and can
// hand the per-event store to the trace emitter. When the configured
// tracer implements it and Claim returns a non-nil ring, emitTrace
// stores every event straight into the ring — no interface call, no
// extra copy — and forwards through the Tracer interface only the
// kinds whose bit is set in the returned mask (bit k = EventKind k),
// so the tracer still sees the events its trigger logic needs.
//
// Claiming is a contract: the claimer must NOT store forwarded events
// into the ring again (the emitter already has), and must return a nil
// ring when it has a downstream consumer that needs the full stream.
type inlineRecorder interface {
	ClaimInlineRing() (ring *Ring, forward uint64)
}
