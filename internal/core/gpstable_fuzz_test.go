package core

import (
	"testing"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
)

// FuzzGPSGrantTable drives the GPS slot table through randomized
// admission / departure / grant / amendment sequences and checks the
// scheduler's invariants after every step:
//
//   - the table stays consolidated and its population matches the model;
//   - a grant schedule never names a non-member, never names anyone
//     twice, and never grants beyond the on-air slot count;
//   - whenever the population fits on air, EVERY member is granted,
//     packed into the first population-many entries (starvation-freedom);
//   - grants are issued in ascending opportunity-clock order
//     (earliest report deadline first), verified against an independent
//     model of the clocks.
//
// Each op byte decodes as: action = op & 3 (0 admit, 1 leave, 2 grant
// cycle, 3 out-of-band grant), format-2 flag = op & 4, user = high bits.
func FuzzGPSGrantTable(f *testing.F) {
	// The ROADMAP shape: seven buses admitted, granted for two cycles,
	// then an eighth admitted late and amended (out-of-band grant)
	// before its first scheduled cycle.
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x02, 0x02, 0x70, 0x73, 0x02})
	// Format-2 population with a mid-life departure.
	f.Add([]byte{0x00, 0x10, 0x20, 0x06, 0x11, 0x06, 0x06})
	// Over-capacity rotation: 7 members scheduled into 3 on-air slots.
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x06, 0x06, 0x06})
	f.Add([]byte{0x02})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, ops []byte) {
		tbl := NewGPSSlotTable(true)
		members := make(map[frame.UserID]bool)
		// clock models lastSeq: admission and every issued grant bump it.
		clock := make(map[frame.UserID]uint64)
		var now uint64
		tick := func(u frame.UserID) { now++; clock[u] = now }

		for _, op := range ops {
			user := frame.UserID((op>>4)&7) + 1
			switch op & 3 {
			case 0: // admit
				_, err := tbl.Admit(user)
				switch {
				case members[user] && err == nil:
					t.Fatalf("double admission of %v accepted", user)
				case !members[user] && len(members) < phy.MaxGPSUsers && err != nil:
					t.Fatalf("admission of %v refused with %d/%d slots used: %v",
						user, len(members), phy.MaxGPSUsers, err)
				}
				if err == nil {
					members[user] = true
					tick(user)
				}
			case 1: // leave
				err := tbl.Leave(user)
				if members[user] != (err == nil) {
					t.Fatalf("leave(%v) err=%v with membership %v", user, err, members[user])
				}
				delete(members, user)
				delete(clock, user)
			case 2: // grant cycle
				onAir := phy.MaxGPSUsers
				if op&4 != 0 {
					onAir = phy.Format2GPSSlots
				}
				s := tbl.GrantSchedule(onAir)
				verifySchedule(t, s, members, onAir)
				// Deadline order: granted clocks must ascend, and every
				// issued grant advances its holder's clock.
				var prev uint64
				for i := 0; i < len(s); i++ {
					u := s[i]
					if u == frame.NoUser {
						continue
					}
					if c := clock[u]; c < prev {
						t.Fatalf("grant order violates deadline order at slot %d: %v", i, s)
					} else {
						prev = c
					}
				}
				for _, u := range s {
					if u != frame.NoUser {
						tick(u)
					}
				}
			case 3: // out-of-band grant (CF2 amendment)
				tbl.Granted(user)
				if members[user] {
					tick(user)
				}
			}
			if !tbl.Consolidated() {
				t.Fatalf("table lost consolidation after op %#x", op)
			}
			if tbl.Active() != len(members) {
				t.Fatalf("population drifted: table %d, model %d", tbl.Active(), len(members))
			}
		}
	})
}

// verifySchedule checks structural schedule invariants for one cycle.
func verifySchedule(t *testing.T, s [frame.GPSScheduleEntries]frame.UserID, members map[frame.UserID]bool, onAir int) {
	t.Helper()
	granted := make(map[frame.UserID]int)
	for i, u := range s {
		if u == frame.NoUser {
			continue
		}
		if i >= onAir {
			t.Fatalf("grant beyond the %d on-air slots: %v", onAir, s)
		}
		if !members[u] {
			t.Fatalf("grant to non-member %v: %v", u, s)
		}
		if j, dup := granted[u]; dup {
			t.Fatalf("user %v granted slots %d and %d: %v", u, j, i, s)
		}
		granted[u] = i
	}
	if len(members) <= onAir {
		// Starvation-freedom: everyone served, packed at the front.
		if len(granted) != len(members) {
			t.Fatalf("%d of %d members granted with room for all: %v", len(granted), len(members), s)
		}
		for u, i := range granted {
			if i >= len(members) {
				t.Fatalf("member %v granted slot %d beyond the first %d: %v", u, i, len(members), s)
			}
		}
	} else if len(granted) != onAir {
		t.Fatalf("over-capacity cycle granted %d slots, want all %d: %v", len(granted), onAir, s)
	}
}
