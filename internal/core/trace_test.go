package core

import (
	"strings"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
)

func TestTraceBufferCollectsProtocolEvents(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) {
		c.Tracer = buf
		c.MeanInterarrival = 10 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSubscriber(200, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(30); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EventKind{
		EventCycleStart, EventRegistrationRx, EventRegistered,
		EventDataRx, EventMessageComplete, EventGPSRx,
	} {
		if len(buf.Filter(kind)) == 0 {
			t.Errorf("no %v events traced", kind)
		}
	}
	// Events are time-ordered.
	evs := buf.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestTraceFormatSwitchEvent(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) { c.Tracer = buf })
	var gps []*Subscriber
	for i := 0; i < 5; i++ {
		s, err := n.AddSubscriber(frame.EIN(200+i), true, 0)
		if err != nil {
			t.Fatal(err)
		}
		gps = append(gps, s)
	}
	if err := n.Run(20); err != nil {
		t.Fatal(err)
	}
	for _, s := range gps[:2] {
		if err := n.Deregister(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	switches := buf.Filter(EventFormatSwitch)
	if len(switches) == 0 {
		t.Fatal("format switch not traced")
	}
	if !strings.Contains(switches[len(switches)-1].Detail, "format2") {
		t.Fatalf("switch detail = %q", switches[len(switches)-1].Detail)
	}
}

func TestTraceCollisionEvents(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) { c.Tracer = buf })
	for i := 0; i < 10; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(buf.Filter(EventCollision)) == 0 {
		t.Fatal("registration storm produced no collision traces")
	}
}

func TestTraceBufferBounded(t *testing.T) {
	buf := &TraceBuffer{Cap: 10}
	for i := 0; i < 100; i++ {
		buf.Trace(TraceEvent{Cycle: i, Kind: EventCycleStart, User: frame.NoUser, Slot: -1})
	}
	if len(buf.Events()) > 10 {
		t.Fatalf("buffer holds %d events, cap 10", len(buf.Events()))
	}
	if buf.Dropped() == 0 {
		t.Fatal("no drops recorded")
	}
	// Retained events are the most recent.
	evs := buf.Events()
	if evs[len(evs)-1].Cycle != 99 {
		t.Fatal("newest event lost")
	}
}

func TestFuncTracer(t *testing.T) {
	count := 0
	var tr Tracer = FuncTracer(func(TraceEvent) { count++ })
	tr.Trace(TraceEvent{})
	tr.Trace(TraceEvent{})
	if count != 2 {
		t.Fatal("FuncTracer did not forward")
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{
		At: 5 * time.Second, Cycle: 3, Kind: EventDataRx,
		User: 7, Slot: 2, Detail: "msg=1",
	}
	s := e.String()
	for _, want := range []string{"data-rx", "u7", "slot=2", "msg=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// NoUser and slot -1 are omitted.
	e2 := TraceEvent{Kind: EventCycleStart, User: frame.NoUser, Slot: -1}
	if strings.Contains(e2.String(), "slot=") {
		t.Fatal("slot -1 rendered")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventCycleStart, EventCFDecodeFailed, EventRegistrationRx,
		EventRegistered, EventReservationRx, EventPiggybackRx,
		EventCollision, EventDataRx, EventDataLost, EventMessageComplete,
		EventGPSRx, EventGPSLost, EventForwardTx, EventPageResponse,
		EventFormatSwitch,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestNilTracerIsCheapNoop(t *testing.T) {
	n := newTestNetwork(t, nil) // no tracer configured
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestTraceNoNegativeCycle(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) {
		c.Tracer = buf
		c.MeanInterarrival = 10 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	// An event fired before the first cycle begins must be clamped to
	// cycle 0, not reported as cycle -1.
	n.trace(EventGPSQueued, frame.NoUser, -1, "pre-cycle")
	if err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	for _, e := range buf.Events() {
		if e.Cycle < 0 {
			t.Fatalf("event %v carries negative cycle %d", e.Kind, e.Cycle)
		}
	}
	if got := buf.Events()[0]; got.Cycle != 0 || got.Detail != "pre-cycle" {
		t.Fatalf("pre-cycle event = %+v, want cycle 0", got)
	}
}

func TestEventKindStringRoundTrip(t *testing.T) {
	kinds := AllEventKinds()
	if len(kinds) != eventKindCount-1 {
		t.Fatalf("AllEventKinds returned %d kinds, want %d", len(kinds), eventKindCount-1)
	}
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "EventKind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		got, ok := ParseEventKind(s)
		if !ok || got != k {
			t.Fatalf("ParseEventKind(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseEventKind("no-such-kind"); ok {
		t.Fatal("unknown kind parsed")
	}
}

func TestTraceScheduleGrantEvents(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) {
		c.Tracer = buf
		c.MeanInterarrival = 5 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSubscriber(200, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(buf.Filter(EventGPSSlotGrant)) == 0 {
		t.Error("no GPS slot grants traced")
	}
	if len(buf.Filter(EventDataSlotGrant)) == 0 {
		t.Error("no data slot grants traced")
	}
	if len(buf.Filter(EventGPSQueued)) == 0 {
		t.Error("no GPS queue events traced")
	}
}

// TestNilTracerTraceAllocsZero proves the zero-overhead invariant at
// the source: with no tracer attached, the trace hook neither
// allocates nor records anything.
func TestNilTracerTraceAllocsZero(t *testing.T) {
	n := newTestNetwork(t, nil)
	if n.tracing() {
		t.Fatal("network without tracer reports tracing enabled")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		n.trace(EventGPSRx, 1, 0, "")
	}); allocs != 0 {
		t.Fatalf("nil-tracer trace allocates %.1f/op, want 0", allocs)
	}
}
