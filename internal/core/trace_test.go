package core

import (
	"strings"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
)

func TestTraceBufferCollectsProtocolEvents(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) {
		c.Tracer = buf
		c.MeanInterarrival = 10 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSubscriber(200, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(30); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EventKind{
		EventCycleStart, EventRegistrationRx, EventRegistered,
		EventDataRx, EventMessageComplete, EventGPSRx,
	} {
		if len(buf.Filter(kind)) == 0 {
			t.Errorf("no %v events traced", kind)
		}
	}
	// Events are time-ordered.
	evs := buf.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestTraceFormatSwitchEvent(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) { c.Tracer = buf })
	var gps []*Subscriber
	for i := 0; i < 5; i++ {
		s, err := n.AddSubscriber(frame.EIN(200+i), true, 0)
		if err != nil {
			t.Fatal(err)
		}
		gps = append(gps, s)
	}
	if err := n.Run(20); err != nil {
		t.Fatal(err)
	}
	for _, s := range gps[:2] {
		if err := n.Deregister(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(3); err != nil {
		t.Fatal(err)
	}
	switches := buf.Filter(EventFormatSwitch)
	if len(switches) == 0 {
		t.Fatal("format switch not traced")
	}
	if !strings.Contains(switches[len(switches)-1].Detail, "format2") {
		t.Fatalf("switch detail = %q", switches[len(switches)-1].Detail)
	}
}

func TestTraceCollisionEvents(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) { c.Tracer = buf })
	for i := 0; i < 10; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(buf.Filter(EventCollision)) == 0 {
		t.Fatal("registration storm produced no collision traces")
	}
}

func TestTraceBufferBounded(t *testing.T) {
	buf := &TraceBuffer{Cap: 10}
	for i := 0; i < 100; i++ {
		buf.Trace(TraceEvent{Cycle: i, Kind: EventCycleStart, User: frame.NoUser, Slot: -1})
	}
	if len(buf.Events()) > 10 {
		t.Fatalf("buffer holds %d events, cap 10", len(buf.Events()))
	}
	if buf.Dropped() == 0 {
		t.Fatal("no drops recorded")
	}
	// Retained events are the most recent.
	evs := buf.Events()
	if evs[len(evs)-1].Cycle != 99 {
		t.Fatal("newest event lost")
	}
}

func TestFuncTracer(t *testing.T) {
	count := 0
	var tr Tracer = FuncTracer(func(TraceEvent) { count++ })
	tr.Trace(TraceEvent{})
	tr.Trace(TraceEvent{})
	if count != 2 {
		t.Fatal("FuncTracer did not forward")
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{
		At: 5 * time.Second, Cycle: 3, Kind: EventDataRx,
		User: 7, Slot: 2, Detail: "msg=1",
	}
	s := e.String()
	for _, want := range []string{"data-rx", "u7", "slot=2", "msg=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// NoUser and slot -1 are omitted.
	e2 := TraceEvent{Kind: EventCycleStart, User: frame.NoUser, Slot: -1}
	if strings.Contains(e2.String(), "slot=") {
		t.Fatal("slot -1 rendered")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventCycleStart, EventCFDecodeFailed, EventRegistrationRx,
		EventRegistered, EventReservationRx, EventPiggybackRx,
		EventCollision, EventDataRx, EventDataLost, EventMessageComplete,
		EventGPSRx, EventGPSLost, EventForwardTx, EventPageResponse,
		EventFormatSwitch,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestNilTracerIsCheapNoop(t *testing.T) {
	n := newTestNetwork(t, nil) // no tracer configured
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestTraceNoNegativeCycle(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) {
		c.Tracer = buf
		c.MeanInterarrival = 10 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	// An event fired before the first cycle begins must be clamped to
	// cycle 0, not reported as cycle -1.
	n.trace(EventGPSQueued, frame.NoUser, -1, "pre-cycle")
	if err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	for _, e := range buf.Events() {
		if e.Cycle < 0 {
			t.Fatalf("event %v carries negative cycle %d", e.Kind, e.Cycle)
		}
	}
	if got := buf.Events()[0]; got.Cycle != 0 || got.Detail != "pre-cycle" {
		t.Fatalf("pre-cycle event = %+v, want cycle 0", got)
	}
}

func TestEventKindStringRoundTrip(t *testing.T) {
	kinds := AllEventKinds()
	if len(kinds) != eventKindCount-1 {
		t.Fatalf("AllEventKinds returned %d kinds, want %d", len(kinds), eventKindCount-1)
	}
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "EventKind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		got, ok := ParseEventKind(s)
		if !ok || got != k {
			t.Fatalf("ParseEventKind(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseEventKind("no-such-kind"); ok {
		t.Fatal("unknown kind parsed")
	}
}

func TestEventKindTextRoundTrip(t *testing.T) {
	for _, k := range AllEventKinds() {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", k, err)
		}
		if string(text) != k.String() {
			t.Fatalf("MarshalText(%v) = %q, want %q", k, text, k.String())
		}
		var got EventKind
		if err := got.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if got != k {
			t.Fatalf("round-trip of %v gave %v", k, got)
		}
	}
	if _, err := EventKind(0).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted the zero kind")
	}
	if _, err := EventKind(eventKindCount).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted an out-of-range kind")
	}
	var k EventKind
	if err := k.UnmarshalText([]byte("no-such-kind")); err == nil {
		t.Fatal("UnmarshalText accepted an unknown name")
	}
}

// TestBaselineEventKindNames pins the canonical names of the kinds the
// baseline emission paths use. The JSONL schema, osumactrace's -kinds
// filter, and the span stitcher's frame reconstruction all key on these
// exact strings, so a rename is a breaking change this table catches.
func TestBaselineEventKindNames(t *testing.T) {
	cases := []struct {
		k    EventKind
		want string
	}{
		{EventFrameStart, "frame-start"},
		{EventReservationGrant, "reservation-grant"},
		{EventContentionTx, "contention-tx"},
		{EventCollision, "collision"},
		{EventMessageQueued, "message-queued"},
		{EventMessageDropped, "message-dropped"},
		{EventDataSlotGrant, "data-slot-grant"},
		{EventDataRx, "data-rx"},
		{EventMessageComplete, "message-complete"},
	}
	for _, tc := range cases {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.k), got, tc.want)
		}
		text, err := tc.k.MarshalText()
		if err != nil || string(text) != tc.want {
			t.Errorf("MarshalText(%v) = %q, %v, want %q", tc.k, text, err, tc.want)
		}
		var back EventKind
		if err := back.UnmarshalText([]byte(tc.want)); err != nil || back != tc.k {
			t.Errorf("UnmarshalText(%q) = %v, %v, want %v", tc.want, back, err, tc.k)
		}
	}
}

func TestTraceScheduleGrantEvents(t *testing.T) {
	buf := &TraceBuffer{}
	n := newTestNetwork(t, func(c *Config) {
		c.Tracer = buf
		c.MeanInterarrival = 5 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSubscriber(200, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(buf.Filter(EventGPSSlotGrant)) == 0 {
		t.Error("no GPS slot grants traced")
	}
	if len(buf.Filter(EventDataSlotGrant)) == 0 {
		t.Error("no data slot grants traced")
	}
	if len(buf.Filter(EventGPSQueued)) == 0 {
		t.Error("no GPS queue events traced")
	}
}

// TestTraceNormalizesCycleAndSlot is the table test for the trace
// hook's field normalization: whatever defensive values call sites
// compute (pre-registration events in particular pass placeholder
// cycles and slots), emitted events always satisfy Cycle >= 0 and
// Slot >= -1 so span stitching never sees a negative slot other than
// the single "no slot" sentinel.
func TestTraceNormalizesCycleAndSlot(t *testing.T) {
	cases := []struct {
		name     string
		cycle    int // n.cycle before the event fires
		slot     int
		wantCyc  int
		wantSlot int
	}{
		{"pre-cycle no-slot", 0, -1, 0, -1},
		{"pre-cycle stray negative slot", 0, -7, 0, -1},
		{"mid-run no-slot", 3, -1, 2, -1},
		{"mid-run stray negative slot", 3, -2, 2, -1},
		{"mid-run real slot", 3, 5, 2, 5},
		{"first-cycle slot zero", 1, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := &TraceBuffer{}
			n := newTestNetwork(t, func(c *Config) { c.Tracer = buf })
			n.cycle = tc.cycle
			n.trace(EventGPSQueued, 1, tc.slot, "")
			evs := buf.Events()
			if len(evs) != 1 {
				t.Fatalf("traced %d events, want 1", len(evs))
			}
			if evs[0].Cycle != tc.wantCyc || evs[0].Slot != tc.wantSlot {
				t.Fatalf("event (cycle=%d slot=%d), want (cycle=%d slot=%d)",
					evs[0].Cycle, evs[0].Slot, tc.wantCyc, tc.wantSlot)
			}
		})
	}
}

// TestTraceSeqMonotonic: every emitted event carries a strictly
// increasing sequence number starting at 1, giving span stitching a
// total order within a shared virtual instant.
func TestTraceSeqMonotonic(t *testing.T) {
	buf := &TraceBuffer{Cap: 1 << 16}
	n := newTestNetwork(t, func(c *Config) {
		c.Tracer = buf
		c.MeanInterarrival = 5 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSubscriber(200, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(20); err != nil {
		t.Fatal(err)
	}
	evs := buf.Events()
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	if evs[0].Seq != 1 {
		t.Fatalf("first event Seq = %d, want 1", evs[0].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("Seq not contiguous at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
		if evs[i].At == evs[i-1].At && evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("events at one instant lack a total order")
		}
	}
}

// TestTraceMessageLifecycleEvents: the span-stitching hooks cover the
// full data-message lifecycle — enqueue, contention transmission,
// reception with slot attribution, completion.
func TestTraceMessageLifecycleEvents(t *testing.T) {
	buf := &TraceBuffer{Cap: 1 << 16}
	n := newTestNetwork(t, func(c *Config) {
		c.Tracer = buf
		c.MeanInterarrival = 5 * time.Second
	})
	if _, err := n.AddSubscriber(100, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(30); err != nil {
		t.Fatal(err)
	}
	if len(buf.Filter(EventMessageQueued)) == 0 {
		t.Error("no message-queued events traced")
	}
	if len(buf.Filter(EventContentionTx)) == 0 {
		t.Error("no contention-tx events traced")
	}
	for _, e := range buf.Filter(EventMessageQueued) {
		if !strings.Contains(e.Detail, "msg=") {
			t.Fatalf("message-queued detail %q lacks msg id", e.Detail)
		}
	}
	// Receptions now carry the reverse slot they arrived in.
	sawSlot := false
	for _, e := range buf.Filter(EventDataRx) {
		if e.Slot >= 0 {
			sawSlot = true
		}
	}
	if !sawSlot {
		t.Error("data-rx events carry no slot attribution")
	}
}

// TestNilTracerTraceAllocsZero proves the zero-overhead invariant at
// the source: with no tracer attached, the trace hook neither
// allocates nor records anything.
func TestNilTracerTraceAllocsZero(t *testing.T) {
	n := newTestNetwork(t, nil)
	if n.tracing() {
		t.Fatal("network without tracer reports tracing enabled")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		n.trace(EventGPSRx, 1, 0, "")
	}); allocs != 0 {
		t.Fatalf("nil-tracer trace allocates %.1f/op, want 0", allocs)
	}
}
