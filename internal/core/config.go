package core

import (
	"fmt"
	"time"

	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sched"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// ReservationPolicy selects how a subscriber with queued data but no
// assigned slots acquires bandwidth (paper §3.1 lists both means).
type ReservationPolicy int

const (
	// ReserveExplicit sends a reservation control packet in a contention
	// slot.
	ReserveExplicit ReservationPolicy = iota + 1
	// ReserveWithData sends the first queued data packet directly in a
	// contention slot, piggybacking the demand in its header. Colliding
	// data senders back off longer than reservation senders.
	ReserveWithData
)

// String implements fmt.Stringer.
func (p ReservationPolicy) String() string {
	switch p {
	case ReserveExplicit:
		return "explicit"
	case ReserveWithData:
		return "data-in-contention"
	default:
		return fmt.Sprintf("ReservationPolicy(%d)", int(p))
	}
}

// GPSGrantPolicy selects how the base station orders GPS users onto the
// cycle's on-air GPS slots.
type GPSGrantPolicy int

const (
	// GPSGrantDeadline (the default) announces grants in
	// earliest-report-deadline-first order via GPSSlotTable.GrantSchedule:
	// the user whose last report (or admission) is oldest transmits in
	// the earliest slot, so no registered user goes ungranted for a full
	// cycle and consecutive grants stay within the 4 s access bound.
	GPSGrantDeadline GPSGrantPolicy = iota + 1
	// GPSGrantFixed is the legacy policy: each user transmits in the
	// table slot it was admitted to. A user admitted via the previous
	// cycle's overlapping last data slot misses a full cycle of grants
	// and its first grant at a high slot index can open just past its
	// report's replacement deadline — the ROADMAP grant-starvation bug,
	// kept reproducible for the autopsy/critical-path tooling and as an
	// ablation baseline.
	GPSGrantFixed
)

// String implements fmt.Stringer.
func (p GPSGrantPolicy) String() string {
	switch p {
	case GPSGrantDeadline:
		return "deadline"
	case GPSGrantFixed:
		return "fixed"
	default:
		return fmt.Sprintf("GPSGrantPolicy(%d)", int(p))
	}
}

// Config parameterizes one OSU-MAC cell simulation. NewConfig returns
// the paper's defaults; zero-valued fields are filled by Validate.
type Config struct {
	// Seed drives every random stream in the run.
	Seed uint64

	// Scheduler assigns reverse data slots; nil means the paper's
	// round-robin with lumping.
	Scheduler sched.ReverseScheduler

	// NewForwardModel and NewReverseModel construct the per-link channel
	// error models; nil means an ideal channel.
	NewForwardModel func() phy.ErrorModel
	NewReverseModel func() phy.ErrorModel

	// DynamicSlotAdjustment enables GPS slot consolidation (rules R1-R3)
	// and the format-2 conversion of idle GPS slots into a data slot.
	DynamicSlotAdjustment bool

	// SecondControlField enables the CF2 design. When disabled, the base
	// station never assigns the last reverse data slot (the paper's
	// rejected alternative), wasting its bandwidth.
	SecondControlField bool

	// GPSGrantPolicy orders GPS users onto the cycle's on-air GPS slots;
	// zero means GPSGrantDeadline. It only takes effect with
	// DynamicSlotAdjustment (static mode pins users to table slots by
	// construction).
	GPSGrantPolicy GPSGrantPolicy

	// MinContentionSlots and MaxContentionSlots bound the dynamic
	// contention-slot controller. At least one data slot per cycle is
	// always a contention slot (paper §3.5).
	MinContentionSlots int
	MaxContentionSlots int

	// ReservationBackoffCycles is the maximum random backoff (in cycles)
	// after a reservation collision; data-in-contention senders use
	// twice this (paper §3.1).
	ReservationBackoffCycles int

	// MaxRegistrationAttempts bounds a registrant's persistence.
	MaxRegistrationAttempts int

	// Policy is the default slot-acquisition behaviour for data users.
	Policy ReservationPolicy

	// GPSPeriod is the bus location reporting period.
	GPSPeriod time.Duration

	// QueueCapFragments caps a subscriber's pending fragment queue;
	// arrivals beyond it are dropped (buffer overflow, visible in the
	// paper's utilization plot past ρ = 1).
	QueueCapFragments int

	// SizeDist draws data message sizes; nil means the paper's variable
	// workload (uniform 40-500 bytes).
	SizeDist traffic.SizeDist

	// MeanInterarrival is the per-user Poisson mean gap between data
	// messages; zero disables data traffic.
	MeanInterarrival time.Duration

	// Tracer receives protocol events when non-nil (see TraceBuffer).
	Tracer Tracer

	// DisableCompiledCycle forces every notification cycle through the
	// general event-driven kernel instead of the compiled slot-action
	// templates (see compiled.go). The two engines are observationally
	// identical — this switch exists for the differential tests that
	// prove it, and as an escape hatch.
	DisableCompiledCycle bool

	// CollectSeries records a per-cycle metric point in
	// Metrics.Series — useful for transient analysis and plotting.
	CollectSeries bool
}

// NewConfig returns the paper's default configuration.
func NewConfig() Config {
	return Config{
		Seed:                     1,
		DynamicSlotAdjustment:    true,
		SecondControlField:       true,
		GPSGrantPolicy:           GPSGrantDeadline,
		MinContentionSlots:       1,
		MaxContentionSlots:       3,
		ReservationBackoffCycles: 2,
		MaxRegistrationAttempts:  32,
		Policy:                   ReserveWithData,
		GPSPeriod:                phy.GPSAccessDeadline,
		QueueCapFragments:        128,
		SizeDist:                 traffic.PaperVariable,
	}
}

// Validate fills defaults and rejects inconsistent settings.
func (c *Config) Validate() error {
	if c.Scheduler == nil {
		c.Scheduler = sched.NewRoundRobin()
	}
	if c.NewForwardModel == nil {
		c.NewForwardModel = func() phy.ErrorModel { return phy.Ideal{} }
	}
	if c.NewReverseModel == nil {
		c.NewReverseModel = func() phy.ErrorModel { return phy.Ideal{} }
	}
	if c.MinContentionSlots <= 0 {
		c.MinContentionSlots = 1
	}
	if c.MaxContentionSlots < c.MinContentionSlots {
		c.MaxContentionSlots = c.MinContentionSlots
	}
	if c.MaxContentionSlots >= phy.Format1DataSlots {
		return fmt.Errorf("core: MaxContentionSlots %d must leave at least one schedulable data slot", c.MaxContentionSlots)
	}
	if c.ReservationBackoffCycles <= 0 {
		c.ReservationBackoffCycles = 3
	}
	if c.MaxRegistrationAttempts <= 0 {
		c.MaxRegistrationAttempts = 32
	}
	if c.Policy == 0 {
		c.Policy = ReserveExplicit
	}
	if c.GPSGrantPolicy == 0 {
		c.GPSGrantPolicy = GPSGrantDeadline
	}
	if c.GPSGrantPolicy != GPSGrantDeadline && c.GPSGrantPolicy != GPSGrantFixed {
		return fmt.Errorf("core: unknown GPS grant policy %d", c.GPSGrantPolicy)
	}
	if c.Policy != ReserveExplicit && c.Policy != ReserveWithData {
		return fmt.Errorf("core: unknown reservation policy %d", c.Policy)
	}
	if c.GPSPeriod <= 0 {
		c.GPSPeriod = phy.GPSAccessDeadline
	}
	if c.QueueCapFragments <= 0 {
		c.QueueCapFragments = 128
	}
	if c.SizeDist == nil {
		c.SizeDist = traffic.PaperVariable
	}
	if c.MeanInterarrival < 0 {
		return fmt.Errorf("core: negative MeanInterarrival %v", c.MeanInterarrival)
	}
	return nil
}
