package core

import (
	"fmt"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// InternalError reports a broken protocol invariant detected mid-run
// (e.g. the base station producing unencodable control fields). It
// aborts the simulation instead of panicking so embedding programs can
// surface the failure.
type InternalError struct {
	Op  string // the operation that failed, e.g. "control field encode"
	Err error
}

// Error implements the error interface.
func (e *InternalError) Error() string {
	return fmt.Sprintf("core: internal error: %s: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *InternalError) Unwrap() error { return e.Err }

// Network wires one base station and its mobile subscribers onto the
// discrete-event kernel and the simulated channels. It owns all
// measurement plumbing (message delay, reservation and registration
// latency) that a real deployment would not carry in-band.
type Network struct {
	cfg     Config
	sim     *sim.Simulator
	codec   *frame.Codec
	rootRNG *sim.RNG
	base    *BaseStation
	metrics *Metrics
	runErr  error

	subs       []*subEntry
	byEIN      map[frame.EIN]*subEntry
	cycle      int    // cycles started so far
	traceSeq   uint64 // monotone trace-event sequence (see trace.go)
	inlineRing *Ring  // non-nil when cfg.Tracer claimed the inline store (see ring.go)
	inlineFwd  uint64 // EventKind bitmask still forwarded through cfg.Tracer
	prevSnap   seriesSnap
	seriesNext int // first cycle index without a recorded series point

	// OnUplinkComplete, when non-nil, fires for every uplink message
	// fully reassembled at the base station — the hook a backbone uses
	// to forward traffic toward other cells.
	OnUplinkComplete func(user frame.UserID, msgID uint16, bytes int)
	msgMeta          map[uint32]msgMeta
	fwdMeta          map[uint32]msgMeta
	nextFwdID        map[frame.UserID]uint16

	// Reused codec/channel scratch. The kernel is single-threaded and
	// every consumer finishes with its buffer before handing control
	// back, so one buffer per role removes the per-slot allocations.
	// cf1Buf/cf2Buf live until their delivery events fire later in the
	// same cycle; encBuf/rxBuf are consumed within one handler.
	cf1Buf []byte
	cf2Buf []byte
	encBuf []byte
	rxBuf  []byte

	// Compiled-cycle executor (see compiled.go). compiled is nil when
	// Config.DisableCompiledCycle is set; allIdeal tracks whether every
	// attached channel model is phy.Ideal — the fast path's precondition.
	compiled *compiledSource
	allIdeal bool

	// Scratch owned by the compiled fast path. The kernel is
	// single-threaded and each is fully consumed within one slot
	// handler. scratchPayload stays all-zero: fast-path data packets
	// slice it without writing, mirroring the event path's zeroed
	// make([]byte, size) payloads.
	scratchData    frame.DataPacket
	scratchPkt     frame.Packet
	scratchGPS     frame.GPSReport
	scratchPayload [frame.MaxPayload]byte
}

type subEntry struct {
	sub        *Subscriber
	fwdModel   phy.ErrorModel
	revModel   phy.ErrorModel
	chanRNG    *sim.RNG
	plan       CyclePlan
	hasPlan    bool
	planCycle  int
	listensCF2 bool
	traffic    *traffic.PoissonSource
	trafficOn  bool
	gpsOn      bool
}

type msgMeta struct {
	createdAt time.Duration
	bytes     int
}

// seriesSnap holds the counter values at the previous cycle boundary,
// for per-cycle deltas.
type seriesSnap struct {
	offered    uint64
	used       uint64
	delivered  uint64
	collisions uint64
}

// NewNetwork builds a cell simulation from cfg. The Config is validated
// and defaulted in place.
func NewNetwork(cfg Config) (*Network, error) {
	return NewNetworkOnSim(cfg, sim.New())
}

// NewNetworkOnSim builds a cell on an existing simulation kernel, so
// multiple cells (and a wired backbone between them) share one virtual
// clock.
func NewNetworkOnSim(cfg Config, kernel *sim.Simulator) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if kernel == nil {
		return nil, fmt.Errorf("core: nil simulation kernel")
	}
	root := sim.NewRNG(cfg.Seed)
	n := &Network{
		cfg:       cfg,
		sim:       kernel,
		codec:     frame.NewCodec(),
		rootRNG:   root,
		metrics:   NewMetrics(),
		byEIN:     make(map[frame.EIN]*subEntry),
		msgMeta:   make(map[uint32]msgMeta),
		fwdMeta:   make(map[uint32]msgMeta),
		nextFwdID: make(map[frame.UserID]uint16),
		allIdeal:  true,
	}
	if ir, ok := cfg.Tracer.(inlineRecorder); ok {
		// A ring-fronted terminal tracer (the flight recorder) hands the
		// per-event store to emitTrace; only the kinds in the mask still
		// travel through the Tracer interface.
		if ring, fwd := ir.ClaimInlineRing(); ring != nil {
			n.inlineRing, n.inlineFwd = ring, fwd
		}
	}
	n.base = NewBaseStation(&n.cfg, n.metrics, root.Fork("base"))
	if !n.cfg.DisableCompiledCycle {
		n.compiled = newCompiledSource(n)
		kernel.AttachSource(n.compiled)
	}
	return n, nil
}

// Metrics returns the run's metric bundle.
func (n *Network) Metrics() *Metrics { return n.metrics }

// Base returns the cell's base station.
func (n *Network) Base() *BaseStation { return n.base }

// Sim exposes the simulation kernel (for tests and custom scenarios).
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Config returns the validated configuration.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the number of notification cycles started.
func (n *Network) Cycle() int { return n.cycle }

// Err returns the internal error that aborted the run, if any. Callers
// that drive the kernel themselves (e.g. multi-cell backbones) must
// check it after the kernel stops.
func (n *Network) Err() error { return n.runErr }

// Abort injects an internal failure: it records err as the run error
// and halts this cell's kernel, exactly as an internal invariant
// violation would. Multi-cell drivers (see internal/backbone) use it to
// exercise their partial-failure surfacing; like any internal error it
// poisons the network for further runs.
func (n *Network) Abort(op string, err error) { n.fail(op, err) }

// fail records the first internal error and halts the kernel; scheduled
// events after the current one never fire.
func (n *Network) fail(op string, err error) {
	if n.runErr == nil {
		n.runErr = &InternalError{Op: op, Err: err}
		n.sim.Stop()
	}
}

// Subscribers returns the subscribers in creation order.
func (n *Network) Subscribers() []*Subscriber {
	out := make([]*Subscriber, len(n.subs))
	for i, e := range n.subs {
		out[i] = e.sub
	}
	return out
}

// SubscriberByID finds an active subscriber by user ID.
func (n *Network) SubscriberByID(user frame.UserID) *Subscriber {
	if e := n.byID(user); e != nil {
		return e.sub
	}
	return nil
}

// AddSubscriber creates a subscriber that will enter the cell (start
// registering) at joinAt.
func (n *Network) AddSubscriber(ein frame.EIN, isGPS bool, joinAt time.Duration) (*Subscriber, error) {
	if _, dup := n.byEIN[ein]; dup {
		return nil, fmt.Errorf("core: duplicate EIN %d", ein)
	}
	idx := len(n.subs)
	sub := NewSubscriber(ein, isGPS, &n.cfg, n.rootRNG.ForkIndexed("sub", idx))
	e := &subEntry{
		sub:      sub,
		fwdModel: n.cfg.NewForwardModel(),
		revModel: n.cfg.NewReverseModel(),
		chanRNG:  n.rootRNG.ForkIndexed("chan", idx),
	}
	if _, ok := e.fwdModel.(phy.Ideal); !ok {
		n.allIdeal = false
	}
	if _, ok := e.revModel.(phy.Ideal); !ok {
		n.allIdeal = false
	}
	if !isGPS && n.cfg.MeanInterarrival > 0 {
		e.traffic = traffic.NewPoissonSource(n.cfg.MeanInterarrival,
			n.cfg.SizeDist, n.rootRNG.ForkIndexed("traffic", idx))
	}
	n.subs = append(n.subs, e)
	n.byEIN[ein] = e
	n.sim.After(joinAt, func() { sub.Enter(n.cycle) })
	return sub, nil
}

// Deregister signs a subscriber off administratively (base-side record
// removal plus subscriber reset).
func (n *Network) Deregister(sub *Subscriber) error {
	if sub.State() == StateActive {
		if err := n.base.Deregister(sub.ID()); err != nil {
			return err
		}
		if sub.IsGPS {
			n.trace(EventGPSLeft, sub.ID(), -1, "")
		}
	}
	sub.Deactivate()
	return nil
}

// SendToSubscriber queues an application message for downlink delivery.
// The subscriber must be active.
func (n *Network) SendToSubscriber(sub *Subscriber, size int) error {
	if sub.State() != StateActive {
		return fmt.Errorf("core: subscriber %d not active", sub.EIN)
	}
	user := sub.ID()
	id := n.nextFwdID[user]
	n.nextFwdID[user]++
	if err := n.base.EnqueueForward(user, id, size); err != nil {
		return err
	}
	n.fwdMeta[fwdKey(user, id)] = msgMeta{createdAt: n.sim.Now(), bytes: size}
	return nil
}

// Run executes the given number of notification cycles plus enough
// runway for the final cycle's reverse slots to land.
func (n *Network) Run(cycles int) error {
	start := n.sim.Now()
	if err := n.ScheduleCycles(cycles, start); err != nil {
		return err
	}
	horizon := start + time.Duration(cycles)*phy.CycleLength + phy.ReverseShift
	kerr := n.sim.Run(horizon)
	if n.runErr != nil {
		return n.runErr
	}
	if kerr == nil {
		n.FlushSeries()
	}
	return kerr
}

// FlushSeries records the series point of the most recent cycle, which
// beginCycle alone would only record when a further cycle starts. Run
// calls it automatically; callers that drive the kernel themselves
// (backbones, live servers) should call it once the run is over. It is
// idempotent and a no-op unless Config.CollectSeries is set.
func (n *Network) FlushSeries() {
	if !n.cfg.CollectSeries || n.cycle == 0 {
		return
	}
	n.recordSeriesPoint(n.cycle - 1)
}

// ScheduleCycles queues the next `cycles` notification cycles starting
// at the absolute virtual time `start` without running the kernel —
// used when several cells share one kernel (see the backbone package).
func (n *Network) ScheduleCycles(cycles int, start time.Duration) error {
	if cycles <= 0 {
		return fmt.Errorf("core: non-positive cycle count %d", cycles)
	}
	base := n.cycle
	for k := 0; k < cycles; k++ {
		k := k
		at := start + time.Duration(k)*phy.CycleLength
		if _, err := n.sim.At(at, sim.PriorityNormal, func() { n.beginCycle(base + k) }); err != nil {
			return err
		}
	}
	return nil
}

// TrackMessage registers measurement metadata for a message enqueued
// directly on a subscriber (via AddMessage), so its delivery is counted
// and timed like generated traffic.
func (n *Network) TrackMessage(user frame.UserID, msgID uint16, bytes int, createdAt time.Duration) {
	n.metrics.MessagesGenerated.Inc()
	n.metrics.BytesGenerated.Addn(uint64(bytes))
	n.metrics.PerUserGenerated[user] += uint64(bytes)
	n.msgMeta[msgKey(user, msgID)] = msgMeta{createdAt: createdAt, bytes: bytes}
	if n.tracing() {
		n.traceD(EventMessageQueued, user, -1, DetailMsgBytes, int64(msgID), int64(bytes), 0)
	}
}

// beginCycle schedules every event of notification cycle k.
func (n *Network) beginCycle(k int) {
	prevFormat := n.base.Layout().Format
	if n.cfg.CollectSeries && k > 0 {
		n.recordSeriesPoint(k - 1)
	}
	n.cycle = k + 1
	n.metrics.Cycles++
	n.base.BeginCycle()
	layout := n.base.Layout()
	cf1 := n.base.ControlFields()
	t0 := n.sim.Now()
	if n.tracing() {
		n.trace(EventCycleStart, frame.NoUser, -1, layout.Format.String())
		if prevFormat != 0 && prevFormat != layout.Format {
			n.traceD(EventFormatSwitch, frame.NoUser, -1,
				DetailFormatSwitch, int64(prevFormat), int64(layout.Format), 0)
		}
		// Announce this cycle's slot schedule so offline tools (the
		// deadline autopsy in particular) can reconstruct scheduling
		// decisions without parsing control fields.
		for i, u := range cf1.GPSSchedule {
			if u != frame.NoUser {
				n.trace(EventGPSSlotGrant, u, i, "")
			}
		}
		for i, u := range cf1.ReverseSchedule {
			if u != frame.NoUser {
				n.trace(EventDataSlotGrant, u, i, "")
			}
		}
		for i, u := range cf1.ForwardSchedule {
			if u != frame.NoUser {
				n.trace(EventForwardSlotGrant, u, i, "")
			}
		}
		if cf2u := n.base.CF2User(); cf2u != frame.NoUser {
			n.trace(EventCF2Listener, cf2u, -1, "")
		}
	}

	// Snapshot who listens to CF2 this cycle (decided last cycle).
	// Plans are NOT cleared here: the previous cycle's last reverse data
	// slot is still in flight and its handler reads the old plan. Each
	// plan carries its cycle index instead.
	for _, e := range n.subs {
		e.listensCF2 = e.sub.ListensCF2()
	}

	// CF1 delivery. The buffer is reused next cycle; the delivery event
	// below fires at CF1.End, well before then.
	cf1Air, err := n.codec.EncodeControlFieldsTo(n.cf1Buf[:0], cf1)
	if err != nil {
		n.fail("control field encode", err)
		return
	}
	n.cf1Buf = cf1Air

	// Compiled fast path: when an instance is free, the whole cycle runs
	// off a precompiled slot-action table instead of per-slot heap events
	// (see compiled.go). The two engines are observationally identical.
	if n.compiled != nil && n.compiled.activate(k, t0, layout, cf1, cf1Air) {
		return
	}

	n.sim.AfterPriority(layout.CF1.End, sim.PriorityDeliver, func() {
		n.deliverCF1All(cf1Air, layout)
	})

	// CF2 delivery.
	n.sim.AfterPriority(layout.CF2.End, sim.PriorityDeliver, func() {
		n.deliverCF2All(layout)
	})

	// Reverse GPS slots. The transmit decision happens at the slot
	// START: a report arriving mid-slot waits for the next cycle.
	for i, iv := range layout.GPS {
		i, iv := i, iv
		n.sim.AfterPriority(iv.Start, sim.PriorityLate, func() {
			n.gpsSlotStart(cf1, i, t0+iv.Start)
		})
	}

	// Reverse data slots. The last one lands after the next cycle has
	// begun; its handler knows its own cycle index.
	for i, iv := range layout.ReverseData {
		i := i
		isLast := i == layout.LastDataSlot()
		contention := cf1.ReverseSchedule[i] == frame.NoUser
		n.sim.AfterPriority(iv.End, sim.PriorityDeliver, func() {
			n.dataSlotEnd(k, i, isLast, contention)
		})
	}

	// Forward data slots.
	for i, iv := range layout.ForwardData {
		i := i
		user := cf1.ForwardSchedule[i]
		if user == frame.NoUser {
			continue
		}
		n.sim.AfterPriority(iv.End, sim.PriorityDeliver, func() {
			n.forwardSlotEnd(i, user)
		})
	}
}

// recordSeriesPoint appends the per-cycle delta for the cycle that just
// finished. Recording is idempotent per cycle so FlushSeries and the
// next beginCycle never double-count.
func (n *Network) recordSeriesPoint(cycle int) {
	if cycle < n.seriesNext {
		return
	}
	n.seriesNext = cycle + 1
	m := n.metrics
	cur := seriesSnap{
		offered:    m.DataSlotsOffered.Value(),
		used:       m.DataSlotsUsed.Value(),
		delivered:  m.MessagesDelivered.Value(),
		collisions: m.ContentionCollisions.Value(),
	}
	depth := 0
	for _, e := range n.subs {
		depth += e.sub.QueueLen()
	}
	m.Series = append(m.Series, CyclePoint{
		Cycle:             cycle,
		SlotsOffered:      int(cur.offered - n.prevSnap.offered),
		SlotsUsed:         int(cur.used - n.prevSnap.used),
		MessagesDelivered: int(cur.delivered - n.prevSnap.delivered),
		Collisions:        int(cur.collisions - n.prevSnap.collisions),
		QueueDepth:        depth,
	})
	n.prevSnap = cur
}

// deliverCF1All delivers the encoded first control-field set to every
// subscriber not waiting for CF2. It is the body of the event kernel's
// CF1 delivery event, and the compiled executor's slow CF1 action.
func (n *Network) deliverCF1All(air []byte, layout Layout) {
	for _, e := range n.subs {
		if e.sub.State() == StateIdle || e.listensCF2 {
			continue
		}
		n.deliverCF(e, air, layout)
	}
}

// deliverCF2All builds, announces, and delivers the second control-field
// set: the body of the event kernel's CF2 delivery event, and the
// compiled executor's slow CF2 action. BuildCF2 is not idempotent (its
// amendments grant slots), so anything that has already called it must
// use deliverCF2Wire instead.
func (n *Network) deliverCF2All(layout Layout) {
	cf2 := n.base.BuildCF2()
	n.announceCF2Amendments()
	n.deliverCF2Wire(cf2, layout)
}

// announceCF2Amendments traces the GPS grants added for users admitted
// after CF1 (announced at CF2 delivery, used later this same cycle).
func (n *Network) announceCF2Amendments() {
	if !n.tracing() {
		return
	}
	for _, a := range n.base.CF2Amendments() {
		n.trace(EventGPSSlotGrant, a.User, a.Slot, "cf2-amend")
	}
}

// deliverCF2Wire encodes a built CF2 set and delivers it through each
// listener's forward channel.
func (n *Network) deliverCF2Wire(cf2 *frame.ControlFields, layout Layout) {
	cf2Air, err := n.codec.EncodeControlFieldsTo(n.cf2Buf[:0], cf2)
	if err != nil {
		n.fail("control field encode", err)
		return
	}
	n.cf2Buf = cf2Air
	for _, e := range n.subs {
		if e.sub.State() == StateIdle || !e.listensCF2 {
			continue
		}
		n.metrics.CF2Listens.Inc()
		n.deliverCF(e, cf2Air, layout)
	}
}

// deliverCF passes a control-field transmission through one subscriber's
// forward link and hands the result to its state machine.
func (n *Network) deliverCF(e *subEntry, air []byte, layout Layout) {
	n.rxBuf = frame.TransmitTo(n.rxBuf[:0], air, e.fwdModel, e.chanRNG)
	cf, err := n.codec.DecodeControlFields(n.rxBuf)
	if err != nil {
		n.metrics.CFDecodeFailures.Inc()
		n.trace(EventCFDecodeFailed, e.sub.ID(), -1, "")
		e.plan = e.sub.OnCycleNoSchedule()
		e.hasPlan = true
		e.planCycle = n.cycle - 1
		return
	}
	e.plan = e.sub.OnControlFields(cf, layout, n.sim.Now())
	e.hasPlan = true
	e.planCycle = n.cycle - 1
	e.sub.ObservePaging(cf)
	n.maybeStartSources(e)
}

// maybeStartSources launches traffic generation once a subscriber
// becomes active.
func (n *Network) maybeStartSources(e *subEntry) {
	if e.sub.State() != StateActive {
		return
	}
	if e.sub.IsGPS && !e.gpsOn {
		e.gpsOn = true
		phase := time.Duration(e.chanRNG.Intn(int(n.cfg.GPSPeriod)))
		var tick func()
		tick = func() {
			if e.sub.State() != StateActive {
				e.gpsOn = false
				return
			}
			n.metrics.GPSGenerated.Inc()
			if !e.sub.AddGPSReport(n.sim.Now()) {
				// The previous report was never sent: stale, dropped.
				n.metrics.GPSLost.Inc()
				n.metrics.GPSDeadlineViolations.Inc()
				n.trace(EventGPSDeadlineViolation, e.sub.ID(), -1,
					"stale: previous report replaced before it could be transmitted")
			}
			n.trace(EventGPSQueued, e.sub.ID(), -1, "")
			n.sim.After(n.cfg.GPSPeriod, tick)
		}
		n.sim.After(phase, tick)
	}
	if !e.sub.IsGPS && e.traffic != nil && !e.trafficOn {
		e.trafficOn = true
		var arrive func()
		arrive = func() {
			if e.sub.State() != StateActive {
				e.trafficOn = false
				return
			}
			now := n.sim.Now()
			msg := e.traffic.NewMessage(now)
			// The MAC-level message ID assigned by AddMessage, captured
			// before the call so trace events match data-packet headers.
			macID := e.sub.NextMsgID()
			if e.sub.AddMessage(msg.Bytes, now) {
				n.metrics.MessagesGenerated.Inc()
				n.metrics.BytesGenerated.Addn(uint64(msg.Bytes))
				n.metrics.PerUserGenerated[e.sub.ID()] += uint64(msg.Bytes)
				n.msgMeta[msgKey(e.sub.ID(), uint16(msg.ID))] = msgMeta{createdAt: now, bytes: msg.Bytes}
				if n.tracing() {
					n.traceD(EventMessageQueued, e.sub.ID(), -1,
						DetailMsgBytes, int64(macID), int64(msg.Bytes), 0)
				}
			} else {
				n.metrics.MessagesDropped.Inc()
				if n.tracing() {
					n.traceD(EventMessageDropped, e.sub.ID(), -1,
						DetailQueueFull, int64(msg.Bytes), 0, 0)
				}
			}
			n.sim.After(e.traffic.NextGap(), arrive)
		}
		n.sim.After(e.traffic.NextGap(), arrive)
	}
}

// gpsSlotStart resolves one GPS slot: the holder transmits its pending
// report, if one arrived before the slot began.
func (n *Network) gpsSlotStart(cf *frame.ControlFields, slot int, txStart time.Duration) {
	holder := cf.GPSSchedule[slot]
	if holder == frame.NoUser {
		return
	}
	e := n.byID(holder)
	if e == nil || !e.hasPlan || e.planCycle != n.cycle-1 || e.plan.GPSSlot != slot {
		return
	}
	if _, pending := e.sub.GPSPendingSince(); !pending {
		return
	}
	rep, arrival, ok := e.sub.MakeGPSReport()
	if !ok {
		return
	}
	delay := txStart - arrival
	n.metrics.GPSAccessDelay.AddDuration(delay)
	if delay > phy.GPSAccessDeadline {
		n.metrics.GPSDeadlineViolations.Inc()
		if n.tracing() {
			n.traceD(EventGPSDeadlineViolation, holder, slot,
				DetailGPSLate, int64(delay), int64(phy.GPSAccessDeadline), 0)
		}
	}
	body, err := rep.Marshal()
	if err != nil {
		return
	}
	// GPS packets carry 72 information bits in 256 coded bits — a rate
	// ~0.28 code comparable in strength to the RS(64,48) protecting data
	// slots. Model that protection by tolerating the same number of
	// corrupted bytes as the RS correction radius; heavier corruption
	// (the burst regime) loses the report, which is never retransmitted.
	rx := append([]byte(nil), body...)
	changed := 0
	if e.revModel != nil {
		changed = e.revModel.Corrupt(rx, e.chanRNG)
	}
	if changed > gpsCorrectableBytes {
		n.metrics.GPSLost.Inc()
		n.trace(EventGPSLost, holder, slot, "channel burst")
		return
	}
	if _, ok := n.base.RecordGPS(body); ok && n.tracing() {
		n.traceD(EventGPSRx, holder, slot, DetailGPSDelay, int64(delay), 0, 0)
	}
}

// gpsCorrectableBytes is the error tolerance credited to the GPS
// packet's heavy channel code (matched to the RS t=8 of data slots).
const gpsCorrectableBytes = 8

// dataSlotEnd resolves one reverse data slot: scheduled owner and/or
// contenders transmit; collisions destroy everything.
func (n *Network) dataSlotEnd(cycle, slot int, isLast, contention bool) {
	// The last slot of cycle k lands after cycle k+1 began; its ACK
	// belongs to the previous ACK window.
	intoPrev := cycle != n.cycle-1

	type tx struct {
		e    *subEntry
		info []byte
	}
	var txs []tx
	for _, e := range n.subs {
		if !e.hasPlan || e.planCycle != cycle {
			continue
		}
		if !contention {
			for _, s := range e.plan.DataSlots {
				if s == slot {
					if pkt := e.sub.MakeDataPacket(slot); pkt != nil {
						info, err := pkt.Marshal()
						if err == nil {
							txs = append(txs, tx{e: e, info: info})
							n.metrics.FragmentsSent.Inc()
						}
					}
				}
			}
		}
		if e.plan.ContentionSlot == slot {
			info, err := e.sub.MakeContentionPacket()
			if err == nil && info != nil {
				txs = append(txs, tx{e: e, info: info})
				if n.tracing() {
					n.trace(EventContentionTx, e.sub.ID(), slot, e.plan.ContentionKind.String())
				}
			}
		}
	}

	payloads := make([][]byte, 0, len(txs))
	for _, t := range txs {
		cw, err := n.codec.EncodePayloadTo(n.encBuf[:0], t.info)
		if err != nil {
			continue
		}
		n.encBuf = cw
		n.rxBuf = frame.TransmitTo(n.rxBuf[:0], cw, t.e.revModel, t.e.chanRNG)
		// decoded escapes into payloads, so it keeps its own allocation.
		decoded, err := n.codec.DecodePayload(n.rxBuf)
		if err != nil {
			payloads = append(payloads, nil) // loss
			continue
		}
		payloads = append(payloads, decoded)
	}

	out := n.base.RecordReverse(slot, intoPrev, isLast, payloads, contention)
	if out.Collision && n.tracing() {
		n.traceD(EventCollision, frame.NoUser, slot, DetailCollision, int64(len(payloads)), 0, 0)
	}
	if out.Received == nil && !out.Collision && len(payloads) == 1 && !contention {
		n.trace(EventDataLost, frame.NoUser, slot, "rs decode failure")
	}
	n.handleOutcome(out, cycle, slot)
}

// handleOutcome turns base-station reception outcomes into metrics.
// slot is the reverse data slot the reception arrived in, so span
// stitching can attribute receptions to schedule grants.
func (n *Network) handleOutcome(out ReverseOutcome, cycle, slot int) {
	if out.Received == nil {
		return
	}
	now := n.sim.Now()
	switch out.Received.Type {
	case frame.TypeData:
		h := out.Received.Data.Header
		if n.tracing() {
			n.traceD(EventDataRx, h.User, slot, DetailDataFrag, int64(h.MsgID), int64(h.Frag)+1, int64(h.FragTotal))
			if h.MoreSlots > 0 {
				n.traceD(EventPiggybackRx, h.User, slot, DetailPiggyback, int64(h.MoreSlots), 0, 0)
			}
		}
		n.noteDemandHeard(h.User, now)
		if out.MessageComplete {
			key := msgKey(out.User, out.MsgID)
			if meta, ok := n.msgMeta[key]; ok {
				n.metrics.MessagesDelivered.Inc()
				n.metrics.MessageDelay.AddDuration(now - meta.createdAt)
				if n.tracing() {
					n.traceD(EventMessageComplete, out.User, slot,
						DetailMsgComplete, int64(out.MsgID), int64(out.Bytes), int64(now-meta.createdAt))
				}
				delete(n.msgMeta, key)
			}
			if n.OnUplinkComplete != nil {
				n.OnUplinkComplete(out.User, out.MsgID, out.Bytes)
			}
		}
	case frame.TypeReservation:
		r := out.Received.Reservation
		if n.tracing() {
			if r.Slots == 0 {
				n.trace(EventPageResponse, r.User, slot, "")
			} else {
				n.traceD(EventReservationRx, r.User, slot, DetailSlots, int64(r.Slots), 0, 0)
			}
		}
		n.noteDemandHeard(r.User, now)
	case frame.TypeRegistration:
		if n.tracing() {
			n.traceD(EventRegistrationRx, frame.NoUser, slot, DetailEIN, int64(out.Received.Register.EIN), 0, 0)
		}
		if out.NewRegistration {
			if n.tracing() {
				n.traceD(EventRegistered, out.AssignedID, slot, DetailEIN, int64(out.Received.Register.EIN), 0, 0)
				if out.Received.Register.WantGPS {
					n.traceD(EventGPSAdmitted, out.AssignedID, n.base.GPSTable().SlotOf(out.AssignedID),
						DetailEIN, int64(out.Received.Register.EIN), 0, 0)
				}
			}
			if e, ok := n.byEIN[out.Received.Register.EIN]; ok {
				n.metrics.RegistrationLatency.Add(float64(e.sub.RegistrationCycles(cycle)))
			}
		}
	}
}

// noteDemandHeard closes the reservation-latency clock for a user whose
// demand just reached the base station.
func (n *Network) noteDemandHeard(user frame.UserID, now time.Duration) {
	e := n.byID(user)
	if e == nil {
		return
	}
	if since, ok := e.sub.NeedSince(); ok {
		n.metrics.ReservationLatency.AddDuration(now - since)
		e.sub.ClearNeed()
	}
}

// forwardSlotEnd delivers one forward data slot to its scheduled user.
// slot is the forward slot index (traced so span stitching can verify
// forward-channel constraints like the CF2-listener slot-0 exclusion).
func (n *Network) forwardSlotEnd(slot int, user frame.UserID) {
	pkt := n.base.PopForward(user)
	if pkt == nil {
		return
	}
	n.metrics.ForwardPktsSent.Inc()
	e := n.byID(user)
	if e == nil || !e.hasPlan || e.planCycle != n.cycle-1 {
		return // subscriber missed the control fields: not listening
	}
	info, err := pkt.Marshal()
	if err != nil {
		return
	}
	cw, err := n.codec.EncodePayloadTo(n.encBuf[:0], info)
	if err != nil {
		return
	}
	n.encBuf = cw
	n.rxBuf = frame.TransmitTo(n.rxBuf[:0], cw, e.fwdModel, e.chanRNG)
	// decoded may be aliased by the parsed packet below: keep it owned.
	decoded, err := n.codec.DecodePayload(n.rxBuf)
	if err != nil {
		return
	}
	parsed, err := frame.UnmarshalPacket(decoded)
	if err != nil || parsed.Type != frame.TypeData {
		return
	}
	n.metrics.ForwardPktsDelivered.Inc()
	if n.tracing() {
		n.traceD(EventForwardTx, user, slot, DetailForwardFrag, int64(parsed.Data.Header.MsgID), int64(parsed.Data.Header.Frag), 0)
	}
	if done, msgID, _ := e.sub.ReceiveForward(parsed.Data); done {
		delete(n.fwdMeta, fwdKey(user, msgID))
	}
}

// byID finds the entry of an active subscriber by user ID.
func (n *Network) byID(user frame.UserID) *subEntry {
	if user == frame.NoUser {
		return nil
	}
	for _, e := range n.subs {
		if e.sub.State() == StateActive && e.sub.ID() == user {
			return e
		}
	}
	return nil
}

func msgKey(user frame.UserID, msgID uint16) uint32 {
	return uint32(user)<<16 | uint32(msgID)
}

func fwdKey(user frame.UserID, msgID uint16) uint32 {
	return uint32(user)<<16 | uint32(msgID)
}
