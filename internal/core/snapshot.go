package core

import (
	"encoding/json"

	"github.com/osu-netlab/osumac/internal/phy"
)

// Snapshot is a flat, JSON-serializable summary of a run's metrics, for
// dashboards and offline analysis.
type Snapshot struct {
	Cycles int `json:"cycles"`

	MessagesGenerated uint64  `json:"messagesGenerated"`
	MessagesDelivered uint64  `json:"messagesDelivered"`
	MessagesDropped   uint64  `json:"messagesDropped"`
	BytesGenerated    uint64  `json:"bytesGenerated"`
	BytesDelivered    uint64  `json:"bytesDelivered"`
	FragmentsSent     uint64  `json:"fragmentsSent"`
	FragmentsLost     uint64  `json:"fragmentsLost"`
	Utilization       float64 `json:"utilization"`
	PayloadUtil       float64 `json:"payloadUtilization"`

	DelayMeanCycles float64 `json:"delayMeanCycles"`
	DelayP95Cycles  float64 `json:"delayP95Cycles"`
	DelayMaxCycles  float64 `json:"delayMaxCycles"`

	CollisionProbability float64 `json:"collisionProbability"`
	ReservationLatencyS  float64 `json:"reservationLatencySeconds"`
	ControlOverhead      float64 `json:"controlOverhead"`
	ContentionSlotsOpen  uint64  `json:"contentionSlotsOpen"`
	ContentionSlotsUsed  uint64  `json:"contentionSlotsUsed"`
	ContentionCollisions uint64  `json:"contentionCollisions"`

	Fairness      float64 `json:"fairness"`
	FairnessBytes float64 `json:"fairnessBytes"`
	SecondCFGain  float64 `json:"secondCFGain"`
	DataSlotsUsed float64 `json:"meanDataSlotsUsedPerCycle"`

	RegistrationsApproved uint64  `json:"registrationsApproved"`
	RegistrationsFailed   uint64  `json:"registrationsFailed"`
	RegWithin2            float64 `json:"registrationWithin2Cycles"`
	RegWithin10           float64 `json:"registrationWithin10Cycles"`
	PageResponses         uint64  `json:"pageResponses"`

	GPSGenerated        uint64  `json:"gpsGenerated"`
	GPSDelivered        uint64  `json:"gpsDelivered"`
	GPSLost             uint64  `json:"gpsLost"`
	GPSMeanDelayS       float64 `json:"gpsMeanDelaySeconds"`
	GPSMaxDelayS        float64 `json:"gpsMaxDelaySeconds"`
	GPSViolations       uint64  `json:"gpsDeadlineViolations"`
	CFDecodeFailures    uint64  `json:"cfDecodeFailures"`
	CF2Listens          uint64  `json:"cf2Listens"`
	ForwardSent         uint64  `json:"forwardPacketsSent"`
	ForwardDelivered    uint64  `json:"forwardPacketsDelivered"`
	ReverseDataPackets  uint64  `json:"reverseDataPackets"`
	ReservationPackets  uint64  `json:"reservationPackets"`
	PiggybackRequests   uint64  `json:"piggybackRequests"`
	LastSlotDataPackets uint64  `json:"lastSlotDataPackets"`
}

// Snapshot flattens the metric bundle.
func (m *Metrics) Snapshot() Snapshot {
	cyc := phy.CycleLength.Seconds()
	return Snapshot{
		Cycles:            m.Cycles,
		MessagesGenerated: m.MessagesGenerated.Value(),
		MessagesDelivered: m.MessagesDelivered.Value(),
		MessagesDropped:   m.MessagesDropped.Value(),
		BytesGenerated:    m.BytesGenerated.Value(),
		BytesDelivered:    m.BytesDelivered.Value(),
		FragmentsSent:     m.FragmentsSent.Value(),
		FragmentsLost:     m.FragmentsLost.Value(),
		Utilization:       m.Utilization(),
		PayloadUtil:       m.PayloadUtilization(),

		DelayMeanCycles: m.MeanDelayCycles(phy.CycleLength),
		DelayP95Cycles:  m.MessageDelay.Percentile(95) / cyc,
		DelayMaxCycles:  m.MessageDelay.Max() / cyc,

		CollisionProbability: m.CollisionProbability(),
		ReservationLatencyS:  m.ReservationLatency.Mean(),
		ControlOverhead:      m.ControlOverhead(),
		ContentionSlotsOpen:  m.ContentionSlotsOpen.Value(),
		ContentionSlotsUsed:  m.ContentionSlotsUsed.Value(),
		ContentionCollisions: m.ContentionCollisions.Value(),

		Fairness:      m.Fairness(),
		FairnessBytes: m.FairnessBytes(),
		SecondCFGain:  m.SecondCFGain(),
		DataSlotsUsed: m.MeanDataSlotsUsed(),

		RegistrationsApproved: m.RegistrationsApproved.Value(),
		RegistrationsFailed:   m.RegistrationsFailed.Value(),
		RegWithin2:            m.RegistrationWithin(2),
		RegWithin10:           m.RegistrationWithin(10),
		PageResponses:         m.PageResponses.Value(),

		GPSGenerated:        m.GPSGenerated.Value(),
		GPSDelivered:        m.GPSDelivered.Value(),
		GPSLost:             m.GPSLost.Value(),
		GPSMeanDelayS:       m.GPSAccessDelay.Mean(),
		GPSMaxDelayS:        m.GPSAccessDelay.Max(),
		GPSViolations:       m.GPSDeadlineViolations.Value(),
		CFDecodeFailures:    m.CFDecodeFailures.Value(),
		CF2Listens:          m.CF2Listens.Value(),
		ForwardSent:         m.ForwardPktsSent.Value(),
		ForwardDelivered:    m.ForwardPktsDelivered.Value(),
		ReverseDataPackets:  m.ReverseDataPkts.Value(),
		ReservationPackets:  m.ReservationPackets.Value(),
		PiggybackRequests:   m.PiggybackRequests.Value(),
		LastSlotDataPackets: m.LastSlotDataPkts.Value(),
	}
}

// JSON renders the snapshot with indentation.
func (m *Metrics) JSON() ([]byte, error) {
	return json.MarshalIndent(m.Snapshot(), "", "  ")
}
