package core

import (
	"sort"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
	"github.com/osu-netlab/osumac/internal/stats"
)

// This file implements the compiled-cycle executor: a precompiled
// slot-action table per (reverse format) that replaces the event
// kernel's per-slot heap events with a tight table walk. A cycle whose
// template activates "fast" skips the wire round-trips an ideal channel
// cannot change (control-field encode → transmit → decode, packet
// marshal → RS encode → RS decode → unmarshal) and dispatches each slot
// straight into the protocol handlers. Anything the template cannot
// prove ahead of time — a lossy channel model, a planned contention
// transmission, a CF2 schedule amendment, a reverse-format switch —
// deactivates the fast path for the rest of the cycle: the remaining
// actions still fire from the table at identical (time, priority,
// sequence) coordinates, but run the exact event-kernel handlers. The
// two engines are observationally identical (traces, metrics, RNG
// streams); the differential fuzz target in the root package proves it.

// slotOp classifies one compiled slot action.
type slotOp uint8

const (
	opCF1 slotOp = iota
	opCF2
	opGPS
	opData
	opForward
)

// templAction is one precompiled action: what to do, where, and at
// which offset from the cycle start.
type templAction struct {
	op     slotOp
	slot   int           // slot index (-1 for control fields)
	at     time.Duration // offset from the cycle's t0
	pri    sim.Priority
	isLast bool // last reverse data slot of the cycle
}

// cycleTemplate is the compiled form of one reverse format's cycle:
// sched lists the actions in the event kernel's scheduling order (the
// sequence-reservation order), exec re-orders them by firing time.
type cycleTemplate struct {
	format ReverseFormat
	sched  []templAction
	exec   []int // sched indices sorted by (at, pri, sched index)
}

// maxTemplateActions bounds a template: CF1 + CF2 + GPS + reverse data
// + forward data slots.
const maxTemplateActions = 2 + frame.GPSScheduleEntries +
	frame.ReverseScheduleEntries + frame.ForwardScheduleEntries

// buildTemplate compiles one reverse format's slot layout into an
// action table. It mirrors beginCycle's scheduling order exactly: CF1,
// CF2, GPS slots, reverse data slots, forward slots.
func buildTemplate(format ReverseFormat) *cycleTemplate {
	layout := NewLayout(format)
	t := &cycleTemplate{format: format}
	t.sched = append(t.sched,
		templAction{op: opCF1, slot: -1, at: layout.CF1.End, pri: sim.PriorityDeliver},
		templAction{op: opCF2, slot: -1, at: layout.CF2.End, pri: sim.PriorityDeliver})
	for i, iv := range layout.GPS {
		t.sched = append(t.sched, templAction{op: opGPS, slot: i, at: iv.Start, pri: sim.PriorityLate})
	}
	for i, iv := range layout.ReverseData {
		t.sched = append(t.sched, templAction{
			op: opData, slot: i, at: iv.End, pri: sim.PriorityDeliver,
			isLast: i == layout.LastDataSlot(),
		})
	}
	for i, iv := range layout.ForwardData {
		t.sched = append(t.sched, templAction{op: opForward, slot: i, at: iv.End, pri: sim.PriorityDeliver})
	}
	t.exec = make([]int, len(t.sched))
	for i := range t.exec {
		t.exec[i] = i
	}
	// Stable sort: ties on (at, pri) keep scheduling order, which is
	// ascending-sequence order, so exec is the exact firing order.
	sort.SliceStable(t.exec, func(a, b int) bool {
		x, y := &t.sched[t.exec[a]], &t.sched[t.exec[b]]
		if x.at != y.at {
			return x.at < y.at
		}
		return x.pri < y.pri
	})
	return t
}

// compiledInstance is one cycle bound to a template: the cycle's t0,
// control fields, reserved kernel sequence numbers, and a cursor over
// the active actions. Two instances suffice: a cycle's only action past
// the next cycle's activation is its overlapping last reverse data slot.
type compiledInstance struct {
	tmpl   *cycleTemplate
	cycle  int
	t0     time.Duration
	layout Layout
	cf1    *frame.ControlFields // live pointer: CF2 amendments are visible
	cf1Air []byte               // encoded CF1, for the slow delivery path
	fast   bool
	inUse  bool
	pos    int // index into tmpl.exec of the next active action

	active     [maxTemplateActions]bool
	seqs       [maxTemplateActions]uint64
	contention [frame.ReverseScheduleEntries]bool
	fwdUsers   [frame.ForwardScheduleEntries]frame.UserID
}

// head returns the instance's next action coordinates.
func (ci *compiledInstance) head() (time.Duration, sim.Priority, uint64) {
	si := ci.tmpl.exec[ci.pos]
	a := &ci.tmpl.sched[si]
	return ci.t0 + a.at, a.pri, ci.seqs[si]
}

// advance moves the cursor to the next active action, releasing the
// instance when the cycle is drained.
func (ci *compiledInstance) advance() {
	for ci.pos++; ci.pos < len(ci.tmpl.exec); ci.pos++ {
		if ci.active[ci.tmpl.exec[ci.pos]] {
			return
		}
	}
	ci.inUse = false
}

// compiledSource feeds compiled cycles into the kernel's main loop as a
// sim.ActionSource. Templates are cached per reverse format and
// invalidated only by the format switching (the switch cycle itself
// runs slow).
type compiledSource struct {
	n          *Network
	inst       [2]compiledInstance
	tmplF1     *cycleTemplate
	tmplF2     *cycleTemplate
	lastFormat ReverseFormat
}

var _ sim.ActionSource = (*compiledSource)(nil)

// newCompiledSource returns an executor for n. The caller attaches it
// to the kernel.
func newCompiledSource(n *Network) *compiledSource {
	return &compiledSource{n: n}
}

// templateFor returns the cached template for a format, compiling it on
// first use.
func (cs *compiledSource) templateFor(f ReverseFormat) *cycleTemplate {
	if f == Format1 {
		if cs.tmplF1 == nil {
			cs.tmplF1 = buildTemplate(Format1)
		}
		return cs.tmplF1
	}
	if cs.tmplF2 == nil {
		cs.tmplF2 = buildTemplate(Format2)
	}
	return cs.tmplF2
}

// activate binds a free instance to cycle k and reserves its kernel
// sequence numbers in the exact order beginCycle's event path would
// have scheduled them, so compiled and event cycles interleave
// identically. It reports false when both instances are still busy (the
// caller then schedules the cycle through plain heap events, which is
// sequence-equivalent). Conditions known at activation time — a lossy
// channel model somewhere, a reverse-format switch — deactivate the
// fast path up front; the cycle still runs off the table via the slow
// handlers.
func (cs *compiledSource) activate(k int, t0 time.Duration, layout Layout, cf1 *frame.ControlFields, cf1Air []byte) bool {
	var ci *compiledInstance
	for i := range cs.inst {
		if !cs.inst[i].inUse {
			ci = &cs.inst[i]
			break
		}
	}
	if ci == nil {
		return false
	}
	n := cs.n
	fast := true
	if cs.lastFormat != 0 && cs.lastFormat != layout.Format {
		n.metrics.CompiledRecompiles.Inc()
		n.metrics.CompiledFallbackFormat.Inc()
		fast = false
	}
	cs.lastFormat = layout.Format
	if !n.allIdeal {
		n.metrics.CompiledFallbackLoss.Inc()
		fast = false
	}
	n.metrics.CompiledCycles.Inc()
	if !fast {
		n.metrics.CompiledFallbacks.Inc()
	}

	ci.tmpl = cs.templateFor(layout.Format)
	ci.cycle = k
	ci.t0 = t0
	ci.layout = layout
	ci.cf1 = cf1
	ci.cf1Air = cf1Air
	ci.fast = fast
	ci.inUse = true
	for i := range ci.contention {
		ci.contention[i] = i < len(layout.ReverseData) && cf1.ReverseSchedule[i] == frame.NoUser
	}
	ci.fwdUsers = cf1.ForwardSchedule
	for si := range ci.tmpl.sched {
		a := &ci.tmpl.sched[si]
		act := a.op != opForward || cf1.ForwardSchedule[a.slot] != frame.NoUser
		ci.active[si] = act
		if act {
			ci.seqs[si] = n.sim.ReserveSeq()
		}
	}
	ci.pos = -1
	ci.advance()
	return true
}

// pick returns the instance whose next action fires first, or nil.
func (cs *compiledSource) pick() *compiledInstance {
	var best *compiledInstance
	for i := range cs.inst {
		ci := &cs.inst[i]
		if !ci.inUse {
			continue
		}
		if best == nil {
			best = ci
			continue
		}
		at, p, seq := ci.head()
		bat, bp, bseq := best.head()
		if at < bat || (at == bat && (p < bp || (p == bp && seq < bseq))) {
			best = ci
		}
	}
	return best
}

// PeekAction implements sim.ActionSource.
func (cs *compiledSource) PeekAction() (time.Duration, sim.Priority, uint64, bool) {
	best := cs.pick()
	if best == nil {
		return 0, 0, 0, false
	}
	at, p, seq := best.head()
	return at, p, seq, true
}

// FireAction implements sim.ActionSource: it executes the earliest
// pending action. The cursor advances first so handlers that inspect
// the instance (fallback, delivery) see a consistent state.
func (cs *compiledSource) FireAction() {
	ci := cs.pick()
	if ci == nil {
		return
	}
	a := ci.tmpl.sched[ci.tmpl.exec[ci.pos]]
	ci.advance()
	n := cs.n
	switch a.op {
	case opCF1:
		n.fireControlCF1(ci)
	case opCF2:
		n.fireControlCF2(ci)
	default:
		if ci.fast {
			n.SimulationCycle(ci, a)
		} else {
			n.runSlowAction(ci, a)
		}
	}
}

// compiledFallback deactivates an instance's fast path for the rest of
// its cycle, counting the reason. Reasons are counted independently;
// CompiledFallbacks increments once per cycle on the fast→slow edge.
func (n *Network) compiledFallback(ci *compiledInstance, reason *stats.Counter) {
	reason.Inc()
	if ci.fast {
		ci.fast = false
		n.metrics.CompiledFallbacks.Inc()
	}
}

// anyContentionPlanned reports whether any subscriber's current-cycle
// plan includes a contention transmission — the intra-cycle surprise
// the fast data-slot handler cannot model (collisions and backoff need
// the full wire path).
func (n *Network) anyContentionPlanned() bool {
	for _, e := range n.subs {
		if e.hasPlan && e.planCycle == n.cycle-1 && e.plan.ContentionSlot >= 0 {
			return true
		}
	}
	return false
}

// fireControlCF1 delivers the first control-field set. Fast mode hands
// every listener the shared decoded struct (an ideal channel's
// decode∘encode is the identity, and no subscriber mutates or retains
// it); plans that came back with a contention transmission deactivate
// the fast path before any data slot fires.
func (n *Network) fireControlCF1(ci *compiledInstance) {
	if !ci.fast {
		n.deliverCF1All(ci.cf1Air, ci.layout)
		return
	}
	for _, e := range n.subs {
		if e.sub.State() == StateIdle || e.listensCF2 {
			continue
		}
		n.deliverCFDirect(e, ci.cf1, ci.layout)
	}
	if n.anyContentionPlanned() {
		n.compiledFallback(ci, &n.metrics.CompiledFallbackContention)
	}
}

// fireControlCF2 builds and delivers the second control-field set.
// BuildCF2 is not idempotent (amendments grant GPS slots), so it runs
// exactly once here; a fallback triggered at CF2 (amendment, or a CF2
// listener planning contention) reverts delivery to the wire path for
// this set and the slow handlers for the remaining slots. A CF2
// listener's contention slot always starts after CF2 plus the switch
// guard (pickContentionSlot enforces it), so no already-fired fast slot
// could have been its target.
func (n *Network) fireControlCF2(ci *compiledInstance) {
	if !ci.fast {
		n.deliverCF2All(ci.layout)
		return
	}
	cf2 := n.base.BuildCF2()
	n.announceCF2Amendments()
	if len(n.base.CF2Amendments()) > 0 {
		n.compiledFallback(ci, &n.metrics.CompiledFallbackAmendment)
	}
	if !ci.fast {
		n.deliverCF2Wire(cf2, ci.layout)
		return
	}
	for _, e := range n.subs {
		if e.sub.State() == StateIdle || !e.listensCF2 {
			continue
		}
		n.metrics.CF2Listens.Inc()
		n.deliverCFDirect(e, cf2, ci.layout)
	}
	if n.anyContentionPlanned() {
		n.compiledFallback(ci, &n.metrics.CompiledFallbackContention)
	}
}

// deliverCFDirect is deliverCF minus the wire: the fast path hands the
// subscriber the already-built control fields. Identical to a clean
// decode because OnControlFields and ObservePaging only read the
// struct.
func (n *Network) deliverCFDirect(e *subEntry, cf *frame.ControlFields, layout Layout) {
	e.plan = e.sub.OnControlFields(cf, layout, n.sim.Now())
	e.hasPlan = true
	e.planCycle = n.cycle - 1
	e.sub.ObservePaging(cf)
	n.maybeStartSources(e)
}

// runSlowAction dispatches one action through the event kernel's slot
// handlers — the fallback body, byte-identical to the event path.
func (n *Network) runSlowAction(ci *compiledInstance, a templAction) {
	switch a.op {
	case opGPS:
		n.gpsSlotStart(ci.cf1, a.slot, ci.t0+a.at)
	case opData:
		n.dataSlotEnd(ci.cycle, a.slot, a.isLast, ci.contention[a.slot])
	case opForward:
		n.forwardSlotEnd(a.slot, ci.fwdUsers[a.slot])
	}
}

// SimulationCycle dispatches one fast slot action. It is the compiled
// executor's hot inner loop and a hotpathalloc root: with tracing off
// it must not allocate.
func (n *Network) SimulationCycle(ci *compiledInstance, a templAction) {
	switch a.op {
	case opGPS:
		n.fastGPSSlot(ci, a.slot, ci.t0+a.at)
	case opData:
		n.fastDataSlot(ci, a.slot, a.isLast)
	case opForward:
		n.fastForwardSlot(ci, a.slot)
	}
}

// fastGPSSlot is gpsSlotStart minus the wire: the report cannot be
// corrupted (ideal channel, zero RNG draws either way) and its
// marshal/unmarshal round-trip is the identity for protocol-built
// reports.
func (n *Network) fastGPSSlot(ci *compiledInstance, slot int, txStart time.Duration) {
	holder := ci.cf1.GPSSchedule[slot]
	if holder == frame.NoUser {
		return
	}
	e := n.byID(holder)
	if e == nil || !e.hasPlan || e.planCycle != n.cycle-1 || e.plan.GPSSlot != slot {
		return
	}
	arrival, ok := e.sub.MakeGPSReportInto(&n.scratchGPS)
	if !ok {
		return
	}
	delay := txStart - arrival
	n.metrics.GPSAccessDelay.AddDuration(delay)
	if delay > phy.GPSAccessDeadline {
		n.metrics.GPSDeadlineViolations.Inc()
		if n.tracing() {
			n.traceD(EventGPSDeadlineViolation, holder, slot,
				DetailGPSLate, int64(delay), int64(phy.GPSAccessDeadline), 0)
		}
	}
	if n.base.RecordGPSDirect(&n.scratchGPS) {
		if n.tracing() {
			n.traceD(EventGPSRx, holder, slot, DetailGPSDelay, int64(delay), 0, 0)
		}
	}
}

// fastDataSlot is dataSlotEnd minus the wire. Fast mode guarantees no
// contention transmission is planned, so a contention slot is silent
// (RecordReverse with zero payloads is a no-op) and a scheduled slot
// carries at most its owner's packet, which survives the ideal channel
// bit-for-bit.
func (n *Network) fastDataSlot(ci *compiledInstance, slot int, isLast bool) {
	if ci.contention[slot] {
		return
	}
	owner := ci.cf1.ReverseSchedule[slot]
	e := n.byID(owner)
	if e == nil || !e.hasPlan || e.planCycle != ci.cycle {
		return
	}
	granted := false
	for _, s := range e.plan.DataSlots {
		if s == slot {
			granted = true
			break
		}
	}
	if !granted {
		return
	}
	if !e.sub.MakeDataPacketInto(slot, &n.scratchData, n.scratchPayload[:]) {
		return
	}
	n.metrics.FragmentsSent.Inc()
	n.scratchPkt.Type = frame.TypeData
	n.scratchPkt.Data = &n.scratchData
	intoPrev := ci.cycle != n.cycle-1
	out := n.base.recordPacket(slot, intoPrev, isLast, &n.scratchPkt, false)
	n.handleOutcome(out, ci.cycle, slot)
}

// fastForwardSlot is forwardSlotEnd minus the wire: the queued packet
// reaches the subscriber unchanged, and ReceiveForward reads only the
// header and payload length, which the marshal round-trip preserves.
func (n *Network) fastForwardSlot(ci *compiledInstance, slot int) {
	user := ci.fwdUsers[slot]
	pkt := n.base.PopForward(user)
	if pkt == nil {
		return
	}
	n.metrics.ForwardPktsSent.Inc()
	e := n.byID(user)
	if e == nil || !e.hasPlan || e.planCycle != n.cycle-1 {
		return // subscriber missed the control fields: not listening
	}
	n.metrics.ForwardPktsDelivered.Inc()
	if n.tracing() {
		n.traceD(EventForwardTx, user, slot, DetailForwardFrag, int64(pkt.Header.MsgID), int64(pkt.Header.Frag), 0)
	}
	if done, msgID, _ := e.sub.ReceiveForward(pkt); done {
		delete(n.fwdMeta, fwdKey(user, msgID))
	}
}
