package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, v := range []float64{4, 1, 3, 2} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !almost(s.Sum(), 10) || !almost(s.Mean(), 2.5) {
		t.Fatalf("Sum/Mean = %v/%v", s.Sum(), s.Mean())
	}
	if !almost(s.Min(), 1) || !almost(s.Max(), 4) {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleVarianceStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if !almost(s.Variance(), 4) {
		t.Fatalf("Variance = %v, want 4", s.Variance())
	}
	if !almost(s.StdDev(), 2) {
		t.Fatalf("StdDev = %v, want 2", s.StdDev())
	}
	var one Sample
	one.Add(5)
	if one.Variance() != 0 {
		t.Fatal("single observation variance should be 0")
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if !almost(s.Percentile(0), 1) || !almost(s.Percentile(100), 100) {
		t.Fatal("extreme percentiles wrong")
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 0.01 {
		t.Fatalf("p50 = %v, want ~50.5", got)
	}
	if got := s.Percentile(99); got < 99 || got > 100 {
		t.Fatalf("p99 = %v", got)
	}
}

func TestPercentileInterleavedWithAdd(t *testing.T) {
	// Percentile sorts internally; adding afterwards must still work.
	var s Sample
	s.Add(3)
	s.Add(1)
	_ = s.Percentile(50)
	s.Add(2)
	if !almost(s.Percentile(50), 2) {
		t.Fatalf("p50 after re-add = %v, want 2", s.Percentile(50))
	}
}

func TestFractionAtMost(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 2, 3, 10} {
		s.Add(v)
	}
	cases := []struct {
		limit float64
		want  float64
	}{
		{0.5, 0}, {1, 0.2}, {2, 0.6}, {3, 0.8}, {10, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := s.FractionAtMost(c.limit); !almost(got, c.want) {
			t.Errorf("FractionAtMost(%v) = %v, want %v", c.limit, got, c.want)
		}
	}
	var empty Sample
	if empty.FractionAtMost(5) != 0 {
		t.Fatal("empty sample FractionAtMost should be 0")
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if !almost(s.Mean(), 1.5) {
		t.Fatalf("Mean = %v, want 1.5", s.Mean())
	}
}

func TestReset(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	s.Reset()
	if s.Count() != 0 || s.Sum() != 0 {
		t.Fatal("reset did not clear")
	}
	s.Add(7)
	if !almost(s.Mean(), 7) {
		t.Fatal("sample unusable after reset")
	}
}

func TestValuesIsACopy(t *testing.T) {
	var s Sample
	s.Add(1)
	vs := s.Values()
	vs[0] = 99
	if !almost(s.Mean(), 1) {
		t.Fatal("Values exposed internal state")
	}
}

func TestStringNonEmpty(t *testing.T) {
	var s Sample
	s.Add(1)
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestJainFairness(t *testing.T) {
	if !almost(JainFairness([]float64{5, 5, 5}), 1) {
		t.Fatal("equal allocation should score 1")
	}
	// One user hogging everything among n users scores 1/n.
	if !almost(JainFairness([]float64{9, 0, 0}), 1.0/3) {
		t.Fatalf("got %v, want 1/3", JainFairness([]float64{9, 0, 0}))
	}
	if !almost(JainFairness(nil), 1) || !almost(JainFairness([]float64{0, 0}), 1) {
		t.Fatal("degenerate vectors should score 1")
	}
}

func TestJainFairnessBounds(t *testing.T) {
	f := func(xsRaw []uint8) bool {
		if len(xsRaw) == 0 {
			return true
		}
		xs := make([]float64, len(xsRaw))
		for i, v := range xsRaw {
			xs[i] = float64(v)
		}
		j := JainFairness(xs)
		return j >= 1.0/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Inc()
	c.Addn(3)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRatio(t *testing.T) {
	if !almost(Ratio(1, 2), 0.5) {
		t.Fatal("Ratio(1,2) wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio by zero should be 0")
	}
}

// Property: mean is bounded by min and max.
func TestPropertyMeanBounded(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []int16, pRaw [4]uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		ps := make([]float64, 0, 4)
		for _, p := range pRaw {
			ps = append(ps, float64(p%101))
		}
		// Sort probe points.
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				if ps[j] < ps[i] {
					ps[i], ps[j] = ps[j], ps[i]
				}
			}
		}
		prev := math.Inf(-1)
		for _, p := range ps {
			v := s.Percentile(p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
