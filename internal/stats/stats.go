// Package stats collects and summarizes simulation metrics: counters,
// sample distributions with percentiles, Jain's fairness index
// (paper Fig. 11, citing Jain's book), and per-load time series used by
// the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates scalar observations and reports summary statistics.
// The zero value is ready for use.
type Sample struct {
	values []float64
	sorted bool
	sum    float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
	s.sum += v
}

// AddDuration records a duration in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.values) }

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Variance returns the population variance, or 0 with <2 observations.
func (s *Sample) Variance() float64 {
	if len(s.values) < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.values {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(s.values))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank interpolation, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// FractionAtMost returns the fraction of observations ≤ limit.
func (s *Sample) FractionAtMost(limit float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	// Binary search for the first value > limit.
	idx := sort.SearchFloat64s(s.values, math.Nextafter(limit, math.Inf(1)))
	return float64(idx) / float64(len(s.values))
}

// Values returns a copy of the observations. Ordering is unspecified:
// the internal buffer may have been sorted by a percentile query.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Reset clears the sample.
func (s *Sample) Reset() {
	s.values = s.values[:0]
	s.sum = 0
	s.sorted = false
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// String implements fmt.Stringer with a compact summary.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.Count(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}

// JainFairness computes Jain's fairness index
// (Σxᵢ)² / (n·Σxᵢ²) for the allocation vector xs. It returns 1 for an
// empty or all-zero vector (a degenerate allocation is trivially fair).
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Counter is a named monotone counter.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Addn adds n.
func (c *Counter) Addn(n uint64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio safely divides a by b, returning 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
