package gf256

// Polynomial operations over GF(2⁸). A polynomial is a byte slice with
// coefficients in ascending power order: p[i] is the coefficient of xⁱ.
// The zero polynomial is represented by an empty (or all-zero) slice.

// PolyDegree returns the degree of p, or -1 for the zero polynomial.
func PolyDegree(p []byte) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// PolyTrim returns p without trailing zero coefficients.
func PolyTrim(p []byte) []byte {
	d := PolyDegree(p)
	return p[:d+1]
}

// PolyAdd returns a + b.
func PolyAdd(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out, a)
	for i := range b {
		out[i] ^= b[i]
	}
	return out
}

// PolyMul returns a · b.
func PolyMul(a, b []byte) []byte {
	if PolyDegree(a) < 0 || PolyDegree(b) < 0 {
		return nil
	}
	out := make([]byte, len(a)+len(b)-1)
	for i, ai := range a {
		AddMulSlice(ai, out[i:i+len(b)], b)
	}
	return out
}

// PolyScale returns c · p.
func PolyScale(p []byte, c byte) []byte {
	out := make([]byte, len(p))
	MulSlice(c, out, p)
	return out
}

// PolyEval evaluates p at x using Horner's rule.
func PolyEval(p []byte, x byte) byte {
	var acc byte
	for i := len(p) - 1; i >= 0; i-- {
		acc = Mul(acc, x) ^ p[i]
	}
	return acc
}

// PolyDivMod returns the quotient and remainder of a ÷ b. It panics if b
// is the zero polynomial.
func PolyDivMod(a, b []byte) (quo, rem []byte) {
	db := PolyDegree(b)
	if db < 0 {
		//lint:ignore panicfree documented precondition: zero-polynomial divisor is a caller logic error
		panic("gf256: polynomial division by zero")
	}
	rem = make([]byte, len(a))
	copy(rem, a)
	da := PolyDegree(rem)
	if da < db {
		return nil, PolyTrim(rem)
	}
	quo = make([]byte, da-db+1)
	lead := Inv(b[db])
	for d := da; d >= db; d-- {
		if rem[d] == 0 {
			continue
		}
		c := Mul(rem[d], lead)
		quo[d-db] = c
		for i := 0; i <= db; i++ {
			rem[d-db+i] ^= Mul(c, b[i])
		}
	}
	return quo, PolyTrim(rem)
}

// PolyDeriv returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish and odd-power terms keep their coefficient.
func PolyDeriv(p []byte) []byte {
	if len(p) <= 1 {
		return nil
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return PolyTrim(out)
}
