package gf256

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMulTableRowMatchesMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		row := MulTableRow(byte(c))
		for v := 0; v < 256; v++ {
			if row[v] != Mul(byte(c), byte(v)) {
				t.Fatalf("MulTableRow(%#x)[%#x] = %#x, want Mul = %#x",
					c, v, row[v], Mul(byte(c), byte(v)))
			}
		}
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	f := func(c byte, src []byte) bool {
		dst := make([]byte, len(src))
		MulSlice(c, dst, src)
		for i, s := range src {
			if dst[i] != Mul(c, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMulSliceZeroCoefficientClears(t *testing.T) {
	dst := []byte{1, 2, 3, 4}
	MulSlice(0, dst, []byte{9, 9, 9, 9})
	if !bytes.Equal(dst, make([]byte, 4)) {
		t.Fatalf("MulSlice(0, …) left %v, want zeros", dst)
	}
}

func TestAddMulSliceMatchesScalar(t *testing.T) {
	f := func(c byte, src []byte, init []byte) bool {
		n := len(src)
		if len(init) < n {
			init = append(init, make([]byte, n-len(init))...)
		}
		dst := append([]byte(nil), init[:n]...)
		AddMulSlice(c, dst, src)
		for i, s := range src {
			if dst[i] != init[i]^Mul(c, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddMulSliceZeroCoefficientIsNoop(t *testing.T) {
	dst := []byte{1, 2, 3}
	AddMulSlice(0, dst, []byte{7, 7, 7})
	if !bytes.Equal(dst, []byte{1, 2, 3}) {
		t.Fatalf("AddMulSlice(0, …) changed dst to %v", dst)
	}
}

// XOR-accumulating a·x and b·x must equal (a^b)·x: the linearity the
// RS contribution tables rely on.
func TestSliceKernelsAreLinear(t *testing.T) {
	f := func(a, b byte, src []byte) bool {
		sum := make([]byte, len(src))
		MulSlice(a, sum, src)
		AddMulSlice(b, sum, src)
		direct := make([]byte, len(src))
		MulSlice(a^b, direct, src)
		return bytes.Equal(sum, direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
