// Package gf256 implements arithmetic over the finite field GF(2⁸)
// with the primitive polynomial x⁸ + x⁴ + x³ + x² + 1 (0x11D), the
// conventional choice for Reed-Solomon codes over bytes and the field
// used by the OSU-MAC RS(64,48) code.
//
// Field elements are bytes. Addition and subtraction are both XOR.
// Multiplication and division use precomputed log/antilog tables built
// once at package load from the generator α = 0x02.
package gf256

// Order is the number of elements in the field.
const Order = 256

// Poly is the primitive polynomial used to construct the field,
// expressed with the x⁸ term included (0x11D = x⁸+x⁴+x³+x²+1).
const Poly = 0x11D

// Generator is the primitive element α whose powers enumerate the
// multiplicative group.
const Generator = 0x02

var (
	expTable [512]byte // expTable[i] = α^i, doubled to avoid mod 255 in Mul
	logTable [256]byte // logTable[x] = log_α(x); logTable[0] is unused
)

func init() {
	// Table construction is deterministic, allocation-free and has no
	// side effects beyond the two package tables, which fits the narrow
	// carve-out for init() (deterministic precomputation).
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	// α^255 = 1 wraps; fill the two remaining doubled-table slots.
	expTable[510] = expTable[0]
	expTable[511] = expTable[1]
}

// Add returns a + b in GF(2⁸) (XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a − b in GF(2⁸); identical to Add in characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a · b in GF(2⁸).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2⁸). Division by zero panics: it indicates a
// logic error in the caller (RS decoders check denominators first).
func Div(a, b byte) byte {
	if b == 0 {
		//lint:ignore panicfree documented precondition: division by zero is a caller logic error, checked by RS decoders
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics on zero.
func Inv(a byte) byte {
	if a == 0 {
		//lint:ignore panicfree documented precondition: zero has no inverse in GF(256)
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns α^n for any integer n (negative allowed).
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns log_α(a) in [0,255). It panics on zero, which has no
// logarithm.
func Log(a byte) int {
	if a == 0 {
		//lint:ignore panicfree documented precondition: zero has no logarithm
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^n. 0⁰ is defined as 1 for polynomial-evaluation
// convenience.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	e := (int(logTable[a]) * n) % 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}
