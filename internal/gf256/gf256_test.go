package gf256

import (
	"testing"
	"testing/quick"
)

func TestTablesConsistent(t *testing.T) {
	// α^log(x) == x for all nonzero x, and log(α^i) == i for i in [0,255).
	for x := 1; x < 256; x++ {
		if got := Exp(Log(byte(x))); got != byte(x) {
			t.Fatalf("Exp(Log(%d)) = %d", x, got)
		}
	}
	for i := 0; i < 255; i++ {
		if got := Log(Exp(i)); got != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, got)
		}
	}
}

func TestGeneratorOrder255(t *testing.T) {
	seen := make(map[byte]bool, 255)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255 (repeat at %d)", i)
		}
		seen[x] = true
		x = Mul(x, Generator)
	}
	if x != 1 {
		t.Fatalf("α^255 = %d, want 1", x)
	}
}

func TestMulKnownValues(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 7, 0},
		{1, 211, 211},
		{2, 2, 4},
		{0x80, 2, 0x1D},    // x⁷·x = x⁸ ≡ 0x1D
		{0x53, 0xCA, 0x8F}, // regression value for poly 0x11D
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestDivAndInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a·Inv(a) != 1 for a=%d", a)
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1,a) != Inv(a) for a=%d", a)
		}
	}
	if Div(0, 5) != 0 {
		t.Fatal("0/x should be 0")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Fatal("0⁰ should be 1 by convention")
	}
	if Pow(0, 3) != 0 {
		t.Fatal("0³ should be 0")
	}
	for a := 1; a < 256; a += 17 {
		acc := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(byte(a), n); got != acc {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestExpNegative(t *testing.T) {
	for n := -10; n < 10; n++ {
		want := Pow(Generator, ((n%255)+255)%255)
		if got := Exp(n); got != want {
			t.Fatalf("Exp(%d) = %d, want %d", n, got, want)
		}
	}
}

// Field axioms as property tests.

func TestPropertyFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	commMul := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(commMul, cfg); err != nil {
		t.Error("multiplication not commutative:", err)
	}

	assocMul := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(assocMul, cfg); err != nil {
		t.Error("multiplication not associative:", err)
	}

	distrib := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Error("distributivity fails:", err)
	}

	addInverse := func(a byte) bool { return Add(a, a) == 0 }
	if err := quick.Check(addInverse, cfg); err != nil {
		t.Error("additive self-inverse fails:", err)
	}

	mulIdentity := func(a byte) bool { return Mul(a, 1) == a }
	if err := quick.Check(mulIdentity, cfg); err != nil {
		t.Error("multiplicative identity fails:", err)
	}

	divRoundTrip := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(divRoundTrip, cfg); err != nil {
		t.Error("div/mul round-trip fails:", err)
	}
}

func TestPolyEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x², p(2) = 3 ^ Mul(2,2) ^ Mul(1,4)
	p := []byte{3, 2, 1}
	want := byte(3) ^ Mul(2, 2) ^ Mul(1, Mul(2, 2))
	if got := PolyEval(p, 2); got != want {
		t.Fatalf("PolyEval = %d, want %d", got, want)
	}
	if PolyEval(nil, 7) != 0 {
		t.Fatal("empty polynomial should evaluate to 0")
	}
	if PolyEval(p, 0) != 3 {
		t.Fatal("p(0) should be the constant term")
	}
}

func TestPolyMulDegreeAndZero(t *testing.T) {
	a := []byte{1, 1}    // 1 + x
	b := []byte{2, 0, 1} // 2 + x²
	prod := PolyMul(a, b)
	if d := PolyDegree(prod); d != 3 {
		t.Fatalf("degree = %d, want 3", d)
	}
	if PolyMul(nil, b) != nil || PolyMul(a, []byte{0, 0}) != nil {
		t.Fatal("multiplying by zero polynomial should give nil")
	}
}

func TestPolyDivMod(t *testing.T) {
	a := []byte{5, 3, 0, 7, 1} // degree 4
	b := []byte{2, 1}          // degree 1
	quo, rem := PolyDivMod(a, b)
	// Check a == quo*b + rem.
	back := PolyAdd(PolyMul(quo, b), rem)
	if PolyDegree(back) != PolyDegree(a) {
		t.Fatalf("reconstruction degree mismatch")
	}
	for i := 0; i <= PolyDegree(a); i++ {
		var bi byte
		if i < len(back) {
			bi = back[i]
		}
		if bi != a[i] {
			t.Fatalf("reconstruction differs at %d", i)
		}
	}
	if PolyDegree(rem) >= PolyDegree(b) {
		t.Fatalf("remainder degree %d not < divisor degree %d", PolyDegree(rem), PolyDegree(b))
	}
}

func TestPolyDivModByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero polynomial did not panic")
		}
	}()
	PolyDivMod([]byte{1, 2}, []byte{0})
}

func TestPolyDeriv(t *testing.T) {
	// d/dx (a + bx + cx² + dx³) = b + dx² in characteristic 2.
	p := []byte{9, 7, 5, 3}
	d := PolyDeriv(p)
	want := []byte{7, 0, 3}
	if len(d) != len(want) {
		t.Fatalf("deriv = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("deriv = %v, want %v", d, want)
		}
	}
	if PolyDeriv([]byte{5}) != nil {
		t.Fatal("derivative of constant should be nil")
	}
}

// Property: polynomial division reconstruction for random polynomials.
func TestPropertyPolyDivModReconstruction(t *testing.T) {
	f := func(aRaw, bRaw []byte) bool {
		a := PolyTrim(aRaw)
		b := PolyTrim(bRaw)
		if PolyDegree(b) < 0 {
			return true
		}
		quo, rem := PolyDivMod(a, b)
		back := PolyTrim(PolyAdd(PolyMul(quo, b), rem))
		aT := PolyTrim(a)
		if len(back) != len(aT) {
			return false
		}
		for i := range aT {
			if back[i] != aT[i] {
				return false
			}
		}
		return PolyDegree(rem) < PolyDegree(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
