package gf256

// Slice kernels: bulk multiply/accumulate over byte slices driven by
// per-coefficient 256-byte multiplication rows. A row is one line of the
// full 256×256 product table, so c·x becomes a single indexed load with
// no branches — the building block the RS hot paths (LFSR encode,
// Horner syndromes, error-evaluator products) are written against.

// mulTable[a][b] = a · b in GF(2⁸). 64 KiB, built once at package load.
var mulTable [256][256]byte

func init() {
	// Deterministic precomputation from the log/antilog tables built by
	// the package init in gf256.go (Go runs init functions of one file
	// after the variable initializers of the whole package, in file
	// order, so expTable/logTable are ready here).
	for a := 1; a < 256; a++ {
		row := &mulTable[a]
		la := int(logTable[a])
		for b := 1; b < 256; b++ {
			row[b] = expTable[la+int(logTable[b])]
		}
	}
}

// MulTableRow returns the 256-entry multiplication row of c:
// row[x] = c·x. The row aliases a package-level table and must not be
// modified.
func MulTableRow(c byte) *[256]byte { return &mulTable[c] }

// MulSlice sets dst[i] = c · src[i]. dst and src must have the same
// length; they may be the same slice.
func MulSlice(c byte, dst, src []byte) {
	if c == 0 {
		clear(dst)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// AddMulSlice sets dst[i] ^= c · src[i], the GF(2⁸) multiply-accumulate
// at the core of LFSR feedback and polynomial products. dst and src must
// have the same length and must not overlap unless identical.
func AddMulSlice(c byte, dst, src []byte) {
	if c == 0 {
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}
