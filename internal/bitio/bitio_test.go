package bitio

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter(64)
	values := []struct {
		v     uint64
		width int
	}{
		{0x3F, 6}, {0x01, 1}, {0xFFFF, 16}, {0, 3}, {0x5, 3}, {0xABCDE, 20},
	}
	for _, x := range values {
		if err := w.WriteBits(x.v, x.width); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(w.Bytes())
	for _, x := range values {
		got, err := r.ReadBits(x.width)
		if err != nil {
			t.Fatal(err)
		}
		if got != x.v {
			t.Fatalf("read %#x, want %#x (width %d)", got, x.v, x.width)
		}
	}
}

func TestMSBFirstLayout(t *testing.T) {
	w := NewWriter(8)
	if err := w.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	// First three bits 1,0,1 land in bit positions 7,6,5 of byte 0.
	if got := w.Bytes()[0]; got != 0b10100000 {
		t.Fatalf("byte = %08b, want 10100000", got)
	}
}

func TestWriteOverflow(t *testing.T) {
	w := NewWriter(10)
	if err := w.WriteBits(0, 8); err != nil {
		t.Fatal(err)
	}
	// Capacity rounds up to 16 bits, so 8 more fit but 9 do not.
	if err := w.WriteBits(0, 9); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
	if err := w.WriteBits(0, 8); err != nil {
		t.Fatal(err)
	}
}

func TestReadOverflow(t *testing.T) {
	r := NewReader([]byte{0xAA})
	if _, err := r.ReadBits(9); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestInvalidWidths(t *testing.T) {
	w := NewWriter(128)
	if err := w.WriteBits(0, -1); err == nil {
		t.Fatal("negative width accepted by writer")
	}
	if err := w.WriteBits(0, 65); err == nil {
		t.Fatal("width 65 accepted by writer")
	}
	r := NewReader(make([]byte, 16))
	if _, err := r.ReadBits(-1); err == nil {
		t.Fatal("negative width accepted by reader")
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Fatal("width 65 accepted by reader")
	}
}

func TestWriteBool(t *testing.T) {
	w := NewWriter(8)
	for _, b := range []bool{true, false, true, true} {
		if err := w.WriteBool(b); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(w.Bytes())
	for _, want := range []bool{true, false, true, true} {
		got, err := r.ReadBool()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBytesAcrossUnalignedOffset(t *testing.T) {
	w := NewWriter(100)
	if err := w.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xDE, 0xAD, 0xBE}
	if err := w.WriteBytes(payload); err != nil {
		t.Fatal(err)
	}
	r := NewReader(w.Bytes())
	if err := r.Skip(3); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got % x, want % x", got, payload)
	}
}

func TestSkip(t *testing.T) {
	r := NewReader([]byte{0xFF, 0x00})
	if err := r.Skip(8); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadBits(4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("after skip, read %#x, want 0", v)
	}
	if err := r.Skip(5); !errors.Is(err, ErrOverflow) {
		t.Fatalf("skip past end: err = %v, want ErrOverflow", err)
	}
	if err := r.Skip(-1); !errors.Is(err, ErrOverflow) {
		t.Fatalf("negative skip: err = %v, want ErrOverflow", err)
	}
}

func TestLenAndRemaining(t *testing.T) {
	w := NewWriter(40)
	if err := w.WriteBits(1, 7); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 7 {
		t.Fatalf("Len = %d, want 7", w.Len())
	}
	r := NewReader(w.Bytes())
	if r.Remaining() != 40 {
		t.Fatalf("Remaining = %d, want 40", r.Remaining())
	}
	if _, err := r.ReadBits(10); err != nil {
		t.Fatal(err)
	}
	if r.Offset() != 10 || r.Remaining() != 30 {
		t.Fatalf("Offset/Remaining = %d/%d, want 10/30", r.Offset(), r.Remaining())
	}
}

func TestZeroCapacity(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteBits(1, 1); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
	w2 := NewWriter(-5)
	if w2.CapacityBits() != 0 {
		t.Fatalf("negative capacity clamped to %d, want 0", w2.CapacityBits())
	}
}

// Property: any sequence of (value, width) fields survives a write/read
// round-trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		type field struct {
			v     uint64
			width int
		}
		var fields []field
		total := 0
		for _, x := range raw {
			width := int(x%16) + 1 // 1..16 bits
			v := uint64(x) & ((1 << uint(width)) - 1)
			fields = append(fields, field{v, width})
			total += width
		}
		w := NewWriter(total)
		for _, fd := range fields {
			if err := w.WriteBits(fd.v, fd.width); err != nil {
				return false
			}
		}
		r := NewReader(w.Bytes())
		for _, fd := range fields {
			got, err := r.ReadBits(fd.width)
			if err != nil || got != fd.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPutTakeStickyRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.PutBits(0x2A, 6)
	w.PutBool(true)
	w.PutBits(0xBEEF, 16)
	w.PutBytes([]byte{0x12, 0x34})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(w.Bytes())
	if got := r.TakeBits(6); got != 0x2A {
		t.Fatalf("TakeBits = %#x, want 0x2a", got)
	}
	if !r.TakeBool() {
		t.Fatal("TakeBool = false, want true")
	}
	if got := r.TakeBits(16); got != 0xBEEF {
		t.Fatalf("TakeBits = %#x, want 0xbeef", got)
	}
	if got := r.TakeBytes(2); !bytes.Equal(got, []byte{0x12, 0x34}) {
		t.Fatalf("TakeBytes = %x, want 1234", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPutBitsValueRange(t *testing.T) {
	w := NewWriter(64)
	w.PutBits(64, 6) // 64 needs 7 bits
	if !errors.Is(w.Err(), ErrValueRange) {
		t.Fatalf("err = %v, want ErrValueRange", w.Err())
	}
	// Sticky: later valid writes are no-ops and the first error persists.
	before := w.Len()
	w.PutBits(1, 6)
	w.PutBool(true)
	w.PutBytes([]byte{1})
	if w.Len() != before {
		t.Fatal("writes after error changed the buffer")
	}
	if !errors.Is(w.Err(), ErrValueRange) {
		t.Fatalf("err = %v, want sticky ErrValueRange", w.Err())
	}
}

func TestPutOverflowSticky(t *testing.T) {
	w := NewWriter(8)
	w.PutBits(0xFF, 8)
	w.PutBits(1, 1)
	if !errors.Is(w.Err(), ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", w.Err())
	}
}

func TestTakeUnderflowSticky(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if got := r.TakeBits(8); got != 0xAB {
		t.Fatalf("TakeBits = %#x, want 0xab", got)
	}
	if got := r.TakeBits(1); got != 0 {
		t.Fatalf("TakeBits past end = %#x, want 0", got)
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", r.Err())
	}
	if got := r.TakeBytes(1); got != nil {
		t.Fatalf("TakeBytes after error = %x, want nil", got)
	}
	if r.TakeBool() {
		t.Fatal("TakeBool after error = true, want false")
	}
}
