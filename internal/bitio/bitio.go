// Package bitio provides MSB-first bit-level reading and writing over
// byte slices. The OSU-MAC control fields pack 6-bit user IDs and 16-bit
// EINs into 630 bits across two RS codewords; this package does the
// packing.
package bitio

import (
	"errors"
	"fmt"
)

// ErrOverflow is returned when a read or write would pass the end of the
// underlying buffer.
var ErrOverflow = errors.New("bitio: past end of buffer")

// ErrValueRange is returned by the strict Put methods when a value does
// not fit its declared field width.
var ErrValueRange = errors.New("bitio: value exceeds field width")

// Writer packs bits MSB-first into an internal buffer.
type Writer struct {
	buf  []byte
	nbit int // bits written so far
	err  error
}

// NewWriter returns a writer with the given capacity in bits. The
// underlying buffer is rounded up to whole bytes and zero-filled.
func NewWriter(capacityBits int) *Writer {
	if capacityBits < 0 {
		capacityBits = 0
	}
	//lint:ignore hotpathalloc constructor of the cold strict-Writer API; hot paths use the stateless PutBitsAt and only reach here via frame's off-path marshalErr rebuild
	return &Writer{buf: make([]byte, (capacityBits+7)/8)}
}

// PutBitsAt writes the low width bits of v MSB-first at bit offset nbit
// of buf and returns the advanced offset. It is the stateless form of
// WriteBits for zero-allocation hot paths: holding the offset in a
// local instead of a Writer keeps caller-owned stack buffers off the
// heap (escape analysis treats any slice stored into a struct as
// escaping). The caller guarantees capacity, zeroed target bits, and
// that v fits width — validate up front, as frame's MarshalTo does.
func PutBitsAt(buf []byte, nbit int, v uint64, width int) int {
	for i := width - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			buf[nbit/8] |= 1 << uint(7-nbit%8)
		}
		nbit++
	}
	return nbit
}

// TakeBitsAt reads width bits MSB-first from bit offset nbit of buf,
// returning the value and the advanced offset: the stateless form of
// ReadBits (see PutBitsAt). The caller guarantees bounds.
func TakeBitsAt(buf []byte, nbit, width int) (uint64, int) {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		if buf[nbit/8]&(1<<uint(7-nbit%8)) != 0 {
			v |= 1
		}
		nbit++
	}
	return v, nbit
}

// CapacityBits returns the writer's capacity in bits.
func (w *Writer) CapacityBits() int { return len(w.buf) * 8 }

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// WriteBits writes the low width bits of v, MSB first. width must be in
// [0, 64].
func (w *Writer) WriteBits(v uint64, width int) error {
	if width < 0 || width > 64 {
		return fmt.Errorf("bitio: invalid width %d", width)
	}
	if w.nbit+width > len(w.buf)*8 {
		return fmt.Errorf("%w: write %d bits at offset %d, capacity %d",
			ErrOverflow, width, w.nbit, len(w.buf)*8)
	}
	for i := width - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			w.buf[w.nbit/8] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
	return nil
}

// WriteBool writes a single bit.
func (w *Writer) WriteBool(b bool) error {
	var v uint64
	if b {
		v = 1
	}
	return w.WriteBits(v, 1)
}

// WriteBytes writes whole bytes at the current bit offset.
func (w *Writer) WriteBytes(p []byte) error {
	for _, b := range p {
		if err := w.WriteBits(uint64(b), 8); err != nil {
			return err
		}
	}
	return nil
}

// Err returns the first error recorded by the Put methods, or nil.
func (w *Writer) Err() error { return w.err }

// setErr records the first error seen by a Put method.
func (w *Writer) setErr(err error) {
	if w.err == nil {
		w.err = err
	}
}

// PutBits writes the low width bits of v, MSB first, recording rather
// than returning errors: after any Put fails, subsequent Puts are no-ops
// and Err reports the first failure. Unlike WriteBits, PutBits is strict
// about range: v must fit in width bits.
func (w *Writer) PutBits(v uint64, width int) {
	if w.err != nil {
		return
	}
	if width < 64 && v >= 1<<uint(width) {
		//lint:ignore hotpathalloc error construction in the cold strict-Writer API; hot callers validate field widths up front and never take this branch
		w.setErr(fmt.Errorf("%w: value %d in %d bits", ErrValueRange, v, width))
		return
	}
	w.setErr(w.WriteBits(v, width))
}

// PutBool writes a single bit, recording errors like PutBits.
func (w *Writer) PutBool(b bool) {
	if w.err != nil {
		return
	}
	w.setErr(w.WriteBool(b))
}

// PutBytes writes whole bytes at the current bit offset, recording
// errors like PutBits.
func (w *Writer) PutBytes(p []byte) {
	if w.err != nil {
		return
	}
	w.setErr(w.WriteBytes(p))
}

// Bytes returns the buffer padded with zero bits to whole bytes. The
// returned slice is the full capacity; callers that need only the
// written prefix can slice it with (Len()+7)/8.
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// Reader unpacks MSB-first bits from a byte slice.
type Reader struct {
	buf  []byte
	nbit int
	err  error
}

// NewReader returns a reader over p. The reader does not copy p; callers
// must not mutate it while reading.
func NewReader(p []byte) *Reader {
	return &Reader{buf: p}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.nbit }

// Offset returns the number of bits consumed so far.
func (r *Reader) Offset() int { return r.nbit }

// ReadBits reads width bits MSB-first and returns them in the low bits
// of the result. width must be in [0, 64].
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitio: invalid width %d", width)
	}
	if r.nbit+width > len(r.buf)*8 {
		return 0, fmt.Errorf("%w: read %d bits at offset %d, size %d",
			ErrOverflow, width, r.nbit, len(r.buf)*8)
	}
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		if r.buf[r.nbit/8]&(1<<uint(7-r.nbit%8)) != 0 {
			v |= 1
		}
		r.nbit++
	}
	return v, nil
}

// ReadBool reads a single bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadBytes reads n whole bytes at the current bit offset.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out = append(out, byte(v))
	}
	return out, nil
}

// Err returns the first error recorded by the Take methods, or nil.
func (r *Reader) Err() error { return r.err }

// setErr records the first error seen by a Take method.
func (r *Reader) setErr(err error) {
	if r.err == nil {
		r.err = err
	}
}

// TakeBits reads width bits MSB-first, recording rather than returning
// errors: after any Take fails, subsequent Takes return zero values and
// Err reports the first failure.
func (r *Reader) TakeBits(width int) uint64 {
	if r.err != nil {
		return 0
	}
	v, err := r.ReadBits(width)
	r.setErr(err)
	return v
}

// TakeBool reads a single bit, recording errors like TakeBits.
func (r *Reader) TakeBool() bool {
	if r.err != nil {
		return false
	}
	v, err := r.ReadBool()
	r.setErr(err)
	return v
}

// TakeBytes reads n whole bytes, recording errors like TakeBits.
func (r *Reader) TakeBytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	p, err := r.ReadBytes(n)
	r.setErr(err)
	return p
}

// Skip advances the reader by n bits.
func (r *Reader) Skip(n int) error {
	if n < 0 || r.nbit+n > len(r.buf)*8 {
		return fmt.Errorf("%w: skip %d bits at offset %d, size %d",
			ErrOverflow, n, r.nbit, len(r.buf)*8)
	}
	r.nbit += n
	return nil
}
