package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/osu-netlab/osumac/internal/frame"
)

func smallTournament() TournamentConfig {
	return TournamentConfig{
		Seed:      9,
		Users:     8,
		Frames:    80,
		Loads:     []float64{0.4, 0.8},
		Protocols: []string{"prma", "rama", OSUMACName},
	}
}

// TestTournamentDeterministicAcrossWorkers is the fan-out contract:
// serial and parallel tournaments must marshal byte-identically.
func TestTournamentDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallTournament()
	cfg.Workers = 1
	serial, err := Tournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Tournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("serial and parallel tournaments differ:\nserial   %.300s\nparallel %.300s", sj, pj)
	}
}

// TestTournamentEntryShape checks one entry end to end: label stamped,
// run progress marked done, shared descriptors and the pinned per-load
// gauges present, spans captured.
func TestTournamentEntryShape(t *testing.T) {
	entries, err := Tournament(TournamentConfig{
		Seed: 3, Users: 8, Frames: 60,
		Loads:     []float64{0.5},
		Protocols: []string{"drma"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Protocol != "drma" || e.Export.Label != "drma" {
		t.Fatalf("entry labeled (%q, %q), want drma", e.Protocol, e.Export.Label)
	}
	if !e.Export.Done || e.Export.Cycle != 60 {
		t.Fatalf("run progress = (done=%v, cycle=%d), want (true, 60)", e.Export.Done, e.Export.Cycle)
	}
	names := map[string]bool{}
	for _, m := range e.Export.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{
		"osumac_baseline_utilization",
		"osumac_baseline_fairness",
		"osumac_baseline_deadline_miss_ratio",
		"osumac_baseline_message_delay_seconds",
		"osumac_baseline_load_050_utilization",
		"osumac_baseline_load_050_mean_delay_seconds",
		"osumac_baseline_load_050_collision_rate",
		"osumac_baseline_load_050_fairness",
	} {
		if !names[want] {
			t.Errorf("export misses metric %s", want)
		}
	}
	if e.Export.Spans == nil || e.Export.Spans.Traces == 0 {
		t.Fatal("export carries no span distribution")
	}
	if e.Export.Runtime != nil {
		t.Fatal("tournament exports must not embed runtime telemetry")
	}
}

// TestTournamentDefaultField asserts the default grid covers OSU-MAC
// plus every baseline without running it (validation only).
func TestTournamentDefaultField(t *testing.T) {
	if _, err := Tournament(TournamentConfig{Protocols: []string{"no-such-mac"}}); err == nil ||
		!strings.Contains(err.Error(), "no-such-mac") {
		t.Fatalf("unknown protocol accepted: %v", err)
	}
	// Tracing caps the user count; the tournament must surface the
	// baseline.Run validation error rather than panic.
	if _, err := Tournament(TournamentConfig{
		Users: int(frame.NoUser), Frames: 10, Loads: []float64{0.5}, Protocols: []string{"prma"},
	}); err == nil {
		t.Fatal("oversized user population accepted")
	}
}
