package experiments

// Metro-scale deployment runner: thousands of OSU-MAC cells on one
// backbone, exercising the sharded kernel at the scale it exists for.
//
// The 16-bit EIN space caps the backbone's global routing table at
// 65536 addresses, so a metro deployment splits its population the way
// a real one would: the bulk of each cell's subscribers are cell-local
// (their EINs are unique only within their cell and they never cross
// the wire), while a small routed subset per cell registers globally
// and carries the inter-cell ring traffic that keeps the exchange
// machinery loaded.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/osu-netlab/osumac/internal/backbone"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// MetroOptions sizes a metro deployment.
type MetroOptions struct {
	// Cells is the number of OSU-MAC cells on the backbone.
	Cells int
	// GPSPerCell and DataPerCell populate each cell with cell-local
	// subscribers (bounded by phy.MaxGPSUsers / phy.MaxDataUsers, the
	// latter shared with RoutedPerCell).
	GPSPerCell  int
	DataPerCell int
	// RoutedPerCell is the number of globally-addressable data
	// subscribers per cell (Cells×RoutedPerCell ≤ the 16-bit address
	// space; they count against the cell's data capacity).
	RoutedPerCell int
	// Load is the per-cell data load index ρ.
	Load float64
	// Seed drives all randomness; cell i runs Seed+i.
	Seed uint64
	// Warmup and Cycles split the run: ring traffic is injected after
	// Warmup settles registrations.
	Warmup, Cycles int
	// WireDelay is the backbone latency (and the sharded engine's
	// conservative-lookahead bound).
	WireDelay time.Duration
	// Sharded selects the per-cell-kernel engine; false runs the serial
	// oracle. Same-seed results are byte-identical either way.
	Sharded bool
	// Lookahead overrides the barrier window (0: WireDelay).
	Lookahead time.Duration
}

// DefaultMetro returns the full metro configuration: ~14k cells at the
// cell capacity of 72 subscribers — just over one million subscribers —
// with a routed pair per cell filling the global address space.
func DefaultMetro() MetroOptions {
	return MetroOptions{
		Cells:         14000,
		GPSPerCell:    phy.MaxGPSUsers,
		DataPerCell:   phy.MaxDataUsers - 2,
		RoutedPerCell: 2,
		Load:          0.8,
		Seed:          42,
		Warmup:        2,
		Cycles:        3,
		WireDelay:     phy.CycleLength,
		Sharded:       true,
	}
}

// MetroResult is a metro run's outcome, reduced to headline numbers and
// a digest over every per-cell metrics snapshot. Equal digests mean
// byte-identical per-cell metrics — the cross-engine comparison a
// million-subscriber run can afford.
type MetroResult struct {
	Cells       int
	Subscribers int
	Forwarded   uint64
	Delivered   uint64
	// RingSends counts accepted ring injections; sources still working
	// through registration contention after Warmup are skipped (the
	// skip set is deterministic: both engines see identical post-warmup
	// state).
	RingSends   int
	MeanLatency float64 // seconds, uplink arrival → downlink enqueue
	Utilization float64 // mean reverse-link utilization across cells
	Digest      uint64  // FNV-1a over per-cell snapshots + backbone state
}

// routedAddr returns the global address of routed subscriber r in cell
// c. The routed population occupies the global space from 20000 upward,
// disjoint from the cell-local EIN ranges (1000+/2000+).
func routedAddr(c, r, perCell int) backbone.Address {
	return backbone.Address(20000 + c*perCell + r)
}

// Metro builds, runs, and digests one metro-scale deployment.
func Metro(opts MetroOptions) (*MetroResult, error) {
	if opts.Cells <= 0 {
		return nil, fmt.Errorf("experiments: metro needs at least one cell")
	}
	if opts.GPSPerCell > phy.MaxGPSUsers || opts.DataPerCell+opts.RoutedPerCell > phy.MaxDataUsers {
		return nil, fmt.Errorf("experiments: metro population exceeds cell capacity (%d GPS, %d data)",
			phy.MaxGPSUsers, phy.MaxDataUsers)
	}
	if routed := opts.Cells * opts.RoutedPerCell; 20000+routed > 1<<16 {
		return nil, fmt.Errorf("experiments: %d routed subscribers exceed the 16-bit global address space", routed)
	}
	cfg := core.NewConfig()
	cfg.Seed = opts.Seed
	dataUsers := opts.DataPerCell + opts.RoutedPerCell
	if opts.Load > 0 && dataUsers > 0 {
		dataSlots := phy.Format1DataSlots
		if opts.GPSPerCell <= phy.Format2GPSSlots {
			dataSlots = phy.Format2DataSlots
		}
		cfg.MeanInterarrival = traffic.InterarrivalForSlots(
			opts.Load, dataUsers, cfg.SizeDist, frame.MaxPayload, phy.CycleLength, dataSlots)
	}
	in, err := backbone.NewWithOptions(cfg, backbone.Options{
		Cells:     opts.Cells,
		WireDelay: opts.WireDelay,
		Sharded:   opts.Sharded,
		Lookahead: opts.Lookahead,
	})
	if err != nil {
		return nil, err
	}
	subs := 0
	for c := 0; c < opts.Cells; c++ {
		cell := in.Cell(c)
		for i := 0; i < opts.GPSPerCell; i++ {
			if _, err := cell.AddSubscriber(frame.EIN(1000+i), true, time.Duration(i)*time.Second); err != nil {
				return nil, err
			}
		}
		// Routed subscribers join first so they clear registration
		// contention as early as possible; the cell-local bulk follows.
		for r := 0; r < opts.RoutedPerCell; r++ {
			if _, err := in.AddSubscriber(routedAddr(c, r, opts.RoutedPerCell), c, false,
				time.Duration(r)*500*time.Millisecond); err != nil {
				return nil, err
			}
		}
		for i := 0; i < opts.DataPerCell; i++ {
			if _, err := cell.AddSubscriber(frame.EIN(2000+i), false,
				time.Duration(opts.RoutedPerCell+i)*500*time.Millisecond); err != nil {
				return nil, err
			}
		}
		subs += opts.GPSPerCell + dataUsers
	}
	if opts.Warmup > 0 {
		if err := in.Run(opts.Warmup); err != nil {
			return nil, err
		}
	}
	// Ring traffic: each cell's first routed subscriber sends to the
	// next cell's, so every (src, dst) backbone pair on the ring carries
	// one message and every exchange batch has cross-cell merge work.
	// Sources still in registration contention are skipped; the skip set
	// is engine-independent because the post-warmup state is.
	ringSends := 0
	if opts.RoutedPerCell > 0 && opts.Cells > 1 {
		for c := 0; c < opts.Cells; c++ {
			src := routedAddr(c, 0, opts.RoutedPerCell)
			if in.Subscriber(src).State() != core.StateActive {
				continue
			}
			if err := in.Send(src, routedAddr((c+1)%opts.Cells, 0, opts.RoutedPerCell), 120+10*(c%9)); err != nil {
				return nil, err
			}
			ringSends++
		}
	}
	if err := in.Run(opts.Cycles); err != nil {
		return nil, err
	}

	res := &MetroResult{
		Cells:       opts.Cells,
		Subscribers: subs,
		Forwarded:   in.Forwarded.Value(),
		Delivered:   in.Delivered.Value(),
		RingSends:   ringSends,
		MeanLatency: in.EndToEndLat.Mean(),
	}
	h := fnv.New64a()
	var util float64
	for c := 0; c < opts.Cells; c++ {
		snap, err := json.Marshal(in.Cell(c).Metrics().Snapshot())
		if err != nil {
			return nil, err
		}
		if _, err := h.Write(snap); err != nil {
			return nil, err
		}
		util += in.Cell(c).Metrics().Utilization()
	}
	fmt.Fprintf(h, "fwd=%d del=%d ring=%d lat=%v vals=%v",
		res.Forwarded, res.Delivered, res.RingSends, in.EndToEndLat.Sum(), in.EndToEndLat.Values())
	res.Digest = h.Sum64()
	res.Utilization = util / float64(opts.Cells)
	return res, nil
}
