package experiments

import (
	"testing"

	"github.com/osu-netlab/osumac/internal/phy"
)

// Small scales keep these tests fast; the full-scale runs live in
// cmd/experiments and bench_test.go.
const (
	testCycles = 120
	testWarmup = 10
)

func TestLoadSweepShapes(t *testing.T) {
	opts := SweepOptions{
		Seed: 42, GPSUsers: 4, DataUsers: 10,
		Cycles: testCycles, Warmup: testWarmup, Variable: true,
		Loads: []float64{0.3, 0.9, 1.1},
	}
	pts, err := LoadSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	lo, mid, hi := pts[0], pts[1], pts[2]

	// Fig 8a: utilization tracks load at light load, saturates at
	// overload below the offered load.
	if lo.Utilization < 0.2 || lo.Utilization > 0.45 {
		t.Errorf("utilization at 0.3 = %.3f", lo.Utilization)
	}
	if hi.Utilization > 1.0 {
		t.Errorf("utilization exceeds 1: %.3f", hi.Utilization)
	}
	if hi.Utilization < mid.Utilization-0.1 {
		t.Errorf("utilization collapsed at overload: %.3f vs %.3f", hi.Utilization, mid.Utilization)
	}

	// Fig 8b: delay increases dramatically past 0.9.
	if lo.MeanDelayCycles <= 0 {
		t.Error("no delay measured at light load")
	}
	if hi.MeanDelayCycles <= lo.MeanDelayCycles {
		t.Errorf("delay did not grow with load: %.1f vs %.1f", hi.MeanDelayCycles, lo.MeanDelayCycles)
	}

	// Fig 10: control overhead decreases with load (piggybacking).
	if hi.ControlOverhead >= lo.ControlOverhead {
		t.Errorf("control overhead did not fall: %.4f → %.4f", lo.ControlOverhead, hi.ControlOverhead)
	}

	// Fig 11: fairness stays high.
	for _, p := range pts {
		if p.Fairness < 0.95 {
			t.Errorf("fairness %.4f at load %.1f", p.Fairness, p.Load)
		}
	}

	// Fig 12a band: the paper reports 5-14 % second-CF gain.
	for _, p := range pts {
		if p.SecondCFGain < 0.03 || p.SecondCFGain > 0.20 {
			t.Errorf("CF2 gain %.3f at load %.1f outside plausible band", p.SecondCFGain, p.Load)
		}
	}

	// GPS deadline never violated on the ideal channel.
	for _, p := range pts {
		if p.GPSDeadlineViolation != 0 {
			t.Errorf("GPS violations at load %.1f", p.Load)
		}
	}
}

func TestFig12aSecondCFWins(t *testing.T) {
	pts, err := Fig12a(42, testCycles, testWarmup, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.SecondCFGain <= 0 {
		t.Fatal("no last-slot traffic with CF2 enabled")
	}
	// At saturation the CF2 design must beat the single-CF alternative:
	// the last slot carries data instead of being wasted.
	if p.UtilizationCF2 <= p.UtilizationNoCF {
		t.Fatalf("CF2 utilization %.3f not above single-CF %.3f", p.UtilizationCF2, p.UtilizationNoCF)
	}
}

func TestFig12bDynamicSlotsWin(t *testing.T) {
	pts, err := Fig12b(42, testCycles, testWarmup, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	var dyn1, static1 float64
	for _, p := range pts {
		if p.GPSUsers == 1 && p.Load == 1.0 {
			if p.Dynamic {
				dyn1 = p.MeanDataSlotsUsed
			} else {
				static1 = p.MeanDataSlotsUsed
			}
		}
	}
	// With 1 GPS user at saturation, dynamic adjustment converts five
	// idle GPS slots into a ninth data slot (paper: up to ~15 % more
	// bandwidth).
	if dyn1 <= static1 {
		t.Fatalf("dynamic %.2f slots/cycle not above static %.2f", dyn1, static1)
	}
}

func TestRegistrationTargets(t *testing.T) {
	r, err := Registration(42, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Registrants != 16 {
		t.Fatalf("registered %d/16", r.Registrants)
	}
	if r.Within2Cycles < 0.8 {
		t.Errorf("within-2 = %.2f, target 0.80", r.Within2Cycles)
	}
	if r.Within10 < 0.99 {
		t.Errorf("within-10 = %.2f, target 0.99", r.Within10)
	}
}

func TestGPSAccessDelayBound(t *testing.T) {
	r, err := GPSAccessDelay(42, testCycles)
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 {
		t.Fatalf("%d deadline violations", r.Violations)
	}
	if r.MaxDelayS > phy.GPSAccessDeadline.Seconds() {
		t.Fatalf("max delay %.3f exceeds bound", r.MaxDelayS)
	}
	if r.Delivered == 0 {
		t.Fatal("no GPS reports delivered")
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	if len(t1) < 10 {
		t.Fatalf("Table 1 rows = %d", len(t1))
	}
	t2 := Table2()
	// 8 GPS rows + 9 data rows.
	if len(t2) != 17 {
		t.Fatalf("Table 2 rows = %d, want 17", len(t2))
	}
	if t2[0].Format1 != "0.30125" || t2[0].Format2 != "0.30125" {
		t.Fatalf("GPS slot 1 = %q/%q", t2[0].Format1, t2[0].Format2)
	}
	if t2[8].Format1 != "1.00125" {
		t.Fatalf("data slot 1 format 1 = %q", t2[8].Format1)
	}
	if t2[16].Format1 != "--" || t2[16].Format2 != "3.79375" {
		t.Fatalf("data slot 9 = %q/%q", t2[16].Format1, t2[16].Format2)
	}
}

func TestComparisonCoversAllProtocols(t *testing.T) {
	pts, err := Comparison(42, 8, 200, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.Protocol] = true
		if p.Throughput < 0 || p.Throughput > 1.01 {
			t.Errorf("%s throughput %.3f", p.Protocol, p.Throughput)
		}
	}
	for _, want := range []string{"osu-mac", "prma", "d-tdma", "rama", "drma", "fama"} {
		if !seen[want] {
			t.Errorf("missing protocol %s", want)
		}
	}
}

func TestSchedulerAblation(t *testing.T) {
	pts, err := SchedulerAblation(42, testCycles, []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationPoint{}
	for _, p := range pts {
		byName[p.Variant] = p
	}
	rr, ok1 := byName["rr+lump (paper)"]
	fcfs, ok2 := byName["fcfs"]
	if !ok1 || !ok2 {
		t.Fatal("missing ablation variants")
	}
	// Round-robin must be at least as fair as FCFS under load.
	if rr.Fairness < fcfs.Fairness-0.01 {
		t.Errorf("rr fairness %.4f below fcfs %.4f", rr.Fairness, fcfs.Fairness)
	}
}

func TestEffectiveInterarrivalPositive(t *testing.T) {
	if EffectiveInterarrival(0.8, 10, 4, true) <= 0 {
		t.Fatal("interarrival not positive")
	}
	// Heavier load → shorter interarrival.
	if EffectiveInterarrival(1.0, 10, 4, true) >= EffectiveInterarrival(0.5, 10, 4, true) {
		t.Fatal("interarrival not monotone in load")
	}
}

func TestReplicatedSweep(t *testing.T) {
	opts := SweepOptions{
		Seed: 10, GPSUsers: 4, DataUsers: 10,
		Cycles: 80, Warmup: 8, Variable: true,
		Loads: []float64{0.5},
	}
	pts, err := ReplicatedSweep(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Replications != 3 {
		t.Fatalf("pts = %+v", pts)
	}
	p := pts[0]
	if p.UtilizationMean <= 0 || p.UtilizationMean > 1 {
		t.Fatalf("utilization mean %v", p.UtilizationMean)
	}
	// Three different seeds should show some variance somewhere.
	if p.UtilizationStd == 0 && p.DelayStd == 0 && p.CollisionStd == 0 {
		t.Fatal("replications identical across seeds")
	}
	if p.FairnessMean < 0.95 {
		t.Fatalf("fairness %v", p.FairnessMean)
	}
}

func TestReplicatedSweepValidation(t *testing.T) {
	if _, err := ReplicatedSweep(SweepOptions{}, 0); err == nil {
		t.Fatal("zero replications accepted")
	}
}

func TestRobustnessAcrossPopulations(t *testing.T) {
	r, err := Robustness(42, 0.5, 150, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Paper §5: conclusions hold over a wide range of populations —
	// at a fixed load the realized utilization must cluster near ρ for
	// every (GPS, data) combination.
	if r.UtilMax-r.UtilMin > 0.15 {
		t.Fatalf("utilization spread %.3f–%.3f too wide", r.UtilMin, r.UtilMax)
	}
	if r.UtilMin < 0.35 || r.UtilMax > 0.65 {
		t.Fatalf("utilization [%.3f, %.3f] far from ρ=0.5", r.UtilMin, r.UtilMax)
	}
	if r.FairMin < 0.95 {
		t.Fatalf("fairness dropped to %.3f in some population", r.FairMin)
	}
}
