package experiments

import (
	osumac "github.com/osu-netlab/osumac"
	"github.com/osu-netlab/osumac/internal/baseline"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sched"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// ComparisonPoint is one (protocol, load) cell of the X1 extension
// experiment: OSU-MAC against the surveyed baselines on equal slot
// budgets.
type ComparisonPoint struct {
	Protocol        string
	Load            float64
	Throughput      float64
	MeanDelayCycles float64
	CollisionRate   float64 // collisions per frame/cycle
	Fairness        float64
}

// Comparison runs OSU-MAC (full stack) and the §4 baselines
// (frame-level models, idealized medium) over the load sweep. See the
// baseline package docs for why this comparison is conservative against
// OSU-MAC; the paper itself declines a quantitative comparison, so this
// is an extension, not a paper figure.
func Comparison(seed uint64, users, frames int, loads []float64) ([]ComparisonPoint, error) {
	return ComparisonWithWorkers(seed, users, frames, loads, 1)
}

// ComparisonWithWorkers is Comparison with the (protocol, load) grid
// fanned over up to `workers` concurrent runs (0 = GOMAXPROCS). Each
// cell constructs its own protocol instance and RNG, and rows are
// assembled in the serial order (protocol-outer, load-inner), so the
// result is identical at every worker count.
func ComparisonWithWorkers(seed uint64, users, frames int, loads []float64, workers int) ([]ComparisonPoint, error) {
	if loads == nil {
		loads = osumac.PaperLoads
	}
	protocols := []func() baseline.Protocol{
		nil, // full OSU-MAC stack
		func() baseline.Protocol { return baseline.NewPRMA() },
		func() baseline.Protocol { return baseline.NewDTDMA() },
		func() baseline.Protocol { return baseline.NewRAMA() },
		func() baseline.Protocol { return baseline.NewDRMA() },
		func() baseline.Protocol { return baseline.NewFAMA() },
	}
	out := make([]ComparisonPoint, len(protocols)*len(loads))
	err := forEachIndexed(len(out), workers, func(idx int) error {
		mk, load := protocols[idx/len(loads)], loads[idx%len(loads)]
		if mk == nil {
			scn := osumac.Scenario{
				Seed: seed, GPSUsers: 0, DataUsers: users, Load: load,
				VariableSizes: true, Cycles: frames, WarmupCycles: frames / 20,
			}
			res, err := osumac.Run(scn)
			if err != nil {
				return err
			}
			out[idx] = ComparisonPoint{
				Protocol:        "osu-mac",
				Load:            load,
				Throughput:      res.Utilization,
				MeanDelayCycles: res.MeanDelayCycles,
				CollisionRate:   float64(res.Metrics.ContentionCollisions.Value()) / float64(res.Metrics.Cycles),
				Fairness:        res.Fairness,
			}
			return nil
		}
		res, err := baseline.Run(baseline.Config{
			Protocol: mk(),
			Users:    users,
			Frames:   frames,
			Slots:    phy.Format1DataSlots,
			Load:     load,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		out[idx] = ComparisonPoint{
			Protocol:        res.Protocol,
			Load:            load,
			Throughput:      res.Throughput,
			MeanDelayCycles: res.MeanDelayFrames,
			CollisionRate:   res.CollisionRate,
			Fairness:        res.Fairness,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AblationPoint is one row of the X2 scheduler/contention ablations.
type AblationPoint struct {
	Variant         string
	Load            float64
	Utilization     float64
	MeanDelayCycles float64
	Fairness        float64
	CollisionProb   float64
}

// SchedulerAblation compares the paper's round-robin + lumping against
// round-robin without lumping, FCFS and longest-queue-first, and the
// dynamic contention controller against a pinned single contention slot.
func SchedulerAblation(seed uint64, cycles int, loads []float64) ([]AblationPoint, error) {
	if loads == nil {
		loads = []float64{0.5, 0.9}
	}
	variants := []struct {
		name   string
		mutate func(*osumac.Config)
	}{
		{"rr+lump (paper)", func(*osumac.Config) {}},
		{"rr no-lump", func(c *osumac.Config) {
			c.Scheduler = &sched.RoundRobin{Lump: false}
		}},
		{"fcfs", func(c *osumac.Config) {
			c.Scheduler = sched.FCFS{}
		}},
		{"longest-queue", func(c *osumac.Config) {
			c.Scheduler = sched.LongestQueueFirst{}
		}},
		{"static 1 contention slot", func(c *osumac.Config) {
			c.MinContentionSlots = 1
			c.MaxContentionSlots = 1
		}},
		{"explicit-reservation policy", func(c *osumac.Config) {
			c.Policy = core.ReserveExplicit
		}},
	}
	var out []AblationPoint
	for _, v := range variants {
		for _, load := range loads {
			pt, err := runAblation(seed, cycles, load, v.mutate)
			if err != nil {
				return nil, err
			}
			pt.Variant = v.name
			out = append(out, *pt)
		}
	}
	return out, nil
}

// runAblation executes one OSU-MAC variant at one load and summarizes
// the ablation metrics.
func runAblation(seed uint64, cycles int, load float64, mutate func(*osumac.Config)) (*AblationPoint, error) {
	cfg := core.NewConfig()
	cfg.Seed = seed
	cfg.MeanInterarrival = traffic.InterarrivalForSlots(
		load, 10, traffic.PaperVariable, frame.MaxPayload,
		phy.CycleLength, phy.Format1DataSlots)
	mutate(&cfg)
	n, err := core.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		if _, err := n.AddSubscriber(frame.EIN(1000+i), true, 0); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := n.AddSubscriber(frame.EIN(2000+i), false, 0); err != nil {
			return nil, err
		}
	}
	if err := n.Run(cycles); err != nil {
		return nil, err
	}
	m := n.Metrics()
	return &AblationPoint{
		Load:            load,
		Utilization:     m.Utilization(),
		MeanDelayCycles: m.MeanDelayCycles(phy.CycleLength),
		Fairness:        m.Fairness(),
		CollisionProb:   m.CollisionProbability(),
	}, nil
}
