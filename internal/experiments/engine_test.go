package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func smallSweep(workers int) SweepOptions {
	return SweepOptions{
		Seed:      7,
		GPSUsers:  2,
		DataUsers: 6,
		Cycles:    60,
		Warmup:    10,
		Variable:  true,
		Loads:     []float64{0.5, 0.9},
		Workers:   workers,
	}
}

func TestLoadSweepParallelMatchesSerial(t *testing.T) {
	serial, err := LoadSweep(smallSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LoadSweep(smallSweep(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel LoadSweep differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestReplicatedSweepParallelMatchesSerial(t *testing.T) {
	serial, err := ReplicatedSweep(smallSweep(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ReplicatedSweep(smallSweep(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel ReplicatedSweep differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestComparisonParallelMatchesSerial(t *testing.T) {
	loads := []float64{0.5, 0.9}
	serial, err := Comparison(7, 6, 60, loads)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ComparisonWithWorkers(7, 6, 60, loads, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Comparison differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestForEachIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 37
		var hits [n]atomic.Int32
		if err := forEachIndexed(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachIndexedReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := forEachIndexed(8, workers, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 6:
				return errHigh
			default:
				return nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
	}
}
