package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This package fans independent scenario runs across a bounded worker
// pool. Every cell of a sweep is pure — osumac.Run builds a fresh
// network and RNG from the cell's own seed — so the only shared state
// between workers is the immutable RS code and its scratch pool, both
// concurrency-safe. Results land in an index-addressed slice and all
// aggregation happens afterwards in the exact order the serial loops
// used, which keeps parallel output byte-identical to serial output
// (float accumulation order included). The determinism analyzer bans
// goroutines from the simulation kernel (internal/core, internal/sched,
// internal/sim) but deliberately not from here: parallelism across
// whole simulations cannot reorder events inside one.

// forEachIndexed runs fn(i) for every i in [0, n) using up to `workers`
// concurrent goroutines (0 means GOMAXPROCS). It returns the
// lowest-index error regardless of worker count, so error reporting is
// deterministic too.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
