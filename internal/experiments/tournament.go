package experiments

import (
	"fmt"
	"math"
	"time"

	osumac "github.com/osu-netlab/osumac"
	"github.com/osu-netlab/osumac/internal/baseline"
	"github.com/osu-netlab/osumac/internal/conformance"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/obs"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/span"
)

// OSUMACName is the tournament name of the full OSU-MAC stack, placing
// it in the same protocol namespace as the baseline Name() strings.
const OSUMACName = "osu-mac"

// TournamentConfig parameterizes a protocols × loads grid run where
// every cell shares the same seed, user count, and frame budget, and
// every protocol's traced run is distilled into one obs.Export.
type TournamentConfig struct {
	// Seed is shared by every (protocol, load) cell.
	Seed uint64
	// Users is the subscriber count (default 10). Tracing bounds it to
	// frame.NoUser-1.
	Users int
	// Frames is the per-cell run length in frames/cycles (default 400).
	Frames int
	// Loads is the load grid (default 0.3, 0.5, 0.7, 0.9).
	Loads []float64
	// Protocols names the contenders: baseline Name() strings and/or
	// OSUMACName. Default: OSU-MAC plus every baseline.
	Protocols []string
	// Workers caps concurrent cell runs; results are byte-identical at
	// any setting (cells land in fixed grid positions).
	Workers int
}

// TournamentEntry is one protocol's aggregated snapshot.
type TournamentEntry struct {
	// Protocol matches Export.Label.
	Protocol string
	// Export carries the merged metrics, per-load gauges, and the span
	// phase distribution over all loads.
	Export *obs.Export
}

// tournamentCell is one (protocol, load) run, already reduced to its
// metric bundle and span distribution.
type tournamentCell struct {
	m    *baseline.Metrics
	dist *span.Distribution
}

// Tournament runs the protocols × loads grid and returns one entry per
// protocol, in cfg.Protocols order. Baseline cells run under the
// conformance baseline checker — an invariant breach fails the
// tournament rather than producing a tainted league table. Output is
// deterministic: same config → byte-identical Exports at any Workers.
func Tournament(cfg TournamentConfig) ([]TournamentEntry, error) {
	if cfg.Users <= 0 {
		cfg.Users = 10
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 400
	}
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.3, 0.5, 0.7, 0.9}
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []string{OSUMACName}
		for _, p := range baseline.All() {
			cfg.Protocols = append(cfg.Protocols, p.Name())
		}
	}
	for _, name := range cfg.Protocols {
		if name != OSUMACName && baseline.ByName(name) == nil {
			return nil, fmt.Errorf("tournament: unknown protocol %q", name)
		}
	}

	nl := len(cfg.Loads)
	cells := make([]tournamentCell, len(cfg.Protocols)*nl)
	err := forEachIndexed(len(cells), cfg.Workers, func(i int) error {
		proto, load := cfg.Protocols[i/nl], cfg.Loads[i%nl]
		c, err := runTournamentCell(proto, load, cfg)
		if err != nil {
			return err
		}
		cells[i] = *c
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]TournamentEntry, len(cfg.Protocols))
	for pi, proto := range cfg.Protocols {
		out[pi] = buildTournamentEntry(proto, cfg, cells[pi*nl:(pi+1)*nl])
	}
	return out, nil
}

// runTournamentCell simulates one (protocol, load) cell with tracing on
// and reduces the trace to a span distribution.
func runTournamentCell(proto string, load float64, cfg TournamentConfig) (*tournamentCell, error) {
	if proto == OSUMACName {
		return runTournamentOSUMAC(load, cfg)
	}
	buf := &core.TraceBuffer{Cap: 1 << 20}
	chk := conformance.NewBaseline(conformance.Options{})
	chk.Next = buf
	res, err := baseline.Run(baseline.Config{
		Protocol: baseline.ByName(proto),
		Users:    cfg.Users,
		Frames:   cfg.Frames,
		Slots:    phy.Format1DataSlots,
		Load:     load,
		Seed:     cfg.Seed,
		Tracer:   chk,
	})
	if err != nil {
		return nil, err
	}
	if rep := chk.Finish(); !rep.OK() {
		v := rep.Violations[0]
		return nil, fmt.Errorf("tournament: %s at load %.2f: %d invariant violation(s), first: %s (%s)",
			proto, load, len(rep.Violations), v.Invariant, v.Detail)
	}
	set := span.Stitch(buf.Events())
	return &tournamentCell{m: res.Metrics, dist: span.NewDistribution(set)}, nil
}

// runTournamentOSUMAC runs the full stack on the same grid point and
// adapts its result into the baseline metric vocabulary.
func runTournamentOSUMAC(load float64, cfg TournamentConfig) (*tournamentCell, error) {
	buf := &core.TraceBuffer{Cap: 1 << 20}
	res, err := osumac.Run(osumac.Scenario{
		Seed:          cfg.Seed,
		GPSUsers:      0,
		DataUsers:     cfg.Users,
		Load:          load,
		VariableSizes: true,
		Cycles:        cfg.Frames,
		WarmupCycles:  cfg.Frames / 20,
		Tracer:        buf,
	})
	if err != nil {
		return nil, err
	}
	set := span.Stitch(buf.Events())
	return &tournamentCell{m: adaptOSUMAC(res, set), dist: span.NewDistribution(set)}, nil
}

// adaptOSUMAC maps an OSU-MAC result onto the baseline metric bundle so
// one league table compares all contenders over the same descriptors.
// Access delay and deadline misses are not first-class data-plane
// metrics in core.Metrics (the 4 s bound is a GPS-service requirement
// there), so they are recovered from the stitched spans: a message's
// access delay is queue time until its first airtime span opens.
func adaptOSUMAC(res *osumac.Result, set *span.Set) *baseline.Metrics {
	cm := res.Metrics
	m := &baseline.Metrics{
		Frames:             uint64(cm.Cycles),
		SlotsOffered:       cm.DataSlotsOffered.Value(),
		SlotsUsed:          cm.DataSlotsUsed.Value(),
		MessagesGenerated:  cm.MessagesGenerated.Value(),
		MessagesDelivered:  cm.MessagesDelivered.Value(),
		MessagesDropped:    cm.MessagesDropped.Value(),
		FragmentsDelivered: cm.ReverseDataPkts.Value(),
		ContentionTx:       cm.ContentionTx.Value(),
		Collisions:         cm.ContentionCollisions.Value(),
		ReservationGrants:  cm.ReservationPackets.Value() + cm.PiggybackRequests.Value(),
		FairnessIndex:      res.Fairness,
	}
	for _, v := range cm.MessageDelay.Values() {
		m.MessageDelay.Add(v)
	}
	for _, tr := range set.Traces {
		if tr.Kind != span.KindMessage || !tr.Complete {
			continue
		}
		for _, s := range tr.Spans {
			if s.Phase != span.PhaseAirtime {
				continue
			}
			access := s.Start - tr.Start
			m.AccessDelay.Add(access.Seconds())
			if access > phy.GPSAccessDeadline {
				m.DeadlineMisses++
			}
			break
		}
	}
	return m
}

// buildTournamentEntry merges one protocol's per-load cells into a
// single Export: counters and samples sum, span distributions merge,
// the headline fairness is the per-load mean, and each load contributes
// four pinned per-load gauges so the league table can show the curve.
func buildTournamentEntry(proto string, cfg TournamentConfig, cells []tournamentCell) TournamentEntry {
	agg := &baseline.Metrics{}
	dist := &span.Distribution{}
	var fairness float64
	for i := range cells {
		agg.Merge(cells[i].m)
		dist.Merge(cells[i].dist)
		fairness += cells[i].m.FairnessIndex
	}
	agg.FairnessIndex = fairness / float64(len(cells))

	reg := obs.NewBaselineRegistry(proto, agg)
	for li, load := range cfg.Loads {
		m := cells[li].m
		tag := loadTag(load)
		gauge := func(metric, help string, v float64) {
			reg.AddGauge("osumac_baseline_load_"+tag+"_"+metric,
				fmt.Sprintf("%s at load %.2f", help, load),
				func() float64 { return v })
		}
		gauge("utilization", "fraction of offered data slots used", m.Throughput())
		gauge("mean_delay_seconds", "mean end-to-end message delay", m.MessageDelay.Mean())
		gauge("collision_rate", "collisions per frame", m.CollisionRate())
		gauge("fairness", "Jain's index over per-user delivered fragments", m.FairnessIndex)
	}

	exp := reg.Export(cfg.Frames, time.Duration(cfg.Frames)*phy.CycleLength, true)
	exp.Spans = dist
	return TournamentEntry{Protocol: proto, Export: exp}
}

// loadTag renders a load as a fixed-width percent tag ("070" for 0.7)
// so per-load gauge names sort in load order.
func loadTag(load float64) string {
	return fmt.Sprintf("%03d", int(math.Round(load*100)))
}
