// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the design-requirement checks of §2.1 and the
// ablation/baseline extensions described in DESIGN.md. Each experiment
// returns plain row data; cmd/experiments prints them and bench_test.go
// reports them as benchmark metrics.
package experiments

import (
	"fmt"
	"time"

	osumac "github.com/osu-netlab/osumac"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// SweepOptions parameterizes the load-index sweep shared by Figs 8–12a.
type SweepOptions struct {
	// Seed drives all randomness.
	Seed uint64
	// GPSUsers and DataUsers populate the cell (paper: 1–8 GPS, 5–14
	// data users).
	GPSUsers  int
	DataUsers int
	// Cycles per load point, after Warmup.
	Cycles int
	Warmup int
	// Variable selects uniform 40–500 B messages; false = fixed 120 B.
	Variable bool
	// Loads are the ρ sweep points; nil means the paper's set.
	Loads []float64
	// Workers bounds how many scenario runs execute concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial path. Results
	// are byte-identical at every setting (see engine.go).
	Workers int
}

// DefaultSweep matches the paper's simulation scenario: 4 GPS buses and
// 10 data subscribers with variable-length messages.
func DefaultSweep() SweepOptions {
	return SweepOptions{
		Seed:      42,
		GPSUsers:  4,
		DataUsers: 10,
		Cycles:    800,
		Warmup:    40,
		Variable:  true,
	}
}

// LoadPoint is one row of the load sweep: every per-figure metric at one
// load index.
type LoadPoint struct {
	Load                 float64
	Utilization          float64 // Fig 8a
	MeanDelayCycles      float64 // Fig 8b
	P95DelayCycles       float64
	CollisionProb        float64 // Fig 9/10 (a)
	ReservationLatencyS  float64 // Fig 9/10 (b)
	ControlOverhead      float64 // Fig 10
	Fairness             float64 // Fig 11
	SecondCFGain         float64 // Fig 12a
	MessagesDelivered    uint64
	MessagesDropped      uint64
	MeanDataSlotsUsed    float64
	GPSDeadlineViolation uint64
}

// LoadSweep runs the paper's scenario across the load points and
// collects every figure's metric in one pass. Load points are
// independent simulations, so they fan out over opts.Workers.
func LoadSweep(opts SweepOptions) ([]LoadPoint, error) {
	loads := opts.Loads
	if loads == nil {
		loads = osumac.PaperLoads
	}
	out := make([]LoadPoint, len(loads))
	err := forEachIndexed(len(loads), opts.Workers, func(i int) error {
		pt, err := runLoadPoint(opts, loads[i])
		if err != nil {
			return err
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runLoadPoint executes one (options, load) cell. It is pure: every
// call builds its own network and RNG from the cell's seed, which is
// what makes the fan-out above safe and deterministic.
func runLoadPoint(opts SweepOptions, load float64) (LoadPoint, error) {
	scn := osumac.Scenario{
		Seed:          opts.Seed,
		GPSUsers:      opts.GPSUsers,
		DataUsers:     opts.DataUsers,
		Load:          load,
		VariableSizes: opts.Variable,
		Cycles:        opts.Cycles,
		WarmupCycles:  opts.Warmup,
	}
	res, err := osumac.Run(scn)
	if err != nil {
		return LoadPoint{}, fmt.Errorf("load %.2f: %w", load, err)
	}
	return LoadPoint{
		Load:                 load,
		Utilization:          res.Utilization,
		MeanDelayCycles:      res.MeanDelayCycles,
		P95DelayCycles:       res.Metrics.MessageDelay.Percentile(95) / phy.CycleLength.Seconds(),
		CollisionProb:        res.CollisionProbability,
		ReservationLatencyS:  res.ReservationLatency,
		ControlOverhead:      res.ControlOverhead,
		Fairness:             res.Fairness,
		SecondCFGain:         res.SecondCFGain,
		MessagesDelivered:    res.Metrics.MessagesDelivered.Value(),
		MessagesDropped:      res.Metrics.MessagesDropped.Value(),
		MeanDataSlotsUsed:    res.MeanDataSlotsUsed,
		GPSDeadlineViolation: res.GPSDeadlineViolations,
	}, nil
}

// Fig12bPoint is one row of the dynamic-slot-adjustment comparison.
type Fig12bPoint struct {
	Load              float64
	GPSUsers          int
	Dynamic           bool
	MeanDataSlotsUsed float64
	Utilization       float64
}

// Fig12b compares mean data-slot usage with 1 and 4 GPS users, with and
// without dynamic slot adjustment (paper Fig. 12b). The gain appears
// with ≤3 GPS users at high load, where the converted ninth slot
// carries real traffic.
func Fig12b(seed uint64, cycles, warmup int, loads []float64) ([]Fig12bPoint, error) {
	if loads == nil {
		loads = osumac.PaperLoads
	}
	var out []Fig12bPoint
	for _, gps := range []int{1, 4} {
		for _, dynamic := range []bool{true, false} {
			for _, load := range loads {
				scn := osumac.Scenario{
					Seed:                seed,
					GPSUsers:            gps,
					DataUsers:           10,
					Load:                load,
					VariableSizes:       true,
					Cycles:              cycles,
					WarmupCycles:        warmup,
					DisableDynamicSlots: !dynamic,
				}
				res, err := osumac.Run(scn)
				if err != nil {
					return nil, err
				}
				out = append(out, Fig12bPoint{
					Load:              load,
					GPSUsers:          gps,
					Dynamic:           dynamic,
					MeanDataSlotsUsed: res.MeanDataSlotsUsed,
					Utilization:       res.Utilization,
				})
			}
		}
	}
	return out, nil
}

// Fig12aPoint contrasts the two-control-field design against the
// rejected single-CF alternative at one load.
type Fig12aPoint struct {
	Load            float64
	SecondCFGain    float64 // share of data packets in the last slot
	UtilizationCF2  float64
	UtilizationNoCF float64
}

// Fig12a measures the bandwidth the second control-field set saves: the
// share of reverse data packets carried by the last data slot (paper
// reports 5–14 %), plus a direct utilization comparison against the
// single-CF alternative.
func Fig12a(seed uint64, cycles, warmup int, loads []float64) ([]Fig12aPoint, error) {
	if loads == nil {
		loads = osumac.PaperLoads
	}
	var out []Fig12aPoint
	for _, load := range loads {
		base := osumac.Scenario{
			Seed: seed, GPSUsers: 4, DataUsers: 10, Load: load,
			VariableSizes: true, Cycles: cycles, WarmupCycles: warmup,
		}
		with, err := osumac.Run(base)
		if err != nil {
			return nil, err
		}
		base.DisableSecondCF = true
		without, err := osumac.Run(base)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig12aPoint{
			Load:            load,
			SecondCFGain:    with.SecondCFGain,
			UtilizationCF2:  with.Utilization,
			UtilizationNoCF: without.Utilization,
		})
	}
	return out, nil
}

// RegistrationResult captures the §2.1 registration design targets.
type RegistrationResult struct {
	Registrants   int
	SpreadCycles  int
	Within2Cycles float64
	Within10      float64
	MeanCycles    float64
	MaxCycles     float64
}

// Registration measures registration latency: registrants join the cell
// spread uniformly over spreadCycles notification cycles (0 = all at
// once, a worst-case storm). The §2.1 requirement is 80 % within 2
// notification cycles and 99 % within 10.
func Registration(seed uint64, registrants, spreadCycles int) (*RegistrationResult, error) {
	cfg := core.NewConfig()
	cfg.Seed = seed
	n, err := core.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed).Fork("reg-arrivals")
	window := time.Duration(spreadCycles) * phy.CycleLength
	for i := 0; i < registrants; i++ {
		var joinAt time.Duration
		if window > 0 {
			joinAt = time.Duration(rng.Uint64() % uint64(window))
		}
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, joinAt); err != nil {
			return nil, err
		}
	}
	if err := n.Run(spreadCycles + 60); err != nil {
		return nil, err
	}
	m := n.Metrics()
	return &RegistrationResult{
		Registrants:   int(m.RegistrationsApproved.Value()),
		SpreadCycles:  spreadCycles,
		Within2Cycles: m.RegistrationWithin(2),
		Within10:      m.RegistrationWithin(10),
		MeanCycles:    m.RegistrationLatency.Mean(),
		MaxCycles:     m.RegistrationLatency.Max(),
	}, nil
}

// GPSResult captures the §2.1 real-time service check.
type GPSResult struct {
	Reports        uint64
	Delivered      uint64
	MeanDelayS     float64
	MaxDelayS      float64
	Violations     uint64
	DeadlineSecond float64
}

// GPSAccessDelay runs a full cell (8 buses + data load) and measures GPS
// access delay against the 4-second bound.
func GPSAccessDelay(seed uint64, cycles int) (*GPSResult, error) {
	scn := osumac.Scenario{
		Seed: seed, GPSUsers: 8, DataUsers: 10, Load: 0.9,
		VariableSizes: true, Cycles: cycles, WarmupCycles: 20,
	}
	res, err := osumac.Run(scn)
	if err != nil {
		return nil, err
	}
	m := res.Metrics
	return &GPSResult{
		Reports:        m.GPSGenerated.Value(),
		Delivered:      m.GPSDelivered.Value(),
		MeanDelayS:     m.GPSAccessDelay.Mean(),
		MaxDelayS:      m.GPSAccessDelay.Max(),
		Violations:     m.GPSDeadlineViolations.Value(),
		DeadlineSecond: phy.GPSAccessDeadline.Seconds(),
	}, nil
}

// Table1Row is one physical-layer constant (paper Table 1).
type Table1Row struct {
	Name    string
	Forward string
	Reverse string
}

// Table1 returns the physical-layer parameter table as implemented.
func Table1() []Table1Row {
	sec := func(d time.Duration) string { return fmt.Sprintf("%.6g s", d.Seconds()) }
	return []Table1Row{
		{"Channel symbol rate (sym/s)", "3200", "2400"},
		{"Coding rate (coded bits/symbol)", "2", "2"},
		{"Information symbols per pilot frame", fmt.Sprint(phy.PSFrameInfoSymbols), fmt.Sprint(phy.PSFrameInfoSymbols)},
		{"Channel symbols per pilot frame", fmt.Sprint(phy.PSFrameSymbols), fmt.Sprint(phy.PSFrameSymbols)},
		{"Information bits per RS(64,48) codeword", fmt.Sprint(phy.CodewordInfoBits), fmt.Sprint(phy.CodewordInfoBits)},
		{"Bits per RS(64,48) codeword", fmt.Sprint(phy.CodewordBits), fmt.Sprint(phy.CodewordBits)},
		{"Channel symbols per regular packet", fmt.Sprint(phy.PacketSymbols), fmt.Sprint(phy.PacketSymbols)},
		{"Time per regular packet", sec(phy.ForwardPacketTime), sec(phy.ReversePacketTime)},
		{"Cycle preamble (symbols)", fmt.Sprint(phy.CyclePreambleSymbols), "n/a"},
		{"Time per cycle preamble", sec(phy.CyclePreambleTime), "n/a"},
		{"GPS slot total (symbols / s)", "n/a", fmt.Sprintf("%d / %s", phy.GPSSlotSymbols, sec(phy.GPSSlotTime))},
		{"Regular slot total (symbols / s)", "n/a", fmt.Sprintf("%d / %s", phy.RegularSlotSymbols, sec(phy.ReverseDataSlotTime))},
		{"Notification cycle length", sec(phy.CycleLength), sec(phy.CycleLength)},
	}
}

// Table2Row is one slot's access time in both formats (paper Table 2).
type Table2Row struct {
	Slot    string
	Format1 string // seconds, or "--"
	Format2 string
}

// Table2 returns the reverse-channel access times of both formats.
func Table2() []Table2Row {
	l1, l2 := core.NewLayout(core.Format1), core.NewLayout(core.Format2)
	g1, d1 := l1.Table2AccessTimes()
	g2, d2 := l2.Table2AccessTimes()
	sec := func(d time.Duration) string { return fmt.Sprintf("%.5f", d.Seconds()) }
	var rows []Table2Row
	for i := 0; i < len(g1); i++ {
		row := Table2Row{Slot: fmt.Sprintf("GPS slot %d", i+1), Format1: sec(g1[i]), Format2: "--"}
		if i < len(g2) {
			row.Format2 = sec(g2[i])
		}
		rows = append(rows, row)
	}
	for i := 0; i < len(d2); i++ {
		row := Table2Row{Slot: fmt.Sprintf("Data slot %d", i+1), Format1: "--", Format2: sec(d2[i])}
		if i < len(d1) {
			row.Format1 = sec(d1[i])
		}
		rows = append(rows, row)
	}
	return rows
}

// EffectiveInterarrival exposes the ρ→T mapping used by the sweep (for
// cross-checks in tests and docs).
func EffectiveInterarrival(load float64, dataUsers, gpsUsers int, variable bool) time.Duration {
	var dist traffic.SizeDist = traffic.PaperFixed
	if variable {
		dist = traffic.PaperVariable
	}
	d := osumac.DataSlotsFor(gpsUsers, true)
	return traffic.InterarrivalFor(load, dataUsers, dist.Mean(), phy.CycleLength, d, frame.MaxPayload)
}

// RobustnessPoint is one population cell of the §5 robustness check.
type RobustnessPoint struct {
	GPSUsers    int
	DataUsers   int
	Utilization float64
	DelayCycles float64
	Fairness    float64
}

// RobustnessResult summarizes the spread across populations.
type RobustnessResult struct {
	Points []RobustnessPoint
	// Utilization spread across all populations at the fixed load.
	UtilMin, UtilMax float64
	FairMin          float64
}

// Robustness reproduces the paper's §5 claim that "the results are
// quite robust … over a wide range of parameter values": it fixes the
// load index and sweeps the population over the paper's ranges (GPS
// users 1–8, data users 5–14), reporting how tightly utilization and
// fairness cluster.
func Robustness(seed uint64, load float64, cycles, warmup int) (*RobustnessResult, error) {
	res := &RobustnessResult{UtilMin: 2, FairMin: 2}
	for _, gps := range []int{1, 4, 8} {
		for _, data := range []int{5, 10, 14} {
			scn := osumac.Scenario{
				Seed: seed, GPSUsers: gps, DataUsers: data, Load: load,
				VariableSizes: true, Cycles: cycles, WarmupCycles: warmup,
			}
			r, err := osumac.Run(scn)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, RobustnessPoint{
				GPSUsers:    gps,
				DataUsers:   data,
				Utilization: r.Utilization,
				DelayCycles: r.MeanDelayCycles,
				Fairness:    r.Fairness,
			})
			if r.Utilization < res.UtilMin {
				res.UtilMin = r.Utilization
			}
			if r.Utilization > res.UtilMax {
				res.UtilMax = r.Utilization
			}
			if r.Fairness < res.FairMin {
				res.FairMin = r.Fairness
			}
		}
	}
	return res, nil
}
