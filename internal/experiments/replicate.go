package experiments

import (
	"fmt"
	"math"

	"github.com/osu-netlab/osumac/internal/stats"
)

// ReplicatedPoint is one load point aggregated over independent seeds:
// mean and sample standard deviation for the headline metrics.
type ReplicatedPoint struct {
	Load         float64
	Replications int

	UtilizationMean, UtilizationStd float64
	DelayMean, DelayStd             float64 // cycles
	CollisionMean, CollisionStd     float64
	OverheadMean, OverheadStd       float64
	FairnessMean, FairnessStd       float64
	CF2GainMean, CF2GainStd         float64
}

// ReplicatedSweep runs the load sweep across `replications` seeds
// (seed, seed+1, …) and aggregates each point. Use it when reporting
// results: single-seed runs of a 200-800 cycle simulation carry visible
// stochastic noise at light load.
//
// Every (replication, load) cell is an independent simulation, so the
// full grid fans out over opts.Workers at once. Aggregation stays in
// the serial order (replication-outer, load-inner) after all cells
// finish, so the floating-point accumulation — and therefore the
// printed tables — are byte-identical to a serial run.
func ReplicatedSweep(opts SweepOptions, replications int) ([]ReplicatedPoint, error) {
	if replications <= 0 {
		return nil, fmt.Errorf("experiments: need ≥1 replication, got %d", replications)
	}
	loads := opts.Loads
	if loads == nil {
		loads = defaultLoads()
	}
	cells := make([]LoadPoint, replications*len(loads))
	err := forEachIndexed(len(cells), opts.Workers, func(idx int) error {
		r, i := idx/len(loads), idx%len(loads)
		o := opts
		o.Seed = opts.Seed + uint64(r)
		pt, err := runLoadPoint(o, loads[i])
		if err != nil {
			return err
		}
		cells[idx] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	acc := make([]map[string]*stats.Sample, len(loads))
	for i := range acc {
		acc[i] = map[string]*stats.Sample{
			"util": {}, "delay": {}, "coll": {}, "ovhd": {}, "fair": {}, "cf2": {},
		}
	}
	for r := 0; r < replications; r++ {
		for i := range loads {
			p := cells[r*len(loads)+i]
			acc[i]["util"].Add(p.Utilization)
			acc[i]["delay"].Add(p.MeanDelayCycles)
			acc[i]["coll"].Add(p.CollisionProb)
			acc[i]["ovhd"].Add(p.ControlOverhead)
			acc[i]["fair"].Add(p.Fairness)
			acc[i]["cf2"].Add(p.SecondCFGain)
		}
	}
	out := make([]ReplicatedPoint, len(loads))
	for i, load := range loads {
		out[i] = ReplicatedPoint{
			Load:            load,
			Replications:    replications,
			UtilizationMean: acc[i]["util"].Mean(),
			UtilizationStd:  sampleStd(acc[i]["util"]),
			DelayMean:       acc[i]["delay"].Mean(),
			DelayStd:        sampleStd(acc[i]["delay"]),
			CollisionMean:   acc[i]["coll"].Mean(),
			CollisionStd:    sampleStd(acc[i]["coll"]),
			OverheadMean:    acc[i]["ovhd"].Mean(),
			OverheadStd:     sampleStd(acc[i]["ovhd"]),
			FairnessMean:    acc[i]["fair"].Mean(),
			FairnessStd:     sampleStd(acc[i]["fair"]),
			CF2GainMean:     acc[i]["cf2"].Mean(),
			CF2GainStd:      sampleStd(acc[i]["cf2"]),
		}
	}
	return out, nil
}

// sampleStd converts the population variance of stats.Sample into the
// unbiased sample standard deviation.
func sampleStd(s *stats.Sample) float64 {
	n := float64(s.Count())
	if n < 2 {
		return 0
	}
	return math.Sqrt(s.Variance() * n / (n - 1))
}

// defaultLoads returns the paper's sweep points without importing the
// root package here twice.
func defaultLoads() []float64 {
	return []float64{0.3, 0.5, 0.8, 0.9, 1.0, 1.1}
}
