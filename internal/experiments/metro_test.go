package experiments

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/phy"
)

// metroCI is a CI-sized metro slice: enough cells for real exchange
// pressure, small enough for the test suite.
func metroCI(sharded bool) MetroOptions {
	return MetroOptions{
		Cells:         40,
		GPSPerCell:    1,
		DataPerCell:   3,
		RoutedPerCell: 2,
		Load:          0.8,
		Seed:          42,
		Warmup:        2,
		Cycles:        4,
		WireDelay:     phy.CycleLength,
		Sharded:       sharded,
	}
}

// TestMetroShardedMatchesSerial: the metro runner's digest — FNV over
// every per-cell metrics snapshot plus the backbone counters and
// latency samples — must be engine-independent.
func TestMetroShardedMatchesSerial(t *testing.T) {
	serial, err := Metro(metroCI(false))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Metro(metroCI(true))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Digest != sharded.Digest {
		t.Fatalf("metro digests diverge: serial %x, sharded %x\nserial: %+v\nsharded: %+v",
			serial.Digest, sharded.Digest, serial, sharded)
	}
	if serial.Forwarded == 0 || serial.Delivered == 0 {
		t.Fatalf("ring traffic never crossed the backbone: %+v", serial)
	}
	if serial.Subscribers != 40*6 {
		t.Fatalf("subscriber count %d, want %d", serial.Subscribers, 40*6)
	}
}

// TestMetroDigestIsStableAcrossLookahead: the barrier window must stay a
// pure performance knob at metro scale too.
func TestMetroDigestIsStableAcrossLookahead(t *testing.T) {
	ref, err := Metro(metroCI(true))
	if err != nil {
		t.Fatal(err)
	}
	narrow := metroCI(true)
	narrow.Lookahead = 500 * time.Millisecond
	got, err := Metro(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Digest != got.Digest {
		t.Fatalf("lookahead changed the metro digest: %x vs %x", ref.Digest, got.Digest)
	}
}

// TestMetroValidation pins the capacity checks.
func TestMetroValidation(t *testing.T) {
	bad := metroCI(true)
	bad.DataPerCell = phy.MaxDataUsers
	if _, err := Metro(bad); err == nil {
		t.Fatal("over-capacity cell accepted")
	}
	bad = metroCI(true)
	bad.Cells = 1 << 15
	bad.RoutedPerCell = 2
	if _, err := Metro(bad); err == nil {
		t.Fatal("routed population beyond the 16-bit address space accepted")
	}
	bad = metroCI(true)
	bad.Cells = 0
	if _, err := Metro(bad); err == nil {
		t.Fatal("zero cells accepted")
	}
}
