package flight

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/span"
)

func TestSampledUserDeterministic(t *testing.T) {
	for u := frame.UserID(0); u < 63; u++ {
		a := SampledUser(12345, u, 4)
		b := SampledUser(12345, u, 4)
		if a != b {
			t.Fatalf("SampledUser not deterministic for user %d", u)
		}
	}
}

func TestSampledUserRateOneKeepsAll(t *testing.T) {
	for u := frame.UserID(0); u < 63; u++ {
		if !SampledUser(7, u, 1) || !SampledUser(7, u, 0) {
			t.Fatalf("rate<=1 must keep every user, dropped %d", u)
		}
	}
}

func TestSampledUserSeedVariesSelection(t *testing.T) {
	// Different seeds must (overwhelmingly) pick different subsets.
	same := true
	for u := frame.UserID(0); u < 63; u++ {
		if SampledUser(1, u, 4) != SampledUser(2, u, 4) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not influence the sampled subset")
	}
}

func TestSampledTracerFiltering(t *testing.T) {
	var got []core.TraceEvent
	st := NewSampledTracer(core.FuncTracer(func(e core.TraceEvent) { got = append(got, e) }), 99, 3)
	// A no-user event always passes.
	st.Trace(core.TraceEvent{Kind: core.EventCycleStart, User: frame.NoUser, Cycle: 1})
	// User events pass iff sampled.
	var kept, dropped frame.UserID = frame.NoUser, frame.NoUser
	for u := frame.UserID(0); u < 63; u++ {
		if SampledUser(99, u, 3) {
			if kept == frame.NoUser {
				kept = u
			}
		} else if dropped == frame.NoUser {
			dropped = u
		}
	}
	if kept == frame.NoUser || dropped == frame.NoUser {
		t.Fatal("rate 3 should split 63 users into kept and dropped")
	}
	st.Trace(core.TraceEvent{Kind: core.EventDataRx, User: kept, Cycle: 1})
	st.Trace(core.TraceEvent{Kind: core.EventDataRx, User: dropped, Cycle: 1})
	if len(got) != 2 {
		t.Fatalf("forwarded %d events, want 2 (cycle-start + sampled user)", len(got))
	}
	if got[1].User != kept {
		t.Fatalf("forwarded user %d, want sampled user %d", got[1].User, kept)
	}
}

func TestSampledTracerCycleWindow(t *testing.T) {
	var got []core.TraceEvent
	st := NewSampledTracer(core.FuncTracer(func(e core.TraceEvent) { got = append(got, e) }), 1, 1).FilterCycles(5, 10)
	for c := 0; c < 20; c++ {
		st.Trace(core.TraceEvent{Kind: core.EventCycleStart, User: frame.NoUser, Cycle: c})
	}
	if len(got) != 6 {
		t.Fatalf("forwarded %d events, want 6 (cycles 5..10)", len(got))
	}
}

// runSampledCell runs a small deterministic cell once with the given
// tracer attached and returns nothing else — the tracer captures.
func runSampledCell(t *testing.T, tracer core.Tracer) {
	t.Helper()
	cfg := core.NewConfig()
	cfg.Seed = 11
	cfg.MeanInterarrival = 6 * time.Second
	cfg.Tracer = tracer
	n, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := n.AddSubscriber(frame.EIN(300+i), true, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(40); err != nil {
		t.Fatal(err)
	}
}

// TestSampledStitchMatchesFullStitch is the head-sampling contract:
// for a sampled user, span stitching over the sampled stream yields
// exactly the traces the full stream yields for that user.
func TestSampledStitchMatchesFullStitch(t *testing.T) {
	const seed, rate = 11, 2

	full := &core.TraceBuffer{Cap: 1 << 18}
	runSampledCell(t, full)
	fullSet := span.Stitch(full.Events())
	if len(fullSet.Traces) == 0 {
		t.Fatal("full run stitched no traces")
	}

	sampled := &core.TraceBuffer{Cap: 1 << 18}
	runSampledCell(t, NewSampledTracer(sampled, seed, rate))
	sampledSet := span.Stitch(sampled.Events())

	anySampled := false
	for u := frame.UserID(0); u < 63; u++ {
		want := fullSet.ByUser(u)
		got := sampledSet.ByUser(u)
		if !SampledUser(seed, u, rate) {
			if len(got) != 0 {
				t.Fatalf("unsampled user %d has %d traces in the sampled run", u, len(got))
			}
			continue
		}
		if len(want) > 0 {
			anySampled = true
		}
		if len(got) != len(want) {
			t.Fatalf("sampled user %d: %d traces, full run has %d", u, len(got), len(want))
		}
		for i := range want {
			wj, _ := json.Marshal(want[i])
			gj, _ := json.Marshal(got[i])
			if string(wj) != string(gj) {
				t.Fatalf("sampled user %d trace %d differs:\n got %s\nwant %s", u, i, gj, wj)
			}
		}
	}
	if !anySampled {
		t.Fatal("no sampled user had traces — test proves nothing; change seed/rate")
	}
}
