package flight

import (
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
)

// SampledTracer is a deterministic head-sampling wrapper: it forwards
// events for a seeded hash-selected subset of users, so span stitching
// still sees every lifecycle event of a sampled user (head sampling —
// the keep/drop decision is a pure function of (seed, user), decided
// "at the head" rather than per event). Events that name no user
// (cycle starts, collisions, format switches) always pass, because
// stitching and the autopsy need them for context.
//
// The decision is splitmix64-style hashing, not modulo of the raw ID,
// so adjacent user IDs land in different buckets; and it depends only
// on the scenario seed, so twin runs sample identical user sets.
type SampledTracer struct {
	next  core.Tracer
	seed  int64
	rate  int // keep ~1/rate users; <= 1 keeps everyone
	cycLo int
	cycHi int // -1: unbounded
}

var _ core.Tracer = (*SampledTracer)(nil)

// NewSampledTracer wraps next, keeping roughly one in rate users.
// rate <= 1 keeps every user (the wrapper becomes a pass-through).
func NewSampledTracer(next core.Tracer, seed int64, rate int) *SampledTracer {
	return &SampledTracer{next: next, seed: seed, rate: rate, cycHi: -1}
}

// FilterCycles additionally restricts forwarded events to cycles in
// [lo, hi]; hi < 0 means unbounded above. No-user events outside the
// window are dropped too.
func (s *SampledTracer) FilterCycles(lo, hi int) *SampledTracer {
	s.cycLo, s.cycHi = lo, hi
	return s
}

// SampledUser reports whether the given user is in the sampled subset
// for (seed, rate). Exported so tests and tools can predict which
// users a sampled run retains.
func SampledUser(seed int64, u frame.UserID, rate int) bool {
	if rate <= 1 {
		return true
	}
	h := uint64(seed) ^ (uint64(u)+1)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h%uint64(rate) == 0
}

// Trace implements core.Tracer. The rejecting path allocates nothing;
// what the downstream tracer does with an accepted event is its own
// hot-path contract (the nil guard marks the tracer seam for the
// hotpathalloc reachability analysis).
func (s *SampledTracer) Trace(e core.TraceEvent) {
	if e.Cycle < s.cycLo || (s.cycHi >= 0 && e.Cycle > s.cycHi) {
		return
	}
	if e.User != frame.NoUser && !SampledUser(s.seed, e.User, s.rate) {
		return
	}
	if s.next != nil {
		s.next.Trace(e)
	}
}
