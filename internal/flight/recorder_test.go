package flight

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/obs"
)

// feed pushes n ordinary events at the given cycle through the recorder.
func feed(rec *Recorder, startSeq uint64, n int, cycle int) uint64 {
	for i := 0; i < n; i++ {
		e := ev(startSeq, cycle)
		rec.Trace(e)
		startSeq++
	}
	return startSeq
}

func deadlineEvent(seq uint64, cycle int) core.TraceEvent {
	return core.TraceEvent{
		At:    time.Duration(seq) * time.Millisecond,
		Seq:   seq,
		Cycle: cycle,
		Kind:  core.EventGPSDeadlineViolation,
		User:  3,
		Slot:  2,
		DK:    core.DetailGPSLate,
		Arg0:  int64(5 * time.Second),
		Arg1:  int64(4 * time.Second),
	}
}

func TestRecorderGPSDeadlineTriggerWritesDump(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(Options{RingCap: 64, DumpDir: dir, Seed: 42})
	seq := feed(rec, 1, 10, 5)
	rec.Trace(deadlineEvent(seq, 5))

	dumps := rec.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1 (err=%v)", len(dumps), rec.Err())
	}
	want := filepath.Join(dir, "flight-42-c00005-gps-deadline-000.jsonl")
	if dumps[0] != want {
		t.Fatalf("dump path %q, want %q", dumps[0], want)
	}

	// The dump must contain the triggering event itself (recorder sits
	// in front of the chain, so the event is in the ring before the
	// trigger fires) and round-trip losslessly through DecodeJSONL.
	f, err := os.Open(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := obs.DecodeJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Ring().Snapshot()
	if len(decoded) != len(snap) {
		t.Fatalf("dump has %d events, ring snapshot %d", len(decoded), len(snap))
	}
	last := decoded[len(decoded)-1]
	if last.Kind != core.EventGPSDeadlineViolation {
		t.Fatalf("last dumped event is %v, want the triggering violation", last.Kind)
	}
	if last.Detail != "late: access delay 5s exceeds the 4s deadline" {
		t.Fatalf("violation detail %q not materialized as expected", last.Detail)
	}
	for i := range snap {
		if decoded[i] != snap[i] {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, decoded[i], snap[i])
		}
	}
}

func TestRecorderCooldownSuppressesRepeatTrigger(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(Options{RingCap: 64, DumpDir: dir, Seed: 1, CooldownCycles: 10})
	seq := feed(rec, 1, 5, 0)
	rec.Trace(deadlineEvent(seq, 0))
	seq++
	// Within the cooldown window: suppressed.
	rec.Trace(deadlineEvent(seq, 5))
	seq++
	if len(rec.Dumps()) != 1 {
		t.Fatalf("cooldown failed: %d dumps, want 1", len(rec.Dumps()))
	}
	// Past the cooldown: fires again.
	rec.Trace(deadlineEvent(seq, 10))
	if len(rec.Dumps()) != 2 {
		t.Fatalf("post-cooldown trigger suppressed: %d dumps, want 2", len(rec.Dumps()))
	}
}

func TestRecorderIndependentCooldownPerTrigger(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(Options{RingCap: 64, DumpDir: dir, Seed: 1, CooldownCycles: 100})
	feed(rec, 1, 5, 0)
	if rec.TriggerNow(TriggerGPSDeadline, 0) == "" {
		t.Fatal("first gps-deadline trigger suppressed")
	}
	// A different trigger class is on its own cooldown clock.
	if rec.TriggerNow(TriggerConformance, 1) == "" {
		t.Fatal("conformance trigger suppressed by gps-deadline cooldown")
	}
	if rec.TriggerNow(TriggerGPSDeadline, 50) != "" {
		t.Fatal("gps-deadline trigger not suppressed within its cooldown")
	}
}

func TestRecorderMaxDumpsCap(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(Options{RingCap: 64, DumpDir: dir, Seed: 1, CooldownCycles: 1, MaxDumps: 2})
	feed(rec, 1, 3, 0)
	for c := 0; c < 10; c++ {
		rec.TriggerNow(TriggerConformance, c*10)
	}
	if len(rec.Dumps()) != 2 {
		t.Fatalf("MaxDumps=2 but %d dumps written", len(rec.Dumps()))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d files on disk, want 2", len(entries))
	}
}

func TestRecorderFallbackRateTrigger(t *testing.T) {
	dir := t.TempDir()
	m := &core.Metrics{}
	rec := NewRecorder(Options{
		RingCap: 64, DumpDir: dir, Seed: 9,
		FallbackWindow: 10, FallbackRateThreshold: 0.5, Metrics: m,
	})
	cycleStart := func(seq uint64, cycle int) core.TraceEvent {
		return core.TraceEvent{Seq: seq, Cycle: cycle, Kind: core.EventCycleStart, User: frame.NoUser, Slot: -1, Detail: core.Format2.String()}
	}
	seq := uint64(1)
	// Anchor window at cycle 0, then a healthy window: 10 compiled cycles.
	rec.Trace(cycleStart(seq, 0))
	seq++
	for c := 1; c <= 10; c++ {
		m.CompiledCycles.Inc()
		rec.Trace(cycleStart(seq, c))
		seq++
	}
	if len(rec.Dumps()) != 0 {
		t.Fatalf("healthy window fired a dump: %v", rec.Dumps())
	}
	// A stormy window: 10 fallbacks out of 10 cycles.
	for c := 11; c <= 20; c++ {
		m.CompiledFallbacks.Inc()
		rec.Trace(cycleStart(seq, c))
		seq++
	}
	if len(rec.Dumps()) != 1 {
		t.Fatalf("fallback storm did not fire: %d dumps (err=%v)", len(rec.Dumps()), rec.Err())
	}
	if filepath.Base(rec.Dumps()[0]) != "flight-9-c00020-fallback-rate-000.jsonl" {
		t.Fatalf("unexpected dump name %s", filepath.Base(rec.Dumps()[0]))
	}
}

// TestRecorderDumpsByteIdentical replays the same synthetic event
// stream into two recorders and asserts the dump files match byte for
// byte under identical names — the determinism contract CI relies on.
func TestRecorderDumpsByteIdentical(t *testing.T) {
	run := func(dir string) string {
		rec := NewRecorder(Options{RingCap: 32, DumpDir: dir, Seed: 77})
		seq := feed(rec, 1, 40, 3) // overflow the 32-slot ring
		rec.Trace(deadlineEvent(seq, 4))
		if rec.Err() != nil {
			t.Fatal(rec.Err())
		}
		if len(rec.Dumps()) != 1 {
			t.Fatalf("%d dumps, want 1", len(rec.Dumps()))
		}
		return rec.Dumps()[0]
	}
	p1 := run(t.TempDir())
	p2 := run(t.TempDir())
	if filepath.Base(p1) != filepath.Base(p2) {
		t.Fatalf("dump names differ: %s vs %s", filepath.Base(p1), filepath.Base(p2))
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("twin dumps differ byte-for-byte")
	}
	if len(b1) == 0 {
		t.Fatal("dump is empty")
	}
}

// TestRecorderStickyError: an unwritable dump dir records one error
// and disables further dumps without disturbing recording.
func TestRecorderStickyError(t *testing.T) {
	rec := NewRecorder(Options{RingCap: 16, DumpDir: filepath.Join(t.TempDir(), "missing"), Seed: 1, CooldownCycles: 1})
	seq := feed(rec, 1, 3, 0)
	rec.Trace(deadlineEvent(seq, 0))
	if rec.Err() == nil {
		t.Fatal("expected a dump-write error for a missing directory")
	}
	if got := rec.TriggerNow(TriggerConformance, 100); got != "" {
		t.Fatalf("trigger after sticky error wrote %q", got)
	}
	if rec.Ring().Recorded() == 0 {
		t.Fatal("recording stopped after dump error")
	}
}
