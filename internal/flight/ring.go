// Package flight is the always-on flight recorder of the osumac
// simulator: a fixed-capacity, zero-allocation ring buffer that records
// every trace event of a run, and a trigger pipeline that snapshots the
// ring into a JSONL dump the moment an anomaly fires — a conformance
// violation, a GPS deadline miss, or a compiled-cycle fallback storm.
//
// Unlike core.TraceBuffer (which drops the oldest half when full and
// costs an amortized copy) the ring overwrites one slot per event, so
// the record path performs no allocation and no bulk copies and is
// cheap enough to leave attached in every run. Events are stored in
// their raw structured form (lazy detail operands, see
// core.DetailKind); Snapshot materializes them, so a dump feeds
// internal/span stitching and the GPS-deadline autopsy unchanged.
//
// When the Recorder is the terminal tracer (Options.Next is nil) the
// trace emitter in core stores events into the ring inline — no
// interface call, no intermediate copy — and forwards only the
// trigger-relevant kinds through the Tracer interface (see core.Ring
// and Recorder.ClaimInlineRing). That keeps the always-on overhead
// within the BenchmarkFlightRecorderOverhead budget.
//
// Everything in a dump is derived from virtual time and the scenario
// seed — no wall-clock, hostname, or pointer values — so two same-seed
// runs produce byte-identical dump files with deterministic names.
package flight

import (
	"github.com/osu-netlab/osumac/internal/core"
)

// Ring is a fixed-capacity power-of-two ring buffer implementing
// core.Tracer. Trace overwrites the oldest event once full; the record
// path allocates nothing. The storage lives in core (core.Ring) so the
// trace emitter can store into it inline; this alias keeps the flight
// API self-contained.
type Ring = core.Ring

// NewRing builds a ring with at least capacity slots, rounded up to a
// power of two. capacity <= 0 selects the default 4096.
func NewRing(capacity int) *Ring { return core.NewRing(capacity) }
