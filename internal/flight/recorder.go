package flight

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/obs"
)

// Trigger names an anomaly class that can fire a flight dump. The name
// is embedded in the dump filename, so it must stay filesystem-safe.
type Trigger string

const (
	// TriggerConformance fires from a conformance Checker violation
	// (wire Options.OnViolation to Recorder.TriggerNow).
	TriggerConformance Trigger = "conformance"
	// TriggerGPSDeadline fires on a gps-deadline-violation trace event.
	TriggerGPSDeadline Trigger = "gps-deadline"
	// TriggerFallbackRate fires when the compiled-cycle executor's
	// fallback rate over the trailing window crosses the threshold.
	TriggerFallbackRate Trigger = "fallback-rate"
)

// Options configures a Recorder. The zero value is usable: a 4096-slot
// ring, dumps into the current directory, a 100-cycle per-trigger
// cooldown, at most 16 dumps per run, and the fallback-rate trigger
// disabled (it needs Metrics).
type Options struct {
	// RingCap is the ring capacity in events, rounded up to a power of
	// two; <= 0 selects 4096.
	RingCap int
	// DumpDir receives the JSONL dump files; "" means the current
	// directory. It must already exist.
	DumpDir string
	// Seed is the scenario seed, embedded in dump filenames so
	// same-seed runs name their dumps identically.
	Seed uint64
	// CooldownCycles is the minimum number of notification cycles
	// between two dumps of the same trigger; <= 0 selects 100.
	CooldownCycles int
	// MaxDumps caps dump files per run; <= 0 selects 16.
	MaxDumps int
	// FallbackWindow is the trailing cycle-count window for the
	// fallback-rate trigger; <= 0 selects 50.
	FallbackWindow int
	// FallbackRateThreshold in [0,1]: the fallback trigger fires when
	// fallbacks/cycles over the window reaches it. <= 0 disables the
	// trigger (as does a nil Metrics).
	FallbackRateThreshold float64
	// Metrics supplies the compiled-cycle counters the fallback-rate
	// trigger watches. Nil disables that trigger.
	Metrics *core.Metrics
	// Next receives every event after the ring records it, so the
	// recorder composes with the existing tracer chain (conformance
	// checker, TraceBuffer, JSONL sink...). Leaving Next nil lets
	// core's trace emitter claim the ring store (ClaimInlineRing),
	// which is the cheapest always-on configuration.
	Next core.Tracer
}

// Recorder is the flight-recorder trigger pipeline: a Ring that
// records every event plus anomaly detection that snapshots the ring
// into a deterministic JSONL dump file. It implements core.Tracer and
// belongs at the FRONT of the tracer chain, so that when a downstream
// consumer (e.g. the conformance checker) flags the current event, the
// event is already in the ring.
type Recorder struct {
	ring *Ring
	opts Options

	// claimed is set when core's trace emitter took over the ring store
	// (ClaimInlineRing): Trace then only sees the trigger-relevant
	// kinds and must not store them into the ring a second time.
	claimed   bool
	lastFired map[Trigger]int
	dumps     []string
	ordinal   int
	err       error

	// fallback-rate window anchors, sampled at window boundaries.
	windowStart     int
	cyclesAnchor    uint64
	fallbacksAnchor uint64
}

var _ core.Tracer = (*Recorder)(nil)

// NewRecorder builds a Recorder. The returned recorder is ready to be
// installed as the scenario tracer.
func NewRecorder(opts Options) *Recorder {
	if opts.CooldownCycles <= 0 {
		opts.CooldownCycles = 100
	}
	if opts.MaxDumps <= 0 {
		opts.MaxDumps = 16
	}
	if opts.FallbackWindow <= 0 {
		opts.FallbackWindow = 50
	}
	return &Recorder{
		ring:        NewRing(opts.RingCap),
		opts:        opts,
		lastFired:   make(map[Trigger]int),
		windowStart: -1,
	}
}

// Ring exposes the underlying ring (for Snapshot, Recorded, ...).
func (r *Recorder) Ring() *Ring { return r.ring }

// SetMetrics attaches the run's metric bundle for the fallback-rate
// trigger. Callers that build the tracer chain before the network
// exists (cmd/osumacsim) use this once the network is up.
func (r *Recorder) SetMetrics(m *core.Metrics) { r.opts.Metrics = m }

// ClaimInlineRing implements core's inline-recorder contract: when the
// recorder is the terminal tracer (no Next), it hands the per-event
// ring store to the trace emitter and asks that only the kinds its
// trigger logic inspects still travel through the Tracer interface.
// With a downstream consumer attached the claim is refused — Next
// needs the full stream, so every event must flow through Trace.
func (r *Recorder) ClaimInlineRing() (*Ring, uint64) {
	if r.opts.Next != nil {
		return nil, 0
	}
	r.claimed = true
	return r.ring, 1<<uint(core.EventGPSDeadlineViolation) | 1<<uint(core.EventCycleStart)
}

// Trace implements core.Tracer: record into the ring, forward to the
// next tracer, then check triggers. The record path itself allocates
// nothing; allocation happens only when a trigger fires and a dump is
// written. When the ring store is claimed by core's emitter, Trace
// receives only trigger-relevant kinds, already ring-stored.
func (r *Recorder) Trace(e core.TraceEvent) {
	if !r.claimed {
		r.ring.Trace(e)
		if r.opts.Next != nil {
			r.opts.Next.Trace(e)
		}
	}
	switch e.Kind {
	case core.EventGPSDeadlineViolation:
		r.TriggerNow(TriggerGPSDeadline, e.Cycle)
	case core.EventCycleStart:
		r.checkFallbackRate(e.Cycle)
	}
}

// checkFallbackRate evaluates the compiled-cycle fallback rate over
// the trailing window at each window boundary.
func (r *Recorder) checkFallbackRate(cycle int) {
	m := r.opts.Metrics
	if m == nil || r.opts.FallbackRateThreshold <= 0 {
		return
	}
	if r.windowStart < 0 {
		r.windowStart = cycle
		r.cyclesAnchor = m.CompiledCycles.Value() + m.CompiledFallbacks.Value()
		r.fallbacksAnchor = m.CompiledFallbacks.Value()
		return
	}
	if cycle-r.windowStart < r.opts.FallbackWindow {
		return
	}
	total := m.CompiledCycles.Value() + m.CompiledFallbacks.Value()
	dTotal := total - r.cyclesAnchor
	dFall := m.CompiledFallbacks.Value() - r.fallbacksAnchor
	r.windowStart = cycle
	r.cyclesAnchor = total
	r.fallbacksAnchor = m.CompiledFallbacks.Value()
	if dTotal == 0 {
		return
	}
	if float64(dFall)/float64(dTotal) >= r.opts.FallbackRateThreshold {
		r.TriggerNow(TriggerFallbackRate, cycle)
	}
}

// TriggerNow requests a dump for the given trigger at the given cycle,
// subject to the per-trigger cooldown and the MaxDumps cap. It is the
// public anomaly hook: wire conformance.Options.OnViolation to
//
//	func(v conformance.Violation) { rec.TriggerNow(flight.TriggerConformance, v.Cycle) }
//
// Returns the dump file path, or "" when suppressed.
func (r *Recorder) TriggerNow(t Trigger, cycle int) string {
	if r.err != nil || len(r.dumps) >= r.opts.MaxDumps {
		return ""
	}
	if last, ok := r.lastFired[t]; ok && cycle-last < r.opts.CooldownCycles {
		return ""
	}
	r.lastFired[t] = cycle
	path, err := r.dump(t, cycle)
	if err != nil {
		r.err = err
		return ""
	}
	r.dumps = append(r.dumps, path)
	return path
}

// dump writes the current ring snapshot as a JSONL file with a
// deterministic name: flight-<seed>-c<cycle>-<trigger>-<ordinal>.jsonl.
// Every field in the file derives from virtual time, so same-seed runs
// produce byte-identical dumps under identical names.
func (r *Recorder) dump(t Trigger, cycle int) (string, error) {
	//lint:ignore hotpathalloc dump naming runs on the anomaly path only (a fired trigger), never per event
	name := fmt.Sprintf("flight-%d-c%05d-%s-%03d.jsonl", r.opts.Seed, cycle, t, r.ordinal)
	r.ordinal++
	path := filepath.Join(r.opts.DumpDir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	sink := obs.NewJSONLSink(f)
	for _, e := range r.ring.Snapshot() {
		sink.Trace(e)
	}
	if err := sink.Flush(); err != nil {
		_ = f.Close() // the flush error is the one worth reporting
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// Dumps returns the dump file paths written so far, in order.
func (r *Recorder) Dumps() []string { return r.dumps }

// Err returns the first dump-write error, if any. After an error the
// recorder keeps recording but writes no further dumps.
func (r *Recorder) Err() error { return r.err }
