package flight

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
)

func ev(seq uint64, cycle int) core.TraceEvent {
	return core.TraceEvent{
		At:    time.Duration(seq) * time.Millisecond,
		Seq:   seq,
		Cycle: cycle,
		Kind:  core.EventDataRx,
		User:  frame.UserID(int(seq) % 10),
		Slot:  int(seq) % 5,
		DK:    core.DetailMsgBytes,
		Arg0:  int64(seq),
		Arg1:  int64(seq) * 3,
	}
}

func TestRingRoundsCapacityToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 4096}, {-5, 4096}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {4096, 4096}, {5000, 8192},
	} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingSnapshotUnderCapacity(t *testing.T) {
	r := NewRing(8)
	for i := uint64(1); i <= 5; i++ {
		r.Trace(ev(i, 0))
	}
	if r.Len() != 5 || r.Recorded() != 5 || r.Overwritten() != 0 {
		t.Fatalf("Len=%d Recorded=%d Overwritten=%d", r.Len(), r.Recorded(), r.Overwritten())
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d events, want 5", len(snap))
	}
	for i, e := range snap {
		if e.Seq != uint64(i+1) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(8)
	for i := uint64(1); i <= 20; i++ {
		r.Trace(ev(i, 0))
	}
	if r.Len() != 8 || r.Recorded() != 20 || r.Overwritten() != 12 {
		t.Fatalf("Len=%d Recorded=%d Overwritten=%d", r.Len(), r.Recorded(), r.Overwritten())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if e.Seq != uint64(13+i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest retained must be 13)", i, e.Seq, 13+i)
		}
	}
}

// TestRingSnapshotMaterializes asserts the snapshot renders lazy
// detail operands into Detail, so dumps feed span/autopsy unchanged.
func TestRingSnapshotMaterializes(t *testing.T) {
	r := NewRing(4)
	r.Trace(ev(1, 0))
	snap := r.Snapshot()
	if snap[0].Detail != "msg=1 bytes=3" {
		t.Fatalf("Detail = %q, want %q", snap[0].Detail, "msg=1 bytes=3")
	}
	if snap[0].DK != core.DetailVerbatim || snap[0].Arg0 != 0 {
		t.Fatalf("snapshot event not materialized: %+v", snap[0])
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(4)
	for i := uint64(1); i <= 6; i++ {
		r.Trace(ev(i, 0))
	}
	r.Reset()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("Reset did not empty the ring")
	}
}

// TestRingTraceZeroAlloc is the zero-allocation guard on the record
// path — the property that makes the recorder safe to leave always-on.
func TestRingTraceZeroAlloc(t *testing.T) {
	r := NewRing(1024)
	e := ev(7, 3)
	if allocs := testing.AllocsPerRun(1000, func() { r.Trace(e) }); allocs != 0 {
		t.Fatalf("Ring.Trace allocates %.1f times per event, want 0", allocs)
	}
}

// TestRecorderTraceZeroAlloc covers the full recorder record path (ring
// store + forward + trigger checks) when no trigger fires.
func TestRecorderTraceZeroAlloc(t *testing.T) {
	rec := NewRecorder(Options{RingCap: 1024, Next: core.FuncTracer(func(core.TraceEvent) {})})
	e := ev(9, 2)
	if allocs := testing.AllocsPerRun(1000, func() { rec.Trace(e) }); allocs != 0 {
		t.Fatalf("Recorder.Trace allocates %.1f times per event, want 0", allocs)
	}
}
