package flight

import (
	"encoding/json"
	"testing"

	"github.com/osu-netlab/osumac/internal/baseline"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/span"
)

// TestSampledBaselineStitchMatchesFullStitch extends the head-sampling
// contract to baseline runs: frame-start events carry no user and pass
// the sampler, so a sampled user's stitched span trees must be exactly
// the trees the full stream yields for that user — for every protocol,
// not just the OSU-MAC stack.
func TestSampledBaselineStitchMatchesFullStitch(t *testing.T) {
	const seed, rate = 3, 2
	runCell := func(t *testing.T, proto string, tracer core.Tracer) {
		t.Helper()
		if _, err := baseline.Run(baseline.Config{
			Protocol: baseline.ByName(proto),
			Users:    12,
			Frames:   300,
			Load:     0.7,
			Seed:     21,
			Tracer:   tracer,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, proto := range []string{"prma", "drma"} {
		t.Run(proto, func(t *testing.T) {
			full := &core.TraceBuffer{Cap: 1 << 20}
			runCell(t, proto, full)
			fullSet := span.Stitch(full.Events())
			if len(fullSet.Traces) == 0 {
				t.Fatal("full run stitched no traces")
			}

			sampled := &core.TraceBuffer{Cap: 1 << 20}
			runCell(t, proto, NewSampledTracer(sampled, seed, rate))
			sampledSet := span.Stitch(sampled.Events())

			anySampled := false
			for u := frame.UserID(0); u < 63; u++ {
				want := fullSet.ByUser(u)
				got := sampledSet.ByUser(u)
				if !SampledUser(seed, u, rate) {
					if len(got) != 0 {
						t.Fatalf("unsampled user %d has %d traces in the sampled run", u, len(got))
					}
					continue
				}
				if len(want) > 0 {
					anySampled = true
				}
				if len(got) != len(want) {
					t.Fatalf("sampled user %d: %d traces, full run has %d", u, len(got), len(want))
				}
				for i := range want {
					wj, _ := json.Marshal(want[i])
					gj, _ := json.Marshal(got[i])
					if string(wj) != string(gj) {
						t.Fatalf("sampled user %d trace %d differs:\n got %s\nwant %s", u, i, gj, wj)
					}
				}
			}
			if !anySampled {
				t.Fatal("no sampled user had traces — test proves nothing; change seed/rate")
			}
		})
	}
}
