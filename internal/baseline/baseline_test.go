package baseline

import (
	"testing"

	"github.com/osu-netlab/osumac/internal/traffic"
)

func runProto(t *testing.T, p Protocol, load float64) *Result {
	t.Helper()
	res, err := Run(Config{
		Protocol: p,
		Users:    10,
		Frames:   2000,
		Load:     load,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := Run(Config{Protocol: NewPRMA()}); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestAllProtocolsCarryLightLoad(t *testing.T) {
	for _, p := range All() {
		res := runProto(t, p, 0.3)
		if res.Throughput < 0.25 {
			t.Errorf("%s: throughput %.3f at load 0.3", res.Protocol, res.Throughput)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", res.Protocol)
		}
	}
}

func TestReservationProtocolsSaturateHigh(t *testing.T) {
	// D-TDMA, RAMA and DRMA are reservation-based: at overload they
	// should keep throughput near capacity.
	for _, p := range []Protocol{NewDTDMA(), NewRAMA(), NewDRMA()} {
		res := runProto(t, p, 1.2)
		if res.Throughput < 0.85 {
			t.Errorf("%s: overload throughput %.3f, want ≥ 0.85", res.Protocol, res.Throughput)
		}
	}
}

func TestPRMADegradesUnderLoad(t *testing.T) {
	// Paper §4: "PRMA suffers from low utilization in medium to heavy
	// traffic loads." Its contention-only acquisition must underperform
	// the reservation protocols at overload.
	prma := runProto(t, NewPRMA(), 1.2)
	rama := runProto(t, NewRAMA(), 1.2)
	if prma.Throughput >= rama.Throughput {
		t.Fatalf("PRMA (%.3f) should not beat RAMA (%.3f) at overload",
			prma.Throughput, rama.Throughput)
	}
}

func TestRAMAHasNoReservationCollisions(t *testing.T) {
	res := runProto(t, NewRAMA(), 1.0)
	if res.CollisionRate != 0 {
		t.Fatalf("RAMA collided %.3f times/frame; auctions are collision-free", res.CollisionRate)
	}
}

func TestDTDMACollides(t *testing.T) {
	res := runProto(t, NewDTDMA(), 1.0)
	if res.CollisionRate == 0 {
		t.Fatal("D-TDMA's ALOHA reservation should collide under load")
	}
}

func TestThroughputMonotoneAtLowLoads(t *testing.T) {
	for _, p := range All() {
		lo := runProto(t, p, 0.2)
		hi := runProto(t, p, 0.5)
		if hi.Throughput < lo.Throughput-0.02 {
			t.Errorf("%s: throughput fell from %.3f to %.3f between load 0.2 and 0.5",
				p.Name(), lo.Throughput, hi.Throughput)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, mk := range []func() Protocol{
		func() Protocol { return NewPRMA() },
		func() Protocol { return NewDTDMA() },
		func() Protocol { return NewRAMA() },
		func() Protocol { return NewDRMA() },
	} {
		cfg := Config{Protocol: mk(), Users: 8, Frames: 500, Load: 0.8, Seed: 3}
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Protocol = mk()
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Delivered != b.Delivered || a.CollisionRate != b.CollisionRate {
			t.Fatalf("%s: same seed diverged", a.Protocol)
		}
	}
}

func TestFairnessReasonable(t *testing.T) {
	for _, p := range All() {
		res := runProto(t, p, 0.8)
		if res.Fairness < 0.5 {
			t.Errorf("%s: fairness %.3f suspiciously low", res.Protocol, res.Fairness)
		}
	}
}

func TestFixedWorkload(t *testing.T) {
	res, err := Run(Config{
		Protocol: NewRAMA(),
		Users:    10,
		Frames:   1000,
		Load:     0.5,
		SizeDist: traffic.PaperFixed,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("fixed workload delivered nothing")
	}
}

func TestQueueCapDrops(t *testing.T) {
	res, err := Run(Config{
		Protocol: NewPRMA(),
		Users:    4,
		Frames:   2000,
		Load:     2.0, // far beyond capacity
		Seed:     9,
		QueueCap: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("overload with tiny queues should drop messages")
	}
}

func TestProtocolNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if p.Name() == "" || seen[p.Name()] {
			t.Fatalf("bad protocol name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestFAMAHoldsFloorWithoutCollisions(t *testing.T) {
	res := runProto(t, NewFAMA(), 0.8)
	if res.Delivered == 0 {
		t.Fatal("FAMA delivered nothing")
	}
	// Floor-holding transfers are collision-free; only acquisition
	// attempts collide, so the collision rate stays modest.
	if res.CollisionRate > 2 {
		t.Fatalf("FAMA collision rate %.3f per frame", res.CollisionRate)
	}
}

func TestFAMAAcquisitionOverheadCapsThroughput(t *testing.T) {
	// Each burst costs one acquisition slot, so FAMA cannot reach the
	// reservation protocols' overload throughput.
	fama := runProto(t, NewFAMA(), 1.2)
	rama := runProto(t, NewRAMA(), 1.2)
	if fama.Throughput >= rama.Throughput {
		t.Fatalf("FAMA %.3f should trail RAMA %.3f at overload", fama.Throughput, rama.Throughput)
	}
}
