package baseline

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/phy"
)

// TestTraceEmitsProtocolTaggedLifecycle is the emission contract: every
// baseline protocol's event stream opens each frame with a
// protocol-tagged frame-start, keeps Seq strictly monotonic, and the
// per-kind event counts agree exactly with the run's metric bundle.
func TestTraceEmitsProtocolTaggedLifecycle(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			buf := &core.TraceBuffer{Cap: 1 << 20}
			res, err := Run(Config{
				Protocol: p, Users: 10, Frames: 300, Load: 0.7, Seed: 11, Tracer: buf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if buf.Dropped() != 0 {
				t.Fatalf("buffer dropped %d events; grow Cap", buf.Dropped())
			}
			events := buf.Events()
			if len(events) == 0 {
				t.Fatal("no events emitted")
			}
			first := events[0]
			if first.Kind != core.EventFrameStart || first.Detail != p.Name() || first.Slot != phy.Format1DataSlots {
				t.Fatalf("first event = %+v, want protocol-tagged frame-start with %d slots",
					first, phy.Format1DataSlots)
			}
			counts := map[core.EventKind]int{}
			var lastSeq uint64
			for i, e := range events {
				if i > 0 && e.Seq <= lastSeq {
					t.Fatalf("event %d: Seq %d not strictly increasing after %d", i, e.Seq, lastSeq)
				}
				lastSeq = e.Seq
				if e.At < 0 || e.Cycle < 0 || e.Slot < -1 {
					t.Fatalf("malformed event %+v", e)
				}
				counts[e.Kind]++
			}
			m := res.Metrics
			for _, c := range []struct {
				kind core.EventKind
				want uint64
			}{
				{core.EventFrameStart, m.Frames},
				{core.EventMessageQueued, m.MessagesGenerated},
				{core.EventMessageDropped, m.MessagesDropped},
				{core.EventMessageComplete, m.MessagesDelivered},
				{core.EventDataRx, m.FragmentsDelivered},
				{core.EventDataSlotGrant, m.FragmentsDelivered},
				{core.EventContentionTx, m.ContentionTx},
				{core.EventCollision, m.Collisions},
				{core.EventReservationGrant, m.ReservationGrants},
			} {
				if uint64(counts[c.kind]) != c.want {
					t.Errorf("%v events = %d, metrics say %d", c.kind, counts[c.kind], c.want)
				}
			}
		})
	}
}

// TestTraceSynthesizedClockOnSlotGrid checks the virtual timestamps:
// frame-starts land on the frame grid and every fragment's grant/rx
// pair brackets exactly one slot interval inside its frame.
func TestTraceSynthesizedClockOnSlotGrid(t *testing.T) {
	buf := &core.TraceBuffer{Cap: 1 << 20}
	if _, err := Run(Config{
		Protocol: NewPRMA(), Users: 10, Frames: 200, Load: 0.6, Seed: 4, Tracer: buf,
	}); err != nil {
		t.Fatal(err)
	}
	slotDur := phy.CycleLength / time.Duration(phy.Format1DataSlots)
	var frameAt time.Duration
	grantAt := map[int]time.Duration{} // slot -> last grant time
	for _, e := range buf.Events() {
		switch e.Kind {
		case core.EventFrameStart:
			if want := time.Duration(e.Cycle) * phy.CycleLength; e.At != want {
				t.Fatalf("frame %d starts at %v, want %v", e.Cycle, e.At, want)
			}
			frameAt = e.At
		case core.EventDataSlotGrant:
			if want := frameAt + time.Duration(e.Slot)*slotDur; e.At != want {
				t.Fatalf("grant in slot %d at %v, want slot start %v", e.Slot, e.At, want)
			}
			grantAt[e.Slot] = e.At
		case core.EventDataRx:
			if want := grantAt[e.Slot] + slotDur; e.At != want {
				t.Fatalf("data-rx in slot %d at %v, want slot end %v", e.Slot, e.At, want)
			}
		}
	}
}

// TestTracedRunResultUnchanged proves emission is pure observation: the
// same config with and without a tracer yields the identical Result.
func TestTracedRunResultUnchanged(t *testing.T) {
	for _, p := range All() {
		name := p.Name()
		cfg := Config{Protocol: ByName(name), Users: 10, Frames: 400, Load: 0.8, Seed: 17}
		plain, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Protocol = ByName(name) // fresh protocol state
		cfg.Tracer = &core.TraceBuffer{Cap: 1 << 20}
		traced, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, b := *plain, *traced
		a.Metrics, b.Metrics = nil, nil
		if a != b {
			t.Errorf("%s: traced run result %+v differs from untraced %+v", name, b, a)
		}
	}
}

// TestTraceNilTracerZeroAlloc pins the gated fast path: with no tracer
// attached the emission helpers must not allocate (matching the
// hotpathalloc lint roots for Cell.trace/traceD).
func TestTraceNilTracerZeroAlloc(t *testing.T) {
	c := &Cell{
		Slots:    phy.Format1DataSlots,
		frameDur: phy.CycleLength,
		slotDur:  phy.CycleLength / time.Duration(phy.Format1DataSlots),
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.trace(core.EventFrameStart, -1, c.Slots, c.frameAt, "prma")
		c.traceD(core.EventDataRx, 3, 2, c.frameAt, core.DetailDataFrag, 1, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer emission allocates %.1f/op, want 0", allocs)
	}
}
