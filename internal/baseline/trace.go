package baseline

import (
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
)

// This file is the baseline protocols' trace-emission seam, mirroring
// the discipline of core.Network.trace: every event funnels through
// emitTrace, whose nil-tracer gate keeps the disabled path free of
// allocations and interface calls (the hotpathalloc analyzer audits
// Cell.trace/Cell.traceD as zero-alloc roots, and
// BenchmarkBaselineTraceOverhead pins the attached-ring overhead).
//
// Baselines have no event-driven clock, so virtual time is synthesized
// from the frame grid: frame f spans [f·phy.CycleLength,
// (f+1)·phy.CycleLength) and its data slots divide the frame evenly.
// Span stitching reconstructs the same intervals from the
// EventFrameStart announcement (which carries the slot count in Slot),
// so baseline traces tile into the six lifecycle phases exactly like
// OSU-MAC traces do.

// tracing reports whether a tracer is attached. The protocol hooks that
// pay anything beyond integer accounting must check it (or rely on the
// emitTrace gate) so an untraced run stays on the pure simulation path.
func (c *Cell) tracing() bool { return c.tracer != nil }

// SlotStart returns the synthesized start time of data slot s in the
// current frame.
func (c *Cell) SlotStart(s int) time.Duration {
	return c.frameAt + time.Duration(s)*c.slotDur
}

// slotOrFrameAt places an event at its slot start, or at the frame
// start for the minislot/auction phases that precede the data slots
// (slot < 0).
func (c *Cell) slotOrFrameAt(slot int) time.Duration {
	if slot < 0 {
		return c.frameAt
	}
	return c.SlotStart(slot)
}

// trace emits an event with a verbatim (constant or empty) detail
// string if tracing is enabled.
func (c *Cell) trace(kind core.EventKind, user, slot int, at time.Duration, detail string) {
	c.emitTrace(kind, user, slot, at, detail, core.DetailVerbatim, 0, 0, 0)
}

// traceD emits an event whose detail renders lazily from dk and the
// integer operands — the zero-allocation form matching Network.traceD.
func (c *Cell) traceD(kind core.EventKind, user, slot int, at time.Duration, dk core.DetailKind, a0, a1, a2 int64) {
	c.emitTrace(kind, user, slot, at, "", dk, a0, a1, a2)
}

func (c *Cell) emitTrace(kind core.EventKind, user, slot int, at time.Duration, detail string, dk core.DetailKind, a0, a1, a2 int64) {
	if c.tracer == nil {
		return
	}
	uid := frame.NoUser
	if user >= 0 && user < int(frame.NoUser) {
		uid = frame.UserID(user)
	}
	if slot < 0 {
		// Same -1 sentinel contract as Network.emitTrace: span stitching
		// and the JSONL schema promise Slot >= -1.
		slot = -1
	}
	c.seq++
	c.tracer.Trace(core.TraceEvent{
		At:     at,
		Seq:    c.seq,
		Cycle:  c.Frame,
		Kind:   kind,
		User:   uid,
		Slot:   slot,
		Detail: detail,
		DK:     dk,
		Arg0:   a0,
		Arg1:   a1,
		Arg2:   a2,
	})
}

// ContendReservation records user u transmitting a reservation attempt
// in the contention opportunity at data slot `slot`, or in the frame's
// reservation minislot/auction phase when slot is -1.
func (c *Cell) ContendReservation(u, slot int) {
	c.m.ContentionTx++
	c.trace(core.EventContentionTx, u, slot, c.slotOrFrameAt(slot), frame.TypeReservation.String())
}

// GrantReservation records the base station booking n slots of demand
// for user u — a PRMA slot capture, a D-TDMA/RAMA booking, a DRMA
// piggybacked reservation, or a FAMA floor acquisition.
func (c *Cell) GrantReservation(u, slot, n int) {
	c.m.ReservationGrants++
	c.traceD(core.EventReservationGrant, u, slot, c.slotOrFrameAt(slot), core.DetailSlots, int64(n), 0, 0)
}

// Collide records a contention opportunity destroyed by a collision
// among n stations (slot -1 for minislot/auction phases).
func (c *Cell) Collide(slot, n int) {
	c.m.Collisions++
	c.traceD(core.EventCollision, -1, slot, c.slotOrFrameAt(slot), core.DetailCollision, int64(n), 0, 0)
}
