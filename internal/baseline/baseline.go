// Package baseline implements frame-level models of the MAC protocols
// the paper surveys in §4 — PRMA, D-TDMA, RAMA and DRMA — on a common
// harness, for the comparison benchmarks described in DESIGN.md.
//
// The models are deliberately more abstract than the OSU-MAC stack:
// they share the frame length and slot count of the OSU-MAC reverse
// channel but assume an ideal medium (no RS coding, no half-duplex
// constraint, free reservation minislots for D-TDMA/RAMA). That makes
// the comparison conservative *against* OSU-MAC: the baselines get a
// friendlier physical layer and still exhibit their characteristic
// contention behaviour. The paper itself declines a head-to-head
// comparison as unfair (§5); this package exists to reproduce the
// qualitative survey claims (PRMA's collapse under load, RAMA's
// collision-free reservations, D-TDMA's reservation bottleneck).
package baseline

import (
	"fmt"
	"math"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
	"github.com/osu-netlab/osumac/internal/stats"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// packet is one slot-sized fragment queued at a user, tagged with its
// parent message's identity so trace emission can report fragment
// progress and message completion.
type packet struct {
	arrivalFrame int
	msgID        int
	frag         int // 1-based fragment index within the message
	total        int // fragment count of the message
	bytes        int // message size in bytes (same on every fragment)
}

// user is one subscriber's protocol-independent state.
type user struct {
	queue    []packet
	reserved bool // PRMA: holds a periodic slot reservation
	demand   int  // D-TDMA/RAMA/DRMA: slots booked at the base
	backoff  int
	nextMsg  int // per-user message ID counter for tracing
}

// Cell is the shared per-frame simulation state handed to protocols.
type Cell struct {
	// Slots is the data-slot capacity per frame.
	Slots int
	// Frame is the current frame index.
	Frame int
	// RNG drives all protocol randomness.
	RNG *sim.RNG

	users []*user

	// Trace emission state (see trace.go). frameAt/frameDur/slotDur
	// synthesize virtual time from the frame grid.
	tracer   core.Tracer
	seq      uint64
	frameAt  time.Duration
	frameDur time.Duration
	slotDur  time.Duration

	// Per-run accounting. delay samples per-fragment delay in frames
	// (the legacy Result unit); m carries the observability bundle.
	m       Metrics
	delay   stats.Sample
	perUser []int
}

// Users returns the user count.
func (c *Cell) Users() int { return len(c.users) }

// Queue returns user u's backlog length.
func (c *Cell) Queue(u int) int { return len(c.users[u].queue) }

// Reserved reports PRMA reservation state.
func (c *Cell) Reserved(u int) bool { return c.users[u].reserved }

// SetReserved sets PRMA reservation state.
func (c *Cell) SetReserved(u int, v bool) { c.users[u].reserved = v }

// Demand returns the base-side booked demand for user u.
func (c *Cell) Demand(u int) int { return c.users[u].demand }

// AddDemand books n more slots for user u.
func (c *Cell) AddDemand(u, n int) { c.users[u].demand += n }

// Backoff returns user u's remaining backoff frames.
func (c *Cell) Backoff(u int) int { return c.users[u].backoff }

// SetBackoff sets user u's backoff.
func (c *Cell) SetBackoff(u, frames int) { c.users[u].backoff = frames }

// TickBackoffs decrements all backoffs at a frame boundary.
func (c *Cell) TickBackoffs() {
	for _, us := range c.users {
		if us.backoff > 0 {
			us.backoff--
		}
	}
}

// Deliver removes the head packet of user u as successfully transmitted
// in data slot `slot`, consuming any booked demand. It emits the
// fragment's lifecycle events (slot grant at slot start, fragment
// receipt at slot end, message completion on the final fragment) and
// records access/message delay against the synthesized clock.
func (c *Cell) Deliver(u, slot int) {
	us := c.users[u]
	if len(us.queue) == 0 {
		return
	}
	pkt := us.queue[0]
	us.queue = us.queue[1:]
	if us.demand > 0 {
		us.demand--
	}
	c.m.FragmentsDelivered++
	c.m.SlotsUsed++
	c.perUser[u]++
	c.delay.Add(float64(c.Frame - pkt.arrivalFrame))

	slotStart := c.SlotStart(slot)
	slotEnd := slotStart + c.slotDur
	arrivalAt := time.Duration(pkt.arrivalFrame) * c.frameDur
	if pkt.frag == 1 {
		// First fragment on air: the access-delay sample the paper's
		// 4-second GPS bound constrains on the OSU-MAC side.
		access := slotStart - arrivalAt
		c.m.AccessDelay.Add(access.Seconds())
		if access > phy.GPSAccessDeadline {
			c.m.DeadlineMisses++
		}
	}
	c.trace(core.EventDataSlotGrant, u, slot, slotStart, "")
	c.traceD(core.EventDataRx, u, slot, slotEnd, core.DetailDataFrag,
		int64(pkt.msgID), int64(pkt.frag), int64(pkt.total))
	if pkt.frag == pkt.total {
		c.m.MessagesDelivered++
		c.m.MessageDelay.Add((slotEnd - arrivalAt).Seconds())
		c.traceD(core.EventMessageComplete, u, -1, slotEnd, core.DetailMsgComplete,
			int64(pkt.msgID), int64(pkt.bytes), int64(slotEnd-arrivalAt))
	}
}

// Protocol is one medium access control discipline.
type Protocol interface {
	// Name identifies the protocol in output.
	Name() string
	// RunFrame simulates one frame of medium access.
	RunFrame(c *Cell)
}

// Config parameterizes a baseline run.
type Config struct {
	// Protocol is the MAC under test.
	Protocol Protocol
	// Users is the subscriber count.
	Users int
	// Frames is the run length.
	Frames int
	// Slots is the data slots per frame (default: OSU-MAC's 8).
	Slots int
	// Load is the target fragment arrival rate as a fraction of Slots.
	Load float64
	// SizeDist draws message sizes (default: the paper's 40–500 B).
	SizeDist traffic.SizeDist
	// Seed drives all randomness.
	Seed uint64
	// QueueCap bounds per-user backlog in fragments.
	QueueCap int
	// Tracer, when non-nil, receives the run's message-lifecycle events
	// (frame starts, queue/drop, contention, grants, fragment receipts,
	// completions) on the synthesized frame-grid clock. Tracing requires
	// Users < frame.NoUser so user IDs fit the TraceEvent schema.
	Tracer core.Tracer
}

// Result summarizes a baseline run.
type Result struct {
	Protocol        string
	Load            float64
	Throughput      float64 // delivered slots / offered slots
	MeanDelayFrames float64
	P95DelayFrames  float64
	CollisionRate   float64 // collisions per frame
	Delivered       int
	Generated       int
	Dropped         int
	Fairness        float64
	// Metrics is the run's full observability bundle (counters plus
	// delay/deadline samples), feeding obs.NewBaselineRegistry.
	Metrics *Metrics
}

// Run executes a baseline scenario.
func Run(cfg Config) (*Result, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("baseline: nil protocol")
	}
	if cfg.Users <= 0 || cfg.Frames <= 0 {
		return nil, fmt.Errorf("baseline: need positive users and frames")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = phy.Format1DataSlots
	}
	if cfg.SizeDist == nil {
		cfg.SizeDist = traffic.PaperVariable
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 128
	}
	if cfg.Tracer != nil && cfg.Users >= int(frame.NoUser) {
		return nil, fmt.Errorf("baseline: tracing supports at most %d users (frame.UserID space)",
			int(frame.NoUser)-1)
	}

	rng := sim.NewRNG(cfg.Seed).Fork("baseline:" + cfg.Protocol.Name())
	cell := &Cell{
		Slots:    cfg.Slots,
		RNG:      rng.Fork("cell"),
		users:    make([]*user, cfg.Users),
		perUser:  make([]int, cfg.Users),
		tracer:   cfg.Tracer,
		frameDur: phy.CycleLength,
		slotDur:  phy.CycleLength / time.Duration(cfg.Slots),
	}
	for i := range cell.users {
		cell.users[i] = &user{}
	}

	// Per-frame message arrivals: Poisson with rate chosen so fragment
	// arrivals average Load·Slots per frame.
	fragsPerMsg := traffic.ExpectedFragments(cfg.SizeDist, frame.MaxPayload)
	msgRate := cfg.Load * float64(cfg.Slots) / fragsPerMsg // msgs per frame, all users
	arrRNG := rng.Fork("arrivals")

	name := cfg.Protocol.Name()
	for f := 0; f < cfg.Frames; f++ {
		cell.Frame = f
		cell.frameAt = time.Duration(f) * cell.frameDur
		cell.m.Frames++
		// Frame boundary announcement: Slot carries the data-slot count
		// so span stitching can reconstruct slot intervals, Detail names
		// the protocol.
		cell.trace(core.EventFrameStart, -1, cfg.Slots, cell.frameAt, name)
		// Poisson arrivals this frame (thinning by per-user assignment).
		nArr := poisson(arrRNG, msgRate)
		for a := 0; a < nArr; a++ {
			u := arrRNG.Intn(cfg.Users)
			size := cfg.SizeDist.Sample(arrRNG)
			frags := (size + frame.MaxPayload - 1) / frame.MaxPayload
			if frags < 1 {
				frags = 1
			}
			us := cell.users[u]
			if len(us.queue)+frags > cfg.QueueCap {
				cell.m.MessagesDropped++
				cell.traceD(core.EventMessageDropped, u, -1, cell.frameAt,
					core.DetailQueueFull, int64(size), 0, 0)
				continue
			}
			cell.m.MessagesGenerated++
			us.nextMsg++
			msgID := us.nextMsg
			cell.traceD(core.EventMessageQueued, u, -1, cell.frameAt,
				core.DetailMsgBytes, int64(msgID), int64(size), 0)
			for k := 0; k < frags; k++ {
				us.queue = append(us.queue, packet{
					arrivalFrame: f,
					msgID:        msgID,
					frag:         k + 1,
					total:        frags,
					bytes:        size,
				})
			}
		}
		cell.m.SlotsOffered += uint64(cfg.Slots)
		cell.TickBackoffs()
		cfg.Protocol.RunFrame(cell)
	}

	perUser := make([]float64, cfg.Users)
	for i, v := range cell.perUser {
		perUser[i] = float64(v)
	}
	cell.m.FairnessIndex = stats.JainFairness(perUser)
	return &Result{
		Protocol:        name,
		Load:            cfg.Load,
		Throughput:      cell.m.Throughput(),
		MeanDelayFrames: cell.delay.Mean(),
		P95DelayFrames:  cell.delay.Percentile(95),
		CollisionRate:   cell.m.CollisionRate(),
		Delivered:       int(cell.m.FragmentsDelivered),
		Generated:       int(cell.m.MessagesGenerated),
		Dropped:         int(cell.m.MessagesDropped),
		Fairness:        cell.m.FairnessIndex,
		Metrics:         &cell.m,
	}, nil
}

// poisson draws a Poisson variate by inversion (small means only).
func poisson(rng *sim.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method; mean is O(10) in all scenarios.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
