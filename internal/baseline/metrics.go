package baseline

import (
	"github.com/osu-netlab/osumac/internal/stats"
)

// Metrics is a baseline run's observability bundle, the frame-level
// counterpart of core.Metrics. It is accumulated unconditionally (the
// counters are integer increments on paths that already do comparable
// bookkeeping) and exported through obs.NewBaselineRegistry with the
// same delay/deadline histogram bounds as the OSU-MAC registry, so
// osumacdiff and the tournament league table can compare protocols on
// one metric vocabulary.
type Metrics struct {
	// Frames counts simulated frames; SlotsOffered and SlotsUsed count
	// the data-slot budget and the slots that carried a fragment.
	Frames       uint64
	SlotsOffered uint64
	SlotsUsed    uint64

	// Message lifecycle counts.
	MessagesGenerated  uint64
	MessagesDelivered  uint64
	MessagesDropped    uint64
	FragmentsDelivered uint64

	// Contention accounting: reservation attempts, destroyed contention
	// opportunities, and base-side demand bookings.
	ContentionTx      uint64
	Collisions        uint64
	ReservationGrants uint64

	// DeadlineMisses counts messages whose first fragment reached the
	// air later than phy.GPSAccessDeadline after arrival — the
	// baseline-side analogue of the paper's 4 s access-delay bound.
	DeadlineMisses uint64

	// MessageDelay samples end-to-end delay (arrival to last fragment
	// on air) in seconds; AccessDelay samples arrival to first fragment
	// on air, the distribution the deadline bound constrains.
	MessageDelay stats.Sample
	AccessDelay  stats.Sample

	// FairnessIndex is Jain's index over per-user delivered fragments,
	// set once at run end. Merge does not combine it — aggregate
	// fairness across runs is the consumer's policy (the tournament
	// reports the per-load mean).
	FairnessIndex float64
}

// Throughput returns delivered slots over offered slots.
func (m *Metrics) Throughput() float64 {
	return stats.Ratio(float64(m.SlotsUsed), float64(m.SlotsOffered))
}

// CollisionRate returns collisions per frame.
func (m *Metrics) CollisionRate() float64 {
	return stats.Ratio(float64(m.Collisions), float64(m.Frames))
}

// Merge folds another run's counters and delay samples into m (the
// tournament aggregates one bundle per protocol across the load grid).
// FairnessIndex is left untouched; see its doc.
func (m *Metrics) Merge(o *Metrics) {
	m.Frames += o.Frames
	m.SlotsOffered += o.SlotsOffered
	m.SlotsUsed += o.SlotsUsed
	m.MessagesGenerated += o.MessagesGenerated
	m.MessagesDelivered += o.MessagesDelivered
	m.MessagesDropped += o.MessagesDropped
	m.FragmentsDelivered += o.FragmentsDelivered
	m.ContentionTx += o.ContentionTx
	m.Collisions += o.Collisions
	m.ReservationGrants += o.ReservationGrants
	m.DeadlineMisses += o.DeadlineMisses
	for _, v := range o.MessageDelay.Values() {
		m.MessageDelay.Add(v)
	}
	for _, v := range o.AccessDelay.Values() {
		m.AccessDelay.Add(v)
	}
}
