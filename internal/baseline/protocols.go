package baseline

// PRMA is Packet Reservation Multiple Access (Nanda, Goodman, Timor
// 1991; paper §4, Fig. 5(1)). There is no dedicated reservation
// bandwidth: every slot not held by a reservation is contended with a
// permission probability. A user that wins a slot keeps it in
// subsequent frames until its backlog drains (the talkspurt semantic);
// the paper notes PRMA "suffers from low utilization in medium to heavy
// traffic loads" due to its contention-first nature.
type PRMA struct {
	// Permission is the per-slot transmit probability for contenders.
	Permission float64
	// owner[slot] is the reservation holder, or -1.
	owner []int
}

// NewPRMA returns PRMA with the conventional 0.3 permission
// probability.
func NewPRMA() *PRMA { return &PRMA{Permission: 0.3} }

// Name implements Protocol.
func (p *PRMA) Name() string { return "prma" }

// RunFrame implements Protocol.
func (p *PRMA) RunFrame(c *Cell) {
	if len(p.owner) != c.Slots {
		p.owner = make([]int, c.Slots)
		for i := range p.owner {
			p.owner[i] = -1
		}
	}
	for slot := 0; slot < c.Slots; slot++ {
		own := p.owner[slot]
		if own >= 0 {
			if c.Queue(own) > 0 {
				c.Deliver(own, slot)
				continue
			}
			// Backlog drained: reservation released.
			c.SetReserved(own, false)
			p.owner[slot] = -1
		}
		// Contention: every backlogged, unreserved user transmits with
		// the permission probability.
		var contenders []int
		for u := 0; u < c.Users(); u++ {
			if c.Queue(u) == 0 || c.Reserved(u) {
				continue
			}
			if c.RNG.Bool(p.Permission) {
				contenders = append(contenders, u)
			}
		}
		switch len(contenders) {
		case 0:
		case 1:
			u := contenders[0]
			c.ContendReservation(u, slot)
			// Winner reserves the slot for subsequent frames: a PRMA
			// slot capture is a one-slot-per-frame grant.
			c.GrantReservation(u, slot, 1)
			c.Deliver(u, slot)
			p.owner[slot] = u
			c.SetReserved(u, true)
		default:
			for _, u := range contenders {
				c.ContendReservation(u, slot)
			}
			c.Collide(slot, len(contenders))
		}
	}
}

// DTDMA is Dynamic TDMA (Wilson et al. 1993; paper §4, Fig. 5(2)): each
// frame opens with reservation minislots contended slotted-ALOHA style;
// successful requesters are granted data slots by the base station.
type DTDMA struct {
	// ReservationSlots is the number of ALOHA minislots per frame.
	ReservationSlots int
	rrCursor         int
}

// NewDTDMA returns D-TDMA with three reservation minislots.
func NewDTDMA() *DTDMA { return &DTDMA{ReservationSlots: 3} }

// Name implements Protocol.
func (d *DTDMA) Name() string { return "d-tdma" }

// RunFrame implements Protocol.
func (d *DTDMA) RunFrame(c *Cell) {
	// Reservation phase: users with unbooked backlog pick a minislot.
	minislots := make([][]int, d.ReservationSlots)
	for u := 0; u < c.Users(); u++ {
		if c.Backoff(u) > 0 {
			continue
		}
		if c.Queue(u) > c.Demand(u) {
			ms := c.RNG.Intn(d.ReservationSlots)
			minislots[ms] = append(minislots[ms], u)
			c.ContendReservation(u, -1)
		}
	}
	for _, reqs := range minislots {
		switch len(reqs) {
		case 0:
		case 1:
			u := reqs[0]
			n := c.Queue(u) - c.Demand(u)
			c.AddDemand(u, n)
			c.GrantReservation(u, -1, n)
		default:
			c.Collide(-1, len(reqs))
			// Unsuccessful users retry after a reservation
			// retransmission backoff (paper §4).
			for _, u := range reqs {
				c.SetBackoff(u, c.RNG.UniformInt(1, 3))
			}
		}
	}
	serveRoundRobin(c, &d.rrCursor, c.Slots)
}

// RAMA is Resource Auction Multiple Access (Amitay 1993; paper §4,
// Fig. 6): reservation is a deterministic bit-by-bit ID auction, so
// every auction slot produces exactly one winner — reservations never
// collide.
type RAMA struct {
	// AuctionSlots is the number of auctions per frame.
	AuctionSlots int
	rrCursor     int
}

// NewRAMA returns RAMA with two auction slots per frame.
func NewRAMA() *RAMA { return &RAMA{AuctionSlots: 2} }

// Name implements Protocol.
func (r *RAMA) Name() string { return "rama" }

// RunFrame implements Protocol.
func (r *RAMA) RunFrame(c *Cell) {
	// Each auction admits one requester, chosen by the highest random
	// ID — equivalent to a uniform choice among contenders. A winner
	// books its whole backlog and skips later auctions this frame.
	won := make(map[int]bool, r.AuctionSlots)
	for a := 0; a < r.AuctionSlots; a++ {
		var contenders []int
		for u := 0; u < c.Users(); u++ {
			if won[u] || c.Queue(u) <= c.Demand(u) {
				continue
			}
			contenders = append(contenders, u)
		}
		if len(contenders) == 0 {
			break
		}
		// Every contender transmits its ID into the auction; the
		// deterministic bit-by-bit resolution means none of these
		// attempts is destroyed — RAMA records zero collisions.
		for _, u := range contenders {
			c.ContendReservation(u, -1)
		}
		u := contenders[c.RNG.Intn(len(contenders))]
		n := c.Queue(u) - c.Demand(u)
		c.AddDemand(u, n)
		c.GrantReservation(u, -1, n)
		won[u] = true
	}
	serveRoundRobin(c, &r.rrCursor, c.Slots)
}

// DRMA is Dynamic Reservation Multiple Access (Qiu, Li 1996; paper §4):
// no fixed reservation bandwidth — idle data slots double as
// reservation opportunities, contended ALOHA-style, like OSU-MAC's
// contention slots.
type DRMA struct {
	rrCursor int
}

// NewDRMA returns a DRMA instance.
func NewDRMA() *DRMA { return &DRMA{} }

// Name implements Protocol.
func (d *DRMA) Name() string { return "drma" }

// RunFrame implements Protocol.
func (d *DRMA) RunFrame(c *Cell) {
	// Data phase first: booked demand is served round-robin; slots left
	// idle become reservation opportunities.
	used := serveRoundRobin(c, &d.rrCursor, c.Slots)
	idle := c.Slots - used
	for i := 0; i < idle; i++ {
		slot := used + i // round-robin fills slots 0..used-1, so idles follow
		var contenders []int
		for u := 0; u < c.Users(); u++ {
			if c.Backoff(u) > 0 || c.Queue(u) <= c.Demand(u) {
				continue
			}
			contenders = append(contenders, u)
		}
		switch {
		case len(contenders) == 0:
		case len(contenders) == 1 || c.RNG.Float64() < selectivity(len(contenders)):
			u := contenders[c.RNG.Intn(len(contenders))]
			// The reservation rides in a data packet: the slot carries
			// payload and books the rest of the backlog. Under the
			// selectivity model exactly one station transmitted, so only
			// the winner's attempt is observable.
			c.ContendReservation(u, slot)
			c.Deliver(u, slot)
			if n := c.Queue(u) - c.Demand(u); n > 0 {
				c.AddDemand(u, n)
				c.GrantReservation(u, slot, n)
			}
		default:
			for _, u := range contenders {
				c.ContendReservation(u, slot)
			}
			c.Collide(slot, len(contenders))
			for _, u := range contenders {
				if c.RNG.Bool(0.5) {
					c.SetBackoff(u, c.RNG.UniformInt(1, 3))
				}
			}
		}
	}
}

// selectivity approximates the chance that exactly one of n ALOHA
// contenders transmits in a slot when each transmits with probability
// 1/n: n·(1/n)·(1−1/n)^(n−1).
func selectivity(n int) float64 {
	if n <= 1 {
		return 1
	}
	p := 1.0
	for i := 0; i < n-1; i++ {
		p *= 1 - 1/float64(n)
	}
	return p
}

// serveRoundRobin grants data slots to booked demand round-robin from a
// persistent cursor, returning the number of slots used.
func serveRoundRobin(c *Cell, cursor *int, slots int) int {
	used := 0
	if c.Users() == 0 {
		return 0
	}
	for s := 0; s < slots; s++ {
		granted := false
		for k := 0; k < c.Users(); k++ {
			u := (*cursor + k) % c.Users()
			if c.Demand(u) > 0 && c.Queue(u) > 0 {
				c.Deliver(u, s)
				*cursor = (u + 1) % c.Users()
				granted = true
				used++
				break
			}
		}
		if !granted {
			break
		}
	}
	return used
}

// All returns a fresh instance of every baseline protocol.
func All() []Protocol {
	return []Protocol{NewPRMA(), NewDTDMA(), NewRAMA(), NewDRMA(), NewFAMA()}
}

// ByName returns a fresh instance of the named protocol, or nil if the
// name matches no baseline. Names are the Protocol.Name() strings
// ("prma", "d-tdma", "rama", "drma", "fama").
func ByName(name string) Protocol {
	for _, p := range All() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// FAMA is Floor Acquisition Multiple Access (Fullmer, Garcia-Luna-Aceves
// 1995; paper §4): a station acquires the "floor" with a short control
// exchange (RTS/CTS-like) and then transmits collision-free until it
// releases it — CSMA/CD-flavoured contention in a wireless LAN. The
// frame-level model charges one slot for each floor acquisition
// attempt; collisions happen only between acquisition attempts.
type FAMA struct {
	holder int // current floor holder, -1 when free
}

// NewFAMA returns a FAMA instance with a free floor.
func NewFAMA() *FAMA { return &FAMA{holder: -1} }

// Name implements Protocol.
func (f *FAMA) Name() string { return "fama" }

// RunFrame implements Protocol.
func (f *FAMA) RunFrame(c *Cell) {
	for slot := 0; slot < c.Slots; slot++ {
		if f.holder >= 0 {
			if c.Queue(f.holder) > 0 {
				// Floor held: transmit collision-free.
				c.Deliver(f.holder, slot)
				continue
			}
			f.holder = -1 // backlog drained: floor released
		}
		// Floor free: backlogged stations attempt acquisition with a
		// carrier-sense persistence probability.
		var contenders []int
		for u := 0; u < c.Users(); u++ {
			if c.Backoff(u) > 0 || c.Queue(u) == 0 {
				continue
			}
			if c.RNG.Bool(0.5) {
				contenders = append(contenders, u)
			}
		}
		switch len(contenders) {
		case 0:
		case 1:
			// Acquisition costs the control exchange: the slot carries
			// the RTS/CTS, data starts next slot. Holding the floor is
			// a grant for the station's whole backlog.
			u := contenders[0]
			c.ContendReservation(u, slot)
			f.holder = u
			c.GrantReservation(u, slot, c.Queue(u))
		default:
			// Control packets collided; the floor stays free.
			for _, u := range contenders {
				c.ContendReservation(u, slot)
			}
			c.Collide(slot, len(contenders))
			for _, u := range contenders {
				c.SetBackoff(u, c.RNG.UniformInt(1, 2))
			}
		}
	}
}
