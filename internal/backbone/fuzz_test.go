package backbone

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
)

// fuzzCells/fuzzSubs fix the deployment shape; the fuzzer explores the
// cross-cell send schedule within it.
const (
	fuzzCells = 3
	fuzzSubs  = 2 // data subscribers per cell
)

// fuzzOutcome runs a fuzzer-chosen send schedule on one engine. Each
// schedule byte encodes one action: the low bits pick (src, dst, size)
// and every fourth byte also advances the clock by a Run segment, so
// the fuzzer controls both the merge pressure (many sends at one
// instant) and the phase structure (sends straddling Run boundaries).
func fuzzOutcome(t *testing.T, schedule []byte, sharded bool) twinOutcome {
	t.Helper()
	buf := &core.TraceBuffer{Cap: 1 << 20}
	s := twinScenario{cells: fuzzCells, gps: 0, data: fuzzSubs, load: 0.5,
		seed: 1331, wire: 45 * time.Millisecond}
	in := buildTwin(t, s, sharded, buf, nil)
	var out twinOutcome
	record := func(err error) {
		if err != nil && out.runErr == "" {
			out.runErr = err.Error()
		}
	}
	record(in.Run(2)) // settle: subscribers join, queues warm up
	for k, b := range schedule {
		if out.runErr != "" {
			break
		}
		src := dataAddr(int(b)%fuzzCells, int(b>>2)%fuzzSubs)
		dst := dataAddr(int(b>>3)%fuzzCells, int(b>>5)%fuzzSubs)
		size := 40 + int(b>>1)*7
		if err := in.Send(src, dst, size); err != nil {
			out.sendErrs = append(out.sendErrs, err.Error())
		}
		if k%4 == 3 {
			record(in.Run(1 + int(b)%3))
		}
	}
	if out.runErr == "" {
		record(in.Run(3)) // drain: every wire delay elapses
	}
	for c := 0; c < fuzzCells; c++ {
		snap, err := json.Marshal(in.Cell(c).Metrics().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		out.cellSnaps = append(out.cellSnaps, string(snap))
		out.cellErrs = append(out.cellErrs, "")
		out.reports = append(out.reports, "")
	}
	out.traces = buf.Events()
	out.forwarded = in.Forwarded.Value()
	out.delivered = in.Delivered.Value()
	out.latVals = in.EndToEndLat.Values()
	out.latSum = in.EndToEndLat.Sum()
	return out
}

// FuzzShardExchange feeds randomized cross-cell send schedules to both
// engines and requires byte-identical outcomes: metrics snapshots,
// trace streams, exchange counters, latency sample order, and error
// strings. Any scheduling-order leak in the barrier/merge machinery
// shows up as a divergence here.
func FuzzShardExchange(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x07, 0x2a, 0x93, 0xff})
	f.Add([]byte{0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01})
	f.Add([]byte{0xf0, 0x0f, 0x55, 0xaa, 0x3c, 0xc3, 0x99, 0x66, 0x12, 0xed})
	f.Fuzz(func(t *testing.T, schedule []byte) {
		if len(schedule) > 24 {
			schedule = schedule[:24] // bound per-exec simulated time
		}
		serial := fuzzOutcome(t, schedule, false)
		sharded := fuzzOutcome(t, schedule, true)
		compareOutcomes(t, "fuzz sharded vs serial", serial, sharded)
	})
}
