package backbone

// Conformance under sharding: every protocol invariant the serial
// checker enforces must hold unchanged when a cell runs on its own
// kernel shard. Each cell gets a private conformance.Checker through
// Options.CellTracer, which delivers events inline in exact cell-local
// order in both engines — the checkers cannot tell which engine ran
// them, and neither may their verdicts.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/conformance"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// mirrorBuildConfig reproduces the exact per-cell configuration the
// top-level osumac.Build recipe produces for an ideal-channel scenario,
// so sharded cells run the very scenarios the repo's conformance sweeps
// pin (cell 0 of a deployment seeded with the scenario seed IS the
// scenario: cells run Seed+i).
func mirrorBuildConfig(seed uint64, dataUsers int, load float64, gpsUsers int, legacy bool) core.Config {
	cfg := core.NewConfig()
	cfg.Seed = seed
	cfg.SecondControlField = true
	cfg.DynamicSlotAdjustment = true
	if legacy {
		cfg.GPSGrantPolicy = core.GPSGrantFixed
	}
	cfg.SizeDist = traffic.PaperVariable
	dataSlots := phy.Format1DataSlots
	if gpsUsers <= phy.Format2GPSSlots {
		dataSlots = phy.Format2DataSlots
	}
	if load > 0 && dataUsers > 0 {
		cfg.MeanInterarrival = traffic.InterarrivalForSlots(
			load, dataUsers, cfg.SizeDist, frame.MaxPayload, phy.CycleLength, dataSlots)
	}
	return cfg
}

// populateBuildStyle adds cell `cell`'s population with the top-level
// recipe's join staggering: GPS buses first (joining at i seconds),
// then data users (at i half-seconds). Cell 0 uses the recipe's exact
// EINs (1000+i / 2000+i); later cells shift by 10000·cell to stay
// globally unique.
func populateBuildStyle(t *testing.T, in *Internet, cell, gpsUsers, dataUsers int) {
	t.Helper()
	base := Address(10000 * cell)
	for i := 0; i < gpsUsers; i++ {
		if _, err := in.AddSubscriber(base+Address(1000+i), cell, true, time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < dataUsers; i++ {
		if _, err := in.AddSubscriber(base+Address(2000+i), cell, false, time.Duration(i)*500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
}

// runShardedChecked builds a sharded deployment with a conformance
// checker per cell, runs it, and returns the finished reports.
func runShardedChecked(t *testing.T, cfg core.Config, cells, gpsUsers, dataUsers, cycles int, opts conformance.Options) []*conformance.Report {
	t.Helper()
	checkers := make([]*conformance.Checker, cells)
	in, err := NewWithOptions(cfg, Options{
		Cells:     cells,
		WireDelay: phy.CycleLength,
		Sharded:   true,
		CellTracer: func(cell int) core.Tracer {
			checkers[cell] = conformance.New(opts)
			return checkers[cell]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cells; c++ {
		populateBuildStyle(t, in, c, gpsUsers, dataUsers)
	}
	if err := in.Run(cycles); err != nil {
		t.Fatal(err)
	}
	reports := make([]*conformance.Report, cells)
	for c := range checkers {
		reports[c] = checkers[c].Finish()
	}
	return reports
}

// TestShardedConformanceSweep runs a representative slice of the repo's
// conformance sweep grid on the sharded engine and requires every
// per-shard checker to pass — the protocol invariants (schedule
// disjointness, format rule, CF2 exclusions, deadline) are engine
// properties, not kernel-layout properties.
func TestShardedConformanceSweep(t *testing.T) {
	type sweep struct {
		gps, data int
		load      float64
		seed      uint64
	}
	grid := []sweep{
		{gps: 2, data: 6, load: 0.5, seed: 1},
		{gps: 4, data: 10, load: 0.8, seed: 42},
		{gps: 7, data: 8, load: 1.0, seed: 8188083318138684029},
	}
	if !testing.Short() {
		grid = append(grid,
			sweep{gps: 0, data: 12, load: 1.2, seed: 7},
			sweep{gps: 8, data: 4, load: 0.6, seed: 99},
		)
	}
	cycles := 60
	if testing.Short() {
		cycles = 25
	}
	for _, s := range grid {
		s := s
		t.Run(fmt.Sprintf("gps=%d_data=%d_load=%.1f_seed=%d", s.gps, s.data, s.load, s.seed), func(t *testing.T) {
			cfg := mirrorBuildConfig(s.seed, s.data, s.load, s.gps, false)
			reports := runShardedChecked(t, cfg, 3, s.gps, s.data, cycles, conformance.Options{
				DeadlineMustHold:   true,
				DynamicSlots:       true,
				SecondControlField: true,
			})
			for c, rep := range reports {
				if !rep.OK() {
					var text strings.Builder
					if err := rep.WriteText(&text); err != nil {
						t.Fatal(err)
					}
					t.Fatalf("cell %d fails conformance under sharding:\n%s", c, text.String())
				}
				if rep.Cycles == 0 {
					t.Fatalf("cell %d checker saw no cycles; the tracer seam is dead", c)
				}
			}
		})
	}
}

// pinnedSeed is the ROADMAP GPS-deadline regression scenario (see
// gps_deadline_regression_test.go at the repo root): seed
// 8188083318138684029, 7 GPS users, 8 data users, load 1.0, 20 warm-up
// + 500 measured cycles. Cell 0 of a deployment seeded with it runs
// exactly that scenario.
const (
	pinnedSeed       = 8188083318138684029
	pinnedGPS        = 7
	pinnedData       = 8
	pinnedCycles     = 520 // WarmupCycles + Cycles
	pinnedViolations = 2   // under the legacy fixed-slot grant policy
)

// TestPinnedGPSRegressionShardedClean: under the default deadline-aware
// grant policy, the pinned scenario stays violation-free when its cell
// runs as shard 0 of a sharded deployment.
func TestPinnedGPSRegressionShardedClean(t *testing.T) {
	cfg := mirrorBuildConfig(pinnedSeed, pinnedData, 1.0, pinnedGPS, false)
	reports := runShardedChecked(t, cfg, 2, pinnedGPS, pinnedData, pinnedCycles, conformance.Options{
		DeadlineMustHold:   true,
		DynamicSlots:       true,
		SecondControlField: true,
	})
	for c, rep := range reports {
		if !rep.OK() {
			var text strings.Builder
			if err := rep.WriteText(&text); err != nil {
				t.Fatal(err)
			}
			t.Fatalf("pinned scenario cell %d violates conformance under sharding:\n%s", c, text.String())
		}
	}
}

// TestPinnedGPSRegressionShardedLegacy: the historical failure must
// reproduce identically under sharding — cell 0 records exactly the two
// pinned violations, proving the shard boundary changes nothing about
// the cell-local schedule evolution.
func TestPinnedGPSRegressionShardedLegacy(t *testing.T) {
	checkers := make([]*conformance.Checker, 2)
	cfg := mirrorBuildConfig(pinnedSeed, pinnedData, 1.0, pinnedGPS, true)
	in, err := NewWithOptions(cfg, Options{
		Cells:     2,
		WireDelay: phy.CycleLength,
		Sharded:   true,
		CellTracer: func(cell int) core.Tracer {
			checkers[cell] = conformance.New(conformance.Options{
				DynamicSlots:       true,
				SecondControlField: true,
				KeepEvents:         true,
			})
			return checkers[cell]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		populateBuildStyle(t, in, c, pinnedGPS, pinnedData)
	}
	if err := in.Run(pinnedCycles); err != nil {
		t.Fatal(err)
	}
	if v := in.Cell(0).Metrics().GPSDeadlineViolations.Value(); v != pinnedViolations {
		t.Fatalf("sharded cell 0 records %d GPS deadline violations under legacy grants, want %d — "+
			"the shard boundary perturbed the pinned scenario", v, pinnedViolations)
	}
	if traced := checkers[0].Finish().DeadlineEvents; traced != pinnedViolations {
		t.Fatalf("cell 0 checker saw %d violation events, want %d", traced, pinnedViolations)
	}
}
