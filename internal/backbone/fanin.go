// Trace fan-in: per-cell capture taps merged into one deterministic
// multi-cell stream.
//
// Each cell's tracer hook points at a cellTap, which (a) forwards every
// event inline to the cell's private chain (Options.CellTracer — the
// conformance-checker seam, which sees events in exact cell-local
// order in both engines) and (b) buffers events for the shared sink
// (Config.Tracer). The coordinator flushes the buffers at
// deterministic points — every barrier in sharded mode, the end of Run
// in serial mode — sorting each flush batch by (At, cell, Seq).
//
// The cumulative flushed stream is engine-independent: batches are
// time-partitioned (a shard's clock never re-enters a flushed window,
// and the sort key leads with At), per-cell Seq is the cell's own
// monotone trace counter (independent of kernel scheduling), and the
// cell index breaks cross-cell ties identically everywhere. The serial
// engine deliberately routes its shared sink through the same tap +
// sorted-merge path rather than delivering inline: a shared kernel
// interleaves same-instant events of different cells by kernel
// sequence, an order no sharded run could reproduce.
package backbone

import (
	"sort"

	"github.com/osu-netlab/osumac/internal/core"
)

// cellTap is one cell's tracer hook. Trace is on the simulation hot
// path (reachable through the Tracer seam), so it only appends to its
// buffer and forwards — no allocation beyond amortized slice growth.
type cellTap struct {
	next    core.Tracer // per-cell chain (conformance checker etc.)
	capture bool        // buffer for the shared merged sink
	buf     []core.TraceEvent
}

var _ core.Tracer = (*cellTap)(nil)

// Trace implements core.Tracer.
func (t *cellTap) Trace(e core.TraceEvent) {
	if t.capture {
		t.buf = append(t.buf, e)
	}
	if t.next != nil {
		t.next.Trace(e)
	}
}

// taggedEvent carries the cell index through the merge sort.
type taggedEvent struct {
	cell int
	ev   core.TraceEvent
}

// flushTraces drains every tap buffer into the shared sink in
// (At, cell, Seq) order. Callers hold the coordinator role: either no
// kernel is running (serial, between runs) or all shards are parked at
// a barrier.
func (in *Internet) flushTraces() {
	if in.sink == nil {
		return
	}
	n := 0
	for _, t := range in.taps {
		if t != nil {
			n += len(t.buf)
		}
	}
	if n == 0 {
		return
	}
	merged := make([]taggedEvent, 0, n)
	for cell, t := range in.taps {
		if t == nil {
			continue
		}
		for _, e := range t.buf {
			merged = append(merged, taggedEvent{cell: cell, ev: e})
		}
		t.buf = t.buf[:0]
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := &merged[i], &merged[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.cell != b.cell {
			return a.cell < b.cell
		}
		return a.ev.Seq < b.ev.Seq
	})
	for i := range merged {
		in.sink.Trace(merged[i].ev)
	}
}
