// Cross-cell send exchange: the deterministic merge that makes the
// sharded engine byte-identical to the serial oracle.
//
// Every forwarded uplink becomes one xsend record keyed by
// (deliverAt, src, seq): the wire-delayed delivery instant, the source
// cell, and a per-source-cell sequence number assigned in uplink
// completion order. Both engines realize exactly this total order:
//
//   - The serial engine buckets xsends by delivery instant and drains
//     each bucket with a single PriorityBackbone event, executing the
//     bucket's deliveries in (src, seq) order. PriorityBackbone sorts
//     after every local event at the same instant, so a delivery's
//     position never depends on the kernel-sequence interleaving of
//     unrelated cells — the one part of the shared-kernel order a
//     sharded run could not reproduce.
//   - The sharded engine gathers every shard's outbox at each barrier,
//     sorts the batch by (deliverAt, src, seq), and inserts one
//     PriorityBackbone event per xsend into the destination shard in
//     that order; the kernel's (time, priority, insertion) order then
//     executes them identically.
//
// End-to-end latency samples are order-sensitive (stats.Sample sums
// floats), so both engines record them in the same (deliverAt, src,
// seq) order: the serial engine at drain time, the sharded engine at
// the barrier that commits the delivery time.
package backbone

import (
	"sort"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/sim"
)

// xsend is one cross-cell send in flight on the wire.
type xsend struct {
	deliverAt time.Duration
	src, dst  int
	seq       uint64 // per-src assignment order
	dstAddr   Address
	bytes     int
	latency   time.Duration // uplink arrival → base-station receipt
}

// sortXsends orders a batch by the canonical (deliverAt, src, seq) key.
func sortXsends(batch []xsend) {
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.deliverAt != b.deliverAt {
			return a.deliverAt < b.deliverAt
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
}

// enqueueSerial books an xsend for delivery on the shared kernel. The
// first xsend of a delivery instant schedules that instant's drain
// event; later arrivals (same instant, any source cell) join the
// bucket before it fires, because deliverAt is always a full WireDelay
// in the future.
func (in *Internet) enqueueSerial(x xsend) {
	b, scheduled := in.buckets[x.deliverAt]
	in.buckets[x.deliverAt] = append(b, x)
	if scheduled {
		return
	}
	at := x.deliverAt
	if _, err := in.kernel.At(at, sim.PriorityBackbone, func() { in.drainSerial(at) }); err != nil {
		//lint:ignore panicfree provably unreachable: deliverAt = now+WireDelay >= now
		panic(err)
	}
}

// drainSerial delivers every xsend due at `at`, in (src, seq) order.
func (in *Internet) drainSerial(at time.Duration) {
	batch := in.buckets[at]
	delete(in.buckets, at)
	sortXsends(batch)
	for i := range batch {
		in.EndToEndLat.AddDuration(batch[i].latency)
		if in.deliver(&batch[i]) {
			in.Delivered.Inc()
		}
	}
}

// deliver hands one wire arrival to the destination base station. It
// reports whether the downlink leg was accepted. In sharded mode it
// runs inside the destination shard's goroutine; it touches only the
// destination cell and read-only routing maps.
func (in *Internet) deliver(x *xsend) bool {
	dstSub := in.subs[x.dstAddr]
	if dstSub.State() != core.StateActive {
		return false // destination left the network; packet dropped
	}
	return in.cells[x.dst].SendToSubscriber(dstSub, x.bytes) == nil
}

// exchange runs at a sharded barrier: it gathers every shard's outbox,
// sorts the batch into the canonical order, inserts delivery events
// into the destination shards, and appends the batch to the latency
// queue. All shards are parked at the barrier, so no kernel is
// concurrently running. Insertion order realizes the merge order:
// events at equal (time, priority) execute in insertion sequence.
func (in *Internet) exchange() {
	var batch []xsend
	for _, s := range in.shards {
		batch = append(batch, s.outbox...)
		s.outbox = s.outbox[:0]
	}
	if len(batch) == 0 {
		return
	}
	sortXsends(batch)
	for _, x := range batch {
		x := x
		dst := in.shards[x.dst]
		if _, err := dst.kernel.At(x.deliverAt, sim.PriorityBackbone, func() { dst.execDeliver(x) }); err != nil {
			//lint:ignore panicfree provably unreachable: deliverAt >= window end = destination kernel's now (the conservative-lookahead invariant)
			panic(err)
		}
	}
	in.latQ = append(in.latQ, batch...)
	// Batches arrive in ascending disjoint deliverAt ranges, so the
	// append usually keeps latQ sorted already; re-sorting pins the
	// order across Run boundaries, where an old run's tail batch can
	// share its delivery instant with the new run's first batch.
	sortXsends(in.latQ)
}

// applyLatencies records the end-to-end latency of every exchanged
// send whose delivery instant the barriers have committed, in the
// canonical order — the same order the serial engine's drains record
// them in.
func (in *Internet) applyLatencies(committed time.Duration) {
	i := 0
	for i < len(in.latQ) && in.latQ[i].deliverAt <= committed {
		in.EndToEndLat.AddDuration(in.latQ[i].latency)
		i++
	}
	if i > 0 {
		in.latQ = append(in.latQ[:0], in.latQ[i:]...)
	}
}
