// Package backbone implements the wired point-to-point network that
// interconnects base stations (paper §2.2: "The base station … is
// connected to one another to form a wired point-to-point backbone
// network. … The base station receives data packets from all mobile
// subscribers and forwards them to their destinations.").
//
// Cells share one simulation kernel; the backbone delivers an uplink
// message completed at one base station to the destination subscriber's
// base station after a wired propagation+queueing delay, where it is
// fragmented again for downlink transmission.
package backbone

import (
	"fmt"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
	"github.com/osu-netlab/osumac/internal/stats"
)

// Address identifies a subscriber globally: the EIN is universally
// unique (paper §3.1), so it doubles as the routing key.
type Address = frame.EIN

// Internet is a set of OSU-MAC cells joined by a wired backbone.
type Internet struct {
	kernel *sim.Simulator
	cells  []*core.Network
	// WireDelay is the one-way backbone latency between any two base
	// stations (point-to-point mesh).
	WireDelay time.Duration

	// routing: EIN → cell index.
	home map[Address]int
	subs map[Address]*core.Subscriber

	// Pending inter-cell sends awaiting uplink completion:
	// (cellIdx, user, msgID) → destination.
	pending map[pendingKey]pendingSend

	// Metrics.
	Forwarded   stats.Counter
	Delivered   stats.Counter
	EndToEndLat stats.Sample // seconds, uplink arrival → downlink enqueue
}

type pendingKey struct {
	cell  int
	user  frame.UserID
	msgID uint16
}

type pendingSend struct {
	dst       Address
	createdAt time.Duration
}

// New builds an Internet of `cells` OSU-MAC cells on one kernel.
// Cell i uses cfg with Seed+i so cells are statistically independent.
func New(cfg core.Config, cells int, wireDelay time.Duration) (*Internet, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("backbone: need at least one cell")
	}
	kernel := sim.New()
	in := &Internet{
		kernel:    kernel,
		WireDelay: wireDelay,
		home:      make(map[Address]int),
		subs:      make(map[Address]*core.Subscriber),
		pending:   make(map[pendingKey]pendingSend),
	}
	for i := 0; i < cells; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		n, err := core.NewNetworkOnSim(c, kernel)
		if err != nil {
			return nil, err
		}
		idx := i
		n.OnUplinkComplete = func(user frame.UserID, msgID uint16, bytes int) {
			in.onUplink(idx, user, msgID, bytes)
		}
		in.cells = append(in.cells, n)
	}
	return in, nil
}

// Cell returns cell i's network.
func (in *Internet) Cell(i int) *core.Network { return in.cells[i] }

// Cells returns the number of cells.
func (in *Internet) Cells() int { return len(in.cells) }

// Kernel returns the shared simulation kernel.
func (in *Internet) Kernel() *sim.Simulator { return in.kernel }

// AddSubscriber places a subscriber in cell `cell`; the EIN is the
// global address.
func (in *Internet) AddSubscriber(ein Address, cell int, isGPS bool, joinAt time.Duration) (*core.Subscriber, error) {
	if cell < 0 || cell >= len(in.cells) {
		return nil, fmt.Errorf("backbone: cell %d out of range", cell)
	}
	if _, dup := in.home[ein]; dup {
		return nil, fmt.Errorf("backbone: duplicate EIN %d", ein)
	}
	sub, err := in.cells[cell].AddSubscriber(ein, isGPS, joinAt)
	if err != nil {
		return nil, err
	}
	in.home[ein] = cell
	in.subs[ein] = sub
	return sub, nil
}

// Send queues an inter-cell message: src's next uplink message carries
// it to its base station, the backbone forwards it, and the destination
// base station schedules it downlink. The source subscriber must be
// active.
func (in *Internet) Send(src, dst Address, size int) error {
	srcCell, ok := in.home[src]
	if !ok {
		return fmt.Errorf("backbone: unknown source %d", src)
	}
	if _, ok := in.home[dst]; !ok {
		return fmt.Errorf("backbone: unknown destination %d", dst)
	}
	sub := in.subs[src]
	if sub.State() != core.StateActive {
		return fmt.Errorf("backbone: source %d not active", src)
	}
	// Enqueue the uplink message; its msgID is the subscriber's next
	// sequence number, which AddMessage assigns in order. Track it so
	// the uplink-completion hook can route it.
	msgID := sub.NextMsgID()
	now := in.kernel.Now()
	if !sub.AddMessage(size, now) {
		return fmt.Errorf("backbone: source %d queue full", src)
	}
	in.cells[srcCell].TrackMessage(sub.ID(), msgID, size, now)
	in.pending[pendingKey{cell: srcCell, user: sub.ID(), msgID: msgID}] = pendingSend{
		dst:       dst,
		createdAt: now,
	}
	return nil
}

// onUplink routes a completed uplink message across the wire.
func (in *Internet) onUplink(cell int, user frame.UserID, msgID uint16, bytes int) {
	key := pendingKey{cell: cell, user: user, msgID: msgID}
	send, ok := in.pending[key]
	if !ok {
		return // intra-cell traffic, not ours
	}
	delete(in.pending, key)
	dstCell := in.home[send.dst]
	dstSub := in.subs[send.dst]
	in.Forwarded.Inc()
	in.EndToEndLat.AddDuration(in.kernel.Now() - send.createdAt)
	in.kernel.After(in.WireDelay, func() {
		if dstSub.State() != core.StateActive {
			return // destination left the network; packet dropped
		}
		if err := in.cells[dstCell].SendToSubscriber(dstSub, bytes); err == nil {
			in.Delivered.Inc()
		}
	})
}

// Run advances every cell by the given number of notification cycles on
// the shared clock.
func (in *Internet) Run(cycles int) error {
	if cycles <= 0 {
		return fmt.Errorf("backbone: non-positive cycle count")
	}
	start := in.kernel.Now()
	for _, cell := range in.cells {
		if err := cell.ScheduleCycles(cycles, start); err != nil {
			return err
		}
	}
	horizon := start + time.Duration(cycles)*phy.CycleLength + phy.ReverseShift
	kerr := in.kernel.Run(horizon)
	for _, cell := range in.cells {
		if err := cell.Err(); err != nil {
			return err
		}
	}
	return kerr
}
