// Package backbone implements the wired point-to-point network that
// interconnects base stations (paper §2.2: "The base station … is
// connected to one another to form a wired point-to-point backbone
// network. … The base station receives data packets from all mobile
// subscribers and forwards them to their destinations.").
//
// The backbone delivers an uplink message completed at one base station
// to the destination subscriber's base station after a wired
// propagation+queueing delay, where it is fragmented again for downlink
// transmission.
//
// # Execution engines
//
// Two engines drive a multi-cell deployment, selected by
// Options.Sharded:
//
//   - Serial (the differential oracle): every cell shares one
//     sim.Simulator, exactly the single-kernel design the rest of the
//     repo's determinism discipline is proven against.
//   - Sharded: every cell runs its own kernel on a dedicated goroutine,
//     synchronized by conservative-lookahead barriers derived from
//     WireDelay (see shard.go). Cross-cell sends are exchanged at
//     barriers and merged in the fixed total order
//     (delivery time, source cell, per-source sequence).
//
// Same-seed runs of the two engines are byte-identical — identical
// per-cell metrics, identical merged trace streams, identical backbone
// counters and latency samples — at any GOMAXPROCS. The twin test
// battery in twin_test.go and FuzzShardExchange enforce this.
package backbone

import (
	"fmt"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
	"github.com/osu-netlab/osumac/internal/stats"
)

// Address identifies a subscriber globally: the EIN is universally
// unique (paper §3.1), so it doubles as the routing key. Only
// subscribers added through Internet.AddSubscriber occupy the global
// address space; cells may additionally hold local-only subscribers
// (added via Cell(i).AddSubscriber) whose EINs need only be unique
// within their cell — metro-scale deployments rely on this split, since
// the 16-bit EIN space is smaller than a metro's subscriber population.
type Address = frame.EIN

// Options configures a multi-cell deployment.
type Options struct {
	// Cells is the number of OSU-MAC cells (≥1). Cell i runs with
	// Config.Seed+i so cells are statistically independent.
	Cells int
	// WireDelay is the one-way backbone latency between any two base
	// stations (point-to-point mesh). In sharded mode it must be
	// positive: it is the conservative-lookahead bound that guarantees
	// a cross-cell send generated inside a window delivers at or after
	// the window's end barrier.
	WireDelay time.Duration
	// Sharded selects the per-cell-kernel engine. The default (false)
	// keeps every cell on one shared kernel — the differential oracle.
	Sharded bool
	// Lookahead is the barrier window length for the sharded engine.
	// Zero means WireDelay (the maximum safe window); any explicit
	// value must lie in (0, WireDelay]. Smaller windows trade barrier
	// overhead for lower peak skew between shards; every legal value
	// produces byte-identical results.
	Lookahead time.Duration
	// CellTracer, when set, builds a per-cell tracer chain: cell i's
	// events are delivered inline (in cell-local order) to
	// CellTracer(i). This is the seam for per-shard conformance
	// checkers — each cell gets its own checker, valid in both engines.
	// A nil return detaches cell i.
	CellTracer func(cell int) core.Tracer
}

// Internet is a set of OSU-MAC cells joined by a wired backbone.
type Internet struct {
	kernel *sim.Simulator // serial engine's shared kernel; nil when sharded
	shards []*shard       // sharded engine's per-cell shards; nil when serial
	cells  []*core.Network
	taps   []*cellTap // per-cell trace taps (entries may be nil)
	sink   core.Tracer

	// WireDelay is the one-way backbone latency between any two base
	// stations (point-to-point mesh).
	WireDelay time.Duration
	lookahead time.Duration
	sharded   bool
	committed time.Duration // barrier-committed virtual time (sharded)

	// routing: EIN → cell index.
	home map[Address]int
	subs map[Address]*core.Subscriber

	// Pending inter-cell sends awaiting uplink completion, partitioned
	// by source cell so shard goroutines never share a map.
	pending []map[pendingKey]pendingSend
	// xseq hands out per-source-cell exchange sequence numbers — the
	// third component of the deterministic merge order. Partitioned per
	// cell for the same reason as pending.
	xseq []uint64

	// Serial-engine exchange state: deliveries bucketed by their
	// delivery instant, drained in (source cell, sequence) order by one
	// PriorityBackbone event per instant.
	buckets map[time.Duration][]xsend

	// Sharded-engine latency queue: forwarded sends whose end-to-end
	// latency sample is applied once the barrier commits their delivery
	// time, keeping stats.Sample's order-sensitive float accumulation
	// identical to the serial engine's.
	latQ []xsend

	// Metrics.
	Forwarded   stats.Counter
	Delivered   stats.Counter
	EndToEndLat stats.Sample // seconds, uplink arrival → downlink enqueue
}

type pendingKey struct {
	user  frame.UserID
	msgID uint16
}

type pendingSend struct {
	dst       Address
	createdAt time.Duration
}

// New builds an Internet of `cells` OSU-MAC cells on one shared kernel
// (the serial engine). Cell i uses cfg with Seed+i so cells are
// statistically independent.
func New(cfg core.Config, cells int, wireDelay time.Duration) (*Internet, error) {
	return NewWithOptions(cfg, Options{Cells: cells, WireDelay: wireDelay})
}

// NewWithOptions builds an Internet with full engine control. The
// shared tracer cfg.Tracer, when set, receives the merged multi-cell
// event stream in (time, cell, per-cell sequence) order, flushed at
// deterministic points (every barrier in sharded mode, end of Run in
// serial mode); the cumulative stream is byte-identical across engines.
// Per-cell consumers (conformance checkers) should use
// Options.CellTracer instead, which delivers events inline.
func NewWithOptions(cfg core.Config, o Options) (*Internet, error) {
	if o.Cells <= 0 {
		return nil, fmt.Errorf("backbone: need at least one cell")
	}
	if o.Sharded {
		if o.WireDelay <= 0 {
			return nil, fmt.Errorf("backbone: sharded mode needs a positive WireDelay (it is the conservative-lookahead bound)")
		}
		if o.Lookahead == 0 {
			o.Lookahead = o.WireDelay
		}
		if o.Lookahead < 0 || o.Lookahead > o.WireDelay {
			return nil, fmt.Errorf("backbone: lookahead %v outside (0, WireDelay=%v]", o.Lookahead, o.WireDelay)
		}
	}
	in := &Internet{
		WireDelay: o.WireDelay,
		lookahead: o.Lookahead,
		sharded:   o.Sharded,
		sink:      cfg.Tracer,
		home:      make(map[Address]int),
		subs:      make(map[Address]*core.Subscriber),
		pending:   make([]map[pendingKey]pendingSend, o.Cells),
		xseq:      make([]uint64, o.Cells),
		taps:      make([]*cellTap, o.Cells),
	}
	if !o.Sharded {
		in.kernel = sim.New()
		in.buckets = make(map[time.Duration][]xsend)
	}
	for i := 0; i < o.Cells; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		var next core.Tracer
		if o.CellTracer != nil {
			next = o.CellTracer(i)
		}
		c.Tracer = nil
		if in.sink != nil || next != nil {
			tap := &cellTap{next: next, capture: in.sink != nil}
			in.taps[i] = tap
			c.Tracer = tap
		}
		kernel := in.kernel
		if o.Sharded {
			kernel = sim.New()
		}
		n, err := core.NewNetworkOnSim(c, kernel)
		if err != nil {
			return nil, err
		}
		idx := i
		n.OnUplinkComplete = func(user frame.UserID, msgID uint16, bytes int) {
			in.onUplink(idx, user, msgID, bytes)
		}
		in.pending[i] = make(map[pendingKey]pendingSend)
		in.cells = append(in.cells, n)
		if o.Sharded {
			in.shards = append(in.shards, &shard{idx: i, kernel: kernel, cell: n, in: in})
		}
	}
	return in, nil
}

// Cell returns cell i's network.
func (in *Internet) Cell(i int) *core.Network { return in.cells[i] }

// Cells returns the number of cells.
func (in *Internet) Cells() int { return len(in.cells) }

// Sharded reports whether the deployment runs on the per-cell-kernel
// engine.
func (in *Internet) Sharded() bool { return in.sharded }

// Kernel returns the shared simulation kernel of the serial engine, or
// nil in sharded mode (each cell owns a kernel there; see
// Cell(i).Sim()).
func (in *Internet) Kernel() *sim.Simulator { return in.kernel }

// Now returns the deployment's committed virtual time: the shared
// kernel clock in serial mode, the last barrier time in sharded mode.
// Between Run calls every cell's clock equals this value.
func (in *Internet) Now() time.Duration {
	if in.sharded {
		return in.committed
	}
	return in.kernel.Now()
}

// AddSubscriber places a subscriber in cell `cell`; the EIN is the
// global address.
func (in *Internet) AddSubscriber(ein Address, cell int, isGPS bool, joinAt time.Duration) (*core.Subscriber, error) {
	if cell < 0 || cell >= len(in.cells) {
		return nil, fmt.Errorf("backbone: cell %d out of range", cell)
	}
	if _, dup := in.home[ein]; dup {
		return nil, fmt.Errorf("backbone: duplicate EIN %d", ein)
	}
	sub, err := in.cells[cell].AddSubscriber(ein, isGPS, joinAt)
	if err != nil {
		return nil, err
	}
	in.home[ein] = cell
	in.subs[ein] = sub
	return sub, nil
}

// Subscriber returns the globally-addressed subscriber, or nil if the
// address was never registered through AddSubscriber.
func (in *Internet) Subscriber(ein Address) *core.Subscriber { return in.subs[ein] }

// Send queues an inter-cell message: src's next uplink message carries
// it to its base station, the backbone forwards it, and the destination
// base station schedules it downlink. The source subscriber must be
// active. Send is a between-runs operation: call it only while Run is
// not executing.
func (in *Internet) Send(src, dst Address, size int) error {
	srcCell, ok := in.home[src]
	if !ok {
		return fmt.Errorf("backbone: unknown source %d", src)
	}
	if _, ok := in.home[dst]; !ok {
		return fmt.Errorf("backbone: unknown destination %d", dst)
	}
	sub := in.subs[src]
	if sub.State() != core.StateActive {
		return fmt.Errorf("backbone: source %d not active", src)
	}
	// Enqueue the uplink message; its msgID is the subscriber's next
	// sequence number, which AddMessage assigns in order. Track it so
	// the uplink-completion hook can route it.
	msgID := sub.NextMsgID()
	now := in.Now()
	if !sub.AddMessage(size, now) {
		return fmt.Errorf("backbone: source %d queue full", src)
	}
	in.cells[srcCell].TrackMessage(sub.ID(), msgID, size, now)
	in.pending[srcCell][pendingKey{user: sub.ID(), msgID: msgID}] = pendingSend{
		dst:       dst,
		createdAt: now,
	}
	return nil
}

// onUplink routes a completed uplink message across the wire. It runs
// inside the source cell's kernel (the shared kernel in serial mode, the
// cell's shard goroutine in sharded mode).
func (in *Internet) onUplink(cell int, user frame.UserID, msgID uint16, bytes int) {
	key := pendingKey{user: user, msgID: msgID}
	send, ok := in.pending[cell][key]
	if !ok {
		return // intra-cell traffic, not ours
	}
	delete(in.pending[cell], key)
	now := in.cellNow(cell)
	x := xsend{
		deliverAt: now + in.WireDelay,
		src:       cell,
		dst:       in.home[send.dst],
		seq:       in.xseq[cell],
		dstAddr:   send.dst,
		bytes:     bytes,
		latency:   now - send.createdAt,
	}
	in.xseq[cell]++
	if in.sharded {
		s := in.shards[cell]
		s.forwarded++
		s.outbox = append(s.outbox, x)
		return
	}
	in.Forwarded.Inc()
	in.enqueueSerial(x)
}

// cellNow returns cell i's current kernel time.
func (in *Internet) cellNow(cell int) time.Duration {
	if in.sharded {
		return in.shards[cell].kernel.Now()
	}
	return in.kernel.Now()
}

// Run advances every cell by the given number of notification cycles on
// a shared virtual clock. On an internal cell failure the returned
// error is a *CellError naming the cell and the virtual time it had
// reached; the deployment is poisoned for further runs, but every
// cell's partial metrics and traces remain readable.
func (in *Internet) Run(cycles int) error {
	if cycles <= 0 {
		return fmt.Errorf("backbone: non-positive cycle count")
	}
	if in.sharded {
		return in.runSharded(cycles)
	}
	return in.runSerial(cycles)
}

// runSerial drives all cells on the shared kernel — the differential
// oracle the sharded engine is verified against.
func (in *Internet) runSerial(cycles int) error {
	start := in.kernel.Now()
	for _, cell := range in.cells {
		if err := cell.ScheduleCycles(cycles, start); err != nil {
			return err
		}
	}
	kerr := in.kernel.Run(horizonFor(start, cycles))
	if kerr != nil {
		err := in.serialFailure(kerr)
		in.flushTraces()
		return err
	}
	for _, cell := range in.cells {
		cell.FlushSeries()
	}
	in.flushTraces()
	return nil
}

// serialFailure wraps a mid-flight kernel stop in a *CellError naming
// the failed cell. At most one cell can fail on the shared kernel: the
// failing event stops the loop before any other cell runs.
func (in *Internet) serialFailure(kerr error) error {
	for i, cell := range in.cells {
		if err := cell.Err(); err != nil {
			return &CellError{Cell: i, At: in.kernel.Now(), Err: err}
		}
	}
	return kerr
}

// horizonFor computes the run horizon: the cycles' span plus the
// runway for the final cycle's reverse slots to land.
func horizonFor(start time.Duration, cycles int) time.Duration {
	return start + time.Duration(cycles)*phy.CycleLength + phy.ReverseShift
}
