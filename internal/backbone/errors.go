package backbone

import (
	"fmt"
	"time"
)

// CellError reports which cell aborted a multi-cell run and the virtual
// time its kernel had reached when it stopped. Run wraps every
// mid-flight internal cell failure in a CellError so that callers keep
// the per-cell partial progress context a bare kernel error would
// discard; errors.As unwraps to the underlying cause (typically a
// *core.InternalError). When several shards fail inside one barrier
// window, the earliest failure — by (At, Cell) — is reported.
type CellError struct {
	// Cell is the failed cell's index.
	Cell int
	// At is the virtual time the cell's kernel had reached.
	At time.Duration
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *CellError) Error() string {
	return fmt.Sprintf("backbone: cell %d failed at %v: %v", e.Cell, e.At, e.Err)
}

// Unwrap supports errors.Is/As chains.
func (e *CellError) Unwrap() error { return e.Err }
