// The sharded engine: one kernel shard per cell on a dedicated
// goroutine, synchronized by conservative-lookahead barriers.
//
// # Barrier protocol
//
// A run from committed time T to horizon H proceeds in windows of
// length L = Options.Lookahead (L ≤ WireDelay):
//
//	w = T
//	while w < H:  every shard RunBefore(min(w+L, H)); barrier; exchange
//	finally:      every shard Run(H) (inclusive);      barrier; exchange
//
// Inside a window a shard executes only its own cell's events. The
// lookahead invariant makes this safe: a cross-cell send generated at
// time t delivers at t+WireDelay ≥ w+L, i.e. at or after the window's
// end barrier, so no shard can ever need an event another shard has
// not yet exchanged. Deliveries are inserted at the barrier, before
// any shard enters the window that could execute them.
//
// The final inclusive Run(H) step exists because RunBefore is
// exclusive: events scheduled exactly at the horizon (a delivery whose
// wire delay divides the run length, the last reverse-slot runway
// instant) must still fire inside this Run call, exactly as the serial
// engine's inclusive kernel.Run(H) fires them.
//
// # Determinism
//
// Shards share no mutable state: each cell owns its RNG fork
// (Seed+i), metrics, codec scratch, and trace tap, and the per-cell
// pending/sequence tables are partitioned by cell. The only cross-cell
// coupling is the exchanged sends, whose order is pinned by the
// (deliverAt, src, seq) merge (see exchange.go) — independent of
// goroutine scheduling, barrier arrival order, and GOMAXPROCS. Shard
// goroutines communicate exclusively through one command channel per
// shard and a WaitGroup barrier, both of which establish the
// happens-before edges the coordinator needs to read shard state.
package backbone

import (
	"sync"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/sim"
)

// window is one barrier-delimited work order for a shard.
type window struct {
	limit     time.Duration
	inclusive bool // final step: run events at the horizon itself
}

// shard is one cell's private kernel plus its exchange state.
type shard struct {
	idx    int
	kernel *sim.Simulator
	cell   *core.Network
	in     *Internet

	cmd chan window
	wg  *sync.WaitGroup

	// outbox collects the window's cross-cell sends; the coordinator
	// drains it at the barrier.
	outbox []xsend
	// forwarded/delivered are running totals folded into the Internet
	// counters at barriers.
	forwarded uint64
	delivered uint64

	err *CellError
}

// loop processes barrier windows until the coordinator closes cmd.
// Deterministic dispatch: a single-receiver channel range, no select.
func (s *shard) loop() {
	for w := range s.cmd {
		s.runWindow(w)
		s.wg.Done()
	}
}

// runWindow advances the shard's kernel to the window limit. After a
// failure the shard holds position and reports the same error.
func (s *shard) runWindow(w window) {
	if s.err != nil {
		return
	}
	var err error
	if w.inclusive {
		err = s.kernel.Run(w.limit)
	} else {
		err = s.kernel.RunBefore(w.limit)
	}
	if err != nil {
		cause := s.cell.Err()
		if cause == nil {
			cause = err
		}
		s.err = &CellError{Cell: s.idx, At: s.kernel.Now(), Err: cause}
	}
}

// execDeliver executes one exchanged delivery inside this (destination)
// shard's kernel.
func (s *shard) execDeliver(x xsend) {
	if s.in.deliver(&x) {
		s.delivered++
	}
}

// runSharded drives one Run call on the sharded engine.
func (in *Internet) runSharded(cycles int) error {
	start := in.committed
	for _, cell := range in.cells {
		if err := cell.ScheduleCycles(cycles, start); err != nil {
			return err
		}
	}
	horizon := horizonFor(start, cycles)

	var wg sync.WaitGroup
	for _, s := range in.shards {
		s.cmd = make(chan window)
		s.wg = &wg
		go s.loop()
	}
	defer func() {
		for _, s := range in.shards {
			close(s.cmd)
		}
	}()

	var failure *CellError
	w := start
	for {
		win := window{limit: horizon, inclusive: true}
		if w < horizon {
			win = window{limit: w + in.lookahead}
			if win.limit > horizon {
				win.limit = horizon
			}
		}
		wg.Add(len(in.shards))
		for _, s := range in.shards {
			s.cmd <- win
		}
		wg.Wait()
		for _, s := range in.shards {
			if s.err != nil && (failure == nil || s.err.At < failure.At ||
				(s.err.At == failure.At && s.err.Cell < failure.Cell)) {
				failure = s.err
			}
		}
		if failure != nil {
			break
		}
		in.exchange()
		in.committed = win.limit
		if win.inclusive {
			for _, cell := range in.cells {
				cell.FlushSeries()
			}
		}
		in.applyLatencies(in.committed)
		in.flushTraces()
		if win.inclusive {
			break
		}
		w = win.limit
	}
	in.syncCounters()
	if failure != nil {
		in.flushTraces()
		return failure
	}
	return nil
}

// syncCounters folds the shards' running forward/deliver totals into
// the Internet counters.
func (in *Internet) syncCounters() {
	var fwd, del uint64
	for _, s := range in.shards {
		fwd += s.forwarded
		del += s.delivered
	}
	if d := fwd - in.Forwarded.Value(); d > 0 {
		in.Forwarded.Addn(d)
	}
	if d := del - in.Delivered.Value(); d > 0 {
		in.Delivered.Addn(d)
	}
}
