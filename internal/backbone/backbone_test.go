package backbone

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
)

func newInternet(t *testing.T, cells int) *Internet {
	t.Helper()
	cfg := core.NewConfig()
	cfg.Seed = 5
	in, err := New(cfg, cells, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewValidation(t *testing.T) {
	cfg := core.NewConfig()
	if _, err := New(cfg, 0, 0); err == nil {
		t.Fatal("zero cells accepted")
	}
}

func TestInterCellDelivery(t *testing.T) {
	in := newInternet(t, 2)
	a, err := in.AddSubscriber(100, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.AddSubscriber(200, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Let both register.
	if err := in.Run(4); err != nil {
		t.Fatal(err)
	}
	if a.State() != core.StateActive || b.State() != core.StateActive {
		t.Fatalf("states %v / %v", a.State(), b.State())
	}

	// A (cell 0) sends 200 bytes to B (cell 1).
	if err := in.Send(100, 200, 200); err != nil {
		t.Fatal(err)
	}
	if err := in.Run(12); err != nil {
		t.Fatal(err)
	}

	if in.Forwarded.Value() != 1 {
		t.Fatalf("forwarded = %d", in.Forwarded.Value())
	}
	if in.Delivered.Value() != 1 {
		t.Fatalf("delivered = %d", in.Delivered.Value())
	}
	// The uplink leg was counted by cell 0's metrics.
	if in.Cell(0).Metrics().MessagesDelivered.Value() != 1 {
		t.Fatal("uplink leg not counted")
	}
	// The downlink leg flowed through cell 1's forward channel.
	m1 := in.Cell(1).Metrics()
	if m1.ForwardPktsDelivered.Value() == 0 {
		t.Fatal("downlink leg never transmitted")
	}
	if m1.ForwardPktsDelivered.Value() != m1.ForwardPktsSent.Value() {
		t.Fatal("downlink lost packets on ideal channel")
	}
	if in.EndToEndLat.Count() != 1 || in.EndToEndLat.Mean() <= 0 {
		t.Fatal("end-to-end latency not recorded")
	}
}

func TestIntraCellTrafficNotRouted(t *testing.T) {
	in := newInternet(t, 2)
	if _, err := in.AddSubscriber(100, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	// Native Poisson traffic in a cell must not confuse the router.
	if err := in.Run(10); err != nil {
		t.Fatal(err)
	}
	if in.Forwarded.Value() != 0 {
		t.Fatal("router forwarded traffic nobody sent")
	}
}

func TestSendValidation(t *testing.T) {
	in := newInternet(t, 2)
	if _, err := in.AddSubscriber(100, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := in.Send(100, 999, 50); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if err := in.Send(999, 100, 50); err == nil {
		t.Fatal("unknown source accepted")
	}
	// Source not yet active.
	if err := in.Send(100, 100, 50); err == nil {
		t.Fatal("inactive source accepted")
	}
}

func TestAddSubscriberValidation(t *testing.T) {
	in := newInternet(t, 2)
	if _, err := in.AddSubscriber(100, 5, false, 0); err == nil {
		t.Fatal("bad cell index accepted")
	}
	if _, err := in.AddSubscriber(100, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := in.AddSubscriber(100, 1, false, 0); err == nil {
		t.Fatal("duplicate EIN across cells accepted")
	}
}

func TestCellsShareOneClock(t *testing.T) {
	in := newInternet(t, 3)
	if err := in.Run(5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.Cells(); i++ {
		if got := in.Cell(i).Cycle(); got != 5 {
			t.Fatalf("cell %d ran %d cycles", i, got)
		}
	}
	if in.Kernel().Now() <= 0 {
		t.Fatal("kernel did not advance")
	}
}

func TestManyFlowsBothDirections(t *testing.T) {
	in := newInternet(t, 2)
	for i := 0; i < 3; i++ {
		if _, err := in.AddSubscriber(Address(100+i), 0, false, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := in.AddSubscriber(Address(200+i), 1, false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Run(6); err != nil {
		t.Fatal(err)
	}
	sent := 0
	for i := 0; i < 3; i++ {
		if err := in.Send(Address(100+i), Address(200+i), 120); err == nil {
			sent++
		}
		if err := in.Send(Address(200+i), Address(100+i), 90); err == nil {
			sent++
		}
	}
	if sent == 0 {
		t.Fatal("no flows started")
	}
	if err := in.Run(25); err != nil {
		t.Fatal(err)
	}
	if int(in.Delivered.Value()) != sent {
		t.Fatalf("delivered %d of %d inter-cell messages", in.Delivered.Value(), sent)
	}
}

func TestRunValidation(t *testing.T) {
	in := newInternet(t, 1)
	if err := in.Run(0); err == nil {
		t.Fatal("zero cycles accepted")
	}
}
