package backbone

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/conformance"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/traffic"
)

// twinScenario is one differential-test configuration: the same
// deployment is run on the serial oracle and the sharded engine and
// every observable output must match byte for byte.
type twinScenario struct {
	cells     int
	gps, data int // subscribers per cell
	load      float64
	seed      uint64
	warm      int // settle cycles before cross-traffic is injected
	main      int // measured cycles
	wire      time.Duration
	lookahead time.Duration // 0: WireDelay
	sends     int           // ring-pattern cross-cell messages
}

func (s twinScenario) String() string {
	return fmt.Sprintf("cells=%d gps=%d data=%d load=%.1f seed=%d wire=%v la=%v sends=%d",
		s.cells, s.gps, s.data, s.load, s.seed, s.wire, s.lookahead, s.sends)
}

// twinOutcome is everything a run exposes, in comparable form.
type twinOutcome struct {
	cellSnaps []string // per-cell metrics snapshot JSON
	cellErrs  []string // per-cell core run errors
	traces    []core.TraceEvent
	forwarded uint64
	delivered uint64
	latVals   []float64
	latSum    float64
	sendErrs  []string
	reports   []string // per-cell conformance reports
	runErr    string
}

// dataAddr returns the global address of data subscriber i in cell c.
func dataAddr(c, i int) Address { return Address(10000 + c*64 + i) }

// buildTwin constructs the deployment for a scenario on one engine.
func buildTwin(t *testing.T, s twinScenario, sharded bool, tracer core.Tracer, cellTracer func(int) core.Tracer) *Internet {
	t.Helper()
	cfg := core.NewConfig()
	cfg.Seed = s.seed
	cfg.Tracer = tracer
	if s.load > 0 && s.data > 0 {
		dataSlots := phy.Format1DataSlots
		if s.gps <= phy.Format2GPSSlots {
			dataSlots = phy.Format2DataSlots
		}
		cfg.MeanInterarrival = traffic.InterarrivalForSlots(
			s.load, s.data, cfg.SizeDist, frame.MaxPayload, phy.CycleLength, dataSlots)
	}
	in, err := NewWithOptions(cfg, Options{
		Cells:      s.cells,
		WireDelay:  s.wire,
		Sharded:    sharded,
		Lookahead:  s.lookahead,
		CellTracer: cellTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < s.cells; c++ {
		for i := 0; i < s.gps; i++ {
			if _, err := in.AddSubscriber(Address(1000+c*8+i), c, true, time.Duration(i)*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < s.data; i++ {
			if _, err := in.AddSubscriber(dataAddr(c, i), c, false, time.Duration(i)*500*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	return in
}

// runTwin executes a scenario on one engine and collects the outcome.
func runTwin(t *testing.T, s twinScenario, sharded bool) twinOutcome {
	t.Helper()
	buf := &core.TraceBuffer{Cap: 1 << 21}
	checkers := make([]*conformance.Checker, s.cells)
	cellTracer := func(cell int) core.Tracer {
		checkers[cell] = conformance.New(conformance.Options{
			DeadlineMustHold:   true,
			DynamicSlots:       true,
			SecondControlField: true,
		})
		return checkers[cell]
	}
	in := buildTwin(t, s, sharded, buf, cellTracer)
	var out twinOutcome
	record := func(err error) {
		if err != nil && out.runErr == "" {
			out.runErr = err.Error()
		}
	}
	record(in.Run(s.warm))
	for k := 0; k < s.sends && out.runErr == ""; k++ {
		src := dataAddr(k%s.cells, k%s.data)
		dst := dataAddr((k+1)%s.cells, (k/s.cells)%s.data)
		size := 60 + 40*(k%9)
		if err := in.Send(src, dst, size); err != nil {
			out.sendErrs = append(out.sendErrs, fmt.Sprintf("send %d: %v", k, err))
		}
	}
	if out.runErr == "" {
		record(in.Run(s.main))
	}
	for c := 0; c < s.cells; c++ {
		snap, err := json.Marshal(in.Cell(c).Metrics().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		out.cellSnaps = append(out.cellSnaps, string(snap))
		cellErr := ""
		if err := in.Cell(c).Err(); err != nil {
			cellErr = err.Error()
		}
		out.cellErrs = append(out.cellErrs, cellErr)
		var rep strings.Builder
		if err := checkers[c].Finish().WriteText(&rep); err != nil {
			t.Fatal(err)
		}
		out.reports = append(out.reports, rep.String())
	}
	out.traces = buf.Events()
	out.forwarded = in.Forwarded.Value()
	out.delivered = in.Delivered.Value()
	out.latVals = in.EndToEndLat.Values()
	out.latSum = in.EndToEndLat.Sum()
	return out
}

// compareOutcomes asserts byte-identity of two engine outcomes.
func compareOutcomes(t *testing.T, label string, a, b twinOutcome) {
	t.Helper()
	if a.runErr != b.runErr {
		t.Fatalf("%s: run errors differ: %q vs %q", label, a.runErr, b.runErr)
	}
	if len(a.sendErrs) != len(b.sendErrs) {
		t.Fatalf("%s: send errors differ: %v vs %v", label, a.sendErrs, b.sendErrs)
	}
	for i := range a.sendErrs {
		if a.sendErrs[i] != b.sendErrs[i] {
			t.Fatalf("%s: send error %d differs: %q vs %q", label, i, a.sendErrs[i], b.sendErrs[i])
		}
	}
	if a.forwarded != b.forwarded || a.delivered != b.delivered {
		t.Fatalf("%s: backbone counters differ: fwd %d/%d del %d/%d",
			label, a.forwarded, b.forwarded, a.delivered, b.delivered)
	}
	if a.latSum != b.latSum || len(a.latVals) != len(b.latVals) {
		t.Fatalf("%s: latency samples differ: n=%d/%d sum=%v/%v",
			label, len(a.latVals), len(b.latVals), a.latSum, b.latSum)
	}
	for i := range a.latVals {
		if a.latVals[i] != b.latVals[i] {
			t.Fatalf("%s: latency value %d differs: %v vs %v", label, i, a.latVals[i], b.latVals[i])
		}
	}
	for c := range a.cellSnaps {
		if a.cellSnaps[c] != b.cellSnaps[c] {
			t.Fatalf("%s: cell %d metrics snapshot differs:\nA: %s\nB: %s",
				label, c, a.cellSnaps[c], b.cellSnaps[c])
		}
		if a.cellErrs[c] != b.cellErrs[c] {
			t.Fatalf("%s: cell %d error differs: %q vs %q", label, c, a.cellErrs[c], b.cellErrs[c])
		}
		if a.reports[c] != b.reports[c] {
			t.Fatalf("%s: cell %d conformance report differs:\nA:\n%s\nB:\n%s",
				label, c, a.reports[c], b.reports[c])
		}
	}
	if len(a.traces) != len(b.traces) {
		t.Fatalf("%s: trace stream lengths differ: %d vs %d", label, len(a.traces), len(b.traces))
	}
	for i := range a.traces {
		if a.traces[i] != b.traces[i] {
			t.Fatalf("%s: trace event %d differs:\nA: %+v\nB: %+v", label, i, a.traces[i], b.traces[i])
		}
	}
}

// twinGrid is the differential battery's scenario grid.
func twinGrid(short bool) []twinScenario {
	grid := []twinScenario{
		{cells: 2, gps: 1, data: 2, load: 0.5, seed: 1, warm: 4, main: 10, wire: 30 * time.Millisecond, sends: 4},
		{cells: 3, gps: 2, data: 3, load: 0.8, seed: 42, warm: 4, main: 12, wire: 250 * time.Millisecond, sends: 9},
		{cells: 4, gps: 0, data: 4, load: 1.0, seed: 8188083318138684029, warm: 5, main: 10, wire: phy.CycleLength, sends: 12},
	}
	if !short {
		grid = append(grid,
			twinScenario{cells: 2, gps: 4, data: 6, load: 0.9, seed: 7, warm: 6, main: 25, wire: 100 * time.Millisecond, sends: 16},
			twinScenario{cells: 6, gps: 1, data: 2, load: 0.5, seed: 99, warm: 4, main: 20, wire: 50 * time.Millisecond, lookahead: 20 * time.Millisecond, sends: 24},
			twinScenario{cells: 3, gps: 3, data: 4, load: 1.1, seed: 3, warm: 5, main: 30, wire: time.Second, sends: 18},
		)
	}
	return grid
}

// TestTwinShardedMatchesSerial is the core differential battery:
// sharded-vs-single-kernel byte-identity over a (cells × subscribers ×
// loads × seeds) grid, comparing metrics snapshots, trace streams, and
// per-cell conformance reports.
func TestTwinShardedMatchesSerial(t *testing.T) {
	for _, s := range twinGrid(testing.Short()) {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			serial := runTwin(t, s, false)
			sharded := runTwin(t, s, true)
			compareOutcomes(t, "sharded vs serial", serial, sharded)
			if len(serial.traces) == 0 {
				t.Fatal("empty trace stream; the comparison proved nothing")
			}
			if s.sends > 0 && serial.forwarded == 0 {
				t.Fatal("no cross-cell traffic forwarded; the exchange path was not exercised")
			}
		})
	}
}

// TestTwinGOMAXPROCS pins scheduler independence: the sharded engine
// must produce identical bytes at GOMAXPROCS=1 and GOMAXPROCS=N.
func TestTwinGOMAXPROCS(t *testing.T) {
	s := twinScenario{cells: 4, gps: 2, data: 3, load: 0.8, seed: 42,
		warm: 4, main: 12, wire: 120 * time.Millisecond, sends: 10}
	prev := runtime.GOMAXPROCS(1)
	one := runTwin(t, s, true)
	runtime.GOMAXPROCS(8)
	many := runTwin(t, s, true)
	runtime.GOMAXPROCS(prev)
	compareOutcomes(t, "GOMAXPROCS 1 vs 8", one, many)
}

// TestTwinFlakeDetector requires three consecutive identical sharded
// runs: a scheduler-dependent leak shows up as run-to-run jitter long
// before it shows up against the oracle.
func TestTwinFlakeDetector(t *testing.T) {
	s := twinScenario{cells: 3, gps: 1, data: 3, load: 0.9, seed: 11,
		warm: 4, main: 10, wire: 80 * time.Millisecond, sends: 8}
	first := runTwin(t, s, true)
	for rep := 1; rep < 3; rep++ {
		again := runTwin(t, s, true)
		compareOutcomes(t, fmt.Sprintf("run 0 vs run %d", rep), first, again)
	}
}

// TestTwinLookaheadInvariance: every legal barrier window length must
// produce the same bytes — the window is a performance knob, not a
// semantic one.
func TestTwinLookaheadInvariance(t *testing.T) {
	base := twinScenario{cells: 3, gps: 1, data: 2, load: 0.7, seed: 5,
		warm: 4, main: 10, wire: 200 * time.Millisecond, sends: 6}
	ref := runTwin(t, base, true)
	for _, la := range []time.Duration{200 * time.Millisecond, 70 * time.Millisecond, time.Millisecond} {
		s := base
		s.lookahead = la
		got := runTwin(t, s, true)
		compareOutcomes(t, fmt.Sprintf("lookahead %v", la), ref, got)
	}
}

// TestShardedValidation pins the sharded-engine constructor contract.
func TestShardedValidation(t *testing.T) {
	cfg := core.NewConfig()
	if _, err := NewWithOptions(cfg, Options{Cells: 2, Sharded: true}); err == nil {
		t.Fatal("sharded mode without WireDelay accepted")
	}
	if _, err := NewWithOptions(cfg, Options{Cells: 2, Sharded: true,
		WireDelay: 10 * time.Millisecond, Lookahead: 20 * time.Millisecond}); err == nil {
		t.Fatal("lookahead beyond WireDelay accepted")
	}
	in, err := NewWithOptions(cfg, Options{Cells: 2, Sharded: true, WireDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Sharded() || in.Kernel() != nil {
		t.Fatal("sharded deployment must report Sharded and expose no shared kernel")
	}
	if in.Now() != 0 {
		t.Fatalf("fresh deployment Now() = %v", in.Now())
	}
}

// TestCellErrorSerial: a mid-flight cell failure on the serial engine
// surfaces as a *CellError naming the cell and failure time.
func TestCellErrorSerial(t *testing.T) {
	in := newInternet(t, 3)
	boom := errors.New("injected fault")
	failAt := 5 * time.Second
	cell := in.Cell(2)
	cell.Sim().After(failAt, func() { cell.Abort("twin-test", boom) })
	err := in.Run(4)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if ce.Cell != 2 {
		t.Fatalf("failed cell = %d, want 2", ce.Cell)
	}
	if ce.At != failAt {
		t.Fatalf("failure time = %v, want %v", ce.At, failAt)
	}
	if !errors.Is(err, boom) {
		t.Fatal("CellError must unwrap to the injected cause")
	}
	var ie *core.InternalError
	if !errors.As(err, &ie) {
		t.Fatal("CellError must unwrap to the cell's *core.InternalError")
	}
}

// TestCellErrorSharded: the same failure surfacing contract holds on
// the sharded engine, where the other shards keep their window-local
// partial progress.
func TestCellErrorSharded(t *testing.T) {
	cfg := core.NewConfig()
	cfg.Seed = 5
	in, err := NewWithOptions(cfg, Options{Cells: 3, WireDelay: 30 * time.Millisecond, Sharded: true})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected fault")
	failAt := 5 * time.Second
	cell := in.Cell(1)
	cell.Sim().After(failAt, func() { cell.Abort("twin-test", boom) })
	runErr := in.Run(4)
	var ce *CellError
	if !errors.As(runErr, &ce) {
		t.Fatalf("err = %v, want *CellError", runErr)
	}
	if ce.Cell != 1 {
		t.Fatalf("failed cell = %d, want 1", ce.Cell)
	}
	if ce.At != failAt {
		t.Fatalf("failure time = %v, want %v", ce.At, failAt)
	}
	if !errors.Is(runErr, boom) {
		t.Fatal("CellError must unwrap to the injected cause")
	}
	// The healthy cells advanced to (at least) the barrier before the
	// failing window — their partial progress is not discarded.
	if in.Cell(0).Cycle() == 0 || in.Cell(2).Cycle() == 0 {
		t.Fatal("healthy shards lost their partial progress")
	}
}

// TestShardedMultiRunSegments: segmented Run calls with between-run
// sends must match one long serial run of the same segmentation.
func TestShardedMultiRunSegments(t *testing.T) {
	run := func(sharded bool) twinOutcome {
		buf := &core.TraceBuffer{Cap: 1 << 20}
		s := twinScenario{cells: 2, gps: 0, data: 2, load: 0.6, seed: 17,
			wire: 40 * time.Millisecond}
		in := buildTwin(t, s, sharded, buf, nil)
		var out twinOutcome
		for seg := 0; seg < 3; seg++ {
			if err := in.Run(4); err != nil {
				t.Fatal(err)
			}
			if err := in.Send(dataAddr(0, seg%2), dataAddr(1, seg%2), 150); err != nil {
				out.sendErrs = append(out.sendErrs, err.Error())
			}
		}
		if err := in.Run(8); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			snap, err := json.Marshal(in.Cell(c).Metrics().Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			out.cellSnaps = append(out.cellSnaps, string(snap))
			out.cellErrs = append(out.cellErrs, "")
			out.reports = append(out.reports, "")
		}
		out.traces = buf.Events()
		out.forwarded = in.Forwarded.Value()
		out.delivered = in.Delivered.Value()
		out.latVals = in.EndToEndLat.Values()
		out.latSum = in.EndToEndLat.Sum()
		return out
	}
	compareOutcomes(t, "segmented", run(false), run(true))
}
