package rs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/osu-netlab/osumac/internal/sim"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n, k   int
		wantOK bool
	}{
		{64, 48, true},
		{255, 223, true},
		{15, 11, true},
		{48, 64, false}, // n < k
		{64, 64, false}, // n == k
		{64, 0, false},
		{256, 200, false}, // n > field order - 1
		{10, -1, false},
	}
	for _, c := range cases {
		_, err := New(c.n, c.k)
		if (err == nil) != c.wantOK {
			t.Errorf("New(%d,%d) err=%v, wantOK=%v", c.n, c.k, err, c.wantOK)
		}
	}
}

func TestPaperCodeParameters(t *testing.T) {
	c := NewPaperCode()
	if c.N() != 64 || c.K() != 48 || c.T() != 8 {
		t.Fatalf("paper code (n,k,t) = (%d,%d,%d), want (64,48,8)", c.N(), c.K(), c.T())
	}
}

func TestEncodeLengthCheck(t *testing.T) {
	c := NewPaperCode()
	if _, err := c.Encode(make([]byte, 47)); !errors.Is(err, ErrLength) {
		t.Fatalf("short message: err = %v, want ErrLength", err)
	}
	if _, err := c.Encode(make([]byte, 49)); !errors.Is(err, ErrLength) {
		t.Fatalf("long message: err = %v, want ErrLength", err)
	}
}

func TestEncodeIsSystematic(t *testing.T) {
	c := NewPaperCode()
	msg := make([]byte, 48)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != 64 {
		t.Fatalf("codeword length %d, want 64", len(cw))
	}
	if !bytes.Equal(cw[:48], msg) {
		t.Fatal("codeword does not start with the message (not systematic)")
	}
}

func TestCleanRoundTrip(t *testing.T) {
	c := NewPaperCode()
	msg := make([]byte, 48)
	for i := range msg {
		msg[i] = byte(255 - i)
	}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("clean decode differs from message")
	}
}

func TestCorrectsUpToTErrors(t *testing.T) {
	c := NewPaperCode()
	rng := sim.NewRNG(1)
	msg := make([]byte, 48)
	for i := range msg {
		msg[i] = byte(rng.Uint64())
	}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for nerr := 1; nerr <= c.T(); nerr++ {
		corrupted := make([]byte, len(cw))
		copy(corrupted, cw)
		positions := rng.Shuffled(len(cw))[:nerr]
		for _, p := range positions {
			corrupted[p] ^= byte(rng.UniformInt(1, 255))
		}
		full, fixed, err := c.DecodeCodeword(corrupted)
		if err != nil {
			t.Fatalf("%d errors: decode failed: %v", nerr, err)
		}
		if fixed != nerr {
			t.Fatalf("%d errors: fixed %d", nerr, fixed)
		}
		if !bytes.Equal(full[:48], msg) {
			t.Fatalf("%d errors: wrong message", nerr)
		}
	}
}

func TestErrorsInParityRegionCorrected(t *testing.T) {
	c := NewPaperCode()
	msg := make([]byte, 48)
	msg[0] = 0xAB
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := make([]byte, len(cw))
	copy(corrupted, cw)
	for i := 48; i < 56; i++ { // all 8 errors in parity bytes
		corrupted[i] ^= 0xFF
	}
	got, err := c.Decode(corrupted)
	if err != nil {
		t.Fatalf("parity-region errors: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted by parity-region errors")
	}
}

func TestDetectsBeyondTErrors(t *testing.T) {
	c := NewPaperCode()
	rng := sim.NewRNG(2)
	msg := make([]byte, 48)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		corrupted := make([]byte, len(cw))
		copy(corrupted, cw)
		nerr := c.T() + 1 + rng.Intn(20)
		positions := rng.Shuffled(len(cw))[:nerr]
		for _, p := range positions {
			corrupted[p] ^= byte(rng.UniformInt(1, 255))
		}
		got, err := c.Decode(corrupted)
		if err != nil {
			failures++
			continue
		}
		// Bounded-distance decoding may miscorrect to a different valid
		// codeword; that result must then differ from the corrupted word
		// in at most t positions.
		full, fixErr := c.Encode(got)
		if fixErr != nil {
			t.Fatalf("re-encode of decoded message failed: %v", fixErr)
		}
		dist := 0
		for i := range full {
			if full[i] != corrupted[i] {
				dist++
			}
		}
		if dist > c.T() {
			t.Fatalf("miscorrection at distance %d > t=%d from received word", dist, c.T())
		}
	}
	if failures < trials*8/10 {
		t.Fatalf("only %d/%d heavy corruptions detected; decoder too permissive", failures, trials)
	}
}

func TestDecodeLengthCheck(t *testing.T) {
	c := NewPaperCode()
	if _, err := c.Decode(make([]byte, 63)); !errors.Is(err, ErrLength) {
		t.Fatalf("err = %v, want ErrLength", err)
	}
}

func TestAllZeroAndAllMaxMessages(t *testing.T) {
	c := NewPaperCode()
	for _, fill := range []byte{0x00, 0xFF} {
		msg := bytes.Repeat([]byte{fill}, 48)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		cw[3] ^= 0x55
		cw[60] ^= 0xAA
		got, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("fill %#x: %v", fill, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("fill %#x: wrong decode", fill)
		}
	}
}

func TestSmallCode(t *testing.T) {
	c := MustNew(15, 11) // classic RS(15,11), t=2 over GF(256) works too
	msg := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	cw[0] ^= 0x01
	cw[14] ^= 0x80
	got, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("RS(15,11) round-trip failed")
	}
}

func TestDecodeDoesNotMutateInput(t *testing.T) {
	c := NewPaperCode()
	msg := make([]byte, 48)
	msg[10] = 42
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	cw[5] ^= 0x10
	snapshot := make([]byte, len(cw))
	copy(snapshot, cw)
	if _, err := c.Decode(cw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw, snapshot) {
		t.Fatal("Decode mutated its input")
	}
}

// Property: encode → corrupt ≤ t random positions → decode restores the
// message, for random messages.
func TestPropertyRoundTripUnderTErrors(t *testing.T) {
	c := NewPaperCode()
	rng := sim.NewRNG(99)
	f := func(seed uint64, nerrRaw uint8) bool {
		r := sim.NewRNG(seed)
		msg := make([]byte, 48)
		for i := range msg {
			msg[i] = byte(r.Uint64())
		}
		cw, err := c.Encode(msg)
		if err != nil {
			return false
		}
		nerr := int(nerrRaw) % (c.T() + 1) // 0..8
		positions := rng.Shuffled(len(cw))[:nerr]
		for _, p := range positions {
			cw[p] ^= byte(r.UniformInt(1, 255))
		}
		got, err := c.Decode(cw)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every codeword has zero syndromes after encoding (valid
// codeword), for random messages across several (n,k).
func TestPropertyEncodedWordsAreCodewords(t *testing.T) {
	codes := []*Code{NewPaperCode(), MustNew(32, 20), MustNew(255, 223)}
	f := func(seed uint64, which uint8) bool {
		c := codes[int(which)%len(codes)]
		r := sim.NewRNG(seed)
		msg := make([]byte, c.K())
		for i := range msg {
			msg[i] = byte(r.Uint64())
		}
		cw, err := c.Encode(msg)
		if err != nil {
			return false
		}
		syn := make([]byte, c.N()-c.K())
		return c.syndromesInto(syn, cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
