// Package rs implements systematic Reed-Solomon codes over GF(2⁸),
// including the RS(64,48) code the OSU narrow-band wireless testbed uses
// to protect every data slot and control field.
//
// The encoder appends n−k parity symbols computed as the remainder of
// the message polynomial modulo the generator polynomial
// g(x) = ∏_{i=0}^{n-k-1} (x − α^i). The decoder computes syndromes, runs
// Berlekamp–Massey to find the error-locator polynomial, locates errors
// with a Chien search and corrects them with Forney's algorithm. Up to
// t = (n−k)/2 symbol errors are corrected; beyond that the decoder
// reports failure, which the MAC treats as a packet loss — exactly the
// bimodal behaviour the paper observed in field tests.
package rs

import (
	"errors"
	"fmt"

	"github.com/osu-netlab/osumac/internal/gf256"
)

// Paper code parameters: RS(64,48), 64 coded bytes carrying 48
// information bytes, correcting up to 8 byte errors.
const (
	PaperN = 64
	PaperK = 48
)

var (
	// ErrTooManyErrors is returned when the received word is corrupted
	// beyond the code's correction radius and decoding fails.
	ErrTooManyErrors = errors.New("rs: too many errors to correct")
	// ErrLength is returned when an input has the wrong length.
	ErrLength = errors.New("rs: wrong input length")
)

// Code is a Reed-Solomon code with fixed (n, k). It is immutable after
// construction and safe for concurrent use.
type Code struct {
	n, k int
	gen  []byte // generator polynomial, ascending powers, degree n-k
}

// New constructs an RS(n,k) code over GF(256). n must be in (k, 255] and
// k positive.
func New(n, k int) (*Code, error) {
	if k <= 0 || n <= k || n > 255 {
		return nil, fmt.Errorf("rs: invalid parameters n=%d k=%d", n, k)
	}
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		// Multiply by (x + α^i); subtraction is addition in GF(2⁸).
		gen = gf256.PolyMul(gen, []byte{gf256.Exp(i), 1})
	}
	return &Code{n: n, k: k, gen: gen}, nil
}

// MustNew is New for static configurations; it panics on invalid
// parameters, which indicates a programming error.
func MustNew(n, k int) *Code {
	c, err := New(n, k)
	if err != nil {
		//lint:ignore panicfree Must-style API contract: invalid static parameters are a programming error
		panic(err)
	}
	return c
}

// NewPaperCode returns the RS(64,48) code used by the OSU testbed.
func NewPaperCode() *Code { return MustNew(PaperN, PaperK) }

// N returns the codeword length in bytes.
func (c *Code) N() int { return c.n }

// K returns the message length in bytes.
func (c *Code) K() int { return c.k }

// T returns the maximum number of correctable byte errors, (n−k)/2.
func (c *Code) T() int { return (c.n - c.k) / 2 }

// Encode produces the systematic codeword for msg: the k message bytes
// followed by n−k parity bytes. msg must be exactly k bytes.
func (c *Code) Encode(msg []byte) ([]byte, error) {
	if len(msg) != c.k {
		return nil, fmt.Errorf("%w: message %d bytes, want %d", ErrLength, len(msg), c.k)
	}
	// Treat the codeword polynomial with the message in the HIGH-order
	// coefficients: cw(x) = msg(x)·x^(n−k) + parity(x). Internally we
	// store codewords as byte slices where index 0 is the first
	// transmitted byte (message first), so the polynomial coefficient of
	// x^(n-1-i) is cw[i].
	parity := make([]byte, c.n-c.k)
	// Synthetic LFSR division: process message bytes high-order first.
	for _, m := range msg {
		feedback := m ^ parity[0]
		copy(parity, parity[1:])
		parity[len(parity)-1] = 0
		if feedback != 0 {
			for j := 0; j < len(parity); j++ {
				// gen has degree n-k; coefficient of x^(n-k-1-j) is
				// gen[n-k-1-j].
				parity[j] ^= gf256.Mul(feedback, c.gen[len(parity)-1-j])
			}
		}
	}
	out := make([]byte, c.n)
	copy(out, msg)
	copy(out[c.k:], parity)
	return out, nil
}

// syndromes returns the n−k syndromes S_i = cw(α^i) and whether all are
// zero. The codeword is interpreted with cw[0] as the coefficient of
// x^(n−1).
func (c *Code) syndromes(cw []byte) ([]byte, bool) {
	syn := make([]byte, c.n-c.k)
	clean := true
	for i := range syn {
		x := gf256.Exp(i)
		var acc byte
		for _, b := range cw {
			acc = gf256.Mul(acc, x) ^ b
		}
		syn[i] = acc
		if acc != 0 {
			clean = false
		}
	}
	return syn, clean
}

// Decode corrects up to T() byte errors in place of a copy of cw and
// returns the k message bytes. It returns ErrTooManyErrors when the
// error pattern exceeds the correction radius (decode failure), and
// ErrLength for a wrong-sized input. The input slice is not modified.
func (c *Code) Decode(cw []byte) ([]byte, error) {
	corrected, _, err := c.DecodeCodeword(cw)
	if err != nil {
		return nil, err
	}
	return corrected[:c.k], nil
}

// DecodeCodeword corrects a copy of cw, returning the full corrected
// codeword and the number of byte errors fixed.
func (c *Code) DecodeCodeword(cw []byte) ([]byte, int, error) {
	if len(cw) != c.n {
		return nil, 0, fmt.Errorf("%w: codeword %d bytes, want %d", ErrLength, len(cw), c.n)
	}
	out := make([]byte, c.n)
	copy(out, cw)

	syn, clean := c.syndromes(out)
	if clean {
		return out, 0, nil
	}

	sigma, err := berlekampMassey(syn, c.T())
	if err != nil {
		return nil, 0, err
	}

	positions, err := c.chienSearch(sigma)
	if err != nil {
		return nil, 0, err
	}

	if err := c.forney(out, syn, sigma, positions); err != nil {
		return nil, 0, err
	}

	// Re-check syndromes: Berlekamp–Massey can produce a spurious locator
	// for >t errors; a failed re-check means decode failure.
	if _, ok := c.syndromes(out); !ok {
		return nil, 0, ErrTooManyErrors
	}
	return out, len(positions), nil
}

// berlekampMassey finds the error-locator polynomial σ(x) (ascending
// powers, σ(0)=1) from the syndromes. If the implied number of errors
// exceeds t it fails.
func berlekampMassey(syn []byte, t int) ([]byte, error) {
	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	b := byte(1)

	for i := 0; i < len(syn); i++ {
		// Compute discrepancy d = S_i + Σ_{j=1..l} σ_j·S_{i−j}.
		d := syn[i]
		for j := 1; j <= l && j < len(sigma); j++ {
			d ^= gf256.Mul(sigma[j], syn[i-j])
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := make([]byte, len(sigma))
			copy(tmp, sigma)
			coef := gf256.Div(d, b)
			sigma = polySubShifted(sigma, prev, coef, m)
			l = i + 1 - l
			prev = tmp
			b = d
			m = 1
		} else {
			coef := gf256.Div(d, b)
			sigma = polySubShifted(sigma, prev, coef, m)
			m++
		}
	}
	if l > t {
		return nil, ErrTooManyErrors
	}
	return gf256.PolyTrim(sigma), nil
}

// polySubShifted returns sigma − coef·x^shift·prev (characteristic 2, so
// subtraction is XOR).
func polySubShifted(sigma, prev []byte, coef byte, shift int) []byte {
	need := len(prev) + shift
	out := make([]byte, max(len(sigma), need))
	copy(out, sigma)
	for i, p := range prev {
		out[i+shift] ^= gf256.Mul(coef, p)
	}
	return out
}

// chienSearch finds error positions (byte indices into the codeword,
// index 0 = first transmitted byte = coefficient of x^(n−1)) as the
// roots of σ. It fails if the number of distinct roots does not match
// deg σ, which signals an uncorrectable pattern.
func (c *Code) chienSearch(sigma []byte) ([]int, error) {
	deg := gf256.PolyDegree(sigma)
	if deg <= 0 {
		return nil, ErrTooManyErrors
	}
	var positions []int
	for pos := 0; pos < c.n; pos++ {
		// Codeword byte pos has locator X = α^(n−1−pos); σ has a root at
		// X⁻¹.
		xInv := gf256.Exp(-(c.n - 1 - pos))
		if gf256.PolyEval(sigma, xInv) == 0 {
			positions = append(positions, pos)
		}
	}
	if len(positions) != deg {
		return nil, ErrTooManyErrors
	}
	return positions, nil
}

// forney computes error magnitudes and corrects out in place.
func (c *Code) forney(out, syn, sigma []byte, positions []int) error {
	// Error evaluator Ω(x) = [S(x)·σ(x)] mod x^(n−k).
	sPoly := make([]byte, len(syn))
	copy(sPoly, syn)
	omega := gf256.PolyMul(sPoly, sigma)
	if len(omega) > len(syn) {
		omega = omega[:len(syn)]
	}
	omega = gf256.PolyTrim(omega)
	sigmaDeriv := gf256.PolyDeriv(sigma)

	for _, pos := range positions {
		x := gf256.Exp(c.n - 1 - pos) // locator X_j
		xInv := gf256.Inv(x)
		denom := gf256.PolyEval(sigmaDeriv, xInv)
		if denom == 0 {
			return ErrTooManyErrors
		}
		// e_j = X_j · Ω(X_j⁻¹) / σ'(X_j⁻¹) for first consecutive root b=0.
		num := gf256.Mul(x, gf256.PolyEval(omega, xInv))
		out[pos] ^= gf256.Div(num, denom)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
