// Package rs implements systematic Reed-Solomon codes over GF(2⁸),
// including the RS(64,48) code the OSU narrow-band wireless testbed uses
// to protect every data slot and control field.
//
// The encoder appends n−k parity symbols computed as the remainder of
// the message polynomial modulo the generator polynomial
// g(x) = ∏_{i=0}^{n-k-1} (x − α^i). The decoder computes syndromes, runs
// Berlekamp–Massey to find the error-locator polynomial, locates errors
// with a Chien search and corrects them with Forney's algorithm. Up to
// t = (n−k)/2 symbol errors are corrected; beyond that the decoder
// reports failure, which the MAC treats as a packet loss — exactly the
// bimodal behaviour the paper observed in field tests.
//
// Every simulated slot pays one encode and one decode, so the hot paths
// are written against the gf256 table rows: the LFSR encode and the
// Horner syndrome loops are branch-free table lookups, the Chien search
// runs incrementally (each σ_j term is multiplied by α^j per position
// instead of a full polynomial evaluation), and all decoder working
// memory comes from a per-Code sync.Pool. The append-style EncodeTo and
// DecodeTo entry points are allocation-free in steady state; Encode,
// Decode and DecodeCodeword keep their original copying contracts on
// top of them.
package rs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/osu-netlab/osumac/internal/gf256"
)

// Paper code parameters: RS(64,48), 64 coded bytes carrying 48
// information bytes, correcting up to 8 byte errors.
const (
	PaperN = 64
	PaperK = 48
)

var (
	// ErrTooManyErrors is returned when the received word is corrupted
	// beyond the code's correction radius and decoding fails.
	ErrTooManyErrors = errors.New("rs: too many errors to correct")
	// ErrLength is returned when an input has the wrong length.
	ErrLength = errors.New("rs: wrong input length")
)

// Code is a Reed-Solomon code with fixed (n, k). It is immutable after
// construction and safe for concurrent use; decoder scratch memory is
// drawn from an internal sync.Pool.
type Code struct {
	n, k int
	gen  []byte // generator polynomial, ascending powers, degree n-k

	// encTab is the LFSR feedback table, flattened per feedback byte:
	// encTab[fb·(n−k)+j] = fb · gen[n−k−1−j], so one feedback step XORs a
	// single contiguous (n−k)-byte row into the parity register.
	// 256·(n−k) bytes (4 KiB for the paper code).
	encTab []byte
	// synTab[i] is the multiplication row of α^i, driving the Horner
	// syndrome recurrence acc_i = α^i·acc_i + byte as two indexed loads.
	// Contiguous so all n−k interleaved chains share cache lines.
	synTab [][256]byte

	// Word-parallel contribution tables, built when they fit in
	// maxFastTableBytes. Both exploit linearity: the parity of a message
	// and the syndrome vector of a codeword are XORs of independent
	// per-byte contributions, so one table row per (position, value)
	// pair turns the whole computation into a run of contiguous row
	// XORs with no serial dependency.
	//
	// encFlat[((p·256)+v)·(n−k)+j] = coefficient j of v·(x^{n−1−p} mod g):
	// parity(msg) = XOR of rows for each message byte.
	encFlat []byte
	// synFlat[((p·256)+v)·(n−k)+i] = v·X_p^i with X_p = α^{n−1−p}:
	// syndromes(cw) = XOR of rows for each codeword byte.
	synFlat []byte

	scratch sync.Pool // *decoderScratch
}

// decoderScratch is the working memory of one in-flight decode. All
// slices are allocated once at full capacity so the decode paths never
// grow them.
type decoderScratch struct {
	syn       []byte // n−k syndromes
	sigBuf    []byte // Berlekamp–Massey σ accumulator, cap n−k+1
	prevBuf   []byte // previous σ, cap n−k+1
	tmpBuf    []byte // σ snapshot for the length-change branch
	omega     []byte // error evaluator, cap n−k
	deriv     []byte // σ′, cap n−k
	terms     []byte // incremental Chien terms σ_j·α^{j·step}, cap t+1
	steps     []byte // per-term Chien multipliers α^j, cap t+1
	positions []int  // located error positions, cap t
}

// New constructs an RS(n,k) code over GF(256). n must be in (k, 255] and
// k positive.
func New(n, k int) (*Code, error) {
	if k <= 0 || n <= k || n > 255 {
		return nil, fmt.Errorf("rs: invalid parameters n=%d k=%d", n, k)
	}
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		// Multiply by (x + α^i); subtraction is addition in GF(2⁸).
		gen = gf256.PolyMul(gen, []byte{gf256.Exp(i), 1})
	}
	c := &Code{n: n, k: k, gen: gen}
	// Parity position j is fed by the generator coefficient of
	// x^(n-k-1-j); precompute one full feedback row per byte value.
	c.encTab = make([]byte, 256*(n-k))
	for fb := 1; fb < 256; fb++ {
		row := c.encTab[fb*(n-k) : (fb+1)*(n-k)]
		for j := range row {
			row[j] = gf256.Mul(byte(fb), gen[n-k-1-j])
		}
	}
	c.synTab = make([][256]byte, n-k)
	for i := range c.synTab {
		c.synTab[i] = *gf256.MulTableRow(gf256.Exp(i))
	}
	c.buildFastTables()
	c.scratch.New = func() any {
		t := (n - k) / 2
		return &decoderScratch{
			syn:       make([]byte, n-k),
			sigBuf:    make([]byte, n-k+1),
			prevBuf:   make([]byte, n-k+1),
			tmpBuf:    make([]byte, n-k+1),
			omega:     make([]byte, n-k),
			deriv:     make([]byte, n-k),
			terms:     make([]byte, t+1),
			steps:     make([]byte, t+1),
			positions: make([]int, 0, t),
		}
	}
	return c, nil
}

// maxFastTableBytes bounds the combined size of the word-parallel
// contribution tables; codes whose tables would be larger (e.g. the
// (255,223) CD code) fall back to the LFSR/Horner kernels.
const maxFastTableBytes = 1 << 19

// buildFastTables precomputes the per-(position, value) contribution
// rows used by the word-parallel encode and syndrome paths.
func (c *Code) buildFastTables() {
	n, k := c.n, c.k
	p := n - k
	if (n+k)*256*p > maxFastTableBytes {
		return
	}
	// Encode: r_p(x) = x^{n−1−p} mod g for each message position p,
	// computed by repeated multiply-by-x reduction from p=k−1 upward
	// (x^{n−k} mod g seeds the recurrence), then scaled by every byte.
	c.encFlat = make([]byte, k*256*p)
	r := make([]byte, p)    // r_p coefficients, ascending powers
	rrev := make([]byte, p) // r_p in parity byte order (x^{p−1} first)
	// pos = k−1 → exponent n−k: x^{n−k} ≡ the low coefficients of g
	// (g is monic, characteristic 2).
	copy(r, c.gen[:p])
	for pos := k - 1; pos >= 0; pos-- {
		// Parity byte j is the coefficient of x^{p−1−j}; store rows in
		// that order so the runtime XOR is a straight contiguous run.
		for j := range rrev {
			rrev[j] = r[p-1-j]
		}
		base := pos * 256 * p
		for v := 1; v < 256; v++ {
			gf256.MulSlice(byte(v), c.encFlat[base+v*p:base+(v+1)*p], rrev)
		}
		if pos > 0 {
			// r ← (x·r) mod g: shift up one power and reduce by g.
			lead := r[p-1]
			copy(r[1:], r[:p-1])
			r[0] = 0
			gf256.AddMulSlice(lead, r, c.gen[:p])
		}
	}
	// Syndromes: powers of X_p = α^{n−1−p} scaled by every byte value.
	c.synFlat = make([]byte, n*256*p)
	powers := make([]byte, p)
	for pos := 0; pos < n; pos++ {
		x := gf256.Exp(n - 1 - pos)
		pw := byte(1)
		for i := range powers {
			powers[i] = pw
			pw = gf256.Mul(pw, x)
		}
		base := pos * 256 * p
		for v := 1; v < 256; v++ {
			gf256.MulSlice(byte(v), c.synFlat[base+v*p:base+(v+1)*p], powers)
		}
	}
}

// MustNew is New for static configurations; it panics on invalid
// parameters, which indicates a programming error.
func MustNew(n, k int) *Code {
	c, err := New(n, k)
	if err != nil {
		//lint:ignore panicfree Must-style API contract: invalid static parameters are a programming error
		panic(err)
	}
	return c
}

// paperCode is the process-wide RS(64,48) instance. A Code is immutable
// after construction and its scratch pool is concurrency-safe, so every
// codec in every (possibly concurrent) simulation shares one copy of
// the ~450 KiB fast tables instead of rebuilding them per network.
var paperCode = sync.OnceValue(func() *Code { return MustNew(PaperN, PaperK) })

// NewPaperCode returns the RS(64,48) code used by the OSU testbed. The
// returned Code is a shared, immutable, concurrency-safe instance.
func NewPaperCode() *Code { return paperCode() }

// N returns the codeword length in bytes.
func (c *Code) N() int { return c.n }

// K returns the message length in bytes.
func (c *Code) K() int { return c.k }

// T returns the maximum number of correctable byte errors, (n−k)/2.
func (c *Code) T() int { return (c.n - c.k) / 2 }

// zeros pads append-style growth without a per-call allocation; 255 is
// the largest possible codeword, so a parity run always fits.
var zeros [256]byte

// Encode produces the systematic codeword for msg: the k message bytes
// followed by n−k parity bytes. msg must be exactly k bytes.
func (c *Code) Encode(msg []byte) ([]byte, error) {
	return c.EncodeTo(make([]byte, 0, c.n), msg)
}

// EncodeTo appends the systematic codeword for msg to dst and returns
// the extended slice. When dst has capacity for n more bytes the call
// performs no allocations, so a reused buffer gives an allocation-free
// steady-state encode path.
func (c *Code) EncodeTo(dst, msg []byte) ([]byte, error) {
	if len(msg) != c.k {
		return nil, fmt.Errorf("%w: message %d bytes, want %d", ErrLength, len(msg), c.k)
	}
	// Treat the codeword polynomial with the message in the HIGH-order
	// coefficients: cw(x) = msg(x)·x^(n−k) + parity(x). Internally we
	// store codewords as byte slices where index 0 is the first
	// transmitted byte (message first), so the polynomial coefficient of
	// x^(n-1-i) is cw[i].
	dst = append(dst, msg...)
	off := len(dst)
	dst = append(dst, zeros[:c.n-c.k]...)
	parity := dst[off:]
	plen := len(parity)

	if c.encFlat != nil && plen == 16 {
		// Word-parallel path: the parity block is the XOR of one
		// 16-byte contribution row per nonzero message byte.
		var acc0, acc1 uint64
		for p, v := range msg {
			if v == 0 {
				continue
			}
			row := c.encFlat[(p<<8|int(v))<<4:]
			acc0 ^= binary.LittleEndian.Uint64(row)
			acc1 ^= binary.LittleEndian.Uint64(row[8:])
		}
		binary.LittleEndian.PutUint64(parity, acc0)
		binary.LittleEndian.PutUint64(parity[8:], acc1)
		return dst, nil
	}
	if c.encFlat != nil {
		for p, v := range msg {
			if v == 0 {
				continue
			}
			row := c.encFlat[(p*256+int(v))*plen:]
			for j := 0; j < plen; j++ {
				parity[j] ^= row[j]
			}
		}
		return dst, nil
	}

	// Generic synthetic LFSR division: process message bytes high-order
	// first. Each step shifts the register and folds the feedback byte
	// in by XORing its precomputed generator row — one contiguous
	// load/XOR run with no multiplications.
	last := plen - 1
	for _, m := range msg {
		feedback := m ^ parity[0]
		copy(parity, parity[1:])
		parity[last] = 0
		if feedback != 0 {
			row := c.encTab[int(feedback)*plen : int(feedback)*plen+plen]
			for j := range parity {
				parity[j] ^= row[j]
			}
		}
	}
	return dst, nil
}

// getScratch pulls per-decode working memory from the pool. The pool
// stores pointers, so steady-state Get/Put pairs do not allocate.
func (c *Code) getScratch() *decoderScratch {
	s, _ := c.scratch.Get().(*decoderScratch)
	if s == nil {
		// Unreachable with the New hook installed; kept as a safety net.
		s = c.scratch.New().(*decoderScratch)
	}
	return s
}

// syndromesInto fills syn with S_i = cw(α^i) and reports whether all are
// zero. The codeword is interpreted with cw[0] as the coefficient of
// x^(n−1). The Horner recurrences acc_i = α^i·acc_i + b run interleaved
// with the codeword byte in the outer loop: each chain is a serial
// dependency of table loads, so advancing all n−k chains per byte keeps
// the load ports busy instead of waiting out one chain's latency.
func (c *Code) syndromesInto(syn, cw []byte) bool {
	if c.synFlat != nil && len(syn) == 16 {
		// Word-parallel path: the syndrome vector is the XOR of one
		// 16-byte contribution row per nonzero codeword byte.
		var acc0, acc1 uint64
		for p, v := range cw {
			if v == 0 {
				continue
			}
			row := c.synFlat[(p<<8|int(v))<<4:]
			acc0 ^= binary.LittleEndian.Uint64(row)
			acc1 ^= binary.LittleEndian.Uint64(row[8:])
		}
		binary.LittleEndian.PutUint64(syn, acc0)
		binary.LittleEndian.PutUint64(syn[8:], acc1)
		return (acc0 | acc1) == 0
	}
	if c.synFlat != nil {
		p := len(syn)
		clear(syn)
		for pos, v := range cw {
			if v == 0 {
				continue
			}
			row := c.synFlat[(pos*256+int(v))*p:]
			for i := 0; i < p; i++ {
				syn[i] ^= row[i]
			}
		}
		var any byte
		for _, s := range syn {
			any |= s
		}
		return any == 0
	}
	// Generic path: Horner recurrences acc_i = α^i·acc_i + b run
	// interleaved with the codeword byte in the outer loop — each chain
	// is a serial dependency of table loads, so advancing all n−k chains
	// per byte keeps the load ports busy instead of waiting out one
	// chain's latency.
	tab := c.synTab
	clear(syn)
	for _, b := range cw {
		for i := range syn {
			syn[i] = tab[i][syn[i]] ^ b
		}
	}
	var any byte
	for _, s := range syn {
		any |= s
	}
	return any == 0
}

// Decode corrects up to T() byte errors in place of a copy of cw and
// returns the k message bytes. It returns ErrTooManyErrors when the
// error pattern exceeds the correction radius (decode failure), and
// ErrLength for a wrong-sized input. The input slice is not modified.
func (c *Code) Decode(cw []byte) ([]byte, error) {
	out, err := c.DecodeTo(make([]byte, 0, c.k), cw)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeTo appends the k corrected message bytes to dst and returns the
// extended slice. The clean path (no channel errors, the common case on
// a working link) performs no allocations when dst has capacity; the
// correction path stays within the pooled scratch and allocates only if
// dst must grow.
func (c *Code) DecodeTo(dst, cw []byte) ([]byte, error) {
	if len(cw) != c.n {
		return nil, fmt.Errorf("%w: codeword %d bytes, want %d", ErrLength, len(cw), c.n)
	}
	s := c.getScratch()
	clean := c.syndromesInto(s.syn, cw)
	if clean {
		c.scratch.Put(s)
		return append(dst, cw[:c.k]...), nil
	}
	off := len(dst)
	dst = append(dst, cw...)
	_, err := c.correct(s, dst[off:])
	c.scratch.Put(s)
	if err != nil {
		return nil, err
	}
	return dst[:off+c.k], nil
}

// DecodeCodeword corrects a copy of cw, returning the full corrected
// codeword and the number of byte errors fixed.
func (c *Code) DecodeCodeword(cw []byte) ([]byte, int, error) {
	if len(cw) != c.n {
		return nil, 0, fmt.Errorf("%w: codeword %d bytes, want %d", ErrLength, len(cw), c.n)
	}
	out := make([]byte, c.n)
	copy(out, cw)
	s := c.getScratch()
	if c.syndromesInto(s.syn, out) {
		c.scratch.Put(s)
		return out, 0, nil
	}
	n, err := c.correct(s, out)
	c.scratch.Put(s)
	if err != nil {
		return nil, 0, err
	}
	return out, n, nil
}

// correct runs the error-correction pipeline on cw in place using the
// syndromes already in s.syn. It returns the number of corrected bytes.
func (c *Code) correct(s *decoderScratch, cw []byte) (int, error) {
	sigma, err := c.berlekampMassey(s, s.syn, c.T())
	if err != nil {
		return 0, err
	}
	positions, err := c.chienSearch(s, sigma)
	if err != nil {
		return 0, err
	}
	if err := c.forney(s, cw, s.syn, sigma, positions); err != nil {
		return 0, err
	}
	// Re-check syndromes: Berlekamp–Massey can produce a spurious locator
	// for >t errors; a failed re-check means decode failure. s.syn is
	// reused as the recheck buffer — the magnitudes are already applied.
	if !c.syndromesInto(s.syn, cw) {
		return 0, ErrTooManyErrors
	}
	return len(positions), nil
}

// berlekampMassey finds the error-locator polynomial σ(x) (ascending
// powers, σ(0)=1) from the given syndromes (s.syn for plain decoding,
// the Forney syndromes for the erasure path). If the implied number of
// errors exceeds t it fails. σ lives in s.sigBuf; the buffer is fully
// zeroed up front so in-place length growth never reads stale bytes.
func (c *Code) berlekampMassey(s *decoderScratch, syn []byte, t int) ([]byte, error) {
	clear(s.sigBuf)
	clear(s.prevBuf)
	sigma := s.sigBuf[:1]
	prev := s.prevBuf[:1]
	sigma[0] = 1
	prev[0] = 1
	var l, m int = 0, 1
	b := byte(1)

	for i := 0; i < len(syn); i++ {
		// Compute discrepancy d = S_i + Σ_{j=1..l} σ_j·S_{i−j}.
		d := syn[i]
		for j := 1; j <= l && j < len(sigma); j++ {
			d ^= gf256.Mul(sigma[j], syn[i-j])
		}
		if d == 0 {
			m++
			continue
		}
		coef := gf256.Div(d, b)
		if 2*l <= i {
			tmp := s.tmpBuf[:len(sigma)]
			copy(tmp, sigma)
			sigma = addMulShifted(sigma, prev, coef, m)
			l = i + 1 - l
			// prev ← old σ. Copy through prevBuf so σ keeps its backing
			// array; the tails beyond len stay zero by construction.
			clear(prev)
			prev = s.prevBuf[:len(tmp)]
			copy(prev, tmp)
			b = d
			m = 1
		} else {
			sigma = addMulShifted(sigma, prev, coef, m)
			m++
		}
	}
	if l > t {
		return nil, ErrTooManyErrors
	}
	return gf256.PolyTrim(sigma), nil
}

// addMulShifted computes sigma += coef·x^shift·prev in place, extending
// sigma's length within its backing array when the shifted term is
// longer. Bytes beyond len(sigma) are zero by the caller's invariant, so
// extension is a pure reslice.
func addMulShifted(sigma, prev []byte, coef byte, shift int) []byte {
	if need := len(prev) + shift; need > len(sigma) {
		sigma = sigma[:need]
	}
	gf256.AddMulSlice(coef, sigma[shift:shift+len(prev)], prev)
	return sigma
}

// chienSearch finds error positions (byte indices into the codeword,
// index 0 = first transmitted byte = coefficient of x^(n−1)) as the
// roots of σ. Instead of a full polynomial evaluation per position it
// keeps the running products σ_j·α^{j·step}: position pos evaluates σ at
// α^(pos−(n−1)), and stepping to pos+1 multiplies term j by α^j. It
// fails if the number of distinct roots does not match deg σ, which
// signals an uncorrectable pattern.
func (c *Code) chienSearch(s *decoderScratch, sigma []byte) ([]int, error) {
	deg := gf256.PolyDegree(sigma)
	if deg <= 0 {
		return nil, ErrTooManyErrors
	}
	terms := s.terms[:deg+1]
	steps := s.steps[:deg+1]
	for j := 0; j <= deg; j++ {
		// Starting point pos=0 evaluates σ at α^{-(n-1)}: term_j =
		// σ_j·α^{-j(n-1)}.
		terms[j] = gf256.Mul(sigma[j], gf256.Exp(-j*(c.n-1)))
		steps[j] = gf256.Exp(j)
	}
	positions := s.positions[:0]
	for pos := 0; pos < c.n; pos++ {
		var v byte
		for _, t := range terms {
			v ^= t
		}
		if v == 0 {
			if len(positions) == cap(positions) {
				// More roots than t errors can explain: bail before the
				// append would spill out of the pooled buffer.
				return nil, ErrTooManyErrors
			}
			positions = append(positions, pos)
		}
		for j := 1; j < len(terms); j++ {
			terms[j] = gf256.Mul(terms[j], steps[j])
		}
	}
	if len(positions) != deg {
		return nil, ErrTooManyErrors
	}
	return positions, nil
}

// forney computes error magnitudes from the given syndromes and locator
// (σ for plain decoding, the combined locator Ψ = σ·Γ for the erasure
// path) and corrects cw in place.
func (c *Code) forney(s *decoderScratch, cw, syn, sigma []byte, positions []int) error {
	// Error evaluator Ω(x) = [S(x)·σ(x)] mod x^(n−k), computed directly
	// into the truncated scratch buffer via table rows.
	omega := s.omega[:len(syn)]
	clear(omega)
	for i, si := range syn {
		if si == 0 {
			continue
		}
		row := gf256.MulTableRow(si)
		for j, sj := range sigma {
			if i+j >= len(omega) {
				break
			}
			omega[i+j] ^= row[sj]
		}
	}
	omega = gf256.PolyTrim(omega)

	// σ′: even-power terms vanish in characteristic 2.
	deriv := s.deriv[:0]
	if len(sigma) > 1 {
		deriv = s.deriv[:len(sigma)-1]
		clear(deriv)
		for i := 1; i < len(sigma); i += 2 {
			deriv[i-1] = sigma[i]
		}
		deriv = gf256.PolyTrim(deriv)
	}

	for _, pos := range positions {
		x := gf256.Exp(c.n - 1 - pos) // locator X_j
		xInv := gf256.Inv(x)
		denom := gf256.PolyEval(deriv, xInv)
		if denom == 0 {
			return ErrTooManyErrors
		}
		// e_j = X_j · Ω(X_j⁻¹) / σ'(X_j⁻¹) for first consecutive root b=0.
		num := gf256.Mul(x, gf256.PolyEval(omega, xInv))
		cw[pos] ^= gf256.Div(num, denom)
	}
	return nil
}
