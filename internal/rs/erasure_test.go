package rs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/osu-netlab/osumac/internal/sim"
)

func encodeRandom(t *testing.T, c *Code, seed uint64) ([]byte, []byte) {
	t.Helper()
	rng := sim.NewRNG(seed)
	msg := make([]byte, c.K())
	for i := range msg {
		msg[i] = byte(rng.Uint64())
	}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	return msg, cw
}

func TestErasuresOnlyUpTo2T(t *testing.T) {
	c := NewPaperCode()
	msg, cw := encodeRandom(t, c, 1)
	rng := sim.NewRNG(2)
	// 2t = 16 erasures are correctable (each costs one parity symbol).
	positions := rng.Shuffled(c.N())[:c.N()-c.K()]
	corrupted := append([]byte(nil), cw...)
	for _, p := range positions {
		corrupted[p] ^= byte(rng.UniformInt(1, 255))
	}
	got, err := c.DecodeWithErasures(corrupted, positions)
	if err != nil {
		t.Fatalf("16 erasures: %v", err)
	}
	if !bytes.Equal(got[:c.K()], msg) {
		t.Fatal("erasure-only decode wrong")
	}
}

func TestErasuresPlusErrors(t *testing.T) {
	c := NewPaperCode()
	msg, cw := encodeRandom(t, c, 3)
	rng := sim.NewRNG(4)
	// 2e + s ≤ 16: try e = 4 errors with s = 8 erasures.
	perm := rng.Shuffled(c.N())
	erasures := perm[:8]
	errorsAt := perm[8:12]
	corrupted := append([]byte(nil), cw...)
	for _, p := range append(append([]int{}, erasures...), errorsAt...) {
		corrupted[p] ^= byte(rng.UniformInt(1, 255))
	}
	got, err := c.DecodeWithErasures(corrupted, erasures)
	if err != nil {
		t.Fatalf("4 errors + 8 erasures: %v", err)
	}
	if !bytes.Equal(got[:c.K()], msg) {
		t.Fatal("errors-and-erasures decode wrong")
	}
}

func TestErasureFlagOnCleanByte(t *testing.T) {
	// Flagging an uncorrupted byte as an erasure must still decode
	// (its "correction" is zero).
	c := NewPaperCode()
	msg, cw := encodeRandom(t, c, 5)
	corrupted := append([]byte(nil), cw...)
	corrupted[10] ^= 0x55
	got, err := c.DecodeWithErasures(corrupted, []int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:c.K()], msg) {
		t.Fatal("decode with clean-byte erasures wrong")
	}
}

func TestErasuresBeyondBudgetFail(t *testing.T) {
	c := NewPaperCode()
	_, cw := encodeRandom(t, c, 6)
	rng := sim.NewRNG(7)
	positions := rng.Shuffled(c.N())[:c.N()-c.K()+1] // 17 > 2t
	if _, err := c.DecodeWithErasures(cw, positions); !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("17 erasures: err = %v", err)
	}
}

func TestErasureValidation(t *testing.T) {
	c := NewPaperCode()
	_, cw := encodeRandom(t, c, 8)
	if _, err := c.DecodeWithErasures(cw[:63], nil); !errors.Is(err, ErrLength) {
		t.Fatal("short word accepted")
	}
	if _, err := c.DecodeWithErasures(cw, []int{-1}); err == nil {
		t.Fatal("negative erasure position accepted")
	}
	if _, err := c.DecodeWithErasures(cw, []int{64}); err == nil {
		t.Fatal("out-of-range erasure accepted")
	}
	if _, err := c.DecodeWithErasures(cw, []int{5, 5}); err == nil {
		t.Fatal("duplicate erasure accepted")
	}
}

func TestErasureEmptyListDelegates(t *testing.T) {
	c := NewPaperCode()
	msg, cw := encodeRandom(t, c, 9)
	cw[0] ^= 0x01
	got, err := c.DecodeWithErasures(cw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:c.K()], msg) {
		t.Fatal("delegated decode wrong")
	}
}

func TestErasureCleanWordFastPath(t *testing.T) {
	c := NewPaperCode()
	msg, cw := encodeRandom(t, c, 10)
	got, err := c.DecodeWithErasures(cw, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:c.K()], msg) {
		t.Fatal("clean word mangled")
	}
}

// Property: any combination with 2e + s ≤ n−k decodes exactly.
func TestPropertyErrorsAndErasures(t *testing.T) {
	c := NewPaperCode()
	f := func(seed uint64, sRaw, eRaw uint8) bool {
		rng := sim.NewRNG(seed)
		s := int(sRaw) % (c.N() - c.K() + 1) // 0..16 erasures
		maxE := (c.N() - c.K() - s) / 2
		e := 0
		if maxE > 0 {
			e = int(eRaw) % (maxE + 1)
		}
		msg := make([]byte, c.K())
		for i := range msg {
			msg[i] = byte(rng.Uint64())
		}
		cw, err := c.Encode(msg)
		if err != nil {
			return false
		}
		perm := rng.Shuffled(c.N())
		erasures := perm[:s]
		errAt := perm[s : s+e]
		for _, p := range append(append([]int{}, erasures...), errAt...) {
			cw[p] ^= byte(rng.UniformInt(1, 255))
		}
		got, err := c.DecodeWithErasures(cw, erasures)
		if err != nil {
			return false
		}
		return bytes.Equal(got[:c.K()], msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
