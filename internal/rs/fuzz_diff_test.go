package rs

import (
	"bytes"
	"testing"

	"github.com/osu-netlab/osumac/internal/gf256"
	"github.com/osu-netlab/osumac/internal/sim"
)

// This file fuzzes the optimized table-driven codec against an
// independent reference implementation. The reference deliberately uses
// different algorithms everywhere: polynomial long division instead of
// the LFSR/contribution-table encoder, Peterson–Gorenstein–Zierler
// Gaussian elimination instead of Berlekamp–Massey, exhaustive root
// evaluation instead of the incremental Chien search, and a Vandermonde
// linear solve instead of Forney's formula. Both are complete
// bounded-distance decoders — they accept exactly the words within
// Hamming distance t of a codeword and return that codeword — so their
// observable behaviour must agree bit for bit on every input.

// refEncode returns the systematic codeword for msg by polynomial long
// division: parity = (msg·x^{n−k}) mod g, matching the convention that
// cw[pos] is the coefficient of x^{n−1−pos}.
func refEncode(c *Code, msg []byte) []byte {
	p := c.n - c.k
	gen := []byte{1}
	for i := 0; i < p; i++ {
		gen = gf256.PolyMul(gen, []byte{gf256.Exp(i), 1})
	}
	poly := make([]byte, c.n) // ascending powers
	for pos, v := range msg {
		poly[c.n-1-pos] = v
	}
	_, rem := gf256.PolyDivMod(poly, gen)
	cw := make([]byte, c.n)
	copy(cw, msg)
	for j := 0; j < p; j++ {
		d := p - 1 - j
		if d < len(rem) {
			cw[c.k+j] = rem[d]
		}
	}
	return cw
}

// refSyndromes evaluates the received polynomial at α^0..α^{p−1}.
func refSyndromes(c *Code, cw []byte) []byte {
	p := c.n - c.k
	poly := make([]byte, c.n)
	for pos, v := range cw {
		poly[c.n-1-pos] = v
	}
	syn := make([]byte, p)
	for i := range syn {
		syn[i] = gf256.PolyEval(poly, gf256.Exp(i))
	}
	return syn
}

// solveGF solves the ν×ν linear system a·x = rhs over GF(256) by
// Gaussian elimination, returning nil when the matrix is singular. a
// and rhs are clobbered.
func solveGF(a [][]byte, rhs []byte) []byte {
	nu := len(rhs)
	for col := 0; col < nu; col++ {
		pivot := -1
		for r := col; r < nu; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil
		}
		a[col], a[pivot] = a[pivot], a[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := gf256.Inv(a[col][col])
		for j := col; j < nu; j++ {
			a[col][j] = gf256.Mul(a[col][j], inv)
		}
		rhs[col] = gf256.Mul(rhs[col], inv)
		for r := 0; r < nu; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j < nu; j++ {
				a[r][j] ^= gf256.Mul(f, a[col][j])
			}
			rhs[r] ^= gf256.Mul(f, rhs[col])
		}
	}
	return rhs
}

// refDecode is a Peterson–Gorenstein–Zierler bounded-distance decoder:
// it returns the corrected codeword, or ok=false when no codeword lies
// within distance t of cw.
func refDecode(c *Code, cw []byte) (out []byte, ok bool) {
	t := c.T()
	syn := refSyndromes(c, cw)
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	out = append([]byte(nil), cw...)
	if allZero {
		return out, true
	}
	for nu := t; nu >= 1; nu-- {
		a := make([][]byte, nu)
		rhs := make([]byte, nu)
		for i := 0; i < nu; i++ {
			a[i] = make([]byte, nu)
			for j := 0; j < nu; j++ {
				a[i][j] = syn[i+j]
			}
			rhs[i] = syn[i+nu]
		}
		co := solveGF(a, rhs)
		if co == nil {
			continue // singular: fewer than nu errors
		}
		// co[j] = σ_{ν−j}; build σ(x) = 1 + σ_1 x + … + σ_ν x^ν.
		sigma := make([]byte, nu+1)
		sigma[0] = 1
		for j := 0; j < nu; j++ {
			sigma[nu-j] = co[j]
		}
		// Exhaustive root search: pos is in error iff σ(X_pos^{-1}) = 0
		// with X_pos = α^{n−1−pos}.
		var positions []int
		for pos := 0; pos < c.n; pos++ {
			x := gf256.Inv(gf256.Exp(c.n - 1 - pos))
			if gf256.PolyEval(sigma, x) == 0 {
				positions = append(positions, pos)
			}
		}
		if len(positions) != nu {
			return nil, false // σ does not split: decoder failure
		}
		// Magnitudes from the Vandermonde system Σ_j e_j·X_j^i = S_i.
		v := make([][]byte, nu)
		s := make([]byte, nu)
		for i := 0; i < nu; i++ {
			v[i] = make([]byte, nu)
			for j, pos := range positions {
				x := gf256.Exp(c.n - 1 - pos)
				pw := byte(1)
				for e := 0; e < i; e++ {
					pw = gf256.Mul(pw, x)
				}
				v[i][j] = pw
			}
			s[i] = syn[i]
		}
		mags := solveGF(v, s)
		if mags == nil {
			return nil, false
		}
		for j, pos := range positions {
			out[pos] ^= mags[j]
		}
		for _, rs := range refSyndromes(c, out) {
			if rs != 0 {
				return nil, false
			}
		}
		return out, true
	}
	return nil, false
}

// FuzzRSDecodeDifferential cross-checks encode and decode against the
// reference on arbitrary messages and error patterns, including
// beyond-t corruption where both decoders must agree on failure or on
// the miscorrected codeword.
func FuzzRSDecodeDifferential(f *testing.F) {
	f.Add([]byte("the quick brown fox"), uint64(1), byte(0))
	f.Add([]byte{0xFF, 0x00, 0xAB}, uint64(2), byte(3))
	f.Add(bytes.Repeat([]byte{0x55}, 48), uint64(3), byte(8))
	f.Add([]byte{}, uint64(4), byte(11))
	f.Fuzz(func(t *testing.T, raw []byte, errSeed uint64, nerrRaw byte) {
		c := NewPaperCode()
		msg := make([]byte, c.K())
		copy(msg, raw) // zero-padded when raw is short
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if want := refEncode(c, msg); !bytes.Equal(cw, want) {
			t.Fatalf("encode mismatch:\n got %x\nwant %x", cw, want)
		}

		corrupted := append([]byte(nil), cw...)
		rng := sim.NewRNG(errSeed)
		nerr := int(nerrRaw) % (c.T() + 4) // 0..11: past the t=8 bound
		for _, p := range rng.Shuffled(len(cw))[:nerr] {
			corrupted[p] ^= byte(rng.UniformInt(1, 255))
		}

		refOut, refOK := refDecode(c, corrupted)
		gotOut, _, gotErr := c.DecodeCodeword(corrupted)
		if refOK != (gotErr == nil) {
			t.Fatalf("%d errors: optimized err=%v, reference ok=%v", nerr, gotErr, refOK)
		}
		if refOK && !bytes.Equal(gotOut, refOut) {
			t.Fatalf("%d errors: decode mismatch:\n got %x\nwant %x", nerr, gotOut, refOut)
		}
	})
}
