package rs

import (
	"fmt"

	"github.com/osu-netlab/osumac/internal/gf256"
)

// DecodeWithErasures corrects a received word given known erasure
// positions (byte indices the demodulator flagged as unreliable) in
// addition to unknown errors. A Reed-Solomon code corrects any
// combination of e errors and s erasures with 2e + s ≤ n − k, so
// flagging erasures doubles their correction budget — useful when the
// pilot-symbol tracker knows which PS frames faded.
//
// The returned slice is the corrected codeword; the input is not
// modified. Unlike the plain decode paths this one allocates for its
// polynomial products (Γ, Ξ, Ψ are erasure-count-sized and off the
// simulator's hot path); syndromes and the Berlekamp–Massey/Chien state
// still come from the pooled scratch.
func (c *Code) DecodeWithErasures(cw []byte, erasures []int) ([]byte, error) {
	if len(cw) != c.n {
		return nil, fmt.Errorf("%w: codeword %d bytes, want %d", ErrLength, len(cw), c.n)
	}
	if len(erasures) == 0 {
		out, _, err := c.DecodeCodeword(cw)
		return out, err
	}
	if len(erasures) > c.n-c.k {
		return nil, ErrTooManyErrors
	}
	seen := make(map[int]bool, len(erasures))
	for _, p := range erasures {
		if p < 0 || p >= c.n {
			return nil, fmt.Errorf("%w: erasure position %d", ErrLength, p)
		}
		if seen[p] {
			return nil, fmt.Errorf("%w: duplicate erasure position %d", ErrLength, p)
		}
		seen[p] = true
	}

	out := make([]byte, c.n)
	copy(out, cw)

	s := c.getScratch()
	defer c.scratch.Put(s)
	if c.syndromesInto(s.syn, out) {
		return out, nil
	}
	syn := s.syn

	// Erasure locator Γ(x) = ∏ (1 − X_j x), X_j = α^(n−1−pos).
	gamma := []byte{1}
	for _, pos := range erasures {
		x := gf256.Exp(c.n - 1 - pos)
		gamma = gf256.PolyMul(gamma, []byte{1, x})
	}

	// Modified (Forney) syndromes Ξ(x) = [S(x)·Γ(x)] mod x^(n−k) expose
	// only the unknown errors.
	mod := gf256.PolyMul(syn, gamma)
	if len(mod) > len(syn) {
		mod = mod[:len(syn)]
	}
	for len(mod) < len(syn) {
		mod = append(mod, 0)
	}

	// The Forney syndromes T_i = Ξ_{i+s} satisfy the error-locator
	// recurrence alone; Berlekamp–Massey on them finds σ for up to
	// ⌊(n−k−s)/2⌋ unknown errors.
	forneySyn := mod[len(erasures):]
	maxErrs := (c.n - c.k - len(erasures)) / 2
	sigma, err := c.berlekampMassey(s, forneySyn, maxErrs)
	if err != nil {
		return nil, err
	}

	var errPositions []int
	if gf256.PolyDegree(sigma) > 0 {
		found, err := c.chienSearch(s, sigma)
		if err != nil {
			return nil, err
		}
		for _, p := range found {
			if seen[p] {
				// An "error" landing on an erasure means the locator is
				// bogus.
				return nil, ErrTooManyErrors
			}
		}
		errPositions = found
	}

	// Combined locator Ψ = σ·Γ covers both kinds; Forney with Ψ yields
	// all magnitudes. Ψ is copied out of scratch-backed σ before use.
	psi := gf256.PolyMul(sigma, gamma)
	positions := append(append([]int{}, erasures...), errPositions...)
	if err := c.forney(s, out, syn, psi, positions); err != nil {
		return nil, err
	}

	if !c.syndromesInto(s.syn, out) {
		return nil, ErrTooManyErrors
	}
	return out, nil
}
