package rs

import (
	"testing"

	"github.com/osu-netlab/osumac/internal/sim"
)

// errorPathAllocBound caps allocations on the correcting decode path.
// After the scratch pool is warm the Berlekamp–Massey/Chien/Forney
// machinery runs entirely out of pooled buffers, so even the worst-case
// t-error decode stays allocation-free; the bound documents that and
// guards against scratch buffers silently falling off the pool.
const errorPathAllocBound = 0

func TestEncodeToSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	c := NewPaperCode()
	msg := make([]byte, c.K())
	for i := range msg {
		msg[i] = byte(i*13 + 1)
	}
	dst := make([]byte, 0, c.N())
	if n := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = c.EncodeTo(dst[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EncodeTo with reused buffer: %v allocs/op, want 0", n)
	}
}

func TestDecodeToCleanPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	c := NewPaperCode()
	msg := make([]byte, c.K())
	for i := range msg {
		msg[i] = byte(255 - i*3)
	}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, c.K())
	// One run to warm the scratch pool before measuring.
	if dst, err = c.DecodeTo(dst[:0], cw); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = c.DecodeTo(dst[:0], cw)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("clean DecodeTo with reused buffer: %v allocs/op, want 0", n)
	}
}

func TestDecodeToErrorPathAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	c := NewPaperCode()
	rng := sim.NewRNG(5)
	msg := make([]byte, c.K())
	for i := range msg {
		msg[i] = byte(rng.Uint64())
	}
	clean, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := make([]byte, len(clean))
	copy(corrupted, clean)
	for _, p := range rng.Shuffled(len(clean))[:c.T()] {
		corrupted[p] ^= byte(rng.UniformInt(1, 255))
	}
	dst := make([]byte, 0, c.N())
	if dst, err = c.DecodeTo(dst[:0], corrupted); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = c.DecodeTo(dst[:0], corrupted)
		if err != nil {
			t.Fatal(err)
		}
	}); n > errorPathAllocBound {
		t.Errorf("worst-case DecodeTo: %v allocs/op, want <= %d", n, errorPathAllocBound)
	}
}
