package frame

import (
	"fmt"

	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/rs"
	"github.com/osu-netlab/osumac/internal/sim"
)

// Codec turns marshaled frames into on-air RS codewords and back,
// applying a channel error model on receive. It owns no state beyond
// the immutable RS code, so one Codec may be shared by every entity in
// a simulation.
type Codec struct {
	code *rs.Code
}

// NewCodec returns a codec using the paper's RS(64,48) code.
func NewCodec() *Codec {
	return &Codec{code: rs.NewPaperCode()}
}

// Code exposes the underlying RS code (for tests and diagnostics).
func (c *Codec) Code() *rs.Code { return c.code }

// EncodePayload RS-encodes a 48-byte information block into one 64-byte
// codeword.
func (c *Codec) EncodePayload(info []byte) ([]byte, error) {
	return c.code.Encode(info)
}

// EncodePayloadTo appends the codeword for a 48-byte information block
// to dst. With a reused buffer the steady-state path is allocation-free.
func (c *Codec) EncodePayloadTo(dst, info []byte) ([]byte, error) {
	return c.code.EncodeTo(dst, info)
}

// DecodePayload RS-decodes one codeword back to 48 information bytes.
func (c *Codec) DecodePayload(cw []byte) ([]byte, error) {
	return c.code.Decode(cw)
}

// DecodePayloadTo appends the 48 decoded information bytes to dst. The
// clean path (no channel errors) is allocation-free with a reused
// buffer.
func (c *Codec) DecodePayloadTo(dst, cw []byte) ([]byte, error) {
	return c.code.DecodeTo(dst, cw)
}

// EncodeControlFields produces the on-air form of a control-field set:
// two consecutive RS codewords (128 bytes).
func (c *Codec) EncodeControlFields(cf *ControlFields) ([]byte, error) {
	return c.EncodeControlFieldsTo(make([]byte, 0, phy.ControlFieldCodewords*phy.CodewordBytes), cf)
}

// EncodeControlFieldsTo appends the on-air control-field codewords to
// dst. The schedule marshals into stack scratch and the RS encodes
// append, so with a reused buffer the whole encode is allocation-free.
func (c *Codec) EncodeControlFieldsTo(dst []byte, cf *ControlFields) ([]byte, error) {
	var infoArr [ControlFieldBytes]byte
	info, err := cf.MarshalTo(infoArr[:0])
	if err != nil {
		return nil, err
	}
	for i := 0; i < phy.ControlFieldCodewords; i++ {
		dst, err = c.code.EncodeTo(dst, info[i*phy.CodewordInfoBytes:(i+1)*phy.CodewordInfoBytes])
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeControlFields decodes two received codewords into control
// fields. Any codeword failing RS decode fails the whole set: a mobile
// that cannot read the control fields has no schedule for the cycle.
func (c *Codec) DecodeControlFields(air []byte) (*ControlFields, error) {
	var infoArr [phy.ControlFieldCodewords * phy.CodewordInfoBytes]byte
	return c.DecodeControlFieldsTo(infoArr[:0], air)
}

// DecodeControlFieldsTo decodes like DecodeControlFields but uses dst
// as scratch for the concatenated decoded info blocks (appending past
// len(dst)). With capacity for ControlFieldCodewords·CodewordInfoBytes
// extra bytes the only allocation left is the returned struct, which
// never aliases dst.
func (c *Codec) DecodeControlFieldsTo(dst, air []byte) (*ControlFields, error) {
	want := phy.ControlFieldCodewords * phy.CodewordBytes
	if len(air) != want {
		return nil, fmt.Errorf("%w: control fields air size %d, want %d", ErrBadLength, len(air), want)
	}
	off := len(dst)
	var err error
	for i := 0; i < phy.ControlFieldCodewords; i++ {
		dst, err = c.code.DecodeTo(dst, air[i*phy.CodewordBytes:(i+1)*phy.CodewordBytes])
		if err != nil {
			return nil, fmt.Errorf("control field codeword %d: %w", i, err)
		}
	}
	return UnmarshalControlFields(dst[off:])
}

// DecodeControlFieldsInto decodes two received codewords into a
// caller-owned struct. The decoded info blocks live in stack scratch,
// so the clean path (no channel errors) is allocation-free once the RS
// decoder's scratch pool is warm. On error cf's contents are
// unspecified.
func (c *Codec) DecodeControlFieldsInto(cf *ControlFields, air []byte) error {
	want := phy.ControlFieldCodewords * phy.CodewordBytes
	if len(air) != want {
		return fmt.Errorf("%w: control fields air size %d, want %d", ErrBadLength, len(air), want)
	}
	var infoArr [ControlFieldBytes]byte
	dst := infoArr[:0]
	var err error
	for i := 0; i < phy.ControlFieldCodewords; i++ {
		dst, err = c.code.DecodeTo(dst, air[i*phy.CodewordBytes:(i+1)*phy.CodewordBytes])
		if err != nil {
			return fmt.Errorf("control field codeword %d: %w", i, err)
		}
	}
	return UnmarshalControlFieldsInto(cf, dst)
}

// Transmit models one coded transmission through a channel error model:
// the codeword is copied, corrupted according to the model, and
// returned. The caller decodes the result; a decode error is a packet
// loss.
func Transmit(cw []byte, model phy.ErrorModel, rng *sim.RNG) []byte {
	return TransmitTo(make([]byte, 0, len(cw)), cw, model, rng)
}

// TransmitTo models one coded transmission like Transmit but appends
// the (possibly corrupted) received bytes to dst, so a per-link reused
// buffer makes the channel allocation-free. dst must not alias cw.
func TransmitTo(dst, cw []byte, model phy.ErrorModel, rng *sim.RNG) []byte {
	off := len(dst)
	dst = append(dst, cw...)
	if model != nil {
		model.Corrupt(dst[off:], rng)
	}
	return dst
}
