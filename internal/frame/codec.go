package frame

import (
	"fmt"

	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/rs"
	"github.com/osu-netlab/osumac/internal/sim"
)

// Codec turns marshaled frames into on-air RS codewords and back,
// applying a channel error model on receive. It owns no state beyond
// the immutable RS code, so one Codec may be shared by every entity in
// a simulation.
type Codec struct {
	code *rs.Code
}

// NewCodec returns a codec using the paper's RS(64,48) code.
func NewCodec() *Codec {
	return &Codec{code: rs.NewPaperCode()}
}

// Code exposes the underlying RS code (for tests and diagnostics).
func (c *Codec) Code() *rs.Code { return c.code }

// EncodePayload RS-encodes a 48-byte information block into one 64-byte
// codeword.
func (c *Codec) EncodePayload(info []byte) ([]byte, error) {
	return c.code.Encode(info)
}

// DecodePayload RS-decodes one codeword back to 48 information bytes.
func (c *Codec) DecodePayload(cw []byte) ([]byte, error) {
	return c.code.Decode(cw)
}

// EncodeControlFields produces the on-air form of a control-field set:
// two consecutive RS codewords (128 bytes).
func (c *Codec) EncodeControlFields(cf *ControlFields) ([]byte, error) {
	info, err := cf.Marshal()
	if err != nil {
		return nil, err
	}
	if len(info) != phy.ControlFieldCodewords*phy.CodewordInfoBytes {
		return nil, fmt.Errorf("frame: control fields marshal to %d bytes", len(info))
	}
	out := make([]byte, 0, phy.ControlFieldCodewords*phy.CodewordBytes)
	for i := 0; i < phy.ControlFieldCodewords; i++ {
		cw, err := c.code.Encode(info[i*phy.CodewordInfoBytes : (i+1)*phy.CodewordInfoBytes])
		if err != nil {
			return nil, err
		}
		out = append(out, cw...)
	}
	return out, nil
}

// DecodeControlFields decodes two received codewords into control
// fields. Any codeword failing RS decode fails the whole set: a mobile
// that cannot read the control fields has no schedule for the cycle.
func (c *Codec) DecodeControlFields(air []byte) (*ControlFields, error) {
	want := phy.ControlFieldCodewords * phy.CodewordBytes
	if len(air) != want {
		return nil, fmt.Errorf("%w: control fields air size %d, want %d", ErrBadLength, len(air), want)
	}
	info := make([]byte, 0, phy.ControlFieldCodewords*phy.CodewordInfoBytes)
	for i := 0; i < phy.ControlFieldCodewords; i++ {
		block, err := c.code.Decode(air[i*phy.CodewordBytes : (i+1)*phy.CodewordBytes])
		if err != nil {
			return nil, fmt.Errorf("control field codeword %d: %w", i, err)
		}
		info = append(info, block...)
	}
	return UnmarshalControlFields(info)
}

// Transmit models one coded transmission through a channel error model:
// the codeword is copied, corrupted according to the model, and
// returned. The caller decodes the result; a decode error is a packet
// loss.
func Transmit(cw []byte, model phy.ErrorModel, rng *sim.RNG) []byte {
	out := make([]byte, len(cw))
	copy(out, cw)
	if model != nil {
		model.Corrupt(out, rng)
	}
	return out
}
