package frame

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/osu-netlab/osumac/internal/phy"
)

func TestDataPacketRoundTrip(t *testing.T) {
	p := &DataPacket{
		Header: DataHeader{
			User:      17,
			MoreSlots: 3,
			MsgID:     0xCAFE,
			Frag:      2,
			FragTotal: 5,
		},
		Payload: []byte("hello, narrow-band world"),
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != phy.CodewordInfoBytes {
		t.Fatalf("marshal size %d, want %d", len(b), phy.CodewordInfoBytes)
	}
	got, err := UnmarshalPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeData || got.Data == nil {
		t.Fatalf("decoded type %v", got.Type)
	}
	if got.Data.Header != p.Header {
		t.Fatalf("header mismatch: %+v vs %+v", got.Data.Header, p.Header)
	}
	if !bytes.Equal(got.Data.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestDataPacketMaxPayload(t *testing.T) {
	if MaxPayload != 41 {
		t.Fatalf("MaxPayload = %d, want 41 (48 info bytes − 7 header)", MaxPayload)
	}
	p := &DataPacket{Header: DataHeader{User: 1}, Payload: make([]byte, MaxPayload)}
	if _, err := p.Marshal(); err != nil {
		t.Fatalf("max payload rejected: %v", err)
	}
	p.Payload = make([]byte, MaxPayload+1)
	if _, err := p.Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("oversize payload: err = %v, want ErrBadPacket", err)
	}
}

func TestDataPacketValidation(t *testing.T) {
	p := &DataPacket{Header: DataHeader{User: 1, MoreSlots: MaxMoreSlots + 1}}
	if _, err := p.Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("oversize MoreSlots accepted")
	}
	p2 := &DataPacket{Header: DataHeader{User: 64}}
	if _, err := p2.Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("7-bit user ID accepted")
	}
}

func TestEmptyPayloadPacket(t *testing.T) {
	p := &DataPacket{Header: DataHeader{User: 0, MsgID: 1, FragTotal: 1}}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data.Payload) != 0 {
		t.Fatalf("payload length %d, want 0", len(got.Data.Payload))
	}
}

func TestRegistrationRoundTrip(t *testing.T) {
	for _, wantGPS := range []bool{true, false} {
		p := &RegistrationRequest{EIN: 0x1234, WantGPS: wantGPS}
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPacket(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != TypeRegistration || got.Register == nil {
			t.Fatalf("decoded type %v", got.Type)
		}
		if *got.Register != *p {
			t.Fatalf("got %+v, want %+v", got.Register, p)
		}
	}
}

func TestReservationRoundTrip(t *testing.T) {
	p := &ReservationRequest{User: 42, Slots: 9}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeReservation || got.Reservation == nil {
		t.Fatalf("decoded type %v", got.Type)
	}
	if *got.Reservation != *p {
		t.Fatalf("got %+v, want %+v", got.Reservation, p)
	}
}

func TestReservationValidation(t *testing.T) {
	if _, err := (&ReservationRequest{User: NoUser, Slots: 1}).Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("reservation from NoUser accepted")
	}
	if _, err := (&ReservationRequest{User: 1, Slots: MaxMoreSlots + 1}).Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("oversize slot request accepted")
	}
}

func TestUnmarshalPacketErrors(t *testing.T) {
	if _, err := UnmarshalPacket(make([]byte, 47)); !errors.Is(err, ErrBadLength) {
		t.Fatal("short packet accepted")
	}
	// Type nibble 0 and 15 are invalid.
	b := make([]byte, phy.CodewordInfoBytes)
	if _, err := UnmarshalPacket(b); !errors.Is(err, ErrBadPacket) {
		t.Fatal("type 0 accepted")
	}
	b[0] = 0xF0
	if _, err := UnmarshalPacket(b); !errors.Is(err, ErrBadPacket) {
		t.Fatal("type 15 accepted")
	}
}

func TestGPSReportRoundTrip(t *testing.T) {
	g := &GPSReport{User: 6, Sequence: 777, Latitude: 0xABCDE, Longitude: 0x12345}
	b, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != GPSReportBytes {
		t.Fatalf("GPS body %d bytes, want %d", len(b), GPSReportBytes)
	}
	got, err := UnmarshalGPSReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *g {
		t.Fatalf("got %+v, want %+v", got, g)
	}
}

func TestGPSReportBodySizeMatchesPHY(t *testing.T) {
	// 128 channel symbols × 2 bits/symbol = 256 bits = 32 bytes.
	if GPSReportBytes != 32 {
		t.Fatalf("GPSReportBytes = %d, want 32", GPSReportBytes)
	}
}

func TestGPSReportChecksumDetectsCorruption(t *testing.T) {
	g := &GPSReport{User: 1, Sequence: 2, Latitude: 3, Longitude: 4}
	b, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		corrupted := append([]byte(nil), b...)
		corrupted[i] ^= 0x40
		if _, err := UnmarshalGPSReport(corrupted); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestGPSReportValidation(t *testing.T) {
	if _, err := (&GPSReport{User: 64}).Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("7-bit user accepted")
	}
	if _, err := (&GPSReport{User: 1, Latitude: 1 << 24}).Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("25-bit latitude accepted")
	}
	if _, err := UnmarshalGPSReport(make([]byte, 31)); !errors.Is(err, ErrBadLength) {
		t.Fatal("short GPS body accepted")
	}
}

// Property: data packets with arbitrary valid fields round-trip.
func TestPropertyDataPacketRoundTrip(t *testing.T) {
	f := func(user, more, frag, total uint8, msgID uint16, payload []byte) bool {
		p := &DataPacket{
			Header: DataHeader{
				User:      UserID(user % 64),
				MoreSlots: more % 16,
				MsgID:     msgID,
				Frag:      frag,
				FragTotal: total,
			},
			Payload: payload,
		}
		if len(p.Payload) > MaxPayload {
			p.Payload = p.Payload[:MaxPayload]
		}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalPacket(b)
		if err != nil || got.Type != TypeData {
			return false
		}
		return got.Data.Header == p.Header && bytes.Equal(got.Data.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: GPS reports round-trip and every single-bit corruption is
// caught by the checksum.
func TestPropertyGPSChecksum(t *testing.T) {
	f := func(user uint8, seq uint16, lat, lon uint32, bit uint16) bool {
		g := &GPSReport{
			User:      UserID(user % 64),
			Sequence:  seq,
			Latitude:  lat % (1 << 24),
			Longitude: lon % (1 << 24),
		}
		b, err := g.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalGPSReport(b)
		if err != nil || *got != *g {
			return false
		}
		// Flip one bit within the checksummed region (first 10 bytes).
		pos := int(bit) % (10 * 8)
		b[pos/8] ^= 1 << uint(pos%8)
		_, err = UnmarshalGPSReport(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
