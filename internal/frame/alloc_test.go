package frame

import (
	"bytes"
	"testing"

	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
)

// The To-variants are the hot-path forms of the codec: with reused
// buffers the steady-state encode and clean-path decode must stay at
// zero allocations per operation, or the simulation kernel regresses.

func TestCodecPayloadToRoundTrip(t *testing.T) {
	c := NewCodec()
	info := make([]byte, phy.CodewordInfoBytes)
	for i := range info {
		info[i] = byte(i*31 + 7)
	}
	cw, err := c.EncodePayloadTo(nil, info)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.EncodePayload(info)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw, plain) {
		t.Fatal("EncodePayloadTo differs from EncodePayload")
	}
	back, err := c.DecodePayloadTo(nil, cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, info) {
		t.Fatal("DecodePayloadTo round-trip mismatch")
	}
}

func TestCodecControlFieldsToRoundTrip(t *testing.T) {
	c := NewCodec()
	cf := NewControlFields()
	cf.GPSSchedule[1] = 9
	cf.ReverseSchedule[2] = 21
	cf.ReverseACKs[1] = ReverseACK{User: 21, EIN: 0x1234}

	air, err := c.EncodeControlFieldsTo(nil, cf)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.EncodeControlFields(cf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(air, plain) {
		t.Fatal("EncodeControlFieldsTo differs from EncodeControlFields")
	}
	scratch := make([]byte, 0, phy.ControlFieldCodewords*phy.CodewordInfoBytes)
	got, err := c.DecodeControlFieldsTo(scratch, air)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *cf {
		t.Fatal("DecodeControlFieldsTo round-trip mismatch")
	}
}

func TestCodecToVariantsAppend(t *testing.T) {
	c := NewCodec()
	info := make([]byte, phy.CodewordInfoBytes)
	prefix := []byte{0xDE, 0xAD}
	cw, err := c.EncodePayloadTo(append([]byte(nil), prefix...), info)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw[:2], prefix) || len(cw) != 2+phy.CodewordBytes {
		t.Fatalf("EncodePayloadTo did not append: len=%d", len(cw))
	}
	back, err := c.DecodePayloadTo(append([]byte(nil), prefix...), cw[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[:2], prefix) || !bytes.Equal(back[2:], info) {
		t.Fatal("DecodePayloadTo did not append")
	}
}

func TestCodecSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	c := NewCodec()
	info := make([]byte, phy.CodewordInfoBytes)
	for i := range info {
		info[i] = byte(i ^ 0x5A)
	}
	encBuf := make([]byte, 0, phy.CodewordBytes)
	decBuf := make([]byte, 0, phy.CodewordInfoBytes)
	rxBuf := make([]byte, 0, phy.CodewordBytes)
	rng := sim.NewRNG(7)

	// Warm the decoder scratch pool before measuring.
	cw, err := c.EncodePayloadTo(encBuf, info)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodePayloadTo(decBuf, cw); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.EncodePayloadTo(encBuf[:0], info); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EncodePayloadTo: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.DecodePayloadTo(decBuf[:0], cw); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("clean DecodePayloadTo: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		rxBuf = TransmitTo(rxBuf[:0], cw, nil, rng)
	}); n != 0 {
		t.Errorf("TransmitTo: %v allocs/op, want 0", n)
	}
}

func TestControlFieldCodecSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	c := NewCodec()
	cf := NewControlFields()
	cf.GPSSchedule[0] = 4
	cf.ReverseSchedule[2] = 17
	cf.ReverseACKs[0] = ReverseACK{User: 17, EIN: 0xBEEF}

	air := make([]byte, 0, ControlFieldAirBytes)
	marshaled := make([]byte, 0, ControlFieldBytes)
	var rx ControlFields

	// Warm the RS decoder scratch pool before measuring.
	air, err := c.EncodeControlFieldsTo(air, cf)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DecodeControlFieldsInto(&rx, air); err != nil {
		t.Fatal(err)
	}
	if rx != *cf {
		t.Fatal("DecodeControlFieldsInto round-trip mismatch")
	}

	if n := testing.AllocsPerRun(200, func() {
		if marshaled, err = cf.MarshalTo(marshaled[:0]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MarshalTo: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := UnmarshalControlFieldsInto(&rx, marshaled); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("UnmarshalControlFieldsInto: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if air, err = c.EncodeControlFieldsTo(air[:0], cf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EncodeControlFieldsTo: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := c.DecodeControlFieldsInto(&rx, air); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("clean DecodeControlFieldsInto: %v allocs/op, want 0", n)
	}
}
