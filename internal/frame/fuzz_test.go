package frame

import (
	"testing"
	"testing/quick"

	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
)

// Robustness: parsers must never panic on arbitrary input — a corrupted
// RS decode that slips through must fail cleanly.

func TestUnmarshalPacketNeverPanics(t *testing.T) {
	rng := sim.NewRNG(1)
	for i := 0; i < 5000; i++ {
		b := make([]byte, phy.CodewordInfoBytes)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		pkt, err := UnmarshalPacket(b) // must not panic
		if err == nil && pkt == nil {
			t.Fatal("nil packet without error")
		}
	}
}

func TestUnmarshalControlFieldsNeverPanics(t *testing.T) {
	rng := sim.NewRNG(2)
	for i := 0; i < 2000; i++ {
		b := make([]byte, phy.ControlFieldCodewords*phy.CodewordInfoBytes)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		cf, err := UnmarshalControlFields(b)
		if err != nil {
			continue
		}
		// Whatever parsed must re-marshal to the same bits (the layout
		// is total over 6-bit fields).
		if got, err := UnmarshalControlFields(cf.Marshal()); err != nil || *got != *cf {
			t.Fatal("re-marshal mismatch on random control fields")
		}
	}
}

func TestUnmarshalGPSReportNeverPanics(t *testing.T) {
	rng := sim.NewRNG(3)
	valid := 0
	for i := 0; i < 5000; i++ {
		b := make([]byte, GPSReportBytes)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		if _, err := UnmarshalGPSReport(b); err == nil {
			valid++
		}
	}
	// The 8-bit checksum lets ~1/256 of random bodies through.
	if valid > 100 {
		t.Fatalf("%d/5000 random GPS bodies validated; checksum too weak", valid)
	}
}

// Property: parsing arbitrary length-correct bytes either fails or
// yields a packet that marshals back into parseable bytes.
func TestPropertyPacketParseStability(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		b := make([]byte, phy.CodewordInfoBytes)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		pkt, err := UnmarshalPacket(b)
		if err != nil {
			return true
		}
		var back []byte
		switch pkt.Type {
		case TypeData:
			back, err = pkt.Data.Marshal()
		case TypeRegistration:
			back, err = pkt.Register.Marshal()
		case TypeReservation:
			back, err = pkt.Reservation.Marshal()
		default:
			return false
		}
		if err != nil {
			return false
		}
		_, err = UnmarshalPacket(back)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
