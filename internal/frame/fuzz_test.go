package frame

import (
	"testing"
	"testing/quick"

	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
)

// Robustness: parsers must never panic on arbitrary input — a corrupted
// RS decode that slips through must fail cleanly.

func TestUnmarshalPacketNeverPanics(t *testing.T) {
	rng := sim.NewRNG(1)
	for i := 0; i < 5000; i++ {
		b := make([]byte, phy.CodewordInfoBytes)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		pkt, err := UnmarshalPacket(b) // must not panic
		if err == nil && pkt == nil {
			t.Fatal("nil packet without error")
		}
	}
}

func TestUnmarshalControlFieldsNeverPanics(t *testing.T) {
	rng := sim.NewRNG(2)
	for i := 0; i < 2000; i++ {
		b := make([]byte, phy.ControlFieldCodewords*phy.CodewordInfoBytes)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		cf, err := UnmarshalControlFields(b)
		if err != nil {
			continue
		}
		// Whatever parsed must re-marshal to the same bits (the layout
		// is total over 6-bit fields).
		back, err := cf.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if got, err := UnmarshalControlFields(back); err != nil || *got != *cf {
			t.Fatal("re-marshal mismatch on random control fields")
		}
	}
}

func TestUnmarshalGPSReportNeverPanics(t *testing.T) {
	rng := sim.NewRNG(3)
	valid := 0
	for i := 0; i < 5000; i++ {
		b := make([]byte, GPSReportBytes)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		if _, err := UnmarshalGPSReport(b); err == nil {
			valid++
		}
	}
	// The 8-bit checksum lets ~1/256 of random bodies through.
	if valid > 100 {
		t.Fatalf("%d/5000 random GPS bodies validated; checksum too weak", valid)
	}
}

// FuzzUnmarshalPacket feeds arbitrary bytes to the reverse-packet
// parser. Parsing must never panic, and a successful parse must survive
// a marshal/unmarshal round trip. Seed corpus: testdata/fuzz.
func FuzzUnmarshalPacket(f *testing.F) {
	d := &DataPacket{
		Header:  DataHeader{User: 5, MoreSlots: 2, MsgID: 777, Frag: 1, FragTotal: 3},
		Payload: []byte("osu-mac"),
	}
	if b, err := d.Marshal(); err == nil {
		f.Add(b)
	}
	reg := &RegistrationRequest{EIN: 0xBEEF, WantGPS: true}
	if b, err := reg.Marshal(); err == nil {
		f.Add(b)
	}
	rsv := &ReservationRequest{User: 3, Slots: 4}
	if b, err := rsv.Marshal(); err == nil {
		f.Add(b)
	}
	f.Add(make([]byte, phy.CodewordInfoBytes))
	f.Fuzz(func(t *testing.T, b []byte) {
		pkt, err := UnmarshalPacket(b)
		if err != nil {
			return
		}
		if pkt == nil {
			t.Fatal("nil packet without error")
		}
		var back []byte
		switch pkt.Type {
		case TypeData:
			back, err = pkt.Data.Marshal()
		case TypeRegistration:
			back, err = pkt.Register.Marshal()
		case TypeReservation:
			back, err = pkt.Reservation.Marshal()
		default:
			t.Fatalf("parser accepted unknown packet type %v", pkt.Type)
		}
		if err != nil {
			t.Fatalf("re-marshal of parsed packet failed: %v", err)
		}
		if _, err := UnmarshalPacket(back); err != nil {
			t.Fatalf("round-tripped packet failed to parse: %v", err)
		}
	})
}

// FuzzUnmarshalControlFields checks the 630-bit control-field layout is
// total: anything that parses must re-marshal to an equal value.
func FuzzUnmarshalControlFields(f *testing.F) {
	if b, err := NewControlFields().Marshal(); err == nil {
		f.Add(b)
	}
	cf := NewControlFields()
	cf.GPSSchedule[0] = 1
	cf.ReverseSchedule[2] = 7
	cf.ReverseACKs[0] = ReverseACK{User: 7, EIN: 0xBEEF}
	if b, err := cf.Marshal(); err == nil {
		f.Add(b)
	}
	f.Add(make([]byte, phy.ControlFieldCodewords*phy.CodewordInfoBytes))
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := UnmarshalControlFields(b)
		if err != nil {
			return
		}
		back, err := got.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of parsed control fields failed: %v", err)
		}
		again, err := UnmarshalControlFields(back)
		if err != nil || *again != *got {
			t.Fatalf("control fields round trip diverged: %v", err)
		}
	})
}

// FuzzUnmarshalGPSReport checks the checksum-guarded GPS body parser:
// no panics, and accepted reports re-marshal to the same fields.
func FuzzUnmarshalGPSReport(f *testing.F) {
	g := &GPSReport{User: 2, Sequence: 513, Latitude: 0x123456, Longitude: 0x654321}
	if b, err := g.Marshal(); err == nil {
		f.Add(b)
	}
	f.Add(make([]byte, GPSReportBytes))
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := UnmarshalGPSReport(b)
		if err != nil {
			return
		}
		back, err := got.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of accepted GPS report failed: %v", err)
		}
		again, err := UnmarshalGPSReport(back)
		if err != nil || *again != *got {
			t.Fatalf("GPS report round trip diverged: %v", err)
		}
	})
}

// Property: parsing arbitrary length-correct bytes either fails or
// yields a packet that marshals back into parseable bytes.
func TestPropertyPacketParseStability(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		b := make([]byte, phy.CodewordInfoBytes)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		pkt, err := UnmarshalPacket(b)
		if err != nil {
			return true
		}
		var back []byte
		switch pkt.Type {
		case TypeData:
			back, err = pkt.Data.Marshal()
		case TypeRegistration:
			back, err = pkt.Register.Marshal()
		case TypeReservation:
			back, err = pkt.Reservation.Marshal()
		default:
			return false
		}
		if err != nil {
			return false
		}
		_, err = UnmarshalPacket(back)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
