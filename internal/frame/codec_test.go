package frame

import (
	"bytes"
	"testing"

	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/sim"
)

func TestCodecControlFieldsCleanRoundTrip(t *testing.T) {
	c := NewCodec()
	cf := NewControlFields()
	cf.GPSSchedule[0] = 3
	cf.ReverseSchedule[4] = 12
	cf.ReverseACKs[0] = ReverseACK{User: 12, EIN: 0xAAAA}

	air, err := c.EncodeControlFields(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(air) != 128 {
		t.Fatalf("air size %d, want 128 (2 RS codewords)", len(air))
	}
	got, err := c.DecodeControlFields(air)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *cf {
		t.Fatal("control fields round-trip mismatch")
	}
}

func TestCodecControlFieldsSurviveCorrectableErrors(t *testing.T) {
	c := NewCodec()
	rng := sim.NewRNG(1)
	cf := NewControlFields()
	cf.ForwardSchedule[10] = 30

	air, err := c.EncodeControlFields(cf)
	if err != nil {
		t.Fatal(err)
	}
	// Up to 8 byte errors per codeword are correctable.
	for i := 0; i < 8; i++ {
		air[rng.Intn(64)] ^= byte(rng.UniformInt(1, 255))    // first codeword
		air[64+rng.Intn(64)] ^= byte(rng.UniformInt(1, 255)) // second codeword
	}
	got, err := c.DecodeControlFields(air)
	if err != nil {
		t.Fatalf("correctable corruption broke decode: %v", err)
	}
	if *got != *cf {
		t.Fatal("corrected control fields differ")
	}
}

func TestCodecControlFieldsFailOnBurst(t *testing.T) {
	c := NewCodec()
	cf := NewControlFields()
	air, err := c.EncodeControlFields(cf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ { // destroy the first codeword
		air[i] ^= 0xFF
	}
	if _, err := c.DecodeControlFields(air); err == nil {
		t.Fatal("burst-corrupted control fields decoded")
	}
}

func TestCodecControlFieldsLengthCheck(t *testing.T) {
	c := NewCodec()
	if _, err := c.DecodeControlFields(make([]byte, 127)); err == nil {
		t.Fatal("short air buffer accepted")
	}
}

func TestCodecPayloadRoundTrip(t *testing.T) {
	c := NewCodec()
	p := &ReservationRequest{User: 5, Slots: 2}
	info, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.EncodePayload(info)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != phy.CodewordBytes {
		t.Fatalf("codeword %d bytes, want %d", len(cw), phy.CodewordBytes)
	}
	back, err := c.DecodePayload(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, info) {
		t.Fatal("payload round-trip mismatch")
	}
}

func TestTransmitDoesNotAliasInput(t *testing.T) {
	cw := bytes.Repeat([]byte{0x11}, 64)
	rng := sim.NewRNG(3)
	out := Transmit(cw, phy.IID{P: 1.0}, rng)
	for _, b := range cw {
		if b != 0x11 {
			t.Fatal("Transmit mutated the input codeword")
		}
	}
	same := true
	for i := range out {
		if out[i] != cw[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("P=1 model left output identical")
	}
}

func TestTransmitNilModel(t *testing.T) {
	cw := []byte{1, 2, 3}
	out := Transmit(cw, nil, sim.NewRNG(1))
	if !bytes.Equal(out, cw) {
		t.Fatal("nil model should pass through unchanged")
	}
}

func TestEndToEndPacketOverNoisyChannel(t *testing.T) {
	// Full pipeline: marshal → RS encode → channel → RS decode →
	// unmarshal, under the two-regime model. Every delivered packet must
	// be exact; losses are expected.
	c := NewCodec()
	rng := sim.NewRNG(9)
	model := phy.TwoRegime{PLoss: 0.2, MaxCorrectable: 8}
	payload := []byte("bus 4 at (40.0014N, 83.0196W)")
	var delivered, lost int
	for i := 0; i < 500; i++ {
		p := &DataPacket{
			Header:  DataHeader{User: 4, MsgID: uint16(i), FragTotal: 1},
			Payload: payload,
		}
		info, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		cw, err := c.EncodePayload(info)
		if err != nil {
			t.Fatal(err)
		}
		rx := Transmit(cw, model, rng)
		back, err := c.DecodePayload(rx)
		if err != nil {
			lost++
			continue
		}
		got, err := UnmarshalPacket(back)
		if err != nil {
			t.Fatalf("delivered packet failed to parse: %v", err)
		}
		if !bytes.Equal(got.Data.Payload, payload) {
			t.Fatal("delivered packet corrupted silently")
		}
		delivered++
	}
	if delivered == 0 || lost == 0 {
		t.Fatalf("expected both outcomes; delivered=%d lost=%d", delivered, lost)
	}
}
