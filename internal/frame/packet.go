package frame

import (
	"fmt"

	"github.com/osu-netlab/osumac/internal/bitio"
	"github.com/osu-netlab/osumac/internal/phy"
)

// PacketType tags the contents of a reverse-channel packet. Control
// information travels in-band: data packets carry a header, while
// registration and reservation requests are standalone control packets
// sent in contention slots (paper §3.1).
type PacketType int

// Reverse-channel packet types.
const (
	TypeData PacketType = iota + 1
	TypeRegistration
	TypeReservation
)

// String implements fmt.Stringer.
func (t PacketType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeRegistration:
		return "registration"
	case TypeReservation:
		return "reservation"
	default:
		return fmt.Sprintf("PacketType(%d)", int(t))
	}
}

// Bit widths of the data-packet header fields.
const (
	typeBits       = 4
	moreSlotsBits  = 4
	msgIDBits      = 16
	fragBits       = 8
	payloadLenBits = 6

	// headerBits is the data header size: 4+6+4+16+8+8+6 = 52, padded
	// to 56 bits (7 bytes).
	headerBits  = 56
	headerBytes = headerBits / 8

	// MaxPayload is the data bytes one packet carries: 48-byte RS
	// message minus the 7-byte header.
	MaxPayload = phy.CodewordInfoBytes - headerBytes

	// MaxMoreSlots caps the implicit piggyback reservation request.
	MaxMoreSlots = 1<<moreSlotsBits - 1
	// MaxFragments caps the fragments per message.
	MaxFragments = 1<<fragBits - 1
)

// DataHeader is the in-band control header of a reverse data packet.
// MoreSlots is the paper's implicit-reservation field: the number of
// additional data slots the subscriber requests for the next cycle.
type DataHeader struct {
	User      UserID
	MoreSlots uint8
	MsgID     uint16
	Frag      uint8
	FragTotal uint8
}

// DataPacket is a regular reverse- or forward-channel data packet: one
// RS(64,48) codeword with a 7-byte header and up to 41 payload bytes.
type DataPacket struct {
	Header  DataHeader
	Payload []byte
}

// Marshal packs the packet into the 48 information bytes of one RS
// codeword.
func (p *DataPacket) Marshal() ([]byte, error) {
	if len(p.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes, max %d", ErrBadPacket, len(p.Payload), MaxPayload)
	}
	if p.Header.MoreSlots > MaxMoreSlots {
		return nil, fmt.Errorf("%w: MoreSlots %d, max %d", ErrBadPacket, p.Header.MoreSlots, MaxMoreSlots)
	}
	if p.Header.User > NoUser {
		return nil, fmt.Errorf("%w: user ID %d exceeds 6 bits", ErrBadPacket, p.Header.User)
	}
	w := bitio.NewWriter(phy.CodewordInfoBits)
	w.PutBits(uint64(TypeData), typeBits)
	w.PutBits(uint64(p.Header.User), UserIDBits)
	w.PutBits(uint64(p.Header.MoreSlots), moreSlotsBits)
	w.PutBits(uint64(p.Header.MsgID), msgIDBits)
	w.PutBits(uint64(p.Header.Frag), fragBits)
	w.PutBits(uint64(p.Header.FragTotal), fragBits)
	w.PutBits(uint64(len(p.Payload)), payloadLenBits)
	w.PutBits(0, headerBits-52) // pad header to a whole byte count
	w.PutBytes(p.Payload)
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("%w: data packet: %w", ErrBadPacket, err)
	}
	return w.Bytes(), nil
}

// RegistrationRequest asks the base station to admit a new subscriber
// (paper §3.2). WantGPS selects the real-time GPS service class.
type RegistrationRequest struct {
	EIN     EIN
	WantGPS bool
}

// Marshal packs the request into 48 information bytes.
func (p *RegistrationRequest) Marshal() ([]byte, error) {
	w := bitio.NewWriter(phy.CodewordInfoBits)
	w.PutBits(uint64(TypeRegistration), typeBits)
	w.PutBits(uint64(p.EIN), EINBits)
	w.PutBool(p.WantGPS)
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("%w: registration request: %w", ErrBadPacket, err)
	}
	return w.Bytes(), nil
}

// ReservationRequest explicitly asks for data slots in the next cycle
// (paper §3.1 reservation means 1).
type ReservationRequest struct {
	User  UserID
	Slots uint8
}

// Marshal packs the request into 48 information bytes.
func (p *ReservationRequest) Marshal() ([]byte, error) {
	if p.Slots > MaxMoreSlots {
		return nil, fmt.Errorf("%w: Slots %d, max %d", ErrBadPacket, p.Slots, MaxMoreSlots)
	}
	if !p.User.Valid() {
		return nil, fmt.Errorf("%w: invalid user ID %d", ErrBadPacket, p.User)
	}
	w := bitio.NewWriter(phy.CodewordInfoBits)
	w.PutBits(uint64(TypeReservation), typeBits)
	w.PutBits(uint64(p.User), UserIDBits)
	w.PutBits(uint64(p.Slots), moreSlotsBits)
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("%w: reservation request: %w", ErrBadPacket, err)
	}
	return w.Bytes(), nil
}

// Packet is the decoded form of a reverse-channel packet: exactly one of
// the pointers is non-nil, matching Type.
type Packet struct {
	Type        PacketType
	Data        *DataPacket
	Register    *RegistrationRequest
	Reservation *ReservationRequest
}

// UnmarshalPacket parses the 48 information bytes of a reverse packet.
func UnmarshalPacket(b []byte) (*Packet, error) {
	if len(b) != phy.CodewordInfoBytes {
		return nil, fmt.Errorf("%w: packet %d bytes, want %d", ErrBadLength, len(b), phy.CodewordInfoBytes)
	}
	r := bitio.NewReader(b)
	t := PacketType(r.TakeBits(typeBits))
	switch t {
	case TypeData:
		h := DataHeader{
			User:      UserID(r.TakeBits(UserIDBits)),
			MoreSlots: uint8(r.TakeBits(moreSlotsBits)),
			MsgID:     uint16(r.TakeBits(msgIDBits)),
			Frag:      uint8(r.TakeBits(fragBits)),
			FragTotal: uint8(r.TakeBits(fragBits)),
		}
		n := int(r.TakeBits(payloadLenBits))
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: data header: %w", ErrBadPacket, err)
		}
		if n > MaxPayload {
			return nil, fmt.Errorf("%w: payload length %d exceeds max %d", ErrBadPacket, n, MaxPayload)
		}
		if err := r.Skip(headerBits - 52); err != nil {
			return nil, err
		}
		payload := r.TakeBytes(n)
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: data payload: %w", ErrBadPacket, err)
		}
		return &Packet{Type: TypeData, Data: &DataPacket{Header: h, Payload: payload}}, nil
	case TypeRegistration:
		ein := EIN(r.TakeBits(EINBits))
		wantGPS := r.TakeBool()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: registration request: %w", ErrBadPacket, err)
		}
		return &Packet{Type: TypeRegistration, Register: &RegistrationRequest{EIN: ein, WantGPS: wantGPS}}, nil
	case TypeReservation:
		user := UserID(r.TakeBits(UserIDBits))
		slots := uint8(r.TakeBits(moreSlotsBits))
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: reservation request: %w", ErrBadPacket, err)
		}
		if !user.Valid() {
			return nil, fmt.Errorf("%w: reservation from invalid user %d", ErrBadPacket, user)
		}
		return &Packet{Type: TypeReservation, Reservation: &ReservationRequest{User: user, Slots: slots}}, nil
	default:
		return nil, fmt.Errorf("%w: unknown packet type %d", ErrBadPacket, int(t))
	}
}

// GPSReport is the periodic 72-bit location packet a bus transmits
// (paper §2.1). The checksum lets the receiver detect corruption;
// corrupted GPS packets are discarded, never retransmitted.
type GPSReport struct {
	User      UserID
	Sequence  uint16
	Latitude  uint32 // 24-bit fixed-point
	Longitude uint32 // 24-bit fixed-point
}

// GPSReportBytes is the on-air body size: 72 bits of report + 8-bit
// checksum padded into the 128-symbol GPS packet body.
const GPSReportBytes = phy.GPSPacketSymbols * phy.BitsPerSymbol / 8

// Marshal packs the report plus checksum into the GPS packet body.
func (g *GPSReport) Marshal() ([]byte, error) {
	if g.User > NoUser {
		return nil, fmt.Errorf("%w: user ID %d exceeds 6 bits", ErrBadPacket, g.User)
	}
	if g.Latitude >= 1<<24 || g.Longitude >= 1<<24 {
		return nil, fmt.Errorf("%w: coordinates exceed 24 bits", ErrBadPacket)
	}
	w := bitio.NewWriter(GPSReportBytes * 8)
	w.PutBits(uint64(g.User), UserIDBits)
	w.PutBits(uint64(g.Sequence), 16)
	w.PutBits(uint64(g.Latitude), 24)
	w.PutBits(uint64(g.Longitude), 24)
	w.PutBits(0, 2) // pad to the 72-bit report boundary
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("%w: GPS report: %w", ErrBadPacket, err)
	}
	body := w.Bytes()
	body[9] = xorChecksum(body[:9])
	return body, nil
}

// UnmarshalGPSReport parses and validates a GPS packet body. A checksum
// mismatch returns ErrBadPacket: the report is discarded.
func UnmarshalGPSReport(b []byte) (*GPSReport, error) {
	if len(b) != GPSReportBytes {
		return nil, fmt.Errorf("%w: GPS body %d bytes, want %d", ErrBadLength, len(b), GPSReportBytes)
	}
	if xorChecksum(b[:9]) != b[9] {
		return nil, fmt.Errorf("%w: GPS checksum mismatch", ErrBadPacket)
	}
	r := bitio.NewReader(b)
	g := &GPSReport{}
	g.User = UserID(r.TakeBits(UserIDBits))
	g.Sequence = uint16(r.TakeBits(16))
	g.Latitude = uint32(r.TakeBits(24))
	g.Longitude = uint32(r.TakeBits(24))
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: GPS report: %w", ErrBadPacket, err)
	}
	return g, nil
}

func xorChecksum(b []byte) byte {
	var c byte = 0xA5 // nonzero seed so an all-zero body fails validation
	for _, x := range b {
		c ^= x
		c = c<<1 | c>>7
	}
	return c
}
