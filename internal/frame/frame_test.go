package frame

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/osu-netlab/osumac/internal/phy"
)

// TestControlFieldBitBudget pins the reconstructed layout to the paper's
// stated totals: 630 payload bits, 138 reserved of 768.
func TestControlFieldBitBudget(t *testing.T) {
	if ControlFieldBits != 630 {
		t.Fatalf("ControlFieldBits = %d, want 630", ControlFieldBits)
	}
	if ControlFieldReservedBits != 138 {
		t.Fatalf("ControlFieldReservedBits = %d, want 138", ControlFieldReservedBits)
	}
	if got := GPSScheduleEntries * UserIDBits; got != 48 {
		t.Fatalf("GPS schedule bits = %d, want 48", got)
	}
	if got := ReverseScheduleEntries * UserIDBits; got != 54 {
		t.Fatalf("reverse schedule bits = %d, want 54", got)
	}
	if got := ForwardScheduleEntries * UserIDBits; got != 222 {
		t.Fatalf("forward schedule bits = %d, want 222", got)
	}
}

func TestNewControlFieldsAllUnassigned(t *testing.T) {
	cf := NewControlFields()
	if cf.ActiveGPSUsers() != 0 {
		t.Fatal("fresh control fields report active GPS users")
	}
	if got := len(cf.ContentionSlots()); got != ReverseScheduleEntries {
		t.Fatalf("fresh control fields have %d contention slots, want all %d", got, ReverseScheduleEntries)
	}
	for _, a := range cf.ReverseACKs {
		if !a.None() {
			t.Fatal("fresh ACK entry not empty")
		}
	}
}

func TestControlFieldsRoundTrip(t *testing.T) {
	cf := NewControlFields()
	cf.GPSSchedule[0] = 5
	cf.GPSSchedule[7] = 12
	cf.ReverseSchedule[1] = 33
	cf.ReverseSchedule[8] = 62
	cf.ForwardSchedule[0] = 1
	cf.ForwardSchedule[36] = 44
	cf.ReverseACKs[2] = ReverseACK{User: 9, EIN: 0xBEEF}
	cf.Paging[17] = 21

	b, err := cf.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalControlFields(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *cf {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, cf)
	}
}

func TestMarshalControlFieldsRejectsOversizedID(t *testing.T) {
	cf := NewControlFields()
	cf.GPSSchedule[0] = 64 // does not fit 6 bits
	if _, err := cf.Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("err = %v, want ErrBadPacket", err)
	}
}

func TestUnmarshalControlFieldsLength(t *testing.T) {
	if _, err := UnmarshalControlFields(make([]byte, 95)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestActiveGPSUsersAndContentionSlots(t *testing.T) {
	cf := NewControlFields()
	cf.GPSSchedule[0] = 1
	cf.GPSSchedule[1] = 2
	cf.GPSSchedule[2] = 3
	cf.GPSSchedule[3] = 4
	if cf.ActiveGPSUsers() != 4 {
		t.Fatalf("ActiveGPSUsers = %d, want 4", cf.ActiveGPSUsers())
	}
	cf.ReverseSchedule[0] = NoUser // contention
	cf.ReverseSchedule[1] = 7
	cf.ReverseSchedule[2] = 7
	slots := cf.ContentionSlots()
	if len(slots) != ReverseScheduleEntries-2 {
		t.Fatalf("contention slots = %v", slots)
	}
	if slots[0] != 0 {
		t.Fatalf("first contention slot = %d, want 0", slots[0])
	}
}

func TestUserID(t *testing.T) {
	if NoUser.Valid() {
		t.Fatal("NoUser should not be assignable")
	}
	if !UserID(0).Valid() || !MaxUserID.Valid() {
		t.Fatal("boundary IDs should be valid")
	}
	if NoUser.String() != "-" {
		t.Fatalf("NoUser.String() = %q", NoUser.String())
	}
	if UserID(7).String() != "u7" {
		t.Fatalf("UserID(7).String() = %q", UserID(7).String())
	}
}

func TestPacketTypeString(t *testing.T) {
	for _, c := range []struct {
		t    PacketType
		want string
	}{
		{TypeData, "data"},
		{TypeRegistration, "registration"},
		{TypeReservation, "reservation"},
	} {
		if c.t.String() != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.t), c.t.String(), c.want)
		}
	}
	if PacketType(9).String() == "" {
		t.Error("unknown type should still render")
	}
}

// Property: arbitrary valid control fields survive a marshal/unmarshal
// round-trip.
func TestPropertyControlFieldsRoundTrip(t *testing.T) {
	f := func(gps [8]uint8, rev [9]uint8, fwd [37]uint8, ackU [9]uint8, ackE [9]uint16, page [18]uint8) bool {
		cf := NewControlFields()
		for i, v := range gps {
			cf.GPSSchedule[i] = UserID(v % 64)
		}
		for i, v := range rev {
			cf.ReverseSchedule[i] = UserID(v % 64)
		}
		for i, v := range fwd {
			cf.ForwardSchedule[i] = UserID(v % 64)
		}
		for i := range ackU {
			cf.ReverseACKs[i] = ReverseACK{User: UserID(ackU[i] % 64), EIN: EIN(ackE[i])}
		}
		for i, v := range page {
			cf.Paging[i] = UserID(v % 64)
		}
		b, err := cf.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalControlFields(b)
		return err == nil && *got == *cf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalSizeMatchesCodewords(t *testing.T) {
	cf := NewControlFields()
	b, err := cf.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != phy.ControlFieldCodewords*phy.CodewordInfoBytes {
		t.Fatalf("marshal size %d, want %d", len(b), phy.ControlFieldCodewords*phy.CodewordInfoBytes)
	}
}
