// Package frame defines the wire formats of OSU-MAC: the forward-channel
// control fields (paper Fig. 2), reverse-channel data-packet headers with
// the implicit-reservation bit field, registration and reservation
// control packets, and GPS location reports. All formats marshal to and
// from exact bit layouts and travel through the RS(64,48) codec.
package frame

import (
	"errors"
	"fmt"

	"github.com/osu-netlab/osumac/internal/bitio"
	"github.com/osu-netlab/osumac/internal/phy"
)

// UserID is a cell-local 6-bit subscriber identifier assigned at
// registration (paper §3.1).
type UserID uint8

// NoUser is the reserved user ID marking an unassigned slot (a data slot
// carrying NoUser in the reverse schedule is a contention slot). Using a
// sentinel leaves 63 assignable IDs; the cell admission limit accounts
// for this.
const NoUser UserID = 63

// MaxUserID is the largest assignable user ID.
const MaxUserID UserID = 62

// Valid reports whether the ID is assignable (not the sentinel and
// within 6 bits).
func (u UserID) Valid() bool { return u <= MaxUserID }

// String implements fmt.Stringer.
func (u UserID) String() string {
	if u == NoUser {
		return "-"
	}
	return fmt.Sprintf("u%d", uint8(u))
}

// EIN is the permanent, universally unique 16-bit equipment
// identification number of a mobile subscriber.
type EIN uint16

// Control-field layout (reconstructed; see DESIGN.md). The paper states
// the total is 630 bits in 2 RS codewords with 138 bits reserved; this
// is the unique layout consistent with those totals and the stated
// entry counts.
const (
	// UserIDBits is the width of a user ID.
	UserIDBits = 6
	// EINBits is the width of an equipment identification number.
	EINBits = 16

	// GPSScheduleEntries is the GPS slots announced (paper: up to 8).
	GPSScheduleEntries = 8
	// ReverseScheduleEntries is M, the reverse data slots (paper: M=9).
	ReverseScheduleEntries = 9
	// ForwardScheduleEntries is N, the forward data slots (paper: N=37).
	ForwardScheduleEntries = 37
	// ReverseACKEntries matches the reverse data slots.
	ReverseACKEntries = 9
	// PagingEntries is the page capacity (paper: up to 18 users).
	PagingEntries = 18

	// ControlFieldBits is the exact payload size (paper: 630).
	ControlFieldBits = GPSScheduleEntries*UserIDBits +
		ReverseScheduleEntries*UserIDBits +
		ForwardScheduleEntries*UserIDBits +
		ReverseACKEntries*(UserIDBits+EINBits) +
		PagingEntries*UserIDBits
	// ControlFieldReservedBits is the slack in the 2 codewords
	// (paper: 138).
	ControlFieldReservedBits = phy.ControlFieldCodewords*phy.CodewordInfoBits -
		ControlFieldBits
)

// Errors returned by the unmarshalers.
var (
	// ErrBadLength is returned for wrong-sized buffers.
	ErrBadLength = errors.New("frame: wrong buffer length")
	// ErrBadPacket is returned for malformed packet contents.
	ErrBadPacket = errors.New("frame: malformed packet")
)

// ReverseACK acknowledges activity in one reverse data slot of the
// previous cycle (paper §3.1): User names the subscriber whose data or
// reservation was received; for an approved registration, EIN carries
// the requester's equipment number and User the newly assigned ID. A
// zero-valued entry (User == NoUser) means nothing was received in that
// slot.
type ReverseACK struct {
	User UserID
	EIN  EIN
}

// None reports whether the entry acknowledges nothing.
func (a ReverseACK) None() bool { return a.User == NoUser && a.EIN == 0 }

// ControlFields is one set of forward-channel control fields
// (paper Fig. 2). Two sets are sent per notification cycle; they differ
// only in the reverse ACKs covering last-slot activity (paper §3.4
// problem 3).
type ControlFields struct {
	// GPSSchedule[i] is the user assigned reverse GPS slot i.
	GPSSchedule [GPSScheduleEntries]UserID
	// ReverseSchedule[i] is the user assigned reverse data slot i;
	// NoUser marks a contention slot.
	ReverseSchedule [ReverseScheduleEntries]UserID
	// ForwardSchedule[i] is the user receiving forward data slot i.
	ForwardSchedule [ForwardScheduleEntries]UserID
	// ReverseACKs[i] acknowledges reverse data slot i of the previous
	// cycle.
	ReverseACKs [ReverseACKEntries]ReverseACK
	// Paging lists user IDs being paged.
	Paging [PagingEntries]UserID
}

// NewControlFields returns control fields with every entry unassigned.
func NewControlFields() *ControlFields {
	cf := &ControlFields{}
	for i := range cf.GPSSchedule {
		cf.GPSSchedule[i] = NoUser
	}
	for i := range cf.ReverseSchedule {
		cf.ReverseSchedule[i] = NoUser
	}
	for i := range cf.ForwardSchedule {
		cf.ForwardSchedule[i] = NoUser
	}
	for i := range cf.ReverseACKs {
		cf.ReverseACKs[i] = ReverseACK{User: NoUser}
	}
	for i := range cf.Paging {
		cf.Paging[i] = NoUser
	}
	return cf
}

// ActiveGPSUsers counts assigned GPS slots; mobiles derive the cycle
// format from this (paper §3.3: format 1 iff the count exceeds 3).
func (cf *ControlFields) ActiveGPSUsers() int {
	n := 0
	for _, u := range cf.GPSSchedule {
		if u != NoUser {
			n++
		}
	}
	return n
}

// ContentionSlots lists the reverse data-slot indices left unassigned,
// which subscribers may contend in.
func (cf *ControlFields) ContentionSlots() []int {
	var out []int
	for i, u := range cf.ReverseSchedule {
		if u == NoUser {
			out = append(out, i)
		}
	}
	return out
}

// ContentionSlotCount counts the unassigned reverse data slots without
// allocating: the hot-path form of len(ContentionSlots()).
func (cf *ControlFields) ContentionSlotCount() int {
	n := 0
	for _, u := range cf.ReverseSchedule {
		if u == NoUser {
			n++
		}
	}
	return n
}

// ControlFieldBytes is the marshaled control-field size: the information
// bytes of two RS codewords.
const ControlFieldBytes = phy.ControlFieldCodewords * phy.CodewordInfoBytes

// ControlFieldAirBytes is the on-air control-field size: two full RS
// codewords as produced by Codec.EncodeControlFields.
const ControlFieldAirBytes = phy.ControlFieldCodewords * phy.CodewordBytes

// Marshal packs the control fields into the information bytes of two RS
// codewords (96 bytes); the trailing reserved bits are zero. An entry
// that does not fit its field width (e.g. a user ID above 6 bits)
// returns ErrBadPacket.
func (cf *ControlFields) Marshal() ([]byte, error) {
	return cf.MarshalTo(nil)
}

// MarshalTo packs the control fields like Marshal but appends the 96
// information bytes to dst, so a reused buffer makes the steady-state
// encode allocation-free. Field widths are validated up front; the
// rare failure rebuilds the faithful wrapped error with a throwaway
// Writer off the hot path (a bitio.Writer over caller memory would
// force the buffer onto the heap — see bitio.PutBitsAt).
//
//lint:ignore codecpair UnmarshalControlFieldsInto is the round-trip counterpart; the analyzer pairs by name suffix only
func (cf *ControlFields) MarshalTo(dst []byte) ([]byte, error) {
	if !cf.fieldsInRange() {
		return nil, cf.marshalErr()
	}
	off := len(dst)
	for len(dst) < off+ControlFieldBytes {
		dst = append(dst, 0)
	}
	buf := dst[off:]
	for i := range buf {
		buf[i] = 0
	}
	nbit := 0
	for _, u := range cf.GPSSchedule {
		nbit = bitio.PutBitsAt(buf, nbit, uint64(u), UserIDBits)
	}
	for _, u := range cf.ReverseSchedule {
		nbit = bitio.PutBitsAt(buf, nbit, uint64(u), UserIDBits)
	}
	for _, u := range cf.ForwardSchedule {
		nbit = bitio.PutBitsAt(buf, nbit, uint64(u), UserIDBits)
	}
	for _, a := range cf.ReverseACKs {
		nbit = bitio.PutBitsAt(buf, nbit, uint64(a.User), UserIDBits)
		nbit = bitio.PutBitsAt(buf, nbit, uint64(a.EIN), EINBits)
	}
	for _, u := range cf.Paging {
		nbit = bitio.PutBitsAt(buf, nbit, uint64(u), UserIDBits)
	}
	return dst, nil
}

// fieldsInRange reports whether every entry fits its declared field
// width. EINs always fit their 16 bits; user IDs are 8-bit values in
// 6-bit fields.
func (cf *ControlFields) fieldsInRange() bool {
	for _, u := range cf.GPSSchedule {
		if u > NoUser {
			return false
		}
	}
	for _, u := range cf.ReverseSchedule {
		if u > NoUser {
			return false
		}
	}
	for _, u := range cf.ForwardSchedule {
		if u > NoUser {
			return false
		}
	}
	for _, a := range cf.ReverseACKs {
		if a.User > NoUser {
			return false
		}
	}
	for _, u := range cf.Paging {
		if u > NoUser {
			return false
		}
	}
	return true
}

// marshalErr reproduces the wrapped field-width error off the hot path,
// identical to what the strict Writer path has always reported.
func (cf *ControlFields) marshalErr() error {
	w := bitio.NewWriter(ControlFieldBytes * 8)
	for _, u := range cf.GPSSchedule {
		w.PutBits(uint64(u), UserIDBits)
	}
	for _, u := range cf.ReverseSchedule {
		w.PutBits(uint64(u), UserIDBits)
	}
	for _, u := range cf.ForwardSchedule {
		w.PutBits(uint64(u), UserIDBits)
	}
	for _, a := range cf.ReverseACKs {
		w.PutBits(uint64(a.User), UserIDBits)
		w.PutBits(uint64(a.EIN), EINBits)
	}
	for _, u := range cf.Paging {
		w.PutBits(uint64(u), UserIDBits)
	}
	return fmt.Errorf("%w: control fields: %w", ErrBadPacket, w.Err())
}

// UnmarshalControlFields parses the 96 information bytes of a
// control-field set.
func UnmarshalControlFields(b []byte) (*ControlFields, error) {
	cf := &ControlFields{}
	if err := UnmarshalControlFieldsInto(cf, b); err != nil {
		return nil, err
	}
	return cf, nil
}

// UnmarshalControlFieldsInto parses like UnmarshalControlFields but
// fills a caller-owned struct, so the hot path avoids the per-set
// allocation. After the length check no read can fail: the 630 field
// bits always fit the 96-byte buffer.
func UnmarshalControlFieldsInto(cf *ControlFields, b []byte) error {
	if len(b) != ControlFieldBytes {
		return fmt.Errorf("%w: control fields %d bytes, want %d", ErrBadLength, len(b), ControlFieldBytes)
	}
	nbit := 0
	var v uint64
	for i := range cf.GPSSchedule {
		v, nbit = bitio.TakeBitsAt(b, nbit, UserIDBits)
		cf.GPSSchedule[i] = UserID(v)
	}
	for i := range cf.ReverseSchedule {
		v, nbit = bitio.TakeBitsAt(b, nbit, UserIDBits)
		cf.ReverseSchedule[i] = UserID(v)
	}
	for i := range cf.ForwardSchedule {
		v, nbit = bitio.TakeBitsAt(b, nbit, UserIDBits)
		cf.ForwardSchedule[i] = UserID(v)
	}
	for i := range cf.ReverseACKs {
		v, nbit = bitio.TakeBitsAt(b, nbit, UserIDBits)
		cf.ReverseACKs[i].User = UserID(v)
		v, nbit = bitio.TakeBitsAt(b, nbit, EINBits)
		cf.ReverseACKs[i].EIN = EIN(v)
	}
	for i := range cf.Paging {
		v, nbit = bitio.TakeBitsAt(b, nbit, UserIDBits)
		cf.Paging[i] = UserID(v)
	}
	return nil
}
