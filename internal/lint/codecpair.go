package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CodecPair verifies the wire-format packages keep their codecs
// symmetric: every Encode*/Marshal* has a matching Decode*/Unmarshal*
// in the same package, and some test exercises both directions. An
// encoder without a decoder (or an untested pair) is how silent wire
// format drift starts.
var CodecPair = &Analyzer{
	Name: "codecpair",
	Doc:  "require a Decode*/Unmarshal* counterpart with round-trip test coverage for every Encode*/Marshal* in internal/frame and internal/bitio",
	Run:  runCodecPair,
}

// codecPairPackages are the wire-format packages held to the pairing
// rule.
var codecPairPackages = []string{
	"internal/frame",
	"internal/bitio",
}

func runCodecPair(pass *Pass) {
	scoped := false
	for _, suffix := range codecPairPackages {
		if pathHasSuffix(pass.Pkg.Path, suffix) {
			scoped = true
			break
		}
	}
	if !scoped || pass.Pkg.Info == nil {
		return
	}

	decoders := make(map[string]*ast.FuncDecl)
	var encoders []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := fd.Name.Name
			switch {
			case strings.HasPrefix(name, "Decode"), strings.HasPrefix(name, "Unmarshal"):
				decoders[name] = fd
			case strings.HasPrefix(name, "Encode"), strings.HasPrefix(name, "Marshal"):
				encoders = append(encoders, fd)
			}
		}
	}

	testRefs := testIdentifiers(pass.Pkg.TestFiles)
	for _, enc := range encoders {
		decName := findCounterpart(pass, enc, decoders)
		if decName == "" {
			pass.Reportf(enc.Pos(), "%s has no matching %s counterpart in the package",
				describeFunc(enc), counterpartPrefix(enc.Name.Name))
			continue
		}
		if !testRefs[enc.Name.Name] || !testRefs[decName] {
			pass.Reportf(enc.Pos(), "codec pair %s/%s has no round-trip test coverage (tests must reference both)",
				enc.Name.Name, decName)
		}
	}
}

// counterpartPrefix maps an encoder name to its decoder prefix.
func counterpartPrefix(name string) string {
	if strings.HasPrefix(name, "Encode") {
		return "Decode"
	}
	return "Unmarshal"
}

// findCounterpart resolves the decoder that balances enc, or "".
//
// Matching rules, in order:
//  1. Encode<X> pairs with Decode<X>, Marshal<X> with Unmarshal<X>.
//  2. A bare Marshal/Encode method on T pairs with Unmarshal<T>/Decode<T>.
//  3. Failing that, a bare method on T pairs with any Decode*/Unmarshal*
//     function whose results cover T — directly, behind a pointer, or as
//     a field of a returned struct (frame.UnmarshalPacket returning a
//     *Packet that carries a *DataPacket covers DataPacket.Marshal).
func findCounterpart(pass *Pass, enc *ast.FuncDecl, decoders map[string]*ast.FuncDecl) string {
	name := enc.Name.Name
	prefix := counterpartPrefix(name)
	base := strings.TrimPrefix(strings.TrimPrefix(name, "Encode"), "Marshal")
	if base != "" {
		if _, ok := decoders[prefix+base]; ok {
			return prefix + base
		}
		return ""
	}
	recv := receiverTypeName(enc)
	if recv == "" {
		return ""
	}
	if _, ok := decoders[prefix+recv]; ok {
		return prefix + recv
	}
	for decName, dec := range decoders {
		if decoderCovers(pass, dec, recv) {
			return decName
		}
	}
	return ""
}

// receiverTypeName extracts the receiver's type name, or "".
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// decoderCovers reports whether dec's results include typeName directly
// or as a struct field.
func decoderCovers(pass *Pass, dec *ast.FuncDecl, typeName string) bool {
	obj, ok := pass.Pkg.Info.Defs[dec.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := derefType(sig.Results().At(i).Type())
		if namedTypeName(t) == typeName {
			return true
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for j := 0; j < st.NumFields(); j++ {
				if namedTypeName(derefType(st.Field(j).Type())) == typeName {
					return true
				}
			}
		}
	}
	return false
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedTypeName returns the name of a named type, or "".
func namedTypeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// describeFunc renders a func decl for messages.
func describeFunc(fd *ast.FuncDecl) string {
	if recv := receiverTypeName(fd); recv != "" {
		return "(" + recv + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// testIdentifiers collects every identifier name referenced in the
// package's test files, used as the syntactic round-trip coverage
// signal.
func testIdentifiers(files []*ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				out[id.Name] = true
			}
			return true
		})
	}
	return out
}
