package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PanicFree flags panic calls reachable from a package's exported API.
// A reservation-TDMA cell must degrade, not crash: exported entry points
// return typed errors, and panics survive only on provably-unreachable
// branches carrying an explicit //lint:ignore panicfree justification.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "flag panic calls reachable from exported API paths in internal/ packages",
	Run:  runPanicFree,
}

func runPanicFree(pass *Pass) {
	if !pathContains(pass.Pkg.Path, "internal") || pass.Pkg.Info == nil {
		return
	}

	// One node per declared function; FuncLit bodies belong to their
	// enclosing declaration.
	type node struct {
		decl     *ast.FuncDecl
		callees  map[*types.Func]bool
		panics   []token.Pos
		exported bool
	}
	nodes := make(map[*types.Func]*node)
	var roots []*types.Func

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &node{decl: fd, callees: make(map[*types.Func]bool)}
			recv := receiverTypeName(fd)
			n.exported = fd.Name.IsExported() && (recv == "" || ast.IsExported(recv))
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					if isBuiltinPanic(pass, fun) {
						n.panics = append(n.panics, call.Pos())
					} else if callee := localFunc(pass, fun); callee != nil {
						n.callees[callee] = true
					}
				case *ast.SelectorExpr:
					if callee := localFunc(pass, fun.Sel); callee != nil {
						n.callees[callee] = true
					}
				}
				return true
			})
			nodes[obj] = n
			if n.exported {
				roots = append(roots, obj)
			}
		}
	}

	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })

	// For every exported root, walk the package-local call graph and
	// attribute each reachable panic site to the first root that reaches
	// it (deterministic by the sort above).
	reported := make(map[token.Pos]bool)
	type finding struct {
		pos  token.Pos
		root *types.Func
	}
	var findings []finding
	for _, root := range roots {
		seen := make(map[*types.Func]bool)
		stack := []*types.Func{root}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[fn] {
				continue
			}
			seen[fn] = true
			n := nodes[fn]
			if n == nil {
				continue
			}
			for _, pos := range n.panics {
				if !reported[pos] {
					reported[pos] = true
					findings = append(findings, finding{pos: pos, root: root})
				}
			}
			callees := make([]*types.Func, 0, len(n.callees))
			for c := range n.callees {
				callees = append(callees, c)
			}
			sort.Slice(callees, func(i, j int) bool { return callees[i].Name() < callees[j].Name() })
			stack = append(stack, callees...)
		}
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos, "panic reachable from exported %s; return a typed error or justify with //lint:ignore panicfree <reason>", f.root.Name())
	}
}

// isBuiltinPanic reports whether id resolves to the builtin panic.
func isBuiltinPanic(pass *Pass, id *ast.Ident) bool {
	if id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// localFunc resolves id to a function declared in the package under
// analysis, or nil.
func localFunc(pass *Pass, id *ast.Ident) *types.Func {
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != pass.Pkg.Types {
		return nil
	}
	return fn
}
