package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// globalStatePackages is the shard-readiness scope: packages that will
// run concurrently once ROADMAP item 1 lands shard-per-cell kernels.
// Package-level mutable state in any of them is a data race in waiting.
var globalStatePackages = []string{
	"internal/core",
	"internal/sched",
	"internal/sim",
	"internal/backbone",
}

// GlobalState forbids package-level mutable state in the packages on
// the sharding critical path. Allowed at package level: constants,
// blank compile-time assertions (var _ Iface = ...), and error
// sentinels (var ErrX = errors.New(...)) — provided the sentinel is
// never reassigned.
var GlobalState = &Analyzer{
	Name: "globalstate",
	Doc:  "forbid package-level mutable state and unsynchronized shared maps in shard-critical packages",
	Run:  runGlobalState,
}

func runGlobalState(pass *Pass) {
	if !inScope(pass.Pkg.Path, globalStatePackages) {
		return
	}
	info := pass.Pkg.Info

	// sentinels records the error-typed package vars declared in this
	// package so that reassignments can be flagged below.
	sentinels := make(map[types.Object]bool)

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // compile-time interface assertion
					}
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					t := obj.Type()
					if isErrorType(t) {
						sentinels[obj] = true
						continue
					}
					switch t.Underlying().(type) {
					case *types.Map:
						pass.Reportf(name.Pos(), "package-level map %s is unsynchronized shared state; move it onto the Network/Simulator instance", name.Name)
					default:
						pass.Reportf(name.Pos(), "package-level var %s is mutable shared state; use a const or move it onto an instance", name.Name)
					}
				}
			}
		}
	}

	// A sentinel is only allowed because it is write-once at init; any
	// later assignment reintroduces shared mutable state.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := info.Uses[id]; obj != nil && sentinels[obj] {
					pass.Reportf(as.Pos(), "reassignment of error sentinel %s; sentinels must be write-once", id.Name)
				}
			}
			return true
		})
	}
}

// inScope reports whether the package path ends with one of the scope
// suffixes.
func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}
