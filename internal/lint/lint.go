// Package lint implements osumaclint, the project-specific static
// analysis suite. OSU-MAC's correctness rests on invariants the compiler
// cannot see — deterministic scheduling, canonical protocol constants,
// symmetric encode/decode pairs, and panic-free exported APIs — so this
// package encodes them as checkable analyzers built only on the standard
// library (go/ast, go/parser, go/types).
//
// Findings can be suppressed with a directive on the offending line or
// the line above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without a justification is
// itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker. Exactly one of Run and
// RunProgram is set (or neither, for analyzers like suppressaudit that
// the driver implements directly): Run sees one package at a time;
// RunProgram sees the whole-program substrate and is invoked once per
// run regardless of how many packages were selected.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunProgram inspects the whole program (call graph, reachability)
	// and reports findings through the program pass.
	RunProgram func(*ProgramPass)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	analyzer *Analyzer
	out      *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ProgramPass carries one whole-program analyzer's view of the
// entire loaded universe.
type ProgramPass struct {
	Fset *token.FileSet
	Prog *Program

	analyzer *Analyzer
	out      *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the canonical
// "file:line:col: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		UncheckedErr,
		ConstDrift,
		CodecPair,
		PanicFree,
		HotPathAlloc,
		GlobalState,
		TraceExhaustive,
		SuppressAudit,
	}
}

// SuppressAudit reports //lint:ignore directives that no longer
// suppress any finding. It has no Run function: the driver implements
// it directly, because staleness is only decidable after every other
// analyzer has reported.
var SuppressAudit = &Analyzer{
	Name: "suppressaudit",
	Doc:  "report stale lint:ignore directives that no longer suppress any finding",
}

// ByName resolves a subset of analyzers by name.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	var out []*Analyzer
	for _, name := range names {
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run executes the analyzers over every package and returns the
// surviving (non-suppressed) diagnostics sorted by position. The
// packages serve as both the analysis universe and the reporting
// selection; drivers that load more than they report on should call
// RunUniverse directly.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunUniverse(fset, pkgs, pkgs, analyzers)
}

// RunUniverse executes per-package analyzers over the selected
// packages and whole-program analyzers over the full universe, then
// restricts the surviving diagnostics to files of the selected
// packages. Whole-program analyzers need the universe even when the
// user selected a subtree: traceexhaustive, for example, must see
// internal/span to judge constants declared in internal/core.
func RunUniverse(fset *token.FileSet, universe, selected []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic

	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram != nil && prog == nil {
			prog = NewProgram(fset, universe)
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Fset: fset, Prog: prog, analyzer: a, out: &diags}
		a.RunProgram(pass)
	}

	for _, pkg := range selected {
		if pkg.Types == nil && len(pkg.Files) > 0 {
			continue
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Fset: fset, Pkg: pkg, analyzer: a, out: &diags}
			a.Run(pass)
		}
		diags = append(diags, checkDirectives(fset, pkg)...)
	}

	diags, used := applySuppressions(fset, universe, diags)
	diags = filterToPackages(diags, selected)
	if analyzerEnabled(analyzers, "suppressaudit") {
		diags = append(diags, auditSuppressions(fset, selected, analyzers, used)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// filterToPackages keeps only diagnostics located in a selected
// package's directory.
func filterToPackages(diags []Diagnostic, selected []*Package) []Diagnostic {
	dirs := make(map[string]bool, len(selected))
	for _, pkg := range selected {
		dirs[pkg.Dir] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if dirs[filepath.Dir(d.File)] {
			out = append(out, d)
		}
	}
	return out
}

func analyzerEnabled(analyzers []*Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string // names, or ["*"] for all
	reason    string
	col       int // column of the directive comment, for audit reports
}

// directiveKey addresses one directive for used-tracking.
type directiveKey struct {
	file string
	line int
}

const directivePrefix = "//lint:ignore"

// parseDirective parses a //lint:ignore comment, reporting whether the
// comment is a directive at all and whether it is well-formed.
func parseDirective(text string) (d ignoreDirective, isDirective, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return d, false, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return d, true, false // missing analyzer or reason
	}
	d.analyzers = strings.Split(fields[0], ",")
	d.reason = strings.Join(fields[1:], " ")
	return d, true, true
}

// directivesByLine indexes every well-formed ignore directive in the
// package by file and line.
func directivesByLine(fset *token.FileSet, pkg *Package) map[string]map[int]ignoreDirective {
	out := make(map[string]map[int]ignoreDirective)
	files := append([]*ast.File{}, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, isDirective, ok := parseDirective(c.Text)
				if !isDirective || !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d.col = pos.Column
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]ignoreDirective)
				}
				out[pos.Filename][pos.Line] = d
			}
		}
	}
	return out
}

// checkDirectives reports malformed ignore directives (missing analyzer
// name or reason) as findings of the pseudo-analyzer "lintdirective".
func checkDirectives(fset *token.FileSet, pkg *Package) []Diagnostic {
	var out []Diagnostic
	files := append([]*ast.File{}, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, isDirective, ok := parseDirective(c.Text)
				if isDirective && !ok {
					pos := fset.Position(c.Pos())
					out = append(out, Diagnostic{
						Analyzer: "lintdirective",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
					})
				}
			}
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by an ignore directive on
// the same line or the immediately preceding line. It also returns the
// set of directives that matched at least one diagnostic, which is what
// suppressaudit judges staleness against.
func applySuppressions(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) ([]Diagnostic, map[directiveKey]bool) {
	index := make(map[string]map[int]ignoreDirective)
	for _, pkg := range pkgs {
		for file, lines := range directivesByLine(fset, pkg) {
			if index[file] == nil {
				index[file] = make(map[int]ignoreDirective)
			}
			for line, d := range lines {
				index[file][line] = d
			}
		}
	}
	matches := func(d ignoreDirective, analyzer string) bool {
		for _, name := range d.analyzers {
			if name == analyzer || name == "*" {
				return true
			}
		}
		return false
	}
	used := make(map[directiveKey]bool)
	out := diags[:0]
	for _, diag := range diags {
		lines := index[diag.File]
		suppressed := false
		if lines != nil && diag.Analyzer != "lintdirective" {
			if d, ok := lines[diag.Line]; ok && matches(d, diag.Analyzer) {
				suppressed = true
				used[directiveKey{diag.File, diag.Line}] = true
			}
			if d, ok := lines[diag.Line-1]; ok && matches(d, diag.Analyzer) {
				suppressed = true
				used[directiveKey{diag.File, diag.Line - 1}] = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out, used
}

// auditSuppressions implements the suppressaudit analyzer: it reports
// well-formed directives in the selected packages that name an unknown
// analyzer, and directives whose every named analyzer ran in this
// invocation yet which suppressed nothing. Directives naming
// suppressaudit itself are exempt from the staleness check (a
// directive cannot prove its own liveness), and "*" directives are
// only judged when the full suite ran.
func auditSuppressions(fset *token.FileSet, selected []*Package, analyzers []*Analyzer, used map[directiveKey]bool) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	known["lintdirective"] = true
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := len(analyzers) == len(All())

	var out []Diagnostic
	for _, pkg := range selected {
		for file, lines := range directivesByLine(fset, pkg) {
			for line, d := range lines {
				stale := true
				for _, name := range d.analyzers {
					switch {
					case name == "suppressaudit":
						stale = false
					case name == "*":
						if !fullSuite {
							stale = false
						}
					case !known[name]:
						out = append(out, Diagnostic{
							Analyzer: "suppressaudit",
							File:     file,
							Line:     line,
							Col:      d.col,
							Message:  fmt.Sprintf("lint:ignore names unknown analyzer %q", name),
						})
						stale = false
					case !ran[name]:
						stale = false
					}
				}
				if stale && !used[directiveKey{file, line}] {
					out = append(out, Diagnostic{
						Analyzer: "suppressaudit",
						File:     file,
						Line:     line,
						Col:      d.col,
						Message: fmt.Sprintf("stale lint:ignore %s directive suppresses nothing; remove it",
							strings.Join(d.analyzers, ",")),
					})
				}
			}
		}
	}
	return out
}

// pathHasSuffix reports whether an import path equals suffix or ends
// with "/"+suffix — the way analyzers scope themselves to packages so
// that both the real module tree and relative-path test fixtures match.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathContains reports whether the import path contains the given
// element sequence (e.g. "internal").
func pathContains(path, element string) bool {
	return path == element || strings.HasPrefix(path, element+"/") ||
		strings.Contains(path, "/"+element+"/") || strings.HasSuffix(path, "/"+element)
}
