// Package lint implements osumaclint, the project-specific static
// analysis suite. OSU-MAC's correctness rests on invariants the compiler
// cannot see — deterministic scheduling, canonical protocol constants,
// symmetric encode/decode pairs, and panic-free exported APIs — so this
// package encodes them as checkable analyzers built only on the standard
// library (go/ast, go/parser, go/types).
//
// Findings can be suppressed with a directive on the offending line or
// the line above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without a justification is
// itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	analyzer *Analyzer
	out      *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the canonical
// "file:line:col: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		UncheckedErr,
		ConstDrift,
		CodecPair,
		PanicFree,
	}
}

// ByName resolves a subset of analyzers by name.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	var out []*Analyzer
	for _, name := range names {
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run executes the analyzers over every package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Types == nil && len(pkg.Files) > 0 {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Fset: fset, Pkg: pkg, analyzer: a, out: &diags}
			a.Run(pass)
		}
		diags = append(diags, checkDirectives(fset, pkg)...)
	}
	diags = applySuppressions(fset, pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string // names, or ["*"] for all
	reason    string
}

const directivePrefix = "//lint:ignore"

// parseDirective parses a //lint:ignore comment, reporting whether the
// comment is a directive at all and whether it is well-formed.
func parseDirective(text string) (d ignoreDirective, isDirective, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return d, false, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return d, true, false // missing analyzer or reason
	}
	d.analyzers = strings.Split(fields[0], ",")
	d.reason = strings.Join(fields[1:], " ")
	return d, true, true
}

// directivesByLine indexes every well-formed ignore directive in the
// package by file and line.
func directivesByLine(fset *token.FileSet, pkg *Package) map[string]map[int]ignoreDirective {
	out := make(map[string]map[int]ignoreDirective)
	files := append([]*ast.File{}, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, isDirective, ok := parseDirective(c.Text)
				if !isDirective || !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]ignoreDirective)
				}
				out[pos.Filename][pos.Line] = d
			}
		}
	}
	return out
}

// checkDirectives reports malformed ignore directives (missing analyzer
// name or reason) as findings of the pseudo-analyzer "lintdirective".
func checkDirectives(fset *token.FileSet, pkg *Package) []Diagnostic {
	var out []Diagnostic
	files := append([]*ast.File{}, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, isDirective, ok := parseDirective(c.Text)
				if isDirective && !ok {
					pos := fset.Position(c.Pos())
					out = append(out, Diagnostic{
						Analyzer: "lintdirective",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
					})
				}
			}
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by an ignore directive on
// the same line or the immediately preceding line.
func applySuppressions(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	index := make(map[string]map[int]ignoreDirective)
	for _, pkg := range pkgs {
		for file, lines := range directivesByLine(fset, pkg) {
			if index[file] == nil {
				index[file] = make(map[int]ignoreDirective)
			}
			for line, d := range lines {
				index[file][line] = d
			}
		}
	}
	matches := func(d ignoreDirective, analyzer string) bool {
		for _, name := range d.analyzers {
			if name == analyzer || name == "*" {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, diag := range diags {
		lines := index[diag.File]
		suppressed := false
		if lines != nil && diag.Analyzer != "lintdirective" {
			if d, ok := lines[diag.Line]; ok && matches(d, diag.Analyzer) {
				suppressed = true
			}
			if d, ok := lines[diag.Line-1]; ok && matches(d, diag.Analyzer) {
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}

// pathHasSuffix reports whether an import path equals suffix or ends
// with "/"+suffix — the way analyzers scope themselves to packages so
// that both the real module tree and relative-path test fixtures match.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathContains reports whether the import path contains the given
// element sequence (e.g. "internal").
func pathContains(path, element string) bool {
	return path == element || strings.HasPrefix(path, element+"/") ||
		strings.Contains(path, "/"+element+"/") || strings.HasSuffix(path, "/"+element)
}
