package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc statically mirrors the AllocsPerRun guards: it flags
// allocation-inducing constructs in any function reachable — over the
// module-wide call graph, including dynamic dispatch through the
// tracing/channel/policy seams — from the steady-state roots below.
// Trace-gated code (branches that only run when a tracer is attached)
// and error-construction returns are exempt: the zero-alloc contract is
// measured with tracing off and valid inputs.
var HotPathAlloc = &Analyzer{
	Name:       "hotpathalloc",
	Doc:        "forbid allocation-inducing constructs in functions reachable from the zero-alloc hot-path roots",
	RunProgram: runHotPathAlloc,
}

// hotRoot names one zero-alloc entry point: package path suffix,
// receiver type name ("" for plain functions), function name.
type hotRoot struct{ pkg, recv, name string }

// hotRoots is the steady-state contract surface. Each present root has
// a matching AllocsPerRun guard; absent roots are skipped.
// Network.SimulationCycle is the compiled-cycle per-slot dispatcher
// (fast handlers only; the slow fallback handlers and per-cycle
// activation are deliberately outside — their allocations are
// amortized per cycle or per message, not per slot).
var hotRoots = []hotRoot{
	{"internal/rs", "Code", "EncodeTo"},
	{"internal/rs", "Code", "DecodeTo"},
	{"internal/frame", "Codec", "EncodePayloadTo"},
	{"internal/frame", "Codec", "DecodePayloadTo"},
	{"internal/frame", "Codec", "EncodeControlFieldsTo"},
	{"internal/frame", "Codec", "DecodeControlFieldsInto"},
	{"internal/frame", "ControlFields", "MarshalTo"},
	{"internal/frame", "", "UnmarshalControlFieldsInto"},
	{"internal/frame", "", "TransmitTo"},
	{"internal/core", "GPSSlotTable", "GrantSchedule"},
	{"internal/core", "Network", "trace"},
	{"internal/core", "Network", "traceD"},
	{"internal/core", "Network", "SimulationCycle"},
	{"internal/core", "compiledSource", "PeekAction"},
	{"internal/core", "Ring", "Trace"},
	{"internal/flight", "Recorder", "Trace"},
	{"internal/flight", "SampledTracer", "Trace"},
	{"internal/obs", "JSONLSink", "Trace"},
	{"internal/obs", "KindMask", "Has"},
	{"internal/baseline", "Cell", "trace"},
	{"internal/baseline", "Cell", "traceD"},
}

// fmtAllocFuncs are the fmt formatters that always allocate their
// result (and box their operands).
var fmtAllocFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
	"Appendf":  true,
}

func runHotPathAlloc(pass *ProgramPass) {
	prog := pass.Prog
	var roots []*FuncNode
	for _, r := range hotRoots {
		if node := prog.FuncNode(r.pkg, r.recv, r.name); node != nil {
			roots = append(roots, node)
		}
	}
	if len(roots) == 0 {
		return
	}
	owner := prog.ReachableFrom(roots)
	for _, node := range prog.Nodes() {
		root := owner[node]
		if root == nil {
			continue
		}
		checkHotFunc(pass, node, root)
	}
}

// checkHotFunc flags allocation sites in one hot function, skipping
// trace-gated regions and error-construction returns.
func checkHotFunc(pass *ProgramPass, node, root *FuncNode) {
	info := node.Pkg.Info
	from := root.String()
	report := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		pass.Reportf(pos, "%s on the hot path (reachable from %s)", msg, from)
	}
	flaggedLits := make(map[*ast.FuncLit]bool)

	ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if node.TraceGated(x.Pos()) || node.InErrorReturn(x.Pos()) {
			return false
		}
		switch n := x.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				flaggedLits[lit] = true
			}
		case *ast.FuncLit:
			if !flaggedLits[n] {
				report(n.Pos(), "function literal allocates a closure")
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates; reuse a scratch buffer")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			tv, ok := info.Types[n]
			if ok && tv.Type != nil && tv.Value == nil && isStringType(tv.Type) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkHotCall(pass, node, info, n, report)
		}
		return true
	})
}

// checkHotCall classifies one call expression in hot code.
func checkHotCall(pass *ProgramPass, node *FuncNode, info *types.Info, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	// Type conversions: string <-> []byte copies.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		if from != nil {
			if isStringType(to) && isByteSlice(from) {
				report(call.Pos(), "string([]byte) conversion allocates")
			} else if isByteSlice(to) && isStringType(from) {
				report(call.Pos(), "[]byte(string) conversion allocates")
			}
		}
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
			checkHotBuiltin(info, fun.Name, call, report)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
			report(call.Pos(), "fmt.%s allocates; gate it behind tracing() or precompute", fn.Name())
			return
		}
	}

	// Interface boxing: a concrete non-pointer argument passed to an
	// interface-typed parameter is copied to the heap.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil {
			continue // constants fold; untyped nil is free
		}
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
			continue // single-word values fit the interface directly
		}
		if isNilIdent(arg, info) {
			continue
		}
		report(arg.Pos(), "interface conversion boxes a %s value", tv.Type.String())
	}
}

// checkHotBuiltin flags the allocating builtins.
func checkHotBuiltin(info *types.Info, name string, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	switch name {
	case "new":
		report(call.Pos(), "new() allocates")
	case "make":
		if len(call.Args) == 0 {
			return
		}
		tv, ok := info.Types[call.Args[0]]
		if !ok || tv.Type == nil {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			report(call.Pos(), "make(map) allocates")
		case *types.Chan:
			report(call.Pos(), "make(chan) allocates")
		case *types.Slice:
			report(call.Pos(), "make([]T) allocates; reuse a scratch buffer")
		}
	case "append":
		if len(call.Args) == 0 {
			return
		}
		switch base := ast.Unparen(call.Args[0]).(type) {
		case *ast.CompositeLit:
			report(call.Pos(), "append to a fresh slice literal allocates every call")
		case *ast.CallExpr:
			report(call.Pos(), "append to a freshly built slice allocates every call")
		case *ast.Ident:
			if isNilIdent(base, info) {
				report(call.Pos(), "append to nil allocates every call")
			}
		}
	}
}

// callSignature resolves the signature of the called function, or nil
// for builtins and unresolvable callees.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}
