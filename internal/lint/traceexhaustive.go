package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TraceExhaustive keeps the trace-event vocabulary closed: every
// core.EventKind constant must (1) have a case in EventKind.String so
// ParseEventKind/UnmarshalText round-trip it, (2) be referenced by the
// span stitcher (handled or explicitly listed as ignored), and (3) be
// referenced by the conformance tracer. Without this, a newly added
// event compiles fine but silently falls out of span trees, autopsies,
// and conformance checking.
var TraceExhaustive = &Analyzer{
	Name:       "traceexhaustive",
	Doc:        "require every core.EventKind to be round-trippable and acknowledged by span.Stitch and the conformance tracer",
	RunProgram: runTraceExhaustive,
}

func runTraceExhaustive(pass *ProgramPass) {
	prog := pass.Prog
	corePkg := prog.PackageBySuffix("internal/core")
	if corePkg == nil {
		return
	}
	kindObj := corePkg.Types.Scope().Lookup("EventKind")
	if kindObj == nil {
		return
	}
	kindType := kindObj.Type()

	kinds := eventKindConstants(corePkg, kindType)
	if len(kinds) == 0 {
		return
	}

	inString := stringCaseConstants(corePkg, kindType)

	spanPkg := prog.PackageBySuffix("internal/span")
	confPkg := prog.PackageBySuffix("internal/conformance")

	for _, k := range kinds {
		if !inString[k.obj] {
			pass.Reportf(k.pos, "EventKind %s has no case in EventKind.String; ParseEventKind and UnmarshalText cannot round-trip it", k.obj.Name())
		}
		if spanPkg != nil && !referencesConst(spanPkg, k.obj) {
			pass.Reportf(k.pos, "EventKind %s is not handled by internal/span; add a Stitch case or list it in stitchIgnored", k.obj.Name())
		}
		if confPkg != nil && !referencesConst(confPkg, k.obj) {
			pass.Reportf(k.pos, "EventKind %s is not acknowledged by internal/conformance; add a Checker case or list it in checkerIgnored", k.obj.Name())
		}
	}
}

type kindConst struct {
	obj *types.Const
	pos token.Pos
}

// eventKindConstants returns the package's EventKind constants in
// declaration order.
func eventKindConstants(pkg *Package, kindType types.Type) []kindConst {
	var kinds []kindConst
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					c, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || !types.Identical(c.Type(), kindType) {
						continue
					}
					kinds = append(kinds, kindConst{obj: c, pos: name.Pos()})
				}
			}
		}
	}
	return kinds
}

// stringCaseConstants collects the EventKind constants that appear in a
// case clause inside the EventKind.String method.
func stringCaseConstants(pkg *Package, kindType types.Type) map[*types.Const]bool {
	covered := make(map[*types.Const]bool)
	decl := methodDecl(pkg, kindType, "String")
	if decl == nil || decl.Body == nil {
		return covered
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			id, ok := ast.Unparen(expr).(*ast.Ident)
			if !ok {
				continue
			}
			if c, ok := pkg.Info.Uses[id].(*types.Const); ok {
				covered[c] = true
			}
		}
		return true
	})
	return covered
}

// methodDecl finds the declaration of recvType's method by name.
func methodDecl(pkg *Package, recvType types.Type, name string) *ast.FuncDecl {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if types.Identical(t, recvType) {
				return fd
			}
		}
	}
	return nil
}

// referencesConst reports whether any non-test file of pkg uses the
// given constant.
func referencesConst(pkg *Package, c *types.Const) bool {
	for _, file := range pkg.Files {
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg.Info.Uses[id] == c {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
