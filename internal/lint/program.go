package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the whole-program analysis substrate (DESIGN.md §8): a
// module-wide call graph over every type-checked package plus a
// reachability query API. Per-package analyzers see one package at a
// time; program analyzers (Analyzer.RunProgram) see a Program and can
// follow a call three packages deep — which is what the zero-alloc
// hot-path and trace-exhaustiveness contracts need.

// dynamicInterfaceNames are the interfaces whose dynamic dispatch the
// call graph expands: a call through one of these adds an edge to every
// module method implementing it. They are the pluggable seams the
// simulation actually dispatches through on analyzed paths — the
// tracing hook, the channel error models, the reverse-slot scheduling
// policy, and the traffic size distributions. (Policy/ChannelModel are
// reserved names for the ROADMAP item 3 policy interface.)
var dynamicInterfaceNames = map[string]bool{
	"Tracer":           true,
	"ErrorModel":       true,
	"ReverseScheduler": true,
	"SizeDist":         true,
	"Policy":           true,
	"ChannelModel":     true,
}

// posInterval is a half-open [lo, hi) source range.
type posInterval struct{ lo, hi token.Pos }

func (iv posInterval) contains(p token.Pos) bool { return p >= iv.lo && p < iv.hi }

// CallEdge is one resolved call from a function body.
type CallEdge struct {
	// Callee is the target function.
	Callee *FuncNode
	// Pos is the call site.
	Pos token.Pos
	// Gated means the call only executes when tracing is enabled (it
	// sits in a trace-gated region, see gatedIntervals); gated edges are
	// excluded from hot-path reachability.
	Gated bool
	// Dynamic means the edge came from interface-method expansion rather
	// than a static call.
	Dynamic bool
}

// FuncNode is one declared function or method in the program.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls are the resolved outgoing edges, in source order.
	Calls []CallEdge

	gated     []posInterval // trace-gated regions of the body
	errReturn []posInterval // final (error) operands of error returns
}

// String renders a short human name like "core.Network.trace".
func (n *FuncNode) String() string {
	recv := receiverTypeName(n.Decl)
	if recv == "" {
		return n.Pkg.Types.Name() + "." + n.Obj.Name()
	}
	return n.Pkg.Types.Name() + "." + recv + "." + n.Obj.Name()
}

// TraceGated reports whether pos lies in a trace-gated region of the
// function: a branch that only runs when a tracer is attached. The
// steady-state allocation contract is measured with tracing disabled
// (the AllocsPerRun guards), so gated code is off the audited hot path.
func (n *FuncNode) TraceGated(pos token.Pos) bool {
	for _, iv := range n.gated {
		if iv.contains(pos) {
			return true
		}
	}
	return false
}

// InErrorReturn reports whether pos lies inside the error operand of a
// return statement whose function returns an error: constructing the
// error for a failed-validation exit is not steady-state work.
func (n *FuncNode) InErrorReturn(pos token.Pos) bool {
	for _, iv := range n.errReturn {
		if iv.contains(pos) {
			return true
		}
	}
	return false
}

// Program is the whole-program view over a loaded package universe.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	funcs map[*types.Func]*FuncNode
	nodes []*FuncNode // declaration order across packages
}

// NewProgram indexes every function declaration in pkgs and builds the
// call graph: static calls, calls through function literals (a literal
// belongs to its enclosing declaration), and dynamic dispatch through
// the dynamicInterfaceNames method sets.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	p := &Program{Fset: fset, Pkgs: pkgs, funcs: make(map[*types.Func]*FuncNode)}
	for _, pkg := range pkgs {
		if pkg.Info == nil || pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				p.funcs[obj] = node
				p.nodes = append(p.nodes, node)
			}
		}
	}
	impls := p.dynamicMethodTable()
	for _, node := range p.nodes {
		p.analyzeBody(node, impls)
	}
	return p
}

// Nodes returns every indexed function in deterministic (package load,
// then declaration) order.
func (p *Program) Nodes() []*FuncNode { return p.nodes }

// Node resolves a *types.Func to its node, or nil for functions without
// bodies in the loaded universe.
func (p *Program) Node(fn *types.Func) *FuncNode { return p.funcs[fn] }

// PackageBySuffix finds the loaded package whose import path matches
// suffix (module tree or fixture-relative), or nil.
func (p *Program) PackageBySuffix(suffix string) *Package {
	for _, pkg := range p.Pkgs {
		if pathHasSuffix(pkg.Path, suffix) {
			return pkg
		}
	}
	return nil
}

// FuncNode resolves a function by package path suffix, receiver type
// name ("" for plain functions), and name. Returns nil when absent —
// callers treat missing roots as "not built yet" rather than an error.
func (p *Program) FuncNode(pkgSuffix, recv, name string) *FuncNode {
	for _, node := range p.nodes {
		if node.Obj.Name() != name || !pathHasSuffix(node.Pkg.Path, pkgSuffix) {
			continue
		}
		if receiverTypeName(node.Decl) == recv {
			return node
		}
	}
	return nil
}

// ReachableFrom walks the call graph from roots (in order), skipping
// trace-gated edges, and returns for every reachable node the first
// root that reaches it. Iteration is deterministic: roots in the given
// order, edges in source order.
func (p *Program) ReachableFrom(roots []*FuncNode) map[*FuncNode]*FuncNode {
	owner := make(map[*FuncNode]*FuncNode)
	for _, root := range roots {
		if root == nil {
			continue
		}
		if _, seen := owner[root]; seen {
			continue
		}
		queue := []*FuncNode{root}
		owner[root] = root
		for len(queue) > 0 {
			node := queue[0]
			queue = queue[1:]
			for _, e := range node.Calls {
				if e.Gated {
					continue
				}
				if _, seen := owner[e.Callee]; seen {
					continue
				}
				owner[e.Callee] = root
				queue = append(queue, e.Callee)
			}
		}
	}
	return owner
}

// dynamicMethodTable maps each interface method of the dynamic
// interfaces to the module methods implementing it.
func (p *Program) dynamicMethodTable() map[*types.Func][]*FuncNode {
	var ifaces []*types.Interface
	for _, pkg := range p.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if !dynamicInterfaceNames[name] {
				continue
			}
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			ifaces = append(ifaces, iface)
		}
	}
	out := make(map[*types.Func][]*FuncNode)
	if len(ifaces) == 0 {
		return out
	}
	for _, pkg := range p.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			for _, iface := range ifaces {
				var recv types.Type
				switch {
				case types.Implements(named, iface):
					recv = named
				case types.Implements(ptr, iface):
					recv = ptr
				default:
					continue
				}
				for i := 0; i < iface.NumMethods(); i++ {
					m := iface.Method(i)
					obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
					impl, ok := obj.(*types.Func)
					if !ok {
						continue
					}
					node := p.funcs[impl]
					if node == nil {
						continue
					}
					seen := false
					for _, existing := range out[m] {
						if existing == node {
							seen = true
							break
						}
					}
					if !seen {
						out[m] = append(out[m], node)
					}
				}
			}
		}
	}
	return out
}

// analyzeBody computes a node's gated regions, error-return regions,
// and outgoing call edges.
func (p *Program) analyzeBody(node *FuncNode, impls map[*types.Func][]*FuncNode) {
	info := node.Pkg.Info
	node.gated = gatedIntervals(node.Decl.Body, info)
	node.errReturn = errorReturnIntervals(node.Decl, info)

	ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee, _ = info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = info.Uses[fun.Sel].(*types.Func)
		}
		if callee == nil {
			return true
		}
		gated := node.TraceGated(call.Pos())
		if target := p.funcs[callee]; target != nil {
			node.Calls = append(node.Calls, CallEdge{Callee: target, Pos: call.Pos(), Gated: gated})
			return true
		}
		// Interface method: expand through the dynamic method table.
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			for _, target := range impls[callee] {
				node.Calls = append(node.Calls, CallEdge{Callee: target, Pos: call.Pos(), Gated: gated, Dynamic: true})
			}
		}
		return true
	})
}

// gatedIntervals finds the trace-gated regions of a function body. Two
// shapes are recognized, both anchored on the tracing seam:
//
//	if x.tracing() { ... }        // body gated
//	if t != nil { ... }           // body gated (t of a dynamic iface type)
//	if t == nil { return }        // statements after the guard gated
//	if !x.tracing() { return }    // statements after the guard gated
func gatedIntervals(body *ast.BlockStmt, info *types.Info) []posInterval {
	var out []posInterval
	var scanList func(list []ast.Stmt)
	scanList = func(list []ast.Stmt) {
		for i, stmt := range list {
			ifStmt, ok := stmt.(*ast.IfStmt)
			if !ok {
				continue
			}
			switch {
			case tracingEnabledCond(ifStmt.Cond, info):
				out = append(out, posInterval{ifStmt.Body.Pos(), ifStmt.Body.End()})
			case tracingDisabledCond(ifStmt.Cond, info) && terminates(ifStmt.Body):
				if i+1 < len(list) {
					out = append(out, posInterval{list[i+1].Pos(), list[len(list)-1].End()})
				}
			}
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch n := x.(type) {
		case *ast.BlockStmt:
			scanList(n.List)
		case *ast.CaseClause:
			scanList(n.Body)
		case *ast.CommClause:
			scanList(n.Body)
		}
		return true
	})
	return out
}

// tracingEnabledCond matches `x.tracing()` and `t != nil` for t of a
// dynamic interface type.
func tracingEnabledCond(cond ast.Expr, info *types.Info) bool {
	cond = ast.Unparen(cond)
	if call, ok := cond.(*ast.CallExpr); ok {
		return isTracingCall(call, info)
	}
	if bin, ok := cond.(*ast.BinaryExpr); ok && bin.Op == token.NEQ {
		return dynamicIfaceNilCheck(bin, info)
	}
	return false
}

// tracingDisabledCond matches `!x.tracing()` and `t == nil`.
func tracingDisabledCond(cond ast.Expr, info *types.Info) bool {
	cond = ast.Unparen(cond)
	if un, ok := cond.(*ast.UnaryExpr); ok && un.Op == token.NOT {
		if call, ok := ast.Unparen(un.X).(*ast.CallExpr); ok {
			return isTracingCall(call, info)
		}
		return false
	}
	if bin, ok := cond.(*ast.BinaryExpr); ok && bin.Op == token.EQL {
		return dynamicIfaceNilCheck(bin, info)
	}
	return false
}

// isTracingCall matches a call to a nullary method named "tracing".
func isTracingCall(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "tracing" || len(call.Args) != 0 {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil
}

// dynamicIfaceNilCheck matches `expr <op> nil` where expr's type is one
// of the dynamic interfaces (in practice: the Tracer seam).
func dynamicIfaceNilCheck(bin *ast.BinaryExpr, info *types.Info) bool {
	expr := bin.X
	other := bin.Y
	if isNilIdent(other, info) {
		// expr <op> nil
	} else if isNilIdent(expr, info) {
		expr = bin.Y
	} else {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || !types.IsInterface(named) {
		return false
	}
	return dynamicInterfaceNames[named.Obj().Name()]
}

func isNilIdent(e ast.Expr, info *types.Info) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// terminates reports whether a block always exits the function (its
// last statement is a return or a panic call).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// errorReturnIntervals collects, for every return statement of every
// function (declaration and literals) whose final result is an error,
// the source range of the final returned operand.
func errorReturnIntervals(decl *ast.FuncDecl, info *types.Info) []posInterval {
	var out []posInterval
	errType := types.Universe.Lookup("error").Type()

	// funcStack tracks whether the innermost function returns an error.
	var collect func(body *ast.BlockStmt, returnsErr bool)
	collect = func(body *ast.BlockStmt, returnsErr bool) {
		ast.Inspect(body, func(x ast.Node) bool {
			switch n := x.(type) {
			case *ast.FuncLit:
				lit := false
				if sig, ok := info.Types[n].Type.(*types.Signature); ok {
					lit = finalResultIsError(sig, errType)
				}
				collect(n.Body, lit)
				return false
			case *ast.ReturnStmt:
				if returnsErr && len(n.Results) > 0 {
					last := n.Results[len(n.Results)-1]
					out = append(out, posInterval{last.Pos(), last.End()})
				}
			}
			return true
		})
	}
	returnsErr := false
	if obj, ok := info.Defs[decl.Name].(*types.Func); ok {
		if sig, ok := obj.Type().(*types.Signature); ok {
			returnsErr = finalResultIsError(sig, errType)
		}
	}
	collect(decl.Body, returnsErr)
	return out
}

func finalResultIsError(sig *types.Signature, errType types.Type) bool {
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), errType)
}
