package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden expected.txt files")

// goldenLoader is shared across the golden cases so the standard-library
// packages the fixtures import are type-checked once.
var goldenLoader = NewLoader()

// TestGolden runs one analyzer over a known-bad fixture tree and its
// clean twin, comparing the rendered diagnostics (paths relative to the
// fixture root) against testdata/src/<fixture>/expected.txt. Run with
// -update to rewrite the goldens.
func TestGolden(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer string
	}{
		{"determinism", "determinism"},
		{"determinism_clean", "determinism"},
		{"uncheckederr", "uncheckederr"},
		{"uncheckederr_clean", "uncheckederr"},
		{"constdrift", "constdrift"},
		{"constdrift_clean", "constdrift"},
		{"codecpair", "codecpair"},
		{"codecpair_clean", "codecpair"},
		{"panicfree", "panicfree"},
		{"panicfree_clean", "panicfree"},
		{"hotpathalloc", "hotpathalloc"},
		{"hotpathalloc_clean", "hotpathalloc"},
		{"globalstate", "globalstate"},
		{"globalstate_clean", "globalstate"},
		{"traceexhaustive", "traceexhaustive"},
		{"traceexhaustive_clean", "traceexhaustive"},
		{"suppressaudit", "determinism,suppressaudit"},
		{"suppressaudit_clean", "determinism,suppressaudit"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			root := filepath.Join("testdata", "src", tc.fixture)
			got := runFixture(t, root, tc.analyzer)
			goldenPath := filepath.Join(root, "expected.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// runFixture loads a fixture tree, runs the (comma-separated) analyzers,
// and renders the diagnostics with fixture-relative slash paths, one per
// line.
func runFixture(t *testing.T, root, analyzer string) string {
	t.Helper()
	analyzers, err := ByName(strings.Split(analyzer, ","))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := goldenLoader.Load(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", root)
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range Run(goldenLoader.Fset, pkgs, analyzers) {
		if rel, err := filepath.Rel(absRoot, d.File); err == nil {
			d.File = filepath.ToSlash(rel)
		}
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenSuppressionsHaveFindings guards the golden fixtures against
// rotting: each bad fixture must contain a suppressed site, proving the
// suppression path is exercised and not just trivially empty.
func TestGoldenSuppressionsHaveFindings(t *testing.T) {
	for _, fixture := range []string{"determinism", "uncheckederr", "constdrift", "panicfree",
		"hotpathalloc", "globalstate", "traceexhaustive"} {
		root := filepath.Join("testdata", "src", fixture)
		found := false
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if strings.Contains(string(data), "//lint:ignore "+fixture+" ") {
				found = true
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Errorf("fixture %s has no //lint:ignore %s suppression to exercise", fixture, fixture)
		}
	}
}
