package lint

import (
	"go/ast"
	"go/types"
)

// determinismPackages are the package path suffixes where wall-clock
// time, ambient randomness, and racy channel selection are forbidden:
// the simulation must replay bit-identically from a seed, so all time
// flows from the virtual clock and all randomness from internal/sim's
// forkable RNG (see internal/sim/rng.go).
var determinismPackages = []string{
	"internal/core",
	"internal/sched",
	"internal/sim",
	"internal/backbone",
	"internal/traffic",
}

// randConstructors are the math/rand functions that build explicit
// generators rather than consuming the ambient global source. They are
// still discouraged, but only the global top-level functions silently
// couple the simulation to process-wide state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// wallClockWaits are the time-package functions that block on (or fire
// from) the process's wall clock. The sharded backbone engine runs real
// goroutines, so a stray sleep or timer would couple barrier timing to
// host scheduling; all waiting must go through channel receives and
// WaitGroup barriers whose ordering the coordinator pins.
var wallClockWaits = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Determinism forbids wall-clock and ambient-randomness escapes in the
// scheduling-critical packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, wall-clock waits, global math/rand, and multi-case selects in core, sched, sim, backbone, traffic",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	scoped := false
	for _, suffix := range determinismPackages {
		if pathHasSuffix(pass.Pkg.Path, suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.Pkg.Info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					return true // methods are fine; only package-level funcs escape
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" {
						pass.Reportf(n.Pos(), "time.Now breaks simulation determinism; use the virtual clock (sim.Simulator.Now)")
					}
					if wallClockWaits[fn.Name()] {
						pass.Reportf(n.Pos(), "time.%s waits on the wall clock; simulation code must wait on virtual-clock events or pinned channel/WaitGroup barriers", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[fn.Name()] {
						pass.Reportf(n.Pos(), "global %s.%s uses ambient process randomness; derive a stream from internal/sim.RNG instead", fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.SelectStmt:
				if n.Body != nil && len(n.Body.List) > 1 {
					pass.Reportf(n.Pos(), "select with %d cases has nondeterministic case ordering; simulation code must use deterministic dispatch", len(n.Body.List))
				}
			}
			return true
		})
	}
}
