package lint

import (
	"path/filepath"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text        string
		isDirective bool
		ok          bool
		analyzers   []string
		reason      string
	}{
		{"// ordinary comment", false, false, nil, ""},
		{"//lint:ignore panicfree documented precondition", true, true, []string{"panicfree"}, "documented precondition"},
		{"//lint:ignore determinism,constdrift shared reason here", true, true, []string{"determinism", "constdrift"}, "shared reason here"},
		{"//lint:ignore * everything justified", true, true, []string{"*"}, "everything justified"},
		{"//lint:ignore panicfree", true, false, nil, ""},
		{"//lint:ignore", true, false, nil, ""},
	}
	for _, tc := range cases {
		d, isDirective, ok := parseDirective(tc.text)
		if isDirective != tc.isDirective || ok != tc.ok {
			t.Errorf("parseDirective(%q) = (directive=%v, ok=%v), want (%v, %v)",
				tc.text, isDirective, ok, tc.isDirective, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(d.analyzers) != len(tc.analyzers) {
			t.Errorf("parseDirective(%q) analyzers = %v, want %v", tc.text, d.analyzers, tc.analyzers)
			continue
		}
		for i := range d.analyzers {
			if d.analyzers[i] != tc.analyzers[i] {
				t.Errorf("parseDirective(%q) analyzers = %v, want %v", tc.text, d.analyzers, tc.analyzers)
			}
		}
		if d.reason != tc.reason {
			t.Errorf("parseDirective(%q) reason = %q, want %q", tc.text, d.reason, tc.reason)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	if !pathHasSuffix("github.com/osu-netlab/osumac/internal/phy", "internal/phy") {
		t.Error("module path should match internal/phy suffix")
	}
	if !pathHasSuffix("internal/phy", "internal/phy") {
		t.Error("fixture-relative path should match itself")
	}
	if pathHasSuffix("internal/physics", "internal/phy") {
		t.Error("internal/physics must not match internal/phy")
	}
	if !pathContains("github.com/osu-netlab/osumac/internal/core", "internal") {
		t.Error("module path should contain internal element")
	}
	if pathContains("myinternal/core", "internal") {
		t.Error("myinternal must not match the internal element")
	}
}

func TestByName(t *testing.T) {
	all, err := ByName(nil)
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(nil) = %d analyzers, err %v; want the full suite", len(all), err)
	}
	subset, err := ByName([]string{"panicfree"})
	if err != nil || len(subset) != 1 || subset[0].Name != "panicfree" {
		t.Fatalf("ByName(panicfree) = %v, err %v", subset, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName should reject unknown analyzer names")
	}
}

func TestLoadPatterns(t *testing.T) {
	root := filepath.Join("testdata", "src", "constdrift")
	loader := NewLoader()

	all, err := loader.Load(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("default pattern loaded %d packages, want 2", len(all))
	}

	one, err := loader.Load(root, []string{"./internal/phy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Path != "internal/phy" {
		t.Fatalf("single-package pattern selected %v", pkgPaths(one))
	}

	tree, err := loader.Load(root, []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 2 {
		t.Fatalf("subtree pattern selected %v", pkgPaths(tree))
	}
}

func pkgPaths(pkgs []*Package) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.Path
	}
	return out
}
