package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ConstDrift cross-checks the paper's protocol constants against their
// canonical declarations and flags re-declared magic numbers. The
// canonical table below is the single source of truth for the values in
// paper Table 1 and §3.3–3.4; every other package must reference the
// named constants instead of repeating the numbers.
var ConstDrift = &Analyzer{
	Name: "constdrift",
	Doc:  "cross-check protocol constants against the canonical table and flag re-declared magic numbers",
	Run:  runConstDrift,
}

// canonicalConst pins one declared protocol constant to its paper value.
type canonicalConst struct {
	pkg   string // path suffix of the owning package
	name  string
	value int64
	cite  string // where the paper states it
}

// canonicalTable is the authoritative protocol constant set: the
// 8-slot/8-slot format 1 and 3+9 format 2 reverse cycles, the RS(64,48)
// code, the 72-bit GPS packet, and the slot/cycle symbol budgets that
// yield δ = 0.30125 s and the 3.984375 s cycle.
var canonicalTable = []canonicalConst{
	{"internal/phy", "ForwardSymbolRate", 3200, "Table 1"},
	{"internal/phy", "ReverseSymbolRate", 2400, "Table 1"},
	{"internal/phy", "Format1GPSSlots", 8, "§3.3 format 1"},
	{"internal/phy", "Format1DataSlots", 8, "§3.3 format 1"},
	{"internal/phy", "Format2GPSSlots", 3, "§3.3 format 2"},
	{"internal/phy", "Format2DataSlots", 9, "§3.3 format 2"},
	{"internal/phy", "MaxGPSUsers", 8, "§2.1"},
	{"internal/phy", "MaxDataUsers", 64, "§3.1"},
	{"internal/phy", "GPSPacketInfoBits", 72, "§2.1 (72-bit GPS packet)"},
	{"internal/phy", "ForwardDataSlots", 37, "§3.4 (N=37)"},
	{"internal/phy", "RegularSlotSymbols", 969, "Table 1 (600+300+51+18)"},
	{"internal/phy", "GPSSlotSymbols", 210, "Table 1 (64+128+18)"},
	{"internal/phy", "ForwardCycleSymbols", 12750, "§3.4 (3.984375 s at 3200 sym/s)"},
	{"internal/phy", "CodewordInfoBits", 384, "Table 1, RS(64,48) payload"},
	{"internal/phy", "CodewordBits", 512, "Table 1, RS(64,48) codeword"},
	{"internal/rs", "PaperN", 64, "Table 1, RS(64,48)"},
	{"internal/rs", "PaperK", 48, "Table 1, RS(64,48)"},
	{"internal/frame", "GPSScheduleEntries", 8, "Fig. 2 (8 GPS slots)"},
	{"internal/frame", "ReverseScheduleEntries", 9, "Fig. 2 (M=9)"},
	{"internal/frame", "ForwardScheduleEntries", 37, "Fig. 2 (N=37)"},
	{"internal/frame", "ControlFieldBits", 630, "§3.4 (630-bit control fields)"},
	{"internal/frame", "ControlFieldReservedBits", 138, "§3.4 (138 reserved bits)"},
	{"internal/frame", "UserIDBits", 6, "§3.1 (6-bit user ID)"},
	{"internal/frame", "EINBits", 16, "§3.1 (16-bit EIN)"},
}

// magicInts maps protocol-distinctive integer values to the canonical
// constant that must be referenced instead. Only values unlikely to
// occur innocently are listed; ubiquitous small numbers (8, 9, 48, 64)
// are enforced through the declaration checks above instead.
var magicInts = map[int64]string{
	969:       "phy.RegularSlotSymbols",
	12750:     "phy.ForwardCycleSymbols",
	630:       "frame.ControlFieldBits",
	138:       "frame.ControlFieldReservedBits",
	301250000: "phy.ReverseShift (δ in nanoseconds)",
}

// magicFloats maps distinctive float values to canonical derivations.
var magicFloats = map[float64]string{
	0.30125:  "phy.ReverseShift (δ = 0.30125 s)",
	3.984375: "phy.CycleLength (3.984375 s)",
}

func runConstDrift(pass *Pass) {
	checkCanonicalDecls(pass)
	checkMagicLiterals(pass)
}

// checkCanonicalDecls verifies that a package owning canonical constants
// still declares every one of them with the paper's value.
func checkCanonicalDecls(pass *Pass) {
	if pass.Pkg.Types == nil {
		return
	}
	for _, c := range canonicalTable {
		if !pathHasSuffix(pass.Pkg.Path, c.pkg) {
			continue
		}
		obj := pass.Pkg.Types.Scope().Lookup(c.name)
		if obj == nil {
			pos := pass.Pkg.Types.Scope().Pos()
			if len(pass.Pkg.Files) > 0 {
				pos = pass.Pkg.Files[0].Pos()
			}
			pass.Reportf(pos, "canonical constant %s (paper %s) is not declared in %s", c.name, c.cite, c.pkg)
			continue
		}
		konst, ok := obj.(*types.Const)
		if !ok {
			pass.Reportf(obj.Pos(), "canonical name %s must be a constant (paper %s)", c.name, c.cite)
			continue
		}
		got, exact := constant.Int64Val(constant.ToInt(konst.Val()))
		if !exact || got != c.value {
			pass.Reportf(obj.Pos(), "canonical constant %s = %v drifted from the paper's %d (%s)", c.name, konst.Val(), c.value, c.cite)
		}
	}
}

// checkMagicLiterals flags protocol-distinctive numeric literals outside
// the package that canonically defines them.
func checkMagicLiterals(pass *Pass) {
	for _, c := range canonicalTable {
		if pathHasSuffix(pass.Pkg.Path, c.pkg) {
			return // the defining packages may spell their own values
		}
	}
	if pathHasSuffix(pass.Pkg.Path, "internal/lint") {
		return // this table
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok {
				return true
			}
			v := constant.MakeFromLiteral(lit.Value, lit.Kind, 0)
			switch v.Kind() {
			case constant.Int:
				if i, exact := constant.Int64Val(v); exact {
					if want, hit := magicInts[i]; hit {
						pass.Reportf(lit.Pos(), "magic protocol constant %s; reference %s instead", lit.Value, want)
					}
				}
			case constant.Float:
				if fv, _ := constant.Float64Val(v); fv != 0 {
					if want, hit := magicFloats[fv]; hit {
						pass.Reportf(lit.Pos(), "magic protocol constant %s; reference %s instead", lit.Value, want)
					}
				}
			}
			return true
		})
	}
}
