// Package core is a known-bad determinism fixture: it leaks wall-clock
// time, consumes ambient randomness, and races on channel selection.
package core

import (
	"math/rand"
	"time"
)

// Stamp leaks wall-clock time into the schedule.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter consumes the ambient global randomness source.
func Jitter() int { return rand.Intn(8) }

// Seeded builds an explicit generator, which is allowed.
func Seeded() *rand.Rand { return rand.New(rand.NewSource(1)) }

// Nap blocks simulation progress on the wall clock.
func Nap() { time.Sleep(time.Millisecond) }

// Deadline arms a wall-clock timer channel.
func Deadline() <-chan time.Time { return time.After(time.Second) }

// Race selects between two channels nondeterministically.
func Race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Allowed carries a justified suppression and must stay silent.
func Allowed() time.Time {
	//lint:ignore determinism fixture: wall clock allowed to test suppressions
	return time.Now()
}

// Malformed carries an ignore directive with no reason, which is itself
// a finding of the lintdirective pseudo-analyzer.
func Malformed() int {
	//lint:ignore determinism
	return 0
}
