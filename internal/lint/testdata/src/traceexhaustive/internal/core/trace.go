// Package core is a known-bad fixture for the traceexhaustive
// analyzer: EventGPSRx is unknown to the span stitcher, EventCollision
// is missing both its String case and a conformance reference, and
// EventPageResponse's gaps are suppressed.
package core

// EventKind classifies trace events.
type EventKind int

// Trace event kinds.
const (
	EventCycleStart EventKind = iota + 1
	EventDataRx
	EventGPSRx
	EventCollision
	//lint:ignore traceexhaustive experimental kind pending stitcher and conformance support
	EventPageResponse
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCycleStart:
		return "cycle-start"
	case EventDataRx:
		return "data-rx"
	case EventGPSRx:
		return "gps-rx"
	case EventPageResponse:
		return "page-response"
	default:
		return "unknown"
	}
}
