// Package span handles a subset of the event kinds; the analyzer must
// notice the ones it neither handles nor lists as ignored.
package span

import "internal/core"

// Stitch counts the kinds the stitcher understands.
func Stitch(kinds []core.EventKind) int {
	n := 0
	for _, k := range kinds {
		switch k {
		case core.EventCycleStart, core.EventDataRx, core.EventCollision:
			n++
		}
	}
	return n
}
