// Package conformance acknowledges a subset of the event kinds; the
// analyzer must notice the missing ones.
package conformance

import "internal/core"

// Check accepts only the kinds the checker knows about.
func Check(kinds []core.EventKind) bool {
	for _, k := range kinds {
		switch k {
		case core.EventCycleStart, core.EventDataRx, core.EventGPSRx:
		default:
			return false
		}
	}
	return true
}
