// Package sched is a known-bad constdrift fixture: it re-spells
// protocol-distinctive values instead of referencing the canonical
// constants.
package sched

// slotBudget re-declares the regular slot symbol count.
const slotBudget = 969

// delta re-spells the reverse shift in seconds.
var delta = 0.30125

// cycleSymbols carries a justified suppression and must stay silent.
//
//lint:ignore constdrift fixture: documenting the raw value on purpose
const cycleSymbols = 12750
