// Package phy is a known-bad constdrift fixture: one canonical constant
// has drifted from the paper's value and one is missing entirely.
package phy

const (
	ForwardSymbolRate   = 3200
	ReverseSymbolRate   = 2400
	Format1GPSSlots     = 8
	Format1DataSlots    = 8
	Format2GPSSlots     = 4 // drifted from the paper's 3
	Format2DataSlots    = 9
	MaxGPSUsers         = 8
	MaxDataUsers        = 64
	GPSPacketInfoBits   = 72
	ForwardDataSlots    = 37
	RegularSlotSymbols  = 969
	GPSSlotSymbols      = 210
	ForwardCycleSymbols = 12750
	CodewordInfoBits    = 384
	// CodewordBits is deliberately missing.
)
