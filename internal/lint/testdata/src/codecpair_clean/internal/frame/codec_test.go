package frame

import "testing"

// TestFlagRoundTrip covers the EncodeFlag/DecodeFlag pair.
func TestFlagRoundTrip(t *testing.T) {
	if !DecodeFlag(EncodeFlag(true)) {
		t.Fatal("flag round trip lost the value")
	}
}

// TestPairRoundTrip covers (*Body).Marshal through UnmarshalPair.
func TestPairRoundTrip(t *testing.T) {
	b := &Body{N: 9}
	got, err := UnmarshalPair(b.Marshal())
	if err != nil || got.Body.N != 9 {
		t.Fatalf("pair round trip: %v, %v", got, err)
	}
}
