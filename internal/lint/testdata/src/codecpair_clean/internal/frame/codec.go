// Package frame is a known-clean codecpair fixture: every encoder has a
// decoder and the test file exercises both directions.
package frame

// EncodeFlag packs a boolean into one byte.
func EncodeFlag(b bool) []byte {
	if b {
		return []byte{1}
	}
	return []byte{0}
}

// DecodeFlag unpacks EncodeFlag's output.
func DecodeFlag(p []byte) bool { return len(p) > 0 && p[0] != 0 }

// Pair is a decoded container covering the Body type.
type Pair struct{ Body *Body }

// Body is a payload reached only through Pair.
type Body struct{ N byte }

// Marshal emits the body; UnmarshalPair covers Body through a struct
// field, exercising the field-coverage matching rule.
func (b *Body) Marshal() []byte { return []byte{b.N} }

// UnmarshalPair decodes a container holding a Body.
func UnmarshalPair(p []byte) (*Pair, error) {
	return &Pair{Body: &Body{N: p[0]}}, nil
}
