// Package sched is a known-clean constdrift fixture: no protocol values
// are re-spelled.
package sched

// SlotsPerCycle is an innocuous small number, not a protocol constant.
const SlotsPerCycle = 16
