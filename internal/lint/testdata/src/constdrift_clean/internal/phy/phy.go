// Package phy is a known-clean constdrift fixture: every canonical
// constant is declared with the paper's value.
package phy

const (
	ForwardSymbolRate   = 3200
	ReverseSymbolRate   = 2400
	Format1GPSSlots     = 8
	Format1DataSlots    = 8
	Format2GPSSlots     = 3
	Format2DataSlots    = 9
	MaxGPSUsers         = 8
	MaxDataUsers        = 64
	GPSPacketInfoBits   = 72
	ForwardDataSlots    = 37
	RegularSlotSymbols  = 969
	GPSSlotSymbols      = 210
	ForwardCycleSymbols = 12750
	CodewordInfoBits    = 384
	CodewordBits        = 512
)
