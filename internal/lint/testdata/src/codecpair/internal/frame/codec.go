// Package frame is a known-bad codecpair fixture: one encoder has no
// decoder and one pair lacks round-trip test coverage.
package frame

// Thing is a one-byte wire value.
type Thing struct{ V byte }

// EncodeThing has no DecodeThing counterpart.
func EncodeThing(t Thing) []byte { return []byte{t.V} }

// MarshalWord pairs with UnmarshalWord, but no test references them.
func MarshalWord(v uint16) []byte { return []byte{byte(v >> 8), byte(v)} }

// UnmarshalWord decodes MarshalWord's output.
func UnmarshalWord(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }

// Header is a framed header.
type Header struct{ Len byte }

// Marshal emits the header; UnmarshalHeader balances it and the test
// file references both, so this pair must stay silent.
func (h *Header) Marshal() []byte { return []byte{h.Len} }

// UnmarshalHeader parses a header.
func UnmarshalHeader(b []byte) (*Header, error) { return &Header{Len: b[0]}, nil }
