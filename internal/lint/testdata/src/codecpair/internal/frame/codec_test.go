package frame

import "testing"

// TestHeaderRoundTrip references Marshal and UnmarshalHeader, giving the
// Header pair its round-trip coverage.
func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{Len: 7}
	got, err := UnmarshalHeader(h.Marshal())
	if err != nil || got.Len != 7 {
		t.Fatalf("round trip: %v, %v", got, err)
	}
}
