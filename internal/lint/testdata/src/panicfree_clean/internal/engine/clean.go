// Package engine is a known-clean panicfree fixture: exported entry
// points return typed errors instead of panicking.
package engine

import "errors"

// ErrOddAlignment reports a misaligned request.
var ErrOddAlignment = errors.New("engine: odd alignment")

// Start validates and reports failures as errors.
func Start() error { return align(3) }

func align(n int) error {
	if n%2 != 0 {
		return ErrOddAlignment
	}
	return nil
}
