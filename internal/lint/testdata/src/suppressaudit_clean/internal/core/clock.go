// Package core is the clean twin of the suppressaudit fixture: every
// directive either suppresses a real finding or names suppressaudit
// itself.
package core

import "time"

// bootTime really does trip determinism; its directive is live.
//
//lint:ignore determinism fixture exercises a live suppression of a real finding
var bootTime = time.Now()

//lint:ignore suppressaudit directives naming suppressaudit are exempt from staleness
var formatCount = 3

// Uptime keeps the fixture's declarations referenced.
func Uptime() time.Duration {
	return time.Since(bootTime) * time.Duration(formatCount)
}
