// Package core is a known-bad fixture for the globalstate analyzer:
// package-level mutable state, an unsynchronized shared map, and a
// reassigned error sentinel, alongside the allowed forms (constants,
// sentinels, blank assertions) and one suppressed site.
package core

import "errors"

// ErrOverflow is a write-once error sentinel: allowed.
var ErrOverflow = errors.New("core: queue overflow")

// cache is an unsynchronized shared map: flagged.
var cache = map[string]int{}

// cycleCount is package-level mutable state: flagged.
var cycleCount int

//lint:ignore globalstate registry is populated once during init and read-only afterwards
var registry = map[int]string{}

// slotCount is a constant: allowed.
const slotCount = 16

// Network keeps its state on the instance, as the shard contract wants.
type Network struct{ users int }

var _ interface{ grow() } = (*Network)(nil)

func (n *Network) grow() { n.users++ }

func reset() {
	cycleCount = 0
	ErrOverflow = errors.New("core: replaced")
}
