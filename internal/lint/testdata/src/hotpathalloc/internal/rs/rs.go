// Package rs is a known-bad fixture for the hotpathalloc analyzer: it
// mirrors the real codec's shape (Code.EncodeTo is a hot root) and
// plants allocation sites both directly in the root and in a helper
// reachable through the call graph, plus gated, error-return, and
// suppressed sites that must NOT be reported.
package rs

import "fmt"

// Code mirrors the real RS codec shape.
type Code struct {
	debug   bool
	scratch []byte
}

func (c *Code) tracing() bool { return c.debug }

// EncodeTo is a hot root named in the analyzer's root table.
func (c *Code) EncodeTo(dst, src []byte) error {
	if len(dst) < len(src) {
		// Error construction is exempt: the zero-alloc contract covers
		// valid inputs only.
		return fmt.Errorf("rs: dst %d shorter than src %d", len(dst), len(src))
	}
	label := "block-" + fmt.Sprint(len(src))
	_ = label
	out := append([]byte{}, src...)
	_ = out
	sink(len(src))
	if c.tracing() {
		// Gated behind tracing(): off the steady-state path.
		note := fmt.Sprintf("encode %d bytes", len(src))
		_ = note
	}
	c.mix(src)
	//lint:ignore hotpathalloc scratch table is rebuilt only on parameter change, amortized across runs
	c.scratch = make([]byte, 256)
	copy(dst, src)
	return nil
}

// sink's any parameter boxes every concrete argument it is handed.
func sink(v any) { _ = v }

// mix is reachable from EncodeTo, so its allocations are hot too.
func (c *Code) mix(src []byte) {
	seen := map[int]int{}
	for i, b := range src {
		seen[int(b)] = i
	}
}

// debugDump is NOT reachable from any root: its allocations are fine.
func (c *Code) debugDump() string {
	return fmt.Sprintf("scratch=%v", c.scratch)
}
