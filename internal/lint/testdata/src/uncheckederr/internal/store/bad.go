// Package store is a known-bad uncheckederr fixture: several calls drop
// their error results on the floor.
package store

import (
	"errors"
	"fmt"
	"os"
)

// ErrFull reports an exhausted store.
var ErrFull = errors.New("store: full")

func put(b byte) error {
	if b == 0 {
		return ErrFull
	}
	return nil
}

// Fill drops put's error result.
func Fill() {
	put(1)
}

// Remove drops os.Remove's error.
func Remove(path string) {
	os.Remove(path)
}

// Report uses an exempt terminal-print callee and must stay silent.
func Report() {
	fmt.Println("ok")
}

// Checked handles its error and must stay silent.
func Checked() error {
	if err := put(2); err != nil {
		return err
	}
	return nil
}

// Quiet suppresses the drop with a justification.
func Quiet() {
	//lint:ignore uncheckederr fixture: best-effort cleanup
	put(3)
}
