// Package engine is a known-bad panicfree fixture: a panic is reachable
// from an exported entry point through two levels of helpers.
package engine

// Start is an exported entry point whose helpers can panic.
func Start() { step() }

func step() { mustAlign(3) }

func mustAlign(n int) {
	if n%2 != 0 {
		panic("engine: odd alignment")
	}
}

// probe panics but is unreachable from any exported function, so it
// must stay silent.
func probe() { panic("engine: probe") }

// guard has an exported method on an unexported type, which is not an
// exported root.
type guard struct{}

// Check panics but cannot be reached through the exported API.
func (guard) Check() { panic("engine: guard") }

// Reset panics on a documented impossible state and is justified.
func Reset() {
	//lint:ignore panicfree fixture: impossible state, justified suppression
	panic("engine: reset")
}
