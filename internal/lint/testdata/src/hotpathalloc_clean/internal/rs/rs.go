// Package rs is the clean twin of the hotpathalloc fixture: the hot
// root and everything it reaches are allocation-free, with formatting
// confined to trace-gated branches and error returns.
package rs

import "fmt"

// Code mirrors the real RS codec shape.
type Code struct {
	debug   bool
	scratch [256]byte
}

func (c *Code) tracing() bool { return c.debug }

// EncodeTo is a hot root named in the analyzer's root table.
func (c *Code) EncodeTo(dst, src []byte) error {
	if len(dst) < len(src) {
		return fmt.Errorf("rs: dst %d shorter than src %d", len(dst), len(src))
	}
	n := c.mix(dst, src)
	if c.tracing() {
		note := fmt.Sprintf("encoded %d bytes", n)
		_ = note
	}
	return nil
}

// mix is reachable from EncodeTo and stays on the stack.
func (c *Code) mix(dst, src []byte) int {
	n := copy(dst, src)
	for i := 0; i < n; i++ {
		dst[i] ^= c.scratch[i%len(c.scratch)]
	}
	return n
}

// debugDump is NOT reachable from any root: its allocations are fine.
func (c *Code) debugDump() string {
	return fmt.Sprintf("scratch=%v", c.scratch)
}
