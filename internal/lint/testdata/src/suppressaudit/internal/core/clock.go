// Package core is a known-bad fixture for the suppressaudit analyzer,
// run together with determinism: one live suppression (kept), one stale
// suppression (flagged), one directive naming an unknown analyzer
// (flagged), and one naming suppressaudit itself (exempt by design).
package core

import "time"

// bootTime really does trip determinism; its directive is live.
//
//lint:ignore determinism fixture exercises a live suppression of a real finding
var bootTime = time.Now()

// slotCount no longer trips anything; its directive is stale.
//
//lint:ignore determinism the time.Now call this guarded was removed long ago
var slotCount = 16

//lint:ignore nosuchanalyzer typo in the analyzer name
var cycleLen = 42

//lint:ignore suppressaudit directives naming suppressaudit are exempt from staleness
var formatCount = 3

// Uptime keeps the fixture's declarations referenced.
func Uptime() time.Duration {
	return time.Since(bootTime) * time.Duration(slotCount%cycleLen%formatCount+1)
}
