// Package core is the clean twin of the globalstate fixture: only
// constants, write-once error sentinels, blank compile-time assertions,
// and instance state.
package core

import "errors"

// ErrOverflow is a write-once error sentinel: allowed.
var ErrOverflow = errors.New("core: queue overflow")

// slotCount is a constant: allowed.
const slotCount = 16

// Network keeps every piece of mutable state on the instance.
type Network struct {
	users      int
	cycleCount int
	cache      map[string]int
}

var _ interface{ grow() } = (*Network)(nil)

func (n *Network) grow() { n.users++ }

func (n *Network) reset() {
	n.cycleCount = 0
	if n.cache == nil {
		n.cache = make(map[string]int)
	}
}
