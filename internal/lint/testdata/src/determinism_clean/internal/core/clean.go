// Package core is a known-clean determinism fixture: all time is
// logical and all dispatch is deterministic.
package core

// Tick advances logical time deterministically.
func Tick(now int64) int64 { return now + 1 }

// Drain reads one channel with a single-case select, which is allowed.
func Drain(c chan int) int {
	select {
	case v := <-c:
		return v
	}
}
