// Package span handles or explicitly ignores every event kind.
package span

import "internal/core"

// stitchIgnored lists the kinds the stitcher deliberately skips.
var stitchIgnored = [...]core.EventKind{core.EventGPSRx}

// Stitch counts the kinds the stitcher understands.
func Stitch(kinds []core.EventKind) int {
	n := 0
	for _, k := range kinds {
		switch k {
		case core.EventCycleStart, core.EventDataRx:
			n++
		}
	}
	return n
}
