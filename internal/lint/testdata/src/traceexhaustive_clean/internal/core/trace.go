// Package core is the clean twin of the traceexhaustive fixture: every
// kind round-trips through String and is acknowledged by both span and
// conformance.
package core

// EventKind classifies trace events.
type EventKind int

// Trace event kinds.
const (
	EventCycleStart EventKind = iota + 1
	EventDataRx
	EventGPSRx
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCycleStart:
		return "cycle-start"
	case EventDataRx:
		return "data-rx"
	case EventGPSRx:
		return "gps-rx"
	default:
		return "unknown"
	}
}
