// Package conformance acknowledges every event kind.
package conformance

import "internal/core"

// Check accepts the full event vocabulary.
func Check(kinds []core.EventKind) bool {
	for _, k := range kinds {
		switch k {
		case core.EventCycleStart, core.EventDataRx, core.EventGPSRx:
		default:
			return false
		}
	}
	return true
}
