// Package store is a known-clean uncheckederr fixture: every error
// result is consumed.
package store

import "errors"

// ErrEmpty reports a drained store.
var ErrEmpty = errors.New("store: empty")

func take() (byte, error) { return 0, ErrEmpty }

// Drain consumes take's error.
func Drain() error {
	_, err := take()
	return err
}
