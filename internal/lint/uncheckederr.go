package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// UncheckedErr flags calls in non-test internal/ code whose error result
// is silently dropped. Dropped errors hide protocol bookkeeping failures
// (a lost reservation, a failed encode) that the simulator would
// otherwise surface.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc:  "flag ignored error returns in non-test internal/ code",
	Run:  runUncheckedErr,
}

// uncheckedErrExempt lists callees whose error results are conventionally
// ignorable: terminal writes cannot be meaningfully handled here.
var uncheckedErrExempt = map[string]bool{
	"fmt.Print":                      true,
	"fmt.Printf":                     true,
	"fmt.Println":                    true,
	"fmt.Fprint":                     true,
	"fmt.Fprintf":                    true,
	"fmt.Fprintln":                   true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*strings.Builder).Write":       true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
	"(*bytes.Buffer).Write":          true,
}

func runUncheckedErr(pass *Pass) {
	if !pathContains(pass.Pkg.Path, "internal") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !callReturnsError(pass, call) {
				return true
			}
			if name := calleeFullName(pass, call); name != "" && uncheckedErrExempt[name] {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is ignored", renderExpr(pass.Fset, call.Fun))
			return true
		})
	}
}

// callReturnsError reports whether any result of the call is an error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

// isErrorType reports whether t is exactly the built-in error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFullName returns the types.Func full name of the call target,
// e.g. "fmt.Println" or "(*strings.Builder).WriteString", or "".
func calleeFullName(pass *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := pass.Pkg.Info.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// renderExpr prints an expression compactly for messages.
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
