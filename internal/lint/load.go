package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the tree under analysis.
type Package struct {
	// Path is the import path: the module path joined with the directory
	// relative to the module root (or just the relative directory when no
	// go.mod is present, as in test fixtures).
	Path string
	// Dir is the absolute directory of the package sources.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// TestFiles are the parsed *_test.go sources (both in-package and
	// external). They are parsed but not type-checked: analyzers use them
	// only syntactically (e.g. round-trip coverage checks).
	TestFiles []*ast.File
	// Types and Info hold the full go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses, and type-checks every package under a module
// root using only the standard library. One Loader may load several
// roots; the file set and the source importer for out-of-module
// dependencies are shared across loads.
type Loader struct {
	Fset *token.FileSet
	std  types.Importer
}

// NewLoader returns a loader with a fresh file set.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

// Load parses and type-checks the packages under root selected by
// patterns. Patterns follow go-command conventions relative to root:
// "./..." selects everything, "./x/..." a subtree, "./x" one package.
// An empty pattern list means "./...".
func (l *Loader) Load(root string, patterns []string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath := readModulePath(filepath.Join(root, "go.mod"))
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	pkgs := make(map[string]*Package)
	order := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.parseDir(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue
		}
		pkgs[p.Path] = p
		order = append(order, p.Path)
	}

	sorted, err := topoSort(pkgs, order)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{loaded: make(map[string]*types.Package), std: l.std}
	for _, path := range sorted {
		p := pkgs[path]
		if err := l.typecheck(p, imp); err != nil {
			return nil, err
		}
		imp.loaded[p.Path] = p.Types
	}

	selected := selectPackages(pkgs, sorted, patterns)
	return selected, nil
}

// parseDir parses one directory into a Package, or nil if it holds no Go
// sources.
func (l *Loader) parseDir(root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := filepath.ToSlash(rel)
	if path == "." {
		path = ""
	}
	if modPath != "" {
		if path == "" {
			path = modPath
		} else {
			path = modPath + "/" + path
		}
	}
	p := &Package{Path: path, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		if strings.HasSuffix(name, "_test.go") {
			p.TestFiles = append(p.TestFiles, f)
		} else {
			p.Files = append(p.Files, f)
		}
	}
	if len(p.Files) == 0 && len(p.TestFiles) == 0 {
		return nil, nil
	}
	return p, nil
}

// typecheck runs go/types over the package's non-test files.
func (l *Loader) typecheck(p *Package, imp types.Importer) error {
	if len(p.Files) == 0 {
		// Test-only package: nothing to type-check.
		p.Types = types.NewPackage(p.Path, "main")
		p.Info = &types.Info{}
		return nil
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(p.Path, l.Fset, p.Files, info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("lint: type-check %s: %v", p.Path, typeErrs[0])
	}
	if err != nil {
		return fmt.Errorf("lint: type-check %s: %w", p.Path, err)
	}
	p.Types = tpkg
	p.Info = info
	return nil
}

// moduleImporter resolves intra-module imports from the loaded set and
// everything else (the standard library) from source.
type moduleImporter struct {
	loaded map[string]*types.Package
	std    types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.loaded[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// packageDirs walks root collecting directories that may hold Go
// packages, skipping testdata, vendor, hidden, and underscore dirs.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// readModulePath extracts the module path from a go.mod file, or ""
// when the file is absent or malformed.
func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				return unq
			}
			return rest
		}
	}
	return ""
}

// topoSort orders package paths so every intra-module dependency
// precedes its importers.
func topoSort(pkgs map[string]*Package, order []string) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(order))
	var out []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		p := pkgs[path]
		for _, imp := range packageImports(p) {
			if _, ok := pkgs[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = done
		out = append(out, path)
		return nil
	}
	sort.Strings(order)
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// packageImports lists the import paths of the package's non-test files.
func packageImports(p *Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// selectPackages filters the loaded set by the driver's path patterns.
func selectPackages(pkgs map[string]*Package, sorted []string, patterns []string) []*Package {
	ordered := make([]*Package, 0, len(sorted))
	for _, path := range sorted {
		ordered = append(ordered, pkgs[path])
	}
	return Select(ordered, patterns)
}

// Select filters already-loaded packages by go-style path patterns,
// preserving order. An empty pattern list selects everything. Drivers
// use it to report on a subtree while whole-program analyzers still see
// the full universe.
func Select(pkgs []*Package, patterns []string) []*Package {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	match := func(p *Package) bool {
		for _, pat := range patterns {
			pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
			switch {
			case pat == "..." || pat == "":
				return true
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				if p.Path == prefix || strings.HasSuffix(p.Path, "/"+prefix) ||
					strings.Contains(p.Path, "/"+prefix+"/") || strings.HasPrefix(p.Path, prefix+"/") {
					return true
				}
			default:
				if p.Path == pat || strings.HasSuffix(p.Path, "/"+pat) {
					return true
				}
			}
		}
		return false
	}
	var out []*Package
	for _, p := range pkgs {
		if match(p) {
			out = append(out, p)
		}
	}
	return out
}
