package phy

import (
	"fmt"
	"sort"
	"time"
)

// Interval is a half-open time interval [Start, End).
type Interval struct {
	Start, End time.Duration
}

// Overlaps reports whether two half-open intervals intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Duration returns End − Start.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Valid reports whether the interval is non-empty and well-formed.
func (iv Interval) Valid() bool { return iv.End > iv.Start }

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("[%v,%v)", iv.Start, iv.End)
}

// HalfDuplexPlan validates a mobile subscriber's schedule within one
// notification cycle against the half-duplex transmission constraint
// (paper §3.5): the radio cannot transmit and receive at once, and a
// 20 ms switch guard is required between a transmit interval and a
// receive interval in either order.
//
// The zero value is an empty plan ready for use.
type HalfDuplexPlan struct {
	tx []Interval
	rx []Interval
	// Switch is the transmit↔receive turnaround guard; zero means
	// HalfDuplexSwitch.
	Switch time.Duration
}

func (p *HalfDuplexPlan) guard() time.Duration {
	if p.Switch > 0 {
		return p.Switch
	}
	return HalfDuplexSwitch
}

// CanTransmit reports whether adding a transmit interval keeps the plan
// feasible: it must not overlap or come within the switch guard of any
// receive interval. Transmit-transmit adjacency needs no guard.
func (p *HalfDuplexPlan) CanTransmit(iv Interval) bool {
	if !iv.Valid() {
		return false
	}
	g := p.guard()
	padded := Interval{Start: iv.Start - g, End: iv.End + g}
	for _, rx := range p.rx {
		if padded.Overlaps(rx) {
			return false
		}
	}
	return true
}

// CanReceive reports whether adding a receive interval keeps the plan
// feasible against all transmit intervals.
func (p *HalfDuplexPlan) CanReceive(iv Interval) bool {
	if !iv.Valid() {
		return false
	}
	g := p.guard()
	padded := Interval{Start: iv.Start - g, End: iv.End + g}
	for _, tx := range p.tx {
		if padded.Overlaps(tx) {
			return false
		}
	}
	return true
}

// AddTransmit records a transmit interval. It returns an error if the
// interval violates the half-duplex constraint.
func (p *HalfDuplexPlan) AddTransmit(iv Interval) error {
	if !p.CanTransmit(iv) {
		return fmt.Errorf("phy: transmit %v violates half-duplex constraint", iv)
	}
	p.tx = append(p.tx, iv)
	return nil
}

// AddReceive records a receive interval. It returns an error if the
// interval violates the half-duplex constraint.
func (p *HalfDuplexPlan) AddReceive(iv Interval) error {
	if !p.CanReceive(iv) {
		return fmt.Errorf("phy: receive %v violates half-duplex constraint", iv)
	}
	p.rx = append(p.rx, iv)
	return nil
}

// Transmits returns a copy of the recorded transmit intervals, sorted by
// start time.
func (p *HalfDuplexPlan) Transmits() []Interval { return sortedCopy(p.tx) }

// Receives returns a copy of the recorded receive intervals, sorted by
// start time.
func (p *HalfDuplexPlan) Receives() []Interval { return sortedCopy(p.rx) }

// Reset clears the plan for reuse in the next cycle.
func (p *HalfDuplexPlan) Reset() {
	p.tx = p.tx[:0]
	p.rx = p.rx[:0]
}

func sortedCopy(ivs []Interval) []Interval {
	out := make([]Interval, len(ivs))
	copy(out, ivs)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
