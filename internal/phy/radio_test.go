package phy

import (
	"testing"
	"testing/quick"
	"time"
)

func iv(startMs, endMs int) Interval {
	return Interval{
		Start: time.Duration(startMs) * time.Millisecond,
		End:   time.Duration(endMs) * time.Millisecond,
	}
}

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{iv(0, 10), iv(5, 15), true},
		{iv(0, 10), iv(10, 20), false}, // half-open: touching is fine
		{iv(10, 20), iv(0, 10), false},
		{iv(0, 30), iv(10, 20), true}, // containment
		{iv(5, 6), iv(5, 6), true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestIntervalValidAndDuration(t *testing.T) {
	if !iv(0, 5).Valid() || iv(5, 5).Valid() || iv(6, 5).Valid() {
		t.Fatal("Valid misclassifies intervals")
	}
	if iv(10, 25).Duration() != 15*time.Millisecond {
		t.Fatal("Duration wrong")
	}
}

func TestHalfDuplexSimultaneousForbidden(t *testing.T) {
	var p HalfDuplexPlan
	if err := p.AddTransmit(iv(100, 200)); err != nil {
		t.Fatal(err)
	}
	if p.CanReceive(iv(150, 250)) {
		t.Fatal("overlapping rx allowed during tx")
	}
}

func TestHalfDuplexSwitchGuard(t *testing.T) {
	var p HalfDuplexPlan
	if err := p.AddTransmit(iv(100, 200)); err != nil {
		t.Fatal(err)
	}
	// Receive must start at least 20 ms after transmit ends.
	if p.CanReceive(iv(210, 240)) {
		t.Fatal("rx 10ms after tx allowed; needs 20ms switch")
	}
	if !p.CanReceive(iv(220, 240)) {
		t.Fatal("rx exactly 20ms after tx should be allowed")
	}
	// And symmetrically before the transmit starts.
	if p.CanReceive(iv(60, 90)) {
		t.Fatal("rx ending 10ms before tx allowed; needs 20ms switch")
	}
	if !p.CanReceive(iv(50, 80)) {
		t.Fatal("rx ending 20ms before tx should be allowed")
	}
}

func TestHalfDuplexGuardAppliesBothDirections(t *testing.T) {
	var p HalfDuplexPlan
	if err := p.AddReceive(iv(100, 200)); err != nil {
		t.Fatal(err)
	}
	if p.CanTransmit(iv(205, 230)) {
		t.Fatal("tx 5ms after rx allowed")
	}
	if !p.CanTransmit(iv(220, 250)) {
		t.Fatal("tx 20ms after rx should be allowed")
	}
}

func TestHalfDuplexBackToBackSameFunction(t *testing.T) {
	var p HalfDuplexPlan
	if err := p.AddTransmit(iv(0, 100)); err != nil {
		t.Fatal(err)
	}
	// Consecutive transmissions need no switch guard.
	if err := p.AddTransmit(iv(100, 200)); err != nil {
		t.Fatalf("back-to-back tx rejected: %v", err)
	}
	if err := p.AddReceive(iv(500, 600)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddReceive(iv(600, 700)); err != nil {
		t.Fatalf("back-to-back rx rejected: %v", err)
	}
}

func TestHalfDuplexAddRejectsViolations(t *testing.T) {
	var p HalfDuplexPlan
	if err := p.AddTransmit(iv(100, 200)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddReceive(iv(150, 250)); err == nil {
		t.Fatal("AddReceive accepted a violating interval")
	}
	if err := p.AddTransmit(iv(0, 0)); err == nil {
		t.Fatal("empty interval accepted")
	}
}

func TestHalfDuplexCustomSwitch(t *testing.T) {
	p := HalfDuplexPlan{Switch: 50 * time.Millisecond}
	if err := p.AddTransmit(iv(100, 200)); err != nil {
		t.Fatal(err)
	}
	if p.CanReceive(iv(230, 260)) {
		t.Fatal("30ms gap allowed with 50ms switch")
	}
	if !p.CanReceive(iv(250, 280)) {
		t.Fatal("50ms gap rejected")
	}
}

func TestHalfDuplexReset(t *testing.T) {
	var p HalfDuplexPlan
	if err := p.AddTransmit(iv(0, 100)); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if err := p.AddReceive(iv(0, 100)); err != nil {
		t.Fatalf("after reset, rx rejected: %v", err)
	}
	if len(p.Transmits()) != 0 || len(p.Receives()) != 1 {
		t.Fatal("reset did not clear intervals")
	}
}

func TestTransmitsReceivesSorted(t *testing.T) {
	var p HalfDuplexPlan
	for _, x := range []Interval{iv(300, 350), iv(0, 50), iv(100, 150)} {
		if err := p.AddTransmit(x); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Transmits()
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatalf("Transmits not sorted: %v", got)
		}
	}
}

// Property: any accepted (tx, rx) pair is separated by at least the
// switch guard and never overlaps.
func TestPropertyHalfDuplexSeparation(t *testing.T) {
	f := func(startsRaw []uint16) bool {
		var p HalfDuplexPlan
		for i, s := range startsRaw {
			start := time.Duration(s) * time.Millisecond
			interval := Interval{Start: start, End: start + 50*time.Millisecond}
			if i%2 == 0 {
				_ = p.AddTransmit(interval) // may legitimately fail
			} else {
				_ = p.AddReceive(interval)
			}
		}
		for _, tx := range p.Transmits() {
			for _, rx := range p.Receives() {
				gap := rx.Start - tx.End
				if gap < 0 {
					gap = tx.Start - rx.End
				}
				if gap < HalfDuplexSwitch {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
