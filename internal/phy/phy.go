// Package phy models the physical layer of the OSU narrow-band wireless
// modem testbed: channel symbol rates, pilot-symbol framing, preamble /
// postamble / guard-time accounting (paper Table 1), the half-duplex
// transmit/receive constraint, and wireless channel error models.
package phy

import (
	"fmt"
	"time"
)

// Direction distinguishes the two channels of a cell.
type Direction int

// The forward channel carries base → mobile traffic; the reverse channel
// carries mobile → base traffic.
const (
	Forward Direction = iota + 1
	Reverse
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Reverse:
		return "reverse"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Channel symbol rates and modulation (paper §2.2, Table 1).
const (
	// ForwardSymbolRate is the forward channel rate in symbols/second.
	ForwardSymbolRate = 3200
	// ReverseSymbolRate is the reverse channel rate in symbols/second.
	ReverseSymbolRate = 2400
	// BitsPerSymbol is the QPSK coding rate: two coded bits per symbol.
	BitsPerSymbol = 2
)

// Pilot-symbol frame structure (paper Fig. 1).
const (
	// PSFrameSymbols is the total channel symbols per pilot-symbol frame.
	PSFrameSymbols = 150
	// PSFrameInfoSymbols is the data symbols per pilot-symbol frame.
	PSFrameInfoSymbols = 128
	// PSFramePilots is the pilot symbols per PS frame (7 leading + 15
	// interleaved).
	PSFramePilots = PSFrameSymbols - PSFrameInfoSymbols
)

// Reed-Solomon codeword framing (paper Table 1).
const (
	// CodewordInfoBits is the information payload of one RS(64,48)
	// codeword.
	CodewordInfoBits = 384
	// CodewordBits is the coded size of one RS(64,48) codeword.
	CodewordBits = 512
	// CodewordInfoBytes and CodewordBytes are the byte equivalents.
	CodewordInfoBytes = CodewordInfoBits / 8
	CodewordBytes     = CodewordBits / 8
	// CodewordSymbols is the channel symbols for one codeword's coded
	// bits (512 bits / 2 bits-per-symbol).
	CodewordSymbols = CodewordBits / BitsPerSymbol
	// PacketPSFrames is PS frames per regular data packet.
	PacketPSFrames = 2
	// PacketSymbols is channel symbols per regular data packet: the 256
	// codeword symbols carried inside 2 PS frames of 150 symbols each.
	PacketSymbols = PacketPSFrames * PSFrameSymbols
)

// Reverse-channel per-packet overheads (paper Table 1).
const (
	// RegularPreambleSymbols precedes each regular packet on the reverse
	// channel.
	RegularPreambleSymbols = 600
	// RegularPostambleSymbols follows each regular packet.
	RegularPostambleSymbols = 51
	// GuardSymbols separates consecutive packets on the reverse channel.
	GuardSymbols = 18
	// RegularSlotSymbols is the total reverse-channel data-slot length:
	// preamble + body + postamble + guard = 600+300+51+18 = 969.
	RegularSlotSymbols = RegularPreambleSymbols + PacketSymbols +
		RegularPostambleSymbols + GuardSymbols

	// GPSPacketInfoBits is the GPS location report payload.
	GPSPacketInfoBits = 72
	// GPSPacketSymbols is the GPS packet body length in channel symbols.
	GPSPacketSymbols = 128
	// GPSPreambleSymbols precedes each GPS packet.
	GPSPreambleSymbols = 64
	// GPSSlotSymbols is the total GPS slot length: 64+128+18 = 210.
	GPSSlotSymbols = GPSPreambleSymbols + GPSPacketSymbols + GuardSymbols
)

// Forward-channel notification-cycle framing (paper §3.4, Fig. 4).
const (
	// CyclePreamble1Symbols starts each forward notification cycle.
	CyclePreamble1Symbols = 300
	// CyclePreamble2Symbols precedes the second set of control fields.
	CyclePreamble2Symbols = 150
	// CyclePreambleSymbols is the per-cycle total (Table 1 lists 450).
	CyclePreambleSymbols = CyclePreamble1Symbols + CyclePreamble2Symbols
	// ControlFieldCodewords is the RS codewords per control-field set.
	ControlFieldCodewords = 2
	// ControlFieldSymbols is the channel symbols per control-field set.
	ControlFieldSymbols = ControlFieldCodewords * PacketSymbols
)

// HalfDuplexSwitch is the guard a mobile needs between its transmit and
// receive functions (paper §2.2: 20 ms each way).
const HalfDuplexSwitch = 20 * time.Millisecond

// SymbolDuration returns the exact air time of n channel symbols at the
// given symbol rate. The result is exact whenever n·10⁹ divides the
// rate; all slot-level aggregates in the paper do.
func SymbolDuration(n, symbolsPerSecond int) time.Duration {
	return time.Duration(n) * time.Second / time.Duration(symbolsPerSecond)
}

// Derived canonical durations (paper Table 1 and §3.3–3.4). All values
// are exact in nanoseconds.
var (
	// ForwardPacketTime is 300 symbols at 3200 sym/s = 93.75 ms.
	ForwardPacketTime = SymbolDuration(PacketSymbols, ForwardSymbolRate)
	// ReversePacketTime is 300 symbols at 2400 sym/s = 125 ms.
	ReversePacketTime = SymbolDuration(PacketSymbols, ReverseSymbolRate)
	// ReverseDataSlotTime is 969 symbols = 403.75 ms.
	ReverseDataSlotTime = SymbolDuration(RegularSlotSymbols, ReverseSymbolRate)
	// GPSSlotTime is 210 symbols = 87.5 ms.
	GPSSlotTime = SymbolDuration(GPSSlotSymbols, ReverseSymbolRate)
	// CyclePreambleTime is 450 symbols at 3200 sym/s = 140.625 ms.
	CyclePreambleTime = SymbolDuration(CyclePreambleSymbols, ForwardSymbolRate)
	// ControlFieldTime is one control-field set (600 symbols) = 187.5 ms.
	ControlFieldTime = SymbolDuration(ControlFieldSymbols, ForwardSymbolRate)
)

// Forward notification-cycle layout (paper §3.4): preamble(300) + CF1
// (600) + 1 data slot (300) + preamble(150) + CF2 (600) + 36 data slots.
const (
	// ForwardDataSlots is N, the data slots per forward cycle.
	ForwardDataSlots = 37
	// ForwardCycleSymbols is the total forward cycle length in symbols.
	ForwardCycleSymbols = CyclePreamble1Symbols + ControlFieldSymbols +
		PacketSymbols + CyclePreamble2Symbols + ControlFieldSymbols +
		(ForwardDataSlots-1)*PacketSymbols
)

// CycleLength is the notification-cycle length on both channels:
// 12750 symbols at 3200 sym/s = 3.984375 s (the paper quotes 3.9844).
var CycleLength = SymbolDuration(ForwardCycleSymbols, ForwardSymbolRate)

// ReverseShift is δ, the offset of the reverse cycle behind the forward
// cycle: first preamble + first control fields + 20 ms switch time
// = 93.75 + 187.5 + 20 = 301.25 ms (paper §3.4 problem 2).
var ReverseShift = SymbolDuration(CyclePreamble1Symbols, ForwardSymbolRate) +
	ControlFieldTime + HalfDuplexSwitch

// Reverse cycle formats (paper §3.3, Fig. 3).
const (
	// Format1GPSSlots / Format1DataSlots: used when >3 GPS users.
	Format1GPSSlots  = 8
	Format1DataSlots = 8
	// Format2GPSSlots / Format2DataSlots: used when ≤3 GPS users; five
	// unused GPS slots coalesce into one extra data slot.
	Format2GPSSlots  = 3
	Format2DataSlots = 9
	// Format2TailGuardSymbols is the guard closing format 2 (0.03375 s).
	Format2TailGuardSymbols = 81
	// MaxGPSUsers is the GPS subscriber capacity of a cell.
	MaxGPSUsers = 8
	// MaxDataUsers is the regular-data subscriber capacity of a cell.
	MaxDataUsers = 64
)

// GPSAccessDeadline is the hard real-time bound: every active GPS user
// must get a slot in any 4-second window (paper §2.1).
const GPSAccessDeadline = 4 * time.Second

// FrameEfficiency returns the PS-frame transmission efficiency 128/150.
func FrameEfficiency() float64 {
	return float64(PSFrameInfoSymbols) / float64(PSFrameSymbols)
}

// DataRateBps returns the raw channel bit rate for a direction:
// 6.4 kbps forward, 4.8 kbps reverse.
func DataRateBps(d Direction) int {
	switch d {
	case Forward:
		return ForwardSymbolRate * BitsPerSymbol
	case Reverse:
		return ReverseSymbolRate * BitsPerSymbol
	default:
		return 0
	}
}

// SymbolRate returns the channel symbol rate for a direction.
func SymbolRate(d Direction) int {
	switch d {
	case Forward:
		return ForwardSymbolRate
	case Reverse:
		return ReverseSymbolRate
	default:
		return 0
	}
}
