package phy

import (
	"math"
	"testing"

	"github.com/osu-netlab/osumac/internal/sim"
)

func TestAWGNBERKnownValues(t *testing.T) {
	// QPSK BER = Q(√(2·Eb/N0)): textbook value at 0 dB ≈ 0.0786,
	// at 9.6 dB ≈ 1e-5.
	m0 := NewAWGN(0)
	if got := m0.BitErrorRate(); math.Abs(got-0.0786) > 0.001 {
		t.Fatalf("BER at 0 dB = %v, want ~0.0786", got)
	}
	m96 := NewAWGN(9.6)
	if got := m96.BitErrorRate(); got > 2e-5 || got < 2e-6 {
		t.Fatalf("BER at 9.6 dB = %v, want ~1e-5", got)
	}
}

func TestAWGNMonotoneInSNR(t *testing.T) {
	prev := 1.0
	for snr := -5.0; snr <= 15; snr += 2 {
		ber := NewAWGN(snr).BitErrorRate()
		if ber >= prev {
			t.Fatalf("BER not decreasing at %v dB", snr)
		}
		prev = ber
	}
}

func TestAWGNByteErrorRate(t *testing.T) {
	m := NewAWGN(4)
	ber := m.BitErrorRate()
	want := 1 - math.Pow(1-ber, 8)
	if math.Abs(m.ByteErrorRate()-want) > 1e-12 {
		t.Fatal("byte error rate inconsistent with BER")
	}
}

func TestAWGNCorruptEmpirical(t *testing.T) {
	m := NewAWGN(3)
	rng := sim.NewRNG(1)
	total, changed := 0, 0
	for i := 0; i < 2000; i++ {
		cw := make([]byte, 64)
		changed += m.Corrupt(cw, rng)
		total += 64
	}
	got := float64(changed) / float64(total)
	want := m.ByteErrorRate()
	if math.Abs(got-want) > 0.15*want+0.001 {
		t.Fatalf("empirical byte error rate %v, want ~%v", got, want)
	}
}

func TestAWGNHighSNRIsClean(t *testing.T) {
	m := NewAWGN(20)
	rng := sim.NewRNG(2)
	cw := make([]byte, 64)
	changed := 0
	for i := 0; i < 1000; i++ {
		changed += m.Corrupt(cw, rng)
	}
	if changed != 0 {
		t.Fatalf("20 dB channel corrupted %d bytes in 64k", changed)
	}
}

func TestAWGNZeroValuePrepares(t *testing.T) {
	var m AWGN // EbN0dB = 0
	if m.ByteErrorRate() <= 0 {
		t.Fatal("zero-value AWGN has no error rate")
	}
	rng := sim.NewRNG(3)
	cw := make([]byte, 64)
	m2 := AWGN{EbN0dB: 0}
	if n := m2.Corrupt(cw, rng); n == 0 {
		// 0 dB corrupts ~48% of bytes; 0 changes in 64 is astronomically
		// unlikely.
		t.Fatal("zero-value AWGN never corrupts")
	}
}

func TestAWGNCodewordLossProbability(t *testing.T) {
	// At very high SNR the RS(64,48) word never exceeds t=8 errors.
	if p := NewAWGN(15).CodewordLossProbability(64, 8); p > 1e-9 {
		t.Fatalf("loss at 15 dB = %v", p)
	}
	// At very low SNR it always does.
	if p := NewAWGN(-10).CodewordLossProbability(64, 8); p < 0.999 {
		t.Fatalf("loss at -10 dB = %v", p)
	}
	// Monotone in SNR.
	prev := 1.1
	for snr := -5.0; snr < 12; snr += 1 {
		p := NewAWGN(snr).CodewordLossProbability(64, 8)
		if p > prev+1e-12 {
			t.Fatalf("loss probability not decreasing at %v dB", snr)
		}
		prev = p
	}
}

func TestAWGNName(t *testing.T) {
	if NewAWGN(6.5).Name() == "" {
		t.Fatal("empty name")
	}
}

// TestAWGNWaterfallThroughRS characterizes the coded system: below the
// waterfall SNR the RS decoder loses most codewords, above it nearly
// none — the cliff behaviour narrow-band coded links exhibit.
func TestAWGNWaterfallThroughRS(t *testing.T) {
	low := NewAWGN(2).CodewordLossProbability(64, 8)
	high := NewAWGN(8).CodewordLossProbability(64, 8)
	if low < 0.5 {
		t.Fatalf("below waterfall: loss %v, want > 0.5", low)
	}
	if high > 1e-3 {
		t.Fatalf("above waterfall: loss %v, want < 1e-3", high)
	}
}
