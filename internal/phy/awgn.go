package phy

import (
	"fmt"
	"math"

	"github.com/osu-netlab/osumac/internal/sim"
)

// AWGN models the narrow-band link as an additive white Gaussian noise
// channel at a given Eb/N0. The testbed modulates QPSK (2 coded bits
// per channel symbol, paper Table 1); with Gray mapping the coded bit
// error rate is Q(√(2·Eb/N0)) and a coded RS byte (4 QPSK symbols) is
// in error when any of its 8 bits flips. This ties the simulator's
// byte-level corruption to a physical signal-to-noise knob.
type AWGN struct {
	// EbN0dB is the per-information-bit SNR in decibels.
	EbN0dB float64

	pByte float64
	init  bool
}

var _ ErrorModel = (*AWGN)(nil)

// NewAWGN returns an AWGN channel at the given Eb/N0 (dB).
func NewAWGN(ebN0dB float64) *AWGN {
	m := &AWGN{EbN0dB: ebN0dB}
	m.prepare()
	return m
}

func (m *AWGN) prepare() {
	ebN0 := math.Pow(10, m.EbN0dB/10)
	ber := qfunc(math.Sqrt(2 * ebN0))
	m.pByte = 1 - math.Pow(1-ber, 8)
	m.init = true
}

// BitErrorRate returns the coded bit error probability at this SNR.
func (m *AWGN) BitErrorRate() float64 {
	ebN0 := math.Pow(10, m.EbN0dB/10)
	return qfunc(math.Sqrt(2 * ebN0))
}

// ByteErrorRate returns the per-RS-symbol (byte) error probability.
func (m *AWGN) ByteErrorRate() float64 {
	if !m.init {
		m.prepare()
	}
	return m.pByte
}

// Corrupt implements ErrorModel.
func (m *AWGN) Corrupt(cw []byte, rng *sim.RNG) int {
	if !m.init {
		m.prepare()
	}
	changed := 0
	for i := range cw {
		if rng.Bool(m.pByte) {
			cw[i] ^= byte(rng.UniformInt(1, 255))
			changed++
		}
	}
	return changed
}

// Name implements ErrorModel.
func (m *AWGN) Name() string { return fmt.Sprintf("awgn(Eb/N0=%gdB)", m.EbN0dB) }

// qfunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// CodewordLossProbability returns the probability that a full RS(n,k)
// codeword of nBytes bytes exceeds t byte errors at this SNR — handy
// for calibrating TwoRegime shortcuts against a physical operating
// point.
func (m *AWGN) CodewordLossProbability(nBytes, t int) float64 {
	if !m.init {
		m.prepare()
	}
	p := m.pByte
	// P(X > t) for X ~ Binomial(nBytes, p).
	var cdf float64
	for k := 0; k <= t; k++ {
		cdf += binomPMF(nBytes, k, p)
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}

func binomPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	// Work in logs for numerical stability.
	logC := lgamma(n+1) - lgamma(k+1) - lgamma(n-k+1)
	logP := logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logP)
}

func lgamma(x int) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}
