package phy

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"github.com/osu-netlab/osumac/internal/rs"
	"github.com/osu-netlab/osumac/internal/sim"
)

func TestIdealNeverCorrupts(t *testing.T) {
	rng := sim.NewRNG(1)
	cw := bytes.Repeat([]byte{0x5A}, 64)
	snapshot := append([]byte(nil), cw...)
	var m Ideal
	for i := 0; i < 100; i++ {
		if n := m.Corrupt(cw, rng); n != 0 {
			t.Fatal("ideal channel corrupted bytes")
		}
	}
	if !bytes.Equal(cw, snapshot) {
		t.Fatal("ideal channel mutated the codeword")
	}
}

func TestIIDErrorRate(t *testing.T) {
	rng := sim.NewRNG(2)
	m := IID{P: 0.05}
	total, changed := 0, 0
	for i := 0; i < 500; i++ {
		cw := make([]byte, 64)
		changed += m.Corrupt(cw, rng)
		total += len(cw)
	}
	got := float64(changed) / float64(total)
	if math.Abs(got-0.05) > 0.01 {
		t.Fatalf("empirical corruption rate %v, want ~0.05", got)
	}
}

func TestIIDCorruptionChangesBytes(t *testing.T) {
	rng := sim.NewRNG(3)
	m := IID{P: 1.0}
	cw := make([]byte, 64)
	n := m.Corrupt(cw, rng)
	if n != 64 {
		t.Fatalf("P=1 corrupted %d/64 bytes", n)
	}
	for i, b := range cw {
		if b == 0 {
			t.Fatalf("byte %d unchanged despite corruption (XOR with 0?)", i)
		}
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	rng := sim.NewRNG(4)
	// Long dwell times: errors should cluster.
	m := NewGilbertElliott(0.01, 0.2, 0.0, 0.8)
	burstHits, cleanWords := 0, 0
	const words = 2000
	for i := 0; i < words; i++ {
		cw := make([]byte, 64)
		n := m.Corrupt(cw, rng)
		switch {
		case n == 0:
			cleanWords++
		case n > 8: // beyond RS t — a burst
			burstHits++
		}
	}
	if cleanWords == 0 {
		t.Fatal("no clean codewords; good state not dwelling")
	}
	if burstHits == 0 {
		t.Fatal("no burst codewords; bad state not producing bursts")
	}
	// Bimodality: clean + burst should dominate the middle ground.
	if cleanWords+burstHits < words/2 {
		t.Fatalf("bimodal regimes only cover %d/%d words", cleanWords+burstHits, words)
	}
}

func TestTwoRegimeMatchesRSOutcomes(t *testing.T) {
	// The two-regime shortcut must produce exactly two RS outcomes:
	// decode success with the original message, or decode failure.
	rng := sim.NewRNG(5)
	code := rs.NewPaperCode()
	m := TwoRegime{PLoss: 0.3, MaxCorrectable: 8}
	msg := make([]byte, 48)
	for i := range msg {
		msg[i] = byte(i)
	}
	clean, err := code.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	losses := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		cw := append([]byte(nil), clean...)
		m.Corrupt(cw, rng)
		got, decErr := code.Decode(cw)
		if decErr != nil {
			if !errors.Is(decErr, rs.ErrTooManyErrors) {
				t.Fatalf("unexpected decode error: %v", decErr)
			}
			losses++
			continue
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("benign regime produced a silent miscorrection")
		}
	}
	gotLoss := float64(losses) / trials
	if math.Abs(gotLoss-0.3) > 0.05 {
		t.Fatalf("empirical loss rate %v, want ~0.3", gotLoss)
	}
}

func TestTwoRegimeZeroLossZeroErrors(t *testing.T) {
	rng := sim.NewRNG(6)
	m := TwoRegime{PLoss: 0, MaxCorrectable: 0}
	cw := make([]byte, 64)
	for i := 0; i < 50; i++ {
		if m.Corrupt(cw, rng) != 0 {
			t.Fatal("zero-parameter model corrupted bytes")
		}
	}
	mNeg := TwoRegime{PLoss: 0, MaxCorrectable: -3}
	if mNeg.Corrupt(cw, rng) != 0 {
		t.Fatal("negative MaxCorrectable should behave as zero")
	}
}

func TestGilbertElliottThroughRSIsBimodal(t *testing.T) {
	// Validation of the DESIGN.md substitution: burst channel + real RS
	// decode yields the paper's observation — packets are delivered
	// error-free or lost, almost never delivered corrupted.
	rng := sim.NewRNG(7)
	code := rs.NewPaperCode()
	m := NewGilbertElliott(0.005, 0.1, 0.001, 0.7)
	msg := make([]byte, 48)
	clean, err := code.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	silent := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		cw := append([]byte(nil), clean...)
		m.Corrupt(cw, rng)
		got, decErr := code.Decode(cw)
		if decErr == nil && !bytes.Equal(got, msg) {
			silent++
		}
	}
	if silent > trials/500 {
		t.Fatalf("silent corruption in %d/%d words; expected extremely rare", silent, trials)
	}
}

func TestModelNames(t *testing.T) {
	models := []ErrorModel{
		Ideal{},
		IID{P: 0.1},
		NewGilbertElliott(0.1, 0.2, 0.0, 0.5),
		TwoRegime{PLoss: 0.1, MaxCorrectable: 4},
	}
	seen := make(map[string]bool)
	for _, m := range models {
		name := m.Name()
		if name == "" {
			t.Fatalf("%T has empty name", m)
		}
		if seen[name] {
			t.Fatalf("duplicate model name %q", name)
		}
		seen[name] = true
	}
}
