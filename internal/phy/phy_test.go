package phy

import (
	"math"
	"testing"
	"time"
)

// TestTable1Constants pins every physical-layer value from paper Table 1.
func TestTable1Constants(t *testing.T) {
	cases := []struct {
		name string
		got  any
		want any
	}{
		{"forward symbol rate", ForwardSymbolRate, 3200},
		{"reverse symbol rate", ReverseSymbolRate, 2400},
		{"coding rate (bits/symbol)", BitsPerSymbol, 2},
		{"info symbols per pilot frame", PSFrameInfoSymbols, 128},
		{"channel symbols per pilot frame", PSFrameSymbols, 150},
		{"info bits per RS codeword", CodewordInfoBits, 384},
		{"bits per RS codeword", CodewordBits, 512},
		{"pilot frames per regular packet", PacketPSFrames, 2},
		{"channel symbols per regular packet", PacketSymbols, 300},
		{"cycle preamble (symbols)", CyclePreambleSymbols, 450},
		{"GPS packet info bits", GPSPacketInfoBits, 72},
		{"GPS packet symbols", GPSPacketSymbols, 128},
		{"GPS preamble symbols", GPSPreambleSymbols, 64},
		{"regular preamble symbols", RegularPreambleSymbols, 600},
		{"regular postamble symbols", RegularPostambleSymbols, 51},
		{"guard symbols", GuardSymbols, 18},
		{"GPS slot total symbols", GPSSlotSymbols, 210},
		{"regular slot total symbols", RegularSlotSymbols, 969},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestTable1Durations pins the second-valued rows of Table 1.
func TestTable1Durations(t *testing.T) {
	ms := func(f float64) time.Duration {
		return time.Duration(math.Round(f * float64(time.Second)))
	}
	cases := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"time per regular packet forward", ForwardPacketTime, ms(0.09375)},
		{"time per regular packet reverse", ReversePacketTime, ms(0.125)},
		{"time per cycle preamble", CyclePreambleTime, ms(0.140625)},
		{"GPS slot time", GPSSlotTime, ms(0.0875)},
		{"regular slot time", ReverseDataSlotTime, ms(0.40375)},
		{"control field set time", ControlFieldTime, ms(0.1875)},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestCycleLength(t *testing.T) {
	// Paper §3.4: exact forward cycle length 3.984375 s (quoted 3.9844).
	want := 3984375 * time.Microsecond
	if CycleLength != want {
		t.Fatalf("CycleLength = %v, want %v", CycleLength, want)
	}
	if ForwardCycleSymbols != 12750 {
		t.Fatalf("ForwardCycleSymbols = %d, want 12750", ForwardCycleSymbols)
	}
}

func TestReverseShift(t *testing.T) {
	// δ = 0.09375 + 0.1875 + 0.020 = 0.30125 s (paper §3.4 problem 2 and
	// Table 2 GPS slot 1).
	want := 301250 * time.Microsecond
	if ReverseShift != want {
		t.Fatalf("ReverseShift = %v, want %v", ReverseShift, want)
	}
}

func TestReverseCycleFitsForwardCycle(t *testing.T) {
	// Format 1 payload: 8 GPS + 8 data slots = 3.93 s, leaving the
	// 0.054375 s alignment guard the paper rounds to 0.0544.
	f1 := 8*GPSSlotTime + 8*ReverseDataSlotTime
	if f1 != 3930*time.Millisecond {
		t.Fatalf("format 1 body = %v, want 3.93s", f1)
	}
	pad := CycleLength - f1
	if pad != 54375*time.Microsecond {
		t.Fatalf("format 1 alignment guard = %v, want 54.375ms", pad)
	}
	// Format 2 payload: 3 GPS + 9 data slots + 0.03375 s tail guard.
	f2 := 3*GPSSlotTime + 9*ReverseDataSlotTime +
		SymbolDuration(Format2TailGuardSymbols, ReverseSymbolRate)
	if f2 != 3930*time.Millisecond {
		t.Fatalf("format 2 body = %v, want 3.93s", f2)
	}
}

func TestFrameEfficiency(t *testing.T) {
	want := 128.0 / 150.0
	if got := FrameEfficiency(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FrameEfficiency = %v, want %v", got, want)
	}
}

func TestDataRates(t *testing.T) {
	if got := DataRateBps(Forward); got != 6400 {
		t.Fatalf("forward rate = %d, want 6400", got)
	}
	if got := DataRateBps(Reverse); got != 4800 {
		t.Fatalf("reverse rate = %d, want 4800", got)
	}
	if DataRateBps(Direction(99)) != 0 {
		t.Fatal("unknown direction should have zero rate")
	}
	if SymbolRate(Forward) != 3200 || SymbolRate(Reverse) != 2400 {
		t.Fatal("SymbolRate mismatch")
	}
	if SymbolRate(Direction(0)) != 0 {
		t.Fatal("unknown direction should have zero symbol rate")
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Reverse.String() != "reverse" {
		t.Fatal("Direction.String mismatch")
	}
	if Direction(42).String() == "" {
		t.Fatal("unknown direction should still render")
	}
}

func TestSymbolDurationExactness(t *testing.T) {
	// 969 symbols at 2400 sym/s is exactly 403.75 ms.
	if got := SymbolDuration(969, 2400); got != 403750*time.Microsecond {
		t.Fatalf("969@2400 = %v", got)
	}
	// 300 symbols at 3200 sym/s is exactly 93.75 ms.
	if got := SymbolDuration(300, 3200); got != 93750*time.Microsecond {
		t.Fatalf("300@3200 = %v", got)
	}
	if got := SymbolDuration(0, 2400); got != 0 {
		t.Fatalf("0 symbols = %v", got)
	}
}
