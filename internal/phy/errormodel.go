package phy

import (
	"fmt"

	"github.com/osu-netlab/osumac/internal/sim"
)

// ErrorModel corrupts a coded transmission unit in place. Units are RS
// codewords (byte slices); implementations flip whole bytes, matching
// the symbol-level error behaviour of the narrow-band modem.
//
// Implementations must use only the supplied RNG so runs stay
// deterministic.
type ErrorModel interface {
	// Corrupt mutates cw, returning the number of byte positions
	// changed.
	Corrupt(cw []byte, rng *sim.RNG) int
	// Name identifies the model in experiment output.
	Name() string
}

// Ideal is a noiseless channel.
type Ideal struct{}

var _ ErrorModel = Ideal{}

// Corrupt is a no-op.
func (Ideal) Corrupt([]byte, *sim.RNG) int { return 0 }

// Name implements ErrorModel.
func (Ideal) Name() string { return "ideal" }

// IID corrupts each byte independently with probability P — a binary
// symmetric channel at the RS-symbol level.
type IID struct {
	// P is the per-byte corruption probability.
	P float64
}

var _ ErrorModel = IID{}

// Corrupt implements ErrorModel.
func (m IID) Corrupt(cw []byte, rng *sim.RNG) int {
	changed := 0
	for i := range cw {
		if rng.Bool(m.P) {
			cw[i] ^= byte(rng.UniformInt(1, 255))
			changed++
		}
	}
	return changed
}

// Name implements ErrorModel.
func (m IID) Name() string { return fmt.Sprintf("iid(p=%g)", m.P) }

// GilbertElliott is a two-state burst error model. The channel is in a
// Good or Bad state per byte; transitions follow the given
// probabilities, and each state has its own per-byte error probability.
// With a high PBad this reproduces the paper's field observation that
// errors are either few (corrected by RS) or a long burst (decode
// failure).
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-byte transition probabilities.
	PGoodToBad float64
	PBadToGood float64
	// PGood and PBad are per-byte error probabilities in each state.
	PGood float64
	PBad  float64

	inBad bool
}

var _ ErrorModel = (*GilbertElliott)(nil)

// NewGilbertElliott constructs a burst model with the canonical testbed
// calibration: rare transitions to a severely errored state.
func NewGilbertElliott(pGoodToBad, pBadToGood, pGood, pBad float64) *GilbertElliott {
	return &GilbertElliott{
		PGoodToBad: pGoodToBad,
		PBadToGood: pBadToGood,
		PGood:      pGood,
		PBad:       pBad,
	}
}

// Corrupt implements ErrorModel.
func (m *GilbertElliott) Corrupt(cw []byte, rng *sim.RNG) int {
	changed := 0
	for i := range cw {
		if m.inBad {
			if rng.Bool(m.PBadToGood) {
				m.inBad = false
			}
		} else if rng.Bool(m.PGoodToBad) {
			m.inBad = true
		}
		p := m.PGood
		if m.inBad {
			p = m.PBad
		}
		if rng.Bool(p) {
			cw[i] ^= byte(rng.UniformInt(1, 255))
			changed++
		}
	}
	return changed
}

// Name implements ErrorModel.
func (m *GilbertElliott) Name() string {
	return fmt.Sprintf("gilbert-elliott(g→b=%g,b→g=%g,pg=%g,pb=%g)",
		m.PGoodToBad, m.PBadToGood, m.PGood, m.PBad)
}

// TwoRegime is a cheap surrogate for the full burst-model + RS pipeline,
// matching the paper's observed bimodal outcome directly: with
// probability PLoss the codeword is hit by a burst beyond the correction
// radius (decode fails); otherwise a small correctable number of errors
// occur. It is validated against GilbertElliott+RS in the phy tests and
// used for large parameter sweeps.
type TwoRegime struct {
	// PLoss is the probability a codeword is destroyed.
	PLoss float64
	// MaxCorrectable bounds the benign-regime error count (≤ RS t).
	MaxCorrectable int
}

var _ ErrorModel = TwoRegime{}

// Corrupt implements ErrorModel.
func (m TwoRegime) Corrupt(cw []byte, rng *sim.RNG) int {
	if rng.Bool(m.PLoss) {
		// Burst: corrupt well past any correction radius.
		n := len(cw)/2 + rng.Intn(len(cw)/2+1)
		for _, p := range rng.Shuffled(len(cw))[:n] {
			cw[p] ^= byte(rng.UniformInt(1, 255))
		}
		return n
	}
	maxC := m.MaxCorrectable
	if maxC < 0 {
		maxC = 0
	}
	if maxC == 0 {
		return 0
	}
	n := rng.Intn(maxC + 1)
	for _, p := range rng.Shuffled(len(cw))[:n] {
		cw[p] ^= byte(rng.UniformInt(1, 255))
	}
	return n
}

// Name implements ErrorModel.
func (m TwoRegime) Name() string {
	return fmt.Sprintf("two-regime(loss=%g,maxfix=%d)", m.PLoss, m.MaxCorrectable)
}
