// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel models virtual time as a time.Duration offset from the start
// of the simulation. Events are closures scheduled at absolute virtual
// times and executed in (time, priority, sequence) order, so two events
// scheduled for the same instant run in a deterministic order: first by
// ascending priority, then by scheduling order.
//
// The kernel is single-threaded by design: all protocol entities run in
// the event loop, which removes the need for locking inside protocol
// state machines and makes every run exactly reproducible for a given
// seed. This mirrors the JavaSim environment used by the OSU-MAC paper.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Priority orders events that fire at the same virtual instant. Lower
// values run first.
type Priority int

// Standard priorities. Most events use PriorityNormal; channel-delivery
// events use PriorityDeliver so that receptions complete before the next
// slot's control logic runs at the same instant. PriorityBackbone is
// reserved for cross-cell backbone deliveries: it sorts after every
// local event at the same instant, so a delivery's position in the
// total order depends only on its (time, source cell, source sequence)
// key and never on the scheduling interleaving of unrelated cells —
// the property that lets the sharded multi-cell engine reproduce the
// single-kernel order exactly (see internal/backbone).
const (
	PriorityDeliver  Priority = -10
	PriorityNormal   Priority = 0
	PriorityLate     Priority = 10
	PriorityBackbone Priority = 20
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the horizon was reached.
var ErrStopped = errors.New("simulation stopped")

// Event is a scheduled closure. The closure receives the simulator so
// that handlers can schedule follow-up events without capturing it.
type Event struct {
	at       time.Duration
	priority Priority
	seq      uint64
	index    int // heap index; -1 once popped or canceled
	fn       func()
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Canceled reports whether the event has been canceled or already fired.
func (e *Event) Canceled() bool { return e.index == -1 }

// eventQueue is a min-heap on (at, priority, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// ActionSource feeds pre-sequenced actions into the kernel's main loop
// without per-action heap events. A source exposes its earliest pending
// action via PeekAction; the kernel merges it against the event heap on
// the usual (time, priority, sequence) order and calls FireAction when
// the source wins. Sequence numbers must come from ReserveSeq so that
// source actions and heap events share one total order.
//
// Sources exist for compiled executors (e.g. the core compiled-cycle
// fast path) whose action tables are known ahead of time; everything
// else should keep using At/After.
type ActionSource interface {
	// PeekAction returns the source's earliest pending action without
	// consuming it. ok is false when the source is idle.
	PeekAction() (at time.Duration, p Priority, seq uint64, ok bool)
	// FireAction executes the action PeekAction reported and advances
	// past it. The kernel has already moved the clock to its time.
	FireAction()
}

// Simulator is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Simulator struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	sources []ActionSource
}

// New returns an empty simulator positioned at virtual time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// EventsFired returns the number of events executed so far. It is useful
// for sanity checks and benchmarks.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn at the absolute virtual time at with the given
// priority. Scheduling in the past is an error: the kernel never rewinds
// the clock.
func (s *Simulator) At(at time.Duration, p Priority, fn func()) (*Event, error) {
	if at < s.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", at, s.now)
	}
	ev := &Event{at: at, priority: p, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev, nil
}

// After schedules fn delay after the current virtual time at normal
// priority. Negative delays are clamped to zero.
func (s *Simulator) After(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	ev, err := s.At(s.now+delay, PriorityNormal, fn)
	if err != nil {
		//lint:ignore panicfree provably unreachable: now+delay >= now after clamping delay to zero
		panic(err)
	}
	return ev
}

// AfterPriority schedules fn delay after the current time with an
// explicit priority.
func (s *Simulator) AfterPriority(delay time.Duration, p Priority, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	ev, err := s.At(s.now+delay, p, fn)
	if err != nil {
		//lint:ignore panicfree provably unreachable: now+delay >= now after clamping delay to zero
		panic(err)
	}
	return ev
}

// AttachSource registers an ActionSource with the kernel. Sources stay
// attached for the simulator's lifetime; an idle source costs one
// PeekAction call per loop iteration.
func (s *Simulator) AttachSource(src ActionSource) {
	s.sources = append(s.sources, src)
}

// ReserveSeq hands out the next scheduling sequence number without
// queuing a heap event. ActionSources reserve sequences in the exact
// order the equivalent At calls would have been made, so their actions
// interleave with heap events deterministically.
func (s *Simulator) ReserveSeq() uint64 {
	seq := s.seq
	s.seq++
	return seq
}

// nextUp selects the earliest pending work item — the heap head or an
// attached source's next action — by (at, priority, seq). src is nil
// when the heap head wins; ok is false when nothing is pending at all.
func (s *Simulator) nextUp() (src ActionSource, at time.Duration, ok bool) {
	var (
		p   Priority
		seq uint64
	)
	if len(s.queue) > 0 {
		head := s.queue[0]
		at, p, seq, ok = head.at, head.priority, head.seq, true
	}
	for _, cand := range s.sources {
		cat, cp, cseq, cok := cand.PeekAction()
		if !cok {
			continue
		}
		if !ok || cat < at || (cat == at && (cp < p || (cp == p && cseq < seq))) {
			src, at, p, seq, ok = cand, cat, cp, cseq, true
		}
	}
	return src, at, ok
}

// Cancel removes a scheduled event. Canceling a nil, fired, or already
// canceled event is a no-op and reports false.
func (s *Simulator) Cancel(ev *Event) bool {
	if ev == nil || ev.index == -1 {
		return false
	}
	heap.Remove(&s.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// Stop halts the event loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue drains or virtual time would pass
// horizon. Events scheduled exactly at the horizon still run. It returns
// ErrStopped if Stop was called, otherwise nil.
func (s *Simulator) Run(horizon time.Duration) error {
	s.stopped = false
	for {
		src, at, ok := s.nextUp()
		if !ok {
			break
		}
		if s.stopped {
			return ErrStopped
		}
		if at > horizon {
			// Leave future work queued; advance to the horizon so
			// repeated Run calls see monotonic time.
			s.now = horizon
			return nil
		}
		if src != nil {
			s.now = at
			s.fired++
			src.FireAction()
			continue
		}
		popped, popOK := heap.Pop(&s.queue).(*Event)
		if !popOK {
			return errors.New("sim: corrupt event queue")
		}
		s.now = popped.at
		s.fired++
		fn := popped.fn
		popped.fn = nil
		if fn != nil {
			fn()
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunBefore executes events strictly before limit: every queued event
// or source action with at < limit fires, events at or after limit stay
// queued, and on normal completion the clock is left exactly at limit.
// It is the windowed counterpart of Run (whose horizon is inclusive),
// built for conservative-lookahead shard scheduling: a shard may safely
// execute everything before the next barrier time while cross-shard
// deliveries are guaranteed to be scheduled at or after it. Repeated
// RunBefore calls with increasing limits partition a run into windows
// that fire exactly the events one big Run would have fired, in the
// same order. It returns ErrStopped if Stop was called, leaving the
// clock at the stopping event's time.
func (s *Simulator) RunBefore(limit time.Duration) error {
	s.stopped = false
	for {
		src, at, ok := s.nextUp()
		if !ok {
			break
		}
		if s.stopped {
			return ErrStopped
		}
		if at >= limit {
			break
		}
		if src != nil {
			s.now = at
			s.fired++
			src.FireAction()
			continue
		}
		popped, popOK := heap.Pop(&s.queue).(*Event)
		if !popOK {
			return errors.New("sim: corrupt event queue")
		}
		s.now = popped.at
		s.fired++
		fn := popped.fn
		popped.fn = nil
		if fn != nil {
			fn()
		}
	}
	if s.now < limit {
		s.now = limit
	}
	return nil
}

// RunUntilIdle executes all queued events and leaves the clock at the
// time of the last event fired. It is intended for tests; production
// scenarios should use Run with a finite horizon so that periodic
// processes terminate.
func (s *Simulator) RunUntilIdle() error {
	s.stopped = false
	for {
		src, at, ok := s.nextUp()
		if !ok {
			break
		}
		if s.stopped {
			return ErrStopped
		}
		if src != nil {
			s.now = at
			s.fired++
			src.FireAction()
			continue
		}
		popped, popOK := heap.Pop(&s.queue).(*Event)
		if !popOK {
			return errors.New("sim: corrupt event queue")
		}
		s.now = popped.at
		s.fired++
		fn := popped.fn
		popped.fn = nil
		if fn != nil {
			fn()
		}
	}
	return nil
}

// Every schedules fn to run now+period, now+2·period, … until the
// returned stop function is invoked or the simulation ends. The period
// must be positive.
func (s *Simulator) Every(period time.Duration, fn func()) (stop func(), err error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", period)
	}
	var (
		current *Event
		halted  bool
	)
	var tick func()
	tick = func() {
		if halted {
			return
		}
		fn()
		if halted {
			return
		}
		current = s.After(period, tick)
	}
	current = s.After(period, tick)
	return func() {
		halted = true
		s.Cancel(current)
	}, nil
}
