// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel models virtual time as a time.Duration offset from the start
// of the simulation. Events are closures scheduled at absolute virtual
// times and executed in (time, priority, sequence) order, so two events
// scheduled for the same instant run in a deterministic order: first by
// ascending priority, then by scheduling order.
//
// The kernel is single-threaded by design: all protocol entities run in
// the event loop, which removes the need for locking inside protocol
// state machines and makes every run exactly reproducible for a given
// seed. This mirrors the JavaSim environment used by the OSU-MAC paper.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Priority orders events that fire at the same virtual instant. Lower
// values run first.
type Priority int

// Standard priorities. Most events use PriorityNormal; channel-delivery
// events use PriorityDeliver so that receptions complete before the next
// slot's control logic runs at the same instant.
const (
	PriorityDeliver Priority = -10
	PriorityNormal  Priority = 0
	PriorityLate    Priority = 10
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the horizon was reached.
var ErrStopped = errors.New("simulation stopped")

// Event is a scheduled closure. The closure receives the simulator so
// that handlers can schedule follow-up events without capturing it.
type Event struct {
	at       time.Duration
	priority Priority
	seq      uint64
	index    int // heap index; -1 once popped or canceled
	fn       func()
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Canceled reports whether the event has been canceled or already fired.
func (e *Event) Canceled() bool { return e.index == -1 }

// eventQueue is a min-heap on (at, priority, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Simulator struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
}

// New returns an empty simulator positioned at virtual time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// EventsFired returns the number of events executed so far. It is useful
// for sanity checks and benchmarks.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn at the absolute virtual time at with the given
// priority. Scheduling in the past is an error: the kernel never rewinds
// the clock.
func (s *Simulator) At(at time.Duration, p Priority, fn func()) (*Event, error) {
	if at < s.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", at, s.now)
	}
	ev := &Event{at: at, priority: p, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev, nil
}

// After schedules fn delay after the current virtual time at normal
// priority. Negative delays are clamped to zero.
func (s *Simulator) After(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	ev, err := s.At(s.now+delay, PriorityNormal, fn)
	if err != nil {
		//lint:ignore panicfree provably unreachable: now+delay >= now after clamping delay to zero
		panic(err)
	}
	return ev
}

// AfterPriority schedules fn delay after the current time with an
// explicit priority.
func (s *Simulator) AfterPriority(delay time.Duration, p Priority, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	ev, err := s.At(s.now+delay, p, fn)
	if err != nil {
		//lint:ignore panicfree provably unreachable: now+delay >= now after clamping delay to zero
		panic(err)
	}
	return ev
}

// Cancel removes a scheduled event. Canceling a nil, fired, or already
// canceled event is a no-op and reports false.
func (s *Simulator) Cancel(ev *Event) bool {
	if ev == nil || ev.index == -1 {
		return false
	}
	heap.Remove(&s.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// Stop halts the event loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue drains or virtual time would pass
// horizon. Events scheduled exactly at the horizon still run. It returns
// ErrStopped if Stop was called, otherwise nil.
func (s *Simulator) Run(horizon time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if next.at > horizon {
			// Leave future events queued; advance to the horizon so
			// repeated Run calls see monotonic time.
			s.now = horizon
			return nil
		}
		popped, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			return errors.New("sim: corrupt event queue")
		}
		s.now = popped.at
		s.fired++
		fn := popped.fn
		popped.fn = nil
		if fn != nil {
			fn()
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunUntilIdle executes all queued events and leaves the clock at the
// time of the last event fired. It is intended for tests; production
// scenarios should use Run with a finite horizon so that periodic
// processes terminate.
func (s *Simulator) RunUntilIdle() error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		popped, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			return errors.New("sim: corrupt event queue")
		}
		s.now = popped.at
		s.fired++
		fn := popped.fn
		popped.fn = nil
		if fn != nil {
			fn()
		}
	}
	return nil
}

// Every schedules fn to run now+period, now+2·period, … until the
// returned stop function is invoked or the simulation ends. The period
// must be positive.
func (s *Simulator) Every(period time.Duration, fn func()) (stop func(), err error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", period)
	}
	var (
		current *Event
		halted  bool
	)
	var tick func()
	tick = func() {
		if halted {
			return
		}
		fn()
		if halted {
			return
		}
		current = s.After(period, tick)
	}
	current = s.After(period, tick)
	return func() {
		halted = true
		s.Cancel(current)
	}, nil
}
