package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Fork("alpha")
	root2 := NewRNG(7)
	b := root2.Fork("alpha")
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("forks with identical lineage diverged")
		}
	}
	c := NewRNG(7).Fork("beta")
	d := NewRNG(7).Fork("alpha")
	diff := false
	for i := 0; i < 16; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("differently named forks produced identical streams")
	}
}

func TestForkIndexed(t *testing.T) {
	a := NewRNG(3).ForkIndexed("sub", 1)
	b := NewRNG(3).ForkIndexed("sub", 2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("indexed forks look identical")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(11)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/5 {
			t.Fatalf("bucket %d count %d too far from %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	const mean, trials = 4.0, 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Exp(mean)
	}
	got := sum / trials
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("empirical mean %v, want ~%v", got, mean)
	}
	if r.Exp(0) != 0 || r.Exp(-1) != 0 {
		t.Fatal("non-positive mean should return 0")
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(23)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.02 {
		t.Fatalf("empirical p = %v, want ~%v", got, p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestUniformInt(t *testing.T) {
	r := NewRNG(31)
	for i := 0; i < 1000; i++ {
		v := r.UniformInt(40, 500)
		if v < 40 || v > 500 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
	}
	if r.UniformInt(5, 5) != 5 {
		t.Fatal("degenerate range should return lo")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(41)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

// Property: Intn stays in range for arbitrary seeds and bounds.
func TestPropertyIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 32; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: forked generators with different indices disagree quickly.
func TestPropertyForkSeparation(t *testing.T) {
	f := func(seed uint64, i, j uint8) bool {
		if i == j {
			return true
		}
		a := NewRNG(seed).ForkIndexed("s", int(i))
		b := NewRNG(seed).ForkIndexed("s", int(j))
		for k := 0; k < 8; k++ {
			if a.Uint64() != b.Uint64() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformIntPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UniformInt(5,4) did not panic")
		}
	}()
	NewRNG(1).UniformInt(5, 4)
}

func TestExpGuardsAgainstLogZero(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 100000; i++ {
		v := r.Exp(1.0)
		if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
			t.Fatalf("Exp produced %v", v)
		}
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	r := NewRNG(21)
	perm := r.Shuffled(20)
	if len(perm) != 20 {
		t.Fatalf("length %d", len(perm))
	}
	seen := make([]bool, 20)
	for _, v := range perm {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
	if len(r.Shuffled(0)) != 0 {
		t.Fatal("Shuffled(0) should be empty")
	}
}
