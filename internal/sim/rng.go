package sim

import (
	"math"
	"strconv"
)

// RNG is a small, fast, deterministic pseudo-random number generator
// (SplitMix64 core) with support for named forks. Each protocol entity
// forks its own stream from the scenario seed, so adding a new consumer
// of randomness never perturbs the streams of existing entities — a
// requirement for reproducible cross-version experiment comparisons.
//
// RNG is not safe for concurrent use; the simulation kernel is
// single-threaded, so each run owns its generators.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// splitmix64 advances the state and returns the next 64-bit value.
func (r *RNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fork derives an independent generator from this one, keyed by name.
// Forking with the same name from generators in identical states yields
// identical children.
func (r *RNG) Fork(name string) *RNG {
	h := fnv1a(name)
	base := r.next()
	return &RNG{state: base ^ h ^ 0x6a09e667f3bcc909}
}

// ForkIndexed derives an independent generator keyed by name and index,
// convenient for per-subscriber streams.
func (r *RNG) ForkIndexed(name string, index int) *RNG {
	return r.Fork(name + "#" + strconv.Itoa(index))
}

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next() }

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//lint:ignore panicfree documented API contract matching math/rand.Intn
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.next()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// A non-positive mean returns zero.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// UniformInt returns a uniform int in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) UniformInt(lo, hi int) int {
	if hi < lo {
		//lint:ignore panicfree documented API contract: inverted bounds are a caller logic error
		panic("sim: UniformInt with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Shuffled returns a random permutation of the integers [0, n).
func (r *RNG) Shuffled(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	r.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid1 := t & mask
	c1 := t >> 32
	t = aLo*bHi + mid1
	mid2 := t & mask
	c2 := t >> 32
	hi = aHi*bHi + c1 + c2
	lo |= mid2 << 32
	return hi, lo
}

// fnv1a hashes a string with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
