package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestRunOrdersEventsByTime(t *testing.T) {
	s := New()
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantOrdersByPriorityThenSeq(t *testing.T) {
	s := New()
	var got []string
	at := 5 * time.Millisecond
	if _, err := s.At(at, PriorityLate, func() { got = append(got, "late") }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(at, PriorityNormal, func() { got = append(got, "n1") }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(at, PriorityDeliver, func() { got = append(got, "deliver") }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(at, PriorityNormal, func() { got = append(got, "n2") }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"deliver", "n1", "n2", "late"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSchedulingInPastFails(t *testing.T) {
	s := New()
	s.After(10*time.Millisecond, func() {
		if _, err := s.At(5*time.Millisecond, PriorityNormal, func() {}); err == nil {
			t.Error("scheduling in the past should fail")
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.After(time.Millisecond, func() {
		s.After(-time.Second, func() { fired = true })
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("clamped event did not fire")
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("now = %v, want 1ms", s.Now())
	}
}

func TestHorizonStopsAndAdvancesClock(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (horizon-inclusive)", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("now = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// Resuming runs the remaining event.
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events after resume, want 3", len(fired))
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("now = %v, want horizon 5s on idle queue", s.Now())
	}
}

func TestStopHaltsLoop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	err := s.RunUntilIdle()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev := s.After(time.Millisecond, func() { fired = true })
	if !s.Cancel(ev) {
		t.Fatal("cancel returned false for a live event")
	}
	if s.Cancel(ev) {
		t.Fatal("double cancel returned true")
	}
	if s.Cancel(nil) {
		t.Fatal("cancel(nil) returned true")
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	s := New()
	var got []int
	var events []*Event
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, s.After(time.Duration(i+1)*time.Millisecond, func() {
			got = append(got, i)
		}))
	}
	s.Cancel(events[2])
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEvery(t *testing.T) {
	s := New()
	count := 0
	stop, err := s.Every(time.Second, func() { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	stop()
	if err := s.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count after stop = %d, want 10", count)
	}
}

func TestEveryStopFromWithinTick(t *testing.T) {
	s := New()
	count := 0
	var stop func()
	stop, err := s.Every(time.Second, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
}

func TestEveryRejectsNonPositivePeriod(t *testing.T) {
	s := New()
	if _, err := s.Every(0, func() {}); err == nil {
		t.Fatal("period 0 accepted")
	}
	if _, err := s.Every(-time.Second, func() {}); err == nil {
		t.Fatal("negative period accepted")
	}
}

func TestEventsFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.EventsFired() != 7 {
		t.Fatalf("fired = %d, want 7", s.EventsFired())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock matches each event's scheduled time.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fireTimes []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			if _, err := s.At(at, PriorityNormal, func() {
				if s.Now() != at {
					t.Errorf("clock %v != scheduled %v", s.Now(), at)
				}
				fireTimes = append(fireTimes, s.Now())
			}); err != nil {
				return false
			}
		}
		if err := s.RunUntilIdle(); err != nil {
			return false
		}
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO among equal (time, priority) events.
func TestPropertySameInstantFIFO(t *testing.T) {
	f := func(n uint8) bool {
		s := New()
		count := int(n%64) + 1
		var got []int
		for i := 0; i < count; i++ {
			i := i
			if _, err := s.At(time.Millisecond, PriorityNormal, func() {
				got = append(got, i)
			}); err != nil {
				return false
			}
		}
		if err := s.RunUntilIdle(); err != nil {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return len(got) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEventAccessors(t *testing.T) {
	s := New()
	ev := s.After(5*time.Millisecond, func() {})
	if ev.At() != 5*time.Millisecond {
		t.Fatalf("At() = %v", ev.At())
	}
	if ev.Canceled() {
		t.Fatal("live event reports canceled")
	}
	s.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("canceled event reports live")
	}
}

func TestAfterPriorityOrdersAtSameInstant(t *testing.T) {
	s := New()
	var got []string
	s.AfterPriority(time.Millisecond, PriorityLate, func() { got = append(got, "late") })
	s.AfterPriority(time.Millisecond, PriorityDeliver, func() { got = append(got, "deliver") })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "deliver" || got[1] != "late" {
		t.Fatalf("order = %v", got)
	}
	// Negative delay clamps like After.
	fired := false
	s.AfterPriority(-time.Second, PriorityNormal, func() { fired = true })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("clamped AfterPriority event did not fire")
	}
}

func TestRunBeforeIsExclusive(t *testing.T) {
	s := New()
	var got []int
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	if err := s.RunBefore(20 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("fired %v, want only the event before the limit", got)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("now = %v, want the limit", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
}

func TestRunBeforeWindowsEqualOneRun(t *testing.T) {
	schedule := func(s *Simulator, got *[]int) {
		for i, at := range []time.Duration{5, 10, 10, 15, 20, 25, 30} {
			i := i
			p := PriorityNormal
			if i == 2 {
				p = PriorityBackbone
			}
			if _, err := s.At(at*time.Millisecond, p, func() { *got = append(*got, i) }); err != nil {
				t.Fatal(err)
			}
		}
	}
	one := New()
	var wantOrder []int
	schedule(one, &wantOrder)
	if err := one.Run(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	win := New()
	var got []int
	schedule(win, &got)
	// Windows land both between events and exactly on event times; the
	// final inclusive Run picks up events at the horizon itself.
	for _, limit := range []time.Duration{7, 10, 20, 28} {
		if err := win.RunBefore(limit * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if win.Now() != limit*time.Millisecond {
			t.Fatalf("now = %v, want %v", win.Now(), limit*time.Millisecond)
		}
	}
	if err := win.Run(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantOrder) {
		t.Fatalf("windowed run fired %v, one-shot fired %v", got, wantOrder)
	}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("windowed order %v != one-shot order %v", got, wantOrder)
		}
	}
	if win.EventsFired() != one.EventsFired() {
		t.Fatalf("fired %d events, want %d", win.EventsFired(), one.EventsFired())
	}
}

func TestRunBeforeStop(t *testing.T) {
	s := New()
	s.After(10*time.Millisecond, func() { s.Stop() })
	s.After(20*time.Millisecond, func() { t.Fatal("event after stop fired") })
	if err := s.RunBefore(50 * time.Millisecond); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v, want the stopping event's time", s.Now())
	}
}

func TestRunBeforePastLimitIsNoOp(t *testing.T) {
	s := New()
	s.After(40*time.Millisecond, func() {})
	if err := s.Run(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.RunBefore(10 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("now = %v, clock must never rewind", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the future event untouched", s.Pending())
	}
}

func TestPriorityBackboneSortsAfterLocalEvents(t *testing.T) {
	s := New()
	var got []string
	at := 5 * time.Millisecond
	if _, err := s.At(at, PriorityBackbone, func() { got = append(got, "bb") }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(at, PriorityLate, func() { got = append(got, "late") }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(at, PriorityNormal, func() { got = append(got, "normal") }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"normal", "late", "bb"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
