package span_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	osumac "github.com/osu-netlab/osumac"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/span"
)

// runTraced executes a small scenario and returns its event stream.
func runTraced(t *testing.T, scn osumac.Scenario) []core.TraceEvent {
	t.Helper()
	buf := &core.TraceBuffer{Cap: 1 << 20}
	scn.Tracer = buf
	if _, err := osumac.Run(scn); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return buf.Events()
}

func smallScenario() osumac.Scenario {
	return osumac.Scenario{
		Seed:      42,
		GPSUsers:  4,
		DataUsers: 5,
		Load:      0.6,
		Cycles:    40,
	}
}

// checkTiling asserts a trace's phase spans partition [Start, End]
// contiguously — the property the critical-path analyzer relies on.
func checkTiling(t *testing.T, tr *span.Trace) {
	t.Helper()
	if len(tr.Spans) == 0 {
		t.Fatalf("trace %s has no spans", tr.ID)
	}
	root := tr.Spans[0]
	if root.SpanID != tr.ID+":root" || root.ParentID != "" {
		t.Fatalf("trace %s: bad root span %+v", tr.ID, root)
	}
	cursor := tr.Start
	for _, s := range tr.Spans[1:] {
		if s.ParentID != root.SpanID {
			t.Fatalf("trace %s: span %s parent = %q, want %q", tr.ID, s.SpanID, s.ParentID, root.SpanID)
		}
		if s.Start != cursor {
			t.Fatalf("trace %s: span %s starts at %v, cursor at %v (gap or overlap)",
				tr.ID, s.SpanID, s.Start, cursor)
		}
		if s.End < s.Start {
			t.Fatalf("trace %s: span %s ends before it starts", tr.ID, s.SpanID)
		}
		cursor = s.End
	}
	if cursor != tr.End {
		t.Fatalf("trace %s: phase spans end at %v, trace ends at %v", tr.ID, cursor, tr.End)
	}
}

func TestStitchRealRunLifecycles(t *testing.T) {
	events := runTraced(t, smallScenario())
	set := span.Stitch(events)
	if len(set.Traces) == 0 {
		t.Fatal("no traces stitched from a loaded run")
	}

	var completeMsgs, completeGPS int
	ids := make(map[string]bool)
	for _, tr := range set.Traces {
		if ids[tr.ID] {
			t.Fatalf("duplicate trace ID %s", tr.ID)
		}
		ids[tr.ID] = true
		checkTiling(t, tr)
		if tr.Kind == span.KindMessage && tr.Complete {
			completeMsgs++
			var airtime time.Duration
			for _, s := range tr.Spans {
				if s.Phase == span.PhaseAirtime {
					airtime += s.Duration()
					if s.Slot < 0 {
						t.Errorf("trace %s: airtime span without slot", tr.ID)
					}
					if s.Format == "" {
						t.Errorf("trace %s: airtime span without format", tr.ID)
					}
				}
			}
			if airtime == 0 {
				t.Errorf("complete message %s has zero airtime", tr.ID)
			}
		}
		if tr.Kind == span.KindGPS && tr.Complete {
			completeGPS++
		}
	}
	if completeMsgs == 0 {
		t.Error("no complete message traces")
	}
	if completeGPS == 0 {
		t.Error("no complete GPS traces")
	}

	// The critical path must account for the whole lifecycle.
	for _, tr := range set.Traces {
		bd := tr.CriticalPath()
		var sum time.Duration
		for _, p := range span.AllPhases() {
			sum += bd.ByPhase(p)
		}
		if sum != bd.Total {
			t.Fatalf("trace %s: phases sum to %v, total %v", tr.ID, sum, bd.Total)
		}
	}
}

func TestStitchDeterministic(t *testing.T) {
	a := span.Stitch(runTraced(t, smallScenario()))
	b := span.Stitch(runTraced(t, smallScenario()))
	aj, _ := json.Marshal(a.Traces)
	bj, _ := json.Marshal(b.Traces)
	if !bytes.Equal(aj, bj) {
		t.Fatal("same-seed runs stitched to different trace sets")
	}
}

// synthetic stream helpers ------------------------------------------------

func ev(at time.Duration, cycle int, kind core.EventKind, user frame.UserID, slot int, detail string) core.TraceEvent {
	return core.TraceEvent{At: at, Cycle: cycle, Kind: kind, User: user, Slot: slot, Detail: detail}
}

// TestStitchAcrossFormatSwitch walks a message through a reverse
// format-1 cycle into a format-2 cycle and lands its final fragment in
// data slot 8 — the slot that only exists because format 2 coalesces
// the five unused GPS slots into one extra data slot, and whose
// interval runs past the next cycle start (so its event is stamped
// with the next cycle's index).
func TestStitchAcrossFormatSwitch(t *testing.T) {
	l1 := core.NewLayout(core.Format1)
	l2 := core.NewLayout(core.Format2)
	cyc := func(k int) time.Duration { return time.Duration(k) * phy.CycleLength }
	user := frame.UserID(3)

	lastSlot := l2.LastDataSlot()
	if lastSlot != 8 {
		t.Fatalf("format 2 last data slot = %d, want 8 (5-slot coalescing)", lastSlot)
	}
	if l1.LastDataSlot() != 7 {
		t.Fatalf("format 1 last data slot = %d, want 7", l1.LastDataSlot())
	}
	// The coalesced slot's interval must spill past the next cycle start.
	if cyc(1)+l2.ReverseData[lastSlot].End <= cyc(2) {
		t.Fatal("format 2 overlap slot does not cross the cycle boundary")
	}

	events := []core.TraceEvent{
		ev(0, 0, core.EventCycleStart, frame.NoUser, -1, "format1"),
		ev(100*time.Millisecond, 0, core.EventMessageQueued, user, -1, "msg=7 bytes=240"),
		// Reservation heard in cycle 0's slot 2 (format 1 timing).
		ev(cyc(0)+l1.ReverseData[2].End, 0, core.EventContentionTx, user, 2, "reservation"),
		ev(cyc(0)+l1.ReverseData[2].End, 0, core.EventReservationRx, user, 2, "2 slots"),
		// Cycle 1 switches to format 2 and serves both fragments; the
		// second lands in the coalesced slot 8.
		ev(cyc(1), 1, core.EventCycleStart, frame.NoUser, -1, "format2"),
		ev(cyc(1), 1, core.EventFormatSwitch, frame.NoUser, -1, "format1→format2"),
		ev(cyc(1), 1, core.EventDataSlotGrant, user, 4, ""),
		ev(cyc(1), 1, core.EventDataSlotGrant, user, lastSlot, ""),
		ev(cyc(1)+l2.ReverseData[4].End, 1, core.EventDataRx, user, 4, "msg=7 frag=1/2"),
		// Next cycle begins before the overlap slot ends: the DataRx
		// event carries cycle 2, as in the live stream.
		ev(cyc(2), 2, core.EventCycleStart, frame.NoUser, -1, "format2"),
		ev(cyc(1)+l2.ReverseData[lastSlot].End, 2, core.EventDataRx, user, lastSlot, "msg=7 frag=2/2"),
		ev(cyc(1)+l2.ReverseData[lastSlot].End, 2, core.EventMessageComplete, user, lastSlot, "msg=7 240B in 8s"),
	}

	set := span.Stitch(events)
	tr := set.Find("u3-m7")
	if tr == nil {
		t.Fatalf("trace u3-m7 not stitched; have %d traces", len(set.Traces))
	}
	if !tr.Complete {
		t.Fatal("message not marked complete")
	}
	checkTiling(t, tr)

	var airtimes []span.Span
	for _, s := range tr.Spans {
		if s.Phase == span.PhaseAirtime {
			airtimes = append(airtimes, s)
		}
	}
	if len(airtimes) != 2 {
		t.Fatalf("got %d airtime spans, want 2", len(airtimes))
	}
	// Both fragments belong to cycle 1 under format 2 — including the
	// overlap fragment whose event was stamped cycle 2.
	for _, s := range airtimes {
		if s.Cycle != 1 {
			t.Errorf("airtime span %s: cycle = %d, want 1", s.SpanID, s.Cycle)
		}
		if s.Format != "format2" {
			t.Errorf("airtime span %s: format = %q, want format2", s.SpanID, s.Format)
		}
	}
	if airtimes[1].Slot != lastSlot {
		t.Errorf("second fragment slot = %d, want %d", airtimes[1].Slot, lastSlot)
	}
	wantStart := cyc(1) + l2.ReverseData[lastSlot].Start
	if airtimes[1].Start != wantStart {
		t.Errorf("overlap fragment starts at %v, want %v", airtimes[1].Start, wantStart)
	}

	// The wait between the cycle-0 reservation and the cycle-1 grant is
	// CF wait, crossing the format switch.
	bd := tr.CriticalPath()
	if bd.ByPhase(span.PhaseCFWait) == 0 {
		t.Error("no CF-wait attributed across the format switch")
	}
	if got := bd.ByPhase(span.PhaseContention) + bd.ByPhase(span.PhaseQueueWait); got == 0 {
		t.Error("no pre-reservation wait attributed")
	}
}

// TestStitchCF2ListenerForwardSlotExclusion builds the forward-channel
// side of the CF2-listener rule: the listener (who transmitted in the
// previous cycle's overlap slot) may not receive forward slot 0, which
// sits between CF1 and CF2 — it is still listening for CF2 then. The
// exporter must place the listener's forward occupancy strictly after
// CF2 ends, and slot 0 for the other user strictly before CF2 starts.
func TestStitchCF2ListenerForwardSlotExclusion(t *testing.T) {
	l := core.NewLayout(core.Format1)
	listener, other := frame.UserID(5), frame.UserID(2)

	if l.ForwardData[0].End > l.CF2.Start {
		t.Fatal("forward slot 0 should end before CF2 starts")
	}
	if l.ForwardData[1].Start < l.CF2.End {
		t.Fatal("forward slot 1 should start after CF2 ends")
	}

	events := []core.TraceEvent{
		ev(0, 0, core.EventCycleStart, frame.NoUser, -1, "format1"),
		// sched.AssignForward gives slot 0 to a non-listener and the
		// CF2 listener its first slot at index 1.
		ev(l.ForwardData[0].End, 0, core.EventForwardTx, other, 0, "msg=1 frag=0"),
		ev(l.ForwardData[1].End, 0, core.EventForwardTx, listener, 1, "msg=2 frag=0"),
	}

	var buf bytes.Buffer
	if err := span.WritePerfetto(&buf, events); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}

	usec := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	var sawListener, sawOther bool
	for _, e := range file.TraceEvents {
		switch e.Name {
		case fmt.Sprintf("u%d fwd", listener):
			sawListener = true
			if e.Ts < usec(l.CF2.End) {
				t.Errorf("listener forward tx at ts=%v overlaps CF2 (ends %v)", e.Ts, usec(l.CF2.End))
			}
		case fmt.Sprintf("u%d fwd", other):
			sawOther = true
			if e.Ts+e.Dur > usec(l.CF2.Start) {
				t.Errorf("slot-0 forward tx runs to %v, into CF2 (starts %v)", e.Ts+e.Dur, usec(l.CF2.Start))
			}
		}
	}
	if !sawListener || !sawOther {
		t.Fatalf("missing forward occupancy events (listener=%v other=%v)", sawListener, sawOther)
	}
}

// TestStitchStaleGPSAttribution reproduces the stale-drop shape from
// the ROADMAP autopsy: a report arrives just after its granted slot
// opened, waits through the rest of the cycle plus the next cycle's
// pre-slot region, and is replaced before transmitting. The analyzer
// must attribute the whole window to slot-wait with a "slot opened
// before the report arrived" miss reason.
func TestStitchStaleGPSAttribution(t *testing.T) {
	l := core.NewLayout(core.Format1)
	cyc := func(k int) time.Duration { return time.Duration(k) * phy.CycleLength }
	user := frame.UserID(1)
	slot := 2
	arrive := cyc(0) + l.GPS[slot].Start + 50*time.Millisecond  // just missed it
	replaced := arrive + phy.CycleLength - 120*time.Millisecond // period < slot return

	events := []core.TraceEvent{
		ev(0, 0, core.EventCycleStart, frame.NoUser, -1, "format1"),
		ev(0, 0, core.EventGPSSlotGrant, user, slot, ""),
		ev(arrive, 0, core.EventGPSQueued, user, -1, ""),
		ev(cyc(1), 1, core.EventCycleStart, frame.NoUser, -1, "format1"),
		ev(cyc(1), 1, core.EventGPSSlotGrant, user, slot, ""),
		ev(replaced, 1, core.EventGPSDeadlineViolation, user, -1,
			"stale: previous report replaced before it could be transmitted"),
		ev(replaced, 1, core.EventGPSQueued, user, -1, ""),
	}

	set := span.Stitch(events)
	tr := set.Find("u1-g0")
	if tr == nil {
		t.Fatal("stale report trace not stitched")
	}
	if !tr.Violation || !tr.Stale || tr.Complete {
		t.Fatalf("trace flags = complete=%v violation=%v stale=%v", tr.Complete, tr.Violation, tr.Stale)
	}
	checkTiling(t, tr)

	bd := tr.CriticalPath()
	if bd.Total != replaced-arrive {
		t.Fatalf("total = %v, want %v", bd.Total, replaced-arrive)
	}
	if bd.ByPhase(span.PhaseSlotWait) != bd.Total {
		t.Fatalf("slot-wait = %v, want the whole window %v (got cf-wait %v)",
			bd.ByPhase(span.PhaseSlotWait), bd.Total, bd.ByPhase(span.PhaseCFWait))
	}
	var sawMissReason bool
	for _, s := range bd.Segments {
		if strings.Contains(s.Detail, "before the report arrived") {
			sawMissReason = true
		}
	}
	if !sawMissReason {
		t.Fatalf("no miss reason in segments: %+v", bd.Segments)
	}

	// Second report: open at replacement, closed at stream end.
	if tr2 := set.Find("u1-g1"); tr2 == nil {
		t.Fatal("replacement report trace not stitched")
	}
}

func TestDistributionAndJSONLRoundTrip(t *testing.T) {
	events := runTraced(t, smallScenario())
	set := span.Stitch(events)

	d := span.NewDistribution(set)
	if d.Traces != len(set.Traces) {
		t.Fatalf("distribution traces = %d, want %d", d.Traces, len(set.Traces))
	}
	if d.Complete == 0 {
		t.Fatal("no complete lifecycles in distribution")
	}
	air := d.Phase(span.PhaseAirtime.String())
	if air == nil || air.Count == 0 || air.TotalSeconds <= 0 {
		t.Fatalf("airtime stats missing or empty: %+v", air)
	}
	var bucketSum uint64
	for _, b := range air.Buckets {
		bucketSum += b
	}
	if int(bucketSum) != air.Count {
		t.Fatalf("airtime buckets sum to %d, count is %d", bucketSum, air.Count)
	}

	var buf bytes.Buffer
	if err := span.WriteJSONL(&buf, set); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	spans, err := span.DecodeJSONL(&buf)
	if err != nil {
		t.Fatalf("DecodeJSONL: %v", err)
	}
	var want int
	for _, tr := range set.Traces {
		want += len(tr.Spans)
	}
	if len(spans) != want {
		t.Fatalf("round-trip: %d spans, want %d", len(spans), want)
	}
	for _, s := range spans {
		if s.PhaseName != "" {
			if p, ok := span.ParsePhase(s.PhaseName); !ok || s.Phase != p {
				t.Fatalf("span %s: phase not rebuilt on decode (%q → %v)", s.SpanID, s.PhaseName, s.Phase)
			}
		}
	}
}

func TestPerfettoExportValid(t *testing.T) {
	events := runTraced(t, smallScenario())
	var buf bytes.Buffer
	if err := span.WritePerfetto(&buf, events); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	var meta, spansN, channel int
	for _, e := range file.TraceEvents {
		switch {
		case e.Ph == "M":
			meta++
		case e.Pid == 1:
			spansN++
		case e.Pid == 2:
			channel++
		}
		if e.Ph == "X" && e.Ts < 0 {
			t.Fatalf("negative timestamp on %q", e.Name)
		}
	}
	if meta == 0 || spansN == 0 || channel == 0 {
		t.Fatalf("missing track classes: meta=%d span=%d channel=%d", meta, spansN, channel)
	}
}
