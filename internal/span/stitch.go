package span

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
)

// Stitch folds a recorded trace-event stream into lifecycle traces.
//
// The stitcher leans on the timing contract of the core event stream:
// EventCycleStart fires at the forward cycle start t0 carrying the
// reverse format, slot grants are announced at t0, EventGPSRx fires at
// its slot's start and EventDataRx at its slot's end. Slot intervals
// are reconstructed through core.NewLayout, which makes the δ shift
// between the forward announcement and the reverse slot explicit in the
// resulting spans. Streams with unknown cycle formats (synthetic
// fixtures, filtered captures) degrade gracefully: interval math is
// skipped and the affected spans collapse to zero width instead of
// failing.
func Stitch(events []core.TraceEvent) *Set {
	st := newStitcher()
	st.indexCycles(events)
	for _, e := range events {
		st.consume(e)
	}
	st.finish()
	return st.set
}

// stitchIgnored lists the event kinds the stitcher deliberately does
// not fold into lifecycle traces: control-frame bookkeeping, grant
// announcements already consumed by indexCycles, and per-slot outcomes
// that carry no span boundary. The traceexhaustive analyzer requires
// every core.EventKind to appear here or in a consume/indexCycles case,
// so a newly added event cannot silently fall out of the span trees.
var stitchIgnored = [...]core.EventKind{
	core.EventCFDecodeFailed,
	core.EventRegistrationRx,
	core.EventRegistered,
	core.EventCollision,
	core.EventDataLost,
	core.EventPageResponse,
	core.EventFormatSwitch,
	core.EventMessageDropped,
	core.EventCF2Listener,
	core.EventForwardSlotGrant,
	core.EventGPSAdmitted,
	core.EventGPSLeft,
}

// cycleInfo is the per-cycle context gathered in the indexing pass. A
// baseline-protocol frame (EventFrameStart) fills baselineSlots instead
// of format: its data slots divide phy.CycleLength evenly rather than
// following a core.Layout.
type cycleInfo struct {
	at            time.Duration
	atKnown       bool
	format        core.ReverseFormat // 0 when unparseable
	baselineSlots int                // >0 for baseline frames
	gpsGrant      map[frame.UserID]int
}

// fragSeg is one received data fragment placed on the timeline.
type fragSeg struct {
	cycle, slot                 int
	grantAt, slotStart, slotEnd time.Duration
	format                      core.ReverseFormat
	detail                      string
}

// msgBuilder accumulates one uplink message lifecycle.
type msgBuilder struct {
	tr          *Trace
	firstContTx time.Duration
	contCount   int
	demandAt    time.Duration
	hasDemand   bool
	hasCont     bool
	frags       []fragSeg
	fragSeen    map[int]bool
	partial     bool
}

// gpsBuilder accumulates one GPS report lifecycle.
type gpsBuilder struct {
	tr         *Trace
	lateDetail string
}

type stitcher struct {
	set      *Set
	cycles   map[int]*cycleInfo
	cycleIdx []int // sorted cycle numbers with known start times
	layouts  map[core.ReverseFormat]core.Layout
	msgs     map[frame.UserID][]*msgBuilder
	gps      map[frame.UserID]*gpsBuilder
	gpsSeq   map[frame.UserID]int
	idSeen   map[string]int
	lastAt   time.Duration
}

func newStitcher() *stitcher {
	return &stitcher{
		set:     &Set{},
		cycles:  make(map[int]*cycleInfo),
		layouts: make(map[core.ReverseFormat]core.Layout),
		msgs:    make(map[frame.UserID][]*msgBuilder),
		gps:     make(map[frame.UserID]*gpsBuilder),
		gpsSeq:  make(map[frame.UserID]int),
		idSeen:  make(map[string]int),
	}
}

// indexCycles records each cycle's start time, reverse format and GPS
// grant table before the stitching pass, so slot math and per-cycle
// wait attribution never depend on event lookahead.
func (st *stitcher) indexCycles(events []core.TraceEvent) {
	for _, e := range events {
		switch e.Kind {
		case core.EventCycleStart:
			ci := st.cycle(e.Cycle)
			if !ci.atKnown {
				ci.at = e.At
				ci.atKnown = true
				st.cycleIdx = append(st.cycleIdx, e.Cycle)
			}
			switch e.Detail {
			case core.Format1.String():
				ci.format = core.Format1
			case core.Format2.String():
				ci.format = core.Format2
			}
		case core.EventFrameStart:
			// Baseline-protocol frame boundary: the frame-level analogue
			// of EventCycleStart, with the data-slot count in Slot.
			ci := st.cycle(e.Cycle)
			if !ci.atKnown {
				ci.at = e.At
				ci.atKnown = true
				st.cycleIdx = append(st.cycleIdx, e.Cycle)
			}
			if e.Slot > 0 {
				ci.baselineSlots = e.Slot
			}
			// A frame-start announces a whole frame, so the stream is
			// known to extend to the frame's end even if no later event
			// survives (e.g. under user sampling, where only this
			// carrier-less boundary event is guaranteed through). Keeping
			// lastAt sampling-invariant keeps unfinished-trace endpoints
			// identical between full and sampled stitches.
			if end := e.At + phy.CycleLength; end > st.lastAt {
				st.lastAt = end
			}
		case core.EventGPSSlotGrant:
			ci := st.cycle(e.Cycle)
			if ci.gpsGrant == nil {
				ci.gpsGrant = make(map[frame.UserID]int)
			}
			ci.gpsGrant[e.User] = e.Slot
		}
		if e.Cycle+1 > st.set.Cycles {
			st.set.Cycles = e.Cycle + 1
		}
	}
	sort.Ints(st.cycleIdx)
}

func (st *stitcher) cycle(k int) *cycleInfo {
	ci := st.cycles[k]
	if ci == nil {
		ci = &cycleInfo{}
		st.cycles[k] = ci
	}
	return ci
}

func (st *stitcher) layout(f core.ReverseFormat) (core.Layout, bool) {
	if f != core.Format1 && f != core.Format2 {
		return core.Layout{}, false
	}
	l, ok := st.layouts[f]
	if !ok {
		l = core.NewLayout(f)
		st.layouts[f] = l
	}
	return l, true
}

func (st *stitcher) consume(e core.TraceEvent) {
	st.set.Events++
	if e.At > st.lastAt {
		st.lastAt = e.At
	}
	switch e.Kind {
	case core.EventMessageQueued:
		msgID, _ := detailInt(e.Detail, "msg")
		bytes, _ := detailInt(e.Detail, "bytes")
		st.openMsg(e.User, msgID, bytes, e.At)
	case core.EventContentionTx:
		if e.Detail != frame.TypeReservation.String() {
			return // registration attempts precede any traced lifecycle
		}
		for _, b := range st.msgs[e.User] {
			if !b.hasDemand {
				if !b.hasCont {
					b.hasCont = true
					b.firstContTx = e.At
				}
				b.contCount++
				break
			}
		}
	case core.EventReservationRx, core.EventPiggybackRx, core.EventReservationGrant:
		// The base now knows the user's whole queue: every open message
		// without a heard demand is covered by this announcement.
		// EventReservationGrant is the baseline-side form (PRMA slot
		// capture, D-TDMA/RAMA booking, DRMA piggyback, FAMA floor).
		for _, b := range st.msgs[e.User] {
			if !b.hasDemand {
				b.hasDemand = true
				b.demandAt = e.At
			}
		}
	case core.EventDataRx:
		var msgID, frag, total int
		if _, err := fmt.Sscanf(e.Detail, "msg=%d frag=%d/%d", &msgID, &frag, &total); err != nil {
			return
		}
		b := st.findMsg(e.User, msgID)
		if b == nil {
			// Message queued before the capture started: synthesize a
			// partial trace anchored at this first observed fragment.
			b = st.openMsg(e.User, msgID, 0, e.At)
			b.partial = true
		}
		seg := st.dataSlotTimes(e.Cycle, e.Slot, e.At)
		seg.detail = fmt.Sprintf("frag %d/%d", frag, total)
		if b.fragSeen[frag] {
			b.tr.Retx++
			seg.detail += " (retx)"
		}
		b.fragSeen[frag] = true
		if !b.hasDemand {
			// Served without an observed request (e.g. lump allocation
			// from an earlier piggyback): demand was implicitly known by
			// the granting announcement.
			b.hasDemand = true
			b.demandAt = seg.grantAt
			if b.demandAt < b.tr.Start {
				b.demandAt = b.tr.Start
			}
		}
		if b.partial && seg.grantAt < b.tr.Start {
			b.tr.Start = seg.grantAt
		}
		b.frags = append(b.frags, seg)
	case core.EventMessageComplete:
		msgID, ok := detailInt(e.Detail, "msg")
		if !ok {
			return
		}
		if b := st.findMsg(e.User, msgID); b != nil {
			st.closeMsg(b, e.At, true, "")
		}
	case core.EventGPSQueued:
		if e.User == frame.NoUser {
			return
		}
		if b := st.gps[e.User]; b != nil {
			// No violation event preceded (filtered stream): close the
			// superseded report explicitly rather than leaking it.
			st.closeGPSWait(b, e.At, false, false, "replaced")
		}
		st.openGPS(e.User, e.At)
	case core.EventGPSDeadlineViolation:
		b := st.gps[e.User]
		if b == nil {
			return
		}
		if strings.HasPrefix(e.Detail, "stale") {
			st.closeGPSWait(b, e.At, true, true, e.Detail)
		} else {
			// "late": the report is transmitting right now; the matching
			// EventGPSRx or EventGPSLost closes the trace.
			b.tr.Violation = true
			b.lateDetail = e.Detail
		}
	case core.EventGPSRx:
		if b := st.gps[e.User]; b != nil {
			st.closeGPSServed(b, e, true, e.Detail)
		}
	case core.EventGPSLost:
		if b := st.gps[e.User]; b != nil {
			st.closeGPSServed(b, e, false, "lost on air: "+e.Detail)
		}
	}
}

// finish closes every still-open lifecycle at the stream end.
func (st *stitcher) finish() {
	for _, bs := range st.msgs {
		for _, b := range bs {
			st.closeMsg(b, st.lastAt, false, "unfinished at trace end")
		}
	}
	for _, b := range st.gps {
		st.closeGPSWait(b, st.lastAt, false, false, "unfinished at trace end")
	}
	st.msgs = make(map[frame.UserID][]*msgBuilder)
	st.gps = make(map[frame.UserID]*gpsBuilder)
	sort.SliceStable(st.set.Traces, func(i, j int) bool {
		a, b := st.set.Traces[i], st.set.Traces[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.ID < b.ID
	})
}

func (st *stitcher) openMsg(user frame.UserID, msgID, bytes int, at time.Duration) *msgBuilder {
	base := traceID(KindMessage, user, msgID, 0)
	n := st.idSeen[base]
	st.idSeen[base] = n + 1
	b := &msgBuilder{
		tr: &Trace{
			ID:       traceID(KindMessage, user, msgID, n),
			Kind:     KindMessage,
			KindName: KindMessage.String(),
			User:     user,
			MsgID:    msgID,
			Bytes:    bytes,
			Start:    at,
		},
		fragSeen: make(map[int]bool),
	}
	st.msgs[user] = append(st.msgs[user], b)
	return b
}

func (st *stitcher) findMsg(user frame.UserID, msgID int) *msgBuilder {
	for _, b := range st.msgs[user] {
		if b.tr.MsgID == msgID {
			return b
		}
	}
	return nil
}

func (st *stitcher) removeMsg(b *msgBuilder) {
	bs := st.msgs[b.tr.User]
	for i, x := range bs {
		if x == b {
			st.msgs[b.tr.User] = append(bs[:i], bs[i+1:]...)
			return
		}
	}
}

func (st *stitcher) openGPS(user frame.UserID, at time.Duration) {
	seq := st.gpsSeq[user]
	st.gpsSeq[user] = seq + 1
	st.gps[user] = &gpsBuilder{
		tr: &Trace{
			ID:       traceID(KindGPS, user, seq, 0),
			Kind:     KindGPS,
			KindName: KindGPS.String(),
			User:     user,
			MsgID:    seq,
			Start:    at,
		},
	}
}

// dataSlotTimes places a data fragment on the timeline. The event's
// Cycle field is the cycle current when the slot *ended*; the last data
// slot of cycle k runs past the start of cycle k+1 (the CF2 overlap),
// so the slot's owning cycle is found by checking which candidate's
// layout reproduces the observed end time exactly.
func (st *stitcher) dataSlotTimes(evCycle, slot int, at time.Duration) fragSeg {
	for _, c := range []int{evCycle, evCycle - 1} {
		ci := st.cycles[c]
		if ci == nil || !ci.atKnown {
			continue
		}
		if ci.baselineSlots > 0 {
			// Baseline frame: slots divide the frame evenly and the
			// receipt fires at the slot end. The grant is announced in
			// the frame's reservation phase, i.e. at the frame start.
			if slot < 0 || slot >= ci.baselineSlots {
				continue
			}
			slotDur := phy.CycleLength / time.Duration(ci.baselineSlots)
			start := ci.at + time.Duration(slot)*slotDur
			if start+slotDur == at {
				return fragSeg{
					cycle:     c,
					slot:      slot,
					grantAt:   ci.at,
					slotStart: start,
					slotEnd:   at,
				}
			}
			continue
		}
		l, ok := st.layout(ci.format)
		if !ok || slot < 0 || slot >= len(l.ReverseData) {
			continue
		}
		iv := l.ReverseData[slot]
		if ci.at+iv.End == at {
			return fragSeg{
				cycle:     c,
				slot:      slot,
				grantAt:   ci.at,
				slotStart: ci.at + iv.Start,
				slotEnd:   at,
				format:    ci.format,
			}
		}
	}
	// Unknown format or synthetic stream: degrade to a zero-width slot
	// at the observation time.
	seg := fragSeg{cycle: evCycle, slot: slot, grantAt: at, slotStart: at, slotEnd: at}
	if ci := st.cycles[evCycle]; ci != nil && ci.atKnown && ci.at <= at {
		seg.grantAt = ci.at
		seg.format = ci.format
	}
	return seg
}

// gpsSlotTimes returns the slot interval for a GPS transmission whose
// start time is known (EventGPSRx/EventGPSLost fire at slot start).
func (st *stitcher) gpsSlotTimes(cycle, slot int, start time.Duration) (end time.Duration, format core.ReverseFormat) {
	ci := st.cycles[cycle]
	if ci == nil {
		return start, 0
	}
	l, ok := st.layout(ci.format)
	if !ok || slot < 0 || slot >= len(l.GPS) {
		return start, ci.format
	}
	return start + l.GPS[slot].Duration(), ci.format
}

// closeMsg finalizes a message trace: root span plus critical-path
// phase spans.
func (st *stitcher) closeMsg(b *msgBuilder, end time.Duration, complete bool, detail string) {
	st.removeMsg(b)
	tr := b.tr
	tr.End = end
	tr.Complete = complete
	if end < tr.Start {
		tr.End = tr.Start
	}

	f := newFinalizer(tr)
	sort.SliceStable(b.frags, func(i, j int) bool { return b.frags[i].slotStart < b.frags[j].slotStart })

	cursor := tr.Start
	if b.hasDemand && b.demandAt > cursor {
		if b.hasCont && b.firstContTx < b.demandAt {
			if b.firstContTx > cursor {
				f.add(PhaseQueueWait, cursor, b.firstContTx, -1, -1, "", "")
			}
			from := b.firstContTx
			if from < cursor {
				from = cursor
			}
			f.add(PhaseContention, from, b.demandAt, -1, -1, "",
				fmt.Sprintf("%d reservation attempt(s)", b.contCount))
		} else {
			f.add(PhaseQueueWait, cursor, b.demandAt, -1, -1, "", "")
		}
		cursor = b.demandAt
	}
	for _, seg := range b.frags {
		if seg.grantAt > cursor {
			f.add(PhaseCFWait, cursor, seg.grantAt, seg.cycle, -1, "", "")
			cursor = seg.grantAt
		}
		if seg.slotStart > cursor {
			f.add(PhaseSlotWait, cursor, seg.slotStart, seg.cycle, seg.slot, formatName(seg.format), "")
			cursor = seg.slotStart
		}
		if seg.slotEnd > cursor {
			f.add(PhaseAirtime, cursor, seg.slotEnd, seg.cycle, seg.slot, formatName(seg.format), seg.detail)
			cursor = seg.slotEnd
		}
	}
	if tr.End > cursor {
		f.add(PhaseCFWait, cursor, tr.End, -1, -1, "", "awaiting further grants")
	}
	if complete {
		f.add(PhaseDecode, tr.End, tr.End, -1, -1, "", "rs decode + reassembly")
	}

	rootName := fmt.Sprintf("msg %d", tr.MsgID)
	if tr.Bytes > 0 {
		rootName = fmt.Sprintf("msg %d (%dB)", tr.MsgID, tr.Bytes)
	}
	rootDetail := detail
	if b.partial {
		if rootDetail != "" {
			rootDetail += "; "
		}
		rootDetail += "queued before capture start"
	}
	f.seal(rootName, rootDetail)
	st.set.Traces = append(st.set.Traces, tr)
}

// closeGPSServed finalizes a GPS report that reached its slot (received
// or lost on air). e.At is the slot start.
func (st *stitcher) closeGPSServed(b *gpsBuilder, e core.TraceEvent, complete bool, detail string) {
	delete(st.gps, e.User)
	tr := b.tr
	slotStart := e.At
	slotEnd, format := st.gpsSlotTimes(e.Cycle, e.Slot, slotStart)
	tr.End = slotEnd
	tr.Complete = complete

	f := newFinalizer(tr)
	cursor := tr.Start
	if ci := st.cycles[e.Cycle]; ci != nil && ci.atKnown && ci.at > cursor && ci.at < slotStart {
		// The report waited through earlier cycles: attribute each one,
		// then hand over to the serving cycle's announcement.
		if moved := st.addGPSWaitSegments(f, tr.User, cursor, ci.at); moved > cursor {
			cursor = moved
		}
	}
	if slotStart > cursor {
		f.add(PhaseSlotWait, cursor, slotStart, e.Cycle, e.Slot, formatName(format), "")
	}
	if slotEnd > slotStart {
		f.add(PhaseAirtime, slotStart, slotEnd, e.Cycle, e.Slot, formatName(format), "")
	}
	if complete {
		f.add(PhaseDecode, slotEnd, slotEnd, -1, -1, "", "report decode")
	}

	rootDetail := detail
	if b.lateDetail != "" {
		if rootDetail != "" {
			rootDetail += "; "
		}
		rootDetail += b.lateDetail
	}
	f.seal(fmt.Sprintf("gps %d", tr.MsgID), rootDetail)
	st.set.Traces = append(st.set.Traces, tr)
}

// closeGPSWait finalizes a GPS report that never transmitted (stale
// replacement or stream end): the whole window is wait time, attributed
// cycle by cycle.
func (st *stitcher) closeGPSWait(b *gpsBuilder, end time.Duration, violation, stale bool, detail string) {
	delete(st.gps, b.tr.User)
	tr := b.tr
	tr.End = end
	tr.Complete = false
	tr.Violation = tr.Violation || violation
	tr.Stale = stale
	if tr.End < tr.Start {
		tr.End = tr.Start
	}

	f := newFinalizer(tr)
	cursor := st.addGPSWaitSegments(f, tr.User, tr.Start, tr.End)
	if tr.End > cursor {
		f.add(PhaseCFWait, cursor, tr.End, -1, -1, "", "no cycle information")
	}
	f.seal(fmt.Sprintf("gps %d", tr.MsgID), detail)
	st.set.Traces = append(st.set.Traces, tr)
}

// addGPSWaitSegments attributes [from, to) of a waiting GPS report to
// phases, one segment per notification cycle: slot-wait when the user
// held a GPS grant that cycle (annotated with why the slot was
// unreachable), cf-wait when it held none. Returns the new cursor.
func (st *stitcher) addGPSWaitSegments(f *finalizer, user frame.UserID, from, to time.Duration) time.Duration {
	if to <= from || len(st.cycleIdx) == 0 {
		return from
	}
	// Find the cycle containing `from`.
	i := sort.Search(len(st.cycleIdx), func(i int) bool {
		return st.cycles[st.cycleIdx[i]].at > from
	}) - 1
	if i < 0 {
		i = 0
	}
	cursor := from
	for ; i < len(st.cycleIdx) && cursor < to; i++ {
		c := st.cycleIdx[i]
		ci := st.cycles[c]
		if ci.at >= to {
			break
		}
		segEnd := to
		if i+1 < len(st.cycleIdx) {
			if next := st.cycles[st.cycleIdx[i+1]].at; next < segEnd {
				segEnd = next
			}
		}
		if segEnd <= cursor {
			continue
		}
		slot, granted := -1, false
		if ci.gpsGrant != nil {
			slot, granted = gpsGrantFor(ci.gpsGrant, user)
		}
		if granted {
			reason := "granted slot unused"
			if l, ok := st.layout(ci.format); ok && slot < len(l.GPS) {
				slotStart := ci.at + l.GPS[slot].Start
				switch {
				case slotStart < cursor:
					reason = fmt.Sprintf("slot %d opened %v before the report arrived", slot, cursor-slotStart)
				case slotStart >= to:
					reason = fmt.Sprintf("slot %d opens %v after the report was replaced", slot, slotStart-to)
				}
			}
			f.add(PhaseSlotWait, cursor, segEnd, c, slot, formatName(ci.format), reason)
		} else {
			f.add(PhaseCFWait, cursor, segEnd, c, -1, "", "no GPS slot granted this cycle")
		}
		cursor = segEnd
	}
	return cursor
}

func gpsGrantFor(grants map[frame.UserID]int, user frame.UserID) (int, bool) {
	s, ok := grants[user]
	return s, ok
}

// finalizer assembles a trace's span slice: a root covering the whole
// lifecycle and one child per critical-path segment.
type finalizer struct {
	tr     *Trace
	phases []Span
	counts [phaseCount]int
}

func newFinalizer(tr *Trace) *finalizer { return &finalizer{tr: tr} }

// add appends a phase span; cycle and slot are -1 when unknown.
func (f *finalizer) add(p Phase, start, end time.Duration, cycle, slot int, format, detail string) {
	if end < start {
		return
	}
	i := f.counts[p]
	f.counts[p]++
	f.phases = append(f.phases, Span{
		TraceID:   f.tr.ID,
		SpanID:    fmt.Sprintf("%s:%s-%d", f.tr.ID, p, i),
		ParentID:  f.tr.ID + ":root",
		Name:      p.String(),
		Phase:     p,
		PhaseName: p.String(),
		User:      f.tr.User,
		Start:     start,
		End:       end,
		Cycle:     cycle,
		Slot:      slot,
		Format:    format,
		Detail:    detail,
	})
}

// seal prepends the root span and installs the slice on the trace.
func (f *finalizer) seal(name, detail string) {
	root := Span{
		TraceID: f.tr.ID,
		SpanID:  f.tr.ID + ":root",
		Name:    name,
		User:    f.tr.User,
		Start:   f.tr.Start,
		End:     f.tr.End,
		Cycle:   -1,
		Slot:    -1,
		Retx:    f.tr.Retx,
		Detail:  detail,
	}
	f.tr.Spans = append([]Span{root}, f.phases...)
}

func formatName(f core.ReverseFormat) string {
	if f == core.Format1 || f == core.Format2 {
		return f.String()
	}
	return ""
}

// detailInt scans a "key=<int>" token out of an event detail string.
func detailInt(detail, key string) (int, bool) {
	prefix := key + "="
	for _, tok := range strings.Fields(detail) {
		if !strings.HasPrefix(tok, prefix) {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(tok[len(prefix):], "%d", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}
