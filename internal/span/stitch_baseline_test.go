package span_test

import (
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/baseline"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/span"
)

// runBaselineTraced executes one baseline protocol with tracing on and
// returns the materialized event stream.
func runBaselineTraced(t *testing.T, name string, load float64, frames int) []core.TraceEvent {
	t.Helper()
	buf := &core.TraceBuffer{Cap: 1 << 20}
	if _, err := baseline.Run(baseline.Config{
		Protocol: baseline.ByName(name),
		Users:    10,
		Frames:   frames,
		Load:     load,
		Seed:     5,
		Tracer:   buf,
	}); err != nil {
		t.Fatal(err)
	}
	if buf.Dropped() != 0 {
		t.Fatalf("trace buffer dropped %d events", buf.Dropped())
	}
	return buf.Events()
}

// TestStitchBaselineLifecycles tiles every baseline protocol's traces
// into the shared six-phase model: complete message lifecycles must be
// gap-free from arrival to completion and carry airtime.
func TestStitchBaselineLifecycles(t *testing.T) {
	for _, p := range baseline.All() {
		name := p.Name()
		t.Run(name, func(t *testing.T) {
			set := span.Stitch(runBaselineTraced(t, name, 0.6, 400))
			if len(set.Traces) == 0 {
				t.Fatal("stitched no traces")
			}
			complete := 0
			for _, tr := range set.Traces {
				if tr.Kind != span.KindMessage {
					t.Fatalf("baseline runs carry no GPS service, got trace kind %v", tr.Kind)
				}
				if !tr.Complete {
					continue
				}
				complete++
				cursor := tr.Start
				hasAirtime := false
				for _, s := range tr.Spans[1:] { // Spans[0] is the root
					if s.Start != cursor {
						t.Fatalf("%s: phase %v starts at %v, cursor %v — gap in the tiling",
							name, s.Phase, s.Start, cursor)
					}
					cursor = s.End
					if s.Phase == span.PhaseAirtime {
						hasAirtime = true
					}
				}
				if cursor != tr.End {
					t.Fatalf("%s: phases end at %v, trace ends at %v", name, cursor, tr.End)
				}
				if !hasAirtime {
					t.Fatalf("%s: complete message without airtime", name)
				}
			}
			if complete == 0 {
				t.Fatal("no complete message lifecycles")
			}
		})
	}
}

// TestStitchBaselineAirtimeOnSlotGrid pins the frame reconstruction:
// airtime recovered from frame-start events must sit exactly on the
// synthesized slot grid.
func TestStitchBaselineAirtimeOnSlotGrid(t *testing.T) {
	set := span.Stitch(runBaselineTraced(t, "prma", 0.6, 300))
	slotDur := phy.CycleLength / time.Duration(phy.Format1DataSlots)
	checked := 0
	for _, tr := range set.Traces {
		if !tr.Complete {
			continue
		}
		for _, s := range tr.Spans[1:] {
			if s.Phase != span.PhaseAirtime {
				continue
			}
			checked++
			if s.Start%slotDur != 0 || s.End%slotDur != 0 {
				t.Fatalf("airtime [%v, %v] off the %v slot grid", s.Start, s.End, slotDur)
			}
			if s.End <= s.Start {
				t.Fatalf("empty airtime span [%v, %v]", s.Start, s.End)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no airtime spans checked")
	}
}

// TestStitchBaselineReservationWait asserts the cf-wait phase
// generalizes to reservation-wait: every reservation-based baseline
// shows time between demand registration and the granted slot.
func TestStitchBaselineReservationWait(t *testing.T) {
	for _, name := range []string{"prma", "d-tdma", "rama", "drma"} {
		t.Run(name, func(t *testing.T) {
			set := span.Stitch(runBaselineTraced(t, name, 0.7, 400))
			d := span.NewDistribution(set)
			ps := d.Phase(span.PhaseReservationWait.String())
			if ps == nil || ps.Count == 0 {
				t.Fatalf("no %s spans stitched", span.PhaseReservationWait)
			}
		})
	}
}
