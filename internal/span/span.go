// Package span builds causal, span-structured traces over the flat
// core.TraceEvent stream: each uplink message and each GPS location
// report becomes one trace tree stitching its full lifecycle — enqueue,
// reservation signalling, control-field announcement, slot grant,
// airtime, decode, completion-or-drop — with stable trace/span IDs and
// parent links that cross the δ-shifted forward/reverse cycle boundary.
//
// On top of the model sit a critical-path analyzer that attributes each
// trace's wall-clock time to named phases (queue wait, contention
// backoff, CF wait, slot wait, airtime, decode), exporters to
// Perfetto/Chrome trace-event JSON and to span JSONL, and a per-phase
// distribution used by osumacdiff and the live /spans endpoint.
//
// Everything here is strictly offline: the package consumes an already
// recorded event slice and never touches the simulation hot path, so
// the zero-overhead invariant of the telemetry layer (DESIGN §7) is
// untouched — with tracing disabled nothing in this package runs.
package span

import (
	"fmt"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
)

// Phase names one stage of a message or GPS report lifecycle, in
// causal order. The critical-path analyzer partitions every trace's
// wall-clock duration into these phases.
type Phase int

const (
	// PhaseQueueWait is time at the subscriber before any signalling
	// opportunity (no contention slot reachable yet, or a GPS report
	// waiting for the next cycle's announcement).
	PhaseQueueWait Phase = iota + 1
	// PhaseContention covers reservation attempts and the backoff
	// between them, from the first contention transmission until the
	// base station heard the demand.
	PhaseContention
	// PhaseCFWait is demand-known-at-base until the control fields
	// announcing the serving grant (the base schedules at the next
	// cycle start; lost requests re-enter here).
	PhaseCFWait
	// PhaseSlotWait is grant announcement (CF1 at cycle start) until
	// the granted slot opens on the reverse channel.
	PhaseSlotWait
	// PhaseAirtime is the slot's on-air transmission time.
	PhaseAirtime
	// PhaseDecode is RS decode plus reassembly at the slot end — zero
	// virtual width in this simulation, kept so the model names every
	// stage a real deployment would measure.
	PhaseDecode
)

// phaseCount is one past the highest defined Phase.
const phaseCount = int(PhaseDecode) + 1

// PhaseReservationWait is the protocol-agnostic reading of PhaseCFWait:
// demand known at the base until the serving grant. For OSU-MAC that
// wait ends at a control-field announcement (hence the historical
// name); for the baseline protocols it ends at the frame whose data
// slot serves the fragment. The two are one phase — league tables and
// cross-protocol breakdowns label the same column either way.
const PhaseReservationWait = PhaseCFWait

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseQueueWait:
		return "queue-wait"
	case PhaseContention:
		return "contention-backoff"
	case PhaseCFWait:
		return "cf-wait"
	case PhaseSlotWait:
		return "slot-wait"
	case PhaseAirtime:
		return "airtime"
	case PhaseDecode:
		return "decode"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// ParsePhase resolves a phase's String() form; ok is false for unknown
// names (including the root span's empty phase).
func ParsePhase(s string) (p Phase, ok bool) {
	for p := PhaseQueueWait; int(p) < phaseCount; p++ {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// AllPhases returns every defined phase in causal order.
func AllPhases() []Phase {
	out := make([]Phase, 0, phaseCount-1)
	for p := PhaseQueueWait; int(p) < phaseCount; p++ {
		out = append(out, p)
	}
	return out
}

// TraceKind distinguishes the two traced lifecycles.
type TraceKind int

const (
	// KindMessage is an uplink application message (enqueue →
	// reservation → grants → fragments → completion).
	KindMessage TraceKind = iota + 1
	// KindGPS is one periodic location report (arrival → slot →
	// reception, or stale replacement).
	KindGPS
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case KindMessage:
		return "message"
	case KindGPS:
		return "gps"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// Span is one node of a trace tree. The root span covers the whole
// lifecycle; child spans are its critical-path phases, each carrying
// the protocol attributes (cycle, slot, reverse format, retransmission
// count) of the stage it describes.
type Span struct {
	// TraceID names the trace this span belongs to (see the ID scheme
	// in DESIGN §7: "u<user>-m<msgID>" / "u<user>-g<seq>").
	TraceID string `json:"traceId"`
	// SpanID is unique within the trace: "<traceID>:root" or
	// "<traceID>:<phase>-<i>".
	SpanID string `json:"spanId"`
	// ParentID is the parent span's SpanID; empty for the root.
	ParentID string `json:"parentId,omitempty"`
	// Name is the human label ("msg 17 (344B)", "slot-wait", ...).
	Name string `json:"name"`
	// Phase classifies phase spans; 0 for the root.
	Phase Phase `json:"-"`
	// PhaseName is the Phase's string form, for JSON consumers.
	PhaseName string `json:"phase,omitempty"`
	// User is the subscriber the span belongs to.
	User frame.UserID `json:"user"`
	// Start and End are virtual times.
	Start time.Duration `json:"startNs"`
	End   time.Duration `json:"endNs"`
	// Cycle is the notification cycle the span sits in, or -1 when it
	// crosses cycle boundaries.
	Cycle int `json:"cycle"`
	// Slot is the slot index involved, or -1.
	Slot int `json:"slot"`
	// Format is the reverse format ("format1"/"format2") governing the
	// span's cycle, when known.
	Format string `json:"format,omitempty"`
	// Retx counts retransmissions observed within the span.
	Retx int `json:"retx,omitempty"`
	// Detail is a short annotation (miss reasons, fragment indexes).
	Detail string `json:"detail,omitempty"`
}

// Duration returns the span's width.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Trace is one stitched lifecycle: a root span plus its phase spans.
type Trace struct {
	// ID is the stable trace identifier.
	ID string `json:"id"`
	// Kind is message or gps.
	Kind TraceKind `json:"-"`
	// KindName is Kind's string form, for JSON consumers.
	KindName string `json:"kind"`
	// User is the owning subscriber.
	User frame.UserID `json:"user"`
	// MsgID is the MAC message ID (messages) or the per-user report
	// index (GPS).
	MsgID int `json:"msgId"`
	// Bytes is the application payload size (messages only).
	Bytes int `json:"bytes,omitempty"`
	// Start and End bound the lifecycle.
	Start time.Duration `json:"startNs"`
	End   time.Duration `json:"endNs"`
	// Complete is true when the lifecycle finished successfully
	// (message fully reassembled / report received).
	Complete bool `json:"complete"`
	// Violation marks a GPS report that broke the 4 s access deadline.
	Violation bool `json:"violation,omitempty"`
	// Stale marks the source-side GPS drop (replaced before any slot).
	Stale bool `json:"stale,omitempty"`
	// Retx counts observed retransmissions across the trace.
	Retx int `json:"retx,omitempty"`
	// Spans holds the root span first, then phase spans in time order.
	Spans []Span `json:"spans"`
}

// Duration returns the lifecycle's wall-clock width.
func (t *Trace) Duration() time.Duration { return t.End - t.Start }

// Root returns the root span.
func (t *Trace) Root() Span {
	if len(t.Spans) == 0 {
		return Span{}
	}
	return t.Spans[0]
}

// Set is the result of stitching one event stream.
type Set struct {
	// Traces holds every stitched lifecycle in start order.
	Traces []*Trace
	// Events is how many trace events were consumed.
	Events int
	// Cycles is the highest cycle index observed, plus one.
	Cycles int
}

// ByUser returns the set's traces for one user, in start order.
func (s *Set) ByUser(u frame.UserID) []*Trace {
	var out []*Trace
	for _, t := range s.Traces {
		if t.User == u {
			out = append(out, t)
		}
	}
	return out
}

// Find returns the trace with the given ID, or nil.
func (s *Set) Find(id string) *Trace {
	for _, t := range s.Traces {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Violations returns the GPS traces that broke the deadline, in start
// order.
func (s *Set) Violations() []*Trace {
	var out []*Trace
	for _, t := range s.Traces {
		if t.Violation {
			out = append(out, t)
		}
	}
	return out
}

// traceID builds the stable trace identifier. n disambiguates per-user
// msgID reuse (uint16 wrap on very long runs): 0 yields the plain form.
func traceID(kind TraceKind, user frame.UserID, id, n int) string {
	tag := "m"
	if kind == KindGPS {
		tag = "g"
	}
	if n == 0 {
		return fmt.Sprintf("u%d-%s%d", user, tag, id)
	}
	return fmt.Sprintf("u%d-%s%d#%d", user, tag, id, n)
}
