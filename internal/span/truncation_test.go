package span

import (
	"testing"

	"github.com/osu-netlab/osumac/internal/core"
)

func seqEvents(seqs ...uint64) []core.TraceEvent {
	out := make([]core.TraceEvent, len(seqs))
	for i, s := range seqs {
		out[i] = core.TraceEvent{Seq: s, Kind: core.EventDataRx}
	}
	return out
}

func TestDetectTruncation(t *testing.T) {
	cases := []struct {
		name     string
		events   []core.TraceEvent
		leading  uint64
		interior uint64
	}{
		{"empty", nil, 0, 0},
		{"contiguous from start", seqEvents(1, 2, 3, 4), 0, 0},
		{"leading loss", seqEvents(13, 14, 15), 12, 0},
		{"interior hole", seqEvents(1, 2, 6, 7), 0, 3},
		{"both", seqEvents(5, 6, 10), 4, 3},
		{"no seq evidence", seqEvents(0, 0, 0), 0, 0},
		{"mixed legacy zero seqs skipped", seqEvents(0, 3, 4, 0, 5), 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := DetectTruncation(tc.events)
			if tr.LeadingLost != tc.leading || tr.InteriorLost != tc.interior {
				t.Fatalf("got leading=%d interior=%d, want leading=%d interior=%d",
					tr.LeadingLost, tr.InteriorLost, tc.leading, tc.interior)
			}
			wantTrunc := tc.leading+tc.interior > 0
			if tr.Truncated() != wantTrunc || tr.Total() != tc.leading+tc.interior {
				t.Fatalf("Truncated/Total inconsistent: %+v", tr)
			}
		})
	}
}
