package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
)

// Perfetto / Chrome trace-event JSON export. The output loads directly
// in ui.perfetto.dev (or chrome://tracing): process 1 holds one thread
// track per subscriber showing lifecycle root spans with their
// critical-path phases nested underneath; process 2 holds forward- and
// reverse-channel occupancy tracks reconstructed from the cycle
// schedule announcements. Timestamps and durations are microseconds,
// as the format requires.
//
// Format reference: the Chrome trace-event spec ("X" complete events,
// "M" metadata events with process_name/thread_name args).

const (
	perfettoPidSubscribers = 1
	perfettoPidChannels    = 2
	perfettoTidForward     = 1
	perfettoTidReverse     = 2
)

// perfettoEvent is one trace-event record.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON-object form of a trace-event capture.
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// userTid maps a subscriber to its thread track (tid 0 is reserved).
func userTid(u frame.UserID) int { return int(u) + 1 }

// WritePerfetto stitches the event stream and writes a Perfetto-loadable
// trace-event JSON capture.
func WritePerfetto(w io.Writer, events []core.TraceEvent) error {
	set := Stitch(events)
	return WritePerfettoSet(w, set, events)
}

// WritePerfettoSet writes an already-stitched set. The raw events are
// still needed for the channel-occupancy tracks.
func WritePerfettoSet(w io.Writer, set *Set, events []core.TraceEvent) error {
	var out []perfettoEvent

	// Process/thread naming metadata.
	meta := func(pid, tid int, key, name string) {
		out = append(out, perfettoEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(perfettoPidSubscribers, 0, "process_name", "subscribers")
	meta(perfettoPidChannels, 0, "process_name", "channels")
	meta(perfettoPidChannels, perfettoTidForward, "thread_name", "forward 6.4kbps")
	meta(perfettoPidChannels, perfettoTidReverse, "thread_name", "reverse 4.8kbps")
	users := map[frame.UserID]bool{}
	for _, t := range set.Traces {
		if !users[t.User] {
			users[t.User] = true
			meta(perfettoPidSubscribers, userTid(t.User), "thread_name", fmt.Sprintf("user %d", t.User))
		}
	}

	// Subscriber tracks: root spans with nested phase spans.
	for _, t := range set.Traces {
		for _, s := range t.Spans {
			dur := s.Duration()
			if s.Phase != 0 && dur == 0 {
				continue // zero-width decode markers clutter the UI
			}
			args := map[string]any{"traceId": s.TraceID, "spanId": s.SpanID}
			cat := t.KindName
			name := s.Name
			if s.Phase == 0 {
				args["complete"] = t.Complete
				if t.Violation {
					args["violation"] = true
				}
				if t.Stale {
					args["stale"] = true
				}
				if t.Retx > 0 {
					args["retx"] = t.Retx
				}
				if t.Bytes > 0 {
					args["bytes"] = t.Bytes
				}
			} else {
				cat = "phase"
				if s.Cycle >= 0 {
					args["cycle"] = s.Cycle
				}
				if s.Slot >= 0 {
					args["slot"] = s.Slot
				}
				if s.Format != "" {
					args["format"] = s.Format
				}
			}
			if s.Detail != "" {
				args["detail"] = s.Detail
			}
			out = append(out, perfettoEvent{
				Name: name, Ph: "X", Cat: cat,
				Ts: usec(s.Start), Dur: usec(dur),
				Pid: perfettoPidSubscribers, Tid: userTid(s.User),
				Args: args,
			})
		}
	}

	// Channel-occupancy tracks from the schedule announcements and
	// observed transmissions.
	out = append(out, channelEvents(events)...)

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ph != out[j].Ph && (out[i].Ph == "M" || out[j].Ph == "M") {
			return out[i].Ph == "M" // metadata first
		}
		return out[i].Ts < out[j].Ts
	})
	enc := json.NewEncoder(w)
	return enc.Encode(perfettoFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// channelEvents reconstructs forward/reverse channel occupancy.
func channelEvents(events []core.TraceEvent) []perfettoEvent {
	var out []perfettoEvent
	layouts := map[core.ReverseFormat]core.Layout{}
	layoutOf := func(f core.ReverseFormat) (core.Layout, bool) {
		if f != core.Format1 && f != core.Format2 {
			return core.Layout{}, false
		}
		l, ok := layouts[f]
		if !ok {
			l = core.NewLayout(f)
			layouts[f] = l
		}
		return l, true
	}

	type cyc struct {
		at     time.Duration
		format core.ReverseFormat
	}
	cycles := map[int]cyc{}
	for _, e := range events {
		if e.Kind != core.EventCycleStart {
			continue
		}
		var f core.ReverseFormat
		switch e.Detail {
		case core.Format1.String():
			f = core.Format1
		case core.Format2.String():
			f = core.Format2
		}
		if _, dup := cycles[e.Cycle]; !dup {
			cycles[e.Cycle] = cyc{at: e.At, format: f}
		}
	}

	slotX := func(name, cat string, at time.Duration, iv time.Duration, tid, cycle, slot int, user frame.UserID) perfettoEvent {
		args := map[string]any{"cycle": cycle}
		if slot >= 0 {
			args["slot"] = slot
		}
		if user != frame.NoUser {
			args["user"] = int(user)
		}
		return perfettoEvent{
			Name: name, Ph: "X", Cat: cat,
			Ts: usec(at), Dur: usec(iv),
			Pid: perfettoPidChannels, Tid: tid, Args: args,
		}
	}

	for _, e := range events {
		c, ok := cycles[e.Cycle]
		if !ok {
			continue
		}
		l, ok := layoutOf(c.format)
		if !ok {
			continue
		}
		switch e.Kind {
		case core.EventCycleStart:
			out = append(out,
				slotX("CF1", "control", c.at+l.CF1.Start, l.CF1.Duration(), perfettoTidForward, e.Cycle, -1, frame.NoUser),
				slotX("CF2", "control", c.at+l.CF2.Start, l.CF2.Duration(), perfettoTidForward, e.Cycle, -1, frame.NoUser))
		case core.EventGPSSlotGrant:
			if e.Slot >= 0 && e.Slot < len(l.GPS) {
				iv := l.GPS[e.Slot]
				out = append(out, slotX(fmt.Sprintf("u%d gps", e.User), "gps",
					c.at+iv.Start, iv.Duration(), perfettoTidReverse, e.Cycle, e.Slot, e.User))
			}
		case core.EventDataSlotGrant:
			if e.Slot >= 0 && e.Slot < len(l.ReverseData) {
				iv := l.ReverseData[e.Slot]
				out = append(out, slotX(fmt.Sprintf("u%d data", e.User), "data",
					c.at+iv.Start, iv.Duration(), perfettoTidReverse, e.Cycle, e.Slot, e.User))
			}
		case core.EventContentionTx:
			// Contention happens in an unassigned data slot. The event
			// fires at the slot end, and the overlap slot's event lands in
			// the next cycle, so recover the owning cycle by matching the
			// layout-predicted end time (same rule as the stitcher).
			for _, cand := range []int{e.Cycle, e.Cycle - 1} {
				cc, ok := cycles[cand]
				if !ok {
					continue
				}
				cl, ok := layoutOf(cc.format)
				if !ok || e.Slot < 0 || e.Slot >= len(cl.ReverseData) {
					continue
				}
				iv := cl.ReverseData[e.Slot]
				if cc.at+iv.End != e.At {
					continue
				}
				out = append(out, slotX(fmt.Sprintf("u%d contention (%s)", e.User, e.Detail), "contention",
					cc.at+iv.Start, iv.Duration(), perfettoTidReverse, cand, e.Slot, e.User))
				break
			}
		case core.EventForwardTx:
			if e.Slot >= 0 && e.Slot < len(l.ForwardData) {
				iv := l.ForwardData[e.Slot]
				out = append(out, slotX(fmt.Sprintf("u%d fwd", e.User), "forward",
					c.at+iv.Start, iv.Duration(), perfettoTidForward, e.Cycle, e.Slot, e.User))
			}
		}
	}
	return out
}
