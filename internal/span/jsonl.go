package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Span JSONL export: one JSON object per line, matching the telemetry
// layer's newline-delimited convention (obs.JSONLSink) so span streams
// pipe through the same jq-style tooling as event streams. Every span
// of every trace is emitted, roots first within a trace, traces in
// start order.

// WriteJSONL writes each span of the set as one JSON line.
func WriteJSONL(w io.Writer, set *Set) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range set.Traces {
		for _, s := range t.Spans {
			if err := enc.Encode(s); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads spans written by WriteJSONL, skipping blank lines.
func DecodeJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("span jsonl line %d: %w", line, err)
		}
		if p, ok := ParsePhase(s.PhaseName); ok {
			s.Phase = p // Phase itself is not serialized; rebuild it
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
