package span

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Segment is one critical-path interval of a trace.
type Segment struct {
	// Phase classifies the interval.
	Phase Phase `json:"-"`
	// PhaseName is Phase's string form, for JSON consumers.
	PhaseName string `json:"phase"`
	// Start and End bound the interval.
	Start time.Duration `json:"startNs"`
	End   time.Duration `json:"endNs"`
	// Cycle and Slot locate the interval when known (-1 otherwise).
	Cycle int `json:"cycle"`
	Slot  int `json:"slot"`
	// Detail explains the attribution (miss reasons, attempt counts).
	Detail string `json:"detail,omitempty"`
}

// Duration returns the segment's width.
func (s Segment) Duration() time.Duration { return s.End - s.Start }

// Breakdown is a trace's wall-clock time partitioned into phases.
type Breakdown struct {
	// TraceID names the analyzed trace.
	TraceID string `json:"traceId"`
	// Total is the trace's lifecycle duration.
	Total time.Duration `json:"totalNs"`
	// Segments lists the critical-path intervals in time order.
	Segments []Segment `json:"segments"`
	// ByPhase sums segment durations per phase, indexed by Phase.
	byPhase [phaseCount]time.Duration
}

// CriticalPath partitions the trace's duration into its phase spans.
// The stitcher guarantees the phase spans tile [Start, End] without
// overlap, so the breakdown is exhaustive: summing ByPhase over all
// phases reproduces Total (up to zero-width decode markers).
func (t *Trace) CriticalPath() Breakdown {
	b := Breakdown{TraceID: t.ID, Total: t.Duration()}
	for _, s := range t.Spans {
		if s.Phase == 0 { // root
			continue
		}
		b.Segments = append(b.Segments, Segment{
			Phase:     s.Phase,
			PhaseName: s.Phase.String(),
			Start:     s.Start,
			End:       s.End,
			Cycle:     s.Cycle,
			Slot:      s.Slot,
			Detail:    s.Detail,
		})
		b.byPhase[s.Phase] += s.Duration()
	}
	return b
}

// ByPhase returns the total time attributed to one phase.
func (b *Breakdown) ByPhase(p Phase) time.Duration {
	if int(p) <= 0 || int(p) >= phaseCount {
		return 0
	}
	return b.byPhase[p]
}

// Dominant returns the phase holding the largest share of the
// breakdown, with that share's duration. Zero when the trace is empty.
func (b *Breakdown) Dominant() (Phase, time.Duration) {
	var best Phase
	var bestD time.Duration
	for p := PhaseQueueWait; int(p) < phaseCount; p++ {
		if d := b.byPhase[p]; d > bestD {
			best, bestD = p, d
		}
	}
	return best, bestD
}

// WriteText renders the breakdown as an aligned human-readable table.
func (b *Breakdown) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "critical path for %s (total %v)\n", b.TraceID, b.Total); err != nil {
		return err
	}
	for _, s := range b.Segments {
		loc := ""
		if s.Cycle >= 0 {
			loc = fmt.Sprintf(" c%04d", s.Cycle)
			if s.Slot >= 0 {
				loc += fmt.Sprintf(" slot=%d", s.Slot)
			}
		}
		line := fmt.Sprintf("  %-18s %12v  [%v → %v]%s", s.PhaseName, s.Duration(), s.Start, s.End, loc)
		if s.Detail != "" {
			line += "  " + s.Detail
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	for p := PhaseQueueWait; int(p) < phaseCount; p++ {
		d := b.byPhase[p]
		if d == 0 {
			continue
		}
		pct := 0.0
		if b.Total > 0 {
			pct = 100 * float64(d) / float64(b.Total)
		}
		if _, err := fmt.Fprintf(w, "  Σ %-16s %12v  (%5.1f%%)\n", p.String(), d, pct); err != nil {
			return err
		}
	}
	return nil
}

// PhaseBucketBounds are the shared histogram bucket upper bounds, in
// seconds, used for per-phase duration distributions. They bracket the
// protocol's natural scales: sub-slot (≤0.1 s), intra-cycle, the ~4 s
// cycle/deadline, and multi-cycle starvation.
var PhaseBucketBounds = []float64{0.1, 0.5, 1, 2, 4, 8, 16, 32}

// PhaseStats aggregates one phase across a trace set.
type PhaseStats struct {
	// Phase is the phase's string name.
	Phase string `json:"phase"`
	// Count is how many segments contributed.
	Count int `json:"count"`
	// TotalSeconds and MaxSeconds summarize the contributed time.
	TotalSeconds float64 `json:"totalSeconds"`
	MaxSeconds   float64 `json:"maxSeconds"`
	// Buckets counts segments per PhaseBucketBounds bucket; the last
	// extra element is the overflow (+Inf) bucket.
	Buckets []uint64 `json:"buckets"`
}

// Distribution summarizes a trace set's critical paths: how many
// lifecycles, how they ended, and where their time went per phase.
type Distribution struct {
	// Traces, Complete, Violations and Stale count lifecycles.
	Traces     int `json:"traces"`
	Complete   int `json:"complete"`
	Violations int `json:"violations"`
	Stale      int `json:"stale"`
	// Retx is the total observed retransmissions.
	Retx int `json:"retx"`
	// Phases holds per-phase stats in causal phase order.
	Phases []PhaseStats `json:"phases"`
}

// NewDistribution aggregates every trace's critical path.
func NewDistribution(set *Set) *Distribution {
	d := &Distribution{}
	stats := make(map[Phase]*PhaseStats, phaseCount)
	for _, p := range AllPhases() {
		stats[p] = &PhaseStats{
			Phase:   p.String(),
			Buckets: make([]uint64, len(PhaseBucketBounds)+1),
		}
	}
	for _, t := range set.Traces {
		d.Traces++
		if t.Complete {
			d.Complete++
		}
		if t.Violation {
			d.Violations++
		}
		if t.Stale {
			d.Stale++
		}
		d.Retx += t.Retx
		for _, s := range t.Spans {
			if s.Phase == 0 {
				continue
			}
			ps := stats[s.Phase]
			sec := s.Duration().Seconds()
			ps.Count++
			ps.TotalSeconds += sec
			if sec > ps.MaxSeconds {
				ps.MaxSeconds = sec
			}
			i := sort.SearchFloat64s(PhaseBucketBounds, sec)
			ps.Buckets[i]++
		}
	}
	for _, p := range AllPhases() {
		d.Phases = append(d.Phases, *stats[p])
	}
	return d
}

// Merge folds another distribution into d. Both must carry the full
// causal phase list (as NewDistribution produces); the tournament uses
// this to aggregate one distribution per protocol across the load grid.
func (d *Distribution) Merge(o *Distribution) {
	d.Traces += o.Traces
	d.Complete += o.Complete
	d.Violations += o.Violations
	d.Stale += o.Stale
	d.Retx += o.Retx
	if len(d.Phases) == 0 {
		d.Phases = make([]PhaseStats, len(o.Phases))
		for i, ps := range o.Phases {
			cp := ps
			cp.Buckets = append([]uint64(nil), ps.Buckets...)
			d.Phases[i] = cp
		}
		return
	}
	for i := range o.Phases {
		if i >= len(d.Phases) || d.Phases[i].Phase != o.Phases[i].Phase {
			continue
		}
		dp, op := &d.Phases[i], &o.Phases[i]
		dp.Count += op.Count
		dp.TotalSeconds += op.TotalSeconds
		if op.MaxSeconds > dp.MaxSeconds {
			dp.MaxSeconds = op.MaxSeconds
		}
		for j := range op.Buckets {
			if j < len(dp.Buckets) {
				dp.Buckets[j] += op.Buckets[j]
			}
		}
	}
}

// Phase returns the stats for a named phase, or nil.
func (d *Distribution) Phase(name string) *PhaseStats {
	for i := range d.Phases {
		if d.Phases[i].Phase == name {
			return &d.Phases[i]
		}
	}
	return nil
}
