package span

import "github.com/osu-netlab/osumac/internal/core"

// Truncation summarizes sequence-number evidence that a recorded event
// stream lost events before it was stitched. Every event leaving the
// core tracer carries a contiguous per-run Seq (starting at 1), so a
// bounded recorder that discards events — the flight ring overwriting
// its oldest slots, or TraceBuffer dropping its oldest half — leaves
// detectable gaps: a missing prefix before the first retained event,
// or holes between retained ones.
type Truncation struct {
	// LeadingLost counts events lost before the first retained one
	// (ring overwrite / drop-half both eat from the front).
	LeadingLost uint64
	// InteriorLost counts events missing between retained ones.
	InteriorLost uint64
}

// Total returns all detectably lost events.
func (t Truncation) Total() uint64 { return t.LeadingLost + t.InteriorLost }

// Truncated reports whether any loss was detected.
func (t Truncation) Truncated() bool { return t.Total() > 0 }

// DetectTruncation inspects a stream's Seq numbers. Streams without
// sequence numbers (synthetic fixtures, captures predating Seq) carry
// no evidence and yield the zero Truncation. Events are expected in
// recording order (ascending Seq), which ring snapshots, TraceBuffer
// contents, and JSONL dumps all satisfy.
func DetectTruncation(events []core.TraceEvent) Truncation {
	var tr Truncation
	prev := uint64(0)
	seen := false
	for _, e := range events {
		if e.Seq == 0 {
			continue
		}
		if !seen {
			seen = true
			tr.LeadingLost = e.Seq - 1
		} else if e.Seq > prev+1 {
			tr.InteriorLost += e.Seq - prev - 1
		}
		prev = e.Seq
	}
	return tr
}
