package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
)

// runSmallCell produces a populated metric bundle deterministically.
func runSmallCell(t *testing.T, mutate func(*core.Config)) *core.Network {
	t.Helper()
	cfg := core.NewConfig()
	cfg.Seed = 11
	cfg.MeanInterarrival = 6 * time.Second
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := n.AddSubscriber(frame.EIN(100+i), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := n.AddSubscriber(frame.EIN(300+i), true, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(40); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRegistryGatherMatchesMetrics(t *testing.T) {
	n := runSmallCell(t, nil)
	m := n.Metrics()
	ms := NewRegistry(m).Gather()

	byName := make(map[string]Metric, len(ms))
	for _, mm := range ms {
		if mm.Name == "" || mm.Help == "" {
			t.Fatalf("metric without name/help: %+v", mm)
		}
		if _, dup := byName[mm.Name]; dup {
			t.Fatalf("duplicate metric name %s", mm.Name)
		}
		byName[mm.Name] = mm
	}
	checks := map[string]uint64{
		"osumac_cycles_total":             uint64(m.Cycles),
		"osumac_messages_generated_total": m.MessagesGenerated.Value(),
		"osumac_messages_delivered_total": m.MessagesDelivered.Value(),
		"osumac_gps_generated_total":      m.GPSGenerated.Value(),
		"osumac_data_slots_used_total":    m.DataSlotsUsed.Value(),
	}
	for name, want := range checks {
		got, ok := byName[name]
		if !ok {
			t.Fatalf("metric %s missing", name)
		}
		if got.Kind != KindCounter || uint64(got.Value) != want {
			t.Errorf("%s = %v (%v), want %d", name, got.Value, got.Kind, want)
		}
	}
	if g := byName["osumac_utilization"]; g.Kind != KindGauge || g.Value <= 0 || g.Value > 1 {
		t.Errorf("utilization gauge = %+v", g)
	}
	h, ok := byName["osumac_message_delay_seconds"]
	if !ok || h.Kind != KindHistogram || h.Hist == nil {
		t.Fatalf("message delay histogram missing: %+v", h)
	}
	if h.Hist.Count != uint64(m.MessageDelay.Count()) {
		t.Errorf("histogram count %d, sample count %d", h.Hist.Count, m.MessageDelay.Count())
	}
	if h.Hist.Count == 0 {
		t.Fatal("no message delays recorded in this scenario")
	}
	// Cumulative buckets are monotone and end at the total count.
	prev := uint64(0)
	for i, c := range h.Hist.Counts {
		if c < prev {
			t.Fatalf("bucket %d count %d < previous %d", i, c, prev)
		}
		prev = c
	}
	if got := h.Hist.Counts[len(h.Hist.Counts)-1]; got != h.Hist.Count {
		t.Fatalf("+Inf bucket %d != count %d", got, h.Hist.Count)
	}
}

// promMetric is one parsed exposition family.
type promMetric struct {
	typ     string
	samples map[string]float64 // "name{labels}" → value
}

// parsePrometheus is a strict-enough text-format (0.0.4) parser: every
// sample must follow a TYPE line for its family, values must be valid
// floats, and histogram families must expose _bucket/_sum/_count.
func parsePrometheus(t *testing.T, text string) map[string]*promMetric {
	t.Helper()
	families := make(map[string]*promMetric)
	var cur string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[1])
			}
			cur = parts[0]
			families[cur] = &promMetric{typ: parts[1], samples: map[string]float64{}}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		key, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valText, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated labels %q", ln+1, line)
			}
			name = name[:i]
		}
		fam := families[cur]
		if fam == nil {
			t.Fatalf("line %d: sample %q before any TYPE", ln+1, line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if name != cur && base != cur {
			t.Fatalf("line %d: sample %q does not belong to family %q", ln+1, line, cur)
		}
		fam.samples[key] = val
	}
	return families
}

func TestWritePrometheusIsValidExposition(t *testing.T) {
	n := runSmallCell(t, nil)
	m := n.Metrics()
	var buf bytes.Buffer
	if err := NewRegistry(m).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families := parsePrometheus(t, buf.String())
	if len(families) < 40 {
		t.Fatalf("only %d families exported", len(families))
	}
	if got := families["osumac_messages_generated_total"]; got == nil || got.typ != "counter" {
		t.Fatalf("messages_generated family = %+v", got)
	} else if got.samples["osumac_messages_generated_total"] != float64(m.MessagesGenerated.Value()) {
		t.Fatalf("exposition value %v != %d", got.samples["osumac_messages_generated_total"], m.MessagesGenerated.Value())
	}
	hist := families["osumac_gps_access_delay_seconds"]
	if hist == nil || hist.typ != "histogram" {
		t.Fatalf("gps access delay family = %+v", hist)
	}
	wantCount := float64(m.GPSAccessDelay.Count())
	if got := hist.samples["osumac_gps_access_delay_seconds_count"]; got != wantCount {
		t.Fatalf("histogram count %v, want %v", got, wantCount)
	}
	if got := hist.samples[`osumac_gps_access_delay_seconds_bucket{le="+Inf"}`]; got != wantCount {
		t.Fatalf("+Inf bucket %v, want %v", got, wantCount)
	}
	// The deadline bound must be one of the bucket labels.
	if _, ok := hist.samples[fmt.Sprintf(`osumac_gps_access_delay_seconds_bucket{le=%q}`, "4")]; !ok {
		t.Fatal("no bucket at the 4 s GPS deadline")
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	n := runSmallCell(t, nil)
	var buf bytes.Buffer
	if err := NewRegistry(n.Metrics()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Name  string  `json:"name"`
		Help  string  `json:"help"`
		Kind  string  `json:"kind"`
		Value float64 `json:"value"`
		Hist  *struct {
			Count uint64 `json:"count"`
		} `json:"histogram"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, d := range decoded {
		if d.Name == "" || d.Help == "" {
			t.Fatalf("metric missing name/help: %+v", d)
		}
		kinds[d.Kind]++
	}
	if kinds["counter"] == 0 || kinds["gauge"] == 0 || kinds["histogram"] != 4 {
		t.Fatalf("kind distribution %v", kinds)
	}
}
