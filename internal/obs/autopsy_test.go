package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
)

// syntheticTrace builds a hand-crafted trace with one stale violation
// at cycle 5 for user 3, who held a GPS slot in cycle 4.
func syntheticTrace() []core.TraceEvent {
	mk := func(at time.Duration, cycle int, kind core.EventKind, user int, slot int, detail string) core.TraceEvent {
		return core.TraceEvent{At: at, Cycle: cycle, Kind: kind, User: frame.UserID(user), Slot: slot, Detail: detail}
	}
	var ev []core.TraceEvent
	for c := 0; c <= 5; c++ {
		at := time.Duration(c) * 4 * time.Second
		ev = append(ev, mk(at, c, core.EventCycleStart, 63, -1, "first"))
		if c == 4 {
			ev = append(ev, mk(at, c, core.EventFormatSwitch, 63, -1, "first->second"))
			ev = append(ev, mk(at, c, core.EventGPSSlotGrant, 3, 2, ""))
		}
		ev = append(ev, mk(at, c, core.EventGPSSlotGrant, 1, 0, ""))
		ev = append(ev, mk(at, c, core.EventDataSlotGrant, 2, 0, ""))
	}
	ev = append(ev,
		mk(18*time.Second, 4, core.EventGPSQueued, 3, -1, ""),
		mk(21*time.Second, 5, core.EventGPSDeadlineViolation, 3, -1,
			"stale: previous report replaced before it could be transmitted"),
		mk(21*time.Second, 5, core.EventGPSQueued, 3, -1, ""),
	)
	return ev
}

func TestRunAutopsySynthetic(t *testing.T) {
	rep := RunAutopsy(syntheticTrace(), 2)
	if rep.Empty() || len(rep.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(rep.Violations))
	}
	if rep.Cycles != 6 || rep.Window != 2 {
		t.Fatalf("report header %+v", rep)
	}
	v := rep.Violations[0]
	if v.User != 3 || v.Cycle != 5 || !v.Stale || v.Slot != -1 {
		t.Fatalf("violation %+v", v)
	}
	// Window 2 around cycle 5 → cycles 3, 4, 5.
	if len(v.Schedule) != 3 || v.Schedule[0].Cycle != 3 || v.Schedule[2].Cycle != 5 {
		t.Fatalf("schedule window %+v", v.Schedule)
	}
	c4 := v.Schedule[1]
	if c4.FormatSwitch != "first->second" {
		t.Fatalf("cycle 4 format switch %q", c4.FormatSwitch)
	}
	if len(c4.GPSGrants) != 2 || c4.GPSGrants[0].Slot > c4.GPSGrants[1].Slot {
		t.Fatalf("cycle 4 gps grants not sorted by slot: %+v", c4.GPSGrants)
	}
	// Timeline holds only the victim's events, in order.
	if len(v.Timeline) == 0 {
		t.Fatal("empty victim timeline")
	}
	sawGrant, sawQueued := false, false
	for _, e := range v.Timeline {
		if e.User != v.User {
			t.Fatalf("foreign event in timeline: %+v", e)
		}
		switch e.Kind {
		case core.EventGPSSlotGrant:
			sawGrant = true
		case core.EventGPSQueued:
			sawQueued = true
		}
	}
	if !sawGrant || !sawQueued {
		t.Fatalf("timeline missing grant/queued events: %+v", v.Timeline)
	}
	// The victim held a grant and the report still went stale; the notes
	// must say so, and must flag the format switch.
	notes := strings.Join(v.Notes, "\n")
	if !strings.Contains(notes, "stale") || !strings.Contains(notes, "format switch") {
		t.Fatalf("notes miss the diagnosis: %q", notes)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"1 violation(s)", "user 3, cycle 5", "stale report dropped at source",
		"schedule context:", "victim timeline:", "notes:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestRunAutopsyStarvation(t *testing.T) {
	// A violation with no grant anywhere in the window must be reported
	// as schedule starvation.
	events := []core.TraceEvent{
		{At: 0, Cycle: 0, Kind: core.EventCycleStart, User: 63, Slot: -1, Detail: "first"},
		{At: time.Second, Cycle: 0, Kind: core.EventGPSQueued, User: 9, Slot: -1},
		{At: 5 * time.Second, Cycle: 1, Kind: core.EventCycleStart, User: 63, Slot: -1, Detail: "first"},
		{At: 6 * time.Second, Cycle: 1, Kind: core.EventGPSDeadlineViolation, User: 9, Slot: -1,
			Detail: "stale: previous report replaced before it could be transmitted"},
	}
	rep := RunAutopsy(events, 0)
	if rep.Window != DefaultAutopsyWindow {
		t.Fatalf("window %d, want default %d", rep.Window, DefaultAutopsyWindow)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %d", len(rep.Violations))
	}
	notes := strings.Join(rep.Violations[0].Notes, "\n")
	if !strings.Contains(notes, "starved") {
		t.Fatalf("starvation not diagnosed: %q", notes)
	}
}

func TestRunAutopsyEmpty(t *testing.T) {
	rep := RunAutopsy(nil, 0)
	if !rep.Empty() {
		t.Fatal("empty trace produced violations")
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no violations") {
		t.Fatalf("empty report text: %q", buf.String())
	}
}

// TestAutopsyOnRealTrace drives a loaded cell until a violation occurs,
// then checks the autopsy is built from real emitted events.
func TestAutopsyOnRealTrace(t *testing.T) {
	tb := &core.TraceBuffer{}
	n := runSmallCell(t, func(c *core.Config) {
		c.Tracer = tb
		c.Seed = 8188083318138684029
		c.MeanInterarrival = 2 * time.Second
	})
	_ = n
	rep := RunAutopsy(tb.Events(), 0)
	if rep.Events != len(tb.Events()) || rep.Cycles == 0 {
		t.Fatalf("report header %+v", rep)
	}
	for _, v := range rep.Violations {
		if v.Detail == "" || len(v.Schedule) == 0 || len(v.Timeline) == 0 || len(v.Notes) == 0 {
			t.Fatalf("incomplete violation reconstruction: %+v", v)
		}
	}
}
