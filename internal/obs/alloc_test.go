package obs

import (
	"io"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
)

// TestFilteredTraceAllocsZero proves the zero-overhead invariant for
// the JSONL sink: an event rejected by any filter costs no allocation,
// so narrow sinks are safe on the simulation hot path.
func TestFilteredTraceAllocsZero(t *testing.T) {
	sink := NewJSONLSink(io.Discard).
		FilterKinds(MaskOf(core.EventCollision)).
		FilterUser(5).
		FilterCycles(10, 20)
	ev := core.TraceEvent{At: time.Second, Cycle: 3, Kind: core.EventGPSRx, User: 1, Slot: 0}
	if allocs := testing.AllocsPerRun(1000, func() { sink.Trace(ev) }); allocs != 0 {
		t.Fatalf("filtered Trace allocates %.1f/op, want 0", allocs)
	}
	if sink.Count() != 0 {
		t.Fatalf("filtered events were counted: %d", sink.Count())
	}
}

// TestKindMaskAllocsZero: mask checks are pure bit math.
func TestKindMaskAllocsZero(t *testing.T) {
	m := MaskAll()
	if allocs := testing.AllocsPerRun(1000, func() { _ = m.Has(core.EventGPSRx) }); allocs != 0 {
		t.Fatalf("KindMask.Has allocates %.1f/op", allocs)
	}
}

// TestGatherDoesNotDisturbMetrics: attaching a registry is pull-only —
// gathering twice yields identical values and never mutates the live
// counters (the nil-registry/disabled path is simply "never call
// Gather", which by construction costs the simulation nothing).
func TestGatherDoesNotDisturbMetrics(t *testing.T) {
	n := runSmallCell(t, nil)
	m := n.Metrics()
	before := m.MessagesDelivered.Value()
	a := NewRegistry(m).Gather()
	b := NewRegistry(m).Gather()
	if len(a) != len(b) {
		t.Fatalf("gather lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Value != b[i].Value {
			t.Fatalf("gather not stable at %s: %v vs %v", a[i].Name, a[i].Value, b[i].Value)
		}
	}
	if m.MessagesDelivered.Value() != before {
		t.Fatal("Gather mutated a live counter")
	}
}
