package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
)

func TestLiveEndpointLifecycle(t *testing.T) {
	live := NewLive()
	srv := httptest.NewServer(live.Handler())
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	// Before any publish: metrics/series are unavailable, healthz still
	// answers (that is what makes it a liveness probe).
	if code, _, _ := get("/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("/metrics before publish = %d, want 503", code)
	}
	if code, _, _ := get("/series"); code != http.StatusServiceUnavailable {
		t.Fatalf("/series before publish = %d, want 503", code)
	}
	code, body, _ := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz before publish = %d, want 200", code)
	}
	var health struct {
		Status string `json:"status"`
		Cycle  int    `json:"cycle"`
		Done   bool   `json:"done"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "starting" {
		t.Fatalf("pre-publish status %q", health.Status)
	}

	n := runSmallCell(t, func(c *core.Config) { c.CollectSeries = true })
	n.FlushSeries()
	reg := NewRegistry(n.Metrics())
	live.Publish(reg.Export(40, n.Sim().Now(), true))

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("metrics content type %q", ct)
	}
	families := parsePrometheus(t, body)
	if fam := families["osumac_cycles_total"]; fam == nil || fam.samples["osumac_cycles_total"] != 40 {
		t.Fatalf("served cycles_total family %+v", fam)
	}

	code, body, hdr = get("/series")
	if code != http.StatusOK {
		t.Fatalf("/series = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("series content type %q", ct)
	}
	var series []core.CyclePoint
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatal(err)
	}
	if len(series) != 40 {
		t.Fatalf("served %d series points, want 40", len(series))
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Cycle != 40 || !health.Done {
		t.Fatalf("post-publish health %+v", health)
	}

	if code, _, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
	if code, _, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestExportCopiesSeries(t *testing.T) {
	n := runSmallCell(t, func(c *core.Config) { c.CollectSeries = true })
	n.FlushSeries()
	reg := NewRegistry(n.Metrics())
	exp := reg.Export(40, 10*time.Second, false)
	if exp.Done || exp.Cycle != 40 || exp.AtNS != int64(10*time.Second) {
		t.Fatalf("export header %+v", exp)
	}
	if len(exp.Series) != len(n.Metrics().Series) {
		t.Fatalf("export series %d, live %d", len(exp.Series), len(n.Metrics().Series))
	}
	// Mutating the snapshot must not reach the live series.
	if len(exp.Series) > 0 {
		exp.Series[0].SlotsUsed = -999
		if n.Metrics().Series[0].SlotsUsed == -999 {
			t.Fatal("Export aliases the live series slice")
		}
	}
}
