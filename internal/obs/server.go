package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/span"
)

// Export is one published, immutable telemetry snapshot: the gathered
// metrics, the per-cycle series so far, and run progress. HTTP handlers
// only ever read a complete Export, so the simulation goroutine can
// keep mutating the live core.Metrics between publishes.
type Export struct {
	// Label identifies the snapshot's source when one artifact sits in
	// a set of others — the protocol name in tournament exports
	// ("prma", "osu-mac", ...). Empty for plain single-run snapshots.
	Label   string            `json:"label,omitempty"`
	Metrics []Metric          `json:"metrics"`
	Series  []core.CyclePoint `json:"series"`
	// Spans is the critical-path phase distribution of the stitched
	// lifecycle traces, when the run captured spans (nil otherwise).
	Spans *span.Distribution `json:"spans,omitempty"`
	// Runtime holds the Go runtime self-telemetry (GatherRuntime) for
	// LIVE serving only. Writers of run artifacts must leave it nil:
	// heap sizes and GC pauses are wall-clock facts that would break
	// the osumacdiff byte-identity gate between twin runs.
	Runtime []Metric `json:"runtime,omitempty"`
	Cycle   int      `json:"cycle"`
	Done    bool     `json:"done"`
	AtNS    int64    `json:"atNs"`
}

// Export builds a snapshot for publishing. It copies the series slice
// so the caller may keep appending to the live one.
func (r *Registry) Export(cycle int, at time.Duration, done bool) *Export {
	var series []core.CyclePoint
	if r.m != nil {
		series = make([]core.CyclePoint, len(r.m.Series))
		copy(series, r.m.Series)
	}
	return &Export{
		Label:   r.label,
		Metrics: r.Gather(),
		Series:  series,
		Cycle:   cycle,
		Done:    done,
		AtNS:    int64(at),
	}
}

// Live publishes telemetry snapshots from the simulation goroutine and
// serves them over HTTP. Publish and the handlers may race freely: the
// handlers read whole snapshots through an atomic pointer.
type Live struct {
	cur atomic.Pointer[Export]
}

// NewLive returns an empty publisher; handlers answer 503 for metrics
// and series until the first Publish.
func NewLive() *Live { return &Live{} }

// Publish makes exp the snapshot served from now on.
func (l *Live) Publish(exp *Export) { l.cur.Store(exp) }

// Current returns the latest published snapshot, or nil.
func (l *Live) Current() *Export { return l.cur.Load() }

// Handler serves the observability endpoint:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/series        per-cycle CyclePoint array as JSON
//	/spans         span critical-path phase distribution as JSON
//	/healthz       liveness + run progress as JSON
//	/debug/pprof/  the standard Go profiling handlers
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", l.serveMetrics)
	mux.HandleFunc("/series", l.serveSeries)
	mux.HandleFunc("/spans", l.serveSpans)
	mux.HandleFunc("/healthz", l.serveHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (l *Live) serveMetrics(w http.ResponseWriter, r *http.Request) {
	exp := l.cur.Load()
	if exp == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A broken scrape connection is the client's problem; nothing to
	// recover here.
	_ = WritePrometheus(w, exp.Metrics)
	if len(exp.Runtime) > 0 {
		_ = WritePrometheus(w, exp.Runtime)
	}
}

func (l *Live) serveSeries(w http.ResponseWriter, r *http.Request) {
	exp := l.cur.Load()
	if exp == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	series := exp.Series
	if series == nil {
		series = []core.CyclePoint{}
	}
	_ = json.NewEncoder(w).Encode(series)
}

func (l *Live) serveSpans(w http.ResponseWriter, r *http.Request) {
	exp := l.cur.Load()
	if exp == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	if exp.Spans == nil {
		http.Error(w, "span capture disabled for this run", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(exp.Spans)
}

func (l *Live) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status := struct {
		Status string `json:"status"`
		Cycle  int    `json:"cycle"`
		Done   bool   `json:"done"`
	}{Status: "starting"}
	if exp := l.cur.Load(); exp != nil {
		status.Status = "ok"
		status.Cycle = exp.Cycle
		status.Done = exp.Done
	}
	_ = json.NewEncoder(w).Encode(status)
}
