package obs

import (
	"github.com/osu-netlab/osumac/internal/baseline"
	"github.com/osu-netlab/osumac/internal/stats"
)

// Baseline metric descriptors. The delay histograms deliberately reuse
// messageDelayBounds and gpsAccessDelayBounds, so a baseline snapshot
// and an OSU-MAC snapshot bin the same distributions over the same
// bucket edges — the league table compares like with like.

type baselineCounterDesc struct {
	name, help string
	get        func(*baseline.Metrics) uint64
}

type baselineGaugeDesc struct {
	name, help string
	get        func(*baseline.Metrics) float64
}

type baselineHistDesc struct {
	name, help string
	bounds     []float64
	sample     func(*baseline.Metrics) *stats.Sample
}

var baselineCounterDescs = []baselineCounterDesc{
	{"osumac_baseline_frames_total", "simulated baseline frames", func(m *baseline.Metrics) uint64 { return m.Frames }},
	{"osumac_baseline_slots_offered_total", "data slots offered across frames", func(m *baseline.Metrics) uint64 { return m.SlotsOffered }},
	{"osumac_baseline_slots_used_total", "data slots that carried a fragment", func(m *baseline.Metrics) uint64 { return m.SlotsUsed }},
	{"osumac_baseline_messages_generated_total", "application messages generated", func(m *baseline.Metrics) uint64 { return m.MessagesGenerated }},
	{"osumac_baseline_messages_delivered_total", "application messages fully delivered", func(m *baseline.Metrics) uint64 { return m.MessagesDelivered }},
	{"osumac_baseline_messages_dropped_total", "messages dropped on queue overflow", func(m *baseline.Metrics) uint64 { return m.MessagesDropped }},
	{"osumac_baseline_fragments_delivered_total", "slot-sized fragments delivered", func(m *baseline.Metrics) uint64 { return m.FragmentsDelivered }},
	{"osumac_baseline_contention_tx_total", "reservation attempts transmitted", func(m *baseline.Metrics) uint64 { return m.ContentionTx }},
	{"osumac_baseline_collisions_total", "contention opportunities destroyed by collision", func(m *baseline.Metrics) uint64 { return m.Collisions }},
	{"osumac_baseline_reservation_grants_total", "base-side demand bookings", func(m *baseline.Metrics) uint64 { return m.ReservationGrants }},
	{"osumac_baseline_deadline_misses_total", "messages whose first fragment aired past the 4 s access deadline", func(m *baseline.Metrics) uint64 { return m.DeadlineMisses }},
}

var baselineGaugeDescs = []baselineGaugeDesc{
	{"osumac_baseline_utilization", "fraction of offered data slots carrying a fragment", (*baseline.Metrics).Throughput},
	{"osumac_baseline_collision_rate", "collisions per frame", (*baseline.Metrics).CollisionRate},
	{"osumac_baseline_fairness", "Jain's index over per-user delivered fragments", func(m *baseline.Metrics) float64 { return m.FairnessIndex }},
	{"osumac_baseline_deadline_miss_ratio", "deadline misses over messages that reached the air", func(m *baseline.Metrics) float64 {
		return stats.Ratio(float64(m.DeadlineMisses), float64(m.AccessDelay.Count()))
	}},
}

var baselineHistDescs = []baselineHistDesc{
	{"osumac_baseline_message_delay_seconds", "end-to-end message delay, arrival to last fragment",
		messageDelayBounds, func(m *baseline.Metrics) *stats.Sample { return &m.MessageDelay }},
	{"osumac_baseline_access_delay_seconds", "message arrival-to-first-fragment delay; deadline is 4 s",
		gpsAccessDelayBounds, func(m *baseline.Metrics) *stats.Sample { return &m.AccessDelay }},
}

// NewBaselineRegistry wraps a baseline run's metric bundle. label names
// the protocol ("prma", "rama", ...) and is stamped into every Export
// so osumacdiff's league table can identify snapshots.
func NewBaselineRegistry(label string, m *baseline.Metrics) *Registry {
	return &Registry{b: m, label: label}
}

func (r *Registry) gatherBaseline() []Metric {
	out := make([]Metric, 0, len(baselineCounterDescs)+len(baselineGaugeDescs)+len(baselineHistDescs)+len(r.extras))
	for _, d := range baselineCounterDescs {
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: KindCounter, Value: float64(d.get(r.b))})
	}
	for _, d := range baselineGaugeDescs {
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: KindGauge, Value: d.get(r.b)})
	}
	for _, d := range baselineHistDescs {
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: KindHistogram,
			Hist: snapshotHistogram(d.sample(r.b), d.bounds)})
	}
	for _, d := range r.extras {
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: KindGauge, Value: d.get()})
	}
	return out
}
