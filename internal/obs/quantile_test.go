package obs

import (
	"math"
	"strings"
	"testing"

	"github.com/osu-netlab/osumac/internal/span"
	"github.com/osu-netlab/osumac/internal/stats"
)

// histFromValues builds a snapshot the same way Gather does.
func histFromValues(bounds []float64, values ...float64) *HistogramSnapshot {
	var s stats.Sample
	for _, v := range values {
		s.Add(v)
	}
	return snapshotHistogram(&s, bounds)
}

func TestQuantileUniformDistribution(t *testing.T) {
	// 100 values uniform on (0, 10]: v_i = i/10 for i = 1..100, with
	// bucket bounds every 1.0. The p-quantile of this population is
	// ~10p, and with perfectly even buckets the linear interpolation
	// should land on it exactly.
	bounds := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var values []float64
	for i := 1; i <= 100; i++ {
		values = append(values, float64(i)/10)
	}
	h := histFromValues(bounds, values...)
	for _, tc := range []struct{ p, want float64 }{
		{0.5, 5.0},
		{0.99, 9.9},
		{0.1, 1.0},
		{0.25, 2.5},
		{1.0, 10.0},
	} {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if h.P50 != h.Quantile(0.5) || h.P99 != h.Quantile(0.99) {
		t.Error("P50/P99 not precomputed from Quantile")
	}
}

func TestQuantileSingleBucketInterpolatesFromZero(t *testing.T) {
	// All mass in the first bucket (0, 4]: the estimator interpolates
	// linearly from 0 to the bound.
	h := histFromValues([]float64{4, 8}, 1, 2, 3, 1, 2, 3, 1, 2)
	if got := h.Quantile(0.5); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 2.0 (midpoint of first bucket)", got)
	}
}

func TestQuantileOverflowClampsToHighestBound(t *testing.T) {
	// Mass beyond every bound lands in +Inf; the estimator clamps to
	// the highest finite bound, as histogram_quantile does.
	h := histFromValues([]float64{1, 2}, 5, 6, 7, 8)
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want clamp to 2", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *HistogramSnapshot
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram should yield NaN")
	}
	empty := histFromValues([]float64{1, 2})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram should yield NaN")
	}
	if empty.P50 != 0 || empty.P99 != 0 {
		t.Error("empty histogram must export zero quantiles, not NaN")
	}
	h := histFromValues([]float64{1, 2}, 0.5)
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Error("out-of-range p should yield NaN")
	}
}

func TestGatherExportsQuantiles(t *testing.T) {
	n := runSmallCell(t, nil)
	reg := NewRegistry(n.Metrics())
	for _, m := range reg.Gather() {
		if m.Kind != KindHistogram || m.Hist.Count == 0 {
			continue
		}
		if m.Hist.P50 <= 0 {
			t.Errorf("%s: P50 = %v, want > 0", m.Name, m.Hist.P50)
		}
		if m.Hist.P99 < m.Hist.P50 {
			t.Errorf("%s: P99 %v < P50 %v", m.Name, m.Hist.P99, m.Hist.P50)
		}
	}
	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with quantiles: %v", err)
	}
	if !strings.Contains(buf.String(), `"p50"`) || !strings.Contains(buf.String(), `"p99"`) {
		t.Error("JSON export lacks p50/p99 fields")
	}
}

func TestSpanPhaseMetrics(t *testing.T) {
	if got := SpanPhaseMetrics(nil); got != nil {
		t.Fatalf("nil distribution should yield nil, got %v", got)
	}
	nb := len(span.PhaseBucketBounds)
	buckets := make([]uint64, nb+1)
	buckets[0] = 2 // two observations ≤ first bound
	buckets[2] = 1 // one in the third bucket
	d := &span.Distribution{
		Traces: 3, Complete: 2, Violations: 1, Retx: 4,
		Phases: []span.PhaseStats{
			{Phase: span.PhaseAirtime.String(), Count: 3, TotalSeconds: 1.5, MaxSeconds: 1.0, Buckets: buckets},
		},
	}
	ms := SpanPhaseMetrics(d)
	var hist *Metric
	for i := range ms {
		if ms[i].Name == "osumac_span_phase_airtime_seconds" {
			hist = &ms[i]
		}
	}
	if hist == nil {
		t.Fatalf("airtime phase metric missing: %+v", ms)
	}
	if hist.Kind != KindHistogram || hist.Hist == nil {
		t.Fatal("phase metric is not a histogram")
	}
	// Counts must be cumulative: [2, 2, 3, 3, ..., 3].
	if hist.Hist.Counts[0] != 2 || hist.Hist.Counts[1] != 2 || hist.Hist.Counts[2] != 3 {
		t.Fatalf("counts not cumulative: %v", hist.Hist.Counts)
	}
	if hist.Hist.Counts[nb] != 3 || hist.Hist.Count != 3 {
		t.Fatalf("total count wrong: %v (count %d)", hist.Hist.Counts, hist.Hist.Count)
	}
	if hist.Hist.P50 <= 0 {
		t.Error("phase histogram P50 not computed")
	}

	var found int
	for _, m := range ms {
		switch m.Name {
		case "osumac_span_traces_total":
			found++
			if m.Value != 3 {
				t.Errorf("traces total = %v", m.Value)
			}
		case "osumac_span_violations_total":
			found++
			if m.Value != 1 {
				t.Errorf("violations total = %v", m.Value)
			}
		}
	}
	if found != 2 {
		t.Fatal("lifecycle counters missing")
	}

	// The converted metrics must render as valid exposition text.
	var buf strings.Builder
	if err := WritePrometheus(&buf, ms); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(buf.String(), "osumac_span_phase_airtime_seconds_bucket{le=\"+Inf\"} 3") {
		t.Errorf("exposition missing +Inf bucket:\n%s", buf.String())
	}
	// Dashed phase names must be sanitized for Prometheus.
	if strings.Contains(buf.String(), "-") && strings.Contains(buf.String(), "osumac_span_phase") {
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "osumac_span_phase") && strings.Contains(strings.Fields(line)[0], "-") {
				t.Errorf("unsanitized metric name: %s", line)
			}
		}
	}
}
