package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/span"
)

// TestAutopsyCriticalPath feeds the autopsy a stream carrying full
// lifecycle events and checks each violation gains its stitched trace
// ID and a phase breakdown that accounts for the whole window.
func TestAutopsyCriticalPath(t *testing.T) {
	l := core.NewLayout(core.Format1)
	cycleLen := 4 * time.Second
	user := frame.UserID(1)
	slot := 2
	arrive := l.GPS[slot].Start + 40*time.Millisecond
	replaced := arrive + 3900*time.Millisecond

	mk := func(at time.Duration, cycle int, kind core.EventKind, u frame.UserID, s int, detail string) core.TraceEvent {
		return core.TraceEvent{At: at, Cycle: cycle, Kind: kind, User: u, Slot: s, Detail: detail}
	}
	events := []core.TraceEvent{
		mk(0, 0, core.EventCycleStart, frame.NoUser, -1, "format1"),
		mk(0, 0, core.EventGPSSlotGrant, user, slot, ""),
		mk(arrive, 0, core.EventGPSQueued, user, -1, ""),
		mk(cycleLen, 1, core.EventCycleStart, frame.NoUser, -1, "format1"),
		mk(cycleLen, 1, core.EventGPSSlotGrant, user, slot, ""),
		mk(replaced, 1, core.EventGPSDeadlineViolation, user, -1,
			"stale: previous report replaced before it could be transmitted"),
		mk(replaced, 1, core.EventGPSQueued, user, -1, ""),
	}

	rep := RunAutopsy(events, 0)
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(rep.Violations))
	}
	v := rep.Violations[0]
	if v.TraceID != "u1-g0" {
		t.Fatalf("TraceID = %q, want u1-g0", v.TraceID)
	}
	if v.CriticalPath == nil {
		t.Fatal("no critical path attached")
	}
	if v.CriticalPath.Total != replaced-arrive {
		t.Fatalf("critical path total = %v, want %v", v.CriticalPath.Total, replaced-arrive)
	}
	var sum time.Duration
	for _, p := range span.AllPhases() {
		sum += v.CriticalPath.ByPhase(p)
	}
	if sum != v.CriticalPath.Total {
		t.Fatalf("phases sum to %v, total %v", sum, v.CriticalPath.Total)
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"phase breakdown (trace u1-g0)", "slot-wait", "critical path:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}
}

// TestLiveSpansEndpoint covers the /spans handler's three states.
func TestLiveSpansEndpoint(t *testing.T) {
	live := NewLive()
	srv := httptest.NewServer(live.Handler())
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/spans"); got != 503 {
		t.Fatalf("unpublished /spans = %d, want 503", got)
	}

	n := runSmallCell(t, nil)
	reg := NewRegistry(n.Metrics())
	exp := reg.Export(40, 0, true)
	live.Publish(exp)
	if got := get("/spans"); got != 404 {
		t.Fatalf("/spans without capture = %d, want 404", got)
	}

	exp2 := reg.Export(40, 0, true)
	exp2.Spans = span.NewDistribution(&span.Set{})
	live.Publish(exp2)
	resp, err := srv.Client().Get(srv.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/spans with capture = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
}
