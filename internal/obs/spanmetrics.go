package obs

import (
	"strings"

	"github.com/osu-netlab/osumac/internal/span"
)

// Span-phase metrics: the bridge from the span package's critical-path
// distribution into the registry's Metric model, so phase histograms
// ride the same Prometheus/JSON exposition (and osumacdiff comparison)
// as the protocol metrics.

// spanPhaseMetricName maps a phase name to its metric name
// ("contention-backoff" → "osumac_span_phase_contention_backoff_seconds").
func spanPhaseMetricName(phase string) string {
	return "osumac_span_phase_" + strings.ReplaceAll(phase, "-", "_") + "_seconds"
}

// SpanPhaseMetrics converts a critical-path distribution into
// histogram metrics, one per phase, in causal phase order, followed by
// lifecycle counters. Bucket counts arrive non-cumulative from the
// distribution and are re-binned into the registry's cumulative style.
func SpanPhaseMetrics(d *span.Distribution) []Metric {
	if d == nil {
		return nil
	}
	out := make([]Metric, 0, len(d.Phases)+4)
	for _, ps := range d.Phases {
		h := &HistogramSnapshot{
			UpperBounds: span.PhaseBucketBounds,
			Counts:      make([]uint64, len(span.PhaseBucketBounds)+1),
			Sum:         ps.TotalSeconds,
			Count:       uint64(ps.Count),
		}
		var cum uint64
		for i := range span.PhaseBucketBounds {
			if i < len(ps.Buckets) {
				cum += ps.Buckets[i]
			}
			h.Counts[i] = cum
		}
		h.Counts[len(span.PhaseBucketBounds)] = h.Count
		if h.Count > 0 {
			h.P50 = h.Quantile(0.5)
			h.P99 = h.Quantile(0.99)
		}
		out = append(out, Metric{
			Name: spanPhaseMetricName(ps.Phase),
			Help: "critical-path time attributed to the " + ps.Phase + " phase",
			Kind: KindHistogram,
			Hist: h,
		})
	}
	counters := []struct {
		name, help string
		v          int
	}{
		{"osumac_span_traces_total", "stitched lifecycle traces", d.Traces},
		{"osumac_span_traces_complete_total", "lifecycles completing successfully", d.Complete},
		{"osumac_span_violations_total", "lifecycles breaking the GPS deadline", d.Violations},
		{"osumac_span_retx_total", "retransmissions observed across lifecycles", d.Retx},
	}
	for _, c := range counters {
		out = append(out, Metric{Name: c.name, Help: c.help, Kind: KindCounter, Value: float64(c.v)})
	}
	return out
}
