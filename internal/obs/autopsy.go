package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/span"
)

// DefaultAutopsyWindow is how many cycles of context precede each
// violation in the report.
const DefaultAutopsyWindow = 3

// SlotGrant is one schedule decision announced in a control field.
type SlotGrant struct {
	User frame.UserID `json:"user"`
	Slot int          `json:"slot"`
}

// ScheduleCycle is one cycle's reconstructed schedule.
type ScheduleCycle struct {
	Cycle        int         `json:"cycle"`
	Format       string      `json:"format"`
	FormatSwitch string      `json:"formatSwitch,omitempty"`
	GPSGrants    []SlotGrant `json:"gpsGrants"`
	DataGrants   []SlotGrant `json:"dataGrants"`
}

// Violation is one GPS deadline violation plus the context an engineer
// needs to understand it: the schedule decisions of the preceding
// cycles and the victim's own event timeline (its queue history).
type Violation struct {
	// User is the victim.
	User frame.UserID `json:"user"`
	// Cycle and At locate the violation.
	Cycle int           `json:"cycle"`
	At    time.Duration `json:"at"`
	// Slot is the GPS slot involved, or -1 when the report went stale
	// before any slot (the source-side drop).
	Slot int `json:"slot"`
	// Stale distinguishes the source-side drop from a late transmission.
	Stale bool `json:"stale"`
	// Detail is the traced annotation.
	Detail string `json:"detail"`
	// Schedule covers the window of cycles up to and including the
	// violation cycle.
	Schedule []ScheduleCycle `json:"schedule"`
	// Timeline is the victim's events (queueing, grants, receptions,
	// losses) over the same window, in time order.
	Timeline []core.TraceEvent `json:"timeline"`
	// Notes are heuristic root-cause observations.
	Notes []string `json:"notes"`
	// TraceID names the violated report's stitched lifecycle trace,
	// when the stream carried lifecycle events.
	TraceID string `json:"traceId,omitempty"`
	// CriticalPath attributes the violated report's wall-clock window
	// to lifecycle phases (nil when no lifecycle trace matched).
	CriticalPath *span.Breakdown `json:"criticalPath,omitempty"`
}

// AutopsyReport is the result of RunAutopsy.
type AutopsyReport struct {
	Violations []Violation `json:"violations"`
	// Cycles is the highest cycle index observed, plus one.
	Cycles int `json:"cycles"`
	// Events is how many trace events were analyzed.
	Events int `json:"events"`
	// Window is the context width used, in cycles.
	Window int `json:"window"`
}

// Empty reports whether no violation was found.
func (r *AutopsyReport) Empty() bool { return len(r.Violations) == 0 }

// cycleInfo aggregates one cycle's schedule-relevant events.
type cycleInfo struct {
	format       string
	formatSwitch string
	gps          []SlotGrant
	data         []SlotGrant
}

// RunAutopsy scans a trace for GPS deadline violations and reconstructs
// the scheduling story behind each one. The trace must carry the
// schedule-grant events the core emits whenever a tracer is attached;
// window <= 0 selects DefaultAutopsyWindow.
func RunAutopsy(events []core.TraceEvent, window int) *AutopsyReport {
	if window <= 0 {
		window = DefaultAutopsyWindow
	}
	rep := &AutopsyReport{Events: len(events), Window: window}
	cycles := make(map[int]*cycleInfo)
	info := func(c int) *cycleInfo {
		ci := cycles[c]
		if ci == nil {
			ci = &cycleInfo{}
			cycles[c] = ci
		}
		return ci
	}
	for _, e := range events {
		if e.Cycle+1 > rep.Cycles {
			rep.Cycles = e.Cycle + 1
		}
		switch e.Kind {
		case core.EventCycleStart:
			info(e.Cycle).format = e.Detail
		case core.EventFormatSwitch:
			info(e.Cycle).formatSwitch = e.Detail
		case core.EventGPSSlotGrant:
			ci := info(e.Cycle)
			ci.gps = append(ci.gps, SlotGrant{User: e.User, Slot: e.Slot})
		case core.EventDataSlotGrant:
			ci := info(e.Cycle)
			ci.data = append(ci.data, SlotGrant{User: e.User, Slot: e.Slot})
		}
	}
	// Stitch lifecycle traces once and pair each violation event with
	// its trace in stream order (both derive from the same ordered
	// stream, so the k-th violation of a user matches that user's k-th
	// violated trace).
	stitched := span.Stitch(events)
	nextViolated := make(map[frame.UserID][]*span.Trace)
	for _, tr := range stitched.Violations() {
		nextViolated[tr.User] = append(nextViolated[tr.User], tr)
	}
	for _, e := range events {
		if e.Kind != core.EventGPSDeadlineViolation {
			continue
		}
		v := Violation{
			User:   e.User,
			Cycle:  e.Cycle,
			At:     e.At,
			Slot:   e.Slot,
			Stale:  strings.HasPrefix(e.Detail, "stale"),
			Detail: e.Detail,
		}
		lo := e.Cycle - window
		if lo < 0 {
			lo = 0
		}
		for c := lo; c <= e.Cycle; c++ {
			ci := cycles[c]
			if ci == nil {
				continue
			}
			sc := ScheduleCycle{Cycle: c, Format: ci.format, FormatSwitch: ci.formatSwitch}
			sc.GPSGrants = append(sc.GPSGrants, ci.gps...)
			sc.DataGrants = append(sc.DataGrants, ci.data...)
			sort.Slice(sc.GPSGrants, func(i, j int) bool { return sc.GPSGrants[i].Slot < sc.GPSGrants[j].Slot })
			sort.Slice(sc.DataGrants, func(i, j int) bool { return sc.DataGrants[i].Slot < sc.DataGrants[j].Slot })
			v.Schedule = append(v.Schedule, sc)
		}
		for _, f := range events {
			if f.Cycle < lo || f.Cycle > e.Cycle || f.User != v.User {
				continue
			}
			switch f.Kind {
			case core.EventGPSQueued, core.EventGPSRx, core.EventGPSLost,
				core.EventGPSSlotGrant, core.EventGPSDeadlineViolation:
				v.Timeline = append(v.Timeline, f)
			}
		}
		if trs := nextViolated[v.User]; len(trs) > 0 {
			tr := trs[0]
			nextViolated[v.User] = trs[1:]
			v.TraceID = tr.ID
			bd := tr.CriticalPath()
			v.CriticalPath = &bd
		}
		v.Notes = diagnose(&v)
		if v.CriticalPath != nil {
			if p, d := v.CriticalPath.Dominant(); d > 0 {
				v.Notes = append(v.Notes, fmt.Sprintf(
					"critical path: %v of the %v window went to %s",
					d, v.CriticalPath.Total, p))
			}
		}
		rep.Violations = append(rep.Violations, v)
	}
	return rep
}

// diagnose derives heuristic root-cause notes from a violation's
// reconstructed context.
func diagnose(v *Violation) []string {
	var notes []string
	grants := 0
	for _, sc := range v.Schedule {
		for _, g := range sc.GPSGrants {
			if g.User == v.User {
				grants++
			}
		}
		if sc.FormatSwitch != "" {
			notes = append(notes, fmt.Sprintf(
				"format switch %s at cycle %d reshuffled the slot layout inside the window",
				sc.FormatSwitch, sc.Cycle))
		}
	}
	switch {
	case grants == 0:
		notes = append(notes, fmt.Sprintf(
			"user %d held no GPS slot in the %d cycles before the violation — the schedule starved it",
			v.User, len(v.Schedule)))
	case v.Stale:
		notes = append(notes, fmt.Sprintf(
			"user %d held %d GPS slot grant(s) in the window yet its report still went stale — "+
				"the granted slots preceded the report's arrival within their cycles",
			v.User, grants))
	default:
		notes = append(notes, fmt.Sprintf(
			"user %d transmitted late despite %d slot grant(s) in the window", v.User, grants))
	}
	return notes
}

// WriteText renders the report for humans.
func (r *AutopsyReport) WriteText(w io.Writer) error {
	if r.Empty() {
		_, err := fmt.Fprintf(w, "GPS deadline autopsy: no violations in %d events over %d cycles\n",
			r.Events, r.Cycles)
		return err
	}
	if _, err := fmt.Fprintf(w, "GPS deadline autopsy: %d violation(s) in %d events over %d cycles (window %d)\n",
		len(r.Violations), r.Events, r.Cycles, r.Window); err != nil {
		return err
	}
	for i, v := range r.Violations {
		kind := "late transmission"
		if v.Stale {
			kind = "stale report dropped at source"
		}
		if _, err := fmt.Fprintf(w, "\nviolation %d: user %d, cycle %d, t=%v — %s\n  %s\n",
			i+1, v.User, v.Cycle, v.At, kind, v.Detail); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  schedule context:\n"); err != nil {
			return err
		}
		for _, sc := range v.Schedule {
			line := fmt.Sprintf("    cycle %d format=%s", sc.Cycle, sc.Format)
			if sc.FormatSwitch != "" {
				line += " (switch " + sc.FormatSwitch + ")"
			}
			line += " gps=" + formatGrants(sc.GPSGrants) + " data=" + formatGrants(sc.DataGrants)
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  victim timeline:\n"); err != nil {
			return err
		}
		for _, e := range v.Timeline {
			if _, err := fmt.Fprintf(w, "    %v\n", e); err != nil {
				return err
			}
		}
		if v.CriticalPath != nil {
			var b strings.Builder
			if err := v.CriticalPath.WriteText(&b); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "  phase breakdown (trace %s):\n", v.TraceID); err != nil {
				return err
			}
			for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
				if _, err := fmt.Fprintf(w, "  %s\n", line); err != nil {
					return err
				}
			}
		}
		if len(v.Notes) > 0 {
			if _, err := fmt.Fprintf(w, "  notes:\n"); err != nil {
				return err
			}
			for _, note := range v.Notes {
				if _, err := fmt.Fprintf(w, "    - %s\n", note); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// formatGrants renders grants as "[slot:user ...]".
func formatGrants(gs []SlotGrant) string {
	if len(gs) == 0 {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, g := range gs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:u%d", g.Slot, g.User)
	}
	b.WriteByte(']')
	return b.String()
}
