package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
)

// KindMask is a bitmask over core.EventKind, for cheap trace filtering.
// The zero mask means "no filter" (all kinds pass).
type KindMask uint64

// MaskOf builds a mask matching exactly the given kinds.
func MaskOf(kinds ...core.EventKind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// MaskAll returns a mask matching every defined kind.
func MaskAll() KindMask { return MaskOf(core.AllEventKinds()...) }

// Has reports whether the mask matches kind. The zero mask matches
// everything.
func (m KindMask) Has(k core.EventKind) bool {
	return m == 0 || m&(1<<uint(k)) != 0
}

// ParseKinds builds a mask from a comma-separated list of event-kind
// names (the EventKind.String forms, e.g. "gps-rx,collision"). An empty
// string yields the zero (match-all) mask.
func ParseKinds(csv string) (KindMask, error) {
	if strings.TrimSpace(csv) == "" {
		return 0, nil
	}
	var m KindMask
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		k, ok := core.ParseEventKind(name)
		if !ok {
			return 0, fmt.Errorf("obs: unknown event kind %q", name)
		}
		m |= 1 << uint(k)
	}
	return m, nil
}

// traceRecord is the JSONL wire form of one core.TraceEvent.
type traceRecord struct {
	AtNS   int64  `json:"atNs"`
	Seq    uint64 `json:"seq,omitempty"`
	Cycle  int    `json:"cycle"`
	Kind   string `json:"kind"`
	User   int    `json:"user"`
	Slot   int    `json:"slot"`
	Detail string `json:"detail,omitempty"`
}

// JSONLSink streams trace events as one JSON object per line to any
// io.Writer, optionally filtered by kind bitmask, user, and cycle
// range. It implements core.Tracer; events that fail a filter cost no
// allocation. Writer errors are sticky: the first one is retained (see
// Err) and later events are dropped.
type JSONLSink struct {
	w        *bufio.Writer
	enc      *json.Encoder
	kinds    KindMask
	user     frame.UserID
	byUser   bool
	minCycle int
	maxCycle int // -1: unbounded
	count    int
	err      error
}

var _ core.Tracer = (*JSONLSink)(nil)

// NewJSONLSink wraps w. Call Flush when the run is over.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	//lint:ignore hotpathalloc constructing a sink is setup or anomaly-path work (e.g. a flight-recorder dump), never per-event work
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw), maxCycle: -1}
}

// FilterKinds restricts the sink to kinds in mask (zero = all kinds).
func (s *JSONLSink) FilterKinds(mask KindMask) *JSONLSink {
	s.kinds = mask
	return s
}

// FilterUser restricts the sink to events naming one user.
func (s *JSONLSink) FilterUser(u frame.UserID) *JSONLSink {
	s.user, s.byUser = u, true
	return s
}

// FilterCycles restricts the sink to cycles in [lo, hi]; hi < 0 means
// unbounded above.
func (s *JSONLSink) FilterCycles(lo, hi int) *JSONLSink {
	s.minCycle, s.maxCycle = lo, hi
	return s
}

// Trace implements core.Tracer.
func (s *JSONLSink) Trace(e core.TraceEvent) {
	if s.err != nil || !s.kinds.Has(e.Kind) {
		return
	}
	if s.byUser && e.User != s.user {
		return
	}
	if e.Cycle < s.minCycle || (s.maxCycle >= 0 && e.Cycle > s.maxCycle) {
		return
	}
	s.count++
	// The AllocsPerRun guard covers the filtered (rejecting) path only;
	// once an event is accepted, encoding it is the sink's whole job.
	//lint:ignore hotpathalloc recording an accepted event allocates by design; the zero-alloc contract covers the filtered path
	if err := s.enc.Encode(traceRecord{
		AtNS:   int64(e.At),
		Seq:    e.Seq,
		Cycle:  e.Cycle,
		Kind:   e.Kind.String(),
		User:   int(e.User),
		Slot:   e.Slot,
		Detail: e.DetailText(),
	}); err != nil && s.err == nil {
		s.err = err
	}
}

// Count returns how many events passed the filters.
func (s *JSONLSink) Count() int { return s.count }

// Err returns the first writer error, if any.
func (s *JSONLSink) Err() error { return s.err }

// Flush drains the internal buffer to the underlying writer.
func (s *JSONLSink) Flush() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// DecodeJSONL parses a stream produced by JSONLSink back into trace
// events. Blank lines are skipped; an unknown kind or malformed line is
// an error naming the line number.
func DecodeJSONL(r io.Reader) ([]core.TraceEvent, error) {
	var out []core.TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		kind, ok := core.ParseEventKind(rec.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: jsonl line %d: unknown event kind %q", line, rec.Kind)
		}
		out = append(out, core.TraceEvent{
			At:     time.Duration(rec.AtNS),
			Seq:    rec.Seq,
			Cycle:  rec.Cycle,
			Kind:   kind,
			User:   frame.UserID(rec.User),
			Slot:   rec.Slot,
			Detail: rec.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// multiTracer fans one event out to several tracers.
type multiTracer []core.Tracer

// Trace implements core.Tracer.
func (t multiTracer) Trace(e core.TraceEvent) {
	for _, tr := range t {
		tr.Trace(e)
	}
}

// Tee composes tracers — e.g. a JSONL stream plus the in-memory
// TraceBuffer an autopsy reads. Nil entries are skipped; Tee returns
// nil when nothing remains (which disables tracing entirely).
func Tee(tracers ...core.Tracer) core.Tracer {
	live := make(multiTracer, 0, len(tracers))
	for _, tr := range tracers {
		if tr != nil {
			live = append(live, tr)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}
