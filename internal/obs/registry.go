// Package obs is the telemetry layer of the osumac simulator: a named,
// self-describing metric registry over core.Metrics with JSON and
// Prometheus text exposition, fixed-bucket histograms for the paper's
// delay distributions, a streaming JSONL trace sink composable with the
// in-memory TraceBuffer, a live HTTP observability endpoint, and a
// GPS-deadline autopsy that reconstructs scheduling decisions leading
// up to a violation.
//
// Everything here is pull-based or hook-based: with a nil tracer and no
// registry scrape, the simulation hot path pays nothing (the zero-cost
// invariant guarded by the alloc tests and the CI bench gate).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"github.com/osu-netlab/osumac/internal/baseline"
	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/phy"
	"github.com/osu-netlab/osumac/internal/stats"
)

// Kind classifies an exported metric.
type Kind int

const (
	// KindCounter is a monotone cumulative count.
	KindCounter Kind = iota + 1
	// KindGauge is an instantaneous (often derived) value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String implements fmt.Stringer with the Prometheus type names.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalText renders the kind name into JSON exports.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the kind name back from a JSON export, so a
// written Export round-trips (osumacdiff reloads snapshot files).
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	case "histogram":
		*k = KindHistogram
	default:
		return fmt.Errorf("unknown metric kind %q", b)
	}
	return nil
}

// Metric is one self-describing exported value.
type Metric struct {
	Name  string             `json:"name"`
	Help  string             `json:"help"`
	Kind  Kind               `json:"kind"`
	Value float64            `json:"value,omitempty"`
	Hist  *HistogramSnapshot `json:"histogram,omitempty"`
}

// HistogramSnapshot is a fixed-bucket distribution captured at gather
// time. Counts are cumulative in Prometheus style: Counts[i] holds the
// observations ≤ UpperBounds[i], and the final entry (one past the last
// bound) is the total count (the +Inf bucket).
type HistogramSnapshot struct {
	UpperBounds []float64 `json:"upperBounds"`
	Counts      []uint64  `json:"counts"`
	Sum         float64   `json:"sum"`
	Count       uint64    `json:"count"`
	// P50 and P99 are Quantile(0.5) and Quantile(0.99), precomputed at
	// gather time for the JSON export (dashboards shouldn't reimplement
	// bucket interpolation).
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) with linear
// interpolation inside the bucket containing the target rank — the
// same estimator as Prometheus's histogram_quantile(). The first
// bucket interpolates from zero; a rank landing in the +Inf bucket
// returns the highest finite bound (the estimator's conventional
// clamp). NaN is returned for an empty histogram or out-of-range p.
func (h *HistogramSnapshot) Quantile(p float64) float64 {
	if h == nil || h.Count == 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	rank := p * float64(h.Count)
	for i, ub := range h.UpperBounds {
		c := float64(h.Counts[i])
		if c < rank {
			continue
		}
		lower, prev := 0.0, 0.0
		if i > 0 {
			lower = h.UpperBounds[i-1]
			prev = float64(h.Counts[i-1])
		}
		if c == prev {
			return ub
		}
		return lower + (ub-lower)*(rank-prev)/(c-prev)
	}
	if len(h.UpperBounds) == 0 {
		return math.NaN()
	}
	return h.UpperBounds[len(h.UpperBounds)-1]
}

// Registry names every counter and sample of one run's metric bundle
// and exports them on demand. A registry wraps either an OSU-MAC
// core.Metrics (NewRegistry) or a baseline protocol's baseline.Metrics
// (NewBaselineRegistry); both expose the same Gather/Export/exposition
// surface. It holds no state of its own: Gather reads the live bundle,
// so it must be called from the simulation goroutine (or after the
// run); see Live for serving scrapes concurrently.
type Registry struct {
	m      *core.Metrics
	b      *baseline.Metrics // baseline mode when non-nil (see baseline.go)
	label  string            // snapshot label stamped into Exports
	extras []extraGauge
}

// NewRegistry wraps a metric bundle.
func NewRegistry(m *core.Metrics) *Registry { return &Registry{m: m} }

// extraGauge is a caller-registered gauge outside core.Metrics —
// simulator health signals like event-queue depth, trace-buffer drops,
// or flight-ring overwrites.
type extraGauge struct {
	name, help string
	get        func() float64
}

// AddGauge registers a gauge read from fn at each Gather, appended
// after the built-in metrics in registration order. fn is called from
// the gathering goroutine; it must be safe to call between cycles.
func (r *Registry) AddGauge(name, help string, fn func() float64) {
	r.extras = append(r.extras, extraGauge{name: name, help: help, get: fn})
}

type counterDesc struct {
	name, help string
	get        func(*core.Metrics) uint64
}

type gaugeDesc struct {
	name, help string
	get        func(*core.Metrics) float64
}

type histDesc struct {
	name, help string
	bounds     []float64
	sample     func(*core.Metrics) *stats.Sample
}

// counterDescs covers every stats.Counter in core.Metrics (plus the
// cycle count), in a stable export order.
var counterDescs = []counterDesc{
	{"osumac_cycles_total", "completed notification cycles", func(m *core.Metrics) uint64 { return uint64(m.Cycles) }},
	{"osumac_messages_generated_total", "application messages generated", func(m *core.Metrics) uint64 { return m.MessagesGenerated.Value() }},
	{"osumac_messages_delivered_total", "application messages fully delivered", func(m *core.Metrics) uint64 { return m.MessagesDelivered.Value() }},
	{"osumac_messages_dropped_total", "messages dropped on queue overflow", func(m *core.Metrics) uint64 { return m.MessagesDropped.Value() }},
	{"osumac_bytes_generated_total", "application payload bytes generated", func(m *core.Metrics) uint64 { return m.BytesGenerated.Value() }},
	{"osumac_bytes_delivered_total", "application payload bytes delivered", func(m *core.Metrics) uint64 { return m.BytesDelivered.Value() }},
	{"osumac_fragments_sent_total", "data packets sent on scheduled reverse slots", func(m *core.Metrics) uint64 { return m.FragmentsSent.Value() }},
	{"osumac_fragments_lost_total", "data packets lost to RS decode failure", func(m *core.Metrics) uint64 { return m.FragmentsLost.Value() }},
	{"osumac_reservation_packets_total", "explicit reservation packets received", func(m *core.Metrics) uint64 { return m.ReservationPackets.Value() }},
	{"osumac_contention_signals_total", "contention receptions signalling demand", func(m *core.Metrics) uint64 { return m.ContentionSignals.Value() }},
	{"osumac_piggyback_requests_total", "implicit slot requests via data headers", func(m *core.Metrics) uint64 { return m.PiggybackRequests.Value() }},
	{"osumac_contention_tx_total", "transmissions attempted in contention slots", func(m *core.Metrics) uint64 { return m.ContentionTx.Value() }},
	{"osumac_contention_collisions_total", "contention slots with two or more transmissions", func(m *core.Metrics) uint64 { return m.ContentionCollisions.Value() }},
	{"osumac_contention_slots_open_total", "contention slots offered", func(m *core.Metrics) uint64 { return m.ContentionSlotsOpen.Value() }},
	{"osumac_contention_slots_used_total", "contention slots with at least one transmission", func(m *core.Metrics) uint64 { return m.ContentionSlotsUsed.Value() }},
	{"osumac_registrations_approved_total", "registrations admitted by the base station", func(m *core.Metrics) uint64 { return m.RegistrationsApproved.Value() }},
	{"osumac_registrations_failed_total", "registrations rejected or abandoned", func(m *core.Metrics) uint64 { return m.RegistrationsFailed.Value() }},
	{"osumac_page_responses_total", "zero-slot reservations answering pages", func(m *core.Metrics) uint64 { return m.PageResponses.Value() }},
	{"osumac_data_slots_offered_total", "schedulable reverse data slots across cycles", func(m *core.Metrics) uint64 { return m.DataSlotsOffered.Value() }},
	{"osumac_data_slots_assigned_total", "reverse data slots assigned to users", func(m *core.Metrics) uint64 { return m.DataSlotsAssigned.Value() }},
	{"osumac_data_slots_used_total", "reverse data slots carrying a decoded packet", func(m *core.Metrics) uint64 { return m.DataSlotsUsed.Value() }},
	{"osumac_last_slot_data_packets_total", "data packets in the CF2-covered last slot", func(m *core.Metrics) uint64 { return m.LastSlotDataPkts.Value() }},
	{"osumac_reverse_data_packets_total", "all data packets received on data slots", func(m *core.Metrics) uint64 { return m.ReverseDataPkts.Value() }},
	{"osumac_gps_generated_total", "GPS location reports generated", func(m *core.Metrics) uint64 { return m.GPSGenerated.Value() }},
	{"osumac_gps_delivered_total", "GPS location reports received by the base", func(m *core.Metrics) uint64 { return m.GPSDelivered.Value() }},
	{"osumac_gps_lost_total", "GPS reports lost (channel or staleness)", func(m *core.Metrics) uint64 { return m.GPSLost.Value() }},
	{"osumac_gps_deadline_violations_total", "GPS reports later than the 4 s access deadline", func(m *core.Metrics) uint64 { return m.GPSDeadlineViolations.Value() }},
	{"osumac_cf_decode_failures_total", "control-field decode failures at subscribers", func(m *core.Metrics) uint64 { return m.CFDecodeFailures.Value() }},
	{"osumac_cf2_listens_total", "subscribers listening to the second control-field set", func(m *core.Metrics) uint64 { return m.CF2Listens.Value() }},
	{"osumac_forward_packets_sent_total", "forward-channel data packets sent", func(m *core.Metrics) uint64 { return m.ForwardPktsSent.Value() }},
	{"osumac_forward_packets_delivered_total", "forward-channel data packets delivered", func(m *core.Metrics) uint64 { return m.ForwardPktsDelivered.Value() }},
	// Compiled-cycle executor accounting. These live outside
	// core.Snapshot on purpose (the compiled path must be
	// observationally identical to the event kernel, so run artifacts
	// may not differ between engines) but they ARE deterministic for a
	// fixed scenario + engine choice, so exposing them on /metrics and
	// in -export keeps the twin-run byte-identity gate intact.
	{"osumac_compiled_cycles_total", "cycles driven by the compiled fast path", func(m *core.Metrics) uint64 { return m.CompiledCycles.Value() }},
	{"osumac_compiled_fallbacks_total", "cycles whose compiled fast path deactivated", func(m *core.Metrics) uint64 { return m.CompiledFallbacks.Value() }},
	{"osumac_compiled_fallback_loss_total", "fallbacks due to a lossy channel model", func(m *core.Metrics) uint64 { return m.CompiledFallbackLoss.Value() }},
	{"osumac_compiled_fallback_contention_total", "fallbacks due to planned contention transmissions", func(m *core.Metrics) uint64 { return m.CompiledFallbackContention.Value() }},
	{"osumac_compiled_fallback_amendment_total", "fallbacks due to CF2 schedule amendments", func(m *core.Metrics) uint64 { return m.CompiledFallbackAmendment.Value() }},
	{"osumac_compiled_fallback_format_total", "fallbacks due to reverse format switches", func(m *core.Metrics) uint64 { return m.CompiledFallbackFormat.Value() }},
	{"osumac_compiled_recompiles_total", "slot-action template re-selections on format switch", func(m *core.Metrics) uint64 { return m.CompiledRecompiles.Value() }},
}

// gaugeDescs covers the derived figures of the paper's evaluation.
var gaugeDescs = []gaugeDesc{
	{"osumac_utilization", "fraction of reverse data slots carrying data (Fig. 8a)", (*core.Metrics).Utilization},
	{"osumac_payload_utilization", "delivered payload bytes over offered capacity", (*core.Metrics).PayloadUtilization},
	{"osumac_control_overhead", "demand signals per data packet (Fig. 9/10)", (*core.Metrics).ControlOverhead},
	{"osumac_collision_probability", "fraction of used contention slots that collided", (*core.Metrics).CollisionProbability},
	{"osumac_second_cf_gain", "share of reverse data carried by the last slot (Fig. 12a)", (*core.Metrics).SecondCFGain},
	{"osumac_mean_data_slots_used", "average data slots carrying traffic per cycle (Fig. 12b)", (*core.Metrics).MeanDataSlotsUsed},
	{"osumac_fairness", "Jain's index over per-user service ratios (Fig. 11)", (*core.Metrics).Fairness},
	{"osumac_fairness_bytes", "Jain's index over raw per-user delivered bytes", (*core.Metrics).FairnessBytes},
	{"osumac_registration_within_2_cycles", "fraction of registrations completing within 2 cycles", func(m *core.Metrics) float64 { return m.RegistrationWithin(2) }},
	{"osumac_registration_within_10_cycles", "fraction of registrations completing within 10 cycles", func(m *core.Metrics) float64 { return m.RegistrationWithin(10) }},
	{"osumac_compiled_cycle_hit_ratio", "fraction of cycles the compiled fast path drove", func(m *core.Metrics) float64 {
		hit := m.CompiledCycles.Value()
		total := hit + m.CompiledFallbacks.Value()
		if total == 0 {
			return 0
		}
		return float64(hit) / float64(total)
	}},
}

// Fixed histogram buckets. The GPS buckets straddle the 4 s deadline so
// a violation is visible as mass past the "4" bound; message-delay
// bounds are roughly one..many notification cycles (~4 s each).
var (
	messageDelayBounds   = []float64{4, 8, 16, 32, 64, 128, 256, 512}
	gpsAccessDelayBounds = []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5, 6}
	reservationBounds    = []float64{2, 4, 8, 16, 32, 64}
	registrationBounds   = []float64{1, 2, 3, 4, 6, 8, 12, 16}
)

// histDescs covers every stats.Sample in core.Metrics.
var histDescs = []histDesc{
	{"osumac_message_delay_seconds", "end-to-end message delay, arrival to last fragment (Fig. 8b)",
		messageDelayBounds, func(m *core.Metrics) *stats.Sample { return &m.MessageDelay }},
	{"osumac_gps_access_delay_seconds", "GPS report arrival-to-slot delay; deadline is 4 s",
		gpsAccessDelayBounds, func(m *core.Metrics) *stats.Sample { return &m.GPSAccessDelay }},
	{"osumac_reservation_latency_seconds", "demand-to-base-receipt reservation latency (Fig. 9/10)",
		reservationBounds, func(m *core.Metrics) *stats.Sample { return &m.ReservationLatency }},
	{"osumac_registration_latency_cycles", "first-attempt-to-receipt registration latency",
		registrationBounds, func(m *core.Metrics) *stats.Sample { return &m.RegistrationLatency }},
}

// GPSDeadlineSeconds re-exports the protocol deadline for dashboards.
const GPSDeadlineSeconds = float64(phy.GPSAccessDeadline) / 1e9

// Gather snapshots every registered metric in stable order. The result
// shares no state with the live bundle.
func (r *Registry) Gather() []Metric {
	if r.b != nil {
		return r.gatherBaseline()
	}
	out := make([]Metric, 0, len(counterDescs)+len(gaugeDescs)+len(histDescs)+len(r.extras))
	for _, d := range counterDescs {
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: KindCounter, Value: float64(d.get(r.m))})
	}
	for _, d := range gaugeDescs {
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: KindGauge, Value: d.get(r.m)})
	}
	for _, d := range histDescs {
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: KindHistogram,
			Hist: snapshotHistogram(d.sample(r.m), d.bounds)})
	}
	for _, d := range r.extras {
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: KindGauge, Value: d.get()})
	}
	return out
}

// snapshotHistogram bins a sample into cumulative fixed buckets.
func snapshotHistogram(s *stats.Sample, bounds []float64) *HistogramSnapshot {
	h := &HistogramSnapshot{
		UpperBounds: bounds,
		Counts:      make([]uint64, len(bounds)+1),
		Sum:         s.Sum(),
		Count:       uint64(s.Count()),
	}
	// Counts are cumulative: each observation lands in every bucket
	// whose upper bound it does not exceed.
	for _, v := range s.Values() {
		for i, ub := range bounds {
			if v <= ub {
				h.Counts[i]++
			}
		}
	}
	h.Counts[len(bounds)] = h.Count
	if h.Count > 0 {
		// Empty histograms keep 0 here: NaN is not representable in the
		// JSON export.
		h.P50 = h.Quantile(0.5)
		h.P99 = h.Quantile(0.99)
	}
	return h
}

// WritePrometheus renders gathered metrics in the Prometheus text
// exposition format (version 0.0.4).
func WritePrometheus(w io.Writer, metrics []Metric) error {
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.Name, m.Help, m.Name, m.Kind); err != nil {
			return err
		}
		if m.Kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value)); err != nil {
				return err
			}
			continue
		}
		h := m.Hist
		for i, ub := range h.UpperBounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, formatFloat(ub), h.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			m.Name, h.Counts[len(h.UpperBounds)], m.Name, formatFloat(h.Sum), m.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus gathers and renders in one step.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Gather())
}

// WriteJSON renders the gathered metrics as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Gather(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
