package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
	"github.com/osu-netlab/osumac/internal/frame"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	n := runSmallCell(t, func(c *core.Config) { c.Tracer = sink })
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() == 0 {
		t.Fatal("sink saw no events")
	}
	decoded, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != sink.Count() {
		t.Fatalf("decoded %d events, sink wrote %d", len(decoded), sink.Count())
	}
	// Cross-check against an in-memory buffer capturing the same run.
	tb := &core.TraceBuffer{}
	n2 := runSmallCell(t, func(c *core.Config) { c.Tracer = tb })
	want := tb.Events()
	if len(decoded) != len(want) {
		t.Fatalf("jsonl has %d events, trace buffer %d", len(decoded), len(want))
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, decoded[i], want[i])
		}
	}
	_ = n
	_ = n2
}

func TestJSONLFilters(t *testing.T) {
	full := &core.TraceBuffer{}
	runSmallCell(t, func(c *core.Config) { c.Tracer = full })
	events := full.Events()

	var buf bytes.Buffer
	mask := MaskOf(core.EventGPSRx, core.EventCollision)
	sink := NewJSONLSink(&buf).FilterKinds(mask).FilterCycles(5, 20)
	for _, e := range events {
		sink.Trace(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, e := range events {
		if (e.Kind == core.EventGPSRx || e.Kind == core.EventCollision) && e.Cycle >= 5 && e.Cycle <= 20 {
			want++
		}
	}
	if want == 0 {
		t.Fatal("scenario produced no matching events; filter test is vacuous")
	}
	if len(decoded) != want {
		t.Fatalf("filtered sink kept %d events, want %d", len(decoded), want)
	}
	for _, e := range decoded {
		if !mask.Has(e.Kind) || e.Cycle < 5 || e.Cycle > 20 {
			t.Fatalf("event escaped the filter: %+v", e)
		}
	}
}

func TestJSONLUserFilter(t *testing.T) {
	full := &core.TraceBuffer{}
	runSmallCell(t, func(c *core.Config) { c.Tracer = full })
	var target frame.UserID
	found := false
	for _, e := range full.Events() {
		if e.Kind == core.EventDataRx {
			target, found = e.User, true
			break
		}
	}
	if !found {
		t.Fatal("no data reception in scenario")
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf).FilterUser(target)
	for _, e := range full.Events() {
		sink.Trace(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) == 0 {
		t.Fatal("user filter dropped everything")
	}
	for _, e := range decoded {
		if e.User != target {
			t.Fatalf("event for user %d escaped FilterUser(%d)", e.User, target)
		}
	}
}

func TestParseKinds(t *testing.T) {
	m, err := ParseKinds("gps-rx, collision")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(core.EventGPSRx) || !m.Has(core.EventCollision) {
		t.Fatalf("mask %b missing requested kinds", m)
	}
	if m.Has(core.EventDataRx) {
		t.Fatal("mask matches unrequested kind")
	}
	if _, err := ParseKinds("no-such-kind"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	all, err := ParseKinds("")
	if err != nil || all != 0 {
		t.Fatalf("empty list should be zero (match-all) mask, got %b, %v", all, err)
	}
	for _, k := range core.AllEventKinds() {
		if !all.Has(k) {
			t.Fatalf("zero mask rejects %v", k)
		}
		if !MaskAll().Has(k) {
			t.Fatalf("MaskAll rejects %v", k)
		}
	}
}

func TestDecodeJSONLErrors(t *testing.T) {
	if _, err := DecodeJSONL(strings.NewReader("{not json\n")); err == nil ||
		!strings.Contains(err.Error(), "line 1") {
		t.Fatalf("malformed line error = %v", err)
	}
	if _, err := DecodeJSONL(strings.NewReader("\n{\"kind\":\"martian\"}\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("unknown kind error = %v", err)
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty Tee must be nil so tracing stays disabled")
	}
	tb := &core.TraceBuffer{}
	if Tee(nil, tb) != core.Tracer(tb) {
		t.Fatal("single-tracer Tee should unwrap")
	}
	a, b := &core.TraceBuffer{}, &core.TraceBuffer{}
	tee := Tee(a, nil, b)
	ev := core.TraceEvent{At: time.Second, Cycle: 3, Kind: core.EventGPSRx, User: 7}
	tee.Trace(ev)
	if len(a.Events()) != 1 || len(b.Events()) != 1 || a.Events()[0] != ev {
		t.Fatalf("tee did not fan out: a=%d b=%d", len(a.Events()), len(b.Events()))
	}
}
