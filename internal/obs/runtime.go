package obs

import (
	"math"
	rm "runtime/metrics"
)

// runtimeDesc maps one runtime/metrics sample onto an exported Metric.
type runtimeDesc struct {
	sample, name, help string
	kind               Kind
}

// runtimeDescs is the fixed set of Go runtime signals the self-telemetry
// bridge polls. Samples the running toolchain does not know (KindBad)
// are skipped at gather time, so the set can name metrics from newer
// runtimes without breaking older ones.
var runtimeDescs = []runtimeDesc{
	{"/memory/classes/heap/objects:bytes", "osumac_runtime_heap_alloc_bytes", "bytes of allocated heap objects", KindGauge},
	{"/gc/heap/objects:objects", "osumac_runtime_heap_objects", "number of allocated heap objects", KindGauge},
	{"/memory/classes/total:bytes", "osumac_runtime_memory_total_bytes", "total memory mapped by the Go runtime", KindGauge},
	{"/sched/goroutines:goroutines", "osumac_runtime_goroutines", "live goroutines", KindGauge},
	{"/gc/cycles/total:gc-cycles", "osumac_runtime_gc_cycles_total", "completed GC cycles", KindCounter},
	{"/gc/pauses:seconds", "osumac_runtime_gc_pause_p99_seconds", "p99 stop-the-world GC pause", KindGauge},
}

// GatherRuntime polls runtime/metrics and renders the fixed signal set
// as Metrics. Unlike Registry.Gather, the values here are wall-clock
// process facts — heap size, GC activity, goroutine count — so they are
// NOT deterministic across runs and must never flow into the exported
// run artifact (osumacdiff compares those byte for byte). They are
// served live-only: Live publishes them on /metrics between cycles.
func GatherRuntime() []Metric {
	samples := make([]rm.Sample, len(runtimeDescs))
	for i := range samples {
		samples[i].Name = runtimeDescs[i].sample
	}
	rm.Read(samples)
	out := make([]Metric, 0, len(samples))
	for i, s := range samples {
		d := runtimeDescs[i]
		var v float64
		switch s.Value.Kind() {
		case rm.KindUint64:
			v = float64(s.Value.Uint64())
		case rm.KindFloat64:
			v = s.Value.Float64()
		case rm.KindFloat64Histogram:
			v = runtimeHistQuantile(s.Value.Float64Histogram(), 0.99)
		default: // KindBad: unknown to this toolchain
			continue
		}
		out = append(out, Metric{Name: d.name, Help: d.help, Kind: d.kind, Value: v})
	}
	return out
}

// runtimeHistQuantile estimates the p-quantile of a runtime/metrics
// histogram: the lowest bucket boundary below which at least p of the
// observations fall. Returns 0 for an empty histogram.
func runtimeHistQuantile(h *rm.Float64Histogram, p float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Buckets[i+1] is bucket i's upper bound; the last bucket's
			// bound may be +Inf, in which case report its lower bound.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
