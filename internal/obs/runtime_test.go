package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/osu-netlab/osumac/internal/core"
)

func TestGatherRuntimeSignals(t *testing.T) {
	runtime.GC() // make the GC counters non-trivial
	ms := GatherRuntime()
	if len(ms) == 0 {
		t.Fatal("GatherRuntime returned nothing")
	}
	byName := map[string]Metric{}
	for _, m := range ms {
		if m.Name == "" || m.Help == "" {
			t.Fatalf("runtime metric without name/help: %+v", m)
		}
		if !strings.HasPrefix(m.Name, "osumac_runtime_") {
			t.Fatalf("runtime metric %q outside the osumac_runtime_ namespace", m.Name)
		}
		byName[m.Name] = m
	}
	// The core signals exist on every supported toolchain.
	for _, name := range []string{
		"osumac_runtime_heap_alloc_bytes",
		"osumac_runtime_goroutines",
		"osumac_runtime_gc_cycles_total",
	} {
		m, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if m.Value <= 0 {
			t.Fatalf("%s = %v, want > 0", name, m.Value)
		}
	}
}

// TestCompiledCountersExported asserts the PR 7 compiled-cycle counters
// reach the registry (and therefore /metrics) ...
func TestCompiledCountersExported(t *testing.T) {
	m := &core.Metrics{}
	m.CompiledCycles.Addn(30)
	m.CompiledFallbacks.Addn(10)
	m.CompiledRecompiles.Addn(2)
	got := map[string]float64{}
	for _, mm := range NewRegistry(m).Gather() {
		got[mm.Name] = mm.Value
	}
	for name, want := range map[string]float64{
		"osumac_compiled_cycles_total":     30,
		"osumac_compiled_fallbacks_total":  10,
		"osumac_compiled_recompiles_total": 2,
		"osumac_compiled_cycle_hit_ratio":  0.75,
	} {
		if got[name] != want {
			t.Fatalf("%s = %v, want %v", name, got[name], want)
		}
	}
}

// ... while staying out of core.Snapshot, so metric-snapshot equality
// between the compiled and event engines cannot see them.
func TestCompiledCountersExcludedFromSnapshot(t *testing.T) {
	a, b := &core.Metrics{}, &core.Metrics{}
	a.CompiledCycles.Addn(100)
	a.CompiledFallbacks.Addn(50)
	a.CompiledRecompiles.Addn(7)
	if a.Snapshot() != b.Snapshot() {
		t.Fatal("compiled counters leaked into core.Snapshot — twin-engine equality would break")
	}
}

func TestRegistryAddGauge(t *testing.T) {
	m := &core.Metrics{}
	reg := NewRegistry(m)
	depth := 17.0
	reg.AddGauge("osumac_event_queue_depth", "pending kernel events", func() float64 { return depth })
	found := false
	for _, mm := range reg.Gather() {
		if mm.Name == "osumac_event_queue_depth" {
			found = true
			if mm.Kind != KindGauge || mm.Value != 17 {
				t.Fatalf("extra gauge gathered wrong: %+v", mm)
			}
		}
	}
	if !found {
		t.Fatal("AddGauge gauge missing from Gather")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "osumac_event_queue_depth 17") {
		t.Fatal("extra gauge missing from Prometheus exposition")
	}
}

// TestLiveServesRuntimeMetrics: a publish carrying Runtime metrics
// appends them to the /metrics exposition.
func TestLiveServesRuntimeMetrics(t *testing.T) {
	live := NewLive()
	srv := httptest.NewServer(live.Handler())
	defer srv.Close()

	reg := NewRegistry(&core.Metrics{})
	exp := reg.Export(1, time.Second, false)
	exp.Runtime = GatherRuntime()
	live.Publish(exp)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "osumac_runtime_goroutines") {
		t.Fatal("/metrics does not carry the runtime self-telemetry")
	}
	if !strings.Contains(string(body), "osumac_cycles_total") {
		t.Fatal("/metrics lost the simulator metrics")
	}
}

// TestLiveConcurrentPublish hammers Publish from one goroutine while
// scraping every endpoint from others; the atomic-snapshot design must
// never tear (each response reflects one complete Export). Run with
// -race to make this decisive.
func TestLiveConcurrentPublish(t *testing.T) {
	live := NewLive()
	srv := httptest.NewServer(live.Handler())
	defer srv.Close()

	reg := NewRegistry(&core.Metrics{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			exp := reg.Export(i, time.Duration(i)*time.Millisecond, false)
			exp.Runtime = GatherRuntime()
			live.Publish(exp)
		}
	}()

	for _, path := range []string{"/metrics", "/series", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("%s read: %v", path, err)
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("%s = %d body %q", path, resp.StatusCode, body[:min(len(body), 80)])
					return
				}
			}
		}(path)
	}
	// Let the scrapers run against a moving publisher, then stop it.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
