// Package traffic generates the workloads of the paper's evaluation
// (§5): Poisson e-mail message arrivals with fixed (120 B) or uniform
// (40–500 B) sizes at data subscribers, periodic GPS location reports at
// buses, and the load-index ρ calibration that maps a target load to a
// Poisson interarrival time.
package traffic

import (
	"fmt"
	"time"

	"github.com/osu-netlab/osumac/internal/sim"
)

// SizeDist draws message sizes in bytes.
type SizeDist interface {
	// Sample returns one message size.
	Sample(rng *sim.RNG) int
	// Mean returns the expected message size.
	Mean() float64
	// Name identifies the distribution in experiment output.
	Name() string
}

// Fixed always returns the same size. The paper's fixed workload uses
// L = 120 bytes.
type Fixed struct {
	Bytes int
}

var _ SizeDist = Fixed{}

// Sample implements SizeDist.
func (f Fixed) Sample(*sim.RNG) int { return f.Bytes }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f.Bytes) }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%dB)", f.Bytes) }

// Uniform draws sizes uniformly from [Min, Max] inclusive. The paper's
// variable workload uses 40–500 bytes (mean 270; the paper quotes an
// average of 280).
type Uniform struct {
	Min, Max int
}

var _ SizeDist = Uniform{}

// Sample implements SizeDist.
func (u Uniform) Sample(rng *sim.RNG) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return rng.UniformInt(u.Min, u.Max)
}

// Mean implements SizeDist.
func (u Uniform) Mean() float64 { return float64(u.Min+u.Max) / 2 }

// Name implements SizeDist.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%d-%dB)", u.Min, u.Max) }

// Paper workload presets.
var (
	// PaperFixed is the fixed-length message workload (120 bytes).
	PaperFixed = Fixed{Bytes: 120}
	// PaperVariable is the variable-length workload (uniform 40–500 B).
	PaperVariable = Uniform{Min: 40, Max: 500}
)

// Message is one application-layer message awaiting transport.
type Message struct {
	// ID is unique per source.
	ID int
	// Bytes is the application payload size.
	Bytes int
	// CreatedAt is the virtual arrival time.
	CreatedAt time.Duration
}

// PoissonSource generates messages with exponential interarrival gaps
// and sizes from a SizeDist. It is deterministic for a given RNG.
type PoissonSource struct {
	mean time.Duration
	size SizeDist
	rng  *sim.RNG
	next int
}

// NewPoissonSource builds a source with the given mean interarrival
// time. A non-positive mean yields a source that never fires (NextGap
// returns a negative duration).
func NewPoissonSource(meanInterarrival time.Duration, size SizeDist, rng *sim.RNG) *PoissonSource {
	return &PoissonSource{mean: meanInterarrival, size: size, rng: rng}
}

// NextGap draws the gap until the next arrival, or a negative value if
// the source is disabled.
func (p *PoissonSource) NextGap() time.Duration {
	if p.mean <= 0 {
		return -1
	}
	gap := p.rng.Exp(float64(p.mean))
	return time.Duration(gap)
}

// NewMessage mints the message arriving at now.
func (p *PoissonSource) NewMessage(now time.Duration) Message {
	m := Message{ID: p.next, Bytes: p.size.Sample(p.rng), CreatedAt: now}
	p.next++
	return m
}

// MeanInterarrival returns the configured mean gap.
func (p *PoissonSource) MeanInterarrival() time.Duration { return p.mean }

// LoadIndex computes the paper's ρ for a scenario:
//
//	ρ = (bytes generated per cycle) / (bytes transportable per cycle)
//	  = (m · L̄ · cycle/T) / (d · slotPayload)
//
// where m is the number of data users, L̄ the mean message size, T the
// per-user mean interarrival time, d the data slots per cycle and
// slotPayload the usable bytes per slot.
func LoadIndex(numUsers int, meanMsgBytes float64, interarrival, cycle time.Duration, dataSlots, slotPayloadBytes int) float64 {
	if interarrival <= 0 || dataSlots <= 0 || slotPayloadBytes <= 0 {
		return 0
	}
	perCycleMsgs := float64(numUsers) * float64(cycle) / float64(interarrival)
	generated := perCycleMsgs * meanMsgBytes
	capacity := float64(dataSlots * slotPayloadBytes)
	return generated / capacity
}

// InterarrivalFor inverts LoadIndex: the per-user mean interarrival time
// T that produces load ρ (paper §5's formula for T). It returns 0 if the
// target load is non-positive.
func InterarrivalFor(load float64, numUsers int, meanMsgBytes float64, cycle time.Duration, dataSlots, slotPayloadBytes int) time.Duration {
	if load <= 0 || numUsers <= 0 {
		return 0
	}
	capacity := float64(dataSlots * slotPayloadBytes)
	t := float64(numUsers) * meanMsgBytes * float64(cycle) / (load * capacity)
	return time.Duration(t)
}

// ExpectedFragments returns E[ceil(size/payload)] for a size
// distribution — the mean MAC packets per message.
func ExpectedFragments(dist SizeDist, payload int) float64 {
	if payload <= 0 {
		return 0
	}
	switch d := dist.(type) {
	case Fixed:
		return float64(fragCount(d.Bytes, payload))
	case Uniform:
		lo, hi := d.Min, d.Max
		if hi < lo {
			hi = lo
		}
		total := 0
		for s := lo; s <= hi; s++ {
			total += fragCount(s, payload)
		}
		return float64(total) / float64(hi-lo+1)
	default:
		// Fallback: continuous approximation.
		return dist.Mean()/float64(payload) + 0.5
	}
}

func fragCount(size, payload int) int {
	if size <= 0 {
		return 1
	}
	return (size + payload - 1) / payload
}

// InterarrivalForSlots returns the per-user mean interarrival time that
// makes the fragment arrival rate equal load·dataSlots per cycle — the
// paper's ρ expressed in slot capacity (§5: the denominator is the data
// bytes the d data slots can carry).
func InterarrivalForSlots(load float64, numUsers int, dist SizeDist, payload int, cycle time.Duration, dataSlots int) time.Duration {
	if load <= 0 || numUsers <= 0 || dataSlots <= 0 {
		return 0
	}
	fragsPerMsg := ExpectedFragments(dist, payload)
	msgsPerCycle := load * float64(dataSlots) / fragsPerMsg
	t := float64(numUsers) * float64(cycle) / msgsPerCycle
	return time.Duration(t)
}

// GPSSource generates one location report per period. The paper's buses
// report every 4 seconds.
type GPSSource struct {
	period time.Duration
	next   int
}

// NewGPSSource builds a periodic source.
func NewGPSSource(period time.Duration) *GPSSource {
	return &GPSSource{period: period}
}

// Period returns the reporting period.
func (g *GPSSource) Period() time.Duration { return g.period }

// NewReport mints the next report sequence number.
func (g *GPSSource) NewReport() int {
	n := g.next
	g.next++
	return n
}
