package traffic

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/osu-netlab/osumac/internal/sim"
)

func TestFixedDist(t *testing.T) {
	d := Fixed{Bytes: 120}
	rng := sim.NewRNG(1)
	for i := 0; i < 10; i++ {
		if d.Sample(rng) != 120 {
			t.Fatal("fixed distribution varied")
		}
	}
	if d.Mean() != 120 {
		t.Fatal("mean wrong")
	}
	if d.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestUniformDist(t *testing.T) {
	d := Uniform{Min: 40, Max: 500}
	rng := sim.NewRNG(2)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := d.Sample(rng)
		if v < 40 || v > 500 {
			t.Fatalf("sample %d out of range", v)
		}
		sum += float64(v)
	}
	mean := sum / trials
	if math.Abs(mean-270) > 3 {
		t.Fatalf("empirical mean %v, want ~270", mean)
	}
	if d.Mean() != 270 {
		t.Fatalf("Mean() = %v, want 270", d.Mean())
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Min: 10, Max: 10}
	if d.Sample(sim.NewRNG(1)) != 10 {
		t.Fatal("degenerate uniform should return Min")
	}
	inverted := Uniform{Min: 10, Max: 5}
	if inverted.Sample(sim.NewRNG(1)) != 10 {
		t.Fatal("inverted range should return Min")
	}
}

func TestPaperPresets(t *testing.T) {
	if PaperFixed.Bytes != 120 {
		t.Fatal("paper fixed size should be 120 B")
	}
	if PaperVariable.Min != 40 || PaperVariable.Max != 500 {
		t.Fatal("paper variable range should be 40-500 B")
	}
}

func TestPoissonSourceGapDistribution(t *testing.T) {
	mean := 2 * time.Second
	src := NewPoissonSource(mean, Fixed{Bytes: 100}, sim.NewRNG(3))
	var sum time.Duration
	const trials = 50000
	for i := 0; i < trials; i++ {
		g := src.NextGap()
		if g < 0 {
			t.Fatal("enabled source returned negative gap")
		}
		sum += g
	}
	got := float64(sum) / trials
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("empirical mean gap %v, want ~%v", time.Duration(got), mean)
	}
}

func TestPoissonSourceDisabled(t *testing.T) {
	src := NewPoissonSource(0, Fixed{Bytes: 1}, sim.NewRNG(1))
	if src.NextGap() >= 0 {
		t.Fatal("disabled source should return negative gap")
	}
}

func TestPoissonSourceMessageIDs(t *testing.T) {
	src := NewPoissonSource(time.Second, Fixed{Bytes: 7}, sim.NewRNG(4))
	for i := 0; i < 5; i++ {
		m := src.NewMessage(time.Duration(i) * time.Second)
		if m.ID != i {
			t.Fatalf("message ID %d, want %d", m.ID, i)
		}
		if m.Bytes != 7 {
			t.Fatalf("message size %d", m.Bytes)
		}
		if m.CreatedAt != time.Duration(i)*time.Second {
			t.Fatal("CreatedAt not honored")
		}
	}
}

func TestLoadIndexRoundTrip(t *testing.T) {
	const (
		users       = 10
		meanBytes   = 270.0
		dataSlots   = 9
		slotPayload = 41
	)
	cycle := 3984375 * time.Microsecond
	for _, load := range []float64{0.3, 0.5, 0.8, 0.9, 1.0, 1.1} {
		T := InterarrivalFor(load, users, meanBytes, cycle, dataSlots, slotPayload)
		got := LoadIndex(users, meanBytes, T, cycle, dataSlots, slotPayload)
		if math.Abs(got-load) > 0.001 {
			t.Errorf("round-trip load %v → %v", load, got)
		}
	}
}

func TestLoadIndexEdgeCases(t *testing.T) {
	if LoadIndex(5, 100, 0, time.Second, 9, 41) != 0 {
		t.Fatal("zero interarrival should yield 0")
	}
	if LoadIndex(5, 100, time.Second, time.Second, 0, 41) != 0 {
		t.Fatal("zero slots should yield 0")
	}
	if InterarrivalFor(0, 5, 100, time.Second, 9, 41) != 0 {
		t.Fatal("zero load should yield 0 interarrival")
	}
	if InterarrivalFor(0.5, 0, 100, time.Second, 9, 41) != 0 {
		t.Fatal("zero users should yield 0 interarrival")
	}
}

func TestLoadIndexScalesWithUsers(t *testing.T) {
	cycle := 4 * time.Second
	T := 10 * time.Second
	l1 := LoadIndex(5, 100, T, cycle, 9, 41)
	l2 := LoadIndex(10, 100, T, cycle, 9, 41)
	if math.Abs(l2-2*l1) > 1e-9 {
		t.Fatalf("load should double with users: %v vs %v", l1, l2)
	}
}

func TestGPSSource(t *testing.T) {
	g := NewGPSSource(4 * time.Second)
	if g.Period() != 4*time.Second {
		t.Fatal("period wrong")
	}
	for i := 0; i < 3; i++ {
		if got := g.NewReport(); got != i {
			t.Fatalf("sequence %d, want %d", got, i)
		}
	}
}

// Property: LoadIndex and InterarrivalFor are inverses for any positive
// parameters.
func TestPropertyLoadInverse(t *testing.T) {
	f := func(loadRaw, usersRaw, bytesRaw uint8) bool {
		load := 0.1 + float64(loadRaw%30)/10 // 0.1 .. 3.0
		users := int(usersRaw%20) + 1
		meanBytes := float64(bytesRaw%200) + 40
		cycle := 3984375 * time.Microsecond
		T := InterarrivalFor(load, users, meanBytes, cycle, 9, 41)
		if T <= 0 {
			return false
		}
		got := LoadIndex(users, meanBytes, T, cycle, 9, 41)
		return math.Abs(got-load) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformName(t *testing.T) {
	if (Uniform{Min: 40, Max: 500}).Name() == "" {
		t.Fatal("empty name")
	}
}

func TestMeanInterarrivalAccessor(t *testing.T) {
	src := NewPoissonSource(3*time.Second, PaperFixed, sim.NewRNG(1))
	if src.MeanInterarrival() != 3*time.Second {
		t.Fatal("accessor wrong")
	}
}

func TestExpectedFragments(t *testing.T) {
	// Fixed 120 B with 41 B payload → exactly 3 fragments.
	if got := ExpectedFragments(Fixed{Bytes: 120}, 41); got != 3 {
		t.Fatalf("fixed(120) = %v, want 3", got)
	}
	// Degenerate payload.
	if ExpectedFragments(PaperFixed, 0) != 0 {
		t.Fatal("zero payload should yield 0")
	}
	// Uniform 40-500 with 41 B: exact average of ceil(s/41) over s.
	got := ExpectedFragments(Uniform{Min: 40, Max: 500}, 41)
	total := 0
	for s := 40; s <= 500; s++ {
		total += (s + 40) / 41
	}
	want := float64(total) / 461
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform = %v, want %v", got, want)
	}
	// Inverted uniform range degenerates to Min.
	if got := ExpectedFragments(Uniform{Min: 100, Max: 50}, 41); got != 3 {
		t.Fatalf("inverted uniform = %v, want 3 (ceil(100/41))", got)
	}
}

type constDist struct{ n int }

func (c constDist) Sample(*sim.RNG) int { return c.n }
func (c constDist) Mean() float64       { return float64(c.n) }
func (c constDist) Name() string        { return "const" }

func TestExpectedFragmentsFallback(t *testing.T) {
	// Unknown distributions use the continuous approximation.
	got := ExpectedFragments(constDist{n: 82}, 41)
	if math.Abs(got-(82.0/41+0.5)) > 1e-12 {
		t.Fatalf("fallback = %v", got)
	}
}

func TestInterarrivalForSlots(t *testing.T) {
	cycle := 3984375 * time.Microsecond
	T := InterarrivalForSlots(0.9, 10, PaperVariable, 41, cycle, 8)
	if T <= 0 {
		t.Fatal("non-positive interarrival")
	}
	// Check the calibration: fragment arrivals per cycle = ρ·d.
	fragsPerMsg := ExpectedFragments(PaperVariable, 41)
	msgsPerCycle := 10 * float64(cycle) / float64(T)
	fragsPerCycle := msgsPerCycle * fragsPerMsg
	if math.Abs(fragsPerCycle-0.9*8) > 0.01 {
		t.Fatalf("fragment rate %v, want %v", fragsPerCycle, 0.9*8)
	}
	// Edge cases.
	if InterarrivalForSlots(0, 10, PaperVariable, 41, cycle, 8) != 0 {
		t.Fatal("zero load should yield 0")
	}
	if InterarrivalForSlots(0.5, 0, PaperVariable, 41, cycle, 8) != 0 {
		t.Fatal("zero users should yield 0")
	}
	if InterarrivalForSlots(0.5, 10, PaperVariable, 41, cycle, 0) != 0 {
		t.Fatal("zero slots should yield 0")
	}
}

func TestFragCountEdge(t *testing.T) {
	if fragCount(0, 41) != 1 || fragCount(-5, 41) != 1 {
		t.Fatal("non-positive sizes should count one fragment")
	}
	if fragCount(41, 41) != 1 || fragCount(42, 41) != 2 {
		t.Fatal("boundary fragment counts wrong")
	}
}
