package sched

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
)

func countOf(schedule []frame.UserID, u frame.UserID) int {
	n := 0
	for _, x := range schedule {
		if x == u {
			n++
		}
	}
	return n
}

func TestRoundRobinSplitsSlotsEvenly(t *testing.T) {
	rr := NewRoundRobin()
	reqs := []Request{{User: 1, Slots: 5}, {User: 2, Slots: 5}, {User: 3, Slots: 5}}
	got := rr.Schedule(reqs, 8)
	counts := map[frame.UserID]int{}
	for _, u := range got {
		if u != frame.NoUser {
			counts[u]++
		}
	}
	// 8 slots across 3 users: 3-3-2 or a rotation of it.
	for u, c := range counts {
		if c < 2 || c > 3 {
			t.Fatalf("user %v got %d slots: %v", u, c, got)
		}
	}
	if counts[1]+counts[2]+counts[3] != 8 {
		t.Fatalf("slots unallocated despite demand: %v", got)
	}
}

func TestRoundRobinSatisfiesSmallDemand(t *testing.T) {
	rr := NewRoundRobin()
	got := rr.Schedule([]Request{{User: 7, Slots: 2}}, 8)
	if countOf(got, 7) != 2 {
		t.Fatalf("user 7 got %d slots, want 2: %v", countOf(got, 7), got)
	}
	unused := countOf(got, frame.NoUser)
	if unused != 6 {
		t.Fatalf("%d slots unassigned, want 6", unused)
	}
}

func TestRoundRobinLumping(t *testing.T) {
	rr := NewRoundRobin()
	reqs := []Request{{User: 1, Slots: 3}, {User: 2, Slots: 3}, {User: 3, Slots: 2}}
	got := rr.Schedule(reqs, 8)
	if !Lumped(got) {
		t.Fatalf("schedule not lumped: %v", got)
	}
}

func TestRoundRobinNoLumpInterleaves(t *testing.T) {
	rr := &RoundRobin{Lump: false}
	reqs := []Request{{User: 1, Slots: 4}, {User: 2, Slots: 4}}
	got := rr.Schedule(reqs, 8)
	if Lumped(got) {
		t.Fatalf("unlumped schedule unexpectedly contiguous: %v", got)
	}
	if countOf(got, 1) != 4 || countOf(got, 2) != 4 {
		t.Fatalf("allocation wrong: %v", got)
	}
}

func TestRoundRobinRotatesAcrossCycles(t *testing.T) {
	rr := NewRoundRobin()
	// One slot, three hungry users: service must rotate 1,2,3,1,…
	var served []frame.UserID
	for cycle := 0; cycle < 6; cycle++ {
		reqs := []Request{{User: 1, Slots: 1}, {User: 2, Slots: 1}, {User: 3, Slots: 1}}
		got := rr.Schedule(reqs, 1)
		served = append(served, got[0])
	}
	want := []frame.UserID{1, 2, 3, 1, 2, 3}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", served, want)
		}
	}
}

func TestRoundRobinIgnoresInvalidRequests(t *testing.T) {
	rr := NewRoundRobin()
	got := rr.Schedule([]Request{
		{User: frame.NoUser, Slots: 3},
		{User: 5, Slots: 0},
		{User: 6, Slots: -2},
	}, 4)
	for _, u := range got {
		if u != frame.NoUser {
			t.Fatalf("invalid request scheduled: %v", got)
		}
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	rr := NewRoundRobin()
	if got := rr.Schedule(nil, 5); countOf(got, frame.NoUser) != 5 {
		t.Fatal("no requests should leave all slots unassigned")
	}
	if got := rr.Schedule([]Request{{User: 1, Slots: 1}}, 0); len(got) != 0 {
		t.Fatal("zero slots should return empty schedule")
	}
}

func TestRoundRobinMergesDuplicateRequests(t *testing.T) {
	rr := NewRoundRobin()
	got := rr.Schedule([]Request{{User: 4, Slots: 1}, {User: 4, Slots: 2}}, 8)
	if countOf(got, 4) != 3 {
		t.Fatalf("user 4 got %d slots, want 3 (merged)", countOf(got, 4))
	}
}

func TestFCFS(t *testing.T) {
	s := FCFS{}
	reqs := []Request{
		{User: 2, Slots: 2, Arrival: 10},
		{User: 1, Slots: 3, Arrival: 5},
		{User: 3, Slots: 9, Arrival: 20},
	}
	got := s.Schedule(reqs, 6)
	want := []frame.UserID{1, 1, 1, 2, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FCFS = %v, want %v", got, want)
		}
	}
}

func TestLongestQueueFirst(t *testing.T) {
	s := LongestQueueFirst{}
	reqs := []Request{{User: 1, Slots: 1}, {User: 2, Slots: 5}, {User: 3, Slots: 2}}
	got := s.Schedule(reqs, 6)
	// User 2's five slots first, then user 3's two (truncated to 1).
	if countOf(got, 2) != 5 {
		t.Fatalf("LQF = %v", got)
	}
	if got[5] != 3 {
		t.Fatalf("LQF tail = %v, want user 3", got)
	}
	if countOf(got, 1) != 0 {
		t.Fatal("LQF should starve the small queue here")
	}
}

func TestSchedulerNames(t *testing.T) {
	for _, s := range []ReverseScheduler{NewRoundRobin(), &RoundRobin{}, FCFS{}, LongestQueueFirst{}} {
		if s.Name() == "" {
			t.Fatalf("%T has empty name", s)
		}
	}
}

func TestLumped(t *testing.T) {
	nu := frame.NoUser
	cases := []struct {
		in   []frame.UserID
		want bool
	}{
		{[]frame.UserID{1, 1, 2, 2}, true},
		{[]frame.UserID{1, 2, 1}, false},
		{[]frame.UserID{nu, 1, 1, nu, 2}, true},
		{[]frame.UserID{1, nu, 1}, true}, // gap within one user's run is fine
		{[]frame.UserID{1, nu, 2, nu, 1}, false},
		{nil, true},
		{[]frame.UserID{nu, nu}, true},
	}
	for _, c := range cases {
		if got := Lumped(c.in); got != c.want {
			t.Errorf("Lumped(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: round-robin never over-allocates, never exceeds per-user
// demand, and always lumps.
func TestPropertyRoundRobinInvariants(t *testing.T) {
	f := func(demandsRaw []uint8, availRaw uint8) bool {
		rr := NewRoundRobin()
		avail := int(availRaw % 10)
		var reqs []Request
		demand := map[frame.UserID]int{}
		for i, d := range demandsRaw {
			if i >= 12 {
				break
			}
			u := frame.UserID(i)
			slots := int(d%5) + 1
			reqs = append(reqs, Request{User: u, Slots: slots})
			demand[u] += slots
		}
		got := rr.Schedule(reqs, avail)
		if len(got) != avail {
			return false
		}
		counts := map[frame.UserID]int{}
		total := 0
		for _, u := range got {
			if u == frame.NoUser {
				continue
			}
			counts[u]++
			total++
		}
		for u, c := range counts {
			if c > demand[u] {
				return false
			}
		}
		// Work-conserving: slots idle only if all demand satisfied.
		totalDemand := 0
		for _, d := range demand {
			totalDemand += d
		}
		if total < avail && total < totalDemand {
			return false
		}
		return Lumped(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: round-robin per-user allocations differ by at most one slot
// when every user wants everything (max-min fairness).
func TestPropertyRoundRobinFairSplit(t *testing.T) {
	f := func(nUsersRaw, availRaw uint8) bool {
		rr := NewRoundRobin()
		nUsers := int(nUsersRaw%8) + 1
		avail := int(availRaw%10) + 1
		var reqs []Request
		for i := 0; i < nUsers; i++ {
			reqs = append(reqs, Request{User: frame.UserID(i), Slots: avail})
		}
		got := rr.Schedule(reqs, avail)
		counts := map[frame.UserID]int{}
		for _, u := range got {
			if u != frame.NoUser {
				counts[u]++
			}
		}
		minC, maxC := avail+1, -1
		for i := 0; i < nUsers; i++ {
			c := counts[frame.UserID(i)]
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		return maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func fwdSlots(n int, start, width, gap time.Duration) []phy.Interval {
	out := make([]phy.Interval, n)
	for i := range out {
		s := start + time.Duration(i)*(width+gap)
		out[i] = phy.Interval{Start: s, End: s + width}
	}
	return out
}

func TestAssignForwardRespectsHalfDuplex(t *testing.T) {
	slots := fwdSlots(4, 0, 90*time.Millisecond, 0)
	// User 1 transmits on the reverse channel exactly during forward
	// slot 1 (and within 20 ms of slots 0 and 2).
	tx := map[frame.UserID][]phy.Interval{
		1: {{Start: 95 * time.Millisecond, End: 175 * time.Millisecond}},
	}
	got := AssignForward(
		[]Request{{User: 1, Slots: 4}},
		ForwardConstraints{SlotIntervals: slots, TxIntervals: tx, CF2User: frame.NoUser},
	)
	// Slot 0 ends at 90ms; tx starts 95ms → gap 5ms < 20ms: forbidden.
	// Slot 1 overlaps: forbidden. Slot 2 starts 180ms, tx ends 175ms →
	// gap 5ms: forbidden. Slot 3 starts 270ms: gap 95ms: allowed.
	want := []frame.UserID{frame.NoUser, frame.NoUser, frame.NoUser, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", got, want)
		}
	}
}

func TestAssignForwardCF2UserSkipsFirstSlot(t *testing.T) {
	slots := fwdSlots(3, 0, 90*time.Millisecond, 10*time.Millisecond)
	got := AssignForward(
		[]Request{{User: 5, Slots: 3}},
		ForwardConstraints{SlotIntervals: slots, TxIntervals: nil, CF2User: 5},
	)
	if got[0] != frame.NoUser {
		t.Fatalf("CF2 user assigned forward slot 0: %v", got)
	}
	if got[1] != 5 || got[2] != 5 {
		t.Fatalf("CF2 user should get later slots: %v", got)
	}
}

func TestAssignForwardSharesAcrossUsers(t *testing.T) {
	slots := fwdSlots(4, 0, 90*time.Millisecond, 10*time.Millisecond)
	got := AssignForward(
		[]Request{{User: 1, Slots: 4}, {User: 2, Slots: 4}},
		ForwardConstraints{SlotIntervals: slots, CF2User: frame.NoUser},
	)
	if countOf(got, 1) != 2 || countOf(got, 2) != 2 {
		t.Fatalf("unfair forward split: %v", got)
	}
}

func TestAssignForwardNoDemand(t *testing.T) {
	slots := fwdSlots(2, 0, 90*time.Millisecond, 0)
	got := AssignForward(nil, ForwardConstraints{SlotIntervals: slots, CF2User: frame.NoUser})
	for _, u := range got {
		if u != frame.NoUser {
			t.Fatal("slots assigned without demand")
		}
	}
}

// Property: forward assignment never double-books a slot, never exceeds
// demand, and every assignment is half-duplex-feasible.
func TestPropertyAssignForwardFeasible(t *testing.T) {
	f := func(txStartsRaw []uint8, demandRaw [4]uint8) bool {
		slots := fwdSlots(8, 0, 90*time.Millisecond, 4*time.Millisecond)
		tx := map[frame.UserID][]phy.Interval{}
		for i, s := range txStartsRaw {
			if i >= 4 {
				break
			}
			u := frame.UserID(i)
			start := time.Duration(s) * 5 * time.Millisecond
			tx[u] = append(tx[u], phy.Interval{Start: start, End: start + 100*time.Millisecond})
		}
		var reqs []Request
		demand := map[frame.UserID]int{}
		for i, d := range demandRaw {
			u := frame.UserID(i)
			n := int(d % 5)
			if n > 0 {
				reqs = append(reqs, Request{User: u, Slots: n})
				demand[u] = n
			}
		}
		got := AssignForward(reqs, ForwardConstraints{SlotIntervals: slots, TxIntervals: tx, CF2User: 0})
		counts := map[frame.UserID]int{}
		for i, u := range got {
			if u == frame.NoUser {
				continue
			}
			counts[u]++
			if i == 0 && u == 0 {
				return false // CF2 rule violated
			}
			for _, txIv := range tx[u] {
				gap := txIv.Start - slots[i].End
				gap2 := slots[i].Start - txIv.End
				if slots[i].Overlaps(txIv) {
					return false
				}
				if gap < 0 && gap2 < 0 {
					return false
				}
				if gap >= 0 && gap < phy.HalfDuplexSwitch {
					return false
				}
				if gap2 >= 0 && gap2 < phy.HalfDuplexSwitch {
					return false
				}
			}
		}
		for u, c := range counts {
			if c > demand[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
