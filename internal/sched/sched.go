// Package sched implements OSU-MAC's slot scheduling (paper §3.5): the
// round-robin reverse-channel scheduler with post-pass lumping, simpler
// alternatives used for ablation benchmarks, and the forward-channel
// assigner that honours the half-duplex and two-control-field
// constraints.
package sched

import (
	"sort"
	"time"

	"github.com/osu-netlab/osumac/internal/frame"
	"github.com/osu-netlab/osumac/internal/phy"
)

// Request is one subscriber's demand for reverse data slots in the next
// notification cycle, aggregated from explicit reservations, piggyback
// bits and contention-slot data.
type Request struct {
	// User identifies the subscriber.
	User frame.UserID
	// Slots is the number of data slots requested (≥1).
	Slots int
	// Arrival orders requests for FCFS scheduling; lower is earlier.
	Arrival int
}

// ReverseScheduler assigns reverse data slots to requests.
type ReverseScheduler interface {
	// Schedule fills the available slot positions with user IDs. avail
	// lists the assignable slot indices in time order (contention slots
	// are excluded by the caller). The result is parallel to avail;
	// frame.NoUser marks a slot left unassigned.
	Schedule(requests []Request, avail int) []frame.UserID
	// Name identifies the scheduler in experiment output.
	Name() string
}

// RoundRobin is the paper's scheduler: it serves one slot per requesting
// user per round, resuming after the last-served user of the previous
// cycle, then lumps each user's slots into a contiguous run so the
// subscriber does not repeatedly switch between transmitting and
// receiving within the cycle (paper §3.5).
type RoundRobin struct {
	// Lump disables the consolidation pass when false-negated; it is on
	// by default via NewRoundRobin and exposed for the ablation bench.
	Lump bool

	lastServed frame.UserID
	haveLast   bool
}

var _ ReverseScheduler = (*RoundRobin)(nil)

// NewRoundRobin returns the paper's configuration (lumping enabled).
func NewRoundRobin() *RoundRobin {
	return &RoundRobin{Lump: true}
}

// Name implements ReverseScheduler.
func (r *RoundRobin) Name() string {
	if r.Lump {
		return "round-robin+lump"
	}
	return "round-robin"
}

// Schedule implements ReverseScheduler.
func (r *RoundRobin) Schedule(requests []Request, avail int) []frame.UserID {
	out := unassigned(avail)
	users, demand := dedupe(requests)
	if len(users) == 0 || avail == 0 {
		return out
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	// Resume the rotation after the last-served user.
	start := 0
	if r.haveLast {
		for i, u := range users {
			if u > r.lastServed {
				start = i
				break
			}
		}
	}

	// Round-robin allocation: one slot per user with remaining demand.
	counts := make(map[frame.UserID]int, len(users))
	var order []frame.UserID // first-allocation order, drives lumping
	allocated := 0
	idx := start
	for allocated < avail {
		progress := false
		for n := 0; n < len(users) && allocated < avail; n++ {
			u := users[(idx+n)%len(users)]
			if demand[u] == 0 {
				continue
			}
			if counts[u] == 0 {
				order = append(order, u)
			}
			counts[u]++
			demand[u]--
			allocated++
			r.lastServed = u
			r.haveLast = true
			progress = true
		}
		if !progress {
			break
		}
		idx = start // subsequent rounds keep the same rotation order
	}

	if r.Lump {
		pos := 0
		for _, u := range order {
			for n := 0; n < counts[u]; n++ {
				out[pos] = u
				pos++
			}
		}
		return out
	}

	// Unlumped: emit in raw round-robin order.
	remaining := counts
	pos := 0
	for pos < allocated {
		for n := 0; n < len(order) && pos < allocated; n++ {
			u := order[n]
			if remaining[u] == 0 {
				continue
			}
			out[pos] = u
			remaining[u]--
			pos++
		}
	}
	return out
}

// FCFS serves requests strictly in arrival order until slots run out.
// Used as an ablation baseline: it can starve users under load.
type FCFS struct{}

var _ ReverseScheduler = FCFS{}

// Name implements ReverseScheduler.
func (FCFS) Name() string { return "fcfs" }

// Schedule implements ReverseScheduler.
func (FCFS) Schedule(requests []Request, avail int) []frame.UserID {
	out := unassigned(avail)
	reqs := make([]Request, len(requests))
	copy(reqs, requests)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	pos := 0
	for _, req := range reqs {
		for n := 0; n < req.Slots && pos < avail; n++ {
			out[pos] = req.User
			pos++
		}
	}
	return out
}

// LongestQueueFirst gives all slots to the largest demands first — a
// throughput-greedy ablation baseline with poor fairness.
type LongestQueueFirst struct{}

var _ ReverseScheduler = LongestQueueFirst{}

// Name implements ReverseScheduler.
func (LongestQueueFirst) Name() string { return "longest-queue-first" }

// Schedule implements ReverseScheduler.
func (LongestQueueFirst) Schedule(requests []Request, avail int) []frame.UserID {
	out := unassigned(avail)
	users, demand := dedupe(requests)
	sort.Slice(users, func(i, j int) bool {
		if demand[users[i]] != demand[users[j]] {
			return demand[users[i]] > demand[users[j]]
		}
		return users[i] < users[j]
	})
	pos := 0
	for _, u := range users {
		for n := 0; n < demand[u] && pos < avail; n++ {
			out[pos] = u
			pos++
		}
	}
	return out
}

// unassigned returns a slot vector of all frame.NoUser.
func unassigned(n int) []frame.UserID {
	out := make([]frame.UserID, n)
	for i := range out {
		out[i] = frame.NoUser
	}
	return out
}

// dedupe merges duplicate per-user requests, summing demands.
func dedupe(requests []Request) ([]frame.UserID, map[frame.UserID]int) {
	demand := make(map[frame.UserID]int, len(requests))
	var users []frame.UserID
	for _, req := range requests {
		if req.Slots <= 0 || !req.User.Valid() {
			continue
		}
		if _, seen := demand[req.User]; !seen {
			users = append(users, req.User)
		}
		demand[req.User] += req.Slots
	}
	return users, demand
}

// Lumped reports whether each user's slots form a single contiguous run
// in the schedule (unassigned slots are transparent): no A…B…A pattern.
func Lumped(schedule []frame.UserID) bool {
	finished := make(map[frame.UserID]bool)
	var current frame.UserID = frame.NoUser
	for _, u := range schedule {
		if u == frame.NoUser {
			continue
		}
		if u == current {
			continue
		}
		if finished[u] {
			return false
		}
		if current != frame.NoUser {
			finished[current] = true
		}
		current = u
	}
	return true
}

// ForwardConstraints carries what the forward assigner must respect for
// one cycle.
type ForwardConstraints struct {
	// SlotIntervals are the forward data slots' air times, in slot-index
	// order, relative to the forward cycle start.
	SlotIntervals []phy.Interval
	// TxIntervals maps each user to its reverse-channel transmit
	// intervals this cycle (same time origin).
	TxIntervals map[frame.UserID][]phy.Interval
	// CF2User is the subscriber listening to the second control-field
	// set; it must not receive forward slot 0 (paper §3.4 problem 1).
	// frame.NoUser when the last reverse slot is unassigned.
	CF2User frame.UserID
	// Switch overrides the half-duplex switch guard; zero means the
	// default 20 ms.
	Switch time.Duration
}

// AssignForward fills forward data slots round-robin across users with
// forward demand, skipping slots that would violate the half-duplex
// constraint against the user's reverse transmissions or the CF2 rule.
// demands maps user → queued forward packets. Returns the slot → user
// vector (frame.NoUser = idle).
func AssignForward(demands []Request, c ForwardConstraints) []frame.UserID {
	out := unassigned(len(c.SlotIntervals))
	users, remaining := dedupe(demands)
	if len(users) == 0 {
		return out
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	plans := make(map[frame.UserID]*phy.HalfDuplexPlan, len(users))
	for _, u := range users {
		p := &phy.HalfDuplexPlan{Switch: c.Switch}
		for _, iv := range c.TxIntervals[u] {
			// Reverse transmissions are fixed; recording them cannot
			// fail on a fresh plan.
			if err := p.AddTransmit(iv); err != nil {
				// Overlapping reverse slots for one user would be a
				// scheduling bug upstream; treat the user as
				// unschedulable this cycle.
				remaining[u] = 0
				break
			}
		}
		plans[u] = p
	}

	for slot, iv := range c.SlotIntervals {
		assigned := false
		for n := 0; n < len(users) && !assigned; n++ {
			u := users[n]
			if remaining[u] == 0 {
				continue
			}
			if slot == 0 && u == c.CF2User {
				continue
			}
			if !plans[u].CanReceive(iv) {
				continue
			}
			if err := plans[u].AddReceive(iv); err != nil {
				continue
			}
			out[slot] = u
			remaining[u]--
			assigned = true
		}
		// Rotate fairness: move the served user to the back.
		if assigned {
			for n, u := range users {
				if u == out[slot] {
					users = append(append(append([]frame.UserID{}, users[:n]...), users[n+1:]...), u)
					break
				}
			}
		}
	}
	return out
}
